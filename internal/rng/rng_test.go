package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d identical draws from different seeds", same)
	}
}

func TestZeroSeedWorks(t *testing.T) {
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a degenerate stream")
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Fork(1)
	c2 := parent.Fork(2)
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("forked streams collide (%d/100)", same)
	}
}

func TestForkDeterminism(t *testing.T) {
	mk := func() *Source { return New(9).Fork(3) }
	a, b := mk(), mk()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("fork is not deterministic")
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestUniformMeanRoughlyCentered(t *testing.T) {
	r := New(13)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Uniform(10, 20)
	}
	mean := sum / n
	if mean < 14.8 || mean > 15.2 {
		t.Fatalf("Uniform(10,20) mean=%v, want ~15", mean)
	}
}

func TestExpMean(t *testing.T) {
	r := New(17)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Exp(100)
	}
	mean := sum / n
	if mean < 98 || mean > 102 {
		t.Fatalf("Exp(100) mean=%v, want ~100", mean)
	}
}

func TestExpDurAtLeastOne(t *testing.T) {
	r := New(19)
	for i := 0; i < 10000; i++ {
		if d := r.ExpDur(2); d < 1 {
			t.Fatalf("ExpDur returned %d < 1", d)
		}
	}
}

func TestParetoBounds(t *testing.T) {
	r := New(23)
	for i := 0; i < 10000; i++ {
		v := r.Pareto(1.0, 1.5, 50.0)
		if v < 1.0 || v > 50.0 {
			t.Fatalf("Pareto out of [1,50]: %v", v)
		}
	}
}

func TestUniformDur(t *testing.T) {
	r := New(29)
	for i := 0; i < 10000; i++ {
		v := r.UniformDur(5, 9)
		if v < 5 || v > 9 {
			t.Fatalf("UniformDur out of range: %d", v)
		}
	}
	if r.UniformDur(7, 7) != 7 {
		t.Fatal("UniformDur with equal bounds should return the bound")
	}
	// Swapped bounds are tolerated.
	if v := r.UniformDur(9, 5); v < 5 || v > 9 {
		t.Fatalf("UniformDur with swapped bounds: %d", v)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(31)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.25) > 0.01 {
		t.Fatalf("Bool(0.25) hit rate %v", p)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%32) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Intn over a power-of-two range covers both halves.
func TestIntnSpread(t *testing.T) {
	r := New(37)
	lo, hi := 0, 0
	for i := 0; i < 10000; i++ {
		if r.Intn(1024) < 512 {
			lo++
		} else {
			hi++
		}
	}
	if lo < 4500 || hi < 4500 {
		t.Fatalf("Intn badly skewed: lo=%d hi=%d", lo, hi)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkExpDur(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.ExpDur(1000)
	}
}

package experiment

import (
	"fmt"
	"io"

	"github.com/microslicedcore/microsliced/internal/core"
	"github.com/microslicedcore/microsliced/internal/report"
	"github.com/microslicedcore/microsliced/internal/simtime"
)

// MaxStaticCores is the largest static micro pool swept (paper: 6 of 12).
const MaxStaticCores = 6

// ---------------------------------------------------------------------------
// Figures 4 and 5 — performance vs number of micro-sliced cores
// ---------------------------------------------------------------------------

// SweepPoint is one (workload, #µcores) measurement.
type SweepPoint struct {
	MicroCores int // 0 = baseline
	AppUnits   uint64
	CoUnits    uint64
}

// SweepResult is the static µcore sweep of one workload pair.
type SweepResult struct {
	Workload string
	Points   []SweepPoint // index = micro cores, 0..MaxStaticCores
}

// Baseline returns the 0-µcore point.
func (s *SweepResult) Baseline() SweepPoint { return s.Points[0] }

// NormExecTime returns the workload's normalized execution time at n cores
// (baseline = 1.0; lower is better).
func (s *SweepResult) NormExecTime(n int) float64 {
	return float64(s.Baseline().AppUnits) / float64(s.Points[n].AppUnits)
}

// CoNormExecTime returns the co-runner's normalized execution time.
func (s *SweepResult) CoNormExecTime(n int) float64 {
	return float64(s.Baseline().CoUnits) / float64(s.Points[n].CoUnits)
}

// ThroughputGain returns the workload's throughput improvement at n cores
// (baseline = 1.0; higher is better).
func (s *SweepResult) ThroughputGain(n int) float64 {
	return float64(s.Points[n].AppUnits) / float64(s.Baseline().AppUnits)
}

// BestStatic returns the static core count (1..max) with the highest
// workload throughput.
func (s *SweepResult) BestStatic() int {
	best, bestUnits := 1, uint64(0)
	for n := 1; n < len(s.Points); n++ {
		if s.Points[n].AppUnits > bestUnits {
			best, bestUnits = n, s.Points[n].AppUnits
		}
	}
	return best
}

// Sweep measures one workload pair across 0..maxCores static micro cores.
// The points run concurrently through RunAll.
func Sweep(app string, maxCores int, dur simtime.Duration) (*SweepResult, error) {
	sweeps, err := sweepAll([]string{app}, maxCores, dur)
	if err != nil {
		return nil, err
	}
	return sweeps[0], nil
}

// sweepSetups builds the 0..maxCores static grid of one workload pair.
func sweepSetups(app string, maxCores int, dur simtime.Duration) []Setup {
	setups := make([]Setup, 0, maxCores+1)
	for n := 0; n <= maxCores; n++ {
		cc := core.StaticConfig(n)
		if n == 0 {
			cc.Mode = core.ModeOff
		}
		setups = append(setups, corunSetup(app, cc, dur))
	}
	return setups
}

// sweepAll submits the whole (workload x #µcores) grid as one RunAll batch,
// so scenario parallelism spans workloads as well as pool sizes.
func sweepAll(apps []string, maxCores int, dur simtime.Duration) ([]*SweepResult, error) {
	var setups []Setup
	for _, app := range apps {
		setups = append(setups, sweepSetups(app, maxCores, dur)...)
	}
	results, err := RunAll(setups)
	if err != nil {
		return nil, err
	}
	stride := maxCores + 1
	out := make([]*SweepResult, len(apps))
	for ai, app := range apps {
		sr := &SweepResult{Workload: app}
		for n := 0; n <= maxCores; n++ {
			res := results[ai*stride+n]
			sr.Points = append(sr.Points, SweepPoint{
				MicroCores: n,
				AppUnits:   res.VM(app).Units,
				CoUnits:    res.VM("swaptions").Units,
			})
		}
		out[ai] = sr
	}
	return out, nil
}

// Figure4Result reproduces paper Figure 4: normalized execution time for
// gmake, memclone, dedup and vips (plus the swaptions co-runner) as the
// static micro pool grows.
type Figure4Result struct {
	Sweeps []*SweepResult
}

// Figure4Workloads are the execution-time workloads of Figure 4.
var Figure4Workloads = []string{"gmake", "memclone", "dedup", "vips"}

// Figure4 runs the Figure 4 sweep.
func Figure4(dur simtime.Duration) (*Figure4Result, error) {
	sweeps, err := sweepAll(Figure4Workloads, MaxStaticCores, dur)
	if err != nil {
		return nil, err
	}
	return &Figure4Result{Sweeps: sweeps}, nil
}

// Render implements report.Renderer.
func (r *Figure4Result) Render(w io.Writer) {
	t := report.Table{
		Title:   "Figure 4: normalized execution time vs number of micro-sliced cores (lower is better)",
		Columns: []string{"workload", "series", "base", "1", "2", "3", "4", "5", "6"},
	}
	for _, s := range r.Sweeps {
		app := []any{s.Workload, s.Workload, "1.00"}
		cor := []any{"", "swaptions", "1.00"}
		for n := 1; n < len(s.Points); n++ {
			app = append(app, fmt.Sprintf("%.2f", s.NormExecTime(n)))
			cor = append(cor, fmt.Sprintf("%.2f", s.CoNormExecTime(n)))
		}
		t.AddRow(app...)
		t.AddRow(cor...)
	}
	t.Notes = append(t.Notes,
		"paper shape: gmake/memclone best at 1 core; dedup/vips need 2-3 (1 core can hurt); >=4 cores degrade",
	)
	t.Render(w)
}

// Figure5Result reproduces paper Figure 5: throughput improvement for exim
// and psearchy plus swaptions' normalized execution time.
type Figure5Result struct {
	Sweeps []*SweepResult
}

// Figure5Workloads are the throughput workloads of Figure 5.
var Figure5Workloads = []string{"exim", "psearchy"}

// Figure5 runs the Figure 5 sweep.
func Figure5(dur simtime.Duration) (*Figure5Result, error) {
	sweeps, err := sweepAll(Figure5Workloads, MaxStaticCores, dur)
	if err != nil {
		return nil, err
	}
	return &Figure5Result{Sweeps: sweeps}, nil
}

// Render implements report.Renderer.
func (r *Figure5Result) Render(w io.Writer) {
	t := report.Table{
		Title:   "Figure 5: throughput improvement vs number of micro-sliced cores (higher is better)",
		Columns: []string{"workload", "series", "base", "1", "2", "3", "4", "5", "6"},
	}
	for _, s := range r.Sweeps {
		app := []any{s.Workload, s.Workload + " speedup", "1.00"}
		cor := []any{"", "swaptions time", "1.00"}
		for n := 1; n < len(s.Points); n++ {
			app = append(app, fmt.Sprintf("%.2f", s.ThroughputGain(n)))
			cor = append(cor, fmt.Sprintf("%.2f", s.CoNormExecTime(n)))
		}
		t.AddRow(app...)
		t.AddRow(cor...)
	}
	t.Notes = append(t.Notes, "paper: exim 3.9x at 1 core (10% swaptions cost); psearchy 1.4x at 1 core")
	t.Render(w)
}

// ---------------------------------------------------------------------------
// Figure 6 — static best vs dynamic
// ---------------------------------------------------------------------------

// Figure6Row compares one workload pair across the three configurations.
type Figure6Row struct {
	Workload    string
	StaticCores int
	// Gains are throughput ratios vs baseline (>1 is better) for the app;
	// co-runner values are normalized execution time (>1 is worse).
	StaticGain    float64
	DynamicGain   float64
	StaticCoTime  float64
	DynamicCoTime float64
	DynamicAvgMu  float64
}

// Figure6Result reproduces paper Figure 6.
type Figure6Result struct {
	Rows []Figure6Row
}

// Figure6Workloads are the pairs compared in Figure 6.
var Figure6Workloads = []string{"gmake", "memclone", "dedup", "vips", "exim", "psearchy"}

// DefaultStaticBest is the per-workload static-best pool size used when no
// sweep results are supplied (values from our Figure 4/5 sweeps).
var DefaultStaticBest = map[string]int{
	"gmake": 1, "memclone": 1, "dedup": 3, "vips": 3, "exim": 1, "psearchy": 1,
}

// Figure6 compares the static-best configuration with the adaptive
// controller. bests may be nil (DefaultStaticBest is used) or come from
// Figure4/Figure5 sweeps.
func Figure6(dur simtime.Duration, bests map[string]int) (*Figure6Result, error) {
	if bests == nil {
		bests = DefaultStaticBest
	}
	nBestOf := func(app string) int {
		if n := bests[app]; n > 0 {
			return n
		}
		return 1
	}
	// Grid: (baseline, static-best, dynamic) per workload, one RunAll batch.
	var setups []Setup
	for _, app := range Figure6Workloads {
		setups = append(setups,
			corunSetup(app, offConfig(), dur),
			corunSetup(app, core.StaticConfig(nBestOf(app)), dur),
			corunSetup(app, core.DefaultConfig(), dur),
		)
	}
	results, err := RunAll(setups)
	if err != nil {
		return nil, err
	}
	out := &Figure6Result{}
	for i, app := range Figure6Workloads {
		base, static, dyn := results[3*i], results[3*i+1], results[3*i+2]
		bu, bc := base.VM(app).Units, base.VM("swaptions").Units
		out.Rows = append(out.Rows, Figure6Row{
			Workload:      app,
			StaticCores:   nBestOf(app),
			StaticGain:    float64(static.VM(app).Units) / float64(bu),
			DynamicGain:   float64(dyn.VM(app).Units) / float64(bu),
			StaticCoTime:  float64(bc) / float64(static.VM("swaptions").Units),
			DynamicCoTime: float64(bc) / float64(dyn.VM("swaptions").Units),
			DynamicAvgMu:  dyn.MicroAvg,
		})
	}
	return out, nil
}

// Render implements report.Renderer.
func (r *Figure6Result) Render(w io.Writer) {
	t := report.Table{
		Title: "Figure 6: static best vs dynamic micro-sliced cores",
		Columns: []string{"workload", "static N", "static gain", "dynamic gain",
			"static co-time", "dynamic co-time", "dyn avg ucores"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Workload, row.StaticCores, row.StaticGain, row.DynamicGain,
			row.StaticCoTime, row.DynamicCoTime, row.DynamicAvgMu)
	}
	t.Notes = append(t.Notes, "gain = workload throughput vs baseline (>1 better); co-time = swaptions normalized execution time (>1 worse)")
	t.Notes = append(t.Notes, "paper: dynamic within ~5% of static best (memclone/dedup -5%, exim slightly above, psearchy -20% but +20% over baseline)")
	t.Render(w)
}

// ---------------------------------------------------------------------------
// Figure 7 — reduction of yield events
// ---------------------------------------------------------------------------

// Figure7Row is one workload's yield decomposition under one configuration.
type Figure7Row struct {
	Workload string
	Config   string // B, S, D
	Yields   YieldBreakdown
}

// Figure7Result reproduces paper Figure 7.
type Figure7Result struct {
	Rows []Figure7Row
}

// Figure7 decomposes yields by source for baseline/static/dynamic.
func Figure7(dur simtime.Duration, bests map[string]int) (*Figure7Result, error) {
	if bests == nil {
		bests = DefaultStaticBest
	}
	labels := [3]string{"B", "S", "D"}
	var setups []Setup
	for _, app := range Figure6Workloads {
		nBest := bests[app]
		if nBest == 0 {
			nBest = 1
		}
		setups = append(setups,
			corunSetup(app, offConfig(), dur),
			corunSetup(app, core.StaticConfig(nBest), dur),
			corunSetup(app, core.DefaultConfig(), dur),
		)
	}
	results, err := RunAll(setups)
	if err != nil {
		return nil, err
	}
	out := &Figure7Result{}
	for i, app := range Figure6Workloads {
		for j, label := range labels {
			out.Rows = append(out.Rows, Figure7Row{
				Workload: app,
				Config:   label,
				Yields:   results[3*i+j].VM(app).Yields,
			})
		}
	}
	return out, nil
}

// Render implements report.Renderer.
func (r *Figure7Result) Render(w io.Writer) {
	t := report.Table{
		Title:   "Figure 7: yield events by source (B: baseline, S: static, D: dynamic)",
		Columns: []string{"workload", "cfg", "ipi", "spinlock", "halt", "others", "total", "vs B"},
	}
	var baseTotal uint64
	for _, row := range r.Rows {
		if row.Config == "B" {
			baseTotal = row.Yields.Total()
		}
		rel := "-"
		if baseTotal > 0 {
			rel = fmt.Sprintf("%.2f", float64(row.Yields.Total())/float64(baseTotal))
		}
		t.AddRow(row.Workload, row.Config, row.Yields.IPI, row.Yields.PLE,
			row.Yields.Halt, row.Yields.Other, row.Yields.Total(), rel)
	}
	t.Notes = append(t.Notes, "paper shape: S and D cut IPI- and PLE-induced yields sharply; halt yields shrink as utilization recovers")
	t.Render(w)
}

// ---------------------------------------------------------------------------
// Figure 8 — overhead on non-affected workloads
// ---------------------------------------------------------------------------

// Figure8Row is one user-level workload's overhead measurement.
type Figure8Row struct {
	Workload     string
	NormExecTime float64 // dynamic vs baseline (1.00 = no overhead)
	CoNormTime   float64
}

// Figure8Result reproduces paper Figure 8.
type Figure8Result struct {
	Rows []Figure8Row
}

// Figure8Workloads are the user-level applications of Figure 8.
var Figure8Workloads = []string{
	"blackscholes", "bodytrack", "streamcluster", "raytrace",
	"perlbench", "sjeng", "bzip2",
}

// Figure8 measures the dynamic mechanism's overhead on workloads that do
// not exercise critical OS services.
func Figure8(dur simtime.Duration) (*Figure8Result, error) {
	var setups []Setup
	for _, app := range Figure8Workloads {
		setups = append(setups,
			corunSetup(app, offConfig(), dur),
			corunSetup(app, core.DefaultConfig(), dur),
		)
	}
	results, err := RunAll(setups)
	if err != nil {
		return nil, err
	}
	out := &Figure8Result{}
	for i, app := range Figure8Workloads {
		base, dyn := results[2*i], results[2*i+1]
		out.Rows = append(out.Rows, Figure8Row{
			Workload:     app,
			NormExecTime: float64(base.VM(app).Units) / float64(dyn.VM(app).Units),
			CoNormTime:   float64(base.VM("swaptions").Units) / float64(dyn.VM("swaptions").Units),
		})
	}
	return out, nil
}

// Render implements report.Renderer.
func (r *Figure8Result) Render(w io.Writer) {
	t := report.Table{
		Title:   "Figure 8: non-affected workloads, dynamic vs baseline (1.00 = no overhead)",
		Columns: []string{"workload", "norm exec time", "swaptions norm time"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Workload, row.NormExecTime, row.CoNormTime)
	}
	t.Notes = append(t.Notes, "paper: ~2-3% average overhead")
	t.Render(w)
}

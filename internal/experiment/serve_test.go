package experiment

import (
	"bytes"
	"strings"
	"testing"
)

// TestServeSweepShape asserts the Figure-9 shape on the serving grid:
// baseline credit never meets the 5ms SLO under the mixed co-run, while
// every micro-sliced config (and the vTurbo rival) holds it through the
// mid rates; all configs saturate past the serve vCPU's capacity at the
// top rate, so the crossover is visible inside the sweep.
func TestServeSweepShape(t *testing.T) {
	r, err := ServeSweep(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(ServeCoruns)*len(serveConfigs)*len(ServeRates) {
		t.Fatalf("grid incomplete: %d rows", len(r.Rows))
	}
	for i := range r.Rows {
		m := &r.Rows[i]
		if m.Stats == nil || m.Stats.Offered == 0 {
			t.Fatalf("%s/%s/%d: empty cell", m.Config, m.Corun, m.Rate)
		}
		// Conservation holds in every cell.
		st := m.Stats
		if st.Offered != st.Dropped+st.Completed+st.InFlight {
			t.Fatalf("%s/%s/%d: offered=%d != dropped=%d + completed=%d + inflight=%d",
				m.Config, m.Corun, m.Rate, st.Offered, st.Dropped, st.Completed, st.InFlight)
		}
	}
	for _, corun := range ServeCoruns {
		byCfg := r.Crossover[corun]
		if byCfg["baseline"] != 0 {
			t.Fatalf("vs %s: baseline credit met the SLO at %d req/s — Figure 9 shape lost",
				corun, byCfg["baseline"])
		}
		for _, cfg := range []string{"static-1", "static-2", "dynamic"} {
			if byCfg[cfg] < 9000 {
				t.Fatalf("vs %s: %s crossover %d req/s, want >= 9000 — micro-slicing not recovering the SLO",
					corun, cfg, byCfg[cfg])
			}
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	out := buf.String()
	for _, want := range []string{"Serving sweep", "crossover", "baseline=never"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q", want)
		}
	}
}

// TestServeCellDeterministic: one serving cell, run twice, must agree on
// every request statistic (the sweep itself runs cells via parallelDo, so
// this is the per-cell half of the bit-identical guarantee).
func TestServeCellDeterministic(t *testing.T) {
	run := func() RequestStats {
		res, err := Run(serveSetup(3, 9000, "lookbusy", quick))
		if err != nil {
			t.Fatal(err)
		}
		st := res.VM("serve").Requests
		if st == nil {
			t.Fatal("no request stats")
		}
		return *st
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("serve cell not deterministic:\n%+v\n%+v", a, b)
	}
}

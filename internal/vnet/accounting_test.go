package vnet

import (
	"testing"

	"github.com/microslicedcore/microsliced/internal/guest"
	"github.com/microslicedcore/microsliced/internal/hv"
	"github.com/microslicedcore/microsliced/internal/ksym"
	"github.com/microslicedcore/microsliced/internal/simtime"
)

// TestLossRateIgnoresInFlight is the regression test for the mid-run loss
// accounting bug: with the consumer paused (guest never started), offered
// packets pile up in the ring and the delivery pipeline. They are in
// flight, not lost — a mid-run LossRate read must agree with the
// end-of-run read instead of counting the pipeline occupancy as loss.
func TestLossRateIgnoresInFlight(t *testing.T) {
	clock := simtime.NewClock()
	cfg := hv.DefaultConfig()
	cfg.PCPUs = 2
	h := hv.New(clock, cfg)
	k := guest.NewKernel(h, "paused", 1, ksym.Generate(4), guest.DefaultParams())
	nic := NewNIC(h, k.Dom, 1<<16) // ring big enough: nothing actually drops
	k.AttachNIC(nic)
	flow, err := NewUDPFlow(clock, nic, 0, 1500, 120e6) // 10k pkt/s
	if err != nil {
		t.Fatal(err)
	}
	flow.Attach(k.NewSocket(0))
	h.Start()
	// Consumer paused: the kernel is never started, so no packet is ever
	// fetched or consumed.
	flow.Start()
	clock.RunUntil(100 * simtime.Millisecond)
	if flow.seq < 100 {
		t.Fatalf("only %d packets offered", flow.seq)
	}
	if nic.RingLen() == 0 {
		t.Fatal("expected ring-resident packets with a paused consumer")
	}
	if got := flow.LossRate(); got != 0 {
		t.Fatalf("mid-run LossRate %.4f with zero drops — in-flight counted as lost", got)
	}
	// Let the run end without ever consuming: still not loss.
	flow.Stop()
	clock.RunUntil(clock.Now() + 10*simtime.Millisecond)
	if got := flow.LossRate(); got != 0 {
		t.Fatalf("end-of-run LossRate %.4f with zero drops", got)
	}

	// Actual tail drops do count.
	nic2 := NewNIC(h, k.Dom, 2)
	f2, err := NewUDPFlow(clock, nic2, 1, 1500, 120e6)
	if err != nil {
		t.Fatal(err)
	}
	f2.Start()
	clock.RunUntil(clock.Now() + 100*simtime.Millisecond)
	f2.Stop()
	if f2.Dropped == 0 || f2.LossRate() == 0 {
		t.Fatalf("dropped=%d loss=%.4f, want real tail-drop loss", f2.Dropped, f2.LossRate())
	}
	if want := float64(f2.Dropped) / float64(f2.seq); f2.LossRate() != want {
		t.Fatalf("LossRate %.6f != dropped/offered %.6f", f2.LossRate(), want)
	}
}

// TestGoodputSinglePacketWindow is the regression test for the
// zero-width-window bug: one consumed packet used to leave first==last and
// report 0 bps; the documented fallback is the elapsed run time.
func TestGoodputSinglePacketWindow(t *testing.T) {
	cases := []struct {
		name      string
		rx        []simtime.Time // consume instants
		rxBytes   uint64
		startedAt simtime.Time
		want      func(got float64) bool
	}{
		{
			name: "no-rx",
			want: func(got float64) bool { return got == 0 },
		},
		{
			name:      "single-packet-falls-back-to-run-time",
			rx:        []simtime.Time{simtime.Time(500 * simtime.Millisecond)},
			rxBytes:   1500,
			startedAt: 0,
			// 1500B over 500ms = 24 kbit/s — defined, not 0.
			want: func(got float64) bool { return got > 23e3 && got < 25e3 },
		},
		{
			name:      "two-packets-use-consume-window",
			rx:        []simtime.Time{simtime.Time(100 * simtime.Millisecond), simtime.Time(200 * simtime.Millisecond)},
			rxBytes:   3000,
			startedAt: 0,
			// 3000B over the 100ms between consumes = 240 kbit/s.
			want: func(got float64) bool { return got > 235e3 && got < 245e3 },
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			f := &UDPFlow{startedAt: c.startedAt, RxBytes: c.rxBytes}
			for _, at := range c.rx {
				if !f.haveRx {
					f.haveRx = true
					f.firstRx = at
				}
				f.lastRx = at
			}
			if got := f.GoodputBps(); !c.want(got) {
				t.Fatalf("goodput %.1f bps", got)
			}
			// TCPFlow shares the same window semantics.
			tf := &TCPFlow{startedAt: c.startedAt, RxBytes: c.rxBytes,
				haveRx: f.haveRx, firstRx: f.firstRx, lastRx: f.lastRx}
			if got := tf.GoodputBps(); !c.want(got) {
				t.Fatalf("tcp goodput %.1f bps", got)
			}
		})
	}
}

// TestRingWraparoundFIFO drives the circular buffer through several
// wrap-arounds with interleaved partial drains and checks strict FIFO
// delivery — behavior identical to the old slice-backed ring.
func TestRingWraparoundFIFO(t *testing.T) {
	clock := simtime.NewClock()
	h := hv.New(clock, hv.DefaultConfig())
	nic := NewNIC(h, bareDom(h), 8)
	var next, want uint64
	for round := 0; round < 50; round++ {
		for i := 0; i < 5; i++ {
			if nic.Rx(guest.Packet{Seq: next, Bytes: 64}) {
				next++
			}
		}
		for _, p := range nic.Fetch(3) {
			if p.Seq != want {
				t.Fatalf("round %d: got seq %d, want %d", round, p.Seq, want)
			}
			want++
		}
	}
	for {
		batch := nic.Fetch(3)
		if len(batch) == 0 {
			break
		}
		for _, p := range batch {
			if p.Seq != want {
				t.Fatalf("drain: got seq %d, want %d", p.Seq, want)
			}
			want++
		}
	}
	if want != next {
		t.Fatalf("delivered %d of %d admitted", want, next)
	}
	if nic.RingLen() != 0 {
		t.Fatalf("ring not empty: %d", nic.RingLen())
	}
}

// quietRing returns a warmed-up NIC whose IRQ side is held inert (latch
// pre-raised, moderation timer pinned), so Rx/Fetch exercise only the ring
// machinery. Raising a (p)IRQ schedules a clock event, which allocates by
// design — that is the event-driven clock's cost, not the ring's; the
// zero-alloc claim under test is about the ring and the fetch scratch (the
// old implementation allocated two slices per partial-drain Fetch).
func quietRing(cap, warm int) *NIC {
	clock := simtime.NewClock()
	h := hv.New(clock, hv.DefaultConfig())
	nic := NewNIC(h, bareDom(h), cap)
	nic.irqRaised = true
	nic.reassertEv = &simtime.Event{} // pin: armReassert sees it as pending
	for i := 0; i < warm; i++ {
		nic.Rx(guest.Packet{Seq: uint64(i), Bytes: 64})
	}
	nic.Fetch(warm)
	nic.irqRaised = true
	return nic
}

// TestFetchZeroAlloc: the ring's admission and drain paths must not
// allocate at steady state.
func TestFetchZeroAlloc(t *testing.T) {
	nic := quietRing(256, 256)
	allocs := testing.AllocsPerRun(10, func() {
		// Offset by a prime each run so the window wraps at varying phases.
		for i := 0; i < 96; i++ {
			nic.Rx(guest.Packet{Seq: uint64(i), Bytes: 64})
		}
		nic.Fetch(96)
		nic.irqRaised = true
	})
	if allocs != 0 {
		t.Fatalf("%.1f allocs per fill+drain cycle, want 0", allocs)
	}
}

func BenchmarkNICFetch(b *testing.B) {
	nic := quietRing(256, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 64; j++ {
			nic.Rx(guest.Packet{Seq: uint64(j), Bytes: 64})
		}
		nic.Fetch(64)
		nic.irqRaised = true
	}
}

// TestIRQReassert: with the guest never fetching, the moderation timer must
// keep re-asserting the IRQ so the backlog stays visible to the hypervisor
// (and to IRQ-triggered acceleration). Draining stops re-assertion.
func TestIRQReassert(t *testing.T) {
	clock := simtime.NewClock()
	h := hv.New(clock, hv.DefaultConfig())
	nic := NewNIC(h, bareDom(h), 64)
	nic.Rx(guest.Packet{Seq: 1, Bytes: 64}) // edge IRQ
	nic.Rx(guest.Packet{Seq: 2, Bytes: 64}) // coalesced: arms the timer
	if nic.IRQs != 1 {
		t.Fatalf("IRQs=%d before timer", nic.IRQs)
	}
	clock.RunUntil(simtime.Millisecond)
	if nic.Reasserts < 5 {
		t.Fatalf("reasserts=%d after 1ms of unserviced backlog, want >= 5", nic.Reasserts)
	}
	// Drain; the timer finds an empty ring and stops.
	nic.Fetch(64)
	before := nic.IRQs
	clock.RunUntil(clock.Now() + simtime.Millisecond)
	if nic.IRQs != before {
		t.Fatalf("IRQs grew %d -> %d after drain", before, nic.IRQs)
	}

	// Disabled moderation: pure edge-triggered coalescing.
	nic2 := NewNIC(h, bareDom(h), 64)
	nic2.SetIRQReassert(0)
	nic2.Rx(guest.Packet{Seq: 1, Bytes: 64})
	nic2.Rx(guest.Packet{Seq: 2, Bytes: 64})
	clock.RunUntil(clock.Now() + simtime.Millisecond)
	if nic2.IRQs != 1 {
		t.Fatalf("disabled reassert: IRQs=%d, want 1", nic2.IRQs)
	}
}

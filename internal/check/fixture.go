package check

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Fixture is a replayable record of one conformance failure: the generating
// seed, the violated relation, and both the original and the shrunk
// scenario. Written as JSON so CI can upload it as an artifact and a
// developer can replay it locally with ReplayFixture.
type Fixture struct {
	Seed     uint64   `json:"seed"`
	Err      string   `json:"error"`
	Original Scenario `json:"original"`
	Shrunk   Scenario `json:"shrunk"`
}

// WriteFixture writes f under dir (created if missing) as
// fixture-seed<seed>.json and returns the path.
func WriteFixture(dir string, f *Fixture) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("check: fixture dir: %w", err)
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return "", fmt.Errorf("check: marshal fixture: %w", err)
	}
	path := filepath.Join(dir, fmt.Sprintf("fixture-seed%d.json", f.Seed))
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", fmt.Errorf("check: write fixture: %w", err)
	}
	return path, nil
}

// LoadFixture reads a fixture file written by WriteFixture.
func LoadFixture(path string) (*Fixture, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("check: read fixture: %w", err)
	}
	var f Fixture
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("check: parse fixture %s: %w", path, err)
	}
	return &f, nil
}

// ReplayFixture re-checks a fixture's shrunk scenario (falling back to the
// original when no shrink was recorded) and returns the relation error it
// reproduces, or nil if the failure no longer occurs. Recovery-conformance
// fixtures (Recovery set) replay through CheckRecovery.
func ReplayFixture(f *Fixture) error {
	sc := f.Shrunk
	if len(sc.VMs) == 0 {
		sc = f.Original
	}
	var c Checker
	if sc.Recovery != nil {
		return c.CheckRecovery(sc)
	}
	return c.Check(sc)
}

package microsliced

// One benchmark per table and figure of the paper's evaluation, plus the
// ablation studies of DESIGN.md §5. Each benchmark iteration runs complete
// simulated scenarios (hundreds of simulated milliseconds each) and reports
// the reproduced headline statistic through b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates the paper's result shapes alongside the usual ns/op numbers.
// The full-length reproduction with rendered tables is cmd/paperbench.

import (
	"testing"

	"github.com/microslicedcore/microsliced/internal/core"
	"github.com/microslicedcore/microsliced/internal/experiment"
	"github.com/microslicedcore/microsliced/internal/hv"
	"github.com/microslicedcore/microsliced/internal/simtime"
)

// benchDur keeps each scenario short; shapes remain stable at this length.
const benchDur = simtime.Second

func off() core.Config {
	c := core.DefaultConfig()
	c.Mode = core.ModeOff
	return c
}

func corun(app string, cc core.Config) experiment.Setup {
	return experiment.Setup{
		VMs: []experiment.VMSpec{
			{Name: app, App: app, Seed: 11},
			{Name: "swaptions", App: "swaptions", Seed: 22},
		},
		Core:         cc,
		Duration:     benchDur,
		StaggerStart: true,
	}
}

func mustRun(b *testing.B, s experiment.Setup) *experiment.Result {
	b.Helper()
	res, err := experiment.Run(s)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkTable2_Yields reproduces Table 2: the co-run yield explosion.
func BenchmarkTable2_Yields(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		solo := mustRun(b, experiment.Setup{
			VMs:      []experiment.VMSpec{{Name: "gmake", App: "gmake", Seed: 11}},
			Core:     off(),
			Duration: benchDur,
		})
		co := mustRun(b, corun("gmake", off()))
		ratio = float64(co.VM("gmake").Yields.Total()) / float64(1+solo.VM("gmake").Yields.Total())
	}
	b.ReportMetric(ratio, "corun/solo-yields")
}

// BenchmarkTable3_CriticalSymbols reproduces Table 3: runtime detection of
// the critical-component whitelist.
func BenchmarkTable3_CriticalSymbols(b *testing.B) {
	var symbols float64
	for i := 0; i < b.N; i++ {
		res := mustRun(b, corun("gmake", core.StaticConfig(1)))
		symbols = float64(len(res.SymbolHits))
	}
	b.ReportMetric(symbols, "distinct-critical-symbols")
}

// BenchmarkTable4a_SpinlockWait reproduces Table 4a: gmake's contended
// spinlock wait blowup under co-run.
func BenchmarkTable4a_SpinlockWait(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		co := mustRun(b, corun("gmake", off()))
		worst = 0
		for _, h := range co.VM("gmake").LockStat {
			if m := h.Mean() / 1000; m > worst {
				worst = m
			}
		}
	}
	b.ReportMetric(worst, "worst-class-wait-us")
}

// BenchmarkTable4b_TLBSync reproduces Table 4b: dedup's TLB
// synchronization latency under co-run.
func BenchmarkTable4b_TLBSync(b *testing.B) {
	var avg float64
	for i := 0; i < b.N; i++ {
		co := mustRun(b, corun("dedup", off()))
		avg = co.VM("dedup").TLB.Mean() / 1000
	}
	b.ReportMetric(avg, "tlb-sync-avg-us")
}

// BenchmarkTable4c_IperfSoloVsMixed reproduces Table 4c: the mixed-vCPU
// iPerf collapse.
func BenchmarkTable4c_IperfSoloVsMixed(b *testing.B) {
	var frac float64
	for i := 0; i < b.N; i++ {
		solo, err := experiment.RunIO("udp", false, off(), benchDur)
		if err != nil {
			b.Fatal(err)
		}
		mixed, err := experiment.RunIO("udp", true, off(), benchDur)
		if err != nil {
			b.Fatal(err)
		}
		frac = mixed.Mbps / solo.Mbps
	}
	b.ReportMetric(frac, "mixed/solo-throughput")
}

// BenchmarkFigure4_MicroCoreSweep reproduces Figure 4 for each
// execution-time workload: normalized execution time at its best static
// micro pool.
func BenchmarkFigure4_MicroCoreSweep(b *testing.B) {
	for _, wl := range []struct {
		app   string
		cores int
	}{{"gmake", 1}, {"memclone", 1}, {"dedup", 3}, {"vips", 3}} {
		wl := wl
		b.Run(wl.app, func(b *testing.B) {
			var norm float64
			for i := 0; i < b.N; i++ {
				base := mustRun(b, corun(wl.app, off()))
				acc := mustRun(b, corun(wl.app, core.StaticConfig(wl.cores)))
				norm = float64(base.VM(wl.app).Units) / float64(acc.VM(wl.app).Units)
			}
			b.ReportMetric(norm, "norm-exec-time")
		})
	}
}

// BenchmarkFigure5_ThroughputSweep reproduces Figure 5: throughput gains
// for exim and psearchy.
func BenchmarkFigure5_ThroughputSweep(b *testing.B) {
	for _, wl := range []struct {
		app   string
		cores int
	}{{"exim", 1}, {"psearchy", 3}} {
		wl := wl
		b.Run(wl.app, func(b *testing.B) {
			var gain float64
			for i := 0; i < b.N; i++ {
				base := mustRun(b, corun(wl.app, off()))
				acc := mustRun(b, corun(wl.app, core.StaticConfig(wl.cores)))
				gain = float64(acc.VM(wl.app).Units) / float64(base.VM(wl.app).Units)
			}
			b.ReportMetric(gain, "throughput-gain")
		})
	}
}

// BenchmarkFigure6_StaticVsDynamic reproduces Figure 6: the adaptive
// controller against the static best (exim).
func BenchmarkFigure6_StaticVsDynamic(b *testing.B) {
	var rel float64
	dur := 3 * benchDur // the adaptive epoch needs room to settle
	for i := 0; i < b.N; i++ {
		st := corun("exim", core.StaticConfig(1))
		st.Duration = dur
		static := mustRun(b, st)
		dn := corun("exim", core.DefaultConfig())
		dn.Duration = dur
		dyn := mustRun(b, dn)
		rel = float64(dyn.VM("exim").Units) / float64(static.VM("exim").Units)
	}
	b.ReportMetric(rel, "dynamic/static-throughput")
}

// BenchmarkFigure7_YieldBreakdown reproduces Figure 7: yield reduction
// under the static mechanism.
func BenchmarkFigure7_YieldBreakdown(b *testing.B) {
	var rel float64
	for i := 0; i < b.N; i++ {
		base := mustRun(b, corun("exim", off()))
		acc := mustRun(b, corun("exim", core.StaticConfig(1)))
		rel = float64(acc.VM("exim").Yields.Total()) / float64(1+base.VM("exim").Yields.Total())
	}
	b.ReportMetric(rel, "yields-vs-baseline")
}

// BenchmarkFigure8_Overhead reproduces Figure 8: the mechanism's overhead
// on user-level workloads.
func BenchmarkFigure8_Overhead(b *testing.B) {
	var norm float64
	for i := 0; i < b.N; i++ {
		base := mustRun(b, corun("blackscholes", off()))
		dyn := mustRun(b, corun("blackscholes", core.DefaultConfig()))
		norm = float64(base.VM("blackscholes").Units) / float64(dyn.VM("blackscholes").Units)
	}
	b.ReportMetric(norm, "norm-exec-time")
}

// BenchmarkFigure9_MixedIO reproduces Figure 9: micro-slicing rescuing the
// mixed-vCPU I/O path.
func BenchmarkFigure9_MixedIO(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		base, err := experiment.RunIO("tcp", true, off(), benchDur)
		if err != nil {
			b.Fatal(err)
		}
		fix, err := experiment.RunIO("tcp", true, core.StaticConfig(1), benchDur)
		if err != nil {
			b.Fatal(err)
		}
		gain = fix.Mbps / base.Mbps
	}
	b.ReportMetric(gain, "usliced/baseline-tcp")
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md §5)
// ---------------------------------------------------------------------------

// BenchmarkAblation_PreciseSelection (D1): migrating only RIP-classified
// critical vCPUs vs migrating any preempted sibling.
func BenchmarkAblation_PreciseSelection(b *testing.B) {
	var rel float64
	for i := 0; i < b.N; i++ {
		precise := mustRun(b, corun("gmake", core.StaticConfig(1)))
		sloppy := core.StaticConfig(1)
		sloppy.PreciseSelection = false
		imprecise := mustRun(b, corun("gmake", sloppy))
		rel = float64(imprecise.VM("gmake").Units) / float64(precise.VM("gmake").Units)
	}
	b.ReportMetric(rel, "imprecise/precise-throughput")
}

// BenchmarkAblation_MicroSliceLength (D2): the 0.1ms micro quantum against
// a 1ms one.
func BenchmarkAblation_MicroSliceLength(b *testing.B) {
	var rel float64
	for i := 0; i < b.N; i++ {
		short := mustRun(b, corun("dedup", core.StaticConfig(3)))
		long := corun("dedup", core.StaticConfig(3))
		cfg := hv.DefaultConfig()
		cfg.MicroSlice = simtime.Millisecond
		long.HVConfig = &cfg
		longRes := mustRun(b, long)
		rel = float64(longRes.VM("dedup").Units) / float64(short.VM("dedup").Units)
	}
	b.ReportMetric(rel, "1ms/0.1ms-throughput")
}

// BenchmarkAblation_MigrateBack (D3): returning vCPUs home after one micro
// slice vs letting them stay.
func BenchmarkAblation_MigrateBack(b *testing.B) {
	var rel float64
	for i := 0; i < b.N; i++ {
		back := mustRun(b, corun("exim", core.StaticConfig(1)))
		stay := corun("exim", core.StaticConfig(1))
		cfg := hv.DefaultConfig()
		cfg.MicroReturnHome = false
		stay.HVConfig = &cfg
		stayRes := mustRun(b, stay)
		rel = float64(stayRes.VM("exim").Units) / float64(back.VM("exim").Units)
	}
	b.ReportMetric(rel, "stay/migrate-back-throughput")
}

// BenchmarkAblation_RunqueueLimit (D4): the one-vCPU micro runqueue limit
// vs unbounded stacking.
func BenchmarkAblation_RunqueueLimit(b *testing.B) {
	var rel float64
	for i := 0; i < b.N; i++ {
		limited := mustRun(b, corun("dedup", core.StaticConfig(2)))
		stacked := corun("dedup", core.StaticConfig(2))
		cfg := hv.DefaultConfig()
		cfg.MicroRunqLimit = 0
		stacked.HVConfig = &cfg
		stackedRes := mustRun(b, stacked)
		rel = float64(stackedRes.VM("dedup").Units) / float64(limited.VM("dedup").Units)
	}
	b.ReportMetric(rel, "unbounded/limited-throughput")
}

// BenchmarkAblation_GlobalShortSlice (D5): the prior-work alternative of a
// 0.1ms quantum on every core (no migration mechanism), showing the
// context-switch and cache cost the paper's precise selection avoids.
func BenchmarkAblation_GlobalShortSlice(b *testing.B) {
	var rel float64
	for i := 0; i < b.N; i++ {
		microsliced := mustRun(b, corun("gmake", core.StaticConfig(1)))
		global := corun("gmake", off())
		cfg := hv.DefaultConfig()
		cfg.NormalSlice = 100 * simtime.Microsecond
		global.HVConfig = &cfg
		globalRes := mustRun(b, global)
		// Compare the co-runner, which pays the short-slice tax.
		rel = float64(globalRes.VM("swaptions").Units) / float64(microsliced.VM("swaptions").Units)
	}
	b.ReportMetric(rel, "global-short/usliced-corunner")
}

// BenchmarkSimulator_EventThroughput measures raw simulator speed on the
// heaviest scenario (events processed per wall second are the limiting
// cost of every experiment above).
func BenchmarkSimulator_EventThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mustRun(b, corun("dedup", off()))
	}
}

// BenchmarkRunAll_SweepGrid measures a whole static-pool sweep submitted as
// one grid through experiment.RunAll — the unit of work every table and
// figure generator now hands to the worker pool. Run with -cpu to compare
// worker counts; results are bit-identical at any parallelism.
func BenchmarkRunAll_SweepGrid(b *testing.B) {
	grid := make([]experiment.Setup, 0, 4)
	for n := 0; n <= 3; n++ {
		cc := core.StaticConfig(n)
		if n == 0 {
			cc.Mode = core.ModeOff
		}
		grid = append(grid, corun("exim", cc))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunAll(grid); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1_RivalComparison quantifies the paper's Table 1: each
// implemented prior-work system against the micro-sliced mechanism on the
// lock-holder-preemption scenario.
func BenchmarkTable1_RivalComparison(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		vturbo := corun("exim", off())
		vturbo.Rival = experiment.RivalVTurbo
		vt := mustRun(b, vturbo)
		us := mustRun(b, corun("exim", core.StaticConfig(1)))
		gap = float64(us.VM("exim").Units) / float64(vt.VM("exim").Units)
	}
	b.ReportMetric(gap, "usliced/vturbo-lock-throughput")
}

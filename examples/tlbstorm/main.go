// TLB storm: dedup's mmap/munmap churn makes every thread broadcast TLB
// shootdown IPIs to all sibling vCPUs; under consolidation the preempted
// recipients turn microsecond flushes into multi-millisecond stalls
// (paper §3.1, Table 4b, Figure 4).
//
// The program sweeps the static micro pool from 0 to 4 cores and shows
// why one core is not enough for one-to-many IPIs — the paper's most
// distinctive result shape.
//
//	go run ./examples/tlbstorm
package main

import (
	"fmt"
	"log"

	microsliced "github.com/microslicedcore/microsliced"
)

func main() {
	fmt.Println("dedup + swaptions at 2:1 on 12 pCPUs, 2s simulated per point")
	fmt.Printf("%-8s %10s %8s %14s %14s %12s\n",
		"ucores", "dedup", "gain", "tlb avg (us)", "tlb max (us)", "ipi yields")
	var base uint64
	for cores := 0; cores <= 4; cores++ {
		mode := microsliced.Static
		if cores == 0 {
			mode = microsliced.Off
		}
		res, err := microsliced.Simulate(microsliced.Scenario{
			VMs:         []microsliced.VM{{App: "dedup"}, {App: "swaptions"}},
			Mode:        mode,
			StaticCores: cores,
			Seconds:     2,
		})
		if err != nil {
			log.Fatal(err)
		}
		d := res.VM("dedup")
		if cores == 0 {
			base = d.WorkUnits
		}
		fmt.Printf("%-8d %10d %7.2fx %14.1f %14.1f %12d\n",
			cores, d.WorkUnits, float64(d.WorkUnits)/float64(base),
			d.TLBSyncAvgUs, d.TLBSyncMaxUs, d.YieldsIPI)
	}
	fmt.Println("\nnote the paper's signature: one micro core can make dedup WORSE")
	fmt.Println("(eleven recipients serialize through it), while two or three cores")
	fmt.Println("let the whole shootdown fan-in complete within a few 0.1ms slices.")
}

// Package simtime provides the discrete-event simulation core: a virtual
// nanosecond clock and a cancellable event queue.
//
// The simulation is single-threaded by design. All state transitions in the
// simulated machine happen inside event callbacks executed in strict
// timestamp order (ties broken by scheduling order), which makes every run
// bit-for-bit reproducible for a given seed. This is the substitution for
// running on real hardware: latencies are exact virtual-time quantities
// instead of noisy wall-clock measurements.
//
// # Performance
//
// The event queue is a monomorphic 4-ary min-heap on *Event — no interface
// boxing — and the clock keeps a free list of fired and cancelled events,
// so steady-state schedule/fire cycles allocate nothing. The price of the
// recycling is a handle-lifetime rule: an *Event returned by At/After is
// valid only until the event fires or is cancelled. Holders that keep an
// event in a field must clear that field when the callback runs (every
// holder in this repository nils its field at the top of the callback) and
// must never Cancel through a reference to an event that already fired.
package simtime

import (
	"fmt"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration = Time

// Common durations, mirroring time.Duration constants but in virtual time.
const (
	Nanosecond  Duration = 1
	Microsecond Duration = 1000 * Nanosecond
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
)

// Infinity is a time later than any event the simulator will ever schedule.
const Infinity Time = 1<<63 - 1

// String formats a Time with an adaptive unit for debugging and reports.
func (t Time) String() string {
	switch {
	case t == Infinity:
		return "inf"
	case t >= Second:
		return fmt.Sprintf("%.6fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros converts t to floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis converts t to floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Event is a scheduled callback. Events are created through Clock.At or
// Clock.After and may be cancelled until they fire.
//
// The handle is valid only while the event is queued: once the event fires
// or is cancelled the clock recycles the Event for a future At/After, so a
// retained pointer must be dropped at that point (see the package comment).
type Event struct {
	when     Time
	seq      uint64
	index    int // heap index, -1 when not queued
	fn       func()
	label    string
	clockRef *Clock // owning clock while queued; nil once fired/cancelled
}

// When returns the virtual time at which the event fires (or fired).
func (e *Event) When() Time { return e.when }

// Pending reports whether the event is still queued.
func (e *Event) Pending() bool { return e != nil && e.index >= 0 }

// Cancel removes the event from the queue. Cancelling a fired or already
// cancelled event is a no-op. Cancel returns true if the event was pending.
func (e *Event) Cancel() bool {
	if e == nil || e.index < 0 || e.clockRef == nil {
		return false
	}
	c := e.clockRef
	c.pq.remove(e.index)
	c.recycle(e)
	return true
}

// WatchdogInfo is the diagnostic snapshot handed to a livelock watchdog.
type WatchdogInfo struct {
	// Now is the virtual time the event loop is stuck at.
	Now Time
	// SameTimeEvents counts consecutive events executed without the
	// virtual clock advancing.
	SameTimeEvents uint64
	// RecentLabels holds the labels of the most recent events, oldest
	// first (unlabeled events appear as ""), for post-mortem diagnosis.
	RecentLabels []string
}

// wdRingSize is the number of recent event labels kept for watchdog
// diagnostics.
const wdRingSize = 16

// Clock owns virtual time and the pending-event queue.
type Clock struct {
	now     Time
	pq      eventHeap
	seq     uint64
	fired   uint64
	stopped bool
	free    []*Event // recycled Event objects (see package comment)
	firing  *Event   // event whose callback is executing (Reschedule target)

	// jitter, when set, perturbs the delay of every After/AfterLabeled
	// call (fault injection: timer-tick jitter). The returned delay is
	// clamped to >= 0. At-scheduling is never jittered: absolute times
	// express causal deadlines, not timer programming.
	jitter func(label string, d Duration) Duration

	// Watchdog state: when wdLimit > 0, Step counts consecutive events
	// executed at an unchanged virtual time and fires wdFn once the count
	// reaches the limit (event-loop livelock: work without progress).
	wdLimit uint64
	wdCount uint64
	wdLast  Time
	wdFn    func(WatchdogInfo)
	wdRing  [wdRingSize]string
	wdNext  int
	wdFired bool
}

// SetDelayJitter installs (or, with nil, removes) a delay perturbation
// applied to every After/AfterLabeled call. The function receives the
// event's label and nominal delay and returns the delay to use; results
// below zero are clamped to zero. Deterministic fault plans use this to
// model timer-tick jitter without touching callers.
func (c *Clock) SetDelayJitter(fn func(label string, d Duration) Duration) {
	c.jitter = fn
}

// SetWatchdog arms a livelock watchdog: if limit consecutive events execute
// without the virtual clock advancing, fn is invoked once with diagnostics
// (fn typically calls Stop and records the info). limit 0 disarms. The
// watchdog only observes the event loop; it never schedules events, so
// arming it cannot perturb a run's results.
func (c *Clock) SetWatchdog(limit uint64, fn func(WatchdogInfo)) {
	c.wdLimit = limit
	c.wdFn = fn
	c.wdCount = 0
	c.wdFired = false
}

// WatchdogFired reports whether the armed watchdog has triggered.
func (c *Clock) WatchdogFired() bool { return c.wdFired }

// recentLabels returns the watchdog label ring, oldest first.
func (c *Clock) recentLabels() []string {
	out := make([]string, 0, wdRingSize)
	for i := 0; i < wdRingSize; i++ {
		out = append(out, c.wdRing[(c.wdNext+i)%wdRingSize])
	}
	return out
}

// NewClock returns a clock at time zero with an empty queue.
func NewClock() *Clock {
	return &Clock{}
}

// Now returns the current virtual time.
func (c *Clock) Now() Time { return c.now }

// Fired returns the number of events executed so far (for diagnostics).
func (c *Clock) Fired() uint64 { return c.fired }

// Pending returns the number of queued events.
func (c *Clock) Pending() int { return len(c.pq) }

// alloc returns a fresh or recycled Event.
func (c *Clock) alloc() *Event {
	if n := len(c.free); n > 0 {
		ev := c.free[n-1]
		c.free[n-1] = nil
		c.free = c.free[:n-1]
		return ev
	}
	return &Event{}
}

// recycle clears a fired/cancelled event and returns it to the free list.
func (c *Clock) recycle(ev *Event) {
	ev.fn = nil
	ev.label = ""
	ev.clockRef = nil
	ev.index = -1
	c.free = append(c.free, ev)
}

// At schedules fn to run at time t. Scheduling in the past panics: that is
// always a simulator bug, and silently clamping would corrupt causality.
func (c *Clock) At(t Time, fn func()) *Event {
	return c.AtLabeled(t, "", fn)
}

// AtLabeled is At with a debug label attached to the event.
func (c *Clock) AtLabeled(t Time, label string, fn func()) *Event {
	if t < c.now {
		panic(fmt.Sprintf("simtime: scheduling event %q at %v before now %v", label, t, c.now))
	}
	if fn == nil {
		panic("simtime: nil event callback")
	}
	c.seq++
	ev := c.alloc()
	ev.when = t
	ev.seq = c.seq
	ev.fn = fn
	ev.label = label
	ev.clockRef = c
	c.pq.push(ev)
	return ev
}

// After schedules fn to run d nanoseconds from now. A negative d panics,
// mirroring At's past-time rule: a negative delay is always a simulator bug,
// and silently clamping it to zero would corrupt causality.
func (c *Clock) After(d Duration, fn func()) *Event {
	return c.AfterLabeled(d, "", fn)
}

// AfterLabeled is After with a debug label. Like After, negative d panics.
// An installed delay jitter (SetDelayJitter) is applied to d before
// scheduling; jittered delays are clamped to >= 0 rather than panicking,
// since the perturbation is injected, not a caller bug.
func (c *Clock) AfterLabeled(d Duration, label string, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("simtime: scheduling event %q %v before now (negative After)", label, d))
	}
	if c.jitter != nil {
		if d = c.jitter(label, d); d < 0 {
			d = 0
		}
	}
	return c.AtLabeled(c.now+d, label, fn)
}

// Step executes the earliest pending event. It returns false when the queue
// is empty or the clock has been stopped.
func (c *Clock) Step() bool {
	if c.stopped || len(c.pq) == 0 {
		return false
	}
	ev := c.pq.popMin()
	ev.clockRef = nil
	c.now = ev.when
	c.fired++
	if c.wdLimit > 0 {
		if ev.when == c.wdLast {
			c.wdCount++
		} else {
			c.wdLast, c.wdCount = ev.when, 1
		}
		c.wdRing[c.wdNext] = ev.label
		c.wdNext = (c.wdNext + 1) % wdRingSize
		if c.wdCount >= c.wdLimit && !c.wdFired {
			c.wdFired = true
			if fn := c.wdFn; fn != nil {
				fn(WatchdogInfo{Now: c.now, SameTimeEvents: c.wdCount, RecentLabels: c.recentLabels()})
			}
		}
	}
	fn := ev.fn
	prev := c.firing
	c.firing = ev
	fn()
	// Recycled only after the callback: during fn the fired event cannot be
	// reused, so a stale Cancel through an old reference stays a no-op
	// instead of killing an unrelated fresh event. A callback that called
	// Reschedule re-queued the very same Event; it must survive.
	if c.firing == ev {
		c.recycle(ev)
	}
	c.firing = prev
	return true
}

// Reschedule re-arms the event whose callback is currently executing to fire
// again d nanoseconds from now, reusing the same Event object (callback and
// label preserved) instead of recycling it. It is the allocation-free form of
// calling AfterLabeled(d, label, fn) from inside fn for periodic events, and
// is bit-identical to it: the re-armed event draws the same sequence number
// the equivalent AfterLabeled call would have drawn. An installed delay
// jitter applies exactly as in AfterLabeled. Calling Reschedule outside an
// event callback, twice in one callback, or with negative d panics.
func (c *Clock) Reschedule(d Duration) *Event {
	ev := c.firing
	if ev == nil {
		panic("simtime: Reschedule outside an event callback")
	}
	if d < 0 {
		panic(fmt.Sprintf("simtime: rescheduling event %q %v before now (negative delay)", ev.label, d))
	}
	if c.jitter != nil {
		if d = c.jitter(ev.label, d); d < 0 {
			d = 0
		}
	}
	c.firing = nil
	c.seq++
	ev.when = c.now + d
	ev.seq = c.seq
	ev.clockRef = c
	c.pq.push(ev)
	return ev
}

// RunUntil executes events until the queue is exhausted or the next event
// would fire after t. The clock is left at min(t, time of last event run).
// It returns the number of events executed.
func (c *Clock) RunUntil(t Time) uint64 {
	var n uint64
	for !c.stopped && len(c.pq) > 0 && c.pq[0].when <= t {
		c.Step()
		n++
	}
	if c.now < t {
		c.now = t
	}
	return n
}

// Run executes events until the queue is empty or Stop is called.
func (c *Clock) Run() uint64 {
	var n uint64
	for c.Step() {
		n++
	}
	return n
}

// Stop halts Step/Run/RunUntil. Pending events remain queued.
func (c *Clock) Stop() { c.stopped = true }

// Stopped reports whether Stop has been called.
func (c *Clock) Stopped() bool { return c.stopped }

// NextEventTime returns the firing time of the earliest queued event, or
// Infinity when the queue is empty.
func (c *Clock) NextEventTime() Time {
	if len(c.pq) == 0 {
		return Infinity
	}
	return c.pq[0].when
}

// eventHeap is a monomorphic 4-ary min-heap on (when, seq). Compared to
// container/heap it avoids the `any` boxing on every Push/Pop and halves the
// tree depth, which matters because the heap operation per scheduled event
// is the single hottest path of the whole simulator.
type eventHeap []*Event

// heapArity is the branching factor. Four children per node trade slightly
// more comparisons per level for half the levels (and half the cache-missed
// swaps) of a binary heap — the classic d-ary heap win for queues with
// cheap comparisons.
const heapArity = 4

func eventLess(a, b *Event) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

// push appends ev and restores the heap property.
func (h *eventHeap) push(ev *Event) {
	*h = append(*h, ev)
	(*h).siftUp(len(*h) - 1, ev)
}

// popMin removes and returns the earliest event.
func (h *eventHeap) popMin() *Event {
	old := *h
	ev := old[0]
	last := len(old) - 1
	moved := old[last]
	old[last] = nil
	*h = old[:last]
	if last > 0 {
		(*h).siftDown(0, moved)
	}
	ev.index = -1
	return ev
}

// remove deletes the event at heap index i (Cancel path).
func (h *eventHeap) remove(i int) {
	old := *h
	last := len(old) - 1
	ev := old[i]
	moved := old[last]
	old[last] = nil
	*h = old[:last]
	if i < last {
		// The replacement may need to move either direction.
		(*h).siftDown(i, moved)
		if moved.index == i {
			(*h).siftUp(i, moved)
		}
	}
	ev.index = -1
}

// siftUp places ev (conceptually at hole i) at its final position towards
// the root.
func (h eventHeap) siftUp(i int, ev *Event) {
	for i > 0 {
		parent := (i - 1) / heapArity
		p := h[parent]
		if !eventLess(ev, p) {
			break
		}
		h[i] = p
		p.index = i
		i = parent
	}
	h[i] = ev
	ev.index = i
}

// siftDown places ev (conceptually at hole i) at its final position towards
// the leaves.
func (h eventHeap) siftDown(i int, ev *Event) {
	n := len(h)
	for {
		first := heapArity*i + 1
		if first >= n {
			break
		}
		end := first + heapArity
		if end > n {
			end = n
		}
		best := first
		bestEv := h[first]
		for c := first + 1; c < end; c++ {
			if eventLess(h[c], bestEv) {
				best, bestEv = c, h[c]
			}
		}
		if !eventLess(bestEv, ev) {
			break
		}
		h[i] = bestEv
		bestEv.index = i
		i = best
	}
	h[i] = ev
	ev.index = i
}

package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"github.com/microslicedcore/microsliced/internal/simtime"
	"github.com/microslicedcore/microsliced/internal/trace"
)

// ExportMeta labels the exported timeline. Chrome trace-event processes map
// to domains and threads to vCPUs.
type ExportMeta struct {
	// DomainNames maps a domain ID to its display name.
	DomainNames map[int16]string
	// Spans, when non-nil, embeds the run's span/stage aggregates (one
	// SpanStat per kind, as produced by Observer.Summary) as "X" events on
	// a synthetic "latency" process (pid=-2): one slice per recorded kind,
	// its stage decomposition in args. microtrace blame recomputes the
	// attribution table offline from these events.
	Spans []SpanStat
	// Decisions, when non-nil, embeds the adaptive controller's decision
	// trail as "i" instant events on a synthetic "controller" process
	// (pid=-3): one instant per sizing decision, named by its reason, with
	// the chosen size, live ceiling and classified sample in args.
	Decisions []DecisionRecord
}

// blamePID is the synthetic trace-event process carrying span/stage
// aggregates (pid=-1 is the host row); ctrlPID carries the adaptive
// controller's decision trail.
const (
	blamePID = -2
	ctrlPID  = -3
)

// chromeHeader/chromeFooter frame the trace-event JSON object. Perfetto and
// chrome://tracing both load this shape directly.
const (
	chromeHeader = `{"displayTimeUnit":"ns","traceEvents":[`
	chromeFooter = "\n]}\n"
)

// runKey identifies one vCPU's open running interval during export.
type runKey struct {
	dom, vcpu int16
}

type openRun struct {
	start simtime.Time
	pcpu  int16
	prio  uint64
}

// WriteChromeTrace streams recs (oldest-first, as returned by
// trace.Buffer.Records) to w as Chrome trace-event JSON:
//
//   - each vCPU's running intervals (KindSchedule → KindPreempt / KindYield
//     / KindBlock) become "X" complete events on pid=domain, tid=vCPU;
//   - wakes, boosts, IPIs, IRQs, migrations, pool resizes, detections and
//     hotplugs become "i" instant events;
//   - domains and vCPUs get process_name / thread_name metadata.
//
// Timestamps and durations are microseconds with nanosecond precision
// (three decimals), per the trace-event format.
func WriteChromeTrace(w io.Writer, recs []trace.Record, meta ExportMeta) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(chromeHeader); err != nil {
		return err
	}
	e := &chromeEmitter{w: bw}

	// Metadata first: name every domain we will reference.
	seenDom := map[int16]bool{}
	seenThread := map[runKey]bool{}
	nameDom := func(dom int16) {
		if seenDom[dom] {
			return
		}
		seenDom[dom] = true
		name := meta.DomainNames[dom]
		if name == "" {
			name = fmt.Sprintf("dom%d", dom)
		}
		e.emitf(`{"ph":"M","pid":%d,"name":"process_name","args":{"name":%s}}`,
			dom, jsonString(name))
	}
	nameThread := func(dom, vcpu int16) {
		k := runKey{dom, vcpu}
		if seenThread[k] {
			return
		}
		seenThread[k] = true
		nameDom(dom)
		e.emitf(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":"vcpu%d"}}`,
			dom, vcpu, vcpu)
	}

	open := map[runKey]openRun{}
	var last simtime.Time
	for _, r := range recs {
		if r.Time > last {
			last = r.Time
		}
		k := runKey{r.Dom, r.VCPU}
		switch r.Kind {
		case trace.KindSchedule:
			nameThread(r.Dom, r.VCPU)
			if o, ok := open[k]; ok {
				// A schedule with no closing edge in the ring (wrap): close
				// the stale interval at this instant rather than losing it.
				e.complete(r.Dom, r.VCPU, o, r.Time)
			}
			open[k] = openRun{start: r.Time, pcpu: r.PCPU, prio: r.Arg0}
		case trace.KindPreempt, trace.KindYield, trace.KindBlock:
			if o, ok := open[k]; ok {
				e.complete(r.Dom, r.VCPU, o, r.Time)
				delete(open, k)
			}
			if r.Kind != trace.KindPreempt {
				nameThread(r.Dom, r.VCPU)
				e.instant(r, "")
			}
		case trace.KindPoolResize:
			// Pool events carry no vCPU; pin them to a synthetic "host" row.
			e.emitf(`{"ph":"i","s":"g","pid":-1,"tid":0,"ts":%s,"name":"%s","args":{"micro_cores":%d}}`,
				usec(r.Time), r.Kind, r.Arg0)
		case trace.KindHotplug:
			what := "offline"
			if r.Arg0 == 1 {
				what = "online"
			}
			e.emitf(`{"ph":"i","s":"g","pid":-1,"tid":0,"ts":%s,"name":"hotplug-%s","args":{"pcpu":%d}}`,
				usec(r.Time), what, r.Arg1)
		default:
			nameThread(r.Dom, r.VCPU)
			e.instant(r, "")
		}
	}
	// Close intervals still running when the trace ends.
	for k, o := range open {
		if last > o.start {
			e.complete(k.dom, k.vcpu, o, last)
		}
	}
	if e.err != nil {
		return e.err
	}
	e.spanAggregates(meta.Spans)
	e.controllerDecisions(meta.Decisions)
	if len(seenDom) > 0 || e.n > 0 {
		e.emitf(`{"ph":"M","pid":-1,"name":"process_name","args":{"name":"host"}}`)
	}
	if _, err := bw.WriteString(chromeFooter); err != nil {
		return err
	}
	return bw.Flush()
}

// chromeEmitter writes comma-separated JSON events.
type chromeEmitter struct {
	w   *bufio.Writer
	n   int
	err error
}

func (e *chromeEmitter) emitf(format string, args ...any) {
	if e.err != nil {
		return
	}
	if e.n > 0 {
		if _, e.err = e.w.WriteString(",\n"); e.err != nil {
			return
		}
	} else {
		if _, e.err = e.w.WriteString("\n"); e.err != nil {
			return
		}
	}
	e.n++
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

func (e *chromeEmitter) complete(dom, vcpu int16, o openRun, end simtime.Time) {
	e.emitf(`{"ph":"X","pid":%d,"tid":%d,"ts":%s,"dur":%s,"name":"run p%d","cat":"sched","args":{"pcpu":%d,"prio":%d}}`,
		dom, vcpu, usec(o.start), usec(end-o.start), o.pcpu, o.pcpu, o.prio)
}

// spanAggregates emits one "X" slice per recorded span kind on the
// synthetic latency-attribution process: ts=0, dur=the kind's p99, and the
// full causal read-out (count, quantiles, per-stage totals and shares) in
// args, keyed by cat="blame" so offline consumers can find them.
func (e *chromeEmitter) spanAggregates(spans []SpanStat) {
	emitted := false
	for i := range spans {
		sp := &spans[i]
		if sp.Count == 0 {
			continue
		}
		stages, err := json.Marshal(sp.Stages)
		if err != nil {
			e.err = err
			return
		}
		e.emitf(`{"ph":"X","pid":%d,"tid":%d,"ts":0,"dur":%s,"name":%s,"cat":"blame","args":{"count":%d,"open":%d,"total_ns":%d,"p50_ns":%d,"p99_ns":%d,"p999_ns":%d,"blame":%s,"blame_pct":%g,"stages":%s}}`,
			blamePID, i, usec(simtime.Time(sp.P99)), jsonString(sp.Kind),
			sp.Count, sp.Open, int64(sp.Total), int64(sp.P50), int64(sp.P99), int64(sp.P999),
			jsonString(sp.Blame), sp.BlamePct, stages)
		e.emitf(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":%s}}`,
			blamePID, i, jsonString(sp.Kind))
		emitted = true
	}
	if emitted {
		e.emitf(`{"ph":"M","pid":%d,"name":"process_name","args":{"name":"latency attribution"}}`, blamePID)
	}
}

// controllerDecisions emits one "i" instant per retained sizing decision on
// the synthetic controller process: ts=decision time, name=the reason, and
// the full audit record in args, keyed by cat="controller".
func (e *chromeEmitter) controllerDecisions(decs []DecisionRecord) {
	if len(decs) == 0 {
		return
	}
	for _, d := range decs {
		e.emitf(`{"ph":"i","s":"p","pid":%d,"tid":0,"ts":%s,"name":%s,"cat":"controller","args":{"epoch":%d,"micro_cores":%d,"ceiling":%d,"ipis":%d,"ples":%d,"irqs":%d}}`,
			ctrlPID, usec(d.Time), jsonString(d.Reason),
			d.Epoch, d.Chosen, d.Ceiling, d.IPIs, d.PLEs, d.IRQs)
	}
	e.emitf(`{"ph":"M","pid":%d,"tid":0,"name":"thread_name","args":{"name":"decisions"}}`, ctrlPID)
	e.emitf(`{"ph":"M","pid":%d,"name":"process_name","args":{"name":"controller"}}`, ctrlPID)
}

func (e *chromeEmitter) instant(r trace.Record, suffix string) {
	e.emitf(`{"ph":"i","s":"t","pid":%d,"tid":%d,"ts":%s,"name":"%s%s","cat":"%s","args":{"pcpu":%d,"arg0":%d,"arg1":%d}}`,
		r.Dom, r.VCPU, usec(r.Time), r.Kind, suffix, r.Kind, r.PCPU, r.Arg0, r.Arg1)
}

// usec renders a virtual time/duration as microseconds with nanosecond
// precision.
func usec(t simtime.Time) string {
	return fmt.Sprintf("%d.%03d", int64(t)/1000, int64(t)%1000)
}

func jsonString(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}

// ValidateChromeTrace parses r as Chrome trace-event JSON and verifies the
// schema fields a viewer depends on: a displayTimeUnit, a traceEvents
// array, a "ph" on every event, pid/tid/ts on every placeable event and a
// dur on every "X" complete event. It returns a descriptive error on the
// first problem found, and the number of events on success.
func ValidateChromeTrace(r io.Reader) (int, error) {
	var doc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	dec := json.NewDecoder(r)
	dec.UseNumber()
	if err := dec.Decode(&doc); err != nil {
		return 0, fmt.Errorf("obs: trace JSON parse: %w", err)
	}
	if doc.DisplayTimeUnit == "" {
		return 0, fmt.Errorf("obs: trace missing displayTimeUnit")
	}
	if len(doc.TraceEvents) == 0 {
		return 0, fmt.Errorf("obs: trace has no traceEvents")
	}
	completes := 0
	for i, ev := range doc.TraceEvents {
		ph, ok := ev["ph"].(string)
		if !ok || ph == "" {
			return 0, fmt.Errorf("obs: event %d missing ph", i)
		}
		needNum := func(field string) error {
			if _, ok := ev[field].(json.Number); !ok {
				return fmt.Errorf("obs: event %d (ph=%q) missing numeric %s", i, ph, field)
			}
			return nil
		}
		switch ph {
		case "M":
			if err := needNum("pid"); err != nil {
				return 0, err
			}
		case "X":
			completes++
			for _, f := range []string{"pid", "tid", "ts", "dur"} {
				if err := needNum(f); err != nil {
					return 0, err
				}
			}
		default:
			for _, f := range []string{"pid", "tid", "ts"} {
				if err := needNum(f); err != nil {
					return 0, err
				}
			}
		}
	}
	if completes == 0 {
		return 0, fmt.Errorf("obs: trace has no complete (ph=X) events — no run intervals reconstructed")
	}
	return len(doc.TraceEvents), nil
}

package check

import (
	"fmt"
	"io"
)

// Options configures a conformance suite run.
type Options struct {
	// Seed is the base seed; scenario i is Generate(Seed+i).
	Seed uint64
	// Count is the number of scenarios to generate (default 200).
	Count int
	// FixtureDir, when non-empty, receives a replayable JSON fixture for
	// every failure (shrunk to a minimal repro first).
	FixtureDir string
	// ShrinkBudget bounds the scenario evaluations spent minimizing one
	// failure (default 100; each evaluation re-runs the full relation set).
	ShrinkBudget int
	// MaxFailures stops the suite after this many failures (default 1 —
	// one minimized repro is worth more than a catalogue of duplicates).
	MaxFailures int
	// Progress, when non-nil, receives a one-line note every 50 scenarios.
	Progress io.Writer
}

func (o Options) withDefaults() Options {
	if o.Count <= 0 {
		o.Count = 200
	}
	if o.ShrinkBudget <= 0 {
		o.ShrinkBudget = 100
	}
	if o.MaxFailures <= 0 {
		o.MaxFailures = 1
	}
	return o
}

// Report is the outcome of a suite run.
type Report struct {
	Checked  int
	Failures []Fixture
	// FixturePaths lists where each failure was written (parallel to
	// Failures; empty strings when no FixtureDir was configured).
	FixturePaths []string
}

// RunSuite generates Count scenarios and checks every metamorphic relation
// and conservation law on each. Failing scenarios are shrunk and, when
// FixtureDir is set, dumped as replayable fixtures.
func RunSuite(opt Options) (*Report, error) {
	var c Checker
	return c.RunSuite(opt)
}

// RunSuite is the method form, letting tests inject a result mutation.
func (c *Checker) RunSuite(opt Options) (*Report, error) {
	return c.runSuite(opt, Generate, c.Check,
		func(s Scenario) bool { return c.Check(s) != nil })
}

// runSuite is the generate→check→shrink→fixture loop shared by the
// metamorphic suite and the recovery-conformance suite. fails is the
// shrinker's oracle — kept separate from check so a suite can fail closed
// on shrink candidates that lose its required shape.
func (c *Checker) runSuite(opt Options, gen func(uint64) Scenario, check func(Scenario) error, fails func(Scenario) bool) (*Report, error) {
	opt = opt.withDefaults()
	rep := &Report{}
	for i := 0; i < opt.Count; i++ {
		seed := opt.Seed + uint64(i)
		sc := gen(seed)
		err := check(sc)
		rep.Checked++
		if opt.Progress != nil && rep.Checked%50 == 0 {
			fmt.Fprintf(opt.Progress, "check: %d/%d scenarios, %d failures\n", rep.Checked, opt.Count, len(rep.Failures))
		}
		if err == nil {
			continue
		}
		shrunk := Shrink(sc, fails, opt.ShrinkBudget)
		f := Fixture{Seed: seed, Err: err.Error(), Original: sc, Shrunk: shrunk}
		path := ""
		if opt.FixtureDir != "" {
			p, werr := WriteFixture(opt.FixtureDir, &f)
			if werr != nil {
				return rep, werr
			}
			path = p
		}
		rep.Failures = append(rep.Failures, f)
		rep.FixturePaths = append(rep.FixturePaths, path)
		if len(rep.Failures) >= opt.MaxFailures {
			break
		}
	}
	return rep, nil
}

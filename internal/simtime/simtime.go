// Package simtime provides the discrete-event simulation core: a virtual
// nanosecond clock and a cancellable event queue.
//
// The simulation is single-threaded by design. All state transitions in the
// simulated machine happen inside event callbacks executed in strict
// timestamp order (ties broken by scheduling order), which makes every run
// bit-for-bit reproducible for a given seed. This is the substitution for
// running on real hardware: latencies are exact virtual-time quantities
// instead of noisy wall-clock measurements.
package simtime

import (
	"container/heap"
	"fmt"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration = Time

// Common durations, mirroring time.Duration constants but in virtual time.
const (
	Nanosecond  Duration = 1
	Microsecond Duration = 1000 * Nanosecond
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
)

// Infinity is a time later than any event the simulator will ever schedule.
const Infinity Time = 1<<63 - 1

// String formats a Time with an adaptive unit for debugging and reports.
func (t Time) String() string {
	switch {
	case t == Infinity:
		return "inf"
	case t >= Second:
		return fmt.Sprintf("%.6fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros converts t to floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis converts t to floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Event is a scheduled callback. Events are created through Clock.At or
// Clock.After and may be cancelled until they fire.
type Event struct {
	when     Time
	seq      uint64
	index    int // heap index, -1 when not queued
	fn       func()
	label    string
	clockRef *Clock // owning clock while queued; nil once fired/cancelled
}

// When returns the virtual time at which the event fires (or fired).
func (e *Event) When() Time { return e.when }

// Pending reports whether the event is still queued.
func (e *Event) Pending() bool { return e != nil && e.index >= 0 }

// Cancel removes the event from the queue. Cancelling a fired or already
// cancelled event is a no-op. Cancel returns true if the event was pending.
func (e *Event) Cancel() bool {
	if e == nil || e.index < 0 || e.clockRef == nil {
		return false
	}
	heap.Remove(&e.clockRef.pq, e.index)
	e.clockRef = nil
	return true
}

// Clock owns virtual time and the pending-event queue.
type Clock struct {
	now     Time
	pq      eventHeap
	seq     uint64
	fired   uint64
	stopped bool
}

// NewClock returns a clock at time zero with an empty queue.
func NewClock() *Clock {
	return &Clock{}
}

// Now returns the current virtual time.
func (c *Clock) Now() Time { return c.now }

// Fired returns the number of events executed so far (for diagnostics).
func (c *Clock) Fired() uint64 { return c.fired }

// Pending returns the number of queued events.
func (c *Clock) Pending() int { return len(c.pq) }

// At schedules fn to run at time t. Scheduling in the past panics: that is
// always a simulator bug, and silently clamping would corrupt causality.
func (c *Clock) At(t Time, fn func()) *Event {
	return c.AtLabeled(t, "", fn)
}

// AtLabeled is At with a debug label attached to the event.
func (c *Clock) AtLabeled(t Time, label string, fn func()) *Event {
	if t < c.now {
		panic(fmt.Sprintf("simtime: scheduling event %q at %v before now %v", label, t, c.now))
	}
	if fn == nil {
		panic("simtime: nil event callback")
	}
	c.seq++
	ev := &Event{when: t, seq: c.seq, fn: fn, label: label, index: -1, clockRef: c}
	heap.Push(&c.pq, ev)
	return ev
}

// After schedules fn to run d nanoseconds from now.
func (c *Clock) After(d Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return c.At(c.now+d, fn)
}

// AfterLabeled is After with a debug label.
func (c *Clock) AfterLabeled(d Duration, label string, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return c.AtLabeled(c.now+d, label, fn)
}

// Step executes the earliest pending event. It returns false when the queue
// is empty or the clock has been stopped.
func (c *Clock) Step() bool {
	if c.stopped || len(c.pq) == 0 {
		return false
	}
	ev := heap.Pop(&c.pq).(*Event)
	ev.clockRef = nil
	c.now = ev.when
	c.fired++
	ev.fn()
	return true
}

// RunUntil executes events until the queue is exhausted or the next event
// would fire after t. The clock is left at min(t, time of last event run).
// It returns the number of events executed.
func (c *Clock) RunUntil(t Time) uint64 {
	var n uint64
	for !c.stopped && len(c.pq) > 0 && c.pq[0].when <= t {
		c.Step()
		n++
	}
	if c.now < t {
		c.now = t
	}
	return n
}

// Run executes events until the queue is empty or Stop is called.
func (c *Clock) Run() uint64 {
	var n uint64
	for c.Step() {
		n++
	}
	return n
}

// Stop halts Step/Run/RunUntil. Pending events remain queued.
func (c *Clock) Stop() { c.stopped = true }

// Stopped reports whether Stop has been called.
func (c *Clock) Stopped() bool { return c.stopped }

// NextEventTime returns the firing time of the earliest queued event, or
// Infinity when the queue is empty.
func (c *Clock) NextEventTime() Time {
	if len(c.pq) == 0 {
		return Infinity
	}
	return c.pq[0].when
}

// eventHeap is a min-heap on (when, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

package fault

import (
	"errors"
	"reflect"
	"testing"

	"github.com/microslicedcore/microsliced/internal/simtime"
)

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"zero", Config{}, true},
		{"full", Config{Seed: 1, OfflinePCPUs: 2, IPIDelayProb: 0.5,
			IPIDelayMax: simtime.Millisecond, IPIDropProb: 0.1,
			TickJitter: simtime.Millisecond, LockStallProb: 0.2, LockStallFactor: 4}, true},
		{"prob>1", Config{IPIDropProb: 1.5}, false},
		{"prob<0", Config{IPIDelayProb: -0.1}, false},
		{"negative-offline", Config{OfflinePCPUs: -1}, false},
		{"delay-without-max", Config{IPIDelayProb: 0.5}, false},
		{"negative-jitter", Config{TickJitter: -1}, false},
		{"stall-factor<1", Config{LockStallProb: 0.5, LockStallFactor: 0.5}, false},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: invalid config accepted", c.name)
		}
	}
}

func TestEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Fatal("zero config reports enabled")
	}
	if !(Config{OfflinePCPUs: 1}).Enabled() {
		t.Fatal("hotplug config reports disabled")
	}
	if !(Config{TickJitter: simtime.Millisecond}).Enabled() {
		t.Fatal("jitter config reports disabled")
	}
}

func TestPlanDeterministicSchedule(t *testing.T) {
	cfg := Config{Seed: 42, OfflinePCPUs: 3}
	a, err := New(cfg, 12, 3*simtime.Second)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg, 12, 3*simtime.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Hotplug, b.Hotplug) {
		t.Fatalf("same config, different hotplug schedules:\n%v\n%v", a.Hotplug, b.Hotplug)
	}
	if len(a.Hotplug) != 3 {
		t.Fatalf("want 3 hotplug events, got %d", len(a.Hotplug))
	}
	seen := map[int]bool{}
	for _, ev := range a.Hotplug {
		if ev.PCPU == 0 {
			t.Fatal("plan unplugs pCPU 0")
		}
		if seen[ev.PCPU] {
			t.Fatalf("pCPU %d unplugged twice", ev.PCPU)
		}
		seen[ev.PCPU] = true
		if ev.On <= ev.Off {
			t.Fatalf("replug %v not after unplug %v", ev.On, ev.Off)
		}
		if ev.Off <= 0 || ev.On >= simtime.Time(3*simtime.Second) {
			t.Fatalf("hotplug window [%v, %v] outside the run", ev.Off, ev.On)
		}
	}
}

func TestPlanRejectsTotalCapacityLoss(t *testing.T) {
	if _, err := New(Config{OfflinePCPUs: 2}, 2, simtime.Second); err == nil {
		t.Fatal("plan accepted unplugging all-but-zero cores of a 2-core host")
	}
}

func TestSeedChangesSchedule(t *testing.T) {
	a, _ := New(Config{Seed: 1, OfflinePCPUs: 2}, 12, 3*simtime.Second)
	b, _ := New(Config{Seed: 2, OfflinePCPUs: 2}, 12, 3*simtime.Second)
	if reflect.DeepEqual(a.Hotplug, b.Hotplug) {
		t.Fatal("different seeds produced identical hotplug schedules")
	}
}

func TestValidateHarshFields(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"permanent", Config{PermanentOfflinePCPUs: 2}, true},
		{"negative-permanent", Config{PermanentOfflinePCPUs: -1}, false},
		{"storms", Config{Storms: 2}, true},
		{"negative-storms", Config{Storms: -1}, false},
		{"negative-storm-len", Config{Storms: 1, StormLen: -1}, false},
		{"lose-with-drop", Config{IPIDropProb: 0.1, LoseIPIs: true}, true},
		{"lose-with-storm", Config{Storms: 1, LoseIPIs: true}, true},
		{"lose-without-source", Config{LoseIPIs: true}, false},
		{"negative-quiesce", Config{QuiesceAt: -1}, false},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok {
			var ce *ConfigError
			if err == nil {
				t.Errorf("%s: invalid config accepted", c.name)
			} else if !errors.As(err, &ce) {
				t.Errorf("%s: error is not a *ConfigError: %v", c.name, err)
			}
		}
	}
}

// TestNewRejectsDegenerateDuration is the regression for the replug-clamp
// bug: New used to accept a zero-length run and emit a degenerate schedule
// (unplug and replug both at t=0, which the sorted walk applied as an
// unintended permanent loss). It must now reject the shape with a typed
// error.
func TestNewRejectsDegenerateDuration(t *testing.T) {
	_, err := New(Config{OfflinePCPUs: 1}, 4, 0)
	var ce *ConfigError
	if !errors.As(err, &ce) {
		t.Fatalf("want *ConfigError for zero duration, got %v", err)
	}
	if ce.Field != "Duration" {
		t.Fatalf("error blames %q, want Duration", ce.Field)
	}
	if _, err := New(Config{}, 4, 0); err != nil {
		t.Fatalf("disabled config on zero duration must pass, got %v", err)
	}
}

func TestNewRejectsQuiescePastRunEnd(t *testing.T) {
	_, err := New(Config{Storms: 1, QuiesceAt: simtime.Second}, 4, simtime.Second)
	var ce *ConfigError
	if !errors.As(err, &ce) || ce.Field != "QuiesceAt" {
		t.Fatalf("want *ConfigError on QuiesceAt, got %v", err)
	}
	if _, err := New(Config{Storms: 1, QuiesceAt: simtime.Second / 2}, 4, simtime.Second); err != nil {
		t.Fatalf("mid-run quiesce rejected: %v", err)
	}
}

func TestPermanentEventsNeverReplug(t *testing.T) {
	p, err := New(Config{Seed: 9, OfflinePCPUs: 1, PermanentOfflinePCPUs: 2}, 6, simtime.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Hotplug) != 3 {
		t.Fatalf("want 3 hotplug events, got %d", len(p.Hotplug))
	}
	var perm int
	seen := map[int]bool{}
	for _, ev := range p.Hotplug {
		if ev.PCPU == 0 {
			t.Fatal("plan unplugs pCPU 0")
		}
		if seen[ev.PCPU] {
			t.Fatalf("pCPU %d unplugged twice", ev.PCPU)
		}
		seen[ev.PCPU] = true
		if ev.Permanent {
			perm++
		} else if ev.On <= ev.Off {
			t.Fatalf("temporary event replugs at %v, before unplug %v", ev.On, ev.Off)
		}
	}
	if perm != 2 {
		t.Fatalf("want 2 permanent events, got %d", perm)
	}
}

func TestStormWindowsRespectQuiesce(t *testing.T) {
	const quiesce = 300 * simtime.Millisecond
	p, err := New(Config{Seed: 4, Storms: 3, QuiesceAt: quiesce}, 4, simtime.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Storms) != 3 {
		t.Fatalf("want 3 storm windows, got %d", len(p.Storms))
	}
	for i, w := range p.Storms {
		if w.Start >= w.End {
			t.Errorf("storm %d window [%v, %v) is empty or inverted", i, w.Start, w.End)
		}
		if w.End > simtime.Time(quiesce) {
			t.Errorf("storm %d ends at %v, past the quiesce point %v", i, w.End, quiesce)
		}
		if i > 0 && w.Start < p.Storms[i-1].Start {
			t.Errorf("storm windows not sorted: %v before %v", p.Storms[i], p.Storms[i-1])
		}
	}
}

func TestHarshScheduleDeterministic(t *testing.T) {
	cfg := Config{Seed: 5, PermanentOfflinePCPUs: 2, Storms: 2, IPIDropProb: 0.2, LoseIPIs: true}
	a, err := New(cfg, 8, simtime.Second)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := New(cfg, 8, simtime.Second)
	if !reflect.DeepEqual(a.Hotplug, b.Hotplug) || !reflect.DeepEqual(a.Storms, b.Storms) {
		t.Fatal("same config, different harsh schedules")
	}
}

// Package workload models the paper's application suite as guest thread
// programs: PARSEC (swaptions, dedup, vips, blackscholes, bodytrack,
// streamcluster, raytrace), MOSBENCH (exim, gmake, psearchy), the memclone
// microbenchmark, SPECCPU-style single-threaded applications (perlbench,
// sjeng, bzip2), and the iPerf/lookbusy pair of the I/O experiments.
//
// Each application is characterised — following §3 and §6.1 of the paper —
// by its dominant kernel interaction: pure user computation (swaptions,
// SPEC), spinlock-protected kernel service churn (gmake, exim, memclone),
// TLB-shootdown storms from mmap/munmap (dedup, vips), a mix with
// reader-writer semaphores and idling (psearchy), or network receive
// (iperf). Durations are drawn from seeded exponential distributions so
// runs are reproducible and co-runner phases drift naturally.
package workload

import (
	"fmt"
	"sort"

	"github.com/microslicedcore/microsliced/internal/guest"
	"github.com/microslicedcore/microsliced/internal/rng"
	"github.com/microslicedcore/microsliced/internal/simtime"
)

// App is an application instance deployed into one guest kernel. Threads
// increment the work-unit counter once per completed iteration; experiment
// harnesses turn units into throughput or normalized execution time.
type App struct {
	Name   string
	Kernel *guest.Kernel
	units  uint64
}

// Units returns the completed work-unit count.
func (a *App) Units() uint64 { return a.units }

// builder populates the kernel with an app's threads.
type builder func(a *App, r *rng.Source)

// diskApps marks catalog entries that require an attached BlockDevice.
var diskApps = map[string]bool{"fileserver": true}

// NeedsDisk reports whether the named application requires a virtual disk.
func NeedsDisk(name string) bool { return diskApps[name] }

var registry = map[string]builder{
	"swaptions":     buildSwaptions,
	"lookbusy":      buildLookbusy,
	"gmake":         buildGmake,
	"exim":          buildExim,
	"psearchy":      buildPsearchy,
	"dedup":         buildDedup,
	"vips":          buildVips,
	"memclone":      buildMemclone,
	"blackscholes":  buildBlackscholes,
	"bodytrack":     buildBodytrack,
	"streamcluster": buildStreamcluster,
	"raytrace":      buildRaytrace,
	"perlbench":     buildPerlbench,
	"sjeng":         buildSjeng,
	"bzip2":         buildBzip2,
	"fileserver":    buildFileserver,
}

// Catalog returns the available application names, sorted.
func Catalog() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// New deploys the named application into kernel k. The seed controls all
// of the app's random durations.
func New(name string, k *guest.Kernel, seed uint64) (*App, error) {
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown application %q (have %v)", name, Catalog())
	}
	a := &App{Name: name, Kernel: k}
	b(a, rng.New(seed))
	return a, nil
}

// Known reports whether name is a registered application.
func Known(name string) bool {
	_, ok := registry[name]
	return ok
}

// cycleProg replays iterations produced by build, bumping the app's
// work-unit counter after each completed iteration.
type cycleProg struct {
	app   *App
	build func() []guest.Op
	queue []guest.Op
	first bool
}

func newCycleProg(a *App, build func() []guest.Op) *cycleProg {
	return &cycleProg{app: a, build: build, first: true}
}

// Next implements guest.Program.
func (p *cycleProg) Next(now simtime.Time) guest.Op {
	if len(p.queue) == 0 {
		if !p.first {
			p.app.units++
		}
		p.first = false
		p.queue = p.build()
		if len(p.queue) == 0 {
			return guest.Op{Kind: guest.OpExit}
		}
	}
	op := p.queue[0]
	p.queue = p.queue[1:]
	return op
}

func exp(r *rng.Source, mean simtime.Duration) simtime.Duration {
	return simtime.Duration(r.ExpDur(int64(mean)))
}

// us is a readability helper for microsecond constants.
const us = simtime.Microsecond

// perVCPU runs one thread per vCPU, each with its own rng fork.
func perVCPU(a *App, r *rng.Source, name string, mk func(r *rng.Source) guest.Program) {
	for i := range a.Kernel.VCPUs {
		a.Kernel.NewThread(i, fmt.Sprintf("%s-%d", name, i), mk(r.Fork(uint64(i))))
	}
}

// ---------------------------------------------------------------------------
// Pure user-level applications
// ---------------------------------------------------------------------------

// buildSwaptions: PARSEC swaptions — the co-runner with the highest CPU
// utilization; pure user computation.
func buildSwaptions(a *App, r *rng.Source) {
	perVCPU(a, r, "swaptions", func(r *rng.Source) guest.Program {
		return newCycleProg(a, func() []guest.Op {
			return []guest.Op{{Kind: guest.OpCompute, Dur: exp(r, 2000*us)}}
		})
	})
}

// buildLookbusy: constant CPU burner used by the mixed-I/O experiments.
func buildLookbusy(a *App, r *rng.Source) {
	perVCPU(a, r, "lookbusy", func(r *rng.Source) guest.Program {
		return newCycleProg(a, func() []guest.Op {
			return []guest.Op{{Kind: guest.OpCompute, Dur: 1000 * us}}
		})
	})
}

// userLevelApp builds a mostly-user-level PARSEC/SPEC application with the
// given mean burst and thread count (0 = per vCPU). A sliver of kernel
// time (page-cache reads) keeps it realistic without making it
// kernel-bound.
func userLevelApp(a *App, r *rng.Source, burst simtime.Duration, threads int) {
	mk := func(r *rng.Source) guest.Program {
		return newCycleProg(a, func() []guest.Op {
			ops := []guest.Op{{Kind: guest.OpCompute, Dur: exp(r, burst)}}
			if r.Bool(0.02) {
				ops = append(ops, guest.Op{Kind: guest.OpKernel, Fn: "vfs_read", Dur: exp(r, 3*us)})
			}
			return ops
		})
	}
	if threads <= 0 {
		perVCPU(a, r, a.Name, mk)
		return
	}
	for i := 0; i < threads; i++ {
		a.Kernel.NewThread(i%len(a.Kernel.VCPUs), fmt.Sprintf("%s-%d", a.Name, i), mk(r.Fork(uint64(i))))
	}
}

func buildBlackscholes(a *App, r *rng.Source)  { userLevelApp(a, r, 1500*us, 0) }
func buildBodytrack(a *App, r *rng.Source)     { userLevelApp(a, r, 900*us, 0) }
func buildStreamcluster(a *App, r *rng.Source) { userLevelApp(a, r, 1200*us, 0) }
func buildRaytrace(a *App, r *rng.Source)      { userLevelApp(a, r, 2000*us, 0) }
func buildPerlbench(a *App, r *rng.Source)     { userLevelApp(a, r, 2500*us, 1) }
func buildSjeng(a *App, r *rng.Source)         { userLevelApp(a, r, 3000*us, 1) }
func buildBzip2(a *App, r *rng.Source)         { userLevelApp(a, r, 2800*us, 1) }

// ---------------------------------------------------------------------------
// Spinlock-bound MOSBENCH applications
// ---------------------------------------------------------------------------

// buildGmake: parallel make — fork/exec and page-allocator churn known to
// trigger lock-holder preemption (paper §3.1, §6.2).
func buildGmake(a *App, r *rng.Source) {
	k := a.Kernel
	n := len(k.VCPUs)
	zone := make([]*guest.SpinLock, (n+5)/6)
	for i := range zone {
		zone[i] = k.Lock(fmt.Sprintf("zone%d", i), "Page allocator", "get_page_from_freelist")
	}
	// Lock granularity mirrors the kernel: per-directory dentry locks and
	// per-CPU runqueue locks see only 2-3 contenders — the regime where a
	// preempted holder/grantee stalls the lock outright — while the zone
	// and LRU locks are shared VM-wide.
	dentry := make([]*guest.SpinLock, (n+2)/3)
	for i := range dentry {
		dentry[i] = k.Lock(fmt.Sprintf("dcache%d", i), "Dentry", "__d_lookup")
	}
	runq := make([]*guest.SpinLock, n)
	for i := range runq {
		runq[i] = k.Lock(fmt.Sprintf("rq%d", i), "Runqueue", "enqueue_task_fair")
	}
	reclaim := k.Lock("lru", "Page reclaim", "shrink_page_list")
	for i := range a.Kernel.VCPUs {
		i := i
		r := r.Fork(uint64(i))
		a.Kernel.NewThread(i, fmt.Sprintf("gmake-%d", i), newCycleProg(a, func() []guest.Op {
			ops := []guest.Op{
				{Kind: guest.OpCompute, Dur: exp(r, 55*us)},
				{Kind: guest.OpLock, Lock: zone[r.Intn(len(zone))], Dur: exp(r, 2*us)},
				{Kind: guest.OpCompute, Dur: exp(r, 20*us)},
				{Kind: guest.OpLock, Lock: dentry[r.Intn(len(dentry))], Dur: exp(r, 1500)},
			}
			// schedule()/ttwu take the local runqueue lock every cycle;
			// cross-CPU wakeups occasionally grab a remote one. A vCPU
			// preempted inside its own rq critical section stalls every
			// remote waker (paper §3.1, kick_process/resched_curr).
			rq := runq[i]
			if sib := i ^ 1; r.Bool(0.15) && sib < len(runq) {
				// Wake the sibling worker: grab its runqueue lock. The last
				// worker of an odd-sized VM has no sibling and stays local.
				rq = runq[sib]
			}
			ops = append(ops, guest.Op{Kind: guest.OpLock, Lock: rq, Dur: exp(r, 1500)})
			if r.Bool(0.2) {
				ops = append(ops, guest.Op{Kind: guest.OpLock, Lock: reclaim, Dur: exp(r, 5*us)})
			}
			if r.Bool(0.06) {
				// Child reaps / pipe waits: brief sleeps create halts.
				ops = append(ops, guest.Op{Kind: guest.OpSleep, Dur: exp(r, 40*us)})
			}
			return ops
		}))
	}
}

// buildExim: the mail server — process and small-file creation per
// message; the most spinlock-intensive workload in the suite (the paper's
// headline case: baseline co-run collapses into PLE spinning, and a single
// micro-sliced core recovers most of it). Locks are fine-grained the way
// the kernel's are: per-directory d_locks, two zone locks, per-CPU
// runqueue locks.
func buildExim(a *App, r *rng.Source) {
	k := a.Kernel
	n := len(k.VCPUs)
	dentry := make([]*guest.SpinLock, (n+2)/3)
	for i := range dentry {
		dentry[i] = k.Lock(fmt.Sprintf("dcache%d", i), "Dentry", "__d_lookup")
	}
	zone := []*guest.SpinLock{
		k.Lock("zone0", "Page allocator", "get_page_from_freelist"),
		k.Lock("zone1", "Page allocator", "free_one_page"),
	}
	reclaim := k.Lock("lru", "Page reclaim", "shrink_page_list")
	runq := make([]*guest.SpinLock, n)
	for i := range runq {
		runq[i] = k.Lock(fmt.Sprintf("rq%d", i), "Runqueue", "enqueue_task_fair")
	}
	for i := range k.VCPUs {
		i := i
		r := r.Fork(uint64(i))
		k.NewThread(i, fmt.Sprintf("exim-%d", i), newCycleProg(a, func() []guest.Op {
			// One message: fork, create spool files, deliver, unlink.
			rq := runq[i]
			if sib := i ^ 1; r.Bool(0.15) && sib < len(runq) {
				rq = runq[sib]
			}
			ops := []guest.Op{
				{Kind: guest.OpCompute, Dur: exp(r, 10*us)},
				{Kind: guest.OpLock, Lock: rq, Dur: exp(r, 1200)},
				{Kind: guest.OpLock, Lock: zone[r.Intn(2)], Dur: exp(r, 4*us)},
				{Kind: guest.OpCompute, Dur: exp(r, 6*us)},
				{Kind: guest.OpLock, Lock: dentry[r.Intn(len(dentry))], Dur: exp(r, 6*us)},
				{Kind: guest.OpKernel, Fn: "do_sys_open", Dur: exp(r, 2*us)},
				{Kind: guest.OpLock, Lock: dentry[r.Intn(len(dentry))], Dur: exp(r, 4*us)},
			}
			if r.Bool(0.3) {
				ops = append(ops, guest.Op{Kind: guest.OpLock, Lock: reclaim, Dur: exp(r, 3*us)})
			}
			return ops
		}))
	}
}

// buildPsearchy: parallel indexing — page-allocator and dentry spinning
// plus idle gaps between file batches (halt yields) and occasional
// mmap-driven TLB flushes.
func buildPsearchy(a *App, r *rng.Source) {
	k := a.Kernel
	n := len(k.VCPUs)
	zone := make([]*guest.SpinLock, (n+3)/4)
	for i := range zone {
		zone[i] = k.Lock(fmt.Sprintf("zone%d", i), "Page allocator", "get_page_from_freelist")
	}
	dentry := make([]*guest.SpinLock, (n+1)/2)
	for i := range dentry {
		dentry[i] = k.Lock(fmt.Sprintf("dcache%d", i), "Dentry", "__d_lookup")
	}
	perVCPU(a, r, "psearchy", func(r *rng.Source) guest.Program {
		return newCycleProg(a, func() []guest.Op {
			ops := []guest.Op{
				{Kind: guest.OpCompute, Dur: exp(r, 150*us)},
				{Kind: guest.OpLock, Lock: dentry[r.Intn(len(dentry))], Dur: exp(r, 1500)},
				{Kind: guest.OpLock, Lock: zone[r.Intn(len(zone))], Dur: exp(r, 1500)},
			}
			if r.Bool(0.05) {
				ops = append(ops, guest.Op{Kind: guest.OpTLBFlush})
			}
			if r.Bool(0.008) {
				// I/O gap between file batches.
				ops = append(ops, guest.Op{Kind: guest.OpSleep, Dur: exp(r, 300*us)})
			}
			return ops
		})
	})
}

// buildMemclone: the microbenchmark — threads mmap constantly, hammering
// the zone lock (pure LHP pressure).
func buildMemclone(a *App, r *rng.Source) {
	k := a.Kernel
	zone := k.Lock("zone0", "Page allocator", "get_page_from_freelist")
	perVCPU(a, r, "memclone", func(r *rng.Source) guest.Program {
		return newCycleProg(a, func() []guest.Op {
			return []guest.Op{
				{Kind: guest.OpCompute, Dur: exp(r, 12*us)},
				{Kind: guest.OpLock, Lock: zone, Dur: exp(r, 2500)},
			}
		})
	})
}

// ---------------------------------------------------------------------------
// TLB-shootdown applications
// ---------------------------------------------------------------------------

// buildDedup: PARSEC dedup — mmap/munmap on a shared address space; the
// paper's dominant TLB-synchronization victim (89% of cycles waiting for
// IPI acknowledgements in co-run).
func buildDedup(a *App, r *rng.Source) {
	k := a.Kernel
	zone := k.Lock("zone0", "Page allocator", "get_page_from_freelist")
	mm := k.RWSem("mmap_sem", "Runqueue", "flush_tlb_mm_range")
	perVCPU(a, r, "dedup", func(r *rng.Source) guest.Program {
		return newCycleProg(a, func() []guest.Op {
			// Most flushes come from glibc free() -> madvise, which takes
			// mmap_sem for *read*: flushes run concurrently on all threads
			// (the paper's "89% of cycles in smp_call_function_many").
			// Occasional munmaps serialize under the write semaphore.
			flush := guest.Op{Kind: guest.OpTLBFlush}
			if r.Bool(0.15) {
				flush.Lock = mm
			}
			ops := []guest.Op{
				{Kind: guest.OpCompute, Dur: exp(r, 120*us)},
				flush,
			}
			if r.Bool(0.3) {
				ops = append(ops, guest.Op{Kind: guest.OpLock, Lock: zone, Dur: exp(r, 2*us)})
			}
			return ops
		})
	})
}

// buildVips: PARSEC vips — image pipeline with frequent-but-lighter
// mmap/munmap churn than dedup.
func buildVips(a *App, r *rng.Source) {
	mm := a.Kernel.RWSem("mmap_sem", "Runqueue", "flush_tlb_mm_range")
	perVCPU(a, r, "vips", func(r *rng.Source) guest.Program {
		return newCycleProg(a, func() []guest.Op {
			ops := []guest.Op{{Kind: guest.OpCompute, Dur: exp(r, 300*us)}}
			if r.Bool(0.7) {
				flush := guest.Op{Kind: guest.OpTLBFlush}
				if r.Bool(0.2) {
					flush.Lock = mm
				}
				ops = append(ops, flush)
			}
			return ops
		})
	})
}

// buildFileserver: a storage-bound server — directory lookups under the
// dentry locks, block reads/writes through the attached virtual disk, and
// light request parsing. The VM must have a BlockDevice attached
// (experiment.VMSpec.Disk / microsliced.VM.Disk) before it runs.
func buildFileserver(a *App, r *rng.Source) {
	k := a.Kernel
	n := len(k.VCPUs)
	dentry := make([]*guest.SpinLock, (n+2)/3)
	for i := range dentry {
		dentry[i] = k.Lock(fmt.Sprintf("dcache%d", i), "Dentry", "__d_lookup")
	}
	perVCPU(a, r, "fileserver", func(r *rng.Source) guest.Program {
		return newCycleProg(a, func() []guest.Op {
			ops := []guest.Op{
				{Kind: guest.OpCompute, Dur: exp(r, 15*us)},
				{Kind: guest.OpLock, Lock: dentry[r.Intn(len(dentry))], Dur: exp(r, 1500)},
				{Kind: guest.OpDisk, Bytes: 4096 << uint(r.Intn(4)), Write: r.Bool(0.3)},
			}
			return ops
		})
	})
}

// ---------------------------------------------------------------------------
// I/O applications
// ---------------------------------------------------------------------------

// IperfServer deploys an iPerf-server thread receiving from sock on vCPU
// vcpu. Each consumed packet counts one work unit.
func IperfServer(a *App, vcpu int, sock *guest.Socket) *guest.Thread {
	prev := sock.OnAppConsume
	sock.OnAppConsume = func(p guest.Packet, now simtime.Time) {
		a.units++
		if prev != nil {
			prev(p, now)
		}
	}
	return a.Kernel.NewThread(vcpu, "iperf-server", guest.ProgramFunc(func(now simtime.Time) guest.Op {
		return guest.Op{Kind: guest.OpRecv, Sock: sock}
	}))
}

// Empty creates an app shell with no threads (for manual composition such
// as the iPerf scenarios).
func Empty(name string, k *guest.Kernel) *App {
	return &App{Name: name, Kernel: k}
}

// LookbusyThread adds a single CPU-burning thread on one vCPU (the mixed
// vCPU of the paper's Figure 9 setup).
func LookbusyThread(a *App, vcpu int) *guest.Thread {
	return a.Kernel.NewThread(vcpu, "lookbusy", guest.ProgramFunc(func(now simtime.Time) guest.Op {
		return guest.Op{Kind: guest.OpCompute, Dur: 1000 * us}
	}))
}

package hv

import (
	"testing"

	"github.com/microslicedcore/microsliced/internal/simtime"
)

func TestSliceOverrideShortensQuantum(t *testing.T) {
	clock, h := setup(1)
	d := h.NewDomain("vm", nil)
	a := newComputeGuest(h, d, simtime.Second)
	b := newComputeGuest(h, d, simtime.Second)
	a.v.SetSliceOverride(simtime.Millisecond)
	b.v.SetSliceOverride(simtime.Millisecond)
	if a.v.SliceOverride() != simtime.Millisecond {
		t.Fatal("override not recorded")
	}
	h.Start()
	h.Wake(a.v, false)
	h.Wake(b.v, false)
	clock.RunUntil(100 * simtime.Millisecond)
	// 1ms alternation: ~100 preemptions in 100ms (30ms default would give ~3).
	if got := h.Counters.Value("sched.preempt"); got < 60 {
		t.Fatalf("preempts=%d, want 1ms churn", got)
	}
	checkInvariants(t, h)
}

func TestSliceOverrideDoesNotApplyOnMicroPool(t *testing.T) {
	clock, h := setup(2)
	d := h.NewDomain("vm", nil)
	hog := newComputeGuest(h, d, simtime.Second)
	victim := newComputeGuest(h, d, simtime.Second)
	hog.v.Pin(0)
	victim.v.Pin(0)
	victim.v.SetSliceOverride(20 * simtime.Millisecond)
	h.Start()
	h.Wake(hog.v, false)
	h.Wake(victim.v, false)
	h.SetMicroCount(1)
	clock.RunUntil(5 * simtime.Millisecond)
	if !h.MigrateToMicro(victim.v) {
		t.Fatal("migration failed")
	}
	migrated := clock.Now()
	// The micro pool's 0.1ms slice must win over the 20ms override:
	// within 0.2ms the vCPU is back home.
	clock.RunUntil(migrated + 300*simtime.Microsecond)
	if victim.v.OnMicro() {
		t.Fatal("override leaked onto the micro pool")
	}
	checkInvariants(t, h)
}

func TestRePinMovesQueuedVCPU(t *testing.T) {
	clock, h := setup(2)
	d := h.NewDomain("vm", nil)
	a := newComputeGuest(h, d, simtime.Second)
	b := newComputeGuest(h, d, simtime.Second)
	a.v.Pin(0)
	b.v.Pin(0)
	h.Start()
	h.Wake(a.v, false)
	h.Wake(b.v, false)
	clock.RunUntil(simtime.Millisecond)
	// One runs on p0, the other queues there; p1 idles.
	var queued *VCPU
	if a.v.State() == StateRunnable {
		queued = a.v
	} else {
		queued = b.v
	}
	h.RePin(queued, 1)
	// The re-pinned vCPU must move to p1 and start running there.
	clock.RunUntil(clock.Now() + simtime.Millisecond)
	if queued.State() != StateRunning || queued.pcpu.ID != 1 {
		t.Fatalf("repinned vCPU state=%v pcpu=%v", queued.State(), queued.pcpu)
	}
	checkInvariants(t, h)
}

func TestRePinRunningVCPUMovesAtSliceEnd(t *testing.T) {
	clock, h := setup(2)
	d := h.NewDomain("vm", nil)
	a := newComputeGuest(h, d, simtime.Second)
	b := newComputeGuest(h, d, simtime.Second)
	a.v.Pin(0)
	b.v.Pin(0)
	h.Start()
	h.Wake(a.v, false)
	h.Wake(b.v, false)
	clock.RunUntil(simtime.Millisecond)
	running := a.v
	if running.State() != StateRunning {
		running = b.v
	}
	h.RePin(running, 1)
	// It keeps running its slice on p0 (no forced migration)...
	if running.State() != StateRunning || running.pcpu.ID != 0 {
		t.Fatal("RePin must not interrupt the current slice")
	}
	// ...and lands on p1 at the next requeue.
	clock.RunUntil(40 * simtime.Millisecond)
	if running.State() == StateRunnable && running.queuedOn != nil && running.queuedOn.ID != 1 {
		t.Fatalf("repinned vCPU queued on p%d", running.queuedOn.ID)
	}
	if running.State() == StateRunning && running.pcpu.ID != 1 {
		t.Fatalf("repinned vCPU running on p%d", running.pcpu.ID)
	}
	checkInvariants(t, h)
}

func TestDeboostPreemptionEndsBoostMonopoly(t *testing.T) {
	clock, h := setup(1)
	d := h.NewDomain("vm", nil)
	hog := newComputeGuest(h, d, simtime.Second)
	sleeper := newComputeGuest(h, d, simtime.Second)
	h.Start()
	h.Wake(hog.v, false)
	clock.RunUntil(5 * simtime.Millisecond)
	h.Wake(sleeper.v, true) // boosted: preempts the hog
	clock.RunUntil(5*simtime.Millisecond + 10*simtime.Microsecond)
	if sleeper.v.State() != StateRunning {
		t.Fatal("boost did not dispatch the sleeper")
	}
	// At the first tick after the boost clears, the equal-priority hog
	// must get the pCPU back — the boosted vCPU does not get a free
	// 30ms slice.
	clock.RunUntil(45 * simtime.Millisecond)
	if h.Counters.Value("sched.deboost_preempt") == 0 {
		t.Fatal("de-boost preemption never fired")
	}
	// RanTotal accumulates at deschedule; by 45ms the hog has been
	// re-dispatched after the first post-boost tick and descheduled again.
	if hog.v.RanTotal() < 15*simtime.Millisecond {
		t.Fatalf("hog starved after a single boost: ran %v", hog.v.RanTotal())
	}
	checkInvariants(t, h)
}

func TestBurnCreditsExactness(t *testing.T) {
	clock, h := setup(2)
	d := h.NewDomain("vm", nil)
	g := newComputeGuest(h, d, 25*simtime.Millisecond)
	h.Start()
	h.Wake(g.v, false)
	clock.RunUntil(simtime.Second)
	// 25ms of runtime at 100 credits / 10ms = 250 burnt; accounting added
	// 300*2/1 per 30ms but clamps at the cap, so check the debit side via
	// the final balance: it must reflect an exact (not tick-quantized)
	// charge. With one always-idle competitor-free host the vCPU ends at
	// cap minus nothing further; assert the vCPU was charged at least 200
	// at some point by checking it is not above the cap.
	if g.v.Credits() > h.Cfg.CreditCap {
		t.Fatalf("credits %d exceed cap", g.v.Credits())
	}
	if g.v.RanTotal() != 25*simtime.Millisecond {
		t.Fatalf("ran %v", g.v.RanTotal())
	}
}

func TestCreditFairnessWithUnequalDemand(t *testing.T) {
	// A vCPU that only needs 20% CPU must get ~all of it even against two
	// full-demand hogs (UNDER priority protects light consumers).
	clock, h := setup(1)
	d := h.NewDomain("vm", nil)
	light := newIntrGuest(h, d) // runs only when woken; we pulse it
	hog1 := newComputeGuest(h, d, 10*simtime.Second)
	hog2 := newComputeGuest(h, d, 10*simtime.Second)
	h.Start()
	h.Wake(hog1.v, false)
	h.Wake(hog2.v, false)
	pulses := 0
	var pulse func()
	pulse = func() {
		h.SendVIPI(hog1.v, light.v, VecResched, 0)
		pulses++
		if pulses < 100 {
			clock.After(10*simtime.Millisecond, pulse)
		}
	}
	clock.After(simtime.Millisecond, pulse)
	clock.RunUntil(simtime.Second)
	// Every pulse found the light vCPU blocked, so every delivery was a
	// boosted wake with prompt service.
	if got := len(light.intrs); got < 90 {
		t.Fatalf("light vCPU serviced only %d/100 pulses", got)
	}
	checkInvariants(t, h)
}

func TestMicroPoolNoPreemptProtectsCriticalWork(t *testing.T) {
	clock, h := setup(2)
	d := h.NewDomain("vm", nil)
	hog := newComputeGuest(h, d, simtime.Second)
	victim := newComputeGuest(h, d, simtime.Second)
	waker := newIntrGuest(h, d)
	hog.v.Pin(0)
	victim.v.Pin(0)
	waker.v.Pin(0)
	h.Start()
	h.Wake(hog.v, false)
	h.Wake(victim.v, false)
	h.SetMicroCount(1)
	clock.RunUntil(simtime.Millisecond)
	if !h.MigrateToMicro(victim.v) {
		t.Fatal("migration failed")
	}
	// A boosted wake targeting the micro pCPU must not preempt the
	// accelerated vCPU (NoBoost + NoPreempt, paper §5).
	h.Wake(waker.v, true)
	if victim.v.State() != StateRunning || !victim.v.OnMicro() {
		t.Fatalf("accelerated vCPU displaced: %v", victim.v)
	}
	checkInvariants(t, h)
}

func TestHomePCPUPrefersPinThenAffinity(t *testing.T) {
	_, h := setup(3)
	d := h.NewDomain("vm", nil)
	g := newComputeGuest(h, d, simtime.Second)
	g.v.lastPCPU = 2
	if p := h.homePCPU(g.v); p.ID != 2 {
		t.Fatalf("affinity ignored: p%d", p.ID)
	}
	g.v.Pin(1)
	if p := h.homePCPU(g.v); p.ID != 1 {
		t.Fatalf("pin ignored: p%d", p.ID)
	}
}

func TestYieldsByAndVIRQCounters(t *testing.T) {
	clock, h := setup(1)
	d := h.NewDomain("vm", nil)
	spin := newSpinGuest(h, d, 25*simtime.Microsecond)
	h.Start()
	h.Wake(spin.v, false)
	clock.RunUntil(5 * simtime.Millisecond)
	if spin.v.YieldsBy(YieldPLE) == 0 {
		t.Fatal("per-vCPU PLE count missing")
	}
	if spin.v.YieldsBy(YieldReason(9)) != 0 {
		t.Fatal("out-of-range reason should read 0")
	}
	h.InjectPIRQ(d, VecNet, 0)
	clock.RunUntil(clock.Now() + simtime.Millisecond)
	if spin.v.VIRQReceived() != 1 {
		t.Fatalf("virq count %d", spin.v.VIRQReceived())
	}
}

func TestDomainWeightsShiftCPUShare(t *testing.T) {
	clock, h := setup(1)
	heavy := h.NewDomain("heavy", nil)
	light := h.NewDomain("light", nil)
	heavy.Weight = 3 * DefaultWeight
	a := newComputeGuest(h, heavy, 10*simtime.Second)
	b := newComputeGuest(h, light, 10*simtime.Second)
	h.Start()
	h.Wake(a.v, false)
	h.Wake(b.v, false)
	clock.RunUntil(3 * simtime.Second)
	ra := a.v.RanTotal()
	if a.v.State() == StateRunning {
		ra += clock.Now() - a.v.runningSince
	}
	rb := b.v.RanTotal()
	if b.v.State() == StateRunning {
		rb += clock.Now() - b.v.runningSince
	}
	ratio := float64(ra) / float64(rb)
	// 3x weight should buy roughly 2-4x the CPU under contention.
	if ratio < 1.6 || ratio > 5 {
		t.Fatalf("weight 3x bought %.2fx CPU (heavy %v vs light %v)", ratio, ra, rb)
	}
	checkInvariants(t, h)
}

func TestEqualWeightsStayFair(t *testing.T) {
	clock, h := setup(1)
	d1 := h.NewDomain("a", nil)
	d2 := h.NewDomain("b", nil)
	a := newComputeGuest(h, d1, 10*simtime.Second)
	b := newComputeGuest(h, d2, 10*simtime.Second)
	h.Start()
	h.Wake(a.v, false)
	h.Wake(b.v, false)
	clock.RunUntil(2 * simtime.Second)
	ra, rb := a.v.RanTotal(), b.v.RanTotal()
	if a.v.State() == StateRunning {
		ra += clock.Now() - a.v.runningSince
	}
	if b.v.State() == StateRunning {
		rb += clock.Now() - b.v.runningSince
	}
	ratio := float64(ra) / float64(rb)
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("equal weights diverged: %.2fx", ratio)
	}
}

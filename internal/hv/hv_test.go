package hv

import (
	"testing"

	"github.com/microslicedcore/microsliced/internal/simtime"
)

// ---------------------------------------------------------------------------
// Fake guests implementing GuestContext for scheduler tests.
// ---------------------------------------------------------------------------

// computeGuest runs for a fixed amount of CPU work, then halts.
type computeGuest struct {
	h         *Hypervisor
	v         *VCPU
	remaining simtime.Duration
	startedAt simtime.Time
	ev        *simtime.Event
	done      bool
	doneAt    simtime.Time
	scheds    int
	descheds  int
	rip       uint64
}

func newComputeGuest(h *Hypervisor, d *Domain, work simtime.Duration) *computeGuest {
	g := &computeGuest{h: h, remaining: work, rip: 0x400000}
	g.v = h.AddVCPU(d, g)
	return g
}

func (g *computeGuest) OnScheduled(now simtime.Time) {
	g.scheds++
	g.startedAt = now
	if g.remaining <= 0 {
		g.h.Block(g.v)
		return
	}
	g.ev = g.h.Clock.After(g.remaining, g.complete)
}

func (g *computeGuest) OnDescheduled(now simtime.Time) {
	g.descheds++
	if g.ev != nil {
		g.ev.Cancel()
		g.ev = nil
	}
	consumed := now - g.startedAt
	g.remaining -= consumed
}

func (g *computeGuest) complete() {
	g.ev = nil
	g.done = true
	g.doneAt = g.h.Clock.Now()
	g.h.Block(g.v)
}

func (g *computeGuest) OnInterrupt(now simtime.Time, vec Vector, data uint64) {}
func (g *computeGuest) RIP() uint64                                           { return g.rip }

// spinGuest spins forever, triggering a PLE yield every pleDelay of CPU.
type spinGuest struct {
	h        *Hypervisor
	v        *VCPU
	pleDelay simtime.Duration
	ev       *simtime.Event
	yields   int
	rip      uint64
}

func newSpinGuest(h *Hypervisor, d *Domain, pleDelay simtime.Duration) *spinGuest {
	g := &spinGuest{h: h, pleDelay: pleDelay, rip: 0xffffffff81000000}
	g.v = h.AddVCPU(d, g)
	return g
}

func (g *spinGuest) OnScheduled(now simtime.Time) {
	g.ev = g.h.Clock.After(g.pleDelay, func() {
		g.ev = nil
		g.yields++
		g.h.Yield(g.v, YieldPLE)
	})
}

func (g *spinGuest) OnDescheduled(now simtime.Time) {
	if g.ev != nil {
		g.ev.Cancel()
		g.ev = nil
	}
}

func (g *spinGuest) OnInterrupt(now simtime.Time, vec Vector, data uint64) {}
func (g *spinGuest) RIP() uint64                                           { return g.rip }

// intrGuest records interrupt deliveries; otherwise it computes forever.
type intrGuest struct {
	h       *Hypervisor
	v       *VCPU
	intrs   []Vector
	intrAt  []simtime.Time
	running bool
}

func newIntrGuest(h *Hypervisor, d *Domain) *intrGuest {
	g := &intrGuest{h: h}
	g.v = h.AddVCPU(d, g)
	return g
}

func (g *intrGuest) OnScheduled(now simtime.Time) { g.running = true }
func (g *intrGuest) OnDescheduled(now simtime.Time) {
	g.running = false
}
func (g *intrGuest) OnInterrupt(now simtime.Time, vec Vector, data uint64) {
	g.intrs = append(g.intrs, vec)
	g.intrAt = append(g.intrAt, now)
}
func (g *intrGuest) RIP() uint64 { return 0x400000 }

// ---------------------------------------------------------------------------
// Invariant checking
// ---------------------------------------------------------------------------

func checkInvariants(t *testing.T, h *Hypervisor) {
	t.Helper()
	seen := make(map[*VCPU]string)
	note := func(v *VCPU, where string) {
		if prev, ok := seen[v]; ok {
			t.Fatalf("vCPU %v present at both %s and %s", v, prev, where)
		}
		seen[v] = where
	}
	for _, p := range h.pcpus {
		if p.cur != nil {
			note(p.cur, "cur")
			if p.cur.state != StateRunning {
				t.Fatalf("current %v not Running", p.cur)
			}
			if p.cur.pcpu != p {
				t.Fatalf("current %v back-pointer wrong", p.cur)
			}
			if p.cur.pool != p.pool {
				t.Fatalf("current %v pool mismatch on p%d", p.cur, p.ID)
			}
		}
		prevPrio := Priority(-1)
		for _, v := range p.runq {
			note(v, "runq")
			if v.state != StateRunnable {
				t.Fatalf("queued %v not Runnable", v)
			}
			if v.queuedOn != p {
				t.Fatalf("queued %v back-pointer wrong", v)
			}
			if v.pool != p.pool {
				t.Fatalf("queued %v pool mismatch", v)
			}
			if v.prio < prevPrio {
				t.Fatalf("runq on p%d not priority-sorted", p.ID)
			}
			prevPrio = v.prio
		}
	}
	for _, v := range h.vcpus {
		switch v.state {
		case StateBlocked:
			if v.queuedOn != nil || v.pcpu != nil {
				t.Fatalf("blocked %v still placed", v)
			}
		case StateRunnable:
			if v.queuedOn == nil {
				t.Fatalf("runnable %v not queued", v)
			}
		case StateRunning:
			if v.pcpu == nil || v.pcpu.cur != v {
				t.Fatalf("running %v not current anywhere", v)
			}
		}
	}
}

func testConfig(pcpus int) Config {
	cfg := DefaultConfig()
	cfg.PCPUs = pcpus
	return cfg
}

func setup(pcpus int) (*simtime.Clock, *Hypervisor) {
	clock := simtime.NewClock()
	h := New(clock, testConfig(pcpus))
	return clock, h
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

func TestSingleVCPURunsToCompletion(t *testing.T) {
	clock, h := setup(1)
	d := h.NewDomain("vm", nil)
	g := newComputeGuest(h, d, 5*simtime.Millisecond)
	h.Start()
	h.Wake(g.v, false)
	clock.RunUntil(simtime.Second)
	if !g.done {
		t.Fatal("guest never completed")
	}
	// Work 5ms + one cold dispatch.
	want := 5*simtime.Millisecond + h.Cfg.CtxSwitchCost + h.Cfg.ColdCacheCost
	if g.doneAt != want {
		t.Fatalf("done at %v, want %v", g.doneAt, want)
	}
	if g.v.State() != StateBlocked {
		t.Fatalf("vCPU state %v after completion", g.v.State())
	}
	checkInvariants(t, h)
}

func TestTimeSharingAlternatesSlices(t *testing.T) {
	clock, h := setup(1)
	d := h.NewDomain("vm", nil)
	a := newComputeGuest(h, d, 100*simtime.Millisecond)
	b := newComputeGuest(h, d, 100*simtime.Millisecond)
	h.Start()
	h.Wake(a.v, false)
	h.Wake(b.v, false)
	clock.RunUntil(90 * simtime.Millisecond)
	// With a 30ms slice both must have run by now, neither finished.
	if a.scheds == 0 || b.scheds == 0 {
		t.Fatalf("scheds a=%d b=%d", a.scheds, b.scheds)
	}
	if a.done || b.done {
		t.Fatal("nothing should be done at 90ms")
	}
	if h.Counters.Value("sched.preempt") == 0 {
		t.Fatal("no slice preemptions recorded")
	}
	clock.RunUntil(simtime.Second)
	if !a.done || !b.done {
		t.Fatal("guests did not finish")
	}
	// Fair sharing: both ran 100ms of work on one pCPU; completion within
	// ~two slices of each other (tick-driven priority preemption can skew
	// the final slice boundaries).
	diff := a.doneAt - b.doneAt
	if diff < 0 {
		diff = -diff
	}
	if diff > 65*simtime.Millisecond {
		t.Fatalf("unfair completion gap %v", diff)
	}
	checkInvariants(t, h)
}

func TestYieldGivesUpCPU(t *testing.T) {
	clock, h := setup(1)
	d := h.NewDomain("vm", nil)
	spin := newSpinGuest(h, d, 25*simtime.Microsecond)
	comp := newComputeGuest(h, d, 1*simtime.Millisecond)
	h.Start()
	h.Wake(spin.v, false)
	h.Wake(comp.v, false)
	clock.RunUntil(100 * simtime.Millisecond)
	if spin.yields == 0 {
		t.Fatal("spinner never yielded")
	}
	if !comp.done {
		t.Fatal("compute guest starved despite yields")
	}
	// The compute guest should finish far sooner than a full 30ms slice
	// wait, because the spinner yields every 25us.
	if comp.doneAt > 3*simtime.Millisecond {
		t.Fatalf("compute finished at %v; yields did not hand over the pCPU", comp.doneAt)
	}
	if h.Counters.Value("yield.ple") == 0 || d.Counters.Value("yield.ple") == 0 {
		t.Fatal("PLE yields not counted")
	}
	checkInvariants(t, h)
}

func TestWakeBoostPreemptsLowerPriority(t *testing.T) {
	clock, h := setup(1)
	d := h.NewDomain("vm", nil)
	hog := newComputeGuest(h, d, simtime.Second)
	sleeper := newIntrGuest(h, d)
	h.Start()
	h.Wake(hog.v, false)
	clock.RunUntil(5 * simtime.Millisecond)
	if hog.v.State() != StateRunning {
		t.Fatal("hog should be running")
	}
	h.Wake(sleeper.v, true)
	clock.RunUntil(5*simtime.Millisecond + 10*simtime.Microsecond)
	if sleeper.v.State() != StateRunning {
		t.Fatalf("boosted wake did not preempt: sleeper=%v", sleeper.v.State())
	}
	if h.Counters.Value("boost") == 0 {
		t.Fatal("boost not counted")
	}
	checkInvariants(t, h)
}

func TestWakeOfRunnableIsNoBoostNoOp(t *testing.T) {
	clock, h := setup(1)
	d := h.NewDomain("vm", nil)
	a := newComputeGuest(h, d, simtime.Second)
	b := newComputeGuest(h, d, simtime.Second)
	h.Start()
	h.Wake(a.v, false)
	h.Wake(b.v, false)
	clock.RunUntil(5 * simtime.Millisecond)
	// One runs, the other waits on the runqueue.
	var waiter *VCPU
	if a.v.State() == StateRunnable {
		waiter = a.v
	} else {
		waiter = b.v
	}
	prio := waiter.Priority()
	h.Wake(waiter, true) // must be a no-op: not blocked
	if waiter.Priority() != prio || waiter.State() != StateRunnable {
		t.Fatal("wake of runnable vCPU changed state — breaks the VTD premise")
	}
	if h.Counters.Value("boost") != 0 {
		t.Fatal("runnable wake must not boost")
	}
	checkInvariants(t, h)
}

func TestVIPIToRunningDeliversQuickly(t *testing.T) {
	clock, h := setup(2)
	d := h.NewDomain("vm", nil)
	src := newComputeGuest(h, d, simtime.Second)
	dst := newIntrGuest(h, d)
	h.Start()
	h.Wake(src.v, false)
	h.Wake(dst.v, false)
	clock.RunUntil(time5ms())
	if dst.v.State() != StateRunning {
		t.Fatal("dst should be running on the second pCPU")
	}
	sendAt := clock.Now()
	h.SendVIPI(src.v, dst.v, VecResched, 7)
	clock.RunUntil(sendAt + 10*simtime.Microsecond)
	if len(dst.intrs) != 1 || dst.intrs[0] != VecResched {
		t.Fatalf("intrs=%v", dst.intrs)
	}
	if lat := dst.intrAt[0] - sendAt; lat != h.Cfg.IPILatency {
		t.Fatalf("delivery latency %v, want %v", lat, h.Cfg.IPILatency)
	}
}

func time5ms() simtime.Time { return 5 * simtime.Millisecond }

func TestVIPIToRunnableIsDeferred(t *testing.T) {
	clock, h := setup(1)
	d := h.NewDomain("vm", nil)
	src := newComputeGuest(h, d, simtime.Second)
	dst := newIntrGuest(h, d)
	h.Start()
	h.Wake(src.v, false)
	h.Wake(dst.v, false) // queued behind src on the single pCPU
	clock.RunUntil(time5ms())
	if dst.v.State() != StateRunnable {
		t.Fatalf("dst state %v, want runnable", dst.v.State())
	}
	sendAt := clock.Now()
	h.SendVIPI(src.v, dst.v, VecCallFunc, 0)
	clock.RunUntil(sendAt + simtime.Millisecond)
	if len(dst.intrs) != 0 {
		t.Fatal("deferred IPI delivered while target not scheduled")
	}
	if h.Counters.Value("irq.deferred") != 1 {
		t.Fatal("deferral not counted")
	}
	// After the 30ms slice of src expires, dst runs and drains the IPI.
	clock.RunUntil(40 * simtime.Millisecond)
	if len(dst.intrs) != 1 {
		t.Fatalf("pending IPI not drained on dispatch: %v", dst.intrs)
	}
	if dst.intrAt[0] < 30*simtime.Millisecond {
		t.Fatalf("IPI delivered at %v, before the scheduling turn", dst.intrAt[0])
	}
	checkInvariants(t, h)
}

func TestVIPIToBlockedWakesWithBoost(t *testing.T) {
	clock, h := setup(1)
	d := h.NewDomain("vm", nil)
	src := newComputeGuest(h, d, simtime.Second)
	dst := newIntrGuest(h, d)
	h.Start()
	h.Wake(src.v, false)
	clock.RunUntil(time5ms())
	if dst.v.State() != StateBlocked {
		t.Fatal("dst should still be blocked")
	}
	sendAt := clock.Now()
	h.SendVIPI(src.v, dst.v, VecResched, 0)
	clock.RunUntil(sendAt + 100*simtime.Microsecond)
	if len(dst.intrs) != 1 {
		t.Fatalf("boosted wake did not deliver promptly: %v", dst.intrs)
	}
	if h.Counters.Value("boost") == 0 {
		t.Fatal("no boost recorded")
	}
	checkInvariants(t, h)
}

func TestInjectPIRQRoutesToDesignatedVCPU(t *testing.T) {
	clock, h := setup(2)
	d := h.NewDomain("vm", nil)
	v0 := newIntrGuest(h, d)
	v1 := newIntrGuest(h, d)
	d.IRQVCPU = 1
	h.Start()
	h.Wake(v0.v, false)
	h.Wake(v1.v, false)
	clock.RunUntil(time5ms())
	h.InjectPIRQ(d, VecNet, 42)
	clock.RunUntil(clock.Now() + 100*simtime.Microsecond)
	if len(v1.intrs) != 1 || v1.intrs[0] != VecNet {
		t.Fatalf("designated vCPU intrs=%v", v1.intrs)
	}
	if len(v0.intrs) != 0 {
		t.Fatal("IRQ leaked to the wrong vCPU")
	}
	if h.Counters.Value("virq.sent") != 1 || h.Counters.Value("pirq") != 1 {
		t.Fatal("pirq/virq counters wrong")
	}
}

func TestCrossDomainIPIPanics(t *testing.T) {
	clock, h := setup(2)
	d1 := h.NewDomain("a", nil)
	d2 := h.NewDomain("b", nil)
	g1 := newIntrGuest(h, d1)
	g2 := newIntrGuest(h, d2)
	h.Start()
	_ = clock
	defer func() {
		if recover() == nil {
			t.Fatal("cross-domain IPI did not panic")
		}
	}()
	h.SendVIPI(g1.v, g2.v, VecResched, 0)
}

func TestMicroPoolMigration(t *testing.T) {
	clock, h := setup(2)
	d := h.NewDomain("vm", nil)
	hog := newComputeGuest(h, d, simtime.Second)
	victim := newComputeGuest(h, d, simtime.Second)
	h.Start()
	// Both on pCPU 0; pCPU 1 moves to the micro pool.
	hog.v.Pin(0)
	victim.v.Pin(0)
	h.Wake(hog.v, false)
	h.Wake(victim.v, false)
	if n := h.SetMicroCount(1); n != 1 {
		t.Fatalf("micro count %d", n)
	}
	clock.RunUntil(time5ms())
	if victim.v.State() != StateRunnable {
		t.Fatalf("victim %v, want runnable behind hog", victim.v.State())
	}
	if !h.MigrateToMicro(victim.v) {
		t.Fatal("migration refused")
	}
	if victim.v.State() != StateRunning || !victim.v.OnMicro() {
		t.Fatalf("victim not running on micro: %v onMicro=%v", victim.v.State(), victim.v.OnMicro())
	}
	// After one 0.1ms micro slice the vCPU returns home.
	clock.RunUntil(clock.Now() + 200*simtime.Microsecond)
	if victim.v.OnMicro() {
		t.Fatal("vCPU stayed on micro pool after its slice")
	}
	if victim.v.MicroVisits() != 1 {
		t.Fatalf("microVisits=%d", victim.v.MicroVisits())
	}
	if h.Counters.Value("migrate.home") == 0 {
		t.Fatal("migrate.home not counted")
	}
	checkInvariants(t, h)
}

func TestMicroRunqueueLimit(t *testing.T) {
	clock, h := setup(4)
	d := h.NewDomain("vm", nil)
	var guests []*computeGuest
	for i := 0; i < 4; i++ {
		g := newComputeGuest(h, d, simtime.Second)
		g.v.Pin(0)
		guests = append(guests, g)
	}
	h.Start()
	for _, g := range guests {
		h.Wake(g.v, false)
	}
	h.SetMicroCount(1)
	clock.RunUntil(time5ms())
	// guests[0] runs on p0; 1..3 queued. Micro pool has one pCPU, limit 1:
	// first migration dispatches, second queues, third must fail.
	if !h.MigrateToMicro(guests[1].v) {
		t.Fatal("first migration failed")
	}
	if !h.MigrateToMicro(guests[2].v) {
		t.Fatal("second migration (runqueue slot) failed")
	}
	if h.MigrateToMicro(guests[3].v) {
		t.Fatal("third migration should exceed the runqueue limit")
	}
	if h.Counters.Value("migrate.micro_full") != 1 {
		t.Fatal("micro_full not counted")
	}
	checkInvariants(t, h)
}

func TestMigrateToMicroRefusesRunning(t *testing.T) {
	clock, h := setup(2)
	d := h.NewDomain("vm", nil)
	g := newComputeGuest(h, d, simtime.Second)
	h.Start()
	h.Wake(g.v, false)
	h.SetMicroCount(1)
	clock.RunUntil(time5ms())
	if g.v.State() != StateRunning {
		t.Fatal("guest should be running")
	}
	if h.MigrateToMicro(g.v) {
		t.Fatal("migration of a running vCPU must be refused")
	}
}

func TestMigrateBlockedToMicroWakes(t *testing.T) {
	clock, h := setup(2)
	d := h.NewDomain("vm", nil)
	g := newIntrGuest(h, d)
	h.Start()
	h.SetMicroCount(1)
	clock.RunUntil(simtime.Millisecond)
	if g.v.State() != StateBlocked {
		t.Fatal("guest should be blocked")
	}
	if !h.MigrateToMicro(g.v) {
		t.Fatal("migration of blocked vCPU failed")
	}
	if g.v.State() != StateRunning || !g.v.OnMicro() {
		t.Fatalf("state=%v onMicro=%v", g.v.State(), g.v.OnMicro())
	}
	checkInvariants(t, h)
}

func TestGrowShrinkMicro(t *testing.T) {
	clock, h := setup(4)
	d := h.NewDomain("vm", nil)
	for i := 0; i < 6; i++ {
		g := newComputeGuest(h, d, simtime.Second)
		h.Wake(g.v, false)
	}
	h.Start()
	clock.RunUntil(time5ms())
	if !h.GrowMicro() || !h.GrowMicro() {
		t.Fatal("grow failed")
	}
	if h.MicroCount() != 2 || h.NormalPool().Size() != 2 {
		t.Fatalf("micro=%d normal=%d", h.MicroCount(), h.NormalPool().Size())
	}
	checkInvariants(t, h)
	clock.RunUntil(clock.Now() + time5ms())
	if !h.ShrinkMicro() {
		t.Fatal("shrink failed")
	}
	if h.MicroCount() != 1 || h.NormalPool().Size() != 3 {
		t.Fatalf("after shrink micro=%d normal=%d", h.MicroCount(), h.NormalPool().Size())
	}
	checkInvariants(t, h)
	h.SetMicroCount(0)
	if h.MicroCount() != 0 || h.NormalPool().Size() != 4 {
		t.Fatal("SetMicroCount(0) failed")
	}
	checkInvariants(t, h)
}

func TestGrowMicroKeepsOneNormalPCPU(t *testing.T) {
	clock, h := setup(2)
	h.Start()
	_ = clock
	if !h.GrowMicro() {
		t.Fatal("first grow should succeed")
	}
	if h.GrowMicro() {
		t.Fatal("grow must not empty the normal pool")
	}
	if h.NormalPool().Size() != 1 {
		t.Fatalf("normal=%d", h.NormalPool().Size())
	}
}

func TestGrowMicroAvoidsPinnedPCPU(t *testing.T) {
	clock, h := setup(2)
	d := h.NewDomain("vm", nil)
	g := newComputeGuest(h, d, simtime.Second)
	g.v.Pin(1)
	h.Start()
	h.Wake(g.v, false)
	clock.RunUntil(simtime.Millisecond)
	if !h.GrowMicro() {
		t.Fatal("grow failed")
	}
	// pCPU 1 carries the pinned vCPU, so pCPU 0 must have been taken.
	for _, p := range h.MicroPool().PCPUs() {
		if p.ID == 1 {
			t.Fatal("grow stole the pinned pCPU")
		}
	}
	if h.Counters.Value("pin.violated") != 0 {
		t.Fatal("pin violated")
	}
	checkInvariants(t, h)
}

func TestPinningRespected(t *testing.T) {
	clock, h := setup(2)
	d := h.NewDomain("vm", nil)
	a := newComputeGuest(h, d, 200*simtime.Millisecond)
	b := newComputeGuest(h, d, 200*simtime.Millisecond)
	a.v.Pin(0)
	b.v.Pin(0)
	h.Start()
	h.Wake(a.v, false)
	h.Wake(b.v, false)
	clock.RunUntil(450 * simtime.Millisecond)
	if !a.done || !b.done {
		t.Fatal("pinned guests did not finish")
	}
	// 400ms of combined work on one pCPU: must take at least 400ms even
	// though pCPU 1 idles the whole time (pinning prevented stealing).
	if a.doneAt < 390*simtime.Millisecond && b.doneAt < 390*simtime.Millisecond {
		t.Fatalf("doneAt a=%v b=%v — work leaked to the other pCPU", a.doneAt, b.doneAt)
	}
	if h.PCPU(1).Busy() != 0 {
		t.Fatalf("pCPU1 busy %v, want 0", h.PCPU(1).Busy())
	}
}

func TestWorkStealingSpreadsLoad(t *testing.T) {
	clock, h := setup(2)
	d := h.NewDomain("vm", nil)
	a := newComputeGuest(h, d, 50*simtime.Millisecond)
	b := newComputeGuest(h, d, 50*simtime.Millisecond)
	// Both initially placed on pCPU 0 (affinity hints collide).
	a.v.lastPCPU = 0
	b.v.lastPCPU = 0
	h.Start()
	h.Wake(a.v, false)
	h.Wake(b.v, false)
	clock.RunUntil(200 * simtime.Millisecond)
	if !a.done || !b.done {
		t.Fatal("guests did not finish")
	}
	// With stealing, both finish around 50ms; without, the loser needs 100ms+.
	if a.doneAt > 80*simtime.Millisecond || b.doneAt > 80*simtime.Millisecond {
		t.Fatalf("doneAt a=%v b=%v — stealing failed", a.doneAt, b.doneAt)
	}
	if h.Counters.Value("sched.steal") == 0 {
		t.Fatal("no steals recorded")
	}
}

func TestCreditFairnessUnderOvercommit(t *testing.T) {
	clock, h := setup(1)
	d := h.NewDomain("vm", nil)
	var hogs []*computeGuest
	for i := 0; i < 4; i++ {
		hogs = append(hogs, newComputeGuest(h, d, 10*simtime.Second))
	}
	h.Start()
	for _, g := range hogs {
		h.Wake(g.v, false)
	}
	clock.RunUntil(simtime.Second)
	// Four always-runnable vCPUs share one pCPU: each must get ~250ms.
	for i, g := range hogs {
		ran := g.v.RanTotal()
		if g.v.State() == StateRunning {
			ran += clock.Now() - g.v.runningSince
		}
		if ran < 150*simtime.Millisecond || ran > 350*simtime.Millisecond {
			t.Errorf("hog %d ran %v, want ~250ms", i, ran)
		}
		if g.scheds < 5 {
			t.Errorf("hog %d scheduled only %d times", i, g.scheds)
		}
	}
	checkInvariants(t, h)
}

func TestHookOnYieldFires(t *testing.T) {
	clock, h := setup(1)
	d := h.NewDomain("vm", nil)
	spin := newSpinGuest(h, d, 25*simtime.Microsecond)
	var hooked int
	var hookedReason YieldReason
	h.Hooks.OnYield = func(v *VCPU, reason YieldReason) {
		hooked++
		hookedReason = reason
	}
	h.Start()
	h.Wake(spin.v, false)
	clock.RunUntil(simtime.Millisecond)
	if hooked == 0 || hookedReason != YieldPLE {
		t.Fatalf("hooked=%d reason=%v", hooked, hookedReason)
	}
}

func TestHookRelaysFire(t *testing.T) {
	clock, h := setup(2)
	d := h.NewDomain("vm", nil)
	a := newIntrGuest(h, d)
	b := newIntrGuest(h, d)
	var virqs, vipis int
	h.Hooks.OnVIRQRelay = func(target *VCPU) { virqs++ }
	h.Hooks.OnVIPIRelay = func(src, target *VCPU, vec Vector) { vipis++ }
	h.Start()
	h.Wake(a.v, false)
	h.Wake(b.v, false)
	clock.RunUntil(simtime.Millisecond)
	h.SendVIPI(a.v, b.v, VecResched, 0)
	h.InjectPIRQ(d, VecNet, 0)
	clock.RunUntil(clock.Now() + simtime.Millisecond)
	if vipis != 1 || virqs != 1 {
		t.Fatalf("vipis=%d virqs=%d", vipis, virqs)
	}
}

func TestRanTotalAccounting(t *testing.T) {
	clock, h := setup(1)
	d := h.NewDomain("vm", nil)
	g := newComputeGuest(h, d, 10*simtime.Millisecond)
	h.Start()
	h.Wake(g.v, false)
	clock.RunUntil(simtime.Second)
	if g.v.RanTotal() != 10*simtime.Millisecond {
		t.Fatalf("ranTotal=%v, want 10ms", g.v.RanTotal())
	}
	if h.PCPU(0).Busy() != 10*simtime.Millisecond {
		t.Fatalf("busy=%v", h.PCPU(0).Busy())
	}
}

func TestManyVCPUsInvariantsUnderChurn(t *testing.T) {
	clock, h := setup(4)
	d1 := h.NewDomain("vm1", nil)
	d2 := h.NewDomain("vm2", nil)
	var all []*VCPU
	for i := 0; i < 8; i++ {
		s := newSpinGuest(h, d1, simtime.Duration(10+i)*simtime.Microsecond)
		all = append(all, s.v)
	}
	for i := 0; i < 8; i++ {
		c := newComputeGuest(h, d2, simtime.Duration(20+i)*simtime.Millisecond)
		all = append(all, c.v)
	}
	h.Start()
	for _, v := range all {
		h.Wake(v, false)
	}
	// Interleave pool churn with execution, checking invariants throughout.
	for step := 0; step < 40; step++ {
		clock.RunUntil(clock.Now() + 7*simtime.Millisecond)
		switch step % 4 {
		case 0:
			h.GrowMicro()
		case 1:
			for _, v := range all {
				if v.State() == StateRunnable && !v.OnMicro() {
					h.MigrateToMicro(v)
					break
				}
			}
		case 2:
			h.ShrinkMicro()
		case 3:
			h.SetMicroCount(2)
		}
		checkInvariants(t, h)
	}
	h.SetMicroCount(0)
	checkInvariants(t, h)
}

func TestStartTwicePanics(t *testing.T) {
	_, h := setup(1)
	h.Start()
	defer func() {
		if recover() == nil {
			t.Fatal("second Start did not panic")
		}
	}()
	h.Start()
}

func TestStringers(t *testing.T) {
	if PrioBoost.String() != "BOOST" || PrioUnder.String() != "UNDER" ||
		PrioOver.String() != "OVER" || Priority(9).String() != "IDLE" {
		t.Fatal("Priority.String broken")
	}
	if StateBlocked.String() != "blocked" || StateRunning.String() != "running" ||
		StateRunnable.String() != "runnable" {
		t.Fatal("VCPUState.String broken")
	}
	if YieldPLE.String() != "ple" || YieldIPIWait.String() != "ipi" ||
		YieldHalt.String() != "halt" || YieldOther.String() != "other" {
		t.Fatal("YieldReason.String broken")
	}
	for _, v := range []Vector{VecResched, VecCallFunc, VecNet, VecTimer, Vector(99)} {
		if v.String() == "" {
			t.Fatal("Vector.String broken")
		}
	}
}

package experiment

import (
	"github.com/microslicedcore/microsliced/internal/obs"
	"github.com/microslicedcore/microsliced/internal/report"
	"github.com/microslicedcore/microsliced/internal/simtime"
)

// BlameFromSummary converts one run's telemetry read-out into the causal
// attribution table: one row per span kind with recorded spans, carrying the
// stage latency budget, the dominant stage and its share. Span kinds that
// recorded nothing are omitted.
func BlameFromSummary(scenario string, sum *obs.Summary) *report.Blame {
	b := &report.Blame{Title: "Causal latency attribution: " + scenario}
	if sum == nil {
		return b
	}
	for i := range sum.Spans {
		sp := &sum.Spans[i]
		if sp.Count == 0 {
			continue
		}
		row := report.BlameRow{
			Scenario:    scenario,
			Kind:        sp.Kind,
			Count:       sp.Count,
			Open:        sp.Open,
			TotalMs:     ms(sp.Total),
			P50us:       us(sp.P50),
			P99us:       us(sp.P99),
			P999us:      us(sp.P999),
			Dominant:    sp.Blame,
			DominantPct: sp.BlamePct,
		}
		for _, st := range sp.Stages {
			row.Stages = append(row.Stages, report.BlameStage{
				Name:    st.Name,
				Pct:     st.Share,
				TotalMs: ms(st.Total),
				P99us:   us(st.P99),
			})
		}
		b.Rows = append(b.Rows, row)
	}
	return b
}

func us(d simtime.Duration) float64 { return float64(d) / 1e3 }
func ms(d simtime.Duration) float64 { return float64(d) / 1e6 }

package core

import (
	"strings"
	"testing"

	"github.com/microslicedcore/microsliced/internal/guest"
	"github.com/microslicedcore/microsliced/internal/hv"
	"github.com/microslicedcore/microsliced/internal/ksym"
	"github.com/microslicedcore/microsliced/internal/simtime"
)

// userLockProg alternates user compute with a user-level critical section.
type userLockProg struct {
	l     *guest.SpinLock
	burst simtime.Duration
	i     int
}

func (p *userLockProg) Next(now simtime.Time) guest.Op {
	p.i++
	if p.i%2 == 1 {
		return guest.Op{Kind: guest.OpCompute, Dur: p.burst}
	}
	return guest.Op{Kind: guest.OpLock, Lock: p.l, Dur: 2 * simtime.Microsecond}
}

// userCSScenario: an application with its own spinlocks (a game server, a
// userspace allocator, ...) co-running with a hog VM.
func userCSScenario() (*simtime.Clock, *hv.Hypervisor, *guest.Kernel) {
	clock := simtime.NewClock()
	cfg := hv.DefaultConfig()
	cfg.PCPUs = 12
	h := hv.New(clock, cfg)
	k := guest.NewKernel(h, "app", 12, ksym.Generate(1), guest.DefaultParams())
	hog := guest.NewKernel(h, "hog", 12, ksym.Generate(2), guest.DefaultParams())
	var locks []*guest.SpinLock
	for i := 0; i < 3; i++ {
		locks = append(locks, k.UserLock("ulock"+string(rune('0'+i)), "User"))
	}
	for i := 0; i < 12; i++ {
		k.NewThread(i, "worker", &userLockProg{
			l:     locks[i%len(locks)],
			burst: simtime.Duration(10+i) * simtime.Microsecond,
		})
		hog.NewThread(i, "hog", &hogProg{burst: simtime.Duration(4+i) * simtime.Millisecond})
	}
	for i, vc := range hog.VCPUs {
		hvv := vc.HV()
		clock.At(simtime.Time(1+7*i)*simtime.Millisecond, func() { h.Wake(hvv, false) })
	}
	return clock, h, k
}

func runUserCS(t *testing.T, enable bool) (uint64, *Controller) {
	t.Helper()
	clock, h, k := userCSScenario()
	cfg := StaticConfig(1)
	cfg.UserCS = enable
	c, err := Attach(h, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.RegisterUserRegions(k.Dom.ID, k.UserRegions())
	h.Start()
	c.Start()
	k.StartAll()
	clock.RunUntil(2 * simtime.Second)
	var ops uint64
	for _, th := range k.Threads() {
		ops += th.OpsDone
	}
	return ops, c
}

func TestUserRegionsDeclared(t *testing.T) {
	_, _, k := userCSScenario()
	regions := k.UserRegions()
	if len(regions) != 3 {
		t.Fatalf("regions=%d", len(regions))
	}
	for _, r := range regions {
		if r.Lo < guest.UserCSBase || r.Hi <= r.Lo {
			t.Fatalf("bad region %+v", r)
		}
		if ksym.IsKernelAddr(r.Lo) {
			t.Fatalf("user region in kernel space: %+v", r)
		}
	}
	// Regions must not contain the spin-wait sentinel.
	if _, ok := ksym.LookupUserRegion(regions, guest.UserSpinRIP); ok {
		t.Fatal("spin RIP inside a registered region — waiters would be migrated")
	}
}

func TestUserCSExtensionAccelerates(t *testing.T) {
	offOps, offCtrl := runUserCS(t, false)
	onOps, onCtrl := runUserCS(t, true)

	// Without the extension the detector cannot classify user-space RIPs:
	// no user-region hits, and essentially no rescues of the user locks.
	for name := range offCtrl.SymbolHits {
		if strings.HasPrefix(name, "user:") {
			t.Fatalf("user hit %q recorded without the extension", name)
		}
	}
	userHits := uint64(0)
	for name, n := range onCtrl.SymbolHits {
		if strings.HasPrefix(name, "user:") {
			userHits += n
		}
	}
	if userHits == 0 {
		t.Fatal("extension enabled but no user-region detections")
	}
	if onCtrl.Counters.Value("migrate.ok") <= offCtrl.Counters.Value("migrate.ok") {
		t.Fatalf("no extra migrations: off=%d on=%d",
			offCtrl.Counters.Value("migrate.ok"), onCtrl.Counters.Value("migrate.ok"))
	}
	if onOps <= offOps {
		t.Fatalf("user-CS acceleration did not help: off=%d on=%d", offOps, onOps)
	}
}

func TestRegisterIgnoredWhenDisabled(t *testing.T) {
	clock := simtime.NewClock()
	h := hv.New(clock, hv.DefaultConfig())
	guest.NewKernel(h, "vm", 1, ksym.Generate(1), guest.DefaultParams())
	cfg := StaticConfig(1) // UserCS off
	c, err := Attach(h, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.RegisterUserRegions(0, []ksym.UserRegion{{Name: "x", Lo: 1, Hi: 2}})
	if len(c.userRegions[0]) != 0 {
		t.Fatal("regions registered while the extension is disabled")
	}
}

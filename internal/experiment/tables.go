package experiment

import (
	"fmt"
	"io"
	"sort"

	"github.com/microslicedcore/microsliced/internal/core"
	"github.com/microslicedcore/microsliced/internal/ksym"
	"github.com/microslicedcore/microsliced/internal/report"
	"github.com/microslicedcore/microsliced/internal/simtime"
)

// ---------------------------------------------------------------------------
// Table 2 — the number of yields of workloads run in solo and co-run
// ---------------------------------------------------------------------------

// Table2Row is one workload's yield counts.
type Table2Row struct {
	Workload string
	Solo     uint64
	CoRun    uint64
}

// Table2Result reproduces paper Table 2.
type Table2Result struct {
	Rows     []Table2Row
	Duration simtime.Duration
}

// Table2 measures yield counts solo vs co-run (with swaptions) for the
// paper's four workloads.
func Table2(dur simtime.Duration) (*Table2Result, error) {
	apps := []string{"exim", "gmake", "dedup", "vips"}
	var setups []Setup
	for _, app := range apps {
		setups = append(setups, soloSetup(app, dur), corunSetup(app, offConfig(), dur))
	}
	results, err := RunAll(setups)
	if err != nil {
		return nil, err
	}
	res := &Table2Result{Duration: dur}
	for i, app := range apps {
		solo, co := results[2*i], results[2*i+1]
		res.Rows = append(res.Rows, Table2Row{
			Workload: app,
			Solo:     solo.VM(app).Yields.Total(),
			CoRun:    co.VM(app).Yields.Total(),
		})
	}
	return res, nil
}

// Render implements report.Renderer.
func (r *Table2Result) Render(w io.Writer) {
	t := report.Table{
		Title:   fmt.Sprintf("Table 2: number of yields, solo vs co-run (w/ swaptions), %v simulated", r.Duration),
		Columns: []string{"workload", "solo", "co-run", "increase"},
	}
	for _, row := range r.Rows {
		inc := "-"
		if row.Solo > 0 {
			inc = fmt.Sprintf("%.0fx", float64(row.CoRun)/float64(row.Solo))
		}
		t.AddRow(row.Workload, row.Solo, row.CoRun, inc)
	}
	t.Notes = append(t.Notes, "paper: exim 157k->24.1M, gmake 79k->295M, dedup 290k->164M, vips 644k->57.6M (full benchmark runs)")
	t.Render(w)
}

// ---------------------------------------------------------------------------
// Table 3 — critical components identified at runtime
// ---------------------------------------------------------------------------

// Table3Row is one whitelist entry with its observed detection count.
type Table3Row struct {
	Module   string
	File     string
	Name     string
	Class    string
	Semantic string
	Hits     uint64
}

// Table3Result reproduces paper Table 3: the critical-component whitelist,
// annotated with how often each symbol was actually observed at the
// instruction pointer of a yielding/preempted vCPU during co-run execution.
type Table3Result struct {
	Rows []Table3Row
}

// Table3 runs the lock- and TLB-bound co-run scenarios with detection on
// and tallies the critical symbols observed.
func Table3(dur simtime.Duration) (*Table3Result, error) {
	apps := []string{"exim", "gmake", "dedup", "vips"}
	setups := make([]Setup, len(apps))
	for i, app := range apps {
		setups[i] = corunSetup(app, core.StaticConfig(1), dur)
	}
	results, err := RunAll(setups)
	if err != nil {
		return nil, err
	}
	hits := map[string]uint64{}
	for _, res := range results {
		for name, n := range res.SymbolHits {
			hits[name] += n
		}
	}
	out := &Table3Result{}
	for _, e := range ksym.Whitelist {
		out.Rows = append(out.Rows, Table3Row{
			Module:   e.Module,
			File:     e.File,
			Name:     e.Name,
			Class:    e.Class.String(),
			Semantic: e.Semantic,
			Hits:     hits[e.Name],
		})
	}
	return out, nil
}

// Render implements report.Renderer.
func (r *Table3Result) Render(w io.Writer) {
	t := report.Table{
		Title:   "Table 3: critical components (whitelist) with runtime detection counts",
		Columns: []string{"module", "file", "operation", "class", "hits", "semantic"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Module, row.File, row.Name+"()", row.Class, row.Hits, row.Semantic)
	}
	t.Notes = append(t.Notes, "hits = times the symbol was at a yielding/preempted vCPU's RIP during the co-run scenarios")
	t.Render(w)
}

// ---------------------------------------------------------------------------
// Table 4a — spinlock waiting time in gmake
// ---------------------------------------------------------------------------

// Table4aRow is one kernel component's average lock wait.
type Table4aRow struct {
	Component string
	SoloUs    float64
	CoRunUs   float64
}

// Table4aResult reproduces paper Table 4a.
type Table4aResult struct {
	Rows []Table4aRow
}

// Table4a measures average spinlock waiting time per kernel component for
// gmake, solo vs co-run.
func Table4a(dur simtime.Duration) (*Table4aResult, error) {
	results, err := RunAll([]Setup{
		soloSetup("gmake", dur),
		corunSetup("gmake", offConfig(), dur),
	})
	if err != nil {
		return nil, err
	}
	solo, co := results[0], results[1]
	out := &Table4aResult{}
	classes := make(map[string]bool)
	for c := range solo.VM("gmake").LockStat {
		classes[c] = true
	}
	for c := range co.VM("gmake").LockStat {
		classes[c] = true
	}
	sorted := make([]string, 0, len(classes))
	for c := range classes {
		sorted = append(sorted, c)
	}
	sort.Strings(sorted)
	for _, c := range sorted {
		row := Table4aRow{Component: c}
		if h := solo.VM("gmake").LockStat[c]; h != nil {
			row.SoloUs = h.Mean() / 1000
		}
		if h := co.VM("gmake").LockStat[c]; h != nil {
			row.CoRunUs = h.Mean() / 1000
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render implements report.Renderer.
func (r *Table4aResult) Render(w io.Writer) {
	t := report.Table{
		Title:   "Table 4a: spinlock waiting time (us) in gmake",
		Columns: []string{"kernel component", "solo (us)", "co-run (us)"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Component, row.SoloUs, row.CoRunUs)
	}
	t.Notes = append(t.Notes, "paper: reclaim 1.03->420, allocator 3.42->1053, dentry 2.93->1299, runqueue 1.22->256")
	t.Render(w)
}

// ---------------------------------------------------------------------------
// Table 4b — TLB synchronization latency
// ---------------------------------------------------------------------------

// Table4bRow is one workload/configuration's shootdown latency stats.
type Table4bRow struct {
	Workload string
	Config   string
	AvgUs    float64
	MinUs    float64
	MaxUs    float64
}

// Table4bResult reproduces paper Table 4b.
type Table4bResult struct {
	Rows []Table4bRow
}

// Table4b measures TLB synchronization latency for dedup and vips, solo vs
// co-run.
func Table4b(dur simtime.Duration) (*Table4bResult, error) {
	apps := []string{"dedup", "vips"}
	var setups []Setup
	for _, app := range apps {
		setups = append(setups, soloSetup(app, dur), corunSetup(app, offConfig(), dur))
	}
	results, err := RunAll(setups)
	if err != nil {
		return nil, err
	}
	out := &Table4bResult{}
	for i, app := range apps {
		for _, v := range []struct {
			cfg string
			res *Result
		}{{"solo", results[2*i]}, {"co-run", results[2*i+1]}} {
			h := v.res.VM(app).TLB
			out.Rows = append(out.Rows, Table4bRow{
				Workload: app,
				Config:   v.cfg,
				AvgUs:    h.Mean() / 1000,
				MinUs:    float64(h.Min()) / 1000,
				MaxUs:    float64(h.Max()) / 1000,
			})
		}
	}
	return out, nil
}

// Render implements report.Renderer.
func (r *Table4bResult) Render(w io.Writer) {
	t := report.Table{
		Title:   "Table 4b: TLB synchronization latency (us)",
		Columns: []string{"workload", "config", "avg", "min", "max"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Workload, row.Config, row.AvgUs, row.MinUs, row.MaxUs)
	}
	t.Notes = append(t.Notes, "paper: dedup solo 28 (5..1927), co-run 6354 (7..74915); vips solo 55 (5..2052), co-run 14928 (17..121548)")
	t.Render(w)
}

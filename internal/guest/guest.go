// Package guest models the guest operating system running inside a domain:
// per-vCPU run queues of kernel/user threads, qspinlocks with FIFO grant,
// the TLB-shootdown protocol over call-function IPIs, reschedule IPIs,
// hardirq/softIRQ network receive, timers, and idle halting.
//
// Every kernel activity sets a synthetic instruction pointer inside the
// corresponding function of the domain's System.map (internal/ksym), so the
// hypervisor-side detector can classify a preempted vCPU exactly the way
// the paper does — from (RIP, symbol table) alone.
package guest

import (
	"fmt"

	"github.com/microslicedcore/microsliced/internal/hv"
	"github.com/microslicedcore/microsliced/internal/ksym"
	"github.com/microslicedcore/microsliced/internal/metrics"
	"github.com/microslicedcore/microsliced/internal/obs"
	"github.com/microslicedcore/microsliced/internal/simtime"
)

// Params are the guest kernel's timing constants. All durations are virtual
// nanoseconds; defaults follow DESIGN.md §6.
type Params struct {
	PLEWindow      simtime.Duration // spin time before a pause-loop exit fires
	AckSpinYield   simtime.Duration // spin time waiting for IPI acks before a voluntary yield
	IRQCost        simtime.Duration // hardirq handler execution time
	SoftIRQPerPkt  simtime.Duration // softirq cost per network packet
	TLBFlushCost   simtime.Duration // remote TLB flush handler execution time
	TLBInitCost    simtime.Duration // initiator-side shootdown setup cost
	ReschedIPICost simtime.Duration // scheduler_ipi handler execution time
	TimerIRQCost   simtime.Duration // timer interrupt handler execution time
	WakeCost       simtime.Duration // try_to_wake_up path cost
	RecvConsume    simtime.Duration // app-level cost to consume one packet
	GuestSlice     simtime.Duration // guest scheduler round-robin quantum
}

// DefaultParams returns the calibrated defaults.
func DefaultParams() Params {
	return Params{
		PLEWindow:      25 * simtime.Microsecond,
		AckSpinYield:   20 * simtime.Microsecond,
		IRQCost:        1 * simtime.Microsecond,
		SoftIRQPerPkt:  2 * simtime.Microsecond,
		TLBFlushCost:   1500 * simtime.Nanosecond,
		TLBInitCost:    1 * simtime.Microsecond,
		ReschedIPICost: 1 * simtime.Microsecond,
		TimerIRQCost:   1 * simtime.Microsecond,
		WakeCost:       700 * simtime.Nanosecond,
		RecvConsume:    1 * simtime.Microsecond,
		GuestSlice:     3 * simtime.Millisecond,
	}
}

// Packet is a network packet as seen by the guest.
type Packet struct {
	Seq    uint64
	Flow   int
	Bytes  int
	SentAt simtime.Time
	Span   obs.SpanRef // open net_rx span riding the packet (0: none)
	// ReqSpan is the open end-to-end request span when the packet carries an
	// open-loop serving request (0: none). It rides past the net_rx span's
	// close at consume, through service, to the reply's transmission.
	ReqSpan obs.SpanRef
}

// NetDevice is the guest-facing interface of a virtual NIC (implemented by
// internal/vnet). Fetch drains received packets from the device ring;
// Transmit sends guest->world traffic. The slice Fetch returns is only
// valid until the next Fetch call (the device may reuse its backing
// storage); the engine fully delivers each batch before fetching again.
type NetDevice interface {
	Fetch(max int) []Packet
	Transmit(bytes int, now simtime.Time)
}

// BlockDevice is the guest-facing interface of a virtual disk (implemented
// by internal/vdisk). Submit queues one I/O; the device invokes done when
// the request completes (NVMe-style: the completion interrupt is raised on
// the submitting vCPU's queue).
type BlockDevice interface {
	Submit(bytes int, write bool, done func())
}

// Socket is a minimal in-kernel receive queue connecting the softIRQ path
// to one application thread.
type Socket struct {
	k      *Kernel
	Flow   int
	buf    []Packet
	waiter *Thread
	// OnAppConsume fires when the application-level thread consumes a
	// packet (iPerf accounts throughput and jitter here; TCP-like flows
	// open their window here).
	OnAppConsume func(p Packet, now simtime.Time)
	Delivered    uint64
	Consumed     uint64
}

// Len returns the number of buffered packets.
func (s *Socket) Len() int { return len(s.buf) }

// deliver appends a packet (softIRQ context) and returns the waiter to wake,
// if any.
func (s *Socket) deliver(p Packet) *Thread {
	s.buf = append(s.buf, p)
	s.Delivered++
	w := s.waiter
	s.waiter = nil
	return w
}

// Kernel is the guest OS instance of one domain.
type Kernel struct {
	HV     *hv.Hypervisor
	Dom    *hv.Domain
	Clock  *simtime.Clock
	Sym    *ksym.Table
	Params Params

	VCPUs       []*VCPU
	threads     []*Thread
	locks       map[string]*SpinLock
	sockets     map[int]*Socket
	nic         NetDevice
	disk        BlockDevice
	userRegions []ksym.UserRegion

	// LockStat records spinlock wait time (ns) per lock class, the
	// simulator's Lockstat (paper Table 4a).
	LockStat map[string]*metrics.Histogram
	// TLBStat records shootdown completion latency (ns), the simulator's
	// Systemtap probe on native_flush_tlb_others (paper Table 4b).
	TLBStat *metrics.Histogram

	// LockStall, when set (fault injection), maps an acquired lock's class
	// and nominal critical-section duration to the duration actually spent
	// holding the lock. nil means no amplification.
	LockStall func(class string, d simtime.Duration) simtime.Duration

	// OnThreadExit, when set, fires when any thread finishes its program.
	OnThreadExit func(t *Thread)

	addr     addrs   // resolved symbol addresses for hot-path RIP updates
	shootBuf []*VCPU // reusable live-set snapshot for TLB shootdowns
}

// addrs caches the instruction pointers for guest activities.
type addrs struct {
	user        uint64
	halt        uint64
	spinSlow    uint64
	flushOthers uint64
	callMany    uint64
	flushFunc   uint64
	schedIPI    uint64
	ttwu        uint64
	e1000       uint64
	netRx       uint64
	percpuIRQ   uint64
}

// NewKernel boots a guest kernel with nvcpus virtual CPUs on hypervisor h.
// The domain is created internally with the formatted System.map attached
// (the paper's "guest provides its symbol table" step).
func NewKernel(h *hv.Hypervisor, name string, nvcpus int, sym *ksym.Table, p Params) *Kernel {
	if nvcpus <= 0 {
		panic("guest: need at least one vCPU")
	}
	blob := formatSym(sym)
	dom := h.NewDomain(name, blob)
	k := &Kernel{
		HV:       h,
		Dom:      dom,
		Clock:    h.Clock,
		Sym:      sym,
		Params:   p,
		locks:    make(map[string]*SpinLock),
		sockets:  make(map[int]*Socket),
		LockStat: make(map[string]*metrics.Histogram),
		TLBStat:  metrics.NewHistogram(8),
		addr: addrs{
			user:        ksym.UserRIP,
			halt:        sym.InnerAddr("native_safe_halt"),
			spinSlow:    sym.InnerAddr("native_queued_spin_lock_slowpath"),
			flushOthers: sym.InnerAddr("native_flush_tlb_others"),
			callMany:    sym.InnerAddr("smp_call_function_many"),
			flushFunc:   sym.InnerAddr("flush_tlb_func"),
			schedIPI:    sym.InnerAddr("scheduler_ipi"),
			ttwu:        sym.InnerAddr("ttwu_do_activate"),
			e1000:       sym.InnerAddr("e1000_intr"),
			netRx:       sym.InnerAddr("net_rx_action"),
			percpuIRQ:   sym.InnerAddr("handle_percpu_irq"),
		},
	}
	for i := 0; i < nvcpus; i++ {
		vc := &VCPU{k: k, idx: i, rip: k.addr.halt}
		// Bind the progress callbacks once; armEv and the IRQ/op paths reuse
		// these instead of allocating a closure or method value per fire.
		vc.evWrapFn = func() {
			vc.ev = nil
			fn := vc.evFn
			vc.evFn = nil
			fn()
		}
		vc.opDoneFn = vc.opDone
		vc.irqStageDoneFn = vc.irqStageDone
		vc.pleFireFn = vc.pleFire
		vc.ackSpinFireFn = vc.ackSpinFire
		vc.hvv = h.AddVCPU(dom, vc)
		k.VCPUs = append(k.VCPUs, vc)
	}
	return k
}

func formatSym(sym *ksym.Table) []byte {
	var buf writerBuf
	if err := sym.Format(&buf); err != nil {
		panic(fmt.Sprintf("guest: formatting System.map: %v", err))
	}
	return buf.b
}

type writerBuf struct{ b []byte }

func (w *writerBuf) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// Lock returns (creating on first use) the named kernel lock. The class
// groups locks for Lockstat reporting ("Runqueue", "Dentry", ...).
func (k *Kernel) Lock(name, class, bodyFn string) *SpinLock {
	if l, ok := k.locks[name]; ok {
		return l
	}
	l := &SpinLock{
		k:     k,
		name:  name,
		class: class,
		body:  k.Sym.InnerAddr(bodyFn),
		stat:  k.lockStat(class),
	}
	k.locks[name] = l
	return l
}

// lockStat returns the interned LockStat histogram for a class, creating it
// on first use.
func (k *Kernel) lockStat(class string) *metrics.Histogram {
	h, ok := k.LockStat[class]
	if !ok {
		h = metrics.NewHistogram(8)
		k.LockStat[class] = h
	}
	return h
}

// UserCSBase is where synthetic user-level critical regions are laid out.
const UserCSBase uint64 = 0x00600000

// UserSpinRIP is the instruction pointer of a thread spinning on a
// user-level lock (outside any registered region).
const UserSpinRIP uint64 = ksym.UserRIP + 0x100

// UserLock returns (creating on first use) an application-level spinlock
// whose critical section executes in a dedicated user-space region. The
// region is recorded so it can be registered with the hypervisor through
// the paper's §4.4 interface (Kernel.UserRegions).
func (k *Kernel) UserLock(name, class string) *SpinLock {
	if l, ok := k.locks[name]; ok {
		return l
	}
	lo := UserCSBase + uint64(len(k.userRegions))*0x10000
	l := &SpinLock{
		k:     k,
		name:  name,
		class: class,
		body:  lo + 16,
		user:  true,
		stat:  k.lockStat(class),
	}
	k.locks[name] = l
	k.userRegions = append(k.userRegions, ksym.UserRegion{Name: name, Lo: lo, Hi: lo + 0x10000})
	return l
}

// UserRegions returns the user-level critical regions declared by this
// guest's applications — the data the §4.4 interface hands the hypervisor.
func (k *Kernel) UserRegions() []ksym.UserRegion {
	out := make([]ksym.UserRegion, len(k.userRegions))
	copy(out, k.userRegions)
	return out
}

// RWSem returns (creating on first use) a named sleeping lock — an
// rwsem/mutex whose contended waiters block instead of spinning.
func (k *Kernel) RWSem(name, class, bodyFn string) *SpinLock {
	l := k.Lock(name, class, bodyFn)
	l.sleeping = true
	return l
}

// NewSocket creates the receive socket for a flow.
func (k *Kernel) NewSocket(flow int) *Socket {
	if _, ok := k.sockets[flow]; ok {
		panic(fmt.Sprintf("guest: duplicate socket for flow %d", flow))
	}
	s := &Socket{k: k, Flow: flow}
	k.sockets[flow] = s
	return s
}

// AttachNIC registers the domain's virtual NIC.
func (k *Kernel) AttachNIC(dev NetDevice) { k.nic = dev }

// NetPktsInFlight counts packets fetched from the NIC ring but not yet
// delivered to a socket: the batch held by an in-flight (possibly
// preempted) softirq handler. A residency term of the request conservation
// law internal/check verifies.
func (k *Kernel) NetPktsInFlight() int {
	n := 0
	for _, v := range k.VCPUs {
		if v.irq != nil && v.irq.vec == hv.VecNet && v.irq.stage == 1 {
			n += len(v.irq.pkts)
		}
	}
	return n
}

// AttachDisk registers the domain's virtual block device.
func (k *Kernel) AttachDisk(dev BlockDevice) { k.disk = dev }

// Thread returns the thread with the given ID.
func (k *Kernel) Thread(id int) *Thread { return k.threads[id] }

// Threads returns all threads (including finished ones).
func (k *Kernel) Threads() []*Thread { return k.threads }

// NewThread creates a thread on vCPU vcpuIdx running prog. The thread
// starts Ready; call Start (or StartAll) to begin execution.
func (k *Kernel) NewThread(vcpuIdx int, name string, prog Program) *Thread {
	vc := k.VCPUs[vcpuIdx]
	t := &Thread{
		ID:   len(k.threads),
		Name: name,
		vc:   vc,
		prog: prog,
	}
	// Pre-bound completion callbacks for blocking ops, so OpSleep/OpDisk
	// don't allocate a fresh closure per operation.
	id, tv := uint64(t.ID), vc.hvv
	t.timerFn = func() { k.HV.DeliverLocal(tv, hv.VecTimer, id) }
	t.diskFn = func() {
		// Completion raises a per-queue MSI on the submitting vCPU.
		k.HV.InjectPIRQTo(tv, hv.VecDisk, id)
	}
	k.threads = append(k.threads, t)
	t.state = ThreadReady
	vc.runq = append(vc.runq, t)
	vc.live++
	return t
}

// StartAll wakes every vCPU that has runnable threads. Call after the
// hypervisor is started.
func (k *Kernel) StartAll() {
	for _, vc := range k.VCPUs {
		if len(vc.runq) > 0 {
			k.HV.Wake(vc.hvv, false)
		}
	}
}

// LiveVCPUs returns the vCPUs that host unfinished threads — the targets
// of a TLB shootdown (Linux's mm_cpumask analogue).
func (k *Kernel) LiveVCPUs() []*VCPU {
	var out []*VCPU
	for _, vc := range k.VCPUs {
		if vc.live > 0 {
			out = append(out, vc)
		}
	}
	return out
}

// DoneThreads counts finished threads.
func (k *Kernel) DoneThreads() int {
	n := 0
	for _, t := range k.threads {
		if t.state == ThreadDone {
			n++
		}
	}
	return n
}

// Package metrics implements the measurement primitives the simulator and
// the benchmark harness use: event counters, log-bucketed latency histograms
// with quantiles, min/mean/max trackers, time-weighted gauges and the
// RFC 1889 interarrival-jitter estimator used by iPerf.
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	n uint64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.n++ }

// Add adds delta (>= 0) to the counter.
func (c *Counter) Add(delta uint64) { c.n += delta }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n = 0 }

// Summary tracks count/min/mean/max/sum of a series without storing it.
type Summary struct {
	count uint64
	sum   float64
	sumSq float64
	min   float64
	max   float64
}

// Observe records one sample.
func (s *Summary) Observe(v float64) {
	if s.count == 0 || v < s.min {
		s.min = v
	}
	if s.count == 0 || v > s.max {
		s.max = v
	}
	s.count++
	s.sum += v
	s.sumSq += v * v
}

// Count returns the number of samples.
func (s *Summary) Count() uint64 { return s.count }

// Sum returns the total of all samples.
func (s *Summary) Sum() float64 { return s.sum }

// Mean returns the sample mean (0 when empty).
func (s *Summary) Mean() float64 {
	if s.count == 0 {
		return 0
	}
	return finite(s.sum / float64(s.count))
}

// Min returns the smallest sample (0 when empty).
func (s *Summary) Min() float64 {
	if s.count == 0 {
		return 0
	}
	return finite(s.min)
}

// Max returns the largest sample (0 when empty).
func (s *Summary) Max() float64 {
	if s.count == 0 {
		return 0
	}
	return finite(s.max)
}

// StdDev returns the population standard deviation (0 when empty).
func (s *Summary) StdDev() float64 {
	if s.count == 0 {
		return 0
	}
	m := s.Mean()
	v := finite(s.sumSq/float64(s.count) - m*m)
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// finite clamps the non-finite values that overflow-adjacent samples (e.g.
// math.MaxFloat64, whose square is +Inf) produce in the running sums, so no
// NaN or Inf ever escapes into results — where it would poison downstream
// aggregation and serialise as invalid JSON.
func finite(v float64) float64 {
	switch {
	case math.IsNaN(v):
		return 0
	case math.IsInf(v, 1):
		return math.MaxFloat64
	case math.IsInf(v, -1):
		return -math.MaxFloat64
	}
	return v
}

// Histogram is a log-bucketed latency histogram. Values are expected to be
// non-negative (nanoseconds in practice); negative values clamp to zero.
//
// Buckets are: [0,1), then per-octave sub-buckets with subBuckets linear
// divisions per power of two, up to 2^63. With subBuckets=8 the relative
// quantile error is bounded by ~12.5%, which is ample for the latency-shape
// comparisons in the paper.
type Histogram struct {
	sub     int
	buckets []uint64
	summary Summary
}

const histMaxExp = 63

// NewHistogram returns a histogram with the given sub-bucket resolution
// (clamped to [1, 64]).
func NewHistogram(subBuckets int) *Histogram {
	if subBuckets < 1 {
		subBuckets = 1
	}
	if subBuckets > 64 {
		subBuckets = 64
	}
	return &Histogram{
		sub:     subBuckets,
		buckets: make([]uint64, 1+histMaxExp*subBuckets),
	}
}

func (h *Histogram) bucketIndex(v int64) int {
	if v < 1 {
		return 0
	}
	exp := 63 - leadingZeros64(uint64(v)) // floor(log2 v), 0..62
	base := int64(1) << uint(exp)
	// Position within the octave, [0, sub). Computed in float64 because the
	// int64 product (v-base)*sub overflows for v near the top octaves; the
	// result is identical for every v whose octave offset fits in a float64
	// mantissa, and merely coarser (never out of range) above that.
	frac := int(float64(v-base) * float64(h.sub) / float64(base))
	if frac >= h.sub {
		frac = h.sub - 1
	}
	idx := 1 + exp*h.sub + frac
	if idx >= len(h.buckets) {
		idx = len(h.buckets) - 1
	}
	return idx
}

func leadingZeros64(x uint64) int {
	n := 0
	if x == 0 {
		return 64
	}
	for x&(1<<63) == 0 {
		x <<= 1
		n++
	}
	return n
}

// bucketLower returns the inclusive lower bound of bucket idx.
func (h *Histogram) bucketLower(idx int) int64 {
	if idx == 0 {
		return 0
	}
	idx--
	exp := idx / h.sub
	frac := idx % h.sub
	base := int64(1) << uint(exp)
	// base*frac needs up to 69 bits in the top octaves; compute the exact
	// floor(base*frac/sub) through a 128-bit intermediate.
	hi, lo := bits.Mul64(uint64(base), uint64(frac))
	q, _ := bits.Div64(hi, lo, uint64(h.sub))
	return base + int64(q)
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[h.bucketIndex(v)]++
	h.summary.Observe(float64(v))
}

// Count returns the number of recorded values.
func (h *Histogram) Count() uint64 { return h.summary.Count() }

// Mean returns the exact mean of recorded values.
func (h *Histogram) Mean() float64 { return h.summary.Mean() }

// Min returns the exact minimum recorded value.
func (h *Histogram) Min() int64 { return clampToInt64(h.summary.Min()) }

// Max returns the exact maximum recorded value.
func (h *Histogram) Max() int64 { return clampToInt64(h.summary.Max()) }

// clampToInt64 converts a float64 tracked by the inner Summary back to
// int64. float64(MaxInt64) rounds up to 2^63, which over-converts and wraps
// negative; saturate instead.
func clampToInt64(v float64) int64 {
	if v >= math.MaxInt64 {
		return math.MaxInt64
	}
	if v <= math.MinInt64 {
		return math.MinInt64
	}
	return int64(v)
}

// Quantile returns an approximation of the q-quantile (q in [0,1]).
// It returns 0 for an empty histogram. The result is clamped into
// [Min(), Max()]: bucket lower bounds systematically under-report at exact
// bucket boundaries (a single-sample histogram's p50 would come out below
// the sample), and no sample outside the observed range can be a quantile.
func (h *Histogram) Quantile(q float64) int64 {
	n := h.summary.Count()
	if n == 0 {
		return 0
	}
	// The extreme quantiles are tracked exactly; skip the bucket walk so
	// they never under- or over-shoot to a bucket boundary.
	if q <= 0 {
		return h.Min()
	}
	if q >= 1 {
		return h.Max()
	}
	rank := uint64(q * float64(n-1))
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		if cum > rank {
			return h.clampToObserved(h.bucketLower(i))
		}
	}
	return h.Max()
}

// clampToObserved bounds a bucket-derived estimate by the exact observed
// range tracked in the inner summary.
func (h *Histogram) clampToObserved(v int64) int64 {
	if min := h.Min(); v < min {
		return min
	}
	if max := h.Max(); v > max {
		return max
	}
	return v
}

// Merge adds every bucket of other into h. Both histograms must have the
// same sub-bucket resolution.
func (h *Histogram) Merge(other *Histogram) error {
	if other == nil {
		return nil
	}
	if other.sub != h.sub {
		return fmt.Errorf("metrics: merging histograms with different resolution (%d vs %d)", h.sub, other.sub)
	}
	for i, c := range other.buckets {
		h.buckets[i] += c
	}
	h.summary.count += other.summary.count
	h.summary.sum += other.summary.sum
	h.summary.sumSq += other.summary.sumSq
	if other.summary.count > 0 {
		if h.summary.count == other.summary.count || other.summary.min < h.summary.min {
			h.summary.min = other.summary.min
		}
		if h.summary.count == other.summary.count || other.summary.max > h.summary.max {
			h.summary.max = other.summary.max
		}
	}
	return nil
}

// String renders a short summary for logs.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d min=%d mean=%.1f p50=%d p99=%d max=%d",
		h.Count(), h.Min(), h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.Max())
}

// Jitter is the RFC 1889 (RTP) smoothed interarrival jitter estimator, the
// statistic iPerf reports for UDP streams. Transit times are supplied in
// nanoseconds; the estimate is available in milliseconds for reporting.
type Jitter struct {
	haveLast    bool
	lastTransit int64
	j           float64
	peak        float64
	n           uint64
}

// ObserveTransit records the transit time (receive - send) of one packet.
func (j *Jitter) ObserveTransit(transit int64) {
	if j.haveLast {
		d := transit - j.lastTransit
		if d < 0 {
			d = -d
		}
		j.j += (float64(d) - j.j) / 16.0
		if j.j > j.peak {
			j.peak = j.j
		}
		j.n++
	}
	j.haveLast = true
	j.lastTransit = transit
}

// Peak returns the maximum the smoothed estimator reached (ns). In a
// deterministic simulation the instantaneous estimator decays to zero
// whenever a measurement boundary lands in a quiet phase, so the peak is
// the robust indicator of scheduling-induced delay bursts.
func (j *Jitter) Peak() float64 { return j.peak }

// PeakMillis returns Peak in milliseconds.
func (j *Jitter) PeakMillis() float64 { return j.peak / 1e6 }

// Nanos returns the current jitter estimate in nanoseconds.
func (j *Jitter) Nanos() float64 { return j.j }

// Millis returns the current jitter estimate in milliseconds.
func (j *Jitter) Millis() float64 { return j.j / 1e6 }

// Samples returns the number of packet pairs observed.
func (j *Jitter) Samples() uint64 { return j.n }

// Gauge tracks a step function of virtual time and integrates it, yielding
// time-weighted averages (e.g. average number of micro-sliced cores).
type Gauge struct {
	value    float64
	lastTime int64
	area     float64
	started  bool
	start    int64
}

// Set updates the gauge value at virtual time now (ns).
func (g *Gauge) Set(now int64, v float64) {
	if !g.started {
		g.started = true
		g.start = now
		g.lastTime = now
		g.value = v
		return
	}
	if now > g.lastTime {
		g.area += g.value * float64(now-g.lastTime)
		g.lastTime = now
	}
	g.value = v
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return g.value }

// TimeAverage returns the time-weighted mean over [start, now].
func (g *Gauge) TimeAverage(now int64) float64 {
	if !g.started || now <= g.start {
		return g.value
	}
	area := g.area
	if now > g.lastTime {
		area += g.value * float64(now-g.lastTime)
	}
	return area / float64(now-g.start)
}

// Integral returns the integral of the step function over [start, now]
// (value·ns). For small integer-valued gauges the float64 sum is exact, so
// conformance laws can compare it against an integer ledger directly.
func (g *Gauge) Integral(now int64) float64 {
	if !g.started {
		return 0
	}
	area := g.area
	if now > g.lastTime {
		area += g.value * float64(now-g.lastTime)
	}
	return area
}

// Set is a registry of named counters, letting subsystems export counts
// without cross-package coupling.
type Set struct {
	counters map[string]*Counter
	order    []string
}

// NewSet returns an empty registry.
func NewSet() *Set {
	return &Set{counters: make(map[string]*Counter)}
}

// Counter returns the counter with the given name, creating it on first use.
func (s *Set) Counter(name string) *Counter {
	if c, ok := s.counters[name]; ok {
		return c
	}
	c := &Counter{}
	s.counters[name] = c
	s.order = append(s.order, name)
	return c
}

// Handle returns an interned *Counter for name, creating it on first use.
// It is the documented accessor for hot paths: resolve the handle once at
// construction time and call Inc/Add on it directly, so the steady state
// pays no map lookup or string hashing per increment.
func (s *Set) Handle(name string) *Counter {
	return s.Counter(name)
}

// Value returns the value of a named counter (0 if absent).
func (s *Set) Value(name string) uint64 {
	if c, ok := s.counters[name]; ok {
		return c.Value()
	}
	return 0
}

// Names returns the counter names in creation order.
func (s *Set) Names() []string {
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// Snapshot returns a copy of all counter values.
func (s *Set) Snapshot() map[string]uint64 {
	out := make(map[string]uint64, len(s.counters))
	for name, c := range s.counters {
		out[name] = c.Value()
	}
	return out
}

// Reset zeroes every counter in the set.
func (s *Set) Reset() {
	for _, c := range s.counters {
		c.Reset()
	}
}

// String renders the set sorted by name for stable logs.
func (s *Set) String() string {
	names := make([]string, 0, len(s.counters))
	for n := range s.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", n, s.counters[n].Value())
	}
	return b.String()
}

// Command paperbench regenerates every table and figure of the paper's
// evaluation on the simulated testbed and prints them as text tables.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/microslicedcore/microsliced/internal/check"
	"github.com/microslicedcore/microsliced/internal/core"
	"github.com/microslicedcore/microsliced/internal/experiment"
	"github.com/microslicedcore/microsliced/internal/obs"
	"github.com/microslicedcore/microsliced/internal/report"
	"github.com/microslicedcore/microsliced/internal/simtime"
)

func main() {
	var (
		runs     = flag.String("run", "all", "comma-separated experiments: table1,table2,table3,table4a,table4b,table4c,fig4,fig5,fig6,fig7,fig8,fig9,ext-usercs,faultsweep,recoverysweep or 'all'")
		secs     = flag.Float64("seconds", 3, "simulated seconds per run")
		par      = flag.Int("parallel", 0, "scenario workers (0 = GOMAXPROCS, 1 = serial)")
		prof     = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprof  = flag.String("memprofile", "", "write an allocation profile to this file at exit")
		faults   = flag.Bool("faults", false, "also run the fault-injection sweep (shorthand for adding faultsweep to -run)")
		recov    = flag.Bool("recovery", false, "also run the recovery sweep: harsh faults, supervisor on, MTTR percentiles (shorthand for adding recoverysweep to -run)")
		verbose  = flag.Bool("v", false, "attach the observability layer and print one telemetry line per scenario")
		checked  = flag.Bool("check", false, "run the conformance conservation checks after every scenario (fails fast on a scheduler accounting violation)")
		traceOut = flag.String("trace-out", "", "run one demo consolidation scenario, write its Chrome trace-event JSON (Perfetto-loadable) to this file, and exit")
	)
	flag.Parse()
	experiment.SetParallelism(*par)
	if *checked {
		experiment.SetCheckHook(check.Conservation)
	}
	if *traceOut != "" {
		if err := exportTrace(*traceOut, simtime.Duration(*secs*float64(simtime.Second))); err != nil {
			fmt.Fprintf(os.Stderr, "trace-out: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *verbose {
		experiment.SetDefaultObs(&obs.Config{})
		var mu sync.Mutex
		var lastMem runtime.MemStats
		runtime.ReadMemStats(&lastMem)
		experiment.SetRunHook(func(s experiment.Setup, r *experiment.Result) {
			mu.Lock()
			defer mu.Unlock()
			// Process-wide allocation delta since the previous line. With
			// -parallel > 1 scenarios overlap, so the per-scenario
			// attribution is approximate; the totals are exact.
			var m runtime.MemStats
			runtime.ReadMemStats(&m)
			allocs := m.Mallocs - lastMem.Mallocs
			mb := float64(m.TotalAlloc-lastMem.TotalAlloc) / (1 << 20)
			lastMem = m
			fmt.Fprintf(os.Stderr, "%s | %d allocs/op %.1f MB/op\n", telemetryLine(s, r), allocs, mb)
		})
	}
	if *prof != "" {
		f, err := os.Create(*prof)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprof != "" {
		defer func() {
			f, err := os.Create(*memprof)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush dead objects so inuse numbers are meaningful
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}
	dur := simtime.Duration(*secs * float64(simtime.Second))
	want := map[string]bool{}
	for _, r := range strings.Split(*runs, ",") {
		want[strings.TrimSpace(r)] = true
	}
	all := want["all"]
	if *faults {
		want["faultsweep"] = true
	}
	if *recov {
		want["recoverysweep"] = true
	}
	// The fault and recovery sweeps are opt-in: "all" means the paper's
	// artefacts.
	sel := func(name string) bool {
		if name == "faultsweep" || name == "recoverysweep" {
			return want[name]
		}
		return all || want[name]
	}

	type job struct {
		name string
		run  func() (report.Renderer, error)
	}
	var bests map[string]int
	record := func(sweeps []*experiment.SweepResult) {
		if bests == nil {
			bests = map[string]int{}
		}
		for _, s := range sweeps {
			bests[s.Workload] = s.BestStatic()
		}
	}
	// Jobs run serially — fig6/fig7 consume the static-best pool sizes
	// recorded by the fig4/fig5 sweeps — but each generator submits its own
	// scenario grid through experiment.RunAll, so the -parallel worker pool
	// is busy within every job.
	jobs := []job{
		{"table1", func() (report.Renderer, error) { return experiment.Table1(dur) }},
		{"table2", func() (report.Renderer, error) { return experiment.Table2(dur) }},
		{"table3", func() (report.Renderer, error) { return experiment.Table3(dur) }},
		{"table4a", func() (report.Renderer, error) { return experiment.Table4a(dur) }},
		{"table4b", func() (report.Renderer, error) { return experiment.Table4b(dur) }},
		{"table4c", func() (report.Renderer, error) { return experiment.Table4c(dur) }},
		{"fig4", func() (report.Renderer, error) {
			r, err := experiment.Figure4(dur)
			if err == nil {
				record(r.Sweeps)
			}
			return r, err
		}},
		{"fig5", func() (report.Renderer, error) {
			r, err := experiment.Figure5(dur)
			if err == nil {
				record(r.Sweeps)
			}
			return r, err
		}},
		{"fig6", func() (report.Renderer, error) { return experiment.Figure6(dur, bests) }},
		{"fig7", func() (report.Renderer, error) { return experiment.Figure7(dur, bests) }},
		{"fig8", func() (report.Renderer, error) { return experiment.Figure8(dur) }},
		{"fig9", func() (report.Renderer, error) { return experiment.Figure9(dur) }},
		{"ext-usercs", func() (report.Renderer, error) { return experiment.ExtensionUserCS(dur) }},
		{"faultsweep", func() (report.Renderer, error) { return experiment.FaultSweep(dur) }},
		{"recoverysweep", func() (report.Renderer, error) { return experiment.RecoverySweep(dur) }},
	}
	start := time.Now()
	for _, j := range jobs {
		if !sel(j.name) {
			continue
		}
		fmt.Fprintf(os.Stderr, "running %s (%v simulated per scenario, %d workers)...\n",
			j.name, dur, experiment.Parallelism())
		t0 := time.Now()
		r, err := j.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", j.name, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "%s done in %v\n", j.name, time.Since(t0).Round(time.Millisecond))
		r.Render(os.Stdout)
	}
	fmt.Fprintf(os.Stderr, "total wall-clock: %v\n", time.Since(start).Round(time.Millisecond))
}

// telemetryLine condenses one scenario's observability read-out: the
// scenario's VMs, the three slowest span kinds by p99, and the busiest pCPU.
func telemetryLine(s experiment.Setup, r *experiment.Result) string {
	var b strings.Builder
	names := make([]string, len(s.VMs))
	for i, vm := range s.VMs {
		names[i] = vm.Name
	}
	fmt.Fprintf(&b, "telemetry [%s]:", strings.Join(names, "+"))
	if r.Telemetry == nil {
		b.WriteString(" (no observer)")
		return b.String()
	}
	spans := make([]obs.SpanStat, 0, len(r.Telemetry.Spans))
	for _, sp := range r.Telemetry.Spans {
		if sp.Count > 0 {
			spans = append(spans, sp)
		}
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].P99 > spans[j].P99 })
	if len(spans) > 3 {
		spans = spans[:3]
	}
	for _, sp := range spans {
		fmt.Fprintf(&b, " %s p99=%v (n=%d)", sp.Kind, sp.P99, sp.Count)
	}
	if id, busy := r.Telemetry.BusiestPCPU(); id >= 0 {
		fmt.Fprintf(&b, " | busiest p%d %.0f%%", id, 100*float64(busy)/float64(r.Duration))
	}
	return b.String()
}

// exportTrace runs one fixed consolidation scenario — gmake and swaptions
// at 2:1 under the dynamic mechanism — with the full-run trace ring enabled
// and writes the timeline as Chrome trace-event JSON.
func exportTrace(path string, dur simtime.Duration) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	s := experiment.Setup{
		VMs: []experiment.VMSpec{
			{Name: "gmake", App: "gmake", Seed: 11},
			{Name: "swaptions", App: "swaptions", Seed: 22},
		},
		Core:         core.DefaultConfig(),
		Duration:     dur,
		StaggerStart: true,
		Obs:          &obs.Config{},
		TraceExport:  f,
	}
	res, err := experiment.Run(s)
	if err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%v simulated; load at https://ui.perfetto.dev)\n", path, res.Duration)
	return nil
}

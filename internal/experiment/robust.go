package experiment

import (
	"fmt"
	"io"
	"reflect"

	"github.com/microslicedcore/microsliced/internal/core"
	"github.com/microslicedcore/microsliced/internal/fault"
	"github.com/microslicedcore/microsliced/internal/report"
	"github.com/microslicedcore/microsliced/internal/simtime"
)

// ---------------------------------------------------------------------------
// Fault sweep — robustness under injected adversity
// ---------------------------------------------------------------------------

// faultSweepCases are the sweep rows: each fault in isolation, then all of
// them combined. Probabilities are deliberately aggressive — the sweep is
// a stress harness, not a realism study.
func faultSweepCases() []struct {
	Name string
	Cfg  fault.Config
} {
	return []struct {
		Name string
		Cfg  fault.Config
	}{
		{"none", fault.Config{}},
		{"pcpu-offline", fault.Config{Seed: 1, OfflinePCPUs: 2}},
		{"ipi-delay", fault.Config{Seed: 1, IPIDelayProb: 0.3, IPIDelayMax: 200 * simtime.Microsecond}},
		{"ipi-drop", fault.Config{Seed: 1, IPIDropProb: 0.2}},
		{"tick-jitter", fault.Config{Seed: 1, TickJitter: 2 * simtime.Millisecond}},
		{"lock-stall", fault.Config{Seed: 1, LockStallProb: 0.1, LockStallFactor: 8}},
		{"combined", fault.Config{
			Seed: 1, OfflinePCPUs: 1,
			IPIDelayProb: 0.2, IPIDelayMax: 200 * simtime.Microsecond,
			IPIDropProb: 0.1, TickJitter: 1 * simtime.Millisecond,
			LockStallProb: 0.05, LockStallFactor: 4,
		}},
	}
}

// FaultSweepRow is one fault configuration's outcome.
type FaultSweepRow struct {
	Name string
	Res  *Result
	Err  error
	// Deterministic reports whether a second run of the identical fault
	// plan reproduced reflect.DeepEqual Results.
	Deterministic bool
}

// FaultSweepResult is the full sweep.
type FaultSweepResult struct {
	Rows []FaultSweepRow
}

// FaultSweep runs the paper's dedup+swaptions co-run (dynamic mode, auditor
// armed) under each fault configuration, twice each: the duplicate run
// checks that a fixed fault-plan seed reproduces bit-for-bit identical
// Results. Per-job isolation comes from RunAllSettled — a failing fault
// row surfaces as an error row, not a dead sweep.
func FaultSweep(dur simtime.Duration) (*FaultSweepResult, error) {
	cases := faultSweepCases()
	setups := make([]Setup, 0, 2*len(cases))
	for _, c := range cases {
		c := c
		s := corunSetup("dedup", core.DefaultConfig(), dur)
		s.Faults = &c.Cfg
		s.Audit = true
		setups = append(setups, s, s)
	}
	settled := RunAllSettled(setups)
	out := &FaultSweepResult{}
	for i, c := range cases {
		a, b := settled[2*i], settled[2*i+1]
		row := FaultSweepRow{Name: c.Name, Res: a.Result, Err: a.Err}
		if a.Err == nil && b.Err == nil {
			row.Deterministic = reflect.DeepEqual(a.Result, b.Result)
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render implements report.Renderer.
func (r *FaultSweepResult) Render(w io.Writer) {
	t := report.Table{
		Title: "Fault sweep: dedup+swaptions co-run (dynamic) under injected faults",
		Columns: []string{"fault", "dedup units", "swaptions units",
			"violations", "fault errs", "reproducible"},
	}
	for _, row := range r.Rows {
		if row.Err != nil {
			t.AddRow(row.Name, "error", fmt.Sprintf("%v", row.Err), "-", "-", "-")
			continue
		}
		res := row.Res
		t.AddRow(row.Name,
			res.VM("dedup").Units,
			res.VM("swaptions").Units,
			len(res.Violations),
			len(res.FaultErrs),
			fmt.Sprintf("%v", row.Deterministic))
	}
	t.Notes = append(t.Notes,
		"each row runs twice with the same fault-plan seed; reproducible=true means reflect.DeepEqual results",
		"violations counts scheduler-invariant breaches found by the auditor (0 expected)")
	t.Render(w)
}

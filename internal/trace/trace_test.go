package trace

import (
	"testing"
	"testing/quick"

	"github.com/microslicedcore/microsliced/internal/simtime"
)

func TestEmitAndRecords(t *testing.T) {
	b := NewBuffer(10)
	for i := 0; i < 5; i++ {
		b.Emit(Record{Time: simtime.Time(i), Kind: KindYield, Dom: 1, VCPU: int16(i)})
	}
	recs := b.Records()
	if len(recs) != 5 {
		t.Fatalf("len=%d", len(recs))
	}
	for i, r := range recs {
		if r.VCPU != int16(i) {
			t.Fatalf("record %d out of order: %v", i, r)
		}
	}
	if b.Len() != 5 {
		t.Fatalf("Len=%d", b.Len())
	}
}

func TestRingWrapKeepsNewest(t *testing.T) {
	b := NewBuffer(4)
	for i := 0; i < 10; i++ {
		b.Emit(Record{Kind: KindSchedule, VCPU: int16(i)})
	}
	recs := b.Records()
	if len(recs) != 4 {
		t.Fatalf("len=%d", len(recs))
	}
	for i, r := range recs {
		if r.VCPU != int16(6+i) {
			t.Fatalf("wrap order wrong: got vcpu %d at %d", r.VCPU, i)
		}
	}
	if b.Count(KindSchedule) != 10 {
		t.Fatalf("count survives wrap: %d", b.Count(KindSchedule))
	}
}

func TestCountsExactWhenDisabled(t *testing.T) {
	b := NewBuffer(2)
	b.SetEnabled(false)
	for i := 0; i < 7; i++ {
		b.Emit(Record{Kind: KindVIPI})
	}
	if b.Count(KindVIPI) != 7 {
		t.Fatalf("count=%d", b.Count(KindVIPI))
	}
	if b.Len() != 0 {
		t.Fatalf("disabled ring stored %d records", b.Len())
	}
}

func TestZeroCapacityBufferCountsOnly(t *testing.T) {
	b := NewBuffer(0)
	b.Emit(Record{Kind: KindYield})
	if b.Count(KindYield) != 1 || b.Len() != 0 {
		t.Fatalf("count=%d len=%d", b.Count(KindYield), b.Len())
	}
}

func TestFilter(t *testing.T) {
	b := NewBuffer(16)
	for i := 0; i < 8; i++ {
		k := KindYield
		if i%2 == 0 {
			k = KindBlock
		}
		b.Emit(Record{Kind: k, VCPU: int16(i)})
	}
	got := b.Filter(func(r Record) bool { return r.Kind == KindYield })
	if len(got) != 4 {
		t.Fatalf("filtered %d", len(got))
	}
	for _, r := range got {
		if r.Kind != KindYield {
			t.Fatalf("filter leaked %v", r)
		}
	}
}

func TestResetCounts(t *testing.T) {
	b := NewBuffer(4)
	b.Emit(Record{Kind: KindWake})
	b.ResetCounts()
	if b.Count(KindWake) != 0 {
		t.Fatal("ResetCounts failed")
	}
	if b.Len() != 1 {
		t.Fatal("ResetCounts should keep ring contents")
	}
}

func TestKindString(t *testing.T) {
	if KindYield.String() != "yield" {
		t.Fatalf("got %q", KindYield.String())
	}
	if Kind(200).String() != "kind(200)" {
		t.Fatalf("got %q", Kind(200).String())
	}
}

// Every declared kind below kindCount must have a non-empty name, so no two
// kinds ever share the generic kind(N) fallback in traces, flight dumps or
// timeline exports.
func TestKindNamesComplete(t *testing.T) {
	if len(kindNames) != int(kindCount) {
		t.Fatalf("kindNames has %d entries, want %d (kindCount)", len(kindNames), kindCount)
	}
	seen := make(map[string]Kind, kindCount)
	for k := Kind(0); k < kindCount; k++ {
		name := kindNames[k]
		if name == "" {
			t.Errorf("kind %d has no kindNames entry", k)
			continue
		}
		if k.String() != name {
			t.Errorf("Kind(%d).String()=%q, want %q", k, k.String(), name)
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("kinds %d and %d share the name %q", prev, k, name)
		}
		seen[name] = k
	}
}

func TestRecordString(t *testing.T) {
	r := Record{Time: 1500, Kind: KindMigrate, Dom: 2, VCPU: 3, PCPU: 4, Arg0: 0xff}
	s := r.String()
	if s == "" {
		t.Fatal("empty String()")
	}
}

// Property: after N emits into a ring of capacity C, Records() returns the
// last min(N, C) records in emit order.
func TestPropertyRingSemantics(t *testing.T) {
	f := func(nRaw, cRaw uint8) bool {
		n, c := int(nRaw%200), int(cRaw%20)+1
		b := NewBuffer(c)
		for i := 0; i < n; i++ {
			b.Emit(Record{Kind: KindSchedule, Arg0: uint64(i)})
		}
		recs := b.Records()
		want := n
		if want > c {
			want = c
		}
		if len(recs) != want {
			return false
		}
		for i, r := range recs {
			if r.Arg0 != uint64(n-want+i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

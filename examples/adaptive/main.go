// Adaptive: watch the paper's Algorithm 1 at work. The workload switches
// personality mid-run — first lock-bound (PLE-dominant), then quiet, then
// TLB-bound (IPI-dominant) — and the controller resizes the micro pool
// accordingly: one core for spinlocks, zero when idle, and an iterative
// search for the IPI phase.
//
//	go run ./examples/adaptive
//
// (This example uses the library's internal packages directly to reach the
// trace ring; applications normally stay on the public facade.)
package main

import (
	"fmt"

	"github.com/microslicedcore/microsliced/internal/core"
	"github.com/microslicedcore/microsliced/internal/guest"
	"github.com/microslicedcore/microsliced/internal/hv"
	"github.com/microslicedcore/microsliced/internal/ksym"
	"github.com/microslicedcore/microsliced/internal/rng"
	"github.com/microslicedcore/microsliced/internal/simtime"
	"github.com/microslicedcore/microsliced/internal/trace"
)

// phasedProg changes behaviour with virtual time.
type phasedProg struct {
	r    *rng.Source
	lock *guest.SpinLock
	mm   *guest.SpinLock
	i    int
}

func (p *phasedProg) Next(now simtime.Time) guest.Op {
	p.i++
	switch {
	case now < 2*simtime.Second: // lock-bound phase
		if p.i%2 == 0 {
			return guest.Op{Kind: guest.OpLock, Lock: p.lock, Dur: simtime.Duration(p.r.ExpDur(2000))}
		}
		return guest.Op{Kind: guest.OpCompute, Dur: simtime.Duration(p.r.ExpDur(int64(12 * simtime.Microsecond)))}
	case now < 4*simtime.Second: // quiet phase: plain computation
		return guest.Op{Kind: guest.OpCompute, Dur: simtime.Duration(p.r.ExpDur(int64(300 * simtime.Microsecond)))}
	default: // TLB-bound phase
		if p.i%2 == 0 {
			return guest.Op{Kind: guest.OpTLBFlush}
		}
		return guest.Op{Kind: guest.OpCompute, Dur: simtime.Duration(p.r.ExpDur(int64(150 * simtime.Microsecond)))}
	}
}

func main() {
	clock := simtime.NewClock()
	cfg := hv.DefaultConfig()
	cfg.TraceCapacity = 1 << 16
	h := hv.New(clock, cfg)

	k := guest.NewKernel(h, "phased", 12, ksym.Generate(1), guest.DefaultParams())
	hog := guest.NewKernel(h, "swaptions", 12, ksym.Generate(2), guest.DefaultParams())
	r := rng.New(3)
	lock := k.Lock("zone0", "Page allocator", "get_page_from_freelist")
	for i := 0; i < 12; i++ {
		k.NewThread(i, "phased", &phasedProg{r: r.Fork(uint64(i)), lock: lock})
		hr := r.Fork(100 + uint64(i))
		hog.NewThread(i, "hog", guest.ProgramFunc(func(now simtime.Time) guest.Op {
			if hr.Bool(0.12) {
				return guest.Op{Kind: guest.OpSleep, Dur: 200 * simtime.Microsecond}
			}
			return guest.Op{Kind: guest.OpCompute, Dur: 5 * simtime.Millisecond}
		}))
	}

	ctrl, err := core.Attach(h, core.DefaultConfig())
	if err != nil {
		panic(err)
	}
	h.Start()
	ctrl.Start()
	k.StartAll()
	hog.StartAll()

	fmt.Println("Algorithm 1 under a phase-changing workload (6s simulated)")
	fmt.Println("phases: 0-2s lock-bound | 2-4s quiet | 4-6s TLB-bound")
	fmt.Printf("%8s %8s %14s %14s %12s\n", "t", "ucores", "spin yields/s", "ipi yields/s", "migrations/s")
	var lastPLE, lastIPI, lastMig uint64
	for t := simtime.Duration(250 * simtime.Millisecond); t <= 6*simtime.Second; t += 250 * simtime.Millisecond {
		clock.RunUntil(t)
		ple := h.Counters.Value("yield.ple")
		ipi := h.Counters.Value("yield.ipi")
		mig := h.Counters.Value("migrate.micro")
		fmt.Printf("%8v %8d %14d %14d %12d\n",
			t, h.MicroCount(), (ple-lastPLE)*4, (ipi-lastIPI)*4, (mig-lastMig)*4)
		lastPLE, lastIPI, lastMig = ple, ipi, mig
	}

	resizes := h.Trace.Count(trace.KindPoolResize)
	fmt.Printf("\npool resizes over the run: %d (profiling probes and epoch decisions)\n", resizes)
	fmt.Printf("time-averaged micro cores: %.2f\n", ctrl.MicroGauge.TimeAverage(int64(clock.Now())))

	decs := ctrl.Decisions()
	fmt.Printf("\ndecision trail (%d epochs, newest %d retained):\n", ctrl.DecisionTotal(), len(decs))
	for _, d := range decs {
		fmt.Printf("  t=%-7v epoch %-2d %-14s -> %d cores (ceiling %d; ipi %d / ple %d / irq %d)\n",
			simtime.Duration(d.Time), d.Epoch, d.Reason, d.Chosen, d.Ceiling,
			d.Run.IPIs, d.Run.PLEs, d.Run.IRQs)
	}
	fmt.Println("\nreading: one core while spinlocks dominate, zero once the load")
	fmt.Println("turns compute-only, and an iterative IPI search (up to the 3-core")
	fmt.Println("limit) when the TLB-shootdown phase begins — Algorithm 1 verbatim.")
}

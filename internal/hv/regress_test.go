package hv

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"github.com/microslicedcore/microsliced/internal/simtime"
)

// TestCountYieldOutOfRangeReason pins the countYield ledger fix: a reason
// outside the known table must be folded into YieldOther on the per-vCPU
// counter too, not just on the domain and hypervisor sets. The pre-fix code
// dropped the per-vCPU increment, so the three yield ledgers drifted apart
// — exactly the drift the conformance harness's conservation check asserts
// against.
func TestCountYieldOutOfRangeReason(t *testing.T) {
	clock, h := setup(1)
	d := h.NewDomain("vm", nil)
	g := newComputeGuest(h, d, 50*simtime.Millisecond)
	h.Start()
	h.Wake(g.v, false)
	clock.RunUntil(simtime.Millisecond)
	if g.v.State() != StateRunning {
		t.Fatalf("vCPU state %v, want Running", g.v.State())
	}

	h.Yield(g.v, YieldReason(200)) // a reason the counter table does not know

	if got := g.v.YieldsBy(YieldOther); got != 1 {
		t.Fatalf("out-of-range yield not folded into YieldOther: got %d, want 1", got)
	}
	var perVCPU uint64
	for r := range yieldName {
		perVCPU += g.v.YieldsBy(YieldReason(r))
	}
	if total := d.Counters.Value("yield.total"); perVCPU != total {
		t.Fatalf("per-vCPU yields %d != domain yield.total %d (ledger drift)", perVCPU, total)
	}
	if total := h.Counters.Value("yield.total"); perVCPU != total {
		t.Fatalf("per-vCPU yields %d != hv yield.total %d (ledger drift)", perVCPU, total)
	}
	checkInvariants(t, h)
}

// TestConfigValidate covers the Config sanity check, in particular the
// degenerate tick/credit ratio that made burnCredits divide by zero: with
// Tick shorter than CreditDebitPerTick nanoseconds, the per-credit burn
// quantum truncates to 0 ns.
func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name  string
		mut   func(*Config)
		field string // expected ConfigError field; "" means valid
	}{
		{"default", func(*Config) {}, ""},
		{"no pcpus", func(c *Config) { c.PCPUs = 0 }, "PCPUs"},
		{"zero normal slice", func(c *Config) { c.NormalSlice = 0 }, "NormalSlice"},
		{"zero micro slice", func(c *Config) { c.MicroSlice = 0 }, "MicroSlice"},
		{"zero tick", func(c *Config) { c.Tick = 0 }, "Tick"},
		{"zero ticks per acct", func(c *Config) { c.TicksPerAcct = 0 }, "TicksPerAcct"},
		{"zero credit debit", func(c *Config) { c.CreditDebitPerTick = 0 }, "CreditDebitPerTick"},
		{"debit exceeds tick nanoseconds", func(c *Config) {
			c.Tick = simtime.Microsecond
			c.CreditDebitPerTick = 2000
		}, "CreditDebitPerTick"},
		{"zero credit cap", func(c *Config) { c.CreditCap = 0 }, "CreditCap"},
		{"floor above cap", func(c *Config) { c.CreditFloor = c.CreditCap + 1 }, "CreditFloor"},
		{"negative ctx switch cost", func(c *Config) { c.CtxSwitchCost = -1 }, "CtxSwitchCost"},
		{"negative micro runq limit", func(c *Config) { c.MicroRunqLimit = -1 }, "MicroRunqLimit"},
		{"negative trace capacity", func(c *Config) { c.TraceCapacity = -1 }, "TraceCapacity"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testConfig(2)
			tc.mut(&cfg)
			err := cfg.Validate()
			if tc.field == "" {
				if err != nil {
					t.Fatalf("valid config rejected: %v", err)
				}
				return
			}
			var cerr *ConfigError
			if !errors.As(err, &cerr) {
				t.Fatalf("got %v, want *ConfigError", err)
			}
			if cerr.Field != tc.field {
				t.Fatalf("rejected field %q, want %q (%v)", cerr.Field, tc.field, err)
			}
		})
	}
}

// TestNewPanicsOnInvalidConfig: the constructor refuses a config that would
// later crash the credit-burn path, and the panic names the bad field.
func TestNewPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("New accepted a config whose credit burn quantum is zero")
		}
		if !strings.Contains(fmt.Sprint(r), "CreditDebitPerTick") {
			t.Fatalf("panic does not name the bad field: %v", r)
		}
	}()
	cfg := testConfig(1)
	cfg.Tick = simtime.Microsecond
	cfg.CreditDebitPerTick = 2000
	New(simtime.NewClock(), cfg)
}

// Package check is the property-based, differential conformance harness for
// the whole simulation stack. It draws random scenarios (domains, weights,
// pins, pools, workload mixes, fault plans) from a seed, runs each one
// under a set of metamorphic perturbations that must not matter — observer
// on/off, trace ring on/off, serial vs parallel runner, domain-ID
// relabelling — and verifies both that every variant produces bit-identical
// scheduling counters and that post-run conservation laws hold (runtime,
// credits, counter ledgers, residency, span lifetimes). Any failing
// scenario is greedily shrunk to a minimal repro and dumped as a replayable
// JSON fixture.
package check

import (
	"fmt"

	"github.com/microslicedcore/microsliced/internal/core"
	"github.com/microslicedcore/microsliced/internal/experiment"
	"github.com/microslicedcore/microsliced/internal/fault"
	"github.com/microslicedcore/microsliced/internal/hv"
	"github.com/microslicedcore/microsliced/internal/recovery"
	"github.com/microslicedcore/microsliced/internal/simtime"
)

// Scenario is a JSON-serializable description of one randomly generated
// run. Everything the simulation needs is derived deterministically from
// these fields, so a scenario loaded from a fixture file replays the exact
// run that produced it.
type Scenario struct {
	Seed       uint64 `json:"seed"`
	PCPUs      int    `json:"pcpus"`
	DurationMs int    `json:"duration_ms"`

	// Mode selects the micro-sliced-core mechanism: "off", "static" (with
	// StaticCores micro pCPUs) or "dynamic" (Algorithm 1).
	Mode        string `json:"mode"`
	StaticCores int    `json:"static_cores,omitempty"`

	Stagger        bool `json:"stagger,omitempty"`
	MicroRunqLimit int  `json:"micro_runq_limit"` // 0: unlimited
	NoReturnHome   bool `json:"no_return_home,omitempty"`
	BoostOff       bool `json:"boost_off,omitempty"`

	VMs    []VMSpec   `json:"vms"`
	Faults *FaultSpec `json:"faults,omitempty"`

	// Recovery, when non-nil, arms the self-healing supervisor and marks
	// the scenario as a recovery-conformance run (checked by CheckRecovery
	// against the convergence laws instead of the metamorphic relations).
	Recovery *RecoverySpec `json:"recovery,omitempty"`
}

// VMSpec is one VM of a scenario.
type VMSpec struct {
	App    string `json:"app"`
	VCPUs  int    `json:"vcpus"`
	Seed   uint64 `json:"seed"`
	Weight int    `json:"weight,omitempty"`
	Pins   []int  `json:"pins,omitempty"`
	// ServeRate, when positive, attaches an open-loop request-serving
	// workload at that offered load (req/s); ServeSeed drives its arrival
	// process and ServeRing bounds the NIC RX ring (0: default). Serving
	// scenarios exercise the request conservation law in Conservation.
	ServeRate int    `json:"serve_rate,omitempty"`
	ServeSeed uint64 `json:"serve_seed,omitempty"`
	ServeRing int    `json:"serve_ring,omitempty"`
}

// FaultSpec is the scenario's fault-injection plan (nil: fault-free).
type FaultSpec struct {
	Seed            uint64  `json:"seed"`
	OfflinePCPUs    int     `json:"offline_pcpus,omitempty"`
	PermanentOffPCPUs int   `json:"permanent_off_pcpus,omitempty"`
	IPIDelayProb    float64 `json:"ipi_delay_prob,omitempty"`
	IPIDelayMaxUs   int     `json:"ipi_delay_max_us,omitempty"`
	IPIDropProb     float64 `json:"ipi_drop_prob,omitempty"`
	LoseIPIs        bool    `json:"lose_ipis,omitempty"`
	TickJitterUs    int     `json:"tick_jitter_us,omitempty"`
	LockStallProb   float64 `json:"lock_stall_prob,omitempty"`
	LockStallFactor float64 `json:"lock_stall_factor,omitempty"`
	Storms          int     `json:"storms,omitempty"`
	StormLenMs      int     `json:"storm_len_ms,omitempty"`
	QuiesceAtMs     int     `json:"quiesce_at_ms,omitempty"`
}

// RecoverySpec configures the supervisor for a recovery-conformance run.
type RecoverySpec struct {
	// IntervalMs is the supervisor walk period (0: scheduler tick).
	IntervalMs int `json:"interval_ms,omitempty"`
	// StarveBoundMs is the runnable wait that counts as starvation.
	StarveBoundMs int `json:"starve_bound_ms"`
	// DeadlineMs is the convergence window after the fault quiesce point:
	// past quiesce+deadline no starvation, violation or repair may occur.
	DeadlineMs int `json:"deadline_ms"`
}

// ToSetup lowers the scenario to an experiment Setup. Each call builds a
// fresh hv.Config, so callers may perturb the returned Setup (trace
// capacity, observer, relabelling) without aliasing.
func (sc Scenario) ToSetup() experiment.Setup {
	cfg := hv.DefaultConfig()
	cfg.MicroRunqLimit = sc.MicroRunqLimit
	cfg.MicroReturnHome = !sc.NoReturnHome
	cfg.BoostEnabled = !sc.BoostOff

	vms := make([]experiment.VMSpec, len(sc.VMs))
	for i, vm := range sc.VMs {
		vms[i] = experiment.VMSpec{
			Name:   fmt.Sprintf("vm%d", i),
			App:    vm.App,
			VCPUs:  vm.VCPUs,
			Seed:   vm.Seed,
			Weight: vm.Weight,
			Pins:   append([]int(nil), vm.Pins...),
		}
		if vm.ServeRate > 0 {
			vms[i].Serve = &experiment.ServeSpec{
				RatePerSec: vm.ServeRate,
				RingCap:    vm.ServeRing,
				Seed:       vm.ServeSeed,
			}
		}
	}

	cc := core.DefaultConfig()
	switch sc.Mode {
	case "static":
		cc = core.StaticConfig(sc.StaticCores)
	case "dynamic":
	default:
		cc.Mode = core.ModeOff
	}

	s := experiment.Setup{
		PCPUs:        sc.PCPUs,
		VMs:          vms,
		Core:         cc,
		Duration:     simtime.Duration(sc.DurationMs) * simtime.Millisecond,
		StaggerStart: sc.Stagger,
		HVConfig:     &cfg,
	}
	if f := sc.Faults; f != nil {
		s.Faults = &fault.Config{
			Seed:                  f.Seed,
			OfflinePCPUs:          f.OfflinePCPUs,
			PermanentOfflinePCPUs: f.PermanentOffPCPUs,
			IPIDelayProb:          f.IPIDelayProb,
			IPIDelayMax:           simtime.Duration(f.IPIDelayMaxUs) * simtime.Microsecond,
			IPIDropProb:           f.IPIDropProb,
			LoseIPIs:              f.LoseIPIs,
			TickJitter:            simtime.Duration(f.TickJitterUs) * simtime.Microsecond,
			LockStallProb:         f.LockStallProb,
			LockStallFactor:       f.LockStallFactor,
			Storms:                f.Storms,
			StormLen:              simtime.Duration(f.StormLenMs) * simtime.Millisecond,
			QuiesceAt:             simtime.Duration(f.QuiesceAtMs) * simtime.Millisecond,
		}
	}
	if r := sc.Recovery; r != nil {
		s.Recovery = &recovery.Config{
			Interval:    simtime.Duration(r.IntervalMs) * simtime.Millisecond,
			StarveBound: simtime.Duration(r.StarveBoundMs) * simtime.Millisecond,
		}
	}
	return s
}

// clone deep-copies the scenario (the shrinker mutates candidates freely).
func (sc Scenario) clone() Scenario {
	c := sc
	c.VMs = make([]VMSpec, len(sc.VMs))
	for i, vm := range sc.VMs {
		c.VMs[i] = vm
		c.VMs[i].Pins = append([]int(nil), vm.Pins...)
	}
	if sc.Faults != nil {
		f := *sc.Faults
		c.Faults = &f
	}
	if sc.Recovery != nil {
		r := *sc.Recovery
		c.Recovery = &r
	}
	return c
}

package check

import (
	"os"
	"reflect"
	"testing"

	"github.com/microslicedcore/microsliced/internal/experiment"
)

// TestRecoveryConformanceSuite is the recovery harness's entry point:
// generated harsh-fault scenarios with the supervisor armed, each checked
// against the convergence laws (conservation at end of run, no post-deadline
// starvation, drained lost-IPI ledger, bounded repairs/finite MTTR) and for
// bit-identical reruns. RECOVERY_COUNT/RECOVERY_SEED override; the nightly
// CI job runs 500 with a rotating seed. Failures are shrunk and dumped under
// CHECK_FIXTURE_DIR when set.
func TestRecoveryConformanceSuite(t *testing.T) {
	opt := Options{
		Seed:       envUint("RECOVERY_SEED", 1),
		Count:      envInt("RECOVERY_COUNT", 60),
		FixtureDir: os.Getenv("CHECK_FIXTURE_DIR"),
	}
	if testing.Verbose() {
		opt.Progress = os.Stderr
	}
	rep, err := RunRecoverySuite(opt)
	if err != nil {
		t.Fatalf("recovery suite: %v", err)
	}
	if rep.Checked < opt.Count && len(rep.Failures) == 0 {
		t.Fatalf("suite stopped early: %d/%d scenarios", rep.Checked, opt.Count)
	}
	for i, f := range rep.Failures {
		where := ""
		if i < len(rep.FixturePaths) && rep.FixturePaths[i] != "" {
			where = " (fixture: " + rep.FixturePaths[i] + ")"
		}
		t.Errorf("seed %d: %s%s\nshrunk repro: %+v", f.Seed, f.Err, where, f.Shrunk)
	}
}

// TestGenerateRecoveryDeterministic: the same seed always yields the same
// recovery scenario.
func TestGenerateRecoveryDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 32; seed++ {
		a, b := GenerateRecovery(seed), GenerateRecovery(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: %+v != %+v", seed, a, b)
		}
	}
}

// TestGenerateRecoveryShaped: every generated scenario is recovery-shaped
// (quiesce point, deadline inside the run, supervisor armed) and lowers to
// a valid Setup with an in-range fault plan.
func TestGenerateRecoveryShaped(t *testing.T) {
	for seed := uint64(50); seed < 90; seed++ {
		sc := GenerateRecovery(seed)
		if !recoveryShaped(sc) {
			t.Fatalf("seed %d: generated scenario is not recovery-shaped: %+v", seed, sc)
		}
		s := sc.ToSetup()
		if s.Recovery == nil || s.Faults == nil {
			t.Fatalf("seed %d: ToSetup dropped the recovery wiring", seed)
		}
		if err := s.Faults.Validate(); err != nil {
			t.Fatalf("seed %d: fault plan invalid: %v", seed, err)
		}
		if off := s.Faults.OfflinePCPUs + s.Faults.PermanentOfflinePCPUs; off > s.PCPUs-3 {
			t.Fatalf("seed %d: %d of %d pCPUs unplugged, want >= 3 survivors", seed, off, s.PCPUs)
		}
	}
}

// TestRecoveryCheckRejectsMalformedScenario: CheckRecovery refuses
// scenarios without the faults→quiesce→deadline shape instead of
// vacuously passing them.
func TestRecoveryCheckRejectsMalformedScenario(t *testing.T) {
	sc := GenerateRecovery(1)
	for name, breakIt := range map[string]func(*Scenario){
		"no-recovery": func(s *Scenario) { s.Recovery = nil },
		"no-faults":   func(s *Scenario) { s.Faults = nil },
		"no-quiesce":  func(s *Scenario) { s.Faults.QuiesceAtMs = 0 },
		"deadline-past-end": func(s *Scenario) {
			s.DurationMs = s.Faults.QuiesceAtMs + s.Recovery.DeadlineMs - 1
		},
	} {
		c := sc.clone()
		breakIt(&c)
		if recoveryShaped(c) {
			t.Errorf("%s: scenario still reports recovery-shaped", name)
		}
		if err := CheckRecovery(c); err == nil {
			t.Errorf("%s: CheckRecovery accepted a malformed scenario", name)
		}
	}
}

// TestRecoveryInjectedBugCaught: the recovery harness has teeth too — a
// mutation that corrupts the repair log must fail the rerun comparison.
func TestRecoveryInjectedBugCaught(t *testing.T) {
	c := &Checker{mutate: func(r *experiment.Result) {
		r.RepairCount++
	}}
	if err := c.CheckRecovery(GenerateRecovery(2)); err == nil {
		t.Fatal("corrupted repair count was not caught")
	}
}

package metrics

import (
	"math"
	"testing"
)

// assertFinite fails if v is NaN or infinite — the property every accessor
// must hold so nothing unrepresentable escapes into Results or JSON.
func assertFinite(t *testing.T, label string, v float64) {
	t.Helper()
	if math.IsNaN(v) || math.IsInf(v, 0) {
		t.Errorf("%s = %v, want finite", label, v)
	}
}

func assertSummaryFinite(t *testing.T, s *Summary) {
	t.Helper()
	assertFinite(t, "Mean", s.Mean())
	assertFinite(t, "Min", s.Min())
	assertFinite(t, "Max", s.Max())
	assertFinite(t, "StdDev", s.StdDev())
}

func TestSummaryEdgeEmpty(t *testing.T) {
	var s Summary
	if s.Count() != 0 || s.Sum() != 0 {
		t.Fatalf("empty summary count=%d sum=%v", s.Count(), s.Sum())
	}
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.StdDev() != 0 {
		t.Fatal("empty summary accessors must all be 0")
	}
	assertSummaryFinite(t, &s)
}

func TestSummaryEdgeSingleSample(t *testing.T) {
	var s Summary
	s.Observe(42)
	if s.Mean() != 42 || s.Min() != 42 || s.Max() != 42 {
		t.Fatalf("single sample: mean=%v min=%v max=%v", s.Mean(), s.Min(), s.Max())
	}
	if s.StdDev() != 0 {
		t.Fatalf("single sample StdDev=%v, want 0", s.StdDev())
	}
	assertSummaryFinite(t, &s)
}

func TestSummaryEdgeAllEqual(t *testing.T) {
	var s Summary
	for i := 0; i < 1000; i++ {
		s.Observe(7.5)
	}
	if s.Mean() != 7.5 {
		t.Fatalf("Mean=%v, want 7.5", s.Mean())
	}
	// sumSq/n - mean² cancels catastrophically here; the <0 clamp plus the
	// finite clamp must keep the result an exact 0.
	if s.StdDev() != 0 {
		t.Fatalf("all-equal StdDev=%v, want 0", s.StdDev())
	}
	assertSummaryFinite(t, &s)
}

// Overflow-adjacent samples: MaxFloat64² is +Inf in sumSq, and two such
// samples overflow sum itself. Every accessor must still come back finite.
func TestSummaryEdgeOverflowAdjacent(t *testing.T) {
	var s Summary
	s.Observe(math.MaxFloat64)
	assertSummaryFinite(t, &s)
	if s.Max() != math.MaxFloat64 {
		t.Fatalf("Max=%v, want MaxFloat64", s.Max())
	}

	s.Observe(math.MaxFloat64) // sum is now +Inf
	assertSummaryFinite(t, &s)
	if got := s.Mean(); got != math.MaxFloat64 {
		t.Fatalf("overflowed Mean=%v, want clamp to MaxFloat64", got)
	}

	var neg Summary
	neg.Observe(-math.MaxFloat64)
	neg.Observe(-math.MaxFloat64)
	assertSummaryFinite(t, &neg)
	if got := neg.Mean(); got != -math.MaxFloat64 {
		t.Fatalf("overflowed negative Mean=%v, want clamp to -MaxFloat64", got)
	}
}

func TestHistogramEdgeEmpty(t *testing.T) {
	h := NewHistogram(8)
	for _, q := range []float64{0, 0.5, 0.99, 0.999, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%v)=%d, want 0", q, got)
		}
	}
	if h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram min/max must be 0")
	}
	assertFinite(t, "empty Mean", h.Mean())
}

func TestHistogramEdgeSingleSample(t *testing.T) {
	h := NewHistogram(8)
	h.Observe(1000)
	for _, q := range []float64{0, 0.5, 0.999, 1} {
		got := h.Quantile(q)
		// One sample: the bucket lower bound is clamped to the observed
		// min/max, so every quantile IS the sample.
		if got != 1000 {
			t.Fatalf("Quantile(%v)=%d, want exactly 1000 (the only sample)", q, got)
		}
	}
}

// TestHistogramQuantileBoundaryClamp pins the exact-boundary contract:
// quantiles are bucket lower bounds clamped into [Min, Max], so degenerate
// histograms (one sample, all-equal samples, two extremes) report observed
// values instead of under-shooting to a bucket edge.
func TestHistogramQuantileBoundaryClamp(t *testing.T) {
	quantiles := []float64{0, 0.25, 0.5, 0.75, 0.99, 0.999, 1}

	// A single sample: p50 (and every other quantile) == that sample,
	// across octave boundaries, mid-bucket values and the extremes.
	singles := []int64{1, 2, 3, 7, 8, 9, 1000, 4095, 4096, 4097,
		1<<20 + 123, 1 << 40, math.MaxInt64}
	for _, v := range singles {
		h := NewHistogram(8)
		h.Observe(v)
		for _, q := range quantiles {
			if got := h.Quantile(q); got != v {
				t.Errorf("single sample %d: Quantile(%v)=%d, want the sample", v, q, got)
			}
		}
	}

	// All-equal samples behave identically to one sample.
	for _, v := range []int64{5, 4096, 1<<30 + 1} {
		h := NewHistogram(8)
		for i := 0; i < 500; i++ {
			h.Observe(v)
		}
		for _, q := range quantiles {
			if got := h.Quantile(q); got != v {
				t.Errorf("500× %d: Quantile(%v)=%d, want the sample", v, q, got)
			}
		}
	}

	// Two samples: the extreme quantiles are exactly the observed extremes
	// and everything in between stays inside [lo, hi].
	two := []struct{ lo, hi int64 }{
		{1, 2}, {1, 1000000}, {4095, 4097}, {1000, 1000},
	}
	for _, c := range two {
		h := NewHistogram(8)
		h.Observe(c.lo)
		h.Observe(c.hi)
		if got := h.Quantile(0); got != c.lo {
			t.Errorf("{%d,%d}: Quantile(0)=%d, want min", c.lo, c.hi, got)
		}
		if got := h.Quantile(1); got != c.hi {
			t.Errorf("{%d,%d}: Quantile(1)=%d, want max", c.lo, c.hi, got)
		}
		for _, q := range quantiles {
			if got := h.Quantile(q); got < c.lo || got > c.hi {
				t.Errorf("{%d,%d}: Quantile(%v)=%d outside observed range", c.lo, c.hi, q, got)
			}
		}
	}
}

func TestHistogramEdgeAllEqual(t *testing.T) {
	h := NewHistogram(8)
	for i := 0; i < 500; i++ {
		h.Observe(4096)
	}
	lo, hi := h.Quantile(0), h.Quantile(1)
	if lo != hi {
		t.Fatalf("all-equal quantiles differ: q0=%d q1=%d", lo, hi)
	}
	if h.Quantile(1) != 4096 { // power of two is its own bucket lower bound
		t.Fatalf("Quantile(1)=%d, want 4096", h.Quantile(1))
	}
}

// Values in the top octaves used to overflow the int64 sub-bucket
// arithmetic, producing a negative fraction and a wrong (potentially
// out-of-range) bucket. All of these must index in-bounds, keep quantiles
// ordered and stay finite.
func TestHistogramEdgeOverflowAdjacent(t *testing.T) {
	h := NewHistogram(8)
	huge := []int64{
		math.MaxInt64,
		math.MaxInt64 - 1,
		1 << 62,
		(1 << 62) + (1 << 61), // deep into the top octave
		1 << 60,
	}
	for _, v := range huge {
		h.Observe(v)
	}
	if h.Count() != uint64(len(huge)) {
		t.Fatalf("Count=%d, want %d", h.Count(), len(huge))
	}
	if h.Max() != math.MaxInt64 {
		t.Fatalf("Max=%d, want MaxInt64", h.Max())
	}
	var prev int64
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.99, 1} {
		got := h.Quantile(q)
		if got < 0 {
			t.Fatalf("Quantile(%v)=%d went negative (bucket overflow)", q, got)
		}
		if got < prev {
			t.Fatalf("Quantile(%v)=%d < previous %d: non-monotonic", q, got, prev)
		}
		prev = got
	}
	if q := h.Quantile(0); q < 1<<59 {
		t.Fatalf("Quantile(0)=%d, want within an octave of 2^60", q)
	}
	assertFinite(t, "huge Mean", h.Mean())
}

// bucketIndex must stay in-bounds for every magnitude, including the values
// whose (v-base)*sub product overflows int64.
func TestHistogramBucketIndexInBounds(t *testing.T) {
	for _, sub := range []int{1, 8, 64} {
		h := NewHistogram(sub)
		for exp := 0; exp < 63; exp++ {
			for _, off := range []int64{0, 1} {
				v := int64(1)<<uint(exp) + off
				idx := h.bucketIndex(v)
				if idx < 0 || idx >= len(h.buckets) {
					t.Fatalf("sub=%d v=%d: bucket %d out of range [0,%d)", sub, v, idx, len(h.buckets))
				}
				if lower := h.bucketLower(idx); lower > v {
					t.Fatalf("sub=%d v=%d: bucketLower(%d)=%d exceeds value", sub, v, idx, lower)
				}
			}
		}
		if idx := h.bucketIndex(math.MaxInt64); idx < 0 || idx >= len(h.buckets) {
			t.Fatalf("sub=%d MaxInt64: bucket %d out of range", sub, idx)
		}
	}
}

package metrics

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"github.com/microslicedcore/microsliced/internal/rng"
)

func TestCounter(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatal("new counter not zero")
	}
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter=%d, want 5", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatal("reset failed")
	}
}

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, v := range []float64{3, 1, 4, 1, 5} {
		s.Observe(v)
	}
	if s.Count() != 5 {
		t.Fatalf("count=%d", s.Count())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("min=%v max=%v", s.Min(), s.Max())
	}
	if math.Abs(s.Mean()-2.8) > 1e-9 {
		t.Fatalf("mean=%v", s.Mean())
	}
	if s.Sum() != 14 {
		t.Fatalf("sum=%v", s.Sum())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.StdDev() != 0 {
		t.Fatal("empty summary should report zeros")
	}
}

func TestSummaryStdDev(t *testing.T) {
	var s Summary
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Observe(v)
	}
	if math.Abs(s.StdDev()-2.0) > 1e-9 {
		t.Fatalf("stddev=%v, want 2", s.StdDev())
	}
}

func TestHistogramExactStats(t *testing.T) {
	h := NewHistogram(8)
	vals := []int64{10, 20, 30, 40, 1000000}
	for _, v := range vals {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count=%d", h.Count())
	}
	if h.Min() != 10 || h.Max() != 1000000 {
		t.Fatalf("min=%d max=%d", h.Min(), h.Max())
	}
	if math.Abs(h.Mean()-200020.0) > 1e-6 {
		t.Fatalf("mean=%v", h.Mean())
	}
}

func TestHistogramNegativeClamps(t *testing.T) {
	h := NewHistogram(8)
	h.Observe(-5)
	if h.Count() != 1 || h.Min() != 0 {
		t.Fatalf("negative clamp failed: %s", h)
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	h := NewHistogram(8)
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	h := NewHistogram(16)
	r := rng.New(1)
	var raw []int64
	for i := 0; i < 50000; i++ {
		v := r.ExpDur(10000)
		raw = append(raw, v)
		h.Observe(v)
	}
	sort.Slice(raw, func(i, j int) bool { return raw[i] < raw[j] })
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		exact := raw[int(q*float64(len(raw)-1))]
		approx := h.Quantile(q)
		relErr := math.Abs(float64(approx-exact)) / float64(exact)
		if relErr > 0.10 {
			t.Errorf("q=%v exact=%d approx=%d relErr=%.3f", q, exact, approx, relErr)
		}
	}
}

func TestHistogramQuantileMonotonic(t *testing.T) {
	f := func(seed uint64) bool {
		h := NewHistogram(8)
		r := rng.New(seed)
		for i := 0; i < 500; i++ {
			h.Observe(int64(r.Intn(1 << 20)))
		}
		prev := int64(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramQuantileBounds(t *testing.T) {
	h := NewHistogram(8)
	for _, v := range []int64{5, 5, 5} {
		h.Observe(v)
	}
	// Clamped q values must not panic and stay within [min, max].
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		v := h.Quantile(q)
		if v < 0 || v > 5 {
			t.Fatalf("q=%v gave %d", q, v)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(8), NewHistogram(8)
	for i := int64(1); i <= 100; i++ {
		a.Observe(i)
	}
	for i := int64(101); i <= 200; i++ {
		b.Observe(i)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 200 {
		t.Fatalf("merged count=%d", a.Count())
	}
	if a.Min() != 1 || a.Max() != 200 {
		t.Fatalf("merged min/max=%d/%d", a.Min(), a.Max())
	}
	if err := a.Merge(NewHistogram(4)); err == nil {
		t.Fatal("merging different resolutions should fail")
	}
	if err := a.Merge(nil); err != nil {
		t.Fatal("merging nil should be a no-op")
	}
}

func TestHistogramBucketRoundTrip(t *testing.T) {
	h := NewHistogram(8)
	f := func(vRaw uint32) bool {
		v := int64(vRaw)
		idx := h.bucketIndex(v)
		lower := h.bucketLower(idx)
		if lower > v {
			return false
		}
		// The next bucket's lower bound must exceed v.
		if idx+1 < len(h.buckets) && h.bucketLower(idx+1) <= v {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestJitterConstantTransitIsZero(t *testing.T) {
	var j Jitter
	for i := 0; i < 100; i++ {
		j.ObserveTransit(5000)
	}
	if j.Nanos() != 0 {
		t.Fatalf("constant transit jitter=%v, want 0", j.Nanos())
	}
	if j.Samples() != 99 {
		t.Fatalf("samples=%d", j.Samples())
	}
}

func TestJitterConvergesToMeanAbsDelta(t *testing.T) {
	// Alternate transit 0/16000 -> |D| = 16000 always; RFC filter converges to 16000.
	var j Jitter
	for i := 0; i < 2000; i++ {
		if i%2 == 0 {
			j.ObserveTransit(0)
		} else {
			j.ObserveTransit(16000)
		}
	}
	if math.Abs(j.Nanos()-16000) > 1 {
		t.Fatalf("jitter=%v, want ~16000", j.Nanos())
	}
	if math.Abs(j.Millis()-0.016) > 1e-6 {
		t.Fatalf("Millis=%v", j.Millis())
	}
	if j.Peak() < j.Nanos() {
		t.Fatalf("peak %v below current %v", j.Peak(), j.Nanos())
	}
}

func TestJitterPeakSurvivesDecay(t *testing.T) {
	var j Jitter
	j.ObserveTransit(0)
	j.ObserveTransit(32_000_000) // one 32ms burst
	burst := j.Nanos()
	if burst < 1e6 {
		t.Fatalf("burst estimator %v", burst)
	}
	for i := 0; i < 1000; i++ {
		j.ObserveTransit(32_000_000) // constant transit: estimator decays
	}
	if j.Nanos() > 1 {
		t.Fatalf("estimator did not decay: %v", j.Nanos())
	}
	if j.Peak() != burst {
		t.Fatalf("peak %v, want %v", j.Peak(), burst)
	}
	if j.PeakMillis() != burst/1e6 {
		t.Fatalf("PeakMillis %v", j.PeakMillis())
	}
}

func TestGaugeTimeAverage(t *testing.T) {
	var g Gauge
	g.Set(0, 1)
	g.Set(100, 3) // value 1 over [0,100)
	g.Set(200, 0) // value 3 over [100,200)
	// Average over [0,300]: (1*100 + 3*100 + 0*100)/300 = 4/3
	avg := g.TimeAverage(300)
	if math.Abs(avg-4.0/3.0) > 1e-9 {
		t.Fatalf("time average=%v", avg)
	}
	if g.Value() != 0 {
		t.Fatalf("value=%v", g.Value())
	}
}

func TestGaugeBeforeStart(t *testing.T) {
	var g Gauge
	if g.TimeAverage(10) != 0 {
		t.Fatal("unset gauge should average 0")
	}
	g.Set(50, 7)
	if g.TimeAverage(50) != 7 {
		t.Fatal("zero-width average should return current value")
	}
}

func TestSetRegistry(t *testing.T) {
	s := NewSet()
	s.Counter("a").Inc()
	s.Counter("b").Add(2)
	s.Counter("a").Inc()
	if s.Value("a") != 2 || s.Value("b") != 2 {
		t.Fatalf("a=%d b=%d", s.Value("a"), s.Value("b"))
	}
	if s.Value("missing") != 0 {
		t.Fatal("missing counter should read 0")
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names=%v", names)
	}
	snap := s.Snapshot()
	if snap["a"] != 2 {
		t.Fatalf("snapshot=%v", snap)
	}
	if got := s.String(); got != "a=2 b=2" {
		t.Fatalf("String()=%q", got)
	}
	s.Reset()
	if s.Value("a") != 0 {
		t.Fatal("reset failed")
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i % 1000000))
	}
}

func TestHandleIsInterned(t *testing.T) {
	s := NewSet()
	h := s.Handle("x")
	h.Inc()
	h.Add(2)
	if s.Value("x") != 3 {
		t.Fatalf("Value(x)=%d, want 3", s.Value("x"))
	}
	if s.Handle("x") != h || s.Counter("x") != h {
		t.Fatal("Handle/Counter did not return the interned counter")
	}
}

// BenchmarkCounterInc is the regression check for the interned-handle path:
// incrementing through a resolved *Counter must not allocate or touch the
// registry map.
func BenchmarkCounterInc(b *testing.B) {
	s := NewSet()
	h := s.Handle("yield.total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Inc()
	}
}

// BenchmarkCounterLookupInc measures the string-keyed path the hot loops
// used before interning, for comparison in bench reports.
func BenchmarkCounterLookupInc(b *testing.B) {
	s := NewSet()
	s.Counter("yield.total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Counter("yield.total").Inc()
	}
}

package hv

import (
	"fmt"
	"math/bits"

	"github.com/microslicedcore/microsliced/internal/trace"
)

// ---------------------------------------------------------------------------
// vCPU migration between pools
// ---------------------------------------------------------------------------

// MigrateToMicro moves a preempted (Runnable) or halted (Blocked) vCPU into
// the micro-sliced pool so its critical OS service completes within a
// 0.1 ms turnaround. A Running vCPU needs no acceleration and is refused.
// The move also fails when the micro pool is empty or every micro pCPU is
// at its runqueue limit (the paper's stacking guard, §5).
func (h *Hypervisor) MigrateToMicro(v *VCPU) bool {
	if len(h.micro.pcpus) == 0 {
		return false
	}
	if v.pool == h.micro {
		return false // already being accelerated
	}
	if v.state == StateRunning {
		return false
	}
	// Find capacity first so failure leaves the vCPU untouched. The fully
	// idle case (no current vCPU, empty runqueue) is one mask probe; the
	// fallback scan only runs when every micro pCPU holds work.
	var idle, queued *PCPU
	if free := ^(h.micro.occ | h.micro.busyMask) & h.micro.memberMask(); free != 0 {
		idle = h.micro.pcpus[bits.TrailingZeros64(free)]
	} else {
		for _, p := range h.micro.pcpus {
			if h.micro.RunqLimit == 0 || len(p.runq) < h.micro.RunqLimit {
				queued = p
				break
			}
		}
	}
	if idle == nil && queued == nil {
		h.count("migrate.micro_full")
		return false
	}
	if v.state == StateRunnable {
		h.dequeue(v)
	}
	h.setRunnable(v)
	v.pool = h.micro
	v.microVisits++
	h.hot.migrMicro.Inc()
	v.Dom.hot.migrMicro.Inc()
	h.emit(trace.KindMigrate, v, 0, 0)
	if h.Obs != nil {
		h.Obs.SetMicro(v.ID, true, h.Clock.Now())
	}
	if idle != nil {
		h.dispatch(idle, v)
	} else {
		h.enqueue(queued, v)
	}
	return true
}

// leaveMicro flips a micro resident's pool membership back to its home
// pool. The migrate-home counter, trace record and observer membership
// update live only here, so the three ledgers can never drift apart.
func (h *Hypervisor) leaveMicro(v *VCPU) {
	v.pool = v.homePool
	h.hot.migrHome.Inc()
	h.emit(trace.KindMigrate, v, 1, 0)
	if h.Obs != nil {
		h.Obs.SetMicro(v.ID, false, h.Clock.Now())
	}
}

// sendHome returns a runnable, unqueued micro resident to its home pool and
// queues it there — the single exit path for every "micro resident migrates
// home" site (slice expiry, pool shrink, pCPU hot-unplug).
func (h *Hypervisor) sendHome(v *VCPU) {
	if v.state != StateRunnable || v.queuedOn != nil {
		panic(fmt.Sprintf("hv: sendHome of %v", v))
	}
	h.leaveMicro(v)
	p := h.homePCPU(v)
	h.enqueue(p, v)
	h.tickle(p)
}

// RePin changes a vCPU's pinning at runtime (rival schedulers repartition
// pCPUs per class). A queued vCPU moves to a compatible runqueue at once;
// a running vCPU finishes its slice first (requeuePreempted then places
// it correctly).
func (h *Hypervisor) RePin(v *VCPU, pcpu int) {
	v.pin = pcpu
	if v.state == StateRunnable && v.queuedOn != nil {
		if !v.canRunOn(v.queuedOn) {
			h.dequeue(v)
			q := h.homePCPU(v)
			h.enqueue(q, v)
			h.tickle(q)
		} else if v.pool.parkedMask != 0 {
			// The vCPU stays put, but the pin change may have made it
			// stealable by a pCPU whose idle tick is parked.
			h.unparkPool(v.pool)
		}
	}
}

// ForceDispatch preempts whatever runs on p and dispatches v there — the
// primitive behind gang (co-)scheduling rivals. v must be Runnable and
// placeable on p; returns false otherwise (v already running on p counts
// as success).
func (h *Hypervisor) ForceDispatch(p *PCPU, v *VCPU) bool {
	if p.cur == v {
		return true
	}
	if v.state != StateRunnable || !v.canRunOn(p) {
		return false
	}
	if p.cur != nil {
		cur := p.cur
		h.count("sched.force_preempt")
		h.descheduleCurrent(p)
		h.setRunnable(cur)
		h.requeuePreempted(p, cur)
	}
	h.dequeue(v)
	h.dispatch(p, v)
	return true
}

// ---------------------------------------------------------------------------
// Pool resizing
// ---------------------------------------------------------------------------

// GrowMicro moves one pCPU from the normal pool to the micro pool,
// redistributing its queued vCPUs. At least one normal pCPU always remains.
// Returns false when the normal pool cannot shrink further.
func (h *Hypervisor) GrowMicro() bool {
	if len(h.normal.pcpus) <= 1 {
		return false
	}
	// Take the highest-numbered normal pCPU without pinned load.
	var p *PCPU
	for i := len(h.normal.pcpus) - 1; i >= 0; i-- {
		cand := h.normal.pcpus[i]
		if !h.hasPinnedLoad(cand) {
			p = cand
			break
		}
	}
	if p == nil {
		return false
	}
	// Preempt whatever is running.
	if p.cur != nil {
		cur := p.cur
		h.descheduleCurrent(p)
		h.setRunnable(cur)
		h.requeueElsewhere(cur, p)
	}
	// Drain the runqueue.
	for len(p.runq) > 0 {
		v := p.runq[0]
		h.dequeue(v)
		h.requeueElsewhere(v, p)
	}
	h.accrueMicro()
	h.removePCPU(h.normal, p)
	p.pool = h.micro
	p.lastRan = nil
	h.micro.pcpus = append(h.micro.pcpus, p)
	h.micro.reindex()
	h.count("pool.grow")
	h.emit(trace.KindPoolResize, nil, uint64(len(h.micro.pcpus)), 0)
	return true
}

// ShrinkMicro returns the most recently added micro pCPU to the normal
// pool. Micro-resident vCPUs on it migrate home first. Returns false when
// the micro pool is empty.
func (h *Hypervisor) ShrinkMicro() bool {
	n := len(h.micro.pcpus)
	if n == 0 {
		return false
	}
	p := h.micro.pcpus[n-1]
	if p.cur != nil {
		cur := p.cur
		h.descheduleCurrent(p)
		h.setRunnable(cur)
		h.sendHome(cur)
	}
	for len(p.runq) > 0 {
		v := p.runq[0]
		h.dequeue(v)
		h.sendHome(v)
	}
	h.accrueMicro()
	h.micro.pcpus = h.micro.pcpus[:n-1]
	h.micro.reindex()
	p.pool = h.normal
	p.lastRan = nil
	h.normal.pcpus = append(h.normal.pcpus, p)
	h.normal.reindex()
	h.count("pool.shrink")
	h.emit(trace.KindPoolResize, nil, uint64(len(h.micro.pcpus)), 0)
	// The pCPU can immediately pick up normal work.
	h.schedule(p)
	return true
}

// SetMicroCount grows or shrinks the micro pool to exactly n pCPUs (static
// / manual mode, paper §4.3). It returns the achieved size.
func (h *Hypervisor) SetMicroCount(n int) int {
	if n < 0 {
		n = 0
	}
	for len(h.micro.pcpus) < n {
		if !h.GrowMicro() {
			break
		}
	}
	for len(h.micro.pcpus) > n {
		if !h.ShrinkMicro() {
			break
		}
	}
	return len(h.micro.pcpus)
}

func (h *Hypervisor) hasPinnedLoad(p *PCPU) bool {
	if p.cur != nil && p.cur.pin == p.ID {
		return true
	}
	for _, v := range p.runq {
		if v.pin == p.ID {
			return true
		}
	}
	return false
}

// requeueElsewhere places a runnable vCPU on another pCPU of its pool
// (used while draining a pCPU that is leaving the pool).
func (h *Hypervisor) requeueElsewhere(v *VCPU, excluding *PCPU) {
	pool := v.pool
	var best *PCPU
	bestLoad := 0
	for _, q := range pool.pcpus {
		if q == excluding || !v.canRunOn(q) {
			continue
		}
		if best == nil || loadOf(q) < bestLoad {
			best, bestLoad = q, loadOf(q)
		}
	}
	if best == nil {
		// Pool is collapsing around a pinned vCPU; violate the pin rather
		// than lose the vCPU (counted so tests can assert it never happens
		// in paper scenarios).
		h.count("pin.violated")
		for _, q := range pool.pcpus {
			if q != excluding {
				best = q
				break
			}
		}
		if best == nil {
			panic(fmt.Sprintf("hv: nowhere to requeue %v", v))
		}
	}
	h.enqueue(best, v)
	h.tickle(best)
}

// ---------------------------------------------------------------------------
// pCPU hotplug (fault injection)
// ---------------------------------------------------------------------------

// OfflinePCPU hot-unplugs a pCPU mid-run: the current vCPU is preempted and
// every queued vCPU is redistributed, then the pCPU leaves its pool entirely.
// Micro-pool residents migrate back to their home pool (the controller will
// re-grow the micro pool elsewhere if load still warrants it). The last
// online normal-pool pCPU cannot be removed — the system always retains
// general-purpose capacity.
func (h *Hypervisor) OfflinePCPU(id int) error {
	p := h.pcpuByID(id)
	if p == nil {
		return fmt.Errorf("hv: offline of unknown pCPU %d", id)
	}
	if p.offline {
		return fmt.Errorf("hv: pCPU %d already offline", id)
	}
	if p.pool == h.normal && len(h.normal.pcpus) <= 1 {
		return fmt.Errorf("hv: cannot offline p%d: last normal-pool pCPU", id)
	}
	fromMicro := p.pool == h.micro
	if p.cur != nil {
		cur := p.cur
		h.descheduleCurrent(p)
		h.setRunnable(cur)
		if fromMicro {
			h.sendHome(cur)
		} else {
			h.requeueElsewhere(cur, p)
		}
	}
	for len(p.runq) > 0 {
		v := p.runq[0]
		h.dequeue(v)
		if fromMicro {
			h.sendHome(v)
		} else {
			h.requeueElsewhere(v, p)
		}
	}
	if fromMicro {
		h.accrueMicro()
	}
	h.removePCPU(p.pool, p)
	p.pool = nil
	p.lastRan = nil
	p.offline = true
	// The tick stays armed and parks itself at its next fire; OnlinePCPU
	// resumes it on the original stagger grid.
	h.count("hotplug.offline")
	h.emit(trace.KindHotplug, nil, 0, uint64(p.ID))
	if h.Hooks.OnCapacityChange != nil {
		h.Hooks.OnCapacityChange(h.OnlinePCPUs())
	}
	return nil
}

// OnlinePCPU brings a hot-unplugged pCPU back, always into the normal pool
// (the dynamic controller re-grows the micro pool on its own if warranted).
func (h *Hypervisor) OnlinePCPU(id int) error {
	p := h.pcpuByID(id)
	if p == nil {
		return fmt.Errorf("hv: online of unknown pCPU %d", id)
	}
	if !p.offline {
		return fmt.Errorf("hv: pCPU %d is not offline", id)
	}
	p.offline = false
	p.pool = h.normal
	p.lastRan = nil
	h.normal.pcpus = append(h.normal.pcpus, p)
	h.normal.reindex()
	h.unparkTick(p)
	h.count("hotplug.online")
	h.emit(trace.KindHotplug, nil, 1, uint64(p.ID))
	h.schedule(p)
	if h.Hooks.OnCapacityChange != nil {
		h.Hooks.OnCapacityChange(h.OnlinePCPUs())
	}
	return nil
}

func (h *Hypervisor) pcpuByID(id int) *PCPU {
	for _, p := range h.pcpus {
		if p.ID == id {
			return p
		}
	}
	return nil
}

func (h *Hypervisor) removePCPU(pool *Pool, p *PCPU) {
	for i, q := range pool.pcpus {
		if q == p {
			pool.pcpus = append(pool.pcpus[:i], pool.pcpus[i+1:]...)
			p.slot = -1
			pool.reindex()
			return
		}
	}
	panic(fmt.Sprintf("hv: p%d not in pool %s", p.ID, pool.Name))
}

package microsliced

import (
	"fmt"
	"io"

	"github.com/microslicedcore/microsliced/internal/core"
	"github.com/microslicedcore/microsliced/internal/experiment"
	"github.com/microslicedcore/microsliced/internal/fault"
	"github.com/microslicedcore/microsliced/internal/obs"
	"github.com/microslicedcore/microsliced/internal/recovery"
	"github.com/microslicedcore/microsliced/internal/simtime"
	"github.com/microslicedcore/microsliced/internal/workload"
)

// Mode selects how the micro-sliced pool is managed in a scenario.
type Mode string

// Mechanism modes.
const (
	// Off runs vanilla Xen credit scheduling (the paper's Baseline).
	Off Mode = "off"
	// Static dedicates a fixed number of micro-sliced cores.
	Static Mode = "static"
	// Dynamic sizes the pool with the paper's Algorithm 1.
	Dynamic Mode = "dynamic"
)

// VM describes one virtual machine of a scenario.
type VM struct {
	// Name identifies the VM in the results (defaults to the App name).
	Name string
	// App is a workload from Workloads().
	App string
	// VCPUs defaults to 12 (the paper's configuration).
	VCPUs int
	// Seed controls the workload's random durations (defaults to a
	// per-index constant).
	Seed uint64
	// Disk attaches a virtual block device (needed by "fileserver").
	Disk bool
	// Pins pins vCPU j of this VM to pCPU Pins[j]; negative entries leave
	// that vCPU unpinned. Pinning a serving VM onto its co-runner's pCPU
	// reproduces the paper's consolidated shape (Figure 9).
	Pins []int
	// Serve, when non-nil, attaches an open-loop request-serving workload
	// to the VM: Poisson request arrivals into its virtual NIC, served by
	// per-vCPU server threads, with end-to-end SLO accounting. The
	// read-out lands in the VM's VMStats.Requests.
	Serve *ServeConfig
}

// ServeConfig configures a VM's open-loop request-serving workload.
// Latency is measured from each request's *intended* arrival instant, so
// the reported quantiles are coordinated-omission-free; requests
// tail-dropped at the full NIC ring count against the SLO.
type ServeConfig struct {
	// RatePerSec is the mean offered load in requests per second
	// (required, Poisson arrivals).
	RatePerSec int
	// SLOMs is the end-to-end latency objective in milliseconds
	// (defaults to 5).
	SLOMs float64
	// ReqBytes sizes each request packet (defaults to 512).
	ReqBytes int
	// RingCap bounds the NIC RX ring (defaults to the NIC default).
	RingCap int
	// Seed drives the arrival process and service-time draws.
	Seed uint64
}

// Scenario is a consolidated-host simulation.
type Scenario struct {
	// PCPUs defaults to 12.
	PCPUs int
	// VMs share the host.
	VMs []VM
	// Mode selects the micro-sliced mechanism (defaults to Off).
	Mode Mode
	// StaticCores sizes the micro pool when Mode == Static.
	StaticCores int
	// Seconds of virtual time to simulate (defaults to 3).
	Seconds float64
	// Stagger starts VM i at i*7ms so co-runner phases drift (defaults
	// to true when more than one VM is present).
	Stagger *bool
	// Rival replaces the paper's mechanism with a prior-work system:
	// "cosched", "fixed-usliced", "vturbo" or "vtrs" (Mode must be Off).
	Rival string
	// Faults, when non-nil, injects the configured deterministic faults.
	// Fault runs automatically arm the invariant auditor.
	Faults *FaultPlan
	// Audit arms the scheduler invariant auditor even without faults;
	// whatever it finds lands in Results.InvariantViolations.
	Audit bool
	// Recovery, when non-nil, attaches the self-healing supervisor; its
	// detections and repairs land in Results.Repairs, and — with a
	// Faults.QuiesceAtMs point — the convergence time in Results.MTTRSeconds.
	Recovery *RecoveryPlan
	// Telemetry, when non-nil, attaches the observability layer (per-vCPU
	// state accounting, latency spans, flight recorder); the read-out lands
	// in Results.Telemetry. The zero config is valid.
	Telemetry *TelemetryConfig
	// TraceJSON, when non-nil, receives the run's scheduling timeline as
	// Chrome trace-event JSON, loadable in Perfetto (ui.perfetto.dev).
	TraceJSON io.Writer
}

// TelemetryConfig enables and tunes a scenario's observability layer.
type TelemetryConfig struct {
	// FlightDir, when non-empty, is a directory receiving one JSON flight
	// dump per triggering event (invariant violation or injected fault).
	FlightDir string
	// Label tags flight dump filenames (defaults to "run").
	Label string
}

// FaultPlan configures seeded, deterministic fault injection: the same
// plan on the same scenario always reproduces identical results. The zero
// value injects nothing.
type FaultPlan struct {
	// Seed seeds the fault plan's RNG streams.
	Seed uint64
	// OfflinePCPUs hot-unplugs this many pCPUs mid-run and brings them
	// back later; the scheduler and micro-pool controller must rebalance.
	OfflinePCPUs int
	// IPIDelayProb delays a virtual IPI with this probability by up to
	// IPIDelayMaxUs microseconds.
	IPIDelayProb  float64
	IPIDelayMaxUs float64
	// IPIDropProb drops an IPI delivery attempt with this probability
	// (dropped IPIs are retried with bounded backoff, never lost).
	IPIDropProb float64
	// TickJitterUs perturbs scheduler ticks by up to ±TickJitterUs
	// microseconds.
	TickJitterUs float64
	// LockStallProb amplifies a guest critical section with this
	// probability by LockStallFactor.
	LockStallProb   float64
	LockStallFactor float64
	// PermanentOfflinePCPUs hot-unplugs this many additional pCPUs that
	// never come back — permanent capacity loss the supervisor (Recovery)
	// reacts to by re-homing vCPUs and shrinking the micro pool.
	PermanentOfflinePCPUs int
	// Storms overlays this many correlated fault bursts: inside each storm
	// window the IPI drop/delay probabilities, tick jitter and lock-stall
	// amplification are raised to harsh floors simultaneously.
	Storms int
	// StormLenMs is each storm's length (0: a twentieth of the run).
	StormLenMs float64
	// LoseIPIs converts IPI drops that exhaust the bounded retry budget
	// into lost interrupts, parked in a ledger until the supervisor
	// re-drives them. Requires IPIDropProb > 0 or Storms > 0.
	LoseIPIs bool
	// QuiesceAtMs, when positive, stops all fault firing at this point of
	// the run, opening the convergence window MTTR is measured over.
	QuiesceAtMs float64
}

func (f *FaultPlan) toConfig() fault.Config {
	return fault.Config{
		Seed:                  f.Seed,
		OfflinePCPUs:          f.OfflinePCPUs,
		PermanentOfflinePCPUs: f.PermanentOfflinePCPUs,
		IPIDelayProb:          f.IPIDelayProb,
		IPIDelayMax:           simtime.Duration(f.IPIDelayMaxUs * float64(simtime.Microsecond)),
		IPIDropProb:           f.IPIDropProb,
		LoseIPIs:              f.LoseIPIs,
		TickJitter:            simtime.Duration(f.TickJitterUs * float64(simtime.Microsecond)),
		LockStallProb:         f.LockStallProb,
		LockStallFactor:       f.LockStallFactor,
		Storms:                f.Storms,
		StormLen:              simtime.Duration(f.StormLenMs * float64(simtime.Millisecond)),
		QuiesceAt:             simtime.Duration(f.QuiesceAtMs * float64(simtime.Millisecond)),
	}
}

// RecoveryPlan arms the self-healing supervisor: a periodic deterministic
// detector for starved vCPUs, lost IPIs and capacity loss, with escalating
// bounded repairs (credit re-grant, unpin/re-home, forced dispatch, IPI
// re-drive, micro-pool resize). The zero value uses the defaults.
type RecoveryPlan struct {
	// IntervalMs is the supervision walk period (0: the scheduler tick).
	IntervalMs float64
	// StarveBoundMs is how long a vCPU may sit runnable-but-undispatched
	// before the supervisor declares starvation (0: 50ms).
	StarveBoundMs float64
}

// ScenarioError reports an invalid Scenario field.
type ScenarioError struct {
	Field  string
	Reason string
}

func (e *ScenarioError) Error() string {
	return fmt.Sprintf("microsliced: invalid scenario: %s: %s", e.Field, e.Reason)
}

// rivalNames are the accepted Scenario.Rival values.
var rivalNames = map[string]bool{
	"fixed-usliced": true, "vturbo": true, "vtrs": true, "cosched": true,
}

// Validate checks the scenario without running it, returning a
// *ScenarioError describing the first problem found (nil if valid).
func (s Scenario) Validate() error {
	if len(s.VMs) == 0 {
		return &ScenarioError{Field: "VMs", Reason: "scenario has no VMs"}
	}
	if s.PCPUs < 0 {
		return &ScenarioError{Field: "PCPUs", Reason: fmt.Sprintf("%d is negative", s.PCPUs)}
	}
	if s.Seconds < 0 {
		return &ScenarioError{Field: "Seconds", Reason: fmt.Sprintf("%v is negative", s.Seconds)}
	}
	pcpus := s.PCPUs
	if pcpus == 0 {
		pcpus = experiment.DefaultPCPUs
	}
	for i, vm := range s.VMs {
		if vm.VCPUs < 0 {
			return &ScenarioError{
				Field:  fmt.Sprintf("VMs[%d].VCPUs", i),
				Reason: fmt.Sprintf("%d is negative (0 selects the default)", vm.VCPUs),
			}
		}
		if !workload.Known(vm.App) {
			return &ScenarioError{
				Field:  fmt.Sprintf("VMs[%d].App", i),
				Reason: fmt.Sprintf("unknown application %q (have %v)", vm.App, workload.Catalog()),
			}
		}
		for j, pin := range vm.Pins {
			if pin >= pcpus {
				return &ScenarioError{
					Field:  fmt.Sprintf("VMs[%d].Pins[%d]", i, j),
					Reason: fmt.Sprintf("pCPU %d does not exist (host has %d)", pin, pcpus),
				}
			}
		}
		if sv := vm.Serve; sv != nil {
			if sv.RatePerSec <= 0 {
				return &ScenarioError{
					Field:  fmt.Sprintf("VMs[%d].Serve.RatePerSec", i),
					Reason: fmt.Sprintf("%d must be positive", sv.RatePerSec),
				}
			}
			if sv.SLOMs < 0 {
				return &ScenarioError{
					Field:  fmt.Sprintf("VMs[%d].Serve.SLOMs", i),
					Reason: fmt.Sprintf("%v is negative", sv.SLOMs),
				}
			}
			if sv.ReqBytes < 0 {
				return &ScenarioError{
					Field:  fmt.Sprintf("VMs[%d].Serve.ReqBytes", i),
					Reason: fmt.Sprintf("%d is negative", sv.ReqBytes),
				}
			}
			if sv.RingCap < 0 {
				return &ScenarioError{
					Field:  fmt.Sprintf("VMs[%d].Serve.RingCap", i),
					Reason: fmt.Sprintf("%d is negative", sv.RingCap),
				}
			}
		}
	}
	switch s.Mode {
	case Off, Static, Dynamic, "":
	default:
		return &ScenarioError{Field: "Mode", Reason: fmt.Sprintf("unknown mode %q", s.Mode)}
	}
	if s.StaticCores < 0 {
		return &ScenarioError{Field: "StaticCores", Reason: fmt.Sprintf("%d is negative", s.StaticCores)}
	}
	if s.StaticCores > pcpus {
		return &ScenarioError{
			Field:  "StaticCores",
			Reason: fmt.Sprintf("%d exceeds the host's %d pCPUs", s.StaticCores, pcpus),
		}
	}
	if s.Rival != "" {
		if !rivalNames[s.Rival] {
			return &ScenarioError{Field: "Rival", Reason: fmt.Sprintf("unknown rival %q", s.Rival)}
		}
		if s.Mode != Off && s.Mode != "" {
			return &ScenarioError{
				Field:  "Rival",
				Reason: fmt.Sprintf("rival %q requires Mode == Off, got %q", s.Rival, s.Mode),
			}
		}
	}
	if s.Faults != nil {
		if err := s.Faults.toConfig().Validate(); err != nil {
			return &ScenarioError{Field: "Faults", Reason: err.Error()}
		}
		if off := s.Faults.OfflinePCPUs + s.Faults.PermanentOfflinePCPUs; off > pcpus-1 {
			return &ScenarioError{
				Field:  "Faults.OfflinePCPUs",
				Reason: fmt.Sprintf("%d offline pCPUs leave no core online (host has %d)", off, pcpus),
			}
		}
	}
	if r := s.Recovery; r != nil {
		if r.IntervalMs < 0 {
			return &ScenarioError{Field: "Recovery.IntervalMs", Reason: fmt.Sprintf("%v is negative", r.IntervalMs)}
		}
		if r.StarveBoundMs < 0 {
			return &ScenarioError{Field: "Recovery.StarveBoundMs", Reason: fmt.Sprintf("%v is negative", r.StarveBoundMs)}
		}
	}
	return nil
}

// VMStats is one VM's outcome.
type VMStats struct {
	Name string
	App  string
	// WorkUnits counts completed application iterations (messages,
	// flush cycles, compute bursts, ...). Ratios of WorkUnits between
	// runs of equal Seconds give normalized execution time / throughput.
	WorkUnits uint64
	// Yields decomposed by source.
	YieldsIPI, YieldsSpinlock, YieldsHalt, YieldsOther uint64
	// CPUSeconds of virtual execution time across the VM's vCPUs.
	CPUSeconds float64
	// TLBSyncAvgUs / TLBSyncMaxUs summarize TLB-shootdown latency.
	TLBSyncAvgUs, TLBSyncMaxUs float64
	// LockWaitAvgUs is the mean contended spinlock wait per Lockstat
	// class.
	LockWaitAvgUs map[string]float64
	// Requests is the serving read-out (nil unless the VM had a Serve
	// config).
	Requests *RequestStats
}

// RequestStats is the end-to-end outcome of a VM's request-serving
// workload. The ledger is exact and conserved: Offered == Dropped +
// Completed + InFlight.
type RequestStats struct {
	// Offered counts arrivals fired at their intended instants; Dropped
	// those tail-dropped at the full NIC ring (SLO violations); Completed
	// those whose reply was transmitted; Late the completed ones that
	// missed the SLO; InFlight those still in the pipeline at run end.
	Offered, Dropped, Completed, Late, InFlight uint64
	// SLOMs is the objective the run was judged against.
	SLOMs float64
	// Latency quantiles (ms) of completed requests, measured from the
	// intended arrival (coordinated-omission-free).
	P50Ms, P99Ms, P999Ms, MaxMs float64
	// OfferedRPS and GoodputRPS are offered load and completed-within-SLO
	// throughput over the run.
	OfferedRPS, GoodputRPS float64
}

// SLOAttainment is the fraction of offered requests served within the
// SLO (1 when nothing was offered).
func (r *RequestStats) SLOAttainment() float64 {
	if r.Offered == 0 {
		return 1
	}
	return 1 - float64(r.Dropped+r.Late)/float64(r.Offered)
}

// TotalYields sums the yield sources.
func (s *VMStats) TotalYields() uint64 {
	return s.YieldsIPI + s.YieldsSpinlock + s.YieldsHalt + s.YieldsOther
}

// Results is the outcome of Simulate.
type Results struct {
	VMs []VMStats
	// MicroCoresAvg is the time-weighted mean size of the micro pool.
	MicroCoresAvg float64
	// HypervisorCounters exposes raw scheduler counters (dispatches,
	// migrations, boosts, ...).
	HypervisorCounters map[string]uint64
	// DetectorCounters exposes the micro-sliced controller's counters.
	DetectorCounters map[string]uint64
	// CriticalSymbolHits histograms the critical kernel symbols observed
	// at preempted vCPUs' instruction pointers.
	CriticalSymbolHits map[string]uint64
	// InvariantViolations lists what the scheduler auditor found (empty
	// unless Scenario.Audit or fault injection was enabled; always empty
	// on a healthy scheduler).
	InvariantViolations []string
	// FaultErrors lists injected faults the hypervisor refused to apply.
	FaultErrors []string
	// Repairs lists the supervisor's retained detections and repairs in
	// order (empty unless Scenario.Recovery was set), and RepairCount the
	// exact total including any that aged out of the retained ring.
	Repairs     []string
	RepairCount uint64
	// MTTRSeconds is the quiesce→last-repair convergence time (0 without a
	// supervisor, a fault quiesce point, or any post-quiesce repairs).
	MTTRSeconds float64
	// LostIPIs counts interrupts still in the lost-IPI ledger at run end; a
	// converged recovery run drains it to zero.
	LostIPIs int
	// Telemetry is the observability read-out (nil unless
	// Scenario.Telemetry was set).
	Telemetry *Telemetry
}

// SpanStats summarizes one latency span kind's distribution and names its
// dominant stage (the struct stays comparable: stage detail lives in
// Telemetry.Stages).
type SpanStats struct {
	Count  uint64  `json:"count"`
	P50us  float64 `json:"p50_us"`
	P99us  float64 `json:"p99_us"`
	P999us float64 `json:"p999_us"`
	MaxUs  float64 `json:"max_us"`
	// Blame names the stage that consumed the largest share of the kind's
	// total closed-span time, and BlamePct that share in percent.
	Blame    string  `json:"blame,omitempty"`
	BlamePct float64 `json:"blame_pct,omitempty"`
}

// StageStats summarizes one stage of a span kind: its share of the kind's
// total time (a kind's shares sum to exactly 100.0) and the distribution of
// its per-span accumulation.
type StageStats struct {
	Count    uint64  `json:"count"`
	SharePct float64 `json:"share_pct"`
	TotalMs  float64 `json:"total_ms"`
	P50us    float64 `json:"p50_us"`
	P99us    float64 `json:"p99_us"`
	P999us   float64 `json:"p999_us"`
	MaxUs    float64 `json:"max_us"`
}

// Telemetry is a scenario's observability read-out.
type Telemetry struct {
	// Spans maps span kind — "wake_dispatch", "ipi_deliver",
	// "lock_acquire", "disk_io", "net_rx" — to its latency distribution.
	// Kinds never observed are absent.
	Spans map[string]SpanStats `json:"spans"`
	// Stages decomposes each recorded span kind causally: Stages[kind] maps
	// stage name (e.g. "runq_wait", "preempt_wait") to its latency budget.
	// Σ stage durations == span duration exactly for every closed span.
	Stages map[string]map[string]StageStats `json:"stages,omitempty"`
	// OpenSpans attributes spans still open at run end to their kinds
	// (kinds with none open are absent) — a persistent entry here means a
	// span leak on that path.
	OpenSpans map[string]int `json:"open_spans,omitempty"`
	// BusiestPCPU is the pCPU with the most execution time, and
	// BusiestPCPUSeconds that time.
	BusiestPCPU        int     `json:"busiest_pcpu"`
	BusiestPCPUSeconds float64 `json:"busiest_pcpu_seconds"`
	// Dispatches and Steals count scheduler dispatches host-wide and how
	// many of them ran a vCPU stolen from another pCPU's runqueue.
	Dispatches uint64 `json:"dispatches"`
	Steals     uint64 `json:"steals"`
	// FlightDumps counts flight-recorder triggers during the run.
	FlightDumps int `json:"flight_dumps"`
	// Decisions is the adaptive controller's retained decision audit trail
	// (oldest first; a bounded ring) and DecisionCount its exact total
	// including entries that aged out of the ring. Empty unless the
	// scenario ran the dynamic controller.
	Decisions     []ControllerDecision `json:"decisions,omitempty"`
	DecisionCount uint64               `json:"decision_count,omitempty"`
}

// ControllerDecision is one Algorithm 1 sizing decision from the adaptive
// controller's audit trail.
type ControllerDecision struct {
	TimeMs float64 `json:"t_ms"`
	Epoch  uint64  `json:"epoch"`
	// Reason is the decision path taken: "idle", "single", "ipi-search",
	// "best-pick", "stability-skip" or "capacity-clamp".
	Reason string `json:"reason"`
	// MicroCores is the achieved pool size; Ceiling the live capacity
	// bound the decision ran under (smaller than the configured maximum
	// after pCPU hot-unplug).
	MicroCores int `json:"micro_cores"`
	Ceiling    int `json:"ceiling"`
	// IPIs/PLEs/IRQs are the urgent-event counts of the classified sample.
	IPIs uint64 `json:"ipis"`
	PLEs uint64 `json:"ples"`
	IRQs uint64 `json:"irqs"`
}

// Span returns the stats of one span kind (zero value if never observed).
func (t *Telemetry) Span(kind string) SpanStats { return t.Spans[kind] }

// Stage returns the stats of one (kind, stage) cell (zero value if never
// observed).
func (t *Telemetry) Stage(kind, stage string) StageStats { return t.Stages[kind][stage] }

// VM returns the stats of the named VM (nil if absent).
func (r *Results) VM(name string) *VMStats {
	for i := range r.VMs {
		if r.VMs[i].Name == name {
			return &r.VMs[i]
		}
	}
	return nil
}

// Workloads lists the available applications (the paper's suite).
func Workloads() []string { return workload.Catalog() }

// Simulate runs a scenario to completion and returns its measurements.
// Runs are deterministic: the same scenario always produces the same
// results.
func Simulate(s Scenario) (*Results, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	setup := experiment.Setup{PCPUs: s.PCPUs, Audit: s.Audit, TraceExport: s.TraceJSON}
	if s.Telemetry != nil {
		setup.Obs = &obs.Config{FlightDir: s.Telemetry.FlightDir, Label: s.Telemetry.Label}
	}
	if s.Faults != nil {
		fc := s.Faults.toConfig()
		setup.Faults = &fc
	}
	if s.Recovery != nil {
		setup.Recovery = &recovery.Config{
			Interval:    simtime.Duration(s.Recovery.IntervalMs * float64(simtime.Millisecond)),
			StarveBound: simtime.Duration(s.Recovery.StarveBoundMs * float64(simtime.Millisecond)),
		}
	}
	if s.Seconds > 0 {
		setup.Duration = simtime.Duration(s.Seconds * float64(simtime.Second))
	}
	if s.Stagger != nil {
		setup.StaggerStart = *s.Stagger
	} else {
		setup.StaggerStart = len(s.VMs) > 1
	}
	for i, vm := range s.VMs {
		name := vm.Name
		if name == "" {
			name = vm.App
		}
		seed := vm.Seed
		if seed == 0 {
			seed = uint64(11 * (i + 1))
		}
		spec := experiment.VMSpec{
			Name: name, App: vm.App, VCPUs: vm.VCPUs, Seed: seed, Disk: vm.Disk,
			Pins: append([]int(nil), vm.Pins...),
		}
		if sv := vm.Serve; sv != nil {
			spec.Serve = &experiment.ServeSpec{
				RatePerSec: sv.RatePerSec,
				ReqBytes:   sv.ReqBytes,
				SLO:        simtime.Duration(sv.SLOMs * float64(simtime.Millisecond)),
				RingCap:    sv.RingCap,
				Seed:       sv.Seed,
			}
		}
		setup.VMs = append(setup.VMs, spec)
	}
	switch s.Mode {
	case Off, "":
		cc := core.DefaultConfig()
		cc.Mode = core.ModeOff
		setup.Core = cc
	case Static:
		setup.Core = core.StaticConfig(s.StaticCores)
	case Dynamic:
		setup.Core = core.DefaultConfig()
	default:
		return nil, fmt.Errorf("microsliced: unknown mode %q", s.Mode)
	}
	if s.Rival != "" {
		if s.Mode != Off && s.Mode != "" {
			return nil, fmt.Errorf("microsliced: rival %q requires Mode == Off", s.Rival)
		}
		setup.Rival = experiment.Rival(s.Rival)
	}
	res, err := experiment.Run(setup)
	if err != nil {
		return nil, err
	}
	out := &Results{
		MicroCoresAvg:      res.MicroAvg,
		HypervisorCounters: res.HV,
		DetectorCounters:   res.Core,
		CriticalSymbolHits: res.SymbolHits,
		FaultErrors:        res.FaultErrs,
		RepairCount:        res.RepairCount,
		MTTRSeconds:        res.MTTR.Seconds(),
		LostIPIs:           res.LostIPIs,
	}
	for i := range res.Violations {
		out.InvariantViolations = append(out.InvariantViolations, res.Violations[i].Error())
	}
	for _, e := range res.Repairs {
		out.Repairs = append(out.Repairs, e.String())
	}
	if res.Telemetry != nil {
		out.Telemetry = publicTelemetry(res.Telemetry)
	}
	for _, vm := range res.VMs {
		st := VMStats{
			Name:           vm.Name,
			App:            vm.App,
			WorkUnits:      vm.Units,
			YieldsIPI:      vm.Yields.IPI,
			YieldsSpinlock: vm.Yields.PLE,
			YieldsHalt:     vm.Yields.Halt,
			YieldsOther:    vm.Yields.Other,
			CPUSeconds:     vm.RanTotal.Seconds(),
			LockWaitAvgUs:  map[string]float64{},
		}
		if vm.TLB.Count() > 0 {
			st.TLBSyncAvgUs = vm.TLB.Mean() / 1000
			st.TLBSyncMaxUs = float64(vm.TLB.Max()) / 1000
		}
		for class, h := range vm.LockStat {
			if h.Count() > 0 {
				st.LockWaitAvgUs[class] = h.Mean() / 1000
			}
		}
		if rq := vm.Requests; rq != nil {
			st.Requests = &RequestStats{
				Offered:    rq.Offered,
				Dropped:    rq.Dropped,
				Completed:  rq.Completed,
				Late:       rq.Late,
				InFlight:   rq.InFlight,
				SLOMs:      float64(rq.SLO) / 1e6,
				P50Ms:      float64(rq.P50) / 1e6,
				P99Ms:      float64(rq.P99) / 1e6,
				P999Ms:     float64(rq.P999) / 1e6,
				MaxMs:      float64(rq.Max) / 1e6,
				OfferedRPS: rq.OfferedRPS,
				GoodputRPS: rq.GoodputRPS,
			}
		}
		out.VMs = append(out.VMs, st)
	}
	return out, nil
}

// publicTelemetry converts the internal observability summary to the
// exported shape (nanoseconds become microseconds, residency collapses to
// headline figures).
func publicTelemetry(sum *obs.Summary) *Telemetry {
	t := &Telemetry{
		Spans:       make(map[string]SpanStats, len(sum.Spans)),
		FlightDumps: len(sum.Flights),
	}
	for _, sp := range sum.Spans {
		if sp.Open > 0 {
			if t.OpenSpans == nil {
				t.OpenSpans = make(map[string]int)
			}
			t.OpenSpans[sp.Kind] = sp.Open
		}
		if sp.Count == 0 {
			continue
		}
		t.Spans[sp.Kind] = SpanStats{
			Count:    sp.Count,
			P50us:    float64(sp.P50) / 1000,
			P99us:    float64(sp.P99) / 1000,
			P999us:   float64(sp.P999) / 1000,
			MaxUs:    float64(sp.Max) / 1000,
			Blame:    sp.Blame,
			BlamePct: sp.BlamePct,
		}
		if len(sp.Stages) > 0 {
			if t.Stages == nil {
				t.Stages = make(map[string]map[string]StageStats)
			}
			cells := make(map[string]StageStats, len(sp.Stages))
			for _, st := range sp.Stages {
				cells[st.Name] = StageStats{
					Count:    st.Count,
					SharePct: st.Share,
					TotalMs:  float64(st.Total) / 1e6,
					P50us:    float64(st.P50) / 1000,
					P99us:    float64(st.P99) / 1000,
					P999us:   float64(st.P999) / 1000,
					MaxUs:    float64(st.Max) / 1000,
				}
			}
			t.Stages[sp.Kind] = cells
		}
	}
	id, busy := sum.BusiestPCPU()
	t.BusiestPCPU = id
	t.BusiestPCPUSeconds = busy.Seconds()
	for _, p := range sum.PCPUs {
		t.Dispatches += p.Dispatches
		t.Steals += p.Steals
	}
	for _, d := range sum.Decisions {
		t.Decisions = append(t.Decisions, ControllerDecision{
			TimeMs:     float64(d.Time) / 1e6,
			Epoch:      d.Epoch,
			Reason:     d.Reason,
			MicroCores: d.Chosen,
			Ceiling:    d.Ceiling,
			IPIs:       d.IPIs,
			PLEs:       d.PLEs,
			IRQs:       d.IRQs,
		})
	}
	t.DecisionCount = sum.DecisionCount
	return t
}

// IPerfResult is the outcome of an iPerf scenario.
type IPerfResult struct {
	Mbps     float64
	JitterMs float64
	Loss     float64
}

// SimulateIPerf runs the paper's I/O scenario (§3.3, Figure 9): an iPerf
// server VM — mixed with a CPU hog on the same vCPU when mixed is true,
// and co-located with a lookbusy VM on one pCPU — measuring the
// application-level stream. proto is "tcp" or "udp".
func SimulateIPerf(proto string, mixed bool, mode Mode, staticCores int, seconds float64) (*IPerfResult, error) {
	var cc core.Config
	switch mode {
	case Off, "":
		cc = core.DefaultConfig()
		cc.Mode = core.ModeOff
	case Static:
		cc = core.StaticConfig(staticCores)
	case Dynamic:
		cc = core.DefaultConfig()
	default:
		return nil, fmt.Errorf("microsliced: unknown mode %q", mode)
	}
	dur := simtime.Duration(seconds * float64(simtime.Second))
	if dur <= 0 {
		dur = experiment.DefaultDuration
	}
	m, err := experiment.RunIO(proto, mixed, cc, dur)
	if err != nil {
		return nil, err
	}
	return &IPerfResult{Mbps: m.Mbps, JitterMs: m.JitterMs, Loss: m.Loss}, nil
}

// Experiments lists the reproducible artefacts of the paper's evaluation.
func Experiments() []string {
	return []string{
		"table1", "table2", "table3", "table4a", "table4b", "table4c",
		"fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
	}
}

// Reproduce regenerates one of the paper's tables or figures (see
// Experiments) with the given simulated duration per scenario, rendering
// the result to w.
func Reproduce(name string, seconds float64, w io.Writer) error {
	dur := simtime.Duration(seconds * float64(simtime.Second))
	if dur <= 0 {
		dur = experiment.DefaultDuration
	}
	switch name {
	case "table1":
		r, err := experiment.Table1(dur)
		return render(r, err, w)
	case "table2":
		r, err := experiment.Table2(dur)
		return render(r, err, w)
	case "table3":
		r, err := experiment.Table3(dur)
		return render(r, err, w)
	case "table4a":
		r, err := experiment.Table4a(dur)
		return render(r, err, w)
	case "table4b":
		r, err := experiment.Table4b(dur)
		return render(r, err, w)
	case "table4c":
		r, err := experiment.Table4c(dur)
		return render(r, err, w)
	case "fig4":
		r, err := experiment.Figure4(dur)
		return render(r, err, w)
	case "fig5":
		r, err := experiment.Figure5(dur)
		return render(r, err, w)
	case "fig6":
		r, err := experiment.Figure6(dur, nil)
		return render(r, err, w)
	case "fig7":
		r, err := experiment.Figure7(dur, nil)
		return render(r, err, w)
	case "fig8":
		r, err := experiment.Figure8(dur)
		return render(r, err, w)
	case "fig9":
		r, err := experiment.Figure9(dur)
		return render(r, err, w)
	default:
		return fmt.Errorf("microsliced: unknown experiment %q (have %v)", name, Experiments())
	}
}

type renderer interface{ Render(io.Writer) }

func render(r renderer, err error, w io.Writer) error {
	if err != nil {
		return err
	}
	r.Render(w)
	return nil
}

package hv

import (
	"testing"

	"github.com/microslicedcore/microsliced/internal/obs"
	"github.com/microslicedcore/microsliced/internal/simtime"
)

// haltGuest halts the moment it is scheduled: each Wake drives one full
// wake → enqueue → dispatch → block cycle through the scheduler, the
// hottest instrumented path.
type haltGuest struct {
	h *Hypervisor
	v *VCPU
}

func (g *haltGuest) OnScheduled(now simtime.Time) { g.h.Block(g.v) }
func (g *haltGuest) OnDescheduled(now simtime.Time) {
}
func (g *haltGuest) OnInterrupt(now simtime.Time, vec Vector, data uint64) {}
func (g *haltGuest) RIP() uint64                                           { return 0x400000 }

// wakeBlockWorld builds a one-pCPU host with a halt guest and runs a warm-up
// cycle so lazily grown structures (runqueues, span table, event pools) are
// at steady state.
func wakeBlockWorld(o *obs.Observer) (*simtime.Clock, *Hypervisor, *VCPU) {
	clock, h := setup(1)
	if o != nil {
		h.SetObserver(o)
	}
	d := h.NewDomain("vm", nil)
	g := &haltGuest{h: h}
	g.v = h.AddVCPU(d, g)
	h.Start()
	for i := 0; i < 64; i++ {
		h.Wake(g.v, true)
		clock.RunUntil(clock.Now() + 100*simtime.Microsecond)
	}
	return clock, h, g.v
}

func benchmarkWakeBlock(b *testing.B, o *obs.Observer) {
	clock, h, v := wakeBlockWorld(o)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Wake(v, true)
		clock.RunUntil(clock.Now() + 100*simtime.Microsecond)
	}
}

// BenchmarkWakeBlockCycle is the event-engine hot path with observation
// disabled (h.Obs == nil): the per-hook cost is one nil check.
func BenchmarkWakeBlockCycle(b *testing.B) { benchmarkWakeBlock(b, nil) }

// BenchmarkWakeBlockCycleObs is the same path with the full observability
// layer attached.
func BenchmarkWakeBlockCycleObs(b *testing.B) { benchmarkWakeBlock(b, obs.New(obs.Config{})) }

// TestObsWakeBlockAllocFree proves observation adds zero allocations to the
// steady-state wake/block cycle — with the observer disabled AND enabled.
// The enabled run now includes causal stage attribution: every wake drives a
// wake_dispatch span whose wait is credited to a stage inside Transition, so
// a pass here is the zero-alloc proof for stage recording on the
// wake→dispatch path.
// The baseline cycle's own allocations (event closures in the engine) are
// measured with a nil observer and used as the reference: instrumentation
// must never add GC pressure on top, because GC pauses would perturb
// wall-clock measurements of large scenario grids.
func TestObsWakeBlockAllocFree(t *testing.T) {
	measure := func(o *obs.Observer) float64 {
		clock, h, v := wakeBlockWorld(o)
		return testing.AllocsPerRun(500, func() {
			h.Wake(v, true)
			clock.RunUntil(clock.Now() + 100*simtime.Microsecond)
		})
	}
	disabled := measure(nil)
	enabled := measure(obs.New(obs.Config{}))
	if enabled != disabled {
		t.Errorf("wake/block cycle: %v allocs/op with observer vs %v without — observation allocates on the hot path", enabled, disabled)
	}
}

// TestObserverDoesNotPerturbScheduling asserts the observability layer is
// strictly passive: an instrumented run must schedule the exact same event
// sequence as an uninstrumented one. Scheduler counters are a sensitive
// fingerprint of that sequence.
func TestObserverDoesNotPerturbScheduling(t *testing.T) {
	run := func(o *obs.Observer) map[string]uint64 {
		clock, h := setup(2)
		if o != nil {
			h.SetObserver(o)
		}
		d := h.NewDomain("vm", nil)
		a := newComputeGuest(h, d, 40*simtime.Millisecond)
		bG := newComputeGuest(h, d, 40*simtime.Millisecond)
		c := newSpinGuest(h, d, 25*simtime.Microsecond)
		h.Start()
		h.Wake(a.v, false)
		h.Wake(bG.v, false)
		h.Wake(c.v, false)
		clock.RunUntil(200 * simtime.Millisecond)
		return h.Counters.Snapshot()
	}
	plain := run(nil)
	observed := run(obs.New(obs.Config{}))
	for k, v := range plain {
		if observed[k] != v {
			t.Errorf("counter %s: %d with observer vs %d without — observation perturbed scheduling", k, observed[k], v)
		}
	}
	if len(plain) != len(observed) {
		t.Errorf("counter sets differ: %d vs %d", len(plain), len(observed))
	}
}

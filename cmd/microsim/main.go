// Command microsim runs one consolidation scenario from flags and prints
// the per-VM outcome: work units, yield decomposition, CPU time and the
// critical-service latency statistics.
//
// Examples:
//
//	microsim -vms exim,swaptions -mode off -seconds 3
//	microsim -vms dedup,swaptions -mode static -cores 3
//	microsim -vms gmake,swaptions -mode dynamic
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	microsliced "github.com/microslicedcore/microsliced"
)

func main() {
	var (
		vms     = flag.String("vms", "exim,swaptions", "comma-separated workloads, one VM each (see -list)")
		mode    = flag.String("mode", "off", "micro-sliced mechanism: off, static, dynamic")
		rival   = flag.String("rival", "", "prior-work system instead (cosched, fixed-usliced, vturbo, vtrs); needs -mode off")
		cores   = flag.Int("cores", 1, "micro pool size for -mode static")
		seconds = flag.Float64("seconds", 3, "simulated seconds")
		pcpus   = flag.Int("pcpus", 12, "physical CPUs")
		vcpus   = flag.Int("vcpus", 12, "vCPUs per VM")
		list    = flag.Bool("list", false, "list available workloads and exit")
		symbols = flag.Bool("symbols", false, "also print detected critical symbols")
		srvRate = flag.Int("serve-rate", 0, "attach an open-loop request-serving workload to the first VM at this offered load (req/s)")
		srvSLO  = flag.Float64("serve-slo-ms", 5, "end-to-end latency SLO in milliseconds for -serve-rate")
		pin0    = flag.Bool("pin0", false, "pin every vCPU to pCPU 0 (the paper's consolidated shape: VMs contend for one core while spare cores can host the micro pool)")
	)
	flag.Parse()
	if *list {
		for _, w := range microsliced.Workloads() {
			fmt.Println(w)
		}
		return
	}
	sc := microsliced.Scenario{
		PCPUs:       *pcpus,
		Mode:        microsliced.Mode(*mode),
		StaticCores: *cores,
		Seconds:     *seconds,
		Rival:       *rival,
	}
	for i, app := range strings.Split(*vms, ",") {
		app = strings.TrimSpace(app)
		name := app
		// Disambiguate duplicates (e.g. lookbusy,lookbusy).
		for _, prev := range sc.VMs {
			if prev.Name == name {
				name = fmt.Sprintf("%s-%d", app, i)
			}
		}
		vm := microsliced.VM{Name: name, App: app, VCPUs: *vcpus}
		if *pin0 {
			vm.Pins = make([]int, *vcpus)
		}
		if i == 0 && *srvRate > 0 {
			vm.Serve = &microsliced.ServeConfig{RatePerSec: *srvRate, SLOMs: *srvSLO}
		}
		sc.VMs = append(sc.VMs, vm)
	}
	res, err := microsliced.Simulate(sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	label := *mode
	if *rival != "" {
		label = "rival:" + *rival
	}
	fmt.Printf("simulated %.2fs on %d pCPUs, mode=%s (avg micro cores %.2f)\n\n",
		*seconds, *pcpus, label, res.MicroCoresAvg)
	for _, vm := range res.VMs {
		fmt.Printf("VM %-12s app=%-12s work=%-10d cpu=%.3fs\n", vm.Name, vm.App, vm.WorkUnits, vm.CPUSeconds)
		fmt.Printf("   yields: ipi=%d spinlock=%d halt=%d other=%d\n",
			vm.YieldsIPI, vm.YieldsSpinlock, vm.YieldsHalt, vm.YieldsOther)
		if vm.TLBSyncAvgUs > 0 {
			fmt.Printf("   tlb sync: avg=%.1fus max=%.1fus\n", vm.TLBSyncAvgUs, vm.TLBSyncMaxUs)
		}
		classes := make([]string, 0, len(vm.LockWaitAvgUs))
		for c := range vm.LockWaitAvgUs {
			classes = append(classes, c)
		}
		sort.Strings(classes)
		for _, c := range classes {
			fmt.Printf("   lock wait %-16s avg=%.2fus\n", c, vm.LockWaitAvgUs[c])
		}
		if rq := vm.Requests; rq != nil {
			fmt.Printf("   requests: offered=%d completed=%d dropped=%d late=%d (%.2f%% within %.1fms SLO)\n",
				rq.Offered, rq.Completed, rq.Dropped, rq.Late, 100*rq.SLOAttainment(), rq.SLOMs)
			fmt.Printf("   latency: p50=%.3fms p99=%.3fms p999=%.3fms max=%.3fms goodput<SLO=%.0f req/s\n",
				rq.P50Ms, rq.P99Ms, rq.P999Ms, rq.MaxMs, rq.GoodputRPS)
		}
		fmt.Println()
	}
	if *symbols && len(res.CriticalSymbolHits) > 0 {
		fmt.Println("critical symbols observed at preempted vCPUs:")
		names := make([]string, 0, len(res.CriticalSymbolHits))
		for n := range res.CriticalSymbolHits {
			names = append(names, n)
		}
		sort.Slice(names, func(i, j int) bool {
			return res.CriticalSymbolHits[names[i]] > res.CriticalSymbolHits[names[j]]
		})
		for _, n := range names {
			fmt.Printf("   %-40s %d\n", n, res.CriticalSymbolHits[n])
		}
	}
}

package vdisk

import (
	"testing"

	"github.com/microslicedcore/microsliced/internal/core"
	"github.com/microslicedcore/microsliced/internal/guest"
	"github.com/microslicedcore/microsliced/internal/hv"
	"github.com/microslicedcore/microsliced/internal/ksym"
	"github.com/microslicedcore/microsliced/internal/simtime"
	"github.com/microslicedcore/microsliced/internal/workload"
)

func TestServiceCompletesAndCounts(t *testing.T) {
	clock := simtime.NewClock()
	d := New(clock, 1)
	done := 0
	d.Submit(4096, false, func() { done++ })
	d.Submit(4096, true, func() { done++ })
	clock.Run()
	if done != 2 || d.Completed != 2 || d.Reads != 1 || d.Writes != 1 {
		t.Fatalf("done=%d completed=%d r=%d w=%d", done, d.Completed, d.Reads, d.Writes)
	}
	if d.Latency.Count() != 2 || d.Latency.Min() <= 0 {
		t.Fatalf("latency %s", d.Latency)
	}
	if d.Inflight() != 0 || d.QueueLen() != 0 {
		t.Fatal("device not drained")
	}
}

func TestQueueDepthBound(t *testing.T) {
	clock := simtime.NewClock()
	d := New(clock, 2)
	d.Depth = 2
	for i := 0; i < 10; i++ {
		d.Submit(1<<20, false, nil)
	}
	if d.Inflight() != 2 || d.QueueLen() != 8 {
		t.Fatalf("inflight=%d queued=%d", d.Inflight(), d.QueueLen())
	}
	clock.Run()
	if d.Completed != 10 {
		t.Fatalf("completed=%d", d.Completed)
	}
}

func TestQueueingInflatesLatency(t *testing.T) {
	// Saturating a depth-1 device makes later requests queue: the latency
	// histogram's max must far exceed its min.
	clock := simtime.NewClock()
	d := New(clock, 3)
	d.Depth = 1
	for i := 0; i < 20; i++ {
		d.Submit(1<<20, false, nil)
	}
	clock.Run()
	if d.Latency.Max() < 5*d.Latency.Min() {
		t.Fatalf("no queueing visible: min=%d max=%d", d.Latency.Min(), d.Latency.Max())
	}
}

func TestTransferTimeScalesWithSize(t *testing.T) {
	clock := simtime.NewClock()
	d := New(clock, 4)
	d.SeekMean = 1 // effectively transfer-only
	var small, large simtime.Time
	d.Submit(1<<20, false, func() { small = clock.Now() })
	clock.Run()
	start := clock.Now()
	d.Submit(8<<20, false, func() { large = clock.Now() - start })
	clock.Run()
	if large < 6*small {
		t.Fatalf("8MiB (%v) not ~8x 1MiB (%v)", large, small)
	}
}

func TestZeroByteRequestClamped(t *testing.T) {
	clock := simtime.NewClock()
	d := New(clock, 5)
	ok := false
	d.Submit(0, false, func() { ok = true })
	clock.Run()
	if !ok {
		t.Fatal("zero-byte request never completed")
	}
}

func TestDeterministicService(t *testing.T) {
	run := func() int64 {
		clock := simtime.NewClock()
		d := New(clock, 9)
		for i := 0; i < 50; i++ {
			d.Submit(64<<10, i%2 == 0, nil)
		}
		clock.Run()
		return int64(clock.Now())
	}
	if run() != run() {
		t.Fatal("service times nondeterministic")
	}
}

// TestGuestDiskPathEndToEnd drives OpDisk through the guest and verifies
// the completion IRQ wakes the thread.
func TestGuestDiskPathEndToEnd(t *testing.T) {
	clock := simtime.NewClock()
	cfg := hv.DefaultConfig()
	cfg.PCPUs = 1
	h := hv.New(clock, cfg)
	k := guest.NewKernel(h, "vm", 1, ksym.Generate(1), guest.DefaultParams())
	d := New(clock, 7)
	k.AttachDisk(d)
	done := 0
	th := k.NewThread(0, "reader", guest.ProgramFunc(func(now simtime.Time) guest.Op {
		if done >= 10 {
			return guest.Op{Kind: guest.OpExit}
		}
		done++
		return guest.Op{Kind: guest.OpDisk, Bytes: 16 << 10}
	}))
	h.Start()
	k.StartAll()
	clock.RunUntil(simtime.Second)
	if th.State() != guest.ThreadDone {
		t.Fatalf("thread state %v", th.State())
	}
	if d.Completed != 10 {
		t.Fatalf("completed=%d", d.Completed)
	}
	// Idle vCPU: app-visible latency ≈ device latency (sub-ms).
	if d.Latency.Max() > int64(simtime.Millisecond) {
		t.Fatalf("device latency %dns on idle host", d.Latency.Max())
	}
}

// TestMixedDiskVCPUSuffersAndIsRescued reproduces the Figure-9 shape on
// the storage path: a disk-bound thread sharing its vCPU with a hog, the
// vCPU sharing a pCPU with a hog VM.
func TestMixedDiskVCPUSuffersAndIsRescued(t *testing.T) {
	run := func(micro bool) float64 {
		clock := simtime.NewClock()
		cfg := hv.DefaultConfig()
		cfg.PCPUs = 2
		h := hv.New(clock, cfg)
		k := guest.NewKernel(h, "vm1", 1, ksym.Generate(1), guest.DefaultParams())
		d := New(clock, 7)
		k.AttachDisk(d)
		app := workload.Empty("filer", k)
		ios := uint64(0)
		k.NewThread(0, "filer", guest.ProgramFunc(func(now simtime.Time) guest.Op {
			ios++
			return guest.Op{Kind: guest.OpDisk, Bytes: 16 << 10}
		}))
		workload.LookbusyThread(app, 0)
		hog := guest.NewKernel(h, "vm2", 1, ksym.Generate(2), guest.DefaultParams())
		if _, err := workload.New("lookbusy", hog, 9); err != nil {
			t.Fatal(err)
		}
		k.VCPUs[0].HV().Pin(0)
		hog.VCPUs[0].HV().Pin(0)
		cc := core.DefaultConfig()
		if micro {
			cc = core.StaticConfig(1)
		} else {
			cc.Mode = core.ModeOff
		}
		ctrl, err := core.Attach(h, cc)
		if err != nil {
			t.Fatal(err)
		}
		h.Start()
		ctrl.Start()
		k.StartAll()
		hog.StartAll()
		clock.RunUntil(2 * simtime.Second)
		return float64(d.Completed) / 2 // IOPS
	}
	base := run(false)
	fixed := run(true)
	if base <= 0 {
		t.Fatal("no baseline I/O")
	}
	// Closed-loop depth-1 I/O on a 50%-duty vCPU: the baseline already
	// achieves roughly half the solo rate, so the rescue's headroom is
	// bounded; a >=25% recovery demonstrates the relay-path acceleration.
	if fixed < 1.25*base {
		t.Fatalf("micro-slicing did not rescue disk I/O: %.0f -> %.0f IOPS", base, fixed)
	}
}

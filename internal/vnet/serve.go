package vnet

import (
	"fmt"

	"github.com/microslicedcore/microsliced/internal/guest"
	"github.com/microslicedcore/microsliced/internal/metrics"
	"github.com/microslicedcore/microsliced/internal/obs"
	"github.com/microslicedcore/microsliced/internal/rng"
	"github.com/microslicedcore/microsliced/internal/simtime"
)

// DefaultReqBytes is the request packet size when a RequestFlow is created
// with 0.
const DefaultReqBytes = 512

// RequestFlow is an open-loop RPC-style arrival process: a seeded Poisson
// stream of request packets injected into a domain's NIC ring, each fanned
// out (RSS-style) to one of targets sockets served by per-vCPU server
// threads (see workload.RequestServer).
//
// Measurement is coordinated-omission-free by construction: arrivals fire
// at their *intended* instants regardless of how backed up the guest is
// (there is no sender-side queue to hide stalls in), per-request latency is
// measured from the intended arrival to the reply's transmission, and a
// request tail-dropped at the full ring counts against the SLO instead of
// silently vanishing from the distribution.
type RequestFlow struct {
	nic     *NIC
	clock   *simtime.Clock
	r       *rng.Source
	gapMean simtime.Duration // mean inter-arrival gap (exponential)
	bytes   int
	slo     simtime.Duration
	targets int // socket fan-out: one per server thread

	seq      uint64
	arriveFn func()
	ev       *simtime.Event
	started  simtime.Time
	stopped  bool

	// Ledger (exact, deterministic). Offered == Dropped + Completed +
	// InFlight() at every instant — the flow-side half of the request
	// conservation law.
	Offered   uint64
	Dropped   uint64 // tail-dropped at the full NIC ring: SLO violations
	Completed uint64
	Late      uint64 // completed, but past the SLO

	// Lat is the end-to-end latency distribution (ns, from intended
	// arrival) of completed requests. Always recorded, observer or not, so
	// attaching an observer cannot perturb the reported quantiles.
	Lat *metrics.Histogram
}

// NewRequestFlow creates an open-loop request stream towards nic offering
// ratePerSec requests per second against the given end-to-end SLO,
// spraying across targets sockets (flow IDs 0..targets-1). reqBytes of 0
// defaults to DefaultReqBytes.
func NewRequestFlow(clock *simtime.Clock, nic *NIC, ratePerSec, reqBytes int, slo simtime.Duration, targets int, seed uint64) (*RequestFlow, error) {
	if ratePerSec <= 0 {
		return nil, fmt.Errorf("vnet: request flow: rate %d req/s must be positive", ratePerSec)
	}
	if reqBytes == 0 {
		reqBytes = DefaultReqBytes
	}
	if reqBytes < 0 {
		return nil, fmt.Errorf("vnet: request flow: request size %d must be positive", reqBytes)
	}
	if slo <= 0 {
		return nil, fmt.Errorf("vnet: request flow: SLO %v must be positive", slo)
	}
	if targets <= 0 {
		return nil, fmt.Errorf("vnet: request flow: %d targets must be positive", targets)
	}
	f := &RequestFlow{
		nic:     nic,
		clock:   clock,
		r:       rng.New(seed),
		gapMean: simtime.Duration(int64(simtime.Second) / int64(ratePerSec)),
		bytes:   reqBytes,
		slo:     slo,
		targets: targets,
		Lat:     metrics.NewHistogram(8),
	}
	f.arriveFn = f.arrive
	return f, nil
}

// SLO returns the flow's latency objective.
func (f *RequestFlow) SLO() simtime.Duration { return f.slo }

// Start schedules the first arrival one exponential gap from now.
func (f *RequestFlow) Start() {
	f.started = f.clock.Now()
	f.ev = f.clock.After(f.gap(), f.arriveFn)
}

// Stop halts the arrival process.
func (f *RequestFlow) Stop() {
	f.stopped = true
	if f.ev != nil {
		f.ev.Cancel()
		f.ev = nil
	}
}

func (f *RequestFlow) gap() simtime.Duration {
	return simtime.Duration(f.r.ExpDur(int64(f.gapMean)))
}

// arrive injects one request at its intended instant and schedules the
// next. SentAt is the intended arrival, so every downstream latency read is
// coordinated-omission-free.
func (f *RequestFlow) arrive() {
	if f.stopped {
		return
	}
	now := f.clock.Now()
	f.Offered++
	f.seq++
	p := guest.Packet{Seq: f.seq, Flow: f.r.Intn(f.targets), Bytes: f.bytes, SentAt: now}
	if o := f.nic.h.Obs; o != nil {
		p.ReqSpan = o.Begin(obs.SpanRequest, int16(f.nic.dom.ID), int16(f.nic.dom.IRQVCPU), f.seq, now)
	}
	if !f.nic.Rx(p) {
		f.Dropped++
		if o := f.nic.h.Obs; o != nil {
			o.Cancel(p.ReqSpan) // never served; the drop counts via Dropped
		}
	}
	f.ev = f.clock.After(f.gap(), f.arriveFn)
}

// MarkService stamps the service→reply boundary on p's request span: the
// server is dispatching the reply transmission now. Called by the server
// program (workload.RequestServer).
func (f *RequestFlow) MarkService(p guest.Packet, now simtime.Time) {
	if o := f.nic.h.Obs; o != nil {
		o.Stage(p.ReqSpan, obs.ReqStageService, now)
	}
}

// Complete records p's reply transmission at now: end-to-end latency from
// the intended arrival, lateness against the SLO, and the request span's
// close. Called by the server program after the reply's OpSend completes.
func (f *RequestFlow) Complete(p guest.Packet, now simtime.Time) {
	lat := now - p.SentAt
	f.Completed++
	f.Lat.Observe(int64(lat))
	if simtime.Duration(lat) > f.slo {
		f.Late++
	}
	if o := f.nic.h.Obs; o != nil {
		o.End(p.ReqSpan, now)
	}
}

// InFlight returns the number of requests admitted but not yet replied to
// (anywhere in ring → softirq → socket → service).
func (f *RequestFlow) InFlight() uint64 {
	return f.Offered - f.Dropped - f.Completed
}

// SLOViolations counts requests that missed the SLO: dropped outright or
// completed late. In-flight requests are not yet judged.
func (f *RequestFlow) SLOViolations() uint64 { return f.Dropped + f.Late }

// Package experiment reproduces every table and figure of the paper's
// evaluation (§3, §6) on the simulated testbed: a 12-pCPU host running the
// credit scheduler, consolidating 12-vCPU VMs at a 2:1 ratio, with the
// micro-sliced-core mechanism off (Baseline), statically sized (Static
// 1..6), or adaptive (Dynamic, Algorithm 1).
package experiment

import (
	"fmt"

	"github.com/microslicedcore/microsliced/internal/core"
	"github.com/microslicedcore/microsliced/internal/guest"
	"github.com/microslicedcore/microsliced/internal/hv"
	"github.com/microslicedcore/microsliced/internal/ksym"
	"github.com/microslicedcore/microsliced/internal/metrics"
	"github.com/microslicedcore/microsliced/internal/simtime"
	"github.com/microslicedcore/microsliced/internal/vdisk"
	"github.com/microslicedcore/microsliced/internal/workload"
)

// Defaults matching the paper's testbed (§6.1).
const (
	DefaultPCPUs    = 12
	DefaultVCPUs    = 12
	DefaultDuration = 3 * simtime.Second
)

// VMSpec describes one consolidated virtual machine.
type VMSpec struct {
	Name  string
	App   string // workload catalog name
	VCPUs int
	Seed  uint64
	// Disk attaches a virtual block device (required by storage-bound
	// workloads such as "fileserver").
	Disk bool
}

// Setup is a complete scenario.
type Setup struct {
	PCPUs    int
	VMs      []VMSpec
	Core     core.Config
	Duration simtime.Duration
	// StaggerStart delays VM i's start by i*7ms, letting co-runner
	// scheduling phases drift as they do on real hardware.
	StaggerStart bool
	// HVConfig, when non-nil, overrides the hypervisor configuration
	// (ablation studies: slice lengths, runqueue limits, migrate-back).
	HVConfig *hv.Config
	// Rival, when set, installs a prior-work system (internal/rivals) in
	// place of the paper's mechanism; Core should be ModeOff.
	Rival Rival
}

// VMResult carries one VM's measurements.
type VMResult struct {
	Name     string
	App      string
	Units    uint64
	Yields   YieldBreakdown
	TLB      *metrics.Histogram
	LockStat map[string]*metrics.Histogram
	RanTotal simtime.Duration
}

// YieldBreakdown decomposes yields by source (paper Figure 7).
type YieldBreakdown struct {
	IPI   uint64
	PLE   uint64
	Halt  uint64
	Other uint64
}

// Total sums all yield sources.
func (y YieldBreakdown) Total() uint64 { return y.IPI + y.PLE + y.Halt + y.Other }

// Result is the outcome of one scenario run.
type Result struct {
	VMs        []VMResult
	HV         map[string]uint64
	Core       map[string]uint64
	SymbolHits map[string]uint64
	MicroAvg   float64
	Duration   simtime.Duration
}

// VM returns the result of the named VM.
func (r *Result) VM(name string) *VMResult {
	for i := range r.VMs {
		if r.VMs[i].Name == name {
			return &r.VMs[i]
		}
	}
	return nil
}

// Run executes a scenario to completion and collects the measurements.
func Run(s Setup) (*Result, error) {
	if s.PCPUs == 0 {
		s.PCPUs = DefaultPCPUs
	}
	if s.Duration == 0 {
		s.Duration = DefaultDuration
	}
	clock := simtime.NewClock()
	cfg := hv.DefaultConfig()
	if s.HVConfig != nil {
		cfg = *s.HVConfig
	}
	cfg.PCPUs = s.PCPUs
	h := hv.New(clock, cfg)

	kernels := make([]*guest.Kernel, len(s.VMs))
	apps := make([]*workload.App, len(s.VMs))
	for i, vm := range s.VMs {
		n := vm.VCPUs
		if n == 0 {
			n = DefaultVCPUs
		}
		kernels[i] = guest.NewKernel(h, vm.Name, n, ksym.Generate(1000+uint64(i)), guest.DefaultParams())
		if vm.Disk || workload.NeedsDisk(vm.App) {
			kernels[i].AttachDisk(vdisk.New(clock, 5000+vm.Seed))
		}
		app, err := workload.New(vm.App, kernels[i], vm.Seed)
		if err != nil {
			return nil, fmt.Errorf("experiment: VM %s: %v", vm.Name, err)
		}
		apps[i] = app
	}
	ctrl, err := core.Attach(h, s.Core)
	if err != nil {
		return nil, err
	}
	var rivalStart func()
	if s.Rival != RivalNone {
		rivalStart, err = attachRival(h, s.Rival)
		if err != nil {
			return nil, err
		}
	}
	h.Start()
	ctrl.Start()
	if rivalStart != nil {
		rivalStart()
	}
	for i, k := range kernels {
		if s.StaggerStart && i > 0 {
			k := k
			clock.At(simtime.Time(i)*7*simtime.Millisecond, k.StartAll)
		} else {
			k.StartAll()
		}
	}
	clock.RunUntil(s.Duration)
	return collect(s, h, ctrl, kernels, apps), nil
}

func collect(s Setup, h *hv.Hypervisor, ctrl *core.Controller, kernels []*guest.Kernel, apps []*workload.App) *Result {
	res := &Result{
		HV:         h.Counters.Snapshot(),
		Core:       ctrl.Counters.Snapshot(),
		SymbolHits: ctrl.SymbolHits,
		MicroAvg:   ctrl.MicroGauge.TimeAverage(int64(h.Clock.Now())),
		Duration:   s.Duration,
	}
	for i, k := range kernels {
		d := k.Dom
		var ran simtime.Duration
		for _, v := range d.VCPUs {
			ran += v.RanTotal()
		}
		res.VMs = append(res.VMs, VMResult{
			Name:  s.VMs[i].Name,
			App:   s.VMs[i].App,
			Units: apps[i].Units(),
			Yields: YieldBreakdown{
				IPI:   d.Counters.Value("yield.ipi"),
				PLE:   d.Counters.Value("yield.ple"),
				Halt:  d.Counters.Value("yield.halt"),
				Other: d.Counters.Value("yield.other"),
			},
			TLB:      k.TLBStat,
			LockStat: k.LockStat,
			RanTotal: ran,
		})
	}
	return res
}

// offConfig is the vanilla-Xen baseline.
func offConfig() core.Config {
	c := core.DefaultConfig()
	c.Mode = core.ModeOff
	return c
}

// soloSetup runs one VM alone on the host.
func soloSetup(app string, dur simtime.Duration) Setup {
	return Setup{
		VMs:      []VMSpec{{Name: app, App: app, Seed: 11}},
		Core:     offConfig(),
		Duration: dur,
	}
}

// corunSetup consolidates the target VM with a swaptions VM at 2:1.
func corunSetup(app string, cc core.Config, dur simtime.Duration) Setup {
	return Setup{
		VMs: []VMSpec{
			{Name: app, App: app, Seed: 11},
			{Name: "swaptions", App: "swaptions", Seed: 22},
		},
		Core:         cc,
		Duration:     dur,
		StaggerStart: true,
	}
}

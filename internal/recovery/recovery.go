// Package recovery implements the self-healing supervisor: a periodic,
// deterministic detect→repair loop over the hypervisor's scheduling state.
//
// Where the auditor (internal/hv/audit.go) only *reports* damage, the
// supervisor repairs it. Each walk — a simtime event chained through
// Clock.Reschedule, zero-alloc while the machine is healthy — looks for
// three damage classes the harsh fault plans inflict:
//
//   - starved runnable vCPUs: runnable-but-undispatched beyond StarveBound
//     (keyed on VCPU.RunnableSince, the same episode key the auditor uses).
//     Repairs escalate one rung per walk: credit re-grant with a wake-style
//     boost, forced re-home off a dead or unreachable pinned pCPU
//     (RePin(-1)), then ForceDispatch — each episode bounded by
//     MaxEpisodeRepairs so repair itself cannot ping-pong.
//   - lost IPIs: entries in the hypervisor's LostIPI ledger are re-driven
//     with exponential backoff (base << redrives, clamped), so an IPI lost
//     again under ongoing chaos retries ever more patiently and drains
//     promptly once the fault plan quiesces.
//   - capacity loss: fewer online pCPUs than at Attach. Under loss the
//     supervisor auto-shrinks the micro pool (SetMicroCount) while it
//     out-sizes the normal pool, and regrows it when capacity returns;
//     both directions share the MaxPoolRepairs budget, which bounds any
//     tug-of-war with the adaptive pool controller.
//
// Every detection and repair is a structured RepairEvent: counted through
// interned metrics handles, emitted as a trace.KindRepair record, retained
// in a bounded ring that the flight recorder includes in its dumps, and a
// starvation episode carries an obs SpanRecover span measuring detection→
// reconvergence. The walk is strictly deterministic — simtime-driven with
// no wall-clock or map-iteration dependence — so a run with a supervisor
// is as reproducible as one without, and a supervisor that never needs to
// repair anything leaves scheduling bit-identical.
package recovery

import (
	"fmt"

	"github.com/microslicedcore/microsliced/internal/hv"
	"github.com/microslicedcore/microsliced/internal/metrics"
	"github.com/microslicedcore/microsliced/internal/obs"
	"github.com/microslicedcore/microsliced/internal/simtime"
	"github.com/microslicedcore/microsliced/internal/trace"
)

// Config tunes the supervisor. Zero values select defaults.
type Config struct {
	// Interval is the walk period (default: the scheduler tick).
	Interval simtime.Duration
	// StarveBound is the runnable-undispatched wait that counts as
	// starvation (default 50ms — far above any healthy dispatch latency,
	// far below the auditor's 1s horizon so repair precedes report).
	StarveBound simtime.Duration
	// IPIBackoffBase is the redrive delay after a first loss; each further
	// loss of the same interrupt doubles it (default 50µs).
	IPIBackoffBase simtime.Duration
	// IPIBackoffMax clamps the redrive backoff (default 5ms).
	IPIBackoffMax simtime.Duration
	// MaxEpisodeRepairs caps repairs per starvation episode (default 6).
	MaxEpisodeRepairs int
	// MaxPoolRepairs is the total micro-pool shrink+regrow budget for the
	// run (default 8) — the bound that prevents pool-size ping-pong.
	MaxPoolRepairs int
	// EventDepth is the RepairEvent retention ring size (default 32);
	// Total keeps the exact count regardless of ring wrap.
	EventDepth int
	// OnRepair, when non-nil, fires synchronously for every recorded
	// detection and repair.
	OnRepair func(*RepairEvent)
}

func (c Config) withDefaults(hcfg hv.Config) Config {
	if c.Interval <= 0 {
		c.Interval = hcfg.Tick
	}
	if c.StarveBound <= 0 {
		c.StarveBound = 50 * simtime.Millisecond
	}
	if c.IPIBackoffBase <= 0 {
		c.IPIBackoffBase = 50 * simtime.Microsecond
	}
	if c.IPIBackoffMax <= 0 {
		c.IPIBackoffMax = 5 * simtime.Millisecond
	}
	if c.MaxEpisodeRepairs <= 0 {
		c.MaxEpisodeRepairs = 6
	}
	if c.MaxPoolRepairs <= 0 {
		c.MaxPoolRepairs = 8
	}
	if c.EventDepth <= 0 {
		c.EventDepth = 32
	}
	return c
}

// EventKind classifies a RepairEvent.
type EventKind uint8

// Detection and repair kinds. Detections observe damage; repairs act on it
// (IsRepair discriminates — MTTR is keyed on the last *repair*).
const (
	DetectStarve EventKind = iota
	DetectLostIPI
	DetectCapacityLoss
	RepairCredit
	RepairUnpin
	RepairForceDispatch
	RepairIPIRedrive
	RepairShrinkMicro
	RepairRegrowMicro
	numEventKinds
)

var eventKindNames = [numEventKinds]string{
	DetectStarve:        "detect.starve",
	DetectLostIPI:       "detect.lost_ipi",
	DetectCapacityLoss:  "detect.capacity",
	RepairCredit:        "repair.credit",
	RepairUnpin:         "repair.unpin",
	RepairForceDispatch: "repair.force_dispatch",
	RepairIPIRedrive:    "repair.ipi_redrive",
	RepairShrinkMicro:   "repair.shrink_micro",
	RepairRegrowMicro:   "repair.regrow_micro",
}

// String names the kind (also the suffix of its "recovery.*" counter).
func (k EventKind) String() string {
	if k < numEventKinds {
		return eventKindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// IsRepair reports whether the kind is a repair action (vs a detection).
func (k EventKind) IsRepair() bool { return k >= RepairCredit }

// RepairEvent is one structured supervisor detection or repair.
type RepairEvent struct {
	Time simtime.Time
	Kind EventKind
	// Dom/VCPU identify the repaired vCPU (-1 for machine-level events
	// such as capacity loss and pool resizes).
	Dom    int
	VCPU   int
	Detail string
}

func (e RepairEvent) String() string {
	return fmt.Sprintf("%v %s d%dv%d %s", e.Time, e.Kind, e.Dom, e.VCPU, e.Detail)
}

// episode tracks one vCPU's ongoing starvation: keyed on the vCPU's
// RunnableSince stamp (a new stamp is a new episode), with the escalation
// rung, the repair budget spent, and the open reconvergence span.
type episode struct {
	active  bool
	since   simtime.Time
	step    int
	repairs int
	span    obs.SpanRef
}

// Supervisor is the armed detect→repair loop. Construct with Attach.
type Supervisor struct {
	h   *hv.Hypervisor
	cfg Config

	epi []episode // indexed by VCPU.ID, grown on first walk

	baselineOnline int
	capLost        bool
	shrunk         int // micro slots removed under capacity loss, to regrow
	poolBudget     int

	lastSeenLost uint64 // highest LostIPI.Seq already announced
	seqBuf       []uint64

	events     []RepairEvent // retention ring of the last EventDepth events
	evNext     int
	total      uint64
	lastRepair simtime.Time

	hot [numEventKinds]*metrics.Counter
}

// Attach arms the supervisor on the hypervisor's clock. Call before
// hv.Start; the first walk runs one interval into the run. When an
// observer is attached, the supervisor registers its event ring as the
// flight recorder's repair tail.
func Attach(h *hv.Hypervisor, cfg Config) *Supervisor {
	s := &Supervisor{
		h:              h,
		cfg:            cfg.withDefaults(h.Cfg),
		baselineOnline: h.OnlinePCPUs(),
	}
	s.poolBudget = s.cfg.MaxPoolRepairs
	for k := EventKind(0); k < numEventKinds; k++ {
		s.hot[k] = h.Counters.Handle("recovery." + eventKindNames[k])
	}
	if h.Obs != nil {
		h.Obs.SetRepairTail(s.repairTail)
	}
	walk := func() {
		s.walk()
		h.Clock.Reschedule(s.cfg.Interval)
	}
	h.Clock.AfterLabeled(s.cfg.Interval, "recover", walk)
	return s
}

// Events returns the retained events oldest-first (nil when none fired).
func (s *Supervisor) Events() []RepairEvent {
	if len(s.events) == 0 {
		return nil
	}
	out := make([]RepairEvent, 0, len(s.events))
	if int(s.total) > len(s.events) { // ring wrapped: evNext is the oldest
		out = append(out, s.events[s.evNext:]...)
		out = append(out, s.events[:s.evNext]...)
	} else {
		out = append(out, s.events...)
	}
	return out
}

// Total returns the exact number of detections+repairs, ring wrap included.
func (s *Supervisor) Total() uint64 { return s.total }

// LastRepairTime returns the instant of the most recent repair action
// (zero when the supervisor never had to repair anything).
func (s *Supervisor) LastRepairTime() simtime.Time { return s.lastRepair }

// MTTR returns the quiesce→last-repair convergence time: how long after
// the fault plan went quiet the supervisor still had repairing to do.
// Zero when every repair predates the quiesce point.
func (s *Supervisor) MTTR(quiesce simtime.Time) simtime.Duration {
	if s.lastRepair > quiesce {
		return s.lastRepair - quiesce
	}
	return 0
}

// repairTail renders the event ring for a flight dump.
func (s *Supervisor) repairTail() []obs.RepairRecord {
	evs := s.Events()
	if len(evs) == 0 {
		return nil
	}
	out := make([]obs.RepairRecord, len(evs))
	for i, e := range evs {
		out[i] = obs.RepairRecord{
			Time: e.Time, Kind: e.Kind.String(),
			Dom: e.Dom, VCPU: e.VCPU, Detail: e.Detail,
		}
	}
	return out
}

// event records one detection/repair: ring, counter, trace, hook.
func (s *Supervisor) event(now simtime.Time, kind EventKind, v *hv.VCPU, detail string) {
	s.total++
	s.hot[kind].Inc()
	if kind.IsRepair() {
		s.lastRepair = now
	}
	ev := RepairEvent{Time: now, Kind: kind, Dom: -1, VCPU: -1, Detail: detail}
	var dom, vcpu int16 = -1, -1
	if v != nil {
		ev.Dom, ev.VCPU = v.DomID, v.Idx
		dom, vcpu = int16(v.DomID), int16(v.Idx)
	}
	if len(s.events) < s.cfg.EventDepth {
		s.events = append(s.events, ev)
		s.evNext = len(s.events) % s.cfg.EventDepth
	} else {
		s.events[s.evNext] = ev
		s.evNext = (s.evNext + 1) % s.cfg.EventDepth
	}
	s.h.Trace.Emit(trace.Record{
		Time: now, Kind: trace.KindRepair,
		Dom: dom, VCPU: vcpu, PCPU: -1,
		Arg0: uint64(kind),
	})
	if s.cfg.OnRepair != nil {
		s.cfg.OnRepair(&ev)
	}
}

// walk is one supervision pass. Healthy machine → reads only, no allocs.
func (s *Supervisor) walk() {
	now := s.h.Clock.Now()
	s.checkStarvation(now)
	s.checkLostIPIs(now)
	s.checkCapacity(now)
}

func (s *Supervisor) checkStarvation(now simtime.Time) {
	vcpus := s.h.VCPUs()
	if len(s.epi) < len(vcpus) {
		s.epi = append(s.epi, make([]episode, len(vcpus)-len(s.epi))...)
	}
	for _, v := range vcpus {
		e := &s.epi[v.ID]
		starving := v.State() == hv.StateRunnable && now-v.RunnableSince() > s.cfg.StarveBound
		if !starving {
			if e.active {
				s.closeEpisode(e, now)
			}
			continue
		}
		if e.active && e.since != v.RunnableSince() {
			// The vCPU ran and re-starved between walks: new episode.
			s.closeEpisode(e, now)
		}
		if !e.active {
			*e = episode{active: true, since: v.RunnableSince()}
			if s.h.Obs != nil {
				e.span = s.h.Obs.Begin(obs.SpanRecover, int16(v.DomID), int16(v.Idx), 0, now)
			}
			s.event(now, DetectStarve, v, fmt.Sprintf("runnable for %v (> bound %v)",
				now-v.RunnableSince(), s.cfg.StarveBound))
		}
		if e.repairs < s.cfg.MaxEpisodeRepairs {
			s.repairStarved(now, v, e)
		}
	}
}

// closeEpisode ends a starvation episode: the vCPU was observed dispatched
// (or blocked, or re-starved) — the reconvergence span closes here.
func (s *Supervisor) closeEpisode(e *episode, now simtime.Time) {
	if s.h.Obs != nil {
		s.h.Obs.End(e.span, now)
	}
	*e = episode{}
}

// repairStarved applies one escalation rung per walk:
//
//	0: credit re-grant + wake-style boost (credit starvation);
//	1: unpin, when the pin points at an offline or out-of-pool pCPU the
//	   scheduler can never dispatch on (the dead-pCPU wedge);
//	2+: ForceDispatch onto the first pool pCPU that accepts the vCPU.
func (s *Supervisor) repairStarved(now simtime.Time, v *hv.VCPU, e *episode) {
	switch e.step {
	case 0:
		s.h.RegrantCredits(v, true)
		e.step, e.repairs = 1, e.repairs+1
		s.event(now, RepairCredit, v, "credits re-granted, boosted")
		return
	case 1:
		e.step = 2
		if pin := v.PinnedTo(); pin >= 0 && !v.OnMicro() {
			target := s.h.PCPU(pin)
			if target.Offline() || target.Pool() != v.Pool() {
				s.h.RePin(v, -1)
				e.repairs++
				s.event(now, RepairUnpin, v, fmt.Sprintf("unpinned from unreachable p%d", pin))
				return
			}
		}
		// Pin not the problem — fall through to forcing a dispatch now.
		fallthrough
	default:
		pool := v.Pool()
		if pool == nil {
			return
		}
		for _, p := range pool.PCPUs() {
			if s.h.ForceDispatch(p, v) {
				e.repairs++
				s.event(now, RepairForceDispatch, v, fmt.Sprintf("forced onto p%d", p.ID))
				return
			}
		}
	}
}

func (s *Supervisor) checkLostIPIs(now simtime.Time) {
	lost := s.h.LostIPIs()
	if len(lost) == 0 {
		return
	}
	s.seqBuf = s.seqBuf[:0]
	for i := range lost {
		e := &lost[i]
		if e.Seq > s.lastSeenLost {
			s.lastSeenLost = e.Seq
			if e.Redrives == 0 {
				// Announce each interrupt once; re-losses of the same one
				// only grow their backoff.
				s.event(now, DetectLostIPI, e.Dst, fmt.Sprintf("vec %d lost at %v", e.Vec, e.Time))
			}
		}
		if now >= e.Time+simtime.Time(s.backoff(e.Redrives)) {
			s.seqBuf = append(s.seqBuf, e.Seq)
		}
	}
	for _, seq := range s.seqBuf {
		// Find the entry again (the ledger shifts as redrives remove
		// entries) to label the event before RedriveLostIPI consumes it.
		var dst *hv.VCPU
		redrives := 0
		for i := range lost {
			if lost[i].Seq == seq {
				dst, redrives = lost[i].Dst, lost[i].Redrives
				break
			}
		}
		if s.h.RedriveLostIPI(seq) {
			s.event(now, RepairIPIRedrive, dst, fmt.Sprintf("redrive #%d", redrives+1))
		}
		lost = s.h.LostIPIs()
	}
}

// backoff returns the redrive delay after the given number of completed
// redrives: base << n, clamped to IPIBackoffMax.
func (s *Supervisor) backoff(redrives int) simtime.Duration {
	d := s.cfg.IPIBackoffBase
	for i := 0; i < redrives && d < s.cfg.IPIBackoffMax; i++ {
		d <<= 1
	}
	if d > s.cfg.IPIBackoffMax {
		d = s.cfg.IPIBackoffMax
	}
	return d
}

func (s *Supervisor) checkCapacity(now simtime.Time) {
	online := s.h.OnlinePCPUs()
	switch {
	case online < s.baselineOnline:
		if !s.capLost {
			s.capLost = true
			s.event(now, DetectCapacityLoss, nil, fmt.Sprintf("%d of %d pCPUs online",
				online, s.baselineOnline))
		}
		// Auto-shrink: under capacity loss the micro pool must not out-size
		// the normal pool (micro cores are reserved for sub-ms critical
		// work; general progress needs the majority). One step per walk.
		if s.poolBudget > 0 && s.h.MicroCount() > 0 &&
			s.h.NormalPool().Size() < s.h.MicroCount() {
			before := s.h.MicroCount()
			s.poolBudget--
			if got := s.h.SetMicroCount(before - 1); got < before {
				s.shrunk++
				s.event(now, RepairShrinkMicro, nil, fmt.Sprintf("micro %d -> %d", before, got))
			}
		}
	default:
		s.capLost = false
		// Capacity restored: return the borrowed slots to the micro pool.
		if s.shrunk > 0 && s.poolBudget > 0 {
			before := s.h.MicroCount()
			s.poolBudget--
			if got := s.h.SetMicroCount(before + 1); got > before {
				s.shrunk--
				s.event(now, RepairRegrowMicro, nil, fmt.Sprintf("micro %d -> %d", before, got))
			} else {
				s.shrunk = 0 // cannot regrow (pool constraints); stop trying
			}
		}
	}
}

package rivals

import (
	"testing"

	"github.com/microslicedcore/microsliced/internal/guest"
	"github.com/microslicedcore/microsliced/internal/hv"
	"github.com/microslicedcore/microsliced/internal/ksym"
	"github.com/microslicedcore/microsliced/internal/simtime"
	"github.com/microslicedcore/microsliced/internal/workload"
)

func host(t *testing.T, pcpus int) (*simtime.Clock, *hv.Hypervisor) {
	t.Helper()
	clock := simtime.NewClock()
	cfg := hv.DefaultConfig()
	cfg.PCPUs = pcpus
	return clock, hv.New(clock, cfg)
}

func deploy(t *testing.T, h *hv.Hypervisor, name, app string, vcpus int, seed uint64) *guest.Kernel {
	t.Helper()
	k := guest.NewKernel(h, name, vcpus, ksym.Generate(seed), guest.DefaultParams())
	if _, err := workload.New(app, k, seed); err != nil {
		t.Fatal(err)
	}
	return k
}

func TestFixedMicroSlicedOverridesEverySlice(t *testing.T) {
	clock, h := host(t, 2)
	k := deploy(t, h, "vm", "lookbusy", 2, 1)
	f := NewFixedMicroSliced(h, 0) // default 100us
	if f.Name() != "fixed-usliced" {
		t.Fatal("name")
	}
	h.Start()
	f.Start()
	k.StartAll()
	for _, v := range h.VCPUs() {
		if v.SliceOverride() != 100*simtime.Microsecond {
			t.Fatalf("override %v", v.SliceOverride())
		}
	}
	clock.RunUntil(50 * simtime.Millisecond)
	// With two hogs per pCPU... here one hog per pCPU: no contention, so
	// add nothing; just ensure short slices produce many dispatches when
	// contended on one pCPU.
	clock2, h2 := host(t, 1)
	k2 := deploy(t, h2, "a", "lookbusy", 1, 1)
	k3 := deploy(t, h2, "b", "lookbusy", 1, 2)
	f2 := NewFixedMicroSliced(h2, 100*simtime.Microsecond)
	h2.Start()
	f2.Start()
	k2.StartAll()
	k3.StartAll()
	clock2.RunUntil(50 * simtime.Millisecond)
	// 50ms at 0.1ms alternation: hundreds of preemptions (30ms slices
	// would give one).
	if h2.Counters.Value("sched.preempt") < 100 {
		t.Fatalf("preempts=%d, want short-slice churn", h2.Counters.Value("sched.preempt"))
	}
}

func TestShortSliceConfig(t *testing.T) {
	cfg := ShortSliceConfig(0)
	if cfg.NormalSlice != 100*simtime.Microsecond {
		t.Fatalf("slice %v", cfg.NormalSlice)
	}
	cfg = ShortSliceConfig(simtime.Millisecond)
	if cfg.NormalSlice != simtime.Millisecond {
		t.Fatalf("slice %v", cfg.NormalSlice)
	}
}

func TestVTurboReservesCoreAndSteersIRQRecipients(t *testing.T) {
	clock, h := host(t, 2)
	k := deploy(t, h, "io", "lookbusy", 1, 1) // runnable mixed-style vCPU
	hog := deploy(t, h, "hog", "lookbusy", 1, 2)
	k.VCPUs[0].HV().Pin(0)
	hog.VCPUs[0].HV().Pin(0)
	vt := NewVTurbo(h, 0) // default 1 core
	if vt.Name() != "vturbo" {
		t.Fatal("name")
	}
	h.Start()
	vt.Start()
	if h.MicroCount() != 1 {
		t.Fatalf("turbo cores %d", h.MicroCount())
	}
	k.StartAll()
	hog.StartAll()
	clock.RunUntil(5 * simtime.Millisecond)
	// The io vCPU is runnable-but-preempted behind the hog; an IRQ must
	// steer it to the turbo core.
	if k.VCPUs[0].HV().State() != hv.StateRunnable {
		t.Skipf("io vCPU is %v; scheduling phase differs", k.VCPUs[0].HV().State())
	}
	h.InjectPIRQ(k.Dom, hv.VecNet, 0)
	clock.RunUntil(clock.Now() + simtime.Millisecond)
	if vt.Counters.Value("steer.ok") == 0 {
		t.Fatal("vturbo never steered the IRQ recipient")
	}
}

func TestVTRSClassifiesAndPartitions(t *testing.T) {
	clock, h := host(t, 4)
	locky := deploy(t, h, "locky", "memclone", 4, 1)
	calm := deploy(t, h, "calm", "swaptions", 4, 2)
	vt := NewVTRS(h)
	if vt.Name() != "vtrs" {
		t.Fatal("name")
	}
	h.Start()
	vt.Start()
	locky.StartAll()
	calm.StartAll()
	clock.RunUntil(600 * simtime.Millisecond)
	lockClassed := 0
	for _, vc := range locky.VCPUs {
		if vt.Class(vc.HV()) == VTRSLockIntensive {
			lockClassed++
			if vc.HV().SliceOverride() != vt.LockSlice {
				t.Fatalf("lock-class vCPU has slice %v", vc.HV().SliceOverride())
			}
		}
	}
	if lockClassed == 0 {
		t.Fatal("no memclone vCPU classified lock-intensive")
	}
	for _, vc := range calm.VCPUs {
		if vt.Class(vc.HV()) != VTRSDefault {
			t.Fatalf("swaptions vCPU classified %v", vt.Class(vc.HV()))
		}
	}
	if vt.Counters.Value("reclassify") == 0 {
		t.Fatal("no reclassifications recorded")
	}
}

func TestVTRSSingleClassUnpins(t *testing.T) {
	clock, h := host(t, 2)
	k := deploy(t, h, "calm", "swaptions", 2, 1)
	vt := NewVTRS(h)
	h.Start()
	vt.Start()
	k.StartAll()
	clock.RunUntil(300 * simtime.Millisecond)
	for _, vc := range k.VCPUs {
		if vt.Class(vc.HV()) != VTRSDefault {
			t.Fatalf("class %v", vt.Class(vc.HV()))
		}
		if vc.HV().SliceOverride() != 0 {
			t.Fatalf("default class has slice override %v", vc.HV().SliceOverride())
		}
	}
}

func TestVTRSClassStrings(t *testing.T) {
	for _, c := range []VTRSClass{VTRSDefault, VTRSLockIntensive, VTRSIOIntensive} {
		if c.String() == "" {
			t.Fatal("empty class string")
		}
	}
}

func TestCoSchedGangDispatch(t *testing.T) {
	clock, h := host(t, 4)
	a := deploy(t, h, "a", "lookbusy", 4, 1)
	b := deploy(t, h, "b", "lookbusy", 4, 2)
	cs := NewCoSched(h, 0)
	if cs.Name() != "cosched" || cs.Period != 30*simtime.Millisecond {
		t.Fatal("defaults")
	}
	h.Start()
	cs.Start()
	a.StartAll()
	b.StartAll()
	clock.RunUntil(200 * simtime.Millisecond)
	if h.Counters.Value("sched.force_preempt") == 0 {
		t.Fatal("gang rotation never forced a dispatch")
	}
	// Both domains progress (rotation is fair).
	for _, k := range []string{"a", "b"} {
		_ = k
	}
	var ranA, ranB simtime.Duration
	for _, v := range a.Dom.VCPUs {
		ranA += v.RanTotal()
	}
	for _, v := range b.Dom.VCPUs {
		ranB += v.RanTotal()
	}
	if ranA == 0 || ranB == 0 {
		t.Fatalf("ranA=%v ranB=%v", ranA, ranB)
	}
	ratio := float64(ranA) / float64(ranB)
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("gang rotation unfair: %v vs %v", ranA, ranB)
	}
}

func TestCoSchedReducesTLBStalls(t *testing.T) {
	run := func(gang bool) int64 {
		clock, h := host(t, 12)
		dedup := deploy(t, h, "dedup", "dedup", 12, 1)
		deploy(t, h, "swaptions", "swaptions", 12, 2)
		var cs *CoSched
		if gang {
			cs = NewCoSched(h, 0)
		}
		h.Start()
		if cs != nil {
			cs.Start()
		}
		for _, v := range h.VCPUs() {
			h.Wake(v, false)
		}
		clock.RunUntil(simtime.Second)
		return int64(dedup.TLBStat.Mean())
	}
	base := run(false)
	gang := run(true)
	if gang >= base {
		t.Fatalf("co-scheduling did not reduce TLB sync latency: %dns -> %dns", base, gang)
	}
}

package hv

import (
	"fmt"
	"math/bits"

	"github.com/microslicedcore/microsliced/internal/simtime"

	"github.com/microslicedcore/microsliced/internal/obs"
	"github.com/microslicedcore/microsliced/internal/trace"
)

// ---------------------------------------------------------------------------
// Runqueue helpers
// ---------------------------------------------------------------------------

// enqueue inserts v at the tail of its priority class on p's runqueue.
// Queued work may be stealable by any pool sibling, so every parked tick in
// the pool re-arms here (each either finds the work at its next tick or
// parks again).
func (h *Hypervisor) enqueue(p *PCPU, v *VCPU) {
	if v.queuedOn != nil {
		panic(fmt.Sprintf("hv: %v already queued", v))
	}
	if v.state != StateRunnable {
		panic(fmt.Sprintf("hv: enqueue of %v in state %v", v, v.state))
	}
	pos := len(p.runq)
	for i, q := range p.runq {
		if q.prio > v.prio {
			pos = i
			break
		}
	}
	p.runq = append(p.runq, nil)
	copy(p.runq[pos+1:], p.runq[pos:])
	p.runq[pos] = v
	v.queuedOn = p
	p.headPrio = p.runq[0].prio
	pl := p.pool
	pl.occ |= 1 << uint(p.slot)
	if pl.parkedMask != 0 {
		h.unparkPool(pl)
	}
}

// dequeue removes v from the runqueue it is on.
func (h *Hypervisor) dequeue(v *VCPU) {
	p := v.queuedOn
	if p == nil {
		return
	}
	for i, q := range p.runq {
		if q == v {
			p.runq = append(p.runq[:i], p.runq[i+1:]...)
			v.queuedOn = nil
			if len(p.runq) == 0 {
				p.headPrio = PrioIdle
				p.pool.occ &^= 1 << uint(p.slot)
			} else {
				p.headPrio = p.runq[0].prio
			}
			return
		}
	}
	panic(fmt.Sprintf("hv: %v marked queued on p%d but absent", v, p.ID))
}

// resortRunq re-sorts a runqueue after priorities changed (stable insertion
// sort: runqueues are short).
func resortRunq(p *PCPU) {
	q := p.runq
	for i := 1; i < len(q); i++ {
		v := q[i]
		j := i - 1
		for j >= 0 && q[j].prio > v.prio {
			q[j+1] = q[j]
			j--
		}
		q[j+1] = v
	}
	if len(q) > 0 {
		p.headPrio = q[0].prio
	}
}

func (v *VCPU) canRunOn(p *PCPU) bool {
	if v.pool != p.pool {
		return false
	}
	// Pinning applies only within the home pool; the micro pool is an
	// explicit override (the mechanism migrates across pools regardless).
	if v.pool == v.homePool && v.pin >= 0 && v.pin != p.ID {
		return false
	}
	return true
}

// homePCPU picks the pCPU of v's current pool to queue v on: the pinned
// pCPU, else the last-run pCPU if still in the pool, else the least-loaded.
func (h *Hypervisor) homePCPU(v *VCPU) *PCPU {
	pool := v.pool
	if len(pool.pcpus) == 0 {
		panic("hv: pool " + pool.Name + " has no pCPUs")
	}
	if v.pool == v.homePool && v.pin >= 0 {
		for _, p := range pool.pcpus {
			if p.ID == v.pin {
				return p
			}
		}
	}
	for _, p := range pool.pcpus {
		if p.ID == v.lastPCPU {
			return p
		}
	}
	// Least-loaded scan. When some member is fully idle (no current vCPU,
	// empty runqueue — load 0), the first such slot is the answer and the
	// occupancy masks find it in one step; ties on load 0 resolve to the
	// lowest slot exactly as the scan below would.
	if free := ^(pool.occ | pool.busyMask) & pool.memberMask(); free != 0 {
		return pool.pcpus[bits.TrailingZeros64(free)]
	}
	best := pool.pcpus[0]
	bestLoad := loadOf(best)
	for _, p := range pool.pcpus[1:] {
		if l := loadOf(p); l < bestLoad {
			best, bestLoad = p, l
		}
	}
	return best
}

func loadOf(p *PCPU) int {
	l := len(p.runq)
	if p.cur != nil {
		l++
	}
	return l
}

// ---------------------------------------------------------------------------
// Dispatch / deschedule
// ---------------------------------------------------------------------------

// setRunnable transitions v to Runnable, stamping the start of its wait so
// the invariant auditor can detect starvation. Requeues of an
// already-runnable vCPU (pool migration, re-pinning) keep the original
// stamp: moving between queues does not end the wait.
func (h *Hypervisor) setRunnable(v *VCPU) {
	if v.state != StateRunnable {
		v.runnableSince = h.Clock.Now()
		if h.Obs != nil {
			h.Obs.Transition(v.ID, obs.StateRunnable, h.Clock.Now())
		}
	}
	v.state = StateRunnable
}

// schedule picks and dispatches the next vCPU for an idle pCPU.
func (h *Hypervisor) schedule(p *PCPU) {
	if p.cur != nil || p.offline {
		return
	}
	v := h.pickNext(p)
	if v == nil {
		return // pCPU idles; a wake or migration will restart it
	}
	h.dispatch(p, v)
}

// pickNext returns the best runnable vCPU for p, stealing from pool
// siblings when they hold strictly better work (credit1's load balancing).
// The scan walks only occupied runqueues via the pool occupancy bitmask —
// ascending slot order, identical to walking pool.pcpus — and rejects whole
// queues on their cached head priority; the common every-queue-empty case is
// the single occ==0 branch.
func (h *Hypervisor) pickNext(p *PCPU) *VCPU {
	pl := p.pool
	if pl.occ == 0 {
		return nil
	}
	var local *VCPU
	for _, cand := range p.runq {
		if cand.canRunOn(p) {
			local = cand
			break
		}
	}
	localPrio := PrioIdle
	if local != nil {
		localPrio = local.prio
	}
	if !pl.NoSteal {
		var best *VCPU
		bestPrio := localPrio
		for occ := pl.occ &^ (1 << uint(p.slot)); occ != 0; occ &= occ - 1 {
			q := pl.pcpus[bits.TrailingZeros64(occ)]
			if q.headPrio >= bestPrio {
				continue // sorted: nothing better on this queue
			}
			for _, cand := range q.runq {
				if cand.prio >= bestPrio {
					break
				}
				if cand.canRunOn(p) {
					best, bestPrio = cand, cand.prio
					break
				}
			}
		}
		if best != nil {
			h.dequeue(best)
			h.hot.steal.Inc()
			h.stoleNext = true
			return best
		}
	}
	if local != nil {
		h.dequeue(local)
	}
	return local
}

// dispatch puts v on p. The guest regains control after the context-switch
// cost (skipped when p re-runs the vCPU it last ran).
func (h *Hypervisor) dispatch(p *PCPU, v *VCPU) {
	if p.cur != nil {
		panic(fmt.Sprintf("hv: dispatch on busy p%d", p.ID))
	}
	if p.offline {
		panic(fmt.Sprintf("hv: dispatch on offline p%d", p.ID))
	}
	if v.state != StateRunnable || v.queuedOn != nil {
		panic(fmt.Sprintf("hv: dispatch of %v (queued=%v)", v, v.queuedOn != nil))
	}
	if !v.canRunOn(p) {
		panic(fmt.Sprintf("hv: dispatch of %v violates placement on p%d", v, p.ID))
	}
	v.state = StateRunning
	v.pcpu = p
	v.lastPCPU = p.ID
	p.cur = v
	p.pool.busyMask |= 1 << uint(p.slot)
	if p.parked {
		// Direct dispatch onto an idle pCPU (micro migration, steal during
		// a sibling's refresh): its suppressed tick must resume to burn the
		// new vCPU's credits.
		h.unparkTick(p)
	}
	h.hot.dispatch.Inc()
	stolen := h.stoleNext
	h.stoleNext = false
	if h.Obs != nil {
		now := h.Clock.Now()
		h.Obs.Transition(v.ID, obs.StateRunning, now)
		h.Obs.WakeEnd(v.ID, now)
		h.Obs.PCPUDispatched(p.ID, stolen)
	}
	h.emit(trace.KindSchedule, v, uint64(v.prio), 0)

	slice := p.pool.Slice
	if v.sliceOverride > 0 && v.pool == v.homePool {
		// Per-vCPU quantum (vTRS-style rivals); the micro pool's own
		// 0.1 ms slice always wins while a vCPU is being accelerated.
		slice = v.sliceOverride
	}
	p.sliceEv = h.Clock.AfterLabeled(slice, "slice", p.sliceFn)

	// Re-dispatching the vCPU the pCPU just ran is free (registers and
	// cache are warm); switching pays the direct cost plus the cache
	// refill. For 30 ms slices this is ~0.05% overhead; for a 0.1 ms
	// micro slice it is the substantive price of each migration — the
	// reason over-provisioned micro pools stop paying off (paper §6.2).
	cost := h.Cfg.CtxSwitchCost + h.Cfg.ColdCacheCost
	if p.lastRan == v {
		cost = 0
	}
	p.lastRan = v
	if cost > 0 {
		v.warmupEv = h.Clock.AfterLabeled(cost, "ctxswitch", p.startFn)
	} else {
		h.startCurrent(p)
	}
}

// startCurrent hands the pCPU's current vCPU to its guest once any
// context-switch cost has elapsed. p.cur is the vCPU this fires for:
// descheduleCurrent cancels the warmup event, so cur cannot have changed
// underneath an armed p.startFn.
func (h *Hypervisor) startCurrent(p *PCPU) {
	v := p.cur
	v.warmupEv = nil
	v.runningSince = h.Clock.Now()
	v.burnAt = h.Clock.Now()
	v.Guest.OnScheduled(h.Clock.Now())
	// The guest may have synchronously yielded or blocked.
	if p.cur == v {
		h.drainPending(v)
	}
}

// descheduleCurrent removes the running vCPU from p, pairing OnScheduled
// with OnDescheduled and accumulating run time. The caller decides the
// vCPU's next state.
func (h *Hypervisor) descheduleCurrent(p *PCPU) *VCPU {
	v := p.cur
	if v == nil {
		panic(fmt.Sprintf("hv: deschedule on idle p%d", p.ID))
	}
	if p.sliceEv != nil {
		p.sliceEv.Cancel()
		p.sliceEv = nil
	}
	if v.warmupEv != nil {
		// The guest never actually started; no OnDescheduled.
		v.warmupEv.Cancel()
		v.warmupEv = nil
	} else {
		ran := h.Clock.Now() - v.runningSince
		v.ranTotal += ran
		p.busy += ran
		if h.Obs != nil {
			h.Obs.PCPURan(p.ID, ran)
		}
		h.burnCredits(v)
		v.Guest.OnDescheduled(h.Clock.Now())
	}
	// Boost lasts only until the vCPU is descheduled.
	v.boosted = false
	v.prio = v.basePrio()
	v.pcpu = nil
	p.cur = nil
	p.pool.busyMask &^= 1 << uint(p.slot)
	return v
}

func (v *VCPU) basePrio() Priority {
	if v.credits > 0 {
		return PrioUnder
	}
	return PrioOver
}

// requeuePreempted places a just-descheduled runnable vCPU: back on its
// pool's home when leaving the micro pool, on a placement-compatible pCPU
// when its pinning changed, else locally at the tail.
func (h *Hypervisor) requeuePreempted(p *PCPU, v *VCPU) {
	switch {
	case v.pool.ReturnHome && v.pool != v.homePool:
		h.sendHome(v)
	case !v.canRunOn(p):
		q := h.homePCPU(v)
		h.enqueue(q, v)
		h.tickle(q)
	default:
		h.enqueue(p, v)
	}
}

// sliceExpired preempts the current vCPU at the end of its quantum on p.
// The slice event is cancelled whenever cur changes (descheduleCurrent), so
// at fire time p.cur is exactly the vCPU the slice was armed for.
func (h *Hypervisor) sliceExpired(p *PCPU) {
	p.sliceEv = nil
	v := p.cur
	if v == nil {
		return // stale timer (should have been cancelled)
	}
	h.hot.preempt.Inc()
	h.emit(trace.KindPreempt, v, 0, 0)
	h.descheduleCurrent(p)
	h.setRunnable(v)
	h.requeuePreempted(p, v)
	h.schedule(p)
}

// ---------------------------------------------------------------------------
// Guest-visible scheduling operations
// ---------------------------------------------------------------------------

// Yield is the SCHEDOP_yield / PLE-VMEXIT path: the running vCPU gives up
// its pCPU. The vCPU stays runnable and is re-queued at the tail of its
// priority class; the OnYield hook (the micro-sliced detector) then gets a
// chance to migrate vCPUs before the pCPU reschedules.
func (h *Hypervisor) Yield(v *VCPU, reason YieldReason) {
	if v.state != StateRunning {
		panic(fmt.Sprintf("hv: yield of non-running %v", v))
	}
	p := v.pcpu
	h.countYield(v, reason)
	h.emit(trace.KindYield, v, uint64(reason), v.Guest.RIP())
	h.descheduleCurrent(p)
	h.setRunnable(v)
	h.requeuePreempted(p, v)
	if h.Hooks.OnYield != nil {
		h.Hooks.OnYield(v, reason)
	}
	h.schedule(p)
}

// Block is the SCHEDOP_block path: the guest has no runnable work (halt).
func (h *Hypervisor) Block(v *VCPU) {
	if v.state != StateRunning {
		panic(fmt.Sprintf("hv: block of non-running %v", v))
	}
	p := v.pcpu
	h.countYield(v, YieldHalt)
	h.emit(trace.KindBlock, v, 0, 0)
	h.descheduleCurrent(p)
	v.state = StateBlocked
	if h.Obs != nil {
		h.Obs.Transition(v.ID, obs.StateBlocked, h.Clock.Now())
	}
	if v.pool.ReturnHome && v.pool != v.homePool {
		// Leaving the micro pool: the vCPU simply belongs home again.
		h.leaveMicro(v)
	}
	h.schedule(p)
}

// Wake makes a blocked vCPU runnable (event-channel notification). A wake
// of a runnable or running vCPU is a no-op — which is exactly why Xen's
// BOOST cannot help a mixed-behaviour vCPU that is already on a runqueue
// (paper §4.1).
func (h *Hypervisor) Wake(v *VCPU, boost bool) {
	if v.state != StateBlocked {
		return
	}
	h.setRunnable(v)
	v.prio = v.basePrio()
	if h.Obs != nil {
		h.Obs.WakeBegin(v.ID, h.Clock.Now())
	}
	if boost && h.Cfg.BoostEnabled && !v.pool.NoBoost {
		v.prio = PrioBoost
		v.boosted = true
		h.hot.boost.Inc()
		h.emit(trace.KindBoost, v, 0, 0)
		if h.Obs != nil {
			h.Obs.Transition(v.ID, obs.StateBoosted, h.Clock.Now())
		}
	}
	h.emit(trace.KindWake, v, 0, 0)
	p := h.homePCPU(v)
	h.enqueue(p, v)
	h.tickle(p)
}

// tickle gives p a chance to pick up newly queued work, preempting a
// strictly lower-priority current vCPU.
func (h *Hypervisor) tickle(p *PCPU) {
	if p.offline {
		return
	}
	if p.cur == nil {
		h.schedule(p)
		return
	}
	if len(p.runq) == 0 || p.pool.NoPreempt {
		return
	}
	head := p.runq[0]
	if head.prio < p.cur.prio {
		cur := p.cur
		h.count("sched.tickle_preempt")
		h.descheduleCurrent(p)
		h.setRunnable(cur)
		h.requeuePreempted(p, cur)
		h.schedule(p)
	}
}

func (h *Hypervisor) countYield(v *VCPU, reason YieldReason) {
	r := int(reason)
	if r >= len(v.yieldsBy) {
		r = int(YieldOther) // matches YieldReason.String's fallback
	}
	v.yieldsBy[r]++
	h.hot.yieldBy[r].Inc()
	h.hot.yieldTotal.Inc()
	v.Dom.hot.yieldBy[r].Inc()
	v.Dom.hot.yieldTotal.Inc()
}

// ---------------------------------------------------------------------------
// Credit accounting
// ---------------------------------------------------------------------------

// pcpuTick is the per-pCPU scheduler tick. Ticks are staggered across
// pCPUs (as on real hardware): a synchronized tick would re-evaluate every
// runqueue at the same instant and produce artificial gang scheduling of
// same-priority vCPU sets.
//
// A tick that finds the pCPU fully idle — no current vCPU and an empty
// runqueue after refreshQueue's pick, i.e. pickNext found nothing in the
// whole pool this pCPU may run — parks instead of re-arming: firing it again
// would be a no-op. Every path that can make such a tick matter again
// (enqueue anywhere in the pool, direct dispatch, coming back online)
// re-arms it on its original stagger grid via unparkTick, so the observable
// tick times are exactly those of an never-parked tick.
func (h *Hypervisor) pcpuTick(p *PCPU) {
	p.tickEv = nil
	if p.offline {
		// Nothing to charge and no pool to scan; park until OnlinePCPU.
		p.parked = true
		return
	}
	if v := p.cur; v != nil {
		if v.warmupEv == nil {
			h.burnCredits(v)
		}
		// Boost lasts until the first tick lands on the running vCPU.
		// A vCPU that gained the pCPU through a boost has had its urgent
		// window; once de-boosted it must compete normally, so queued
		// work of equal or better priority preempts it here (otherwise a
		// sleep-and-wake loop converts every boost into a full slice).
		wasBoosted := v.boosted
		v.boosted = false
		v.prio = v.basePrio()
		if wasBoosted && len(p.runq) > 0 && p.runq[0].prio <= v.prio && !p.pool.NoPreempt {
			h.count("sched.deboost_preempt")
			h.descheduleCurrent(p)
			h.setRunnable(v)
			h.requeuePreempted(p, v)
		}
	}
	h.refreshQueue(p)
	if p.cur == nil && len(p.runq) == 0 {
		h.parkTick(p)
		return
	}
	p.tickEv = h.Clock.Reschedule(h.Cfg.Tick)
}

// parkTick suppresses the tick of an idle pCPU (the tick event has already
// fired and is not re-armed).
func (h *Hypervisor) parkTick(p *PCPU) {
	p.parked = true
	if p.pool != nil {
		p.pool.parkedMask |= 1 << uint(p.slot)
	}
}

// unparkTick re-arms a parked tick on the pCPU's original stagger grid: the
// next fire lands at the exact instant the tick would have fired had it
// never been parked, so credit burning and queue refreshes keep their
// bit-identical cadence.
func (h *Hypervisor) unparkTick(p *PCPU) {
	if !p.parked {
		return
	}
	p.parked = false
	if p.pool != nil {
		p.pool.parkedMask &^= 1 << uint(p.slot)
	}
	now := h.Clock.Now()
	delta := h.Cfg.Tick - (now-p.tickPhase)%h.Cfg.Tick
	p.tickEv = h.Clock.AfterLabeled(delta, "tick", p.tickFn)
}

// unparkPool re-arms every parked tick in the pool (new stealable work
// appeared; each pCPU's next tick decides for itself whether it still
// matters).
func (h *Hypervisor) unparkPool(pl *Pool) {
	for m := pl.parkedMask; m != 0; m &= m - 1 {
		h.unparkTick(pl.pcpus[bits.TrailingZeros64(m)])
	}
}

// burnCredits charges a running vCPU for its runtime since the last charge.
// Unlike credit1's tick-sampled debit (whoever happens to run at the tick
// pays a full tick), the charge is exact: in a deterministic simulation the
// sampling artifact phase-locks with slice boundaries and produces wildly
// unfair accounting, so runtime-proportional burning is the faithful-in-
// expectation substitute.
func (h *Hypervisor) burnCredits(v *VCPU) {
	now := h.Clock.Now()
	nsPerCredit := int64(h.Cfg.Tick) / int64(h.Cfg.CreditDebitPerTick)
	total := int64(now-v.burnAt) + v.debtNs
	v.credits -= int(total / nsPerCredit)
	v.debtNs = total % nsPerCredit
	v.burnAt = now
	if v.credits < h.Cfg.CreditFloor {
		v.credits = h.Cfg.CreditFloor
	}
}

// acctTick runs the global credit accounting (the master pCPU's job in
// credit1) and refreshes every runqueue.
func (h *Hypervisor) acctTick() {
	h.account()
	for _, p := range h.pcpus {
		h.refreshQueue(p)
	}
	h.Clock.Reschedule(h.Cfg.Tick * simtime.Duration(h.Cfg.TicksPerAcct))
}

// refreshQueue re-derives queued priorities and picks up work on an idle
// pCPU. Deliberately no preemption here: credit1 preempts a running vCPU
// only for boosted wakes — a runnable UNDER vCPU queued behind a running
// OVER one waits for the slice to end, which is precisely the
// full-30ms-scale virtual-time discontinuity the paper measures.
func (h *Hypervisor) refreshQueue(p *PCPU) {
	for _, q := range p.runq {
		if !q.boosted {
			q.prio = q.basePrio()
		}
	}
	resortRunq(p)
	h.schedule(p)
}

// account distributes credits: the pool of credits for one accounting
// period is split over all vCPUs in proportion to their domain's Weight
// (credit1 proportional share; every share is at least one credit so a
// zero-rounded vCPU cannot starve). Capacity is the *normal* pool's: micro
// pCPUs serve sub-millisecond visits and are not general capacity, exactly
// as in Xen's per-cpupool accounting — otherwise a CPU hog on a shrunken
// normal pool never goes OVER and priority stops protecting low-usage
// vCPUs.
func (h *Hypervisor) account() {
	if len(h.vcpus) == 0 {
		return
	}
	totalWeight := 0
	for _, v := range h.vcpus {
		totalWeight += v.Dom.Weight
	}
	if totalWeight <= 0 {
		return
	}
	total := h.Cfg.CreditDebitPerTick * h.Cfg.TicksPerAcct * len(h.normal.pcpus)
	for _, v := range h.vcpus {
		share := total * v.Dom.Weight / totalWeight
		if share < 1 {
			share = 1
		}
		v.credits += share
		if v.credits > h.Cfg.CreditCap {
			v.credits = h.Cfg.CreditCap
		}
	}
}

// Package report renders fixed-width text tables for the experiment
// harness, mirroring how the paper's tables and figure series read.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid with optional footnotes.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends one row, stringifying every cell.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	rule := strings.Repeat("-", total)
	fmt.Fprintln(w, rule)
	for i, c := range t.Columns {
		fmt.Fprintf(w, "%-*s", widths[i]+2, c)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, rule)
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) {
				fmt.Fprintf(w, "%-*s", widths[i]+2, cell)
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, rule)
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Renderer is anything that can print itself (each experiment result).
type Renderer interface {
	Render(w io.Writer)
}

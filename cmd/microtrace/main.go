// Command microtrace runs a consolidation scenario with the trace ring
// enabled (the simulator's xentrace) and prints a per-vCPU scheduling
// analysis, a yield-RIP histogram resolved through each guest's
// System.map, and optionally the raw record tail. Two subcommands work
// with Chrome trace-event JSON instead:
//
//	microtrace -vms gmake,swaptions -mode off -seconds 1
//	microtrace -vms dedup,swaptions -mode static -cores 3 -raw 40
//	microtrace export -vms gmake,swaptions -mode dynamic -o trace.json
//	microtrace validate trace.json
//	microtrace blame trace.json
//	microtrace blame blame.json
//
// blame recomputes the causal latency-attribution table offline: given an
// exported trace it rebuilds the table from the embedded cat="blame" events;
// given a blame JSON document (paperbench -blame-out) it validates the schema
// and renders the table.
//
// Exported files load directly in Perfetto (https://ui.perfetto.dev).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"github.com/microslicedcore/microsliced/internal/core"
	"github.com/microslicedcore/microsliced/internal/guest"
	"github.com/microslicedcore/microsliced/internal/hv"
	"github.com/microslicedcore/microsliced/internal/ksym"
	"github.com/microslicedcore/microsliced/internal/obs"
	"github.com/microslicedcore/microsliced/internal/report"
	"github.com/microslicedcore/microsliced/internal/simtime"
	"github.com/microslicedcore/microsliced/internal/trace"
	"github.com/microslicedcore/microsliced/internal/workload"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "export":
			exportMain(os.Args[2:])
			return
		case "validate":
			validateMain(os.Args[2:])
			return
		case "blame":
			blameMain(os.Args[2:])
			return
		}
	}
	analyzeMain(os.Args[1:])
}

// analyzeMain is the classic mode: run, analyze, print text.
func analyzeMain(args []string) {
	fs := flag.NewFlagSet("microtrace", flag.ExitOnError)
	var (
		vms     = fs.String("vms", "gmake,swaptions", "comma-separated workloads, one VM each")
		mode    = fs.String("mode", "off", "off, static, dynamic")
		cores   = fs.Int("cores", 1, "micro cores for -mode static")
		seconds = fs.Float64("seconds", 1, "simulated seconds")
		pcpus   = fs.Int("pcpus", 12, "physical CPUs")
		vcpus   = fs.Int("vcpus", 12, "vCPUs per VM")
		ring    = fs.Int("ring", 1<<20, "trace ring capacity (records)")
		raw     = fs.Int("raw", 0, "also dump the last N raw records")
	)
	fs.Parse(args)

	clock := simtime.NewClock()
	cfg := hv.DefaultConfig()
	cfg.PCPUs = *pcpus
	cfg.TraceCapacity = *ring
	h := hv.New(clock, cfg)

	tabs := map[int16]*ksym.Table{}
	var kernels []*guest.Kernel
	for i, app := range strings.Split(*vms, ",") {
		app = strings.TrimSpace(app)
		sym := ksym.Generate(1000 + uint64(i))
		k := guest.NewKernel(h, fmt.Sprintf("%s-%d", app, i), *vcpus, sym, guest.DefaultParams())
		tabs[int16(k.Dom.ID)] = sym
		if _, err := workload.New(app, k, uint64(11*(i+1))); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		kernels = append(kernels, k)
	}

	cc := core.DefaultConfig()
	switch *mode {
	case "off":
		cc.Mode = core.ModeOff
	case "static":
		cc = core.StaticConfig(*cores)
	case "dynamic":
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(1)
	}
	ctrl, err := core.Attach(h, cc)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	h.Start()
	ctrl.Start()
	for i, k := range kernels {
		if i == 0 {
			k.StartAll()
		} else {
			k := k
			clock.At(simtime.Time(i)*7*simtime.Millisecond, k.StartAll)
		}
	}
	clock.RunUntil(simtime.Duration(*seconds * float64(simtime.Second)))

	recs := h.Trace.Records()
	trace.Analyze(recs).Render(os.Stdout)

	fmt.Println("\nyield RIPs (by symbol):")
	rips := trace.YieldRIPs(recs, func(dom int16, rip uint64) string {
		if tab := tabs[dom]; tab != nil {
			return fmt.Sprintf("dom%d:%s", dom, tab.NameOf(rip))
		}
		return "?"
	})
	names := make([]string, 0, len(rips))
	for n := range rips {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return rips[names[i]] > rips[names[j]] })
	for _, n := range names {
		fmt.Printf("   %-48s %d\n", n, rips[n])
	}

	if *raw > 0 {
		fmt.Printf("\nlast %d records:\n", *raw)
		start := len(recs) - *raw
		if start < 0 {
			start = 0
		}
		for _, r := range recs[start:] {
			fmt.Println(r)
		}
	}
}

// exportMain runs the same scenario shape as analyzeMain but writes the
// trace ring as Chrome trace-event JSON.
func exportMain(args []string) {
	fs := flag.NewFlagSet("microtrace export", flag.ExitOnError)
	var (
		vms     = fs.String("vms", "gmake,swaptions", "comma-separated workloads, one VM each")
		mode    = fs.String("mode", "off", "off, static, dynamic")
		cores   = fs.Int("cores", 1, "micro cores for -mode static")
		seconds = fs.Float64("seconds", 1, "simulated seconds")
		pcpus   = fs.Int("pcpus", 12, "physical CPUs")
		vcpus   = fs.Int("vcpus", 12, "vCPUs per VM")
		ring    = fs.Int("ring", 1<<20, "trace ring capacity (records)")
		out     = fs.String("o", "trace.json", "output file (- for stdout)")
	)
	fs.Parse(args)

	clock := simtime.NewClock()
	cfg := hv.DefaultConfig()
	cfg.PCPUs = *pcpus
	cfg.TraceCapacity = *ring
	h := hv.New(clock, cfg)
	h.SetObserver(obs.New(obs.Config{}))

	names := map[int16]string{}
	var kernels []*guest.Kernel
	for i, app := range strings.Split(*vms, ",") {
		app = strings.TrimSpace(app)
		k := guest.NewKernel(h, fmt.Sprintf("%s-%d", app, i), *vcpus, ksym.Generate(1000+uint64(i)), guest.DefaultParams())
		names[int16(k.Dom.ID)] = k.Dom.Name
		if _, err := workload.New(app, k, uint64(11*(i+1))); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		kernels = append(kernels, k)
	}
	cc, err := coreConfig(*mode, *cores)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ctrl, err := core.Attach(h, cc)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	h.Start()
	ctrl.Start()
	for i, k := range kernels {
		if i == 0 {
			k.StartAll()
		} else {
			k := k
			clock.At(simtime.Time(i)*7*simtime.Millisecond, k.StartAll)
		}
	}
	clock.RunUntil(simtime.Duration(*seconds * float64(simtime.Second)))

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := obs.WriteChromeTrace(w, h.Trace.Records(), obs.ExportMeta{DomainNames: names}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *out != "-" {
		fmt.Fprintf(os.Stderr, "wrote %s (%d records; load at https://ui.perfetto.dev)\n", *out, len(h.Trace.Records()))
	}
}

func coreConfig(mode string, cores int) (core.Config, error) {
	cc := core.DefaultConfig()
	switch mode {
	case "off":
		cc.Mode = core.ModeOff
	case "static":
		cc = core.StaticConfig(cores)
	case "dynamic":
	default:
		return cc, fmt.Errorf("unknown mode %q", mode)
	}
	return cc, nil
}

// validateMain structurally checks a Chrome trace-event JSON file.
func validateMain(args []string) {
	fs := flag.NewFlagSet("microtrace validate", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: microtrace validate <trace.json>")
		os.Exit(2)
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	n, err := obs.ValidateChromeTrace(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: INVALID: %v\n", fs.Arg(0), err)
		os.Exit(1)
	}
	fmt.Printf("%s: ok (%d events)\n", fs.Arg(0), n)
}

// blameMain rebuilds (or validates) a causal latency-attribution table
// offline. It accepts either an exported Chrome trace (rows recomputed from
// the embedded cat="blame" events) or a blame JSON document itself; both are
// checked against the report.Blame schema contract before rendering.
func blameMain(args []string) {
	fs := flag.NewFlagSet("microtrace blame", flag.ExitOnError)
	var (
		scenario = fs.String("scenario", "trace", "scenario label for rows rebuilt from a trace")
		out      = fs.String("o", "", "also write the table as JSON to this file")
	)
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: microtrace blame [-scenario name] [-o blame.json] <trace.json|blame.json>")
		os.Exit(2)
	}
	buf, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	b, err := blameFromFile(buf, *scenario)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", fs.Arg(0), err)
		os.Exit(1)
	}
	if err := b.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "%s: INVALID: %v\n", fs.Arg(0), err)
		os.Exit(1)
	}
	if *out != "" {
		enc, err := json.MarshalIndent(b, "", "  ")
		if err == nil {
			err = os.WriteFile(*out, append(enc, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	b.Render(os.Stdout)
	fmt.Fprintf(os.Stderr, "%s: ok (%d span kinds)\n", fs.Arg(0), len(b.Rows))
}

// blameEvent is the shape of one embedded cat="blame" trace event.
type blameEvent struct {
	Ph   string `json:"ph"`
	Cat  string `json:"cat"`
	Name string `json:"name"`
	Args struct {
		Count    uint64  `json:"count"`
		Open     int     `json:"open"`
		TotalNs  int64   `json:"total_ns"`
		P50Ns    int64   `json:"p50_ns"`
		P99Ns    int64   `json:"p99_ns"`
		P999Ns   int64   `json:"p999_ns"`
		Blame    string  `json:"blame"`
		BlamePct float64 `json:"blame_pct"`
		Stages   []struct {
			Name    string  `json:"name"`
			TotalNs int64   `json:"total_ns"`
			Share   float64 `json:"share_pct"`
			P99Ns   int64   `json:"p99_ns"`
		} `json:"stages"`
	} `json:"args"`
}

// blameFromFile interprets buf as a blame document when it has rows, and as
// an exported Chrome trace otherwise.
func blameFromFile(buf []byte, scenario string) (*report.Blame, error) {
	var probe struct {
		Title       string            `json:"title"`
		Rows        []report.BlameRow `json:"rows"`
		Notes       []string          `json:"notes"`
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf, &probe); err != nil {
		return nil, fmt.Errorf("JSON parse: %w", err)
	}
	if len(probe.Rows) > 0 {
		return &report.Blame{Title: probe.Title, Rows: probe.Rows, Notes: probe.Notes}, nil
	}
	if len(probe.TraceEvents) == 0 {
		return nil, fmt.Errorf("neither a blame document (no rows) nor a trace (no traceEvents)")
	}
	b := &report.Blame{
		Title: "Causal latency attribution: " + scenario,
		Notes: []string{"recomputed offline from embedded blame events"},
	}
	for _, raw := range probe.TraceEvents {
		var ev blameEvent
		if err := json.Unmarshal(raw, &ev); err != nil || ev.Ph != "X" || ev.Cat != "blame" {
			continue
		}
		row := report.BlameRow{
			Scenario:    scenario,
			Kind:        ev.Name,
			Count:       ev.Args.Count,
			Open:        ev.Args.Open,
			TotalMs:     float64(ev.Args.TotalNs) / 1e6,
			P50us:       float64(ev.Args.P50Ns) / 1e3,
			P99us:       float64(ev.Args.P99Ns) / 1e3,
			P999us:      float64(ev.Args.P999Ns) / 1e3,
			Dominant:    ev.Args.Blame,
			DominantPct: ev.Args.BlamePct,
		}
		for _, st := range ev.Args.Stages {
			row.Stages = append(row.Stages, report.BlameStage{
				Name:    st.Name,
				Pct:     st.Share,
				TotalMs: float64(st.TotalNs) / 1e6,
				P99us:   float64(st.P99Ns) / 1e3,
			})
		}
		b.Rows = append(b.Rows, row)
	}
	if len(b.Rows) == 0 {
		return nil, fmt.Errorf("trace has no blame events (exported without an observer summary?)")
	}
	return b, nil
}

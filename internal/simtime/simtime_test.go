package simtime

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestClockStartsAtZero(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatalf("new clock at %v, want 0", c.Now())
	}
	if c.Pending() != 0 {
		t.Fatalf("new clock has %d pending events", c.Pending())
	}
}

func TestEventsFireInTimestampOrder(t *testing.T) {
	c := NewClock()
	var got []Time
	for _, d := range []Duration{50, 10, 30, 20, 40} {
		d := d
		c.After(d, func() { got = append(got, c.Now()) })
	}
	c.Run()
	want := []Time{10, 20, 30, 40, 50}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d fired at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestTiesFireInSchedulingOrder(t *testing.T) {
	c := NewClock()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		c.At(100, func() { order = append(order, i) })
	}
	c.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie order %v, want ascending scheduling order", order)
		}
	}
}

func TestCancelPreventsFiring(t *testing.T) {
	c := NewClock()
	fired := false
	ev := c.After(10, func() { fired = true })
	if !ev.Pending() {
		t.Fatal("event should be pending after scheduling")
	}
	if !ev.Cancel() {
		t.Fatal("Cancel of a pending event should return true")
	}
	if ev.Pending() {
		t.Fatal("event still pending after Cancel")
	}
	if ev.Cancel() {
		t.Fatal("second Cancel should return false")
	}
	c.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelOneOfManyKeepsOthers(t *testing.T) {
	c := NewClock()
	var got []int
	evs := make([]*Event, 5)
	for i := 0; i < 5; i++ {
		i := i
		evs[i] = c.After(Duration(10*(i+1)), func() { got = append(got, i) })
	}
	evs[2].Cancel()
	c.Run()
	want := []int{0, 1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestCancelAfterFireIsNoop(t *testing.T) {
	c := NewClock()
	ev := c.After(1, func() {})
	c.Run()
	if ev.Cancel() {
		t.Fatal("Cancel after fire returned true")
	}
}

func TestRunUntilStopsAtBoundary(t *testing.T) {
	c := NewClock()
	var fired []Time
	for _, d := range []Duration{10, 20, 30, 40} {
		c.After(d, func() { fired = append(fired, c.Now()) })
	}
	n := c.RunUntil(25)
	if n != 2 {
		t.Fatalf("RunUntil executed %d events, want 2", n)
	}
	if c.Now() != 25 {
		t.Fatalf("clock at %v after RunUntil(25), want 25", c.Now())
	}
	if c.Pending() != 2 {
		t.Fatalf("%d events pending, want 2", c.Pending())
	}
	// Events scheduled exactly at the boundary run.
	c.After(0, func() { fired = append(fired, c.Now()) })
	c.RunUntil(25)
	if len(fired) != 3 {
		t.Fatalf("boundary event did not run: fired=%v", fired)
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	c := NewClock()
	var seq []Time
	c.After(10, func() {
		seq = append(seq, c.Now())
		c.After(5, func() { seq = append(seq, c.Now()) })
	})
	c.Run()
	if len(seq) != 2 || seq[0] != 10 || seq[1] != 15 {
		t.Fatalf("nested scheduling gave %v, want [10 15]", seq)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	c := NewClock()
	c.After(100, func() {})
	c.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	c.At(50, func() {})
}

func TestNilCallbackPanics(t *testing.T) {
	c := NewClock()
	defer func() {
		if recover() == nil {
			t.Fatal("nil callback did not panic")
		}
	}()
	c.At(1, nil)
}

func TestNegativeAfterPanics(t *testing.T) {
	c := NewClock()
	c.After(10, func() {})
	c.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("negative After did not panic")
		}
	}()
	c.After(-5, func() {})
}

func TestNegativeAfterLabeledPanics(t *testing.T) {
	c := NewClock()
	defer func() {
		if recover() == nil {
			t.Fatal("negative AfterLabeled did not panic")
		}
	}()
	c.AfterLabeled(-1, "bad", func() {})
}

func TestZeroAfterFiresAtNow(t *testing.T) {
	c := NewClock()
	c.After(10, func() {})
	c.Run()
	fireAt := Time(-1)
	c.After(0, func() { fireAt = c.Now() })
	c.Run()
	if fireAt != 10 {
		t.Fatalf("zero-duration After fired at %v, want now (10)", fireAt)
	}
}

// Fired and cancelled events are recycled; stale handles must stay inert and
// reuse must not leak state (label, callback) between generations.
func TestEventRecycling(t *testing.T) {
	c := NewClock()
	ev1 := c.AfterLabeled(1, "first", func() {})
	c.Run()
	if ev1.Pending() {
		t.Fatal("fired event still pending")
	}
	if ev1.Cancel() {
		t.Fatal("Cancel of a recycled event returned true")
	}
	// The next schedule reuses the same Event object but must behave fresh.
	fired := false
	ev2 := c.After(5, func() { fired = true })
	if ev2 != ev1 {
		t.Fatal("expected the free list to recycle the fired event")
	}
	if !ev2.Pending() {
		t.Fatal("recycled event not pending after reschedule")
	}
	// A stale Cancel through the old handle aliases the new event by design;
	// the lifetime rule says holders must have dropped ev1 by now. What must
	// hold is that cancelling and rescheduling keeps the queue consistent.
	if !ev2.Cancel() {
		t.Fatal("Cancel of rescheduled event returned false")
	}
	c.Run()
	if fired {
		t.Fatal("cancelled recycled event fired")
	}
	if c.Pending() != 0 {
		t.Fatalf("%d events pending, want 0", c.Pending())
	}
}

// A Cancel during another event's callback must not corrupt the heap, and a
// stale Cancel of the currently firing event must be a no-op (the firing
// event is recycled only after its callback returns).
func TestCancelDuringCallback(t *testing.T) {
	c := NewClock()
	var later *Event
	var firing *Event
	otherFired := false
	firing = c.After(1, func() {
		later.Cancel()
		if firing.Cancel() {
			t.Error("Cancel of the event being fired returned true")
		}
	})
	later = c.After(2, func() { otherFired = true })
	c.After(3, func() {})
	c.Run()
	if otherFired {
		t.Fatal("event cancelled from a callback still fired")
	}
}

func TestStopHaltsExecution(t *testing.T) {
	c := NewClock()
	n := 0
	for i := 1; i <= 10; i++ {
		c.After(Duration(i), func() {
			n++
			if n == 3 {
				c.Stop()
			}
		})
	}
	c.Run()
	if n != 3 {
		t.Fatalf("ran %d events after Stop, want 3", n)
	}
	if !c.Stopped() {
		t.Fatal("Stopped() false after Stop")
	}
	if c.Pending() != 7 {
		t.Fatalf("%d pending after Stop, want 7", c.Pending())
	}
}

func TestNextEventTime(t *testing.T) {
	c := NewClock()
	if c.NextEventTime() != Infinity {
		t.Fatal("empty queue should report Infinity")
	}
	c.After(42, func() {})
	if c.NextEventTime() != 42 {
		t.Fatalf("NextEventTime=%v, want 42", c.NextEventTime())
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ns"},
		{1500, "1.500us"},
		{2 * Millisecond, "2.000ms"},
		{3 * Second, "3.000000s"},
		{Infinity, "inf"},
	}
	for _, tc := range cases {
		if got := tc.t.String(); got != tc.want {
			t.Errorf("Time(%d).String()=%q, want %q", int64(tc.t), got, tc.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	tm := 1500 * Microsecond
	if tm.Micros() != 1500 {
		t.Errorf("Micros=%v", tm.Micros())
	}
	if tm.Millis() != 1.5 {
		t.Errorf("Millis=%v", tm.Millis())
	}
	if tm.Seconds() != 0.0015 {
		t.Errorf("Seconds=%v", tm.Seconds())
	}
}

// Property: for any set of delays, events fire in sorted order and the clock
// never moves backwards.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(delays []uint16) bool {
		c := NewClock()
		var fired []Time
		last := Time(-1)
		monotonic := true
		for _, d := range delays {
			c.After(Duration(d), func() {
				if c.Now() < last {
					monotonic = false
				}
				last = c.Now()
				fired = append(fired, c.Now())
			})
		}
		c.Run()
		if len(fired) != len(delays) {
			return false
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			return false
		}
		return monotonic
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling a random subset leaves exactly the others to fire.
func TestPropertyCancelSubset(t *testing.T) {
	f := func(delays []uint8, mask uint64) bool {
		c := NewClock()
		fired := make(map[int]bool)
		evs := make([]*Event, len(delays))
		for i, d := range delays {
			i := i
			evs[i] = c.After(Duration(d), func() { fired[i] = true })
		}
		cancelled := make(map[int]bool)
		for i := range evs {
			if mask&(1<<(uint(i)%64)) != 0 && i%2 == 0 {
				evs[i].Cancel()
				cancelled[i] = true
			}
		}
		c.Run()
		for i := range evs {
			if cancelled[i] == fired[i] {
				return false // cancelled must not fire; non-cancelled must fire
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFiredCounter(t *testing.T) {
	c := NewClock()
	for i := 0; i < 17; i++ {
		c.After(Duration(i), func() {})
	}
	c.Run()
	if c.Fired() != 17 {
		t.Fatalf("Fired=%d, want 17", c.Fired())
	}
}

func BenchmarkScheduleAndFire(b *testing.B) {
	c := NewClock()
	r := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.After(Duration(r.Intn(1000)), func() {})
		c.Step()
	}
}

// BenchmarkClockScheduleFire is the regression check for the allocation-free
// steady state: a warm clock with a standing population of pending events
// must schedule and fire without allocating (free list + monomorphic heap).
func BenchmarkClockScheduleFire(b *testing.B) {
	c := NewClock()
	r := rand.New(rand.NewSource(1))
	fn := func() {}
	// Warm a standing queue so heap operations exercise real depth, and warm
	// the free list past its growth phase.
	const standing = 256
	for i := 0; i < standing; i++ {
		c.After(Duration(r.Intn(1000)+1), fn)
	}
	for i := 0; i < standing; i++ {
		c.After(Duration(r.Intn(1000)+1), fn)
		c.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.After(Duration(r.Intn(1000)+1), fn)
		c.Step()
	}
}

func BenchmarkClockScheduleCancel(b *testing.B) {
	c := NewClock()
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev := c.After(Duration(i%1000+1), fn)
		ev.Cancel()
	}
}

package simtime

import (
	"testing"
)

func TestWatchdogFiresOnLivelock(t *testing.T) {
	c := NewClock()
	var info *WatchdogInfo
	c.SetWatchdog(100, func(i WatchdogInfo) {
		info = &i
		c.Stop()
	})
	// Classic livelock: a zero-delay event rescheduling itself keeps the
	// loop busy without the clock ever advancing.
	var spin func()
	spin = func() { c.AfterLabeled(0, "spin", spin) }
	c.AfterLabeled(0, "spin", spin)
	c.RunUntil(Second)
	if info == nil {
		t.Fatal("watchdog never fired on a livelocked loop")
	}
	if !c.WatchdogFired() {
		t.Fatal("WatchdogFired() false after trigger")
	}
	if info.Now != 0 {
		t.Fatalf("livelock detected at t=%v, want 0", info.Now)
	}
	if info.SameTimeEvents < 100 {
		t.Fatalf("fired after only %d same-time events", info.SameTimeEvents)
	}
	found := false
	for _, l := range info.RecentLabels {
		if l == "spin" {
			found = true
		}
	}
	if !found {
		t.Fatalf("diagnostic labels %v miss the livelocked event", info.RecentLabels)
	}
}

func TestWatchdogToleratesAdvancingClock(t *testing.T) {
	c := NewClock()
	fired := false
	c.SetWatchdog(100, func(WatchdogInfo) { fired = true })
	// 10k events, each advancing the clock: never a livelock.
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < 10_000 {
			c.After(Microsecond, tick)
		}
	}
	c.After(Microsecond, tick)
	c.RunUntil(Second)
	if fired {
		t.Fatal("watchdog fired on an advancing clock")
	}
	if n != 10_000 {
		t.Fatalf("ran %d events", n)
	}
}

func TestWatchdogToleratesBurstsBelowLimit(t *testing.T) {
	c := NewClock()
	fired := false
	c.SetWatchdog(1000, func(WatchdogInfo) { fired = true })
	// 500 events at the same instant (below the limit), then progress.
	for i := 0; i < 500; i++ {
		c.After(Millisecond, func() {})
	}
	c.After(2*Millisecond, func() {})
	c.RunUntil(Second)
	if fired {
		t.Fatal("watchdog fired on a burst below its limit")
	}
}

func TestDelayJitterPerturbsLabeledEvents(t *testing.T) {
	c := NewClock()
	c.SetDelayJitter(func(label string, d Duration) Duration {
		if label == "tick" {
			return d + Millisecond
		}
		return d
	})
	var tickAt, otherAt Time
	c.AfterLabeled(10*Millisecond, "tick", func() { tickAt = c.Now() })
	c.AfterLabeled(10*Millisecond, "other", func() { otherAt = c.Now() })
	c.RunUntil(Second)
	if tickAt != Time(11*Millisecond) {
		t.Fatalf("jittered tick at %v, want 11ms", tickAt)
	}
	if otherAt != Time(10*Millisecond) {
		t.Fatalf("unlabeled event moved to %v", otherAt)
	}
}

func TestDelayJitterClampsNegative(t *testing.T) {
	c := NewClock()
	c.SetDelayJitter(func(label string, d Duration) Duration { return d - Second })
	fired := false
	c.After(Millisecond, func() { fired = true })
	c.RunUntil(Second)
	if !fired {
		t.Fatal("negatively jittered event never fired")
	}
}

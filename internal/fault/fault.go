// Package fault implements deterministic, seeded fault injection for
// simulation runs. A Config describes which perturbations to apply; a Plan
// pre-draws every random decision's stream from internal/rng so two runs
// with the same Config produce bit-for-bit identical fault schedules —
// fault runs are as reproducible as fault-free ones.
//
// The injectors model the adverse timing the paper's mechanism exists to
// survive: pCPU capacity loss mid-run (hot-unplug/replug — the micro-pool
// controller and credit scheduler must rebalance), delayed or dropped IPIs
// with bounded retry, scheduler-tick jitter, and lock-holder stall
// amplification inside guest critical sections.
package fault

import (
	"fmt"
	"sort"

	"github.com/microslicedcore/microsliced/internal/guest"
	"github.com/microslicedcore/microsliced/internal/hv"
	"github.com/microslicedcore/microsliced/internal/rng"
	"github.com/microslicedcore/microsliced/internal/simtime"
)

// Config selects the faults to inject. The zero value injects nothing.
type Config struct {
	// Seed seeds the fault plan's own RNG streams (decorrelated from the
	// workload streams, so enabling a fault never reshuffles workload
	// randomness).
	Seed uint64

	// OfflinePCPUs hot-unplugs this many pCPUs mid-run, each at a
	// deterministic pseudo-random point in [20%, 50%] of the run, and
	// brings each back online 20–40% of the run later. pCPU 0 is never
	// unplugged, so at least one normal-pool core always remains.
	OfflinePCPUs int

	// IPIDelayProb delays each virtual IPI with this probability by a
	// uniform duration in (0, IPIDelayMax].
	IPIDelayProb float64
	IPIDelayMax  simtime.Duration

	// IPIDropProb drops each IPI delivery attempt with this probability.
	// Dropped IPIs are retried (hv.Config.IPIRetryDelay apart, up to
	// IPIRetryLimit attempts) and then delivered unconditionally: the
	// fault perturbs timing, it never loses an interrupt outright.
	IPIDropProb float64

	// TickJitter perturbs every scheduler tick by a uniform offset in
	// [-TickJitter, +TickJitter] (clamped so delays stay non-negative).
	TickJitter simtime.Duration

	// LockStallProb amplifies each guest critical section with this
	// probability, scaling its duration by LockStallFactor — a lock
	// holder stalling mid-section, the raw material of LHP.
	LockStallProb   float64
	LockStallFactor float64
}

// Enabled reports whether the config injects any fault at all.
func (c Config) Enabled() bool {
	return c.OfflinePCPUs > 0 ||
		c.IPIDelayProb > 0 || c.IPIDropProb > 0 ||
		c.TickJitter > 0 ||
		c.LockStallProb > 0
}

// Validate rejects out-of-range parameters with a descriptive error.
func (c Config) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"IPIDelayProb", c.IPIDelayProb},
		{"IPIDropProb", c.IPIDropProb},
		{"LockStallProb", c.LockStallProb},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("fault: %s %v outside [0, 1]", p.name, p.v)
		}
	}
	if c.OfflinePCPUs < 0 {
		return fmt.Errorf("fault: OfflinePCPUs %d negative", c.OfflinePCPUs)
	}
	if c.IPIDelayProb > 0 && c.IPIDelayMax <= 0 {
		return fmt.Errorf("fault: IPIDelayProb %v needs IPIDelayMax > 0", c.IPIDelayProb)
	}
	if c.IPIDelayMax < 0 {
		return fmt.Errorf("fault: IPIDelayMax %v negative", c.IPIDelayMax)
	}
	if c.TickJitter < 0 {
		return fmt.Errorf("fault: TickJitter %v negative", c.TickJitter)
	}
	if c.LockStallProb > 0 && c.LockStallFactor < 1 {
		return fmt.Errorf("fault: LockStallFactor %v must be >= 1", c.LockStallFactor)
	}
	return nil
}

// HotplugEvent is one scheduled pCPU unplug/replug pair.
type HotplugEvent struct {
	PCPU int
	Off  simtime.Time
	On   simtime.Time
}

// Plan is an instantiated fault schedule for one run. Construct with New,
// then Attach to the hypervisor (and AttachGuest to each kernel) before
// the clock runs.
type Plan struct {
	Cfg Config

	// Hotplug is the deterministic unplug/replug schedule, fixed at New.
	Hotplug []HotplugEvent

	ipi  *rng.Source
	tick *rng.Source
	lock *rng.Source

	// HotplugErrs collects OfflinePCPU/OnlinePCPU refusals (e.g. the
	// scheduled core became the last normal-pool pCPU); the run continues.
	HotplugErrs []error

	// OnFault, when non-nil, fires when a scheduled fault actually lands
	// (hotplug events; not per-IPI draws, which would fire constantly). It is
	// consulted at event time, so it may be set after Attach. The experiment
	// harness uses it to trigger the flight recorder.
	OnFault func(event string)
}

func (p *Plan) noteFault(event string) {
	if p.OnFault != nil {
		p.OnFault(event)
	}
}

// New validates cfg and pre-draws the hotplug schedule for a run of the
// given duration on pcpus cores. The same (cfg, pcpus, duration) triple
// always yields the same plan.
func New(cfg Config, pcpus int, duration simtime.Duration) (*Plan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.OfflinePCPUs > pcpus-1 {
		return nil, fmt.Errorf("fault: OfflinePCPUs %d leaves no core online (have %d)",
			cfg.OfflinePCPUs, pcpus)
	}
	root := rng.New(cfg.Seed ^ 0xfa17_5eed_0000_0001)
	p := &Plan{
		Cfg:  cfg,
		ipi:  root.Fork(1),
		tick: root.Fork(2),
		lock: root.Fork(3),
	}
	hot := root.Fork(4)
	if cfg.OfflinePCPUs > 0 {
		// Unplug distinct cores, never pCPU 0 (ID order for readability).
		perm := hot.Perm(pcpus - 1)
		for i := 0; i < cfg.OfflinePCPUs; i++ {
			off := simtime.Time(hot.Uniform(0.2, 0.5) * float64(duration))
			on := off + simtime.Time(hot.Uniform(0.2, 0.4)*float64(duration))
			if on >= simtime.Time(duration) {
				on = simtime.Time(duration) * 9 / 10
			}
			p.Hotplug = append(p.Hotplug, HotplugEvent{PCPU: perm[i] + 1, Off: off, On: on})
		}
	}
	return p, nil
}

// Attach installs the plan's hypervisor-side injectors: the IPI fault hook,
// the tick-jitter hook on the clock, and the hotplug schedule as clock
// events. Call once, before hv.Start / clock.Run.
func (p *Plan) Attach(h *hv.Hypervisor) {
	cfg := p.Cfg
	if cfg.IPIDelayProb > 0 || cfg.IPIDropProb > 0 {
		h.Hooks.IPIFault = func(vec hv.Vector) (simtime.Duration, bool) {
			// Draw both decisions unconditionally so the stream consumed
			// per IPI is fixed regardless of outcomes.
			drop := p.ipi.Bool(cfg.IPIDropProb)
			delayed := p.ipi.Bool(cfg.IPIDelayProb)
			var delay simtime.Duration
			if delayed && cfg.IPIDelayMax > 0 {
				delay = simtime.Duration(p.ipi.Int63n(int64(cfg.IPIDelayMax))) + 1
			}
			return delay, drop
		}
	}
	if cfg.TickJitter > 0 {
		j := int64(cfg.TickJitter)
		h.Clock.SetDelayJitter(func(label string, d simtime.Duration) simtime.Duration {
			if label != "tick" && label != "acct" {
				return d
			}
			return d + simtime.Duration(p.tick.UniformDur(-j, j))
		})
	}
	if len(p.Hotplug) > 0 {
		// One chained timer walks the whole time-sorted action list instead
		// of pre-registering two closures per hotplug event: each fire
		// applies its action and re-arms the same event (Clock.Reschedule)
		// for the next one. The stable sort keeps the original creation
		// order (off before on, schedule order) for same-instant actions.
		actions := make([]hotplugAction, 0, 2*len(p.Hotplug))
		for _, ev := range p.Hotplug {
			actions = append(actions, hotplugAction{at: ev.Off, pcpu: ev.PCPU, online: false})
			actions = append(actions, hotplugAction{at: ev.On, pcpu: ev.PCPU, online: true})
		}
		sort.SliceStable(actions, func(i, j int) bool { return actions[i].at < actions[j].at })
		next := 0
		h.Clock.AtLabeled(actions[0].at, "hotplug", func() {
			a := actions[next]
			next++
			p.applyHotplug(h, a)
			if next < len(actions) {
				h.Clock.Reschedule(actions[next].at - h.Clock.Now())
			}
		})
	}
}

// hotplugAction is one entry of the flattened, time-sorted hotplug walk.
type hotplugAction struct {
	at     simtime.Time
	pcpu   int
	online bool
}

func (p *Plan) applyHotplug(h *hv.Hypervisor, a hotplugAction) {
	var err error
	verb := "hotplug-off"
	if a.online {
		verb = "hotplug-on"
		err = h.OnlinePCPU(a.pcpu)
	} else {
		err = h.OfflinePCPU(a.pcpu)
	}
	if err != nil {
		p.HotplugErrs = append(p.HotplugErrs, err)
		return
	}
	p.noteFault(fmt.Sprintf("%s p%d", verb, a.pcpu))
}

// AttachGuest installs the guest-side lock-stall injector on one kernel.
func (p *Plan) AttachGuest(k *guest.Kernel) {
	cfg := p.Cfg
	if cfg.LockStallProb <= 0 {
		return
	}
	k.LockStall = func(class string, d simtime.Duration) simtime.Duration {
		if !p.lock.Bool(cfg.LockStallProb) {
			return d
		}
		return simtime.Duration(float64(d) * cfg.LockStallFactor)
	}
}

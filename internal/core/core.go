// Package core implements the paper's contribution: flexible micro-sliced
// cores.
//
// A Controller attaches to the hypervisor's yield and interrupt-relay
// hooks. On every yield it reads the yielding vCPU's instruction pointer
// (and, depending on the yield reason, the instruction pointers of the
// domain's preempted sibling vCPUs), resolves them against the guest's
// System.map, and classifies them with the Table-3 whitelist. vCPUs caught
// inside critical OS services are migrated to the micro-sliced cpupool
// (0.1 ms slice) so the suspended service completes within a
// sub-millisecond turnaround, after which the hypervisor moves them home.
//
// The controller also implements the paper's Algorithm 1: a profiling
// phase (10 ms) measures which urgent-event type dominates — pause-loop
// exits, IPI waits, or device IRQs — and sizes the micro pool accordingly
// (iterative search for IPI-dominant phases, a single core otherwise,
// zero cores when the system is uncontended), re-evaluated every epoch.
package core

import (
	"bytes"
	"fmt"
	"strings"

	"github.com/microslicedcore/microsliced/internal/hv"
	"github.com/microslicedcore/microsliced/internal/ksym"
	"github.com/microslicedcore/microsliced/internal/metrics"
	"github.com/microslicedcore/microsliced/internal/simtime"
)

// Mode selects how the micro pool is sized.
type Mode uint8

// Controller modes.
const (
	ModeOff     Mode = iota // vanilla Xen: no detection, no micro pool
	ModeStatic              // fixed micro pool size (paper's static sweeps)
	ModeDynamic             // Algorithm 1 adaptive sizing
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeOff:
		return "off"
	case ModeStatic:
		return "static"
	case ModeDynamic:
		return "dynamic"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// Config parameterises the controller.
type Config struct {
	Mode        Mode
	StaticCores int // micro pool size in ModeStatic

	MaxMicroCores   int              // NUM_LIMIT_µCORES for the adaptive search
	ProfileInterval simtime.Duration // Algorithm 1 profile phase (10 ms)
	EpochInterval   simtime.Duration // Algorithm 1 run phase (1000 ms)

	// AccelerateIO migrates preempted recipients of relayed vIRQs and
	// reschedule vIPIs (paper §4.2, Figure 2) — the mixed-behaviour-vCPU
	// fix that BOOSTING cannot provide.
	AccelerateIO bool

	// PreciseSelection restricts sibling migration to vCPUs whose RIP
	// classifies as a critical service. Disabling it migrates any
	// preempted sibling (ablation D1).
	PreciseSelection bool

	// UserCS enables the paper's §4.4 extension: user-level critical
	// regions registered through RegisterUserRegions classify as critical
	// and are accelerated like kernel services.
	UserCS bool
}

// DefaultConfig returns the paper's dynamic configuration.
func DefaultConfig() Config {
	return Config{
		Mode:             ModeDynamic,
		MaxMicroCores:    3,
		ProfileInterval:  10 * simtime.Millisecond,
		EpochInterval:    1000 * simtime.Millisecond,
		AccelerateIO:     true,
		PreciseSelection: true,
	}
}

// StaticConfig returns a static configuration with n micro cores.
func StaticConfig(n int) Config {
	c := DefaultConfig()
	c.Mode = ModeStatic
	c.StaticCores = n
	return c
}

// eventStats is one profiling sample of urgent-event counts.
type eventStats struct {
	ipis uint64 // IPI-wait yields
	ples uint64 // pause-loop exits
	irqs uint64 // relayed device vIRQs
}

func (e eventStats) zero() bool { return e.ipis == 0 && e.ples == 0 && e.irqs == 0 }

func (e eventStats) total() uint64 { return e.ipis + e.ples + e.irqs }

// Controller is the micro-sliced-core mechanism.
type Controller struct {
	h        *hv.Hypervisor
	cfg      Config
	Counters *metrics.Set

	// symtabs holds each domain's parsed System.map. The controller only
	// ever reads (RIP, symtab) — never guest state — preserving
	// transparency.
	symtabs map[int]*ksym.Table
	// userRegions is the per-domain table of registered user-level
	// critical regions (§4.4 extension; empty unless Config.UserCS).
	userRegions map[int][]ksym.UserRegion

	// SymbolHits histograms the critical symbols observed at detection
	// time (reproduces the paper's Table 3 methodology).
	SymbolHits map[string]uint64

	// MicroGauge integrates the micro pool size over time.
	MicroGauge metrics.Gauge

	// Adaptive state (Algorithm 1).
	profileMode bool
	numMicro    int
	urEvents    []eventStats
	runDelta    eventStats // urgent events observed during the last run phase
	lastSnap    map[string]uint64
	started     bool

	hot ctrlHot // interned counters for the per-yield/per-relay hooks
}

// ctrlHot holds the controller counters incremented on every detection
// event, resolved once in Attach (the adaptive-step counters stay on the
// string-keyed registry: they fire at most once per 10 ms profile phase).
type ctrlHot struct {
	triggerPLE  *metrics.Counter
	triggerIPI  *metrics.Counter
	triggerVIRQ *metrics.Counter
	triggerVIPI *metrics.Counter
	migrAttempt *metrics.Counter
	migrOK      *metrics.Counter
}

// Attach builds a controller for h and installs its hooks. Call after all
// domains have been created (their symbol tables are parsed here) and
// before Start.
func Attach(h *hv.Hypervisor, cfg Config) (*Controller, error) {
	if cfg.MaxMicroCores <= 0 {
		cfg.MaxMicroCores = 1
	}
	c := &Controller{
		h:           h,
		cfg:         cfg,
		Counters:    metrics.NewSet(),
		symtabs:     make(map[int]*ksym.Table),
		userRegions: make(map[int][]ksym.UserRegion),
		SymbolHits:  make(map[string]uint64),
		urEvents:    make([]eventStats, cfg.MaxMicroCores+1),
	}
	c.hot = ctrlHot{
		triggerPLE:  c.Counters.Handle("trigger.ple"),
		triggerIPI:  c.Counters.Handle("trigger.ipi"),
		triggerVIRQ: c.Counters.Handle("trigger.virq"),
		triggerVIPI: c.Counters.Handle("trigger.vipi"),
		migrAttempt: c.Counters.Handle("migrate.attempt"),
		migrOK:      c.Counters.Handle("migrate.ok"),
	}
	for _, d := range h.Domains() {
		if len(d.SymbolMap) == 0 {
			return nil, fmt.Errorf("core: domain %s provided no System.map", d.Name)
		}
		tab, err := ksym.Parse(bytes.NewReader(d.SymbolMap))
		if err != nil {
			return nil, fmt.Errorf("core: parsing System.map of %s: %v", d.Name, err)
		}
		c.symtabs[d.ID] = tab
	}
	if cfg.Mode == ModeOff {
		return c, nil
	}
	h.Hooks.OnYield = c.onYield
	if cfg.AccelerateIO {
		h.Hooks.OnVIRQRelay = c.onVIRQRelay
		h.Hooks.OnVIPIRelay = c.onVIPIRelay
	}
	return c, nil
}

// Start activates the controller: static mode sizes the pool once; dynamic
// mode launches the Algorithm 1 timer. Call after hv.Start.
func (c *Controller) Start() {
	if c.started {
		panic("core: Start called twice")
	}
	c.started = true
	switch c.cfg.Mode {
	case ModeStatic:
		n := c.h.SetMicroCount(c.cfg.StaticCores)
		c.MicroGauge.Set(int64(c.h.Clock.Now()), float64(n))
	case ModeDynamic:
		c.lastSnap = c.snapshot()
		c.h.Clock.After(c.cfg.ProfileInterval, c.adaptiveStep)
	}
}

// MicroCount returns the current micro pool size.
func (c *Controller) MicroCount() int { return c.h.MicroCount() }

// Symtab returns the parsed symbol table of a domain (tests, tools).
func (c *Controller) Symtab(domID int) *ksym.Table { return c.symtabs[domID] }

// RegisterUserRegions installs a domain's user-level critical regions
// (the §4.4 interface). Ignored unless Config.UserCS is enabled.
func (c *Controller) RegisterUserRegions(domID int, regions []ksym.UserRegion) {
	if !c.cfg.UserCS {
		return
	}
	c.userRegions[domID] = append(c.userRegions[domID], regions...)
}

// classify resolves a vCPU's RIP against its domain's symbol table — or,
// for user-space addresses, against the domain's registered user-level
// critical regions.
func (c *Controller) classify(v *hv.VCPU) (string, ksym.Class) {
	rip := v.Guest.RIP()
	if !ksym.IsKernelAddr(rip) {
		if r, ok := ksym.LookupUserRegion(c.userRegions[v.DomID], rip); ok {
			return "user:" + r.Name, ksym.ClassUserCS
		}
		return "", ksym.ClassNone
	}
	tab := c.symtabs[v.DomID]
	if tab == nil {
		return "", ksym.ClassNone
	}
	sym, ok := tab.Lookup(rip)
	if !ok {
		return "", ksym.ClassNone
	}
	return sym.Name, ksym.Classify(sym.Name)
}

// ---------------------------------------------------------------------------
// Detection (paper §4.1, §4.2)
// ---------------------------------------------------------------------------

// onYield is the main detection entry point.
func (c *Controller) onYield(v *hv.VCPU, reason hv.YieldReason) {
	switch reason {
	case hv.YieldPLE:
		c.hot.triggerPLE.Inc()
		name, _ := c.classify(v)
		c.hit(name)
		// The yielder spins on a lock: accelerate preempted siblings
		// caught inside critical sections (the likely lock holder). The
		// spinner itself stays in the normal pool — running a waiter on a
		// micro core would only burn the pool's capacity.
		c.accelerateSiblings(v, false)
	case hv.YieldIPIWait:
		c.hot.triggerIPI.Inc()
		name, cls := c.classify(v)
		c.hit(name)
		if cls == ksym.ClassIPI || cls == ksym.ClassTLB {
			// One-to-many IPI (TLB shootdown): every preempted sibling
			// must run to acknowledge — accelerate them all (§4.2).
			c.accelerateSiblings(v, true)
		}
	default:
		// Halt and other voluntary yields carry no urgency.
	}
}

// migrate moves one vCPU to the micro pool, with bookkeeping.
func (c *Controller) migrate(v *hv.VCPU) {
	if v.State() != hv.StateRunnable || v.OnMicro() {
		return
	}
	c.hot.migrAttempt.Inc()
	if c.h.MigrateToMicro(v) {
		c.hot.migrOK.Inc()
	}
}

// accelerateSiblings migrates preempted siblings of v to the micro pool.
// With all set (TLB case) every preempted sibling goes; otherwise only
// those whose RIP classifies as a critical service (precise selection).
func (c *Controller) accelerateSiblings(v *hv.VCPU, all bool) {
	for _, w := range v.Dom.VCPUs {
		if w == v || w.State() != hv.StateRunnable || w.OnMicro() {
			continue
		}
		name, cls := c.classify(w)
		take := all
		if !take {
			if c.cfg.PreciseSelection {
				take = cls.Critical()
			} else {
				take = true // ablation: imprecise selection
			}
		}
		if !take {
			continue
		}
		c.hit(name)
		c.migrate(w)
	}
}

// onVIRQRelay accelerates the recipient of a device IRQ when BOOST cannot
// (the vCPU is runnable-but-preempted: the mixed-behaviour case).
func (c *Controller) onVIRQRelay(target *hv.VCPU) {
	if target.State() != hv.StateRunnable || target.OnMicro() {
		return
	}
	c.hot.triggerVIRQ.Inc()
	c.hot.migrAttempt.Inc()
	if c.h.MigrateToMicro(target) {
		c.hot.migrOK.Inc()
	}
}

// onVIPIRelay accelerates preempted recipients of reschedule IPIs (the
// I/O wakeup chain of Figure 2; call-function IPIs are handled by the
// yield path instead).
func (c *Controller) onVIPIRelay(src, target *hv.VCPU, vec hv.Vector) {
	if vec != hv.VecResched {
		return
	}
	if target.State() != hv.StateRunnable || target.OnMicro() {
		return
	}
	c.hot.triggerVIPI.Inc()
	c.hot.migrAttempt.Inc()
	if c.h.MigrateToMicro(target) {
		c.hot.migrOK.Inc()
	}
}

func (c *Controller) hit(name string) {
	if name == "" {
		return
	}
	if !strings.HasPrefix(name, "user:") && ksym.Classify(name) == ksym.ClassNone {
		return
	}
	c.SymbolHits[name]++
}

// ---------------------------------------------------------------------------
// Algorithm 1: adaptive micro pool sizing
// ---------------------------------------------------------------------------

func (c *Controller) snapshot() map[string]uint64 {
	return map[string]uint64{
		"ipi":  c.h.Counters.Value("yield.ipi"),
		"ple":  c.h.Counters.Value("yield.ple"),
		"virq": c.h.Counters.Value("virq.sent"),
	}
}

func (c *Controller) delta() eventStats {
	now := c.snapshot()
	d := eventStats{
		ipis: now["ipi"] - c.lastSnap["ipi"],
		ples: now["ple"] - c.lastSnap["ple"],
		irqs: now["virq"] - c.lastSnap["virq"],
	}
	c.lastSnap = now
	return d
}

func (c *Controller) setMicro(n int) {
	c.numMicro = c.h.SetMicroCount(n)
	c.MicroGauge.Set(int64(c.h.Clock.Now()), float64(c.numMicro))
}

// adaptiveStep is the paper's AdaptiveMicroSlicedCores procedure: each
// invocation inspects the urgent-event statistics gathered since the last
// one and decides the pool size and the next timer interval.
func (c *Controller) adaptiveStep() {
	interval := c.cfg.ProfileInterval
	if !c.profileMode {
		// Initialize the profiling phases. The run-phase event history is
		// kept: the 10 ms zero-core probe can land in a quiet window even
		// though the epoch as a whole was busy (CheckUrgentEvents of the
		// paper's Algorithm 1 consults the urEvents history for this).
		c.runDelta = c.delta()
		c.setMicro(0)
		c.profileMode = true
		c.h.Clock.After(interval, c.adaptiveStep)
		return
	}
	// Gather the statistics of urgent events for numMicro cores.
	cur := c.delta()
	c.urEvents[c.numMicro] = cur
	switch {
	case c.numMicro == 0:
		if cur.zero() {
			cur = c.runDelta // fall back to the run-phase history
		}
		if cur.zero() {
			// No urgent events occurred: stay at zero for an epoch.
			c.Counters.Counter("adaptive.idle").Inc()
			c.profileMode = false
			interval = c.cfg.EpochInterval
			break
		}
		c.setMicro(1)
		if cur.ipis > cur.ples || cur.ipis > cur.irqs {
			// IPI-dominant: keep profiling with growing pool sizes.
			c.Counters.Counter("adaptive.ipi_search").Inc()
		} else {
			// Early termination for IRQ or PLE dominant cases: one core.
			c.Counters.Counter("adaptive.single").Inc()
			c.profileMode = false
			interval = c.cfg.EpochInterval
		}
	case c.numMicro < c.cfg.MaxMicroCores:
		c.setMicro(c.numMicro + 1)
	default:
		c.setMicro(c.findBestMicroCount())
		c.Counters.Counter("adaptive.best_pick").Inc()
		c.profileMode = false
		interval = c.cfg.EpochInterval
	}
	c.h.Clock.After(interval, c.adaptiveStep)
}

// findBestMicroCount picks the profiled configuration (1..max) with the
// fewest urgent events.
func (c *Controller) findBestMicroCount() int {
	best := 1
	bestTotal := c.urEvents[1].total()
	for n := 2; n <= c.cfg.MaxMicroCores; n++ {
		if tot := c.urEvents[n].total(); tot < bestTotal {
			best, bestTotal = n, tot
		}
	}
	return best
}

package guest

import (
	"fmt"

	"github.com/microslicedcore/microsliced/internal/hv"
	"github.com/microslicedcore/microsliced/internal/obs"
	"github.com/microslicedcore/microsliced/internal/simtime"
)

// Engine architecture
//
// Each guest VCPU advances exactly one activity at a time; all state lives
// in (Thread.ph, Thread.remaining, VCPU.irq) and a single pending clock
// event (VCPU.ev). The contract with the hypervisor:
//
//   - hv calls OnScheduled when the vCPU gains a pCPU: the engine re-arms
//     the checkpointed activity (an op's remaining time, a fresh PLE spin
//     window, an interrupted handler's remainder) or picks the next thread.
//   - hv calls OnDescheduled when the vCPU loses the pCPU: suspend()
//     cancels the event and checkpoints elapsed progress.
//   - hv calls OnInterrupt only while the vCPU runs: the handler borrows
//     the CPU (suspending the current activity), possibly queueing behind
//     an in-flight handler; effects (acks, wakeups, socket delivery) apply
//     when the handler's cost elapses.
//
// Two invariants make the engine safe against the re-entrancy of a
// discrete-event world:
//
//  1. Effects are synchronous Go code and therefore atomic in virtual
//     time; a guest->hv call (IPI send, block, yield) may synchronously
//     preempt the *calling* vCPU, so every continuation after such a call
//     re-checks v.running before arming events (see initiateShootdown and
//     startNextIRQ).
//  2. Threads parked on sleeping locks (ThreadLockWait) ignore wakes that
//     are not lock grants (phaseGranted), mirroring how rwsem waiters
//     re-check their condition and re-sleep on spurious wakeups.
//
// Instruction-pointer discipline: every activity sets VCPU.rip to an
// address inside the matching System.map function (or a user-space
// address), and the value freezes when the vCPU is descheduled — that
// frozen RIP is the only guest state the hypervisor-side detector reads.

// pendingGuestIRQ is an interrupt accepted by the vCPU but not yet handled
// (a handler is already executing).
type pendingGuestIRQ struct {
	vec  hv.Vector
	data uint64
}

// irqCtx is the in-flight interrupt handler of a vCPU.
type irqCtx struct {
	vec       hv.Vector
	data      uint64
	stage     int
	pkts      []Packet
	remaining simtime.Duration
}

// VCPU is the guest-side execution context of one virtual CPU. It
// implements hv.GuestContext. A vCPU advances exactly one activity at a
// time — the current thread's operation, a spin loop, an ack wait, the
// idle loop, or an interrupt handler — and checkpoints it whenever the
// hypervisor deschedules the vCPU.
type VCPU struct {
	k    *Kernel
	hvv  *hv.VCPU
	idx  int
	live int // unfinished threads homed here

	runq []*Thread
	cur  *Thread

	running     bool
	rip         uint64
	ev          *simtime.Event
	phaseStart  simtime.Time
	needResched bool

	irq      *irqCtx
	irqBuf   irqCtx // backing store reused for every v.irq handler context
	irqQueue []pendingGuestIRQ
	irqStart simtime.Time
	savedRIP uint64

	// Pre-bound progress callbacks, created once in NewKernel so the hot
	// paths arm clock events without allocating a closure per fire. armEv
	// stashes its target in evFn; evWrapFn is the one closure the clock
	// ever sees for this vCPU.
	evFn           func()
	evWrapFn       func()
	opDoneFn       func()
	irqStageDoneFn func()
	pleFireFn      func()
	ackSpinFireFn  func()

	Yields uint64 // guest-visible count of PLE + voluntary yields
}

// HV returns the hypervisor vCPU handle.
func (v *VCPU) HV() *hv.VCPU { return v.hvv }

// Index returns the vCPU index within its domain.
func (v *VCPU) Index() int { return v.idx }

// Current returns the thread occupying the vCPU (nil when idle).
func (v *VCPU) Current() *Thread { return v.cur }

// QueueLen returns the guest run-queue length.
func (v *VCPU) QueueLen() int { return len(v.runq) }

// RIP implements hv.GuestContext.
func (v *VCPU) RIP() uint64 { return v.rip }

func (v *VCPU) now() simtime.Time { return v.k.Clock.Now() }

func (v *VCPU) setRIP(a uint64) { v.rip = a }

// cancelEv drops the pending progress event, if any.
func (v *VCPU) cancelEv() {
	if v.ev != nil {
		v.ev.Cancel()
		v.ev = nil
	}
}

// armEv schedules the single progress event of the vCPU.
func (v *VCPU) armEv(d simtime.Duration, fn func()) {
	if v.ev != nil {
		panic(fmt.Sprintf("guest: vCPU %d double-armed", v.idx))
	}
	if !v.running {
		panic(fmt.Sprintf("guest: vCPU %d armed while descheduled", v.idx))
	}
	v.phaseStart = v.now()
	v.evFn = fn
	v.ev = v.k.Clock.After(d, v.evWrapFn)
}

// ---------------------------------------------------------------------------
// hv.GuestContext
// ---------------------------------------------------------------------------

// OnScheduled resumes the checkpointed activity.
func (v *VCPU) OnScheduled(now simtime.Time) {
	v.running = true
	if v.irq != nil {
		v.resumeIRQ()
		return
	}
	if len(v.irqQueue) > 0 {
		// The vCPU was descheduled between two queued handlers.
		v.startNextIRQ()
		return
	}
	v.resume()
}

// OnDescheduled checkpoints the in-flight activity.
func (v *VCPU) OnDescheduled(now simtime.Time) {
	v.suspend(now)
	v.running = false
	if v.ev != nil {
		panic(fmt.Sprintf("guest: vCPU %d descheduled with armed event", v.idx))
	}
}

// suspend checkpoints whatever is in flight and cancels the progress event.
func (v *VCPU) suspend(now simtime.Time) {
	if v.ev == nil {
		return
	}
	elapsed := now - v.phaseStart
	if v.irq != nil {
		v.irq.remaining -= elapsed
		if v.irq.remaining < 0 {
			v.irq.remaining = 0
		}
	} else if t := v.cur; t != nil && t.ph == phaseOp {
		t.remaining -= elapsed
		if t.remaining < 0 {
			t.remaining = 0
		}
	}
	// phaseSpin / phaseAcks: the spin window simply restarts on resume.
	v.cancelEv()
}

// OnInterrupt accepts a virtual interrupt while running.
func (v *VCPU) OnInterrupt(now simtime.Time, vec hv.Vector, data uint64) {
	if !v.running {
		panic(fmt.Sprintf("guest: interrupt on idle vCPU %d", v.idx))
	}
	v.irqQueue = append(v.irqQueue, pendingGuestIRQ{vec, data})
	if v.irq != nil {
		return // current handler finishes first; queued behind it
	}
	v.suspend(now)
	v.savedRIP = v.rip
	v.startNextIRQ()
}

// ---------------------------------------------------------------------------
// Interrupt handling
// ---------------------------------------------------------------------------

func (v *VCPU) startNextIRQ() {
	if !v.running {
		// Applying the previous handler's effects preempted this vCPU
		// (e.g. an IPI-triggered wake tickled our own pCPU); OnScheduled
		// continues the queue later.
		return
	}
	if len(v.irqQueue) == 0 {
		v.irq = nil
		v.setRIP(v.savedRIP)
		v.resume()
		return
	}
	p := v.irqQueue[0]
	// Pop by copy-down so the queue's backing array keeps its capacity
	// (re-slicing would strand the head and force appends to reallocate).
	n := copy(v.irqQueue, v.irqQueue[1:])
	v.irqQueue = v.irqQueue[:n]
	v.irqBuf = irqCtx{vec: p.vec, data: p.data}
	v.irq = &v.irqBuf
	v.runIRQStage()
}

// runIRQStage arms the timer for the current handler stage.
func (v *VCPU) runIRQStage() {
	c := v.irq
	pr := v.k.Params
	switch c.vec {
	case hv.VecCallFunc:
		c.remaining = pr.TLBFlushCost
		v.setRIP(v.k.addr.flushFunc)
	case hv.VecResched:
		c.remaining = pr.ReschedIPICost
		v.setRIP(v.k.addr.schedIPI)
	case hv.VecTimer, hv.VecDisk:
		c.remaining = pr.TimerIRQCost
		v.setRIP(v.k.addr.percpuIRQ)
	case hv.VecNet:
		if c.stage == 0 {
			c.remaining = pr.IRQCost
			v.setRIP(v.k.addr.e1000)
		} else {
			// softIRQ: fetch the ring once, pay per packet.
			if v.k.nic != nil {
				c.pkts = v.k.nic.Fetch(64)
			}
			n := len(c.pkts)
			if n == 0 {
				v.finishIRQ()
				return
			}
			c.remaining = simtime.Duration(n) * pr.SoftIRQPerPkt
			v.setRIP(v.k.addr.netRx)
		}
	default:
		panic(fmt.Sprintf("guest: unknown vector %v", c.vec))
	}
	v.armEv(c.remaining, v.irqStageDoneFn)
}

// resumeIRQ re-arms an interrupted handler after rescheduling.
func (v *VCPU) resumeIRQ() {
	v.armEv(v.irq.remaining, v.irqStageDoneFn)
}

// irqStageDone applies the handler's effects and advances.
func (v *VCPU) irqStageDone() {
	c := v.irq
	switch c.vec {
	case hv.VecCallFunc:
		v.k.ackShootdown(int(c.data))
	case hv.VecResched, hv.VecTimer, hv.VecDisk:
		t := v.k.threads[int(c.data)]
		if t.vc != v {
			panic(fmt.Sprintf("guest: %v IRQ for thread on vCPU %d handled on %d",
				c.vec, t.vc.idx, v.idx))
		}
		v.wakeLocal(t, true)
	case hv.VecNet:
		if c.stage == 0 {
			c.stage = 1
			v.runIRQStage()
			return
		}
		for _, p := range c.pkts {
			sock, ok := v.k.sockets[p.Flow]
			if !ok {
				if o := v.k.HV.Obs; o != nil {
					o.Cancel(p.Span) // dropped: its net_rx span never closes
					o.Cancel(p.ReqSpan)
				}
				continue // no listener; drop
			}
			if o := v.k.HV.Obs; o != nil {
				// hardirq + softirq processing ends here; what follows is
				// socket-buffer wait until the application consumes.
				o.Stage(p.Span, obs.NetStageSoftirq, v.now())
				o.Stage(p.ReqSpan, obs.ReqStageSoftirq, v.now())
			}
			if w := sock.deliver(p); w != nil {
				v.k.wakeThreadFrom(v, w)
			}
		}
	}
	v.finishIRQ()
}

func (v *VCPU) finishIRQ() {
	v.irq = nil
	v.startNextIRQ()
}

// ---------------------------------------------------------------------------
// Thread scheduling and op execution
// ---------------------------------------------------------------------------

// preemptible reports whether the current thread may be switched away at
// this instant (user computation with no lock held).
func (v *VCPU) preemptible() bool {
	t := v.cur
	if t == nil {
		return true
	}
	if t.lock != nil || t.shoot != nil {
		return false
	}
	return t.ph == phaseOp && t.op.Kind == OpCompute
}

// wakeLocal makes a thread of this vCPU runnable. With preempt set, the
// woken thread is placed at the head of the queue and preempts a
// preemptible current thread (Linux wakeup-preemption).
func (v *VCPU) wakeLocal(t *Thread, preempt bool) {
	switch t.state {
	case ThreadReady, ThreadRunning, ThreadDone:
		return
	case ThreadLockWait:
		// Only the lock grant may end this wait (a spurious wake would
		// abandon the waiter entry); rwsem waiters re-check and re-sleep,
		// which collapses to ignoring the wake here.
		if t.ph != phaseGranted {
			return
		}
	}
	t.state = ThreadReady
	if preempt {
		// Insert at the head in place (no fresh slice): shift right by one.
		v.runq = append(v.runq, nil)
		copy(v.runq[1:], v.runq)
		v.runq[0] = t
		v.needResched = true
	} else {
		v.runq = append(v.runq, t)
	}
}

// resume drives the vCPU: honours pending preemption, picks a thread, and
// advances it — or idles/halts.
func (v *VCPU) resume() {
	if !v.running || v.irq != nil {
		return
	}
	if v.ev != nil {
		return // activity already in flight
	}
	if v.needResched && v.cur != nil && v.preemptible() && len(v.runq) > 0 {
		prev := v.cur
		prev.state = ThreadReady
		v.cur = nil
		// Preempted thread resumes right after the waker (runq slot 1).
		v.runq = append(v.runq, nil)
		copy(v.runq[2:], v.runq[1:len(v.runq)-1])
		v.runq[1] = prev
	}
	v.needResched = false
	if v.cur == nil {
		v.cur = v.pickNext()
	}
	if v.cur == nil {
		v.idle()
		return
	}
	v.advance()
}

func (v *VCPU) pickNext() *Thread {
	for len(v.runq) > 0 {
		t := v.runq[0]
		// Copy-down pop keeps the backing array's capacity for re-appends.
		n := copy(v.runq, v.runq[1:])
		v.runq = v.runq[:n]
		if t.state != ThreadReady {
			continue
		}
		t.state = ThreadRunning
		t.switchedInAt = v.now()
		return t
	}
	return nil
}

// idle halts the vCPU — unless interrupts are pending, in which case the
// hypervisor is about to drain them into handlers.
func (v *VCPU) idle() {
	v.setRIP(v.k.addr.halt)
	if v.hvv.PendingCount() > 0 {
		return // dispatch will drain; handlers will wake threads
	}
	v.k.HV.Block(v.hvv)
}

// advance progresses the current thread according to its phase.
func (v *VCPU) advance() {
	t := v.cur
	switch t.ph {
	case phaseIdle:
		v.nextOp()
	case phaseOp:
		v.setRIP(v.opRIP(t))
		v.armEv(t.remaining, v.opDoneFn)
	case phaseSpin:
		if t.lock != nil && t.lock.user {
			v.setRIP(UserSpinRIP)
		} else {
			v.setRIP(v.k.addr.spinSlow)
		}
		if o := v.k.HV.Obs; o != nil {
			// A spin window is (re)starting: everything since the last mark
			// — the PLE yield and the descheduled gap — was waiter
			// preemption, not spinning.
			o.Stage(t.lockSpan, obs.LockStagePreempt, v.now())
		}
		v.armEv(v.k.Params.PLEWindow, v.pleFireFn)
	case phaseGranted:
		v.enterCS(t)
	case phaseAcks:
		v.setRIP(v.k.addr.callMany)
		v.armEv(v.k.Params.AckSpinYield, v.ackSpinFireFn)
	case phaseAcksDone:
		v.finishShootdown(t)
	case phaseRestart:
		v.startOp(t)
	default:
		panic(fmt.Sprintf("guest: bad phase %d", t.ph))
	}
}

// nextOp fetches and starts the thread's next operation, applying the
// guest round-robin quantum at op boundaries.
func (v *VCPU) nextOp() {
	t := v.cur
	if len(v.runq) > 0 && v.now()-t.switchedInAt >= v.k.Params.GuestSlice {
		t.state = ThreadReady
		v.runq = append(v.runq, t)
		v.cur = v.pickNext()
		if v.cur == nil {
			v.idle()
			return
		}
		t = v.cur
	}
	op := t.prog.Next(v.now())
	t.op = op
	t.opStage = 0
	v.startOp(t)
}

func (v *VCPU) opRIP(t *Thread) uint64 {
	switch t.op.Kind {
	case OpCompute:
		return v.k.addr.user
	case OpKernel:
		if t.op.Fn != "" {
			return v.k.Sym.InnerAddr(t.op.Fn)
		}
		return v.k.addr.user
	case OpLock:
		return t.lock.body
	case OpTLBFlush:
		return v.k.addr.flushOthers
	case OpRecv:
		return v.k.addr.user
	case OpSend:
		return v.k.addr.netRx
	case OpWake:
		return v.k.addr.ttwu
	default:
		return v.k.addr.user
	}
}

// startOp begins the freshly fetched operation.
func (v *VCPU) startOp(t *Thread) {
	op := t.op
	switch op.Kind {
	case OpCompute, OpKernel, OpWake, OpSend:
		t.ph = phaseOp
		t.remaining = op.Dur
		v.advance()
	case OpLock:
		t.lock = op.Lock
		if op.Lock.tryAcquire(t) {
			v.enterCS(t)
			return
		}
		v.contendLock(t)
	case OpTLBFlush:
		if op.Lock != nil {
			// munmap shape: the shootdown runs under the address-space
			// lock, so a stalled flush serialises every sibling's
			// mmap/munmap (the compounding the paper describes in §3.1).
			t.lock = op.Lock
			if op.Lock.tryAcquire(t) {
				v.enterCS(t)
				return
			}
			v.contendLock(t)
			return
		}
		// Stage 1: initiator-side setup cost at native_flush_tlb_others.
		t.opStage = 1
		t.ph = phaseOp
		t.remaining = v.k.Params.TLBInitCost
		v.advance()
	case OpSleep:
		t.state = ThreadSleeping
		v.cur = nil
		v.k.Clock.After(op.Dur, t.timerFn)
		v.resume()
	case OpRecv:
		sock := op.Sock
		if sock.Len() == 0 {
			t.state = ThreadBlockedIO
			t.ph = phaseRestart // retry the recv when woken
			if sock.waiter != nil && sock.waiter != t {
				panic("guest: socket already has a waiter")
			}
			sock.waiter = t
			v.cur = nil
			v.resume()
			return
		}
		t.ph = phaseOp
		t.remaining = v.k.Params.RecvConsume
		v.advance()
	case OpDisk:
		if v.k.disk == nil {
			panic("guest: OpDisk without an attached BlockDevice")
		}
		t.state = ThreadBlockedIO
		v.cur = nil
		v.k.disk.Submit(op.Bytes, op.Write, t.diskFn)
		v.resume()
	case OpExit:
		t.state = ThreadDone
		t.ph = phaseIdle
		v.cur = nil
		v.live--
		if v.k.OnThreadExit != nil {
			v.k.OnThreadExit(t)
		}
		v.resume()
	default:
		panic(fmt.Sprintf("guest: unknown op kind %v", op.Kind))
	}
}

// contendLock parks t on the lock it failed to acquire: spinning (qspinlock)
// or blocking (rwsem/mutex), per the lock's semantics.
func (v *VCPU) contendLock(t *Thread) {
	t.spinStart = v.now()
	if t.lock.sleeping {
		t.state = ThreadLockWait
		v.cur = nil
		v.resume()
		return
	}
	t.ph = phaseSpin
	v.advance()
}

// enterCS begins the critical section of an acquired lock. For a locked
// TLB flush the "critical section" is the shootdown itself.
func (v *VCPU) enterCS(t *Thread) {
	t.ph = phaseOp
	if t.op.Kind == OpTLBFlush {
		t.opStage = 1
		t.remaining = v.k.Params.TLBInitCost
		v.setRIP(v.k.addr.flushOthers)
		v.armEv(t.remaining, v.opDoneFn)
		return
	}
	t.opStage = 1
	t.remaining = t.lock.holdDuration(t.op.Dur)
	v.setRIP(t.lock.body)
	v.armEv(t.remaining, v.opDoneFn)
}

// opDone applies the completed operation's effects.
func (v *VCPU) opDone() {
	t := v.cur
	now := v.now()
	if t.op.Kind == OpTLBFlush && t.opStage == 1 {
		v.initiateShootdown(t)
		return
	}
	// Capture the completion hook before the effects: a wake effect can
	// synchronously re-dispatch this vCPU and advance t.op to the next op
	// (see the comment below) — the hook must be the completed op's.
	done := t.op.Done
	// Commit completion before applying effects: an effect that wakes a
	// sibling (lock release, explicit wake, packet consume) can boost-tickle
	// this very pCPU, preempting and synchronously re-dispatching this vCPU
	// mid-effect. The re-entered resume must find the op already finished —
	// with ph still phaseOp it would re-arm a zero-length event and replay
	// the effect (double release, double transmit).
	t.ph = phaseIdle
	t.OpsDone++
	switch t.op.Kind {
	case OpLock:
		lk := t.lock
		t.lock = nil
		lk.release(t, now)
	case OpWake:
		if t.op.Target != nil {
			v.k.wakeThreadFrom(v, t.op.Target)
		}
	case OpSend:
		if v.k.nic != nil {
			v.k.nic.Transmit(t.op.Bytes, now)
		}
	case OpRecv:
		sock := t.op.Sock
		if sock.Len() == 0 {
			panic("guest: recv completion with empty socket")
		}
		p := sock.buf[0]
		sock.buf = sock.buf[1:]
		sock.Consumed++
		if o := v.k.HV.Obs; o != nil {
			o.End(p.Span, now) // net_rx closes at application-level consume
			// The request span stays open: socket wait ends here, service
			// begins.
			o.Stage(p.ReqSpan, obs.ReqStageSock, now)
		}
		if sock.OnAppConsume != nil {
			sock.OnAppConsume(p, now)
		}
	}
	if done != nil {
		done(now)
	}
	v.resume()
}

// pleFire is the pause-loop-exit path: the spinner burnt a full PLE window.
func (v *VCPU) pleFire() {
	if o := v.k.HV.Obs; o != nil {
		if t := v.cur; t != nil {
			// The full PLE window just burnt is pure spin time.
			o.Stage(t.lockSpan, obs.LockStageSpin, v.now())
		}
	}
	v.Yields++
	v.k.HV.Yield(v.hvv, hv.YieldPLE)
}

// ackSpinFire is the voluntary yield while waiting for shootdown acks
// (the xen_smp_send_call_function path of a PV guest).
func (v *VCPU) ackSpinFire() {
	v.Yields++
	v.k.HV.Yield(v.hvv, hv.YieldIPIWait)
}

// granted is called by SpinLock.release when this thread wins the lock.
func (t *Thread) granted(now simtime.Time) {
	v := t.vc
	if v.cur != t {
		panic("guest: lock granted to a non-current thread")
	}
	if v.running && v.irq == nil && v.ev != nil {
		// The spinner is live: stop spinning, enter the CS immediately.
		v.cancelEv()
		v.enterCS(t)
		return
	}
	// LWP: the grantee's vCPU is preempted (or in a handler); it enters
	// the critical section when it next runs. The grant makes this thread
	// the lock holder poised at the first CS instruction, so expose the
	// critical-section RIP: the hypervisor-side detector must see a
	// preempted *holder*, not a spinner.
	t.ph = phaseGranted
	if v.irq != nil {
		v.savedRIP = t.lock.body
	} else {
		v.setRIP(t.lock.body)
	}
}

// initiateShootdown sends the call-function IPI to all live sibling vCPUs
// and transitions the initiator into the ack wait.
func (v *VCPU) initiateShootdown(t *Thread) {
	// Snapshot the live set (Linux's mm_cpumask read) into the kernel's
	// reusable buffer before sending: an IPI's wake effects can retire a
	// sibling's last thread mid-loop, and the shootdown targets the mask as
	// of flush initiation. initiateShootdown only runs from op-completion
	// clock events, so the snapshot can never be clobbered re-entrantly.
	live := v.k.shootBuf[:0]
	for _, w := range v.k.VCPUs {
		if w.live > 0 {
			live = append(live, w)
		}
	}
	v.k.shootBuf = live
	targets := 0
	for _, w := range live {
		if w == v {
			continue
		}
		targets++
		v.k.HV.SendVIPI(v.hvv, w.hvv, hv.VecCallFunc, uint64(v.idx))
	}
	if targets == 0 {
		v.k.TLBStat.Observe(0)
		v.finishShootdown(t)
		return
	}
	t.opStage = 2
	t.shoot = &shootdown{pendingAcks: targets, start: v.now()}
	t.ph = phaseAcks
	// Sending the IPIs can wake a blocked sibling whose boost preempts
	// this very vCPU; arm the ack spin only if we are still on a pCPU.
	if v.running && v.irq == nil && v.ev == nil && v.cur == t {
		v.advance()
	}
}

// finishShootdown completes the TLB flush op after all acks arrived,
// releasing the address-space lock if the flush ran under one.
func (v *VCPU) finishShootdown(t *Thread) {
	t.shoot = nil
	// Commit completion before the release: a sleeping-lock release wakes
	// the grantee through a reschedule IPI, which can boost-preempt this
	// very vCPU and synchronously re-dispatch it. With ph still phaseAcksDone
	// the re-entered advance would run finishShootdown again and
	// double-release the lock.
	t.ph = phaseIdle
	t.OpsDone++
	if lk := t.lock; lk != nil {
		t.lock = nil
		lk.release(t, v.now())
	}
	v.resume()
}

// ackShootdown is invoked by a recipient's flush handler; initIdx names the
// initiating vCPU.
func (k *Kernel) ackShootdown(initIdx int) {
	v := k.VCPUs[initIdx]
	t := v.cur
	if t == nil || t.shoot == nil {
		return // initiator already satisfied (stale ack); nothing to do
	}
	t.shoot.pendingAcks--
	if t.shoot.pendingAcks > 0 {
		return
	}
	k.TLBStat.Observe(int64(k.Clock.Now() - t.shoot.start))
	if v.running && v.irq == nil && v.ev != nil && t.ph == phaseAcks {
		v.cancelEv()
		v.finishShootdown(t)
		return
	}
	t.ph = phaseAcksDone
}

// wakeThreadFrom wakes t from the context of vCPU src. A cross-vCPU wake
// goes through the reschedule-IPI path — the mechanism whose delay the
// paper measures.
func (k *Kernel) wakeThreadFrom(src *VCPU, t *Thread) {
	switch t.state {
	case ThreadReady, ThreadRunning, ThreadWaking, ThreadDone:
		return
	case ThreadLockWait:
		if t.ph != phaseGranted {
			return // spurious wake of an rwsem waiter: re-checked, re-slept
		}
	}
	if t.vc == src {
		src.wakeLocal(t, true)
		return
	}
	t.state = ThreadWaking
	k.HV.SendVIPI(src.hvv, t.vc.hvv, hv.VecResched, uint64(t.ID))
}

// Package experiment reproduces every table and figure of the paper's
// evaluation (§3, §6) on the simulated testbed: a 12-pCPU host running the
// credit scheduler, consolidating 12-vCPU VMs at a 2:1 ratio, with the
// micro-sliced-core mechanism off (Baseline), statically sized (Static
// 1..6), or adaptive (Dynamic, Algorithm 1).
package experiment

import (
	"fmt"
	"io"
	"runtime/debug"

	"github.com/microslicedcore/microsliced/internal/core"
	"github.com/microslicedcore/microsliced/internal/fault"
	"github.com/microslicedcore/microsliced/internal/guest"
	"github.com/microslicedcore/microsliced/internal/hv"
	"github.com/microslicedcore/microsliced/internal/ksym"
	"github.com/microslicedcore/microsliced/internal/metrics"
	"github.com/microslicedcore/microsliced/internal/obs"
	"github.com/microslicedcore/microsliced/internal/recovery"
	"github.com/microslicedcore/microsliced/internal/simtime"
	"github.com/microslicedcore/microsliced/internal/vdisk"
	"github.com/microslicedcore/microsliced/internal/vnet"
	"github.com/microslicedcore/microsliced/internal/workload"
)

// Defaults matching the paper's testbed (§6.1).
const (
	DefaultPCPUs    = 12
	DefaultVCPUs    = 12
	DefaultDuration = 3 * simtime.Second
)

// VMSpec describes one consolidated virtual machine.
type VMSpec struct {
	Name  string
	App   string // workload catalog name
	VCPUs int
	Seed  uint64
	// Disk attaches a virtual block device (required by storage-bound
	// workloads such as "fileserver").
	Disk bool
	// Weight overrides the domain's credit1 proportional-share weight
	// (0: hv.DefaultWeight).
	Weight int
	// Pins pins vCPU j of this VM to pCPU Pins[j]. Negative entries leave
	// that vCPU unpinned; a slice shorter than the vCPU count leaves the
	// remainder unpinned.
	Pins []int
	// Serve attaches an open-loop request-serving workload: a virtual NIC,
	// a seeded Poisson arrival process (vnet.RequestFlow) and one server
	// thread per vCPU (workload.RequestServer). Composes with App — the
	// app's threads co-run inside the same VM, the paper's Figure 9 mixed
	// shape. App may be empty for a pure serving VM.
	Serve *ServeSpec
}

// DefaultServeSLO is the end-to-end latency objective when ServeSpec.SLO
// is 0.
const DefaultServeSLO = 5 * simtime.Millisecond

// ServeSpec configures a VM's open-loop request-serving workload.
type ServeSpec struct {
	RatePerSec int              // mean offered load, Poisson arrivals (required)
	ReqBytes   int              // request packet size (0: vnet.DefaultReqBytes)
	SLO        simtime.Duration // end-to-end latency objective (0: DefaultServeSLO)
	RingCap    int              // NIC RX ring capacity (0: vnet.DefaultRingSize)
	Seed       uint64
	Profile    *workload.ServeProfile // per-request work (nil: defaults)
}

// Setup is a complete scenario.
type Setup struct {
	PCPUs    int
	VMs      []VMSpec
	Core     core.Config
	Duration simtime.Duration
	// StaggerStart delays VM i's start by i*7ms, letting co-runner
	// scheduling phases drift as they do on real hardware.
	StaggerStart bool
	// HVConfig, when non-nil, overrides the hypervisor configuration
	// (ablation studies: slice lengths, runqueue limits, migrate-back).
	HVConfig *hv.Config
	// Rival, when set, installs a prior-work system (internal/rivals) in
	// place of the paper's mechanism; Core should be ModeOff.
	Rival Rival
	// Faults, when non-nil and enabled, injects the configured
	// deterministic faults (internal/fault) into the run.
	Faults *fault.Config
	// Audit arms the scheduler invariant auditor; violations land in
	// Result.Violations. Enabled automatically when Faults are active.
	Audit bool
	// Recovery, when non-nil, attaches the self-healing supervisor
	// (internal/recovery): detect→repair of starved vCPUs, lost IPIs and
	// capacity loss. Repairs land in Result.Repairs; with a quiesce point
	// in Faults, the quiesce→last-repair time lands in Result.MTTR.
	Recovery *recovery.Config
	// Obs, when non-nil, attaches the observability layer: state
	// accounting, latency spans and the flight recorder. The end-of-run
	// read-out lands in Result.Telemetry.
	Obs *obs.Config
	// TraceExport, when non-nil, receives the run's trace ring as Chrome
	// trace-event JSON after the clock stops. Implies a large trace ring.
	TraceExport io.Writer
	// DomRelabel, when non-nil, permutes domain IDs after every domain is
	// created (hv.RelabelDomains): the VM in slot i gets domain ID
	// DomRelabel[i]. Domain IDs are pure labels, so a relabelled run must
	// produce identical results slot for slot — the metamorphic relation
	// internal/check exercises.
	DomRelabel []int
	// PostCheck, when non-nil, runs after the clock stops and the Result is
	// collected, with the live simulation world still intact. A returned
	// error fails the Run. The conformance harness hangs its conservation
	// checks here.
	PostCheck func(*PostRun) error
}

// PostRun is the post-run view handed to Setup.PostCheck and the
// process-wide check hook (SetCheckHook): the settled Setup and Result plus
// the live hypervisor, the observer (nil when the run had none) and the
// final virtual time.
type PostRun struct {
	Setup  *Setup
	Result *Result
	HV     *hv.Hypervisor
	Obs    *obs.Observer
	Ctrl   *core.Controller
	Now    simtime.Time
}

// watchdogLimit is the livelock threshold: this many consecutive events at
// an unchanged virtual time means the event loop is spinning without
// progress. Real runs stay orders of magnitude below it (a full 12-pCPU
// scheduling round at one instant is tens of events).
const watchdogLimit = 1_000_000

// VMResult carries one VM's measurements.
type VMResult struct {
	Name     string
	App      string
	Units    uint64
	Yields   YieldBreakdown
	TLB      *metrics.Histogram
	LockStat map[string]*metrics.Histogram
	RanTotal simtime.Duration
	// VCPURan is each vCPU's execution time — the per-vCPU progress
	// record fault tests assert on (no vCPU may starve under injection).
	VCPURan []simtime.Duration
	// Requests is the serving read-out (nil unless the VM had a Serve
	// spec).
	Requests *RequestStats
}

// RequestStats is the end-of-run read-out of a VM's serving workload. The
// counters and residency terms come from independent ledgers (arrival
// flow, NIC ring, in-flight softirq batches, sockets, server pool), so
// internal/check can reconcile them against each other: offered ==
// dropped + admitted; admitted == ring + softirq + delivered; delivered ==
// consumed + socket-resident; consumed == completed + in-service.
type RequestStats struct {
	Offered   uint64 // arrivals fired (intended instants)
	Admitted  uint64 // accepted into the NIC ring
	Dropped   uint64 // tail-dropped at the full ring — SLO violations
	Completed uint64 // replies transmitted
	Late      uint64 // completed past the SLO
	InFlight  uint64 // offered - dropped - completed at run end

	RingResident    int    // still in the NIC ring
	SoftirqResident int    // fetched, not yet delivered (mid-softirq)
	SockResident    int    // delivered, not yet consumed
	InService       int    // consumed, reply not yet transmitted
	Delivered       uint64 // Σ socket deliveries
	Consumed        uint64 // Σ socket consumes

	SLO simtime.Duration
	// Latency quantiles (ns) of completed requests, measured from the
	// intended arrival instant (coordinated-omission-free).
	P50, P99, P999, Max int64

	OfferedRPS float64
	GoodputRPS float64 // completed-within-SLO requests per second of run time
}

// YieldBreakdown decomposes yields by source (paper Figure 7).
type YieldBreakdown struct {
	IPI   uint64
	PLE   uint64
	Halt  uint64
	Other uint64
}

// Total sums all yield sources.
func (y YieldBreakdown) Total() uint64 { return y.IPI + y.PLE + y.Halt + y.Other }

// Result is the outcome of one scenario run.
type Result struct {
	VMs        []VMResult
	HV         map[string]uint64
	Core       map[string]uint64
	SymbolHits map[string]uint64
	MicroAvg   float64
	Duration   simtime.Duration
	// Violations holds what the invariant auditor found (empty unless
	// Setup.Audit or fault injection was enabled).
	Violations []hv.InvariantError
	// FaultErrs records injected faults the hypervisor refused to apply
	// (e.g. a hotplug landing on the last normal-pool pCPU).
	FaultErrs []string
	// Telemetry is the observability read-out (nil unless Setup.Obs was
	// set): span latency quantiles, per-vCPU/pCPU residency, flight dumps.
	Telemetry *obs.Summary
	// Repairs is the supervisor's retained event ring and RepairCount its
	// exact total (zero-valued unless Setup.Recovery was set).
	Repairs     []recovery.RepairEvent
	RepairCount uint64
	// MTTR is the quiesce→last-repair convergence time (0 without a
	// supervisor, without a fault quiesce point, or when no repair was
	// needed after quiesce).
	MTTR simtime.Duration
	// LostIPIs is the number of interrupts still in the hypervisor's
	// lost-IPI ledger at run end — a converged recovery run drains it to 0.
	LostIPIs int
	// Decisions is the adaptive controller's retained decision audit ring
	// (oldest first) and DecisionCount its exact total including aged-out
	// entries. Decisions carry no domain identifiers, so the conformance
	// harness requires the trail to be bit-identical across the relabel,
	// observer and trace metamorphic relations.
	Decisions     []core.DecisionEvent
	DecisionCount uint64
}

// VM returns the result of the named VM.
func (r *Result) VM(name string) *VMResult {
	for i := range r.VMs {
		if r.VMs[i].Name == name {
			return &r.VMs[i]
		}
	}
	return nil
}

// Run executes a scenario to completion and collects the measurements.
// Panics anywhere inside the simulation are recovered and returned as
// errors, so one corrupt scenario cannot take down a whole grid.
func Run(s Setup) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("experiment: panic in scenario: %v\n%s", r, debug.Stack())
		}
	}()
	if s.PCPUs == 0 {
		s.PCPUs = DefaultPCPUs
	}
	if s.PCPUs < 0 {
		return nil, fmt.Errorf("experiment: PCPUs %d negative", s.PCPUs)
	}
	if s.Duration == 0 {
		s.Duration = DefaultDuration
	}
	if s.Duration < 0 {
		return nil, fmt.Errorf("experiment: Duration %v negative", s.Duration)
	}
	for _, vm := range s.VMs {
		if vm.VCPUs < 0 {
			return nil, fmt.Errorf("experiment: VM %s: VCPUs %d negative", vm.Name, vm.VCPUs)
		}
		if vm.Weight < 0 {
			return nil, fmt.Errorf("experiment: VM %s: Weight %d negative", vm.Name, vm.Weight)
		}
		for j, pin := range vm.Pins {
			if pin >= s.PCPUs {
				return nil, fmt.Errorf("experiment: VM %s: vCPU %d pinned to pCPU %d of %d", vm.Name, j, pin, s.PCPUs)
			}
		}
	}
	if s.Obs == nil {
		s.Obs = defaultObs.Load()
	}
	clock := simtime.NewClock()
	cfg := hv.DefaultConfig()
	if s.HVConfig != nil {
		cfg = *s.HVConfig
	}
	cfg.PCPUs = s.PCPUs
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("experiment: %w", err)
	}

	var plan *fault.Plan
	faultsOn := s.Faults != nil && s.Faults.Enabled()
	if faultsOn {
		plan, err = fault.New(*s.Faults, s.PCPUs, s.Duration)
		if err != nil {
			return nil, err
		}
		s.Audit = true
	}
	if (s.Audit || s.Obs != nil) && cfg.TraceCapacity < 256 {
		// Violations and flight dumps carry the trace-ring tail; make sure
		// there is one.
		cfg.TraceCapacity = 256
	}
	if s.TraceExport != nil && cfg.TraceCapacity < 1<<18 {
		// Exported timelines want the whole run, not just a tail.
		cfg.TraceCapacity = 1 << 18
	}
	h := hv.New(clock, cfg)
	var observer *obs.Observer
	if s.Obs != nil {
		observer = obs.New(*s.Obs)
		h.SetObserver(observer)
	}
	if plan != nil {
		plan.Attach(h)
		if observer != nil {
			plan.OnFault = func(event string) {
				observer.Flight(clock.Now(), "fault", event, h.Trace.Records())
			}
		}
	}
	var auditor *hv.Auditor
	if s.Audit {
		acfg := hv.AuditConfig{}
		if observer != nil {
			acfg.OnViolation = func(e *hv.InvariantError) {
				observer.Flight(e.Time, "invariant:"+e.Rule, e.Detail, e.Trace)
			}
		}
		auditor = h.EnableAudit(acfg)
	}
	var sup *recovery.Supervisor
	if s.Recovery != nil {
		sup = recovery.Attach(h, *s.Recovery)
	}

	// Livelock watchdog: pure observation (never schedules events), so it
	// is always armed and cannot perturb results.
	var wdInfo *simtime.WatchdogInfo
	clock.SetWatchdog(watchdogLimit, func(info simtime.WatchdogInfo) {
		wdInfo = &info
		clock.Stop()
	})

	kernels := make([]*guest.Kernel, len(s.VMs))
	apps := make([]*workload.App, len(s.VMs))
	disks := make([]*vdisk.Disk, len(s.VMs))
	rigs := make([]serveRig, len(s.VMs))
	for i, vm := range s.VMs {
		n := vm.VCPUs
		if n == 0 {
			n = DefaultVCPUs
		}
		kernels[i] = guest.NewKernel(h, vm.Name, n, ksym.Generate(1000+uint64(i)), guest.DefaultParams())
		if vm.Disk || workload.NeedsDisk(vm.App) {
			disks[i] = vdisk.New(clock, 5000+vm.Seed)
			kernels[i].AttachDisk(disks[i])
		}
		if vm.App == "" && vm.Serve != nil {
			apps[i] = workload.Empty("serve", kernels[i])
		} else {
			app, aerr := workload.New(vm.App, kernels[i], vm.Seed)
			if aerr != nil {
				return nil, fmt.Errorf("experiment: VM %s: %v", vm.Name, aerr)
			}
			apps[i] = app
		}
		if vm.Serve != nil {
			rig, serr := buildServe(clock, h, kernels[i], apps[i], vm.Serve, n)
			if serr != nil {
				return nil, fmt.Errorf("experiment: VM %s: %v", vm.Name, serr)
			}
			rigs[i] = rig
		}
		if plan != nil {
			plan.AttachGuest(kernels[i])
		}
	}
	if s.DomRelabel != nil {
		if err := h.RelabelDomains(s.DomRelabel); err != nil {
			return nil, fmt.Errorf("experiment: %w", err)
		}
	}
	// Domain IDs are final from here on; anything keyed on them (disk span
	// attribution, weights, pins, the detector's symtabs via core.Attach)
	// comes after the relabel point.
	for i, vm := range s.VMs {
		d := kernels[i].Dom
		if disks[i] != nil && observer != nil {
			disks[i].Obs = observer
			disks[i].ObsDom = int16(d.ID)
		}
		if vm.Weight > 0 {
			d.Weight = vm.Weight
		}
		for j, pin := range vm.Pins {
			if j >= len(d.VCPUs) {
				break
			}
			if pin >= 0 {
				d.VCPUs[j].Pin(pin)
			}
		}
	}
	ctrl, err := core.Attach(h, s.Core)
	if err != nil {
		return nil, err
	}
	if observer != nil {
		// Flight dumps include the controller's recent decisions, so a dump
		// shows what the sizing loop was doing when the trigger fired.
		observer.SetDecisionTail(func() []obs.DecisionRecord { return decisionRecords(ctrl) })
	}
	var rivalStart func()
	if s.Rival != RivalNone {
		rivalStart, err = attachRival(h, s.Rival)
		if err != nil {
			return nil, err
		}
	}
	h.Start()
	ctrl.Start()
	if rivalStart != nil {
		rivalStart()
	}
	for i, k := range kernels {
		// A serving VM's arrival process starts with its kernel, riding the
		// same stagger.
		start := k.StartAll
		if flow := rigs[i].flow; flow != nil {
			k := k
			start = func() {
				k.StartAll()
				flow.Start()
			}
		}
		if s.StaggerStart && i > 0 {
			clock.At(simtime.Time(i)*7*simtime.Millisecond, start)
		} else {
			start()
		}
	}
	clock.RunUntil(s.Duration)
	if wdInfo != nil {
		return nil, fmt.Errorf(
			"experiment: event-loop livelock at t=%v: %d events without the clock advancing (recent events: %v)",
			wdInfo.Now, wdInfo.SameTimeEvents, wdInfo.RecentLabels)
	}
	res = collect(s, h, ctrl, kernels, apps, rigs)
	if auditor != nil {
		res.Violations = auditor.Violations()
	}
	if plan != nil {
		for _, e := range plan.HotplugErrs {
			res.FaultErrs = append(res.FaultErrs, e.Error())
		}
	}
	res.LostIPIs = h.LostIPICount()
	if sup != nil {
		res.Repairs = sup.Events()
		res.RepairCount = sup.Total()
		if s.Faults != nil && s.Faults.QuiesceAt > 0 {
			res.MTTR = sup.MTTR(simtime.Time(s.Faults.QuiesceAt))
		}
	}
	if observer != nil {
		res.Telemetry = observer.Summary(clock.Now())
		res.Telemetry.MTTR = res.MTTR
		res.Telemetry.Repairs = int(res.RepairCount)
		res.Telemetry.Decisions = decisionRecords(ctrl)
		res.Telemetry.DecisionCount = res.DecisionCount
	}
	if s.TraceExport != nil {
		names := make(map[int16]string, len(kernels))
		for i, k := range kernels {
			names[int16(k.Dom.ID)] = s.VMs[i].Name
		}
		meta := obs.ExportMeta{DomainNames: names, Decisions: decisionRecords(ctrl)}
		if res.Telemetry != nil {
			// Embed the span/stage aggregates so microtrace blame can
			// recompute the attribution table offline from the trace alone.
			meta.Spans = res.Telemetry.Spans
		}
		if err := obs.WriteChromeTrace(s.TraceExport, h.Trace.Records(), meta); err != nil {
			return nil, fmt.Errorf("experiment: trace export: %v", err)
		}
	}
	pr := &PostRun{Setup: &s, Result: res, HV: h, Obs: observer, Ctrl: ctrl, Now: clock.Now()}
	if s.PostCheck != nil {
		if cerr := s.PostCheck(pr); cerr != nil {
			return nil, fmt.Errorf("experiment: post-run check: %w", cerr)
		}
	}
	if fn := checkHook.Load(); fn != nil {
		if cerr := (*fn)(pr); cerr != nil {
			return nil, fmt.Errorf("experiment: post-run check: %w", cerr)
		}
	}
	if fn := runHook.Load(); fn != nil {
		(*fn)(s, res)
	}
	return res, nil
}

// serveRig bundles one VM's serving composition for start and collection.
type serveRig struct {
	nic    *vnet.NIC
	flow   *vnet.RequestFlow
	pool   *workload.ServerPool
	kernel *guest.Kernel
}

// buildServe composes a VM's serving workload: NIC, per-vCPU sockets and
// server threads, and the open-loop arrival flow. The NIC reads its
// domain's ID dynamically, so building before a DomRelabel is safe.
func buildServe(clock *simtime.Clock, h *hv.Hypervisor, k *guest.Kernel, app *workload.App, sv *ServeSpec, vcpus int) (serveRig, error) {
	nic := vnet.NewNIC(h, k.Dom, sv.RingCap)
	k.AttachNIC(nic)
	slo := sv.SLO
	if slo == 0 {
		slo = DefaultServeSLO
	}
	flow, err := vnet.NewRequestFlow(clock, nic, sv.RatePerSec, sv.ReqBytes, slo, vcpus, sv.Seed)
	if err != nil {
		return serveRig{}, err
	}
	prof := workload.DefaultServeProfile()
	if sv.Profile != nil {
		prof = *sv.Profile
	}
	pool, err := workload.RequestServer(app, flow, prof, sv.Seed+1)
	if err != nil {
		return serveRig{}, err
	}
	return serveRig{nic: nic, flow: flow, pool: pool, kernel: k}, nil
}

// requestStats builds the end-of-run serving read-out from the rig's
// independent ledgers.
func requestStats(rig serveRig, dur simtime.Duration) *RequestStats {
	f := rig.flow
	st := &RequestStats{
		Offered:         f.Offered,
		Admitted:        rig.nic.RxPackets,
		Dropped:         f.Dropped,
		Completed:       f.Completed,
		Late:            f.Late,
		InFlight:        f.InFlight(),
		RingResident:    rig.nic.RingLen(),
		SoftirqResident: rig.kernel.NetPktsInFlight(),
		InService:       rig.pool.InService(),
		SLO:             f.SLO(),
	}
	for _, sock := range rig.pool.Sockets {
		st.SockResident += sock.Len()
		st.Delivered += sock.Delivered
		st.Consumed += sock.Consumed
	}
	if f.Lat.Count() > 0 {
		st.P50 = f.Lat.Quantile(0.50)
		st.P99 = f.Lat.Quantile(0.99)
		st.P999 = f.Lat.Quantile(0.999)
		st.Max = f.Lat.Max()
	}
	if secs := dur.Seconds(); secs > 0 {
		st.OfferedRPS = float64(f.Offered) / secs
		st.GoodputRPS = float64(f.Completed-f.Late) / secs
	}
	return st
}

func collect(s Setup, h *hv.Hypervisor, ctrl *core.Controller, kernels []*guest.Kernel, apps []*workload.App, rigs []serveRig) *Result {
	res := &Result{
		HV:         h.Counters.Snapshot(),
		Core:       ctrl.Counters.Snapshot(),
		SymbolHits: ctrl.SymbolHits,
		MicroAvg:   ctrl.MicroGauge.TimeAverage(int64(h.Clock.Now())),
		Duration:   s.Duration,

		Decisions:     ctrl.Decisions(),
		DecisionCount: ctrl.DecisionTotal(),
	}
	for i, k := range kernels {
		d := k.Dom
		var ran simtime.Duration
		perVCPU := make([]simtime.Duration, 0, len(d.VCPUs))
		for _, v := range d.VCPUs {
			ran += v.RanTotal()
			perVCPU = append(perVCPU, v.RanTotal())
		}
		var reqs *RequestStats
		if rigs != nil && rigs[i].flow != nil {
			reqs = requestStats(rigs[i], s.Duration)
		}
		res.VMs = append(res.VMs, VMResult{
			Name:     s.VMs[i].Name,
			App:      s.VMs[i].App,
			Requests: reqs,
			Units:    apps[i].Units(),
			Yields: YieldBreakdown{
				IPI:   d.Counters.Value("yield.ipi"),
				PLE:   d.Counters.Value("yield.ple"),
				Halt:  d.Counters.Value("yield.halt"),
				Other: d.Counters.Value("yield.other"),
			},
			TLB:      k.TLBStat,
			LockStat: k.LockStat,
			RanTotal: ran,
			VCPURan:  perVCPU,
		})
	}
	return res
}

// decisionRecords renders the controller's retained audit trail as obs
// records (reason names instead of enums, flattened samples) for flight
// dumps, run summaries and trace export.
func decisionRecords(ctrl *core.Controller) []obs.DecisionRecord {
	evs := ctrl.Decisions()
	if len(evs) == 0 {
		return nil
	}
	out := make([]obs.DecisionRecord, len(evs))
	for i, d := range evs {
		out[i] = obs.DecisionRecord{
			Time: d.Time, Epoch: d.Epoch, Reason: d.Reason.String(),
			Chosen: d.Chosen, Ceiling: d.Ceiling,
			IPIs: d.Run.IPIs, PLEs: d.Run.PLEs, IRQs: d.Run.IRQs,
		}
	}
	return out
}

// offConfig is the vanilla-Xen baseline.
func offConfig() core.Config {
	c := core.DefaultConfig()
	c.Mode = core.ModeOff
	return c
}

// soloSetup runs one VM alone on the host.
func soloSetup(app string, dur simtime.Duration) Setup {
	return Setup{
		VMs:      []VMSpec{{Name: app, App: app, Seed: 11}},
		Core:     offConfig(),
		Duration: dur,
	}
}

// corunSetup consolidates the target VM with a swaptions VM at 2:1.
func corunSetup(app string, cc core.Config, dur simtime.Duration) Setup {
	return Setup{
		VMs: []VMSpec{
			{Name: app, App: app, Seed: 11},
			{Name: "swaptions", App: "swaptions", Seed: 22},
		},
		Core:         cc,
		Duration:     dur,
		StaggerStart: true,
	}
}


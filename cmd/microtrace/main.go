// Command microtrace runs a consolidation scenario with the trace ring
// enabled (the simulator's xentrace) and prints a per-vCPU scheduling
// analysis, a yield-RIP histogram resolved through each guest's
// System.map, and optionally the raw record tail. Two subcommands work
// with Chrome trace-event JSON instead:
//
//	microtrace -vms gmake,swaptions -mode off -seconds 1
//	microtrace -vms dedup,swaptions -mode static -cores 3 -raw 40
//	microtrace export -vms gmake,swaptions -mode dynamic -o trace.json
//	microtrace validate trace.json
//
// Exported files load directly in Perfetto (https://ui.perfetto.dev).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"github.com/microslicedcore/microsliced/internal/core"
	"github.com/microslicedcore/microsliced/internal/guest"
	"github.com/microslicedcore/microsliced/internal/hv"
	"github.com/microslicedcore/microsliced/internal/ksym"
	"github.com/microslicedcore/microsliced/internal/obs"
	"github.com/microslicedcore/microsliced/internal/simtime"
	"github.com/microslicedcore/microsliced/internal/trace"
	"github.com/microslicedcore/microsliced/internal/workload"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "export":
			exportMain(os.Args[2:])
			return
		case "validate":
			validateMain(os.Args[2:])
			return
		}
	}
	analyzeMain(os.Args[1:])
}

// analyzeMain is the classic mode: run, analyze, print text.
func analyzeMain(args []string) {
	fs := flag.NewFlagSet("microtrace", flag.ExitOnError)
	var (
		vms     = fs.String("vms", "gmake,swaptions", "comma-separated workloads, one VM each")
		mode    = fs.String("mode", "off", "off, static, dynamic")
		cores   = fs.Int("cores", 1, "micro cores for -mode static")
		seconds = fs.Float64("seconds", 1, "simulated seconds")
		pcpus   = fs.Int("pcpus", 12, "physical CPUs")
		vcpus   = fs.Int("vcpus", 12, "vCPUs per VM")
		ring    = fs.Int("ring", 1<<20, "trace ring capacity (records)")
		raw     = fs.Int("raw", 0, "also dump the last N raw records")
	)
	fs.Parse(args)

	clock := simtime.NewClock()
	cfg := hv.DefaultConfig()
	cfg.PCPUs = *pcpus
	cfg.TraceCapacity = *ring
	h := hv.New(clock, cfg)

	tabs := map[int16]*ksym.Table{}
	var kernels []*guest.Kernel
	for i, app := range strings.Split(*vms, ",") {
		app = strings.TrimSpace(app)
		sym := ksym.Generate(1000 + uint64(i))
		k := guest.NewKernel(h, fmt.Sprintf("%s-%d", app, i), *vcpus, sym, guest.DefaultParams())
		tabs[int16(k.Dom.ID)] = sym
		if _, err := workload.New(app, k, uint64(11*(i+1))); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		kernels = append(kernels, k)
	}

	cc := core.DefaultConfig()
	switch *mode {
	case "off":
		cc.Mode = core.ModeOff
	case "static":
		cc = core.StaticConfig(*cores)
	case "dynamic":
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(1)
	}
	ctrl, err := core.Attach(h, cc)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	h.Start()
	ctrl.Start()
	for i, k := range kernels {
		if i == 0 {
			k.StartAll()
		} else {
			k := k
			clock.At(simtime.Time(i)*7*simtime.Millisecond, k.StartAll)
		}
	}
	clock.RunUntil(simtime.Duration(*seconds * float64(simtime.Second)))

	recs := h.Trace.Records()
	trace.Analyze(recs).Render(os.Stdout)

	fmt.Println("\nyield RIPs (by symbol):")
	rips := trace.YieldRIPs(recs, func(dom int16, rip uint64) string {
		if tab := tabs[dom]; tab != nil {
			return fmt.Sprintf("dom%d:%s", dom, tab.NameOf(rip))
		}
		return "?"
	})
	names := make([]string, 0, len(rips))
	for n := range rips {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return rips[names[i]] > rips[names[j]] })
	for _, n := range names {
		fmt.Printf("   %-48s %d\n", n, rips[n])
	}

	if *raw > 0 {
		fmt.Printf("\nlast %d records:\n", *raw)
		start := len(recs) - *raw
		if start < 0 {
			start = 0
		}
		for _, r := range recs[start:] {
			fmt.Println(r)
		}
	}
}

// exportMain runs the same scenario shape as analyzeMain but writes the
// trace ring as Chrome trace-event JSON.
func exportMain(args []string) {
	fs := flag.NewFlagSet("microtrace export", flag.ExitOnError)
	var (
		vms     = fs.String("vms", "gmake,swaptions", "comma-separated workloads, one VM each")
		mode    = fs.String("mode", "off", "off, static, dynamic")
		cores   = fs.Int("cores", 1, "micro cores for -mode static")
		seconds = fs.Float64("seconds", 1, "simulated seconds")
		pcpus   = fs.Int("pcpus", 12, "physical CPUs")
		vcpus   = fs.Int("vcpus", 12, "vCPUs per VM")
		ring    = fs.Int("ring", 1<<20, "trace ring capacity (records)")
		out     = fs.String("o", "trace.json", "output file (- for stdout)")
	)
	fs.Parse(args)

	clock := simtime.NewClock()
	cfg := hv.DefaultConfig()
	cfg.PCPUs = *pcpus
	cfg.TraceCapacity = *ring
	h := hv.New(clock, cfg)
	h.SetObserver(obs.New(obs.Config{}))

	names := map[int16]string{}
	var kernels []*guest.Kernel
	for i, app := range strings.Split(*vms, ",") {
		app = strings.TrimSpace(app)
		k := guest.NewKernel(h, fmt.Sprintf("%s-%d", app, i), *vcpus, ksym.Generate(1000+uint64(i)), guest.DefaultParams())
		names[int16(k.Dom.ID)] = k.Dom.Name
		if _, err := workload.New(app, k, uint64(11*(i+1))); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		kernels = append(kernels, k)
	}
	cc, err := coreConfig(*mode, *cores)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ctrl, err := core.Attach(h, cc)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	h.Start()
	ctrl.Start()
	for i, k := range kernels {
		if i == 0 {
			k.StartAll()
		} else {
			k := k
			clock.At(simtime.Time(i)*7*simtime.Millisecond, k.StartAll)
		}
	}
	clock.RunUntil(simtime.Duration(*seconds * float64(simtime.Second)))

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := obs.WriteChromeTrace(w, h.Trace.Records(), obs.ExportMeta{DomainNames: names}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *out != "-" {
		fmt.Fprintf(os.Stderr, "wrote %s (%d records; load at https://ui.perfetto.dev)\n", *out, len(h.Trace.Records()))
	}
}

func coreConfig(mode string, cores int) (core.Config, error) {
	cc := core.DefaultConfig()
	switch mode {
	case "off":
		cc.Mode = core.ModeOff
	case "static":
		cc = core.StaticConfig(cores)
	case "dynamic":
	default:
		return cc, fmt.Errorf("unknown mode %q", mode)
	}
	return cc, nil
}

// validateMain structurally checks a Chrome trace-event JSON file.
func validateMain(args []string) {
	fs := flag.NewFlagSet("microtrace validate", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: microtrace validate <trace.json>")
		os.Exit(2)
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	n, err := obs.ValidateChromeTrace(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: INVALID: %v\n", fs.Arg(0), err)
		os.Exit(1)
	}
	fmt.Printf("%s: ok (%d events)\n", fs.Arg(0), n)
}

// Package ksym models the guest kernel symbol table that the paper's
// hypervisor consults to classify a preempted vCPU (§4.1, §4.4).
//
// The package can generate a synthetic Linux-4.4-flavoured System.map
// (containing every critical function of the paper's Table 3 plus filler
// symbols), format it in the standard System.map text form, parse such a
// file back, resolve an instruction address to the containing function, and
// classify a function against the critical-service whitelist.
//
// The split mirrors the deployment story in the paper: the *guest* side of
// the simulator places synthetic instruction pointers inside these
// functions while executing kernel services, and the *hypervisor* side is
// only allowed to look at (RIP, System.map) — never at guest state — which
// preserves the guest-transparency property under test.
package ksym

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"github.com/microslicedcore/microsliced/internal/rng"
)

// KernelBase is the lowest text address of the synthetic kernel, matching
// the canonical x86-64 kernel text mapping.
const KernelBase uint64 = 0xffffffff81000000

// UserRIP is the sentinel instruction pointer used when a vCPU executes
// user-level code. Any address below KernelBase is user space.
const UserRIP uint64 = 0x0000000000400000

// IsKernelAddr reports whether addr lies in the kernel text mapping.
func IsKernelAddr(addr uint64) bool { return addr >= KernelBase }

// Class is the critical-service class of a kernel function, derived from
// the paper's Table 3. The hypervisor's handling differs per class (§4.2).
type Class uint8

// Critical service classes.
const (
	ClassNone     Class = iota // not a critical OS service
	ClassSpinlock              // spinlock critical sections and lock ops
	ClassTLB                   // TLB shootdown / flush paths
	ClassIPI                   // inter-processor interrupt send/wait paths
	ClassIRQ                   // interrupt entry / softirq paths
	ClassSched                 // scheduler wakeup / reschedule-IPI paths
	ClassRWSem                 // reader-writer semaphore wake paths
	ClassIdle                  // idle/halt path (never accelerated)
	ClassSpinWait              // spinning *waiting* for a lock: a criticality
	//                            signal, but not a migration target — running
	//                            a waiter on a micro core would just burn it
	ClassUserCS // registered user-level critical section (paper §4.4 extension)
)

var classNames = [...]string{
	ClassNone:     "none",
	ClassSpinlock: "spinlock",
	ClassTLB:      "tlb",
	ClassIPI:      "ipi",
	ClassIRQ:      "irq",
	ClassSched:    "sched",
	ClassRWSem:    "rwsem",
	ClassIdle:     "idle",
	ClassSpinWait: "spinwait",
	ClassUserCS:   "user-cs",
}

// String returns the lowercase class name.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Critical reports whether vCPUs preempted inside this class should be
// accelerated on the micro-sliced pool.
func (c Class) Critical() bool {
	return c != ClassNone && c != ClassIdle && c != ClassSpinWait
}

// UserRegion is a registered user-level critical region (paper §4.4: the
// hypervisor keeps a per-process symbol table of application-declared
// critical sections and accelerates them like kernel ones).
type UserRegion struct {
	Name string
	Lo   uint64 // inclusive
	Hi   uint64 // exclusive
}

// Contains reports whether addr lies in the region.
func (r UserRegion) Contains(addr uint64) bool { return addr >= r.Lo && addr < r.Hi }

// LookupUserRegion resolves a user-space address against a region table.
func LookupUserRegion(regions []UserRegion, addr uint64) (UserRegion, bool) {
	for _, r := range regions {
		if r.Contains(addr) {
			return r, true
		}
	}
	return UserRegion{}, false
}

// WhitelistEntry describes one critical kernel function, mirroring a row of
// the paper's Table 3.
type WhitelistEntry struct {
	Module   string
	File     string
	Name     string
	Class    Class
	Semantic string
}

// Whitelist is the critical-component table (paper Table 3), extended with
// the lock-acquire and I/O-path functions the guest model executes. Order
// follows the paper.
var Whitelist = []WhitelistEntry{
	// irq module.
	{"irq", "softirq.c", "irq_enter", ClassIRQ, "increase the preemption count"},
	{"irq", "softirq.c", "irq_exit", ClassIRQ, "decrease the preemption count"},
	{"irq", "chip.c", "handle_percpu_irq", ClassIRQ, "wakeup the irq handler"},
	{"irq", "softirq.c", "__do_softirq", ClassIRQ, "run pending softirq handlers"},
	{"irq", "e1000/e1000_main.c", "e1000_intr", ClassIRQ, "NIC hardirq handler"},
	{"irq", "net/core/dev.c", "net_rx_action", ClassIRQ, "network receive softirq"},
	// kernel/smp.
	{"kernel", "smp.c", "smp_call_function_single", ClassIPI, "send an IPI to another core"},
	{"kernel", "smp.c", "smp_call_function_many", ClassIPI, "send an IPI to other cores"},
	{"kernel", "smp.c", "smp_send_reschedule", ClassIPI, "send a reschedule IPI"},
	{"kernel", "smp.c", "generic_smp_call_function_single_interrupt", ClassIPI, "handle a call-function IPI"},
	// mm module.
	{"mm", "tlb.c", "do_flush_tlb_all", ClassTLB, "TLB flush received from remote"},
	{"mm", "tlb.c", "flush_tlb_all", ClassTLB, "flush all processes TLBs"},
	{"mm", "tlb.c", "native_flush_tlb_others", ClassTLB, "send TLB shootdown IPI to others"},
	{"mm", "tlb.c", "flush_tlb_func", ClassTLB, "invoked by the TLB shootdown IPI"},
	{"mm", "tlb.c", "flush_tlb_current_task", ClassTLB, "flush the current mm struct TLBs"},
	{"mm", "tlb.c", "flush_tlb_mm_range", ClassTLB, "flush a range of pages"},
	{"mm", "tlb.c", "flush_tlb_page", ClassTLB, "flush one page"},
	{"mm", "tlb.c", "leave_mm", ClassTLB, "invoked in the lazy tlb mode"},
	{"mm", "page_alloc.c", "get_page_from_freelist", ClassSpinlock, "try to allocate a page"},
	{"mm", "page_alloc.c", "free_one_page", ClassSpinlock, "free a page in a memory zone"},
	{"mm", "swap.c", "release_pages", ClassSpinlock, "release page cache"},
	{"mm", "vmscan.c", "shrink_page_list", ClassSpinlock, "page reclaim under lru lock"},
	// sched module.
	{"sched", "core.c", "scheduler_ipi", ClassSched, "invoked by reschedule IPI"},
	{"sched", "core.c", "resched_curr", ClassSched, "trigger the scheduler on the target CPU"},
	{"sched", "core.c", "kick_process", ClassSched, "kick a running thread to enter/exit the kernel"},
	{"sched", "core.c", "sched_ttwu_pending", ClassSched, "try to wake-up a pending thread"},
	{"sched", "core.c", "ttwu_do_activate", ClassSched, "enqueue a selected thread"},
	{"sched", "core.c", "ttwu_do_wakeup", ClassSched, "mark the task runnable and perform wakeup-preemption"},
	{"sched", "fair.c", "enqueue_task_fair", ClassSpinlock, "runqueue manipulation under rq lock"},
	// spinlock module.
	{"spinlock", "spinlock_api_smp.h", "__raw_spin_unlock", ClassSpinlock, "release a spinlock"},
	{"spinlock", "spinlock_api_smp.h", "__raw_spin_unlock_irq", ClassSpinlock, "release a spinlock & enable irq"},
	{"spinlock", "spinlock_api_smp.h", "_raw_spin_unlock_irqrestore", ClassSpinlock, "release a spinlock & restore irq"},
	{"spinlock", "spinlock_api_smp.h", "_raw_spin_unlock_bh", ClassSpinlock, "release a spinlock & enable bottom half"},
	{"spinlock", "qspinlock.c", "native_queued_spin_lock_slowpath", ClassSpinWait, "spin waiting for a queued spinlock"},
	{"spinlock", "spinlock_api_smp.h", "_raw_spin_lock", ClassSpinWait, "acquire a spinlock"},
	{"spinlock", "dcache.c", "__d_lookup", ClassSpinlock, "dentry hash lookup under d_lock"},
	// rwsem module.
	{"rwsem", "rwsem-spinlock.c", "__rwsem_do_wake", ClassRWSem, "wake up a waiter on the semaphore"},
	{"rwsem", "rwsem-xadd.c", "rwsem_wake", ClassRWSem, "wake up a waiter on the semaphore"},
}

// idleSymbols are kernel functions that mean "nothing to do"; they are in
// the map but must never be treated as critical.
var idleSymbols = []string{"default_idle", "native_safe_halt", "cpu_idle_loop"}

// fillerSymbols is a representative sample of ordinary kernel functions used
// to pad the synthetic System.map so address lookups exercise realistic
// neighbourhoods. None of these are critical.
var fillerSymbols = []string{
	"do_sys_open", "vfs_read", "vfs_write", "sys_mmap", "sys_munmap",
	"do_page_fault", "handle_mm_fault", "copy_process", "do_fork", "do_exit",
	"schedule", "pick_next_task_fair", "update_curr", "account_user_time",
	"ext4_file_read_iter", "ext4_file_write_iter", "generic_perform_write",
	"tcp_sendmsg", "tcp_recvmsg", "udp_sendmsg", "udp_recvmsg", "sock_poll",
	"ip_rcv", "ip_output", "dev_queue_xmit", "netif_receive_skb",
	"kmalloc_slab", "kmem_cache_alloc", "kmem_cache_free", "vmalloc",
	"mutex_lock", "mutex_unlock", "down_read", "up_read", "down_write",
	"futex_wait", "futex_wake", "hrtimer_interrupt", "tick_sched_timer",
	"ktime_get", "getnstimeofday64", "sys_clock_gettime", "do_nanosleep",
	"proc_reg_read", "seq_read", "pipe_read", "pipe_write", "do_select",
	"ep_poll", "sys_epoll_wait", "do_signal", "get_signal", "sys_rt_sigreturn",
	"load_elf_binary", "search_binary_handler", "mmput", "exit_mm",
	"wake_up_new_task", "finish_task_switch", "prepare_to_wait",
	"autoremove_wake_function", "bit_waitqueue", "wake_bit_function",
	"radix_tree_lookup", "find_get_page", "add_to_page_cache_lru",
	"page_cache_async_readahead", "generic_file_read_iter", "filemap_fault",
	"blk_queue_bio", "submit_bio", "generic_make_request", "bio_endio",
	"scsi_request_fn", "ata_scsi_queuecmd", "memcpy_orig", "memset_orig",
	"strncpy_from_user", "copy_user_generic_string", "csum_partial",
}

// Symbol is one entry of the kernel symbol table.
type Symbol struct {
	Addr uint64
	Size uint64
	Type byte // 'T'/'t' text, 'D'/'d' data, 'R'/'r' rodata
	Name string
}

// End returns the first address past the symbol.
func (s Symbol) End() uint64 { return s.Addr + s.Size }

// Table is an address-sorted kernel symbol table with name lookup.
type Table struct {
	syms   []Symbol
	byName map[string]int
}

// Len returns the number of symbols.
func (t *Table) Len() int { return len(t.syms) }

// Symbols returns a copy of the symbols in address order.
func (t *Table) Symbols() []Symbol {
	out := make([]Symbol, len(t.syms))
	copy(out, t.syms)
	return out
}

// Lookup resolves an instruction address to the containing symbol.
func (t *Table) Lookup(addr uint64) (Symbol, bool) {
	i := sort.Search(len(t.syms), func(i int) bool { return t.syms[i].Addr > addr })
	if i == 0 {
		return Symbol{}, false
	}
	s := t.syms[i-1]
	if addr >= s.End() {
		return Symbol{}, false
	}
	return s, true
}

// AddrOf returns the entry address of the named symbol.
func (t *Table) AddrOf(name string) (uint64, bool) {
	i, ok := t.byName[name]
	if !ok {
		return 0, false
	}
	return t.syms[i].Addr, true
}

// MustAddr returns the entry address of the named symbol or panics. The
// guest model uses it at construction time, where a missing symbol is a
// programming error.
func (t *Table) MustAddr(name string) uint64 {
	a, ok := t.AddrOf(name)
	if !ok {
		panic("ksym: unknown symbol " + name)
	}
	return a
}

// InnerAddr returns an address strictly inside the named function (entry+8),
// used to model an instruction pointer mid-function.
func (t *Table) InnerAddr(name string) uint64 {
	i, ok := t.byName[name]
	if !ok {
		panic("ksym: unknown symbol " + name)
	}
	s := t.syms[i]
	off := uint64(8)
	if off >= s.Size {
		off = s.Size / 2
	}
	return s.Addr + off
}

// NameOf resolves an address to a symbol name, or "?" if unknown.
func (t *Table) NameOf(addr uint64) string {
	if s, ok := t.Lookup(addr); ok {
		return s.Name
	}
	if !IsKernelAddr(addr) {
		return "[user]"
	}
	return "?"
}

// Classify returns the critical-service class of a function name.
func Classify(name string) Class {
	if c, ok := whitelistByName[name]; ok {
		return c
	}
	for _, n := range idleSymbols {
		if n == name {
			return ClassIdle
		}
	}
	return ClassNone
}

// ClassifyAddr resolves addr and classifies the containing function.
// User-space and unknown addresses classify as ClassNone.
func (t *Table) ClassifyAddr(addr uint64) Class {
	s, ok := t.Lookup(addr)
	if !ok {
		return ClassNone
	}
	return Classify(s.Name)
}

var whitelistByName = func() map[string]Class {
	m := make(map[string]Class, len(Whitelist))
	for _, e := range Whitelist {
		m[e.Name] = e.Class
	}
	return m
}()

// Generate builds the synthetic System.map. The seed controls function
// sizes and the interleaving of filler symbols, so different "kernel builds"
// can be simulated; all whitelist, idle and filler symbols are always
// present exactly once.
func Generate(seed uint64) *Table {
	r := rng.New(seed)
	names := make([]string, 0, len(Whitelist)+len(idleSymbols)+len(fillerSymbols))
	for _, e := range Whitelist {
		names = append(names, e.Name)
	}
	names = append(names, idleSymbols...)
	names = append(names, fillerSymbols...)
	// Shuffle layout deterministically: real kernels do not group critical
	// functions contiguously, and the detector must not rely on layout.
	perm := r.Perm(len(names))
	addr := KernelBase
	syms := make([]Symbol, 0, len(names))
	for _, idx := range perm {
		size := uint64(64 + r.Intn(4032)) // 64B..4KiB functions
		size = (size + 15) &^ 15          // align sizes for tidiness
		syms = append(syms, Symbol{Addr: addr, Size: size, Type: 'T', Name: names[idx]})
		addr += size
		// Occasional padding gap (alignment holes, data in text).
		if r.Bool(0.2) {
			addr += uint64(16 + r.Intn(240))
		}
	}
	return newTable(syms)
}

func newTable(syms []Symbol) *Table {
	sort.Slice(syms, func(i, j int) bool { return syms[i].Addr < syms[j].Addr })
	byName := make(map[string]int, len(syms))
	for i, s := range syms {
		byName[s.Name] = i
	}
	return &Table{syms: syms, byName: byName}
}

// Format writes the table in System.map format ("%016x %c %s\n").
// Sizes are not part of the format, exactly as in real System.map files.
func (t *Table) Format(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, s := range t.syms {
		if _, err := fmt.Fprintf(bw, "%016x %c %s\n", s.Addr, s.Type, s.Name); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// defaultLastSize is assumed for the final symbol when parsing, since
// System.map carries no sizes.
const defaultLastSize = 4096

// Parse reads a System.map-format stream. Symbol sizes are inferred from
// the distance to the next symbol (the standard kallsyms convention).
func Parse(r io.Reader) (*Table, error) {
	sc := bufio.NewScanner(r)
	var syms []Symbol
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("ksym: line %d: want 3 fields, got %d", lineno, len(fields))
		}
		addr, err := strconv.ParseUint(fields[0], 16, 64)
		if err != nil {
			return nil, fmt.Errorf("ksym: line %d: bad address %q: %v", lineno, fields[0], err)
		}
		if len(fields[1]) != 1 {
			return nil, fmt.Errorf("ksym: line %d: bad type %q", lineno, fields[1])
		}
		syms = append(syms, Symbol{Addr: addr, Type: fields[1][0], Name: fields[2]})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ksym: read: %v", err)
	}
	if len(syms) == 0 {
		return nil, fmt.Errorf("ksym: empty symbol table")
	}
	sort.Slice(syms, func(i, j int) bool { return syms[i].Addr < syms[j].Addr })
	for i := range syms {
		if i+1 < len(syms) {
			syms[i].Size = syms[i+1].Addr - syms[i].Addr
		} else {
			syms[i].Size = defaultLastSize
		}
	}
	return newTable(syms), nil
}

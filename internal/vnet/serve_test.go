package vnet

import (
	"testing"

	"github.com/microslicedcore/microsliced/internal/guest"
	"github.com/microslicedcore/microsliced/internal/hv"
	"github.com/microslicedcore/microsliced/internal/ksym"
	"github.com/microslicedcore/microsliced/internal/obs"
	"github.com/microslicedcore/microsliced/internal/simtime"
	"github.com/microslicedcore/microsliced/internal/workload"
)

// serveWorld builds a 1-vCPU serving VM on an idle host: NIC, request flow
// and a per-vCPU server pool, with an observer attached.
func serveWorld(t *testing.T, rate int, ringCap int) (*simtime.Clock, *hv.Hypervisor, *obs.Observer, *RequestFlow, *workload.ServerPool) {
	t.Helper()
	clock := simtime.NewClock()
	cfg := hv.DefaultConfig()
	cfg.PCPUs = 2
	h := hv.New(clock, cfg)
	o := obs.New(obs.Config{})
	h.SetObserver(o)
	k := guest.NewKernel(h, "serve", 1, ksym.Generate(1), guest.DefaultParams())
	nic := NewNIC(h, k.Dom, ringCap)
	k.AttachNIC(nic)
	flow, err := NewRequestFlow(clock, nic, rate, 0, 5*simtime.Millisecond, len(k.VCPUs), 7)
	if err != nil {
		t.Fatal(err)
	}
	app := workload.Empty("serve", k)
	pool, err := workload.RequestServer(app, flow, workload.DefaultServeProfile(), 8)
	if err != nil {
		t.Fatal(err)
	}
	h.Start()
	k.StartAll()
	return clock, h, o, flow, pool
}

func TestRequestFlowConservation(t *testing.T) {
	clock, _, o, flow, pool := serveWorld(t, 5000, 8)
	flow.Start()
	clock.RunUntil(300 * simtime.Millisecond)

	if flow.Offered == 0 || flow.Completed == 0 {
		t.Fatalf("no traffic: offered=%d completed=%d", flow.Offered, flow.Completed)
	}
	if flow.Offered != flow.Dropped+flow.Completed+flow.InFlight() {
		t.Fatalf("conservation: offered=%d != dropped=%d + completed=%d + inflight=%d",
			flow.Offered, flow.Dropped, flow.Completed, flow.InFlight())
	}
	if uint64(flow.Lat.Count()) != flow.Completed {
		t.Fatalf("latency histogram %d != completed %d", flow.Lat.Count(), flow.Completed)
	}
	// Request spans balance: begun == closed + cancelled + open, and the
	// number still open equals the flow's in-flight count.
	open := o.OpenSpansByKind()[obs.SpanRequest]
	if uint64(open) != flow.InFlight() {
		t.Fatalf("open request spans %d != in-flight %d", open, flow.InFlight())
	}
	if got := uint64(o.Hist(obs.SpanRequest).Count()); got != flow.Completed {
		t.Fatalf("closed request spans %d != completed %d", got, flow.Completed)
	}
	if pool.InService() < 0 {
		t.Fatalf("negative in-service")
	}
}

func TestRequestFlowDeterministic(t *testing.T) {
	run := func() (uint64, uint64, uint64, int64) {
		clock, _, _, flow, _ := serveWorld(t, 8000, 6)
		flow.Start()
		clock.RunUntil(200 * simtime.Millisecond)
		return flow.Offered, flow.Dropped, flow.Completed, flow.Lat.Quantile(0.99)
	}
	o1, d1, c1, p1 := run()
	o2, d2, c2, p2 := run()
	if o1 != o2 || d1 != d2 || c1 != c2 || p1 != p2 {
		t.Fatalf("non-deterministic: (%d %d %d %d) vs (%d %d %d %d)",
			o1, d1, c1, p1, o2, d2, c2, p2)
	}
}

func TestRequestTailDropCancelsSpan(t *testing.T) {
	// A tiny ring at a high rate must tail-drop; every drop cancels its
	// request span and counts as an SLO violation, so drops can never
	// silently vanish from the distribution (coordinated omission).
	clock, _, o, flow, _ := serveWorld(t, 40000, 2)
	flow.Start()
	clock.RunUntil(100 * simtime.Millisecond)
	if flow.Dropped == 0 {
		t.Fatalf("expected tail drops at ring cap 2, rate 40k")
	}
	if flow.SLOViolations() < flow.Dropped {
		t.Fatalf("SLO violations %d < drops %d", flow.SLOViolations(), flow.Dropped)
	}
	begun, closed, cancelled := o.SpanCounts()
	open := 0
	for _, n := range o.OpenSpansByKind() {
		open += n
	}
	if begun != closed+cancelled+uint64(open) {
		t.Fatalf("span ledger: begun=%d closed=%d cancelled=%d open=%d",
			begun, closed, cancelled, open)
	}
	if cancelled == 0 {
		t.Fatalf("no cancelled spans despite %d drops", flow.Dropped)
	}
}

func TestNoListenerDropCancelsSpans(t *testing.T) {
	// A packet whose flow ID has no socket is dropped at softirq delivery:
	// both its net_rx and request spans must be cancelled, leaking nothing.
	clock := simtime.NewClock()
	cfg := hv.DefaultConfig()
	cfg.PCPUs = 2
	h := hv.New(clock, cfg)
	o := obs.New(obs.Config{})
	h.SetObserver(o)
	k := guest.NewKernel(h, "vm", 1, ksym.Generate(3), guest.DefaultParams())
	nic := NewNIC(h, k.Dom, 0)
	k.AttachNIC(nic)
	// One listener on flow 0; traffic also arrives for flow 9 (no socket).
	sock := k.NewSocket(0)
	k.NewThread(0, "recv", &recvLoop{sock: sock})
	h.Start()
	k.StartAll()
	for i := 0; i < 10; i++ {
		fl := i % 2 * 9 // alternate listener (0) and no-listener (9)
		nic.Rx(guest.Packet{Seq: uint64(i), Flow: fl, Bytes: 100, SentAt: clock.Now()})
	}
	clock.RunUntil(50 * simtime.Millisecond)
	begun, closed, cancelled := o.SpanCounts()
	open := 0
	for _, n := range o.OpenSpansByKind() {
		open += n
	}
	if begun != closed+cancelled+uint64(open) {
		t.Fatalf("span ledger: begun=%d closed=%d cancelled=%d open=%d",
			begun, closed, cancelled, open)
	}
	if cancelled < 5 {
		t.Fatalf("cancelled=%d, want >= 5 no-listener drops", cancelled)
	}
	if got := o.OpenSpansByKind()[obs.SpanNetRx]; got != 0 {
		t.Fatalf("%d net_rx spans leaked open", got)
	}
}

func TestRequestStageSumMatchesSpan(t *testing.T) {
	// Σ per-stage time == Σ end-to-end span time, exactly (the final stage
	// absorbs the End remainder).
	clock, _, o, flow, _ := serveWorld(t, 5000, 16)
	flow.Start()
	clock.RunUntil(200 * simtime.Millisecond)
	total, stages := o.SpanLedger(obs.SpanRequest)
	var sum int64
	for _, s := range stages {
		sum += s
	}
	if total == 0 {
		t.Fatal("no request span time recorded")
	}
	if sum != total {
		t.Fatalf("stage sum %d != span total %d", sum, total)
	}
}

func TestRequestFlowValidation(t *testing.T) {
	clock := simtime.NewClock()
	h := hv.New(clock, hv.DefaultConfig())
	nic := NewNIC(h, bareDom(h), 0)
	cases := []struct {
		name            string
		rate, bytes     int
		slo             simtime.Duration
		targets         int
		wantErr, wantOK bool
	}{
		{"ok", 1000, 512, simtime.Millisecond, 1, false, true},
		{"default-bytes", 1000, 0, simtime.Millisecond, 1, false, true},
		{"zero-rate", 0, 512, simtime.Millisecond, 1, true, false},
		{"neg-bytes", 1000, -1, simtime.Millisecond, 1, true, false},
		{"zero-slo", 1000, 512, 0, 1, true, false},
		{"zero-targets", 1000, 512, simtime.Millisecond, 0, true, false},
	}
	for _, c := range cases {
		f, err := NewRequestFlow(clock, nic, c.rate, c.bytes, c.slo, c.targets, 1)
		if (err != nil) != c.wantErr {
			t.Fatalf("%s: err=%v wantErr=%v", c.name, err, c.wantErr)
		}
		if c.wantOK && f == nil {
			t.Fatalf("%s: nil flow", c.name)
		}
	}
	f, _ := NewRequestFlow(clock, nic, 1000, 0, simtime.Millisecond, 1, 1)
	if f.bytes != DefaultReqBytes {
		t.Fatalf("bytes=%d, want default %d", f.bytes, DefaultReqBytes)
	}
	if f.SLO() != simtime.Millisecond {
		t.Fatalf("SLO=%v", f.SLO())
	}
}

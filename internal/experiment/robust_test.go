package experiment

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"github.com/microslicedcore/microsliced/internal/core"
	"github.com/microslicedcore/microsliced/internal/fault"
	"github.com/microslicedcore/microsliced/internal/hv"
	"github.com/microslicedcore/microsliced/internal/simtime"
)

const robustDur = 200 * simtime.Millisecond

func faultSetup(app string, cfg fault.Config) Setup {
	s := corunSetup(app, core.DefaultConfig(), robustDur)
	s.Faults = &cfg
	return s
}

// TestFaultPlanReproducible is the acceptance criterion: two runs of the
// same scenario under the same fault-plan seed are reflect.DeepEqual.
func TestFaultPlanReproducible(t *testing.T) {
	cfg := fault.Config{
		Seed: 7, OfflinePCPUs: 1,
		IPIDelayProb: 0.2, IPIDelayMax: 200 * simtime.Microsecond,
		IPIDropProb: 0.1, TickJitter: simtime.Millisecond,
		LockStallProb: 0.1, LockStallFactor: 4,
	}
	a, err := Run(faultSetup("dedup", cfg))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(faultSetup("dedup", cfg))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical fault plans produced different Results")
	}
}

// TestPCPUOfflineProgress is the acceptance criterion: a hot-unplug
// scenario completes, every vCPU makes progress, and the auditor reports
// zero invariant violations.
func TestPCPUOfflineProgress(t *testing.T) {
	res, err := Run(faultSetup("dedup", fault.Config{Seed: 3, OfflinePCPUs: 2}))
	if err != nil {
		t.Fatal(err)
	}
	if n := len(res.Violations); n != 0 {
		t.Fatalf("auditor reported %d violations, first: %v", n, res.Violations[0])
	}
	if len(res.FaultErrs) != 0 {
		t.Fatalf("hotplug refused: %v", res.FaultErrs)
	}
	if res.HV["hotplug.offline"] != 2 || res.HV["hotplug.online"] != 2 {
		t.Fatalf("hotplug counters off=%d on=%d, want 2/2",
			res.HV["hotplug.offline"], res.HV["hotplug.online"])
	}
	for _, vm := range res.VMs {
		if vm.Units == 0 {
			t.Fatalf("VM %s completed no work units", vm.Name)
		}
		for i, ran := range vm.VCPURan {
			if ran == 0 {
				t.Fatalf("VM %s vCPU %d never ran", vm.Name, i)
			}
		}
	}
}

// TestFaultsPerturbButNeverBreak runs each injector alone and checks the
// scheduler state machine survives (zero violations) while the run still
// completes with progress.
func TestFaultsPerturbButNeverBreak(t *testing.T) {
	for _, c := range faultSweepCases() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			res, err := Run(faultSetup("dedup", c.Cfg))
			if err != nil {
				t.Fatal(err)
			}
			if n := len(res.Violations); n != 0 {
				t.Fatalf("%d invariant violations, first: %v", n, res.Violations[0])
			}
			for _, vm := range res.VMs {
				if vm.Units == 0 {
					t.Fatalf("VM %s made no progress", vm.Name)
				}
			}
		})
	}
}

// TestIPIDropCountersFire checks the bounded-retry path actually engages:
// drops are counted and retried deliveries eventually land.
func TestIPIDropCountersFire(t *testing.T) {
	res, err := Run(faultSetup("dedup", fault.Config{Seed: 1, IPIDropProb: 0.3}))
	if err != nil {
		t.Fatal(err)
	}
	if res.HV["vipi.sent"] == 0 {
		t.Fatal("scenario sent no IPIs; drop fault untested")
	}
	if res.HV["vipi.dropped"] == 0 {
		t.Fatal("drop probability 0.3 dropped nothing")
	}
	if res.HV["vipi.retried"] == 0 {
		t.Fatal("dropped IPIs were never retried")
	}
}

// TestAuditDoesNotPerturbResults: arming the auditor must not change the
// simulation (it only observes; its clock events add no state mutations).
func TestAuditDoesNotPerturbResults(t *testing.T) {
	base := corunSetup("exim", core.DefaultConfig(), robustDur)
	a, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	audited := base
	audited.Audit = true
	b, err := Run(audited)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Violations) != 0 {
		t.Fatalf("clean run reported violations: %v", b.Violations[0])
	}
	b.Violations = nil
	// The audited run records a trace ring; counters and results must
	// otherwise match the unaudited run exactly.
	if !reflect.DeepEqual(a.VMs, b.VMs) {
		t.Fatal("auditing changed per-VM results")
	}
	if !reflect.DeepEqual(a.HV, b.HV) {
		t.Fatal("auditing changed hypervisor counters")
	}
}

// TestRunRecoversPanics: a scenario that panics inside the simulation
// surfaces as an error, not a crashed process.
func TestRunRecoversPanics(t *testing.T) {
	s := corunSetup("swaptions", core.DefaultConfig(), robustDur)
	s.PostCheck = func(*PostRun) error { panic("boom inside the run") }
	res, err := Run(s)
	if err == nil {
		t.Fatalf("panicking scenario did not error (res=%v)", res != nil)
	}
	if !strings.Contains(err.Error(), "panic") {
		t.Fatalf("expected a recovered panic, got: %v", err)
	}
}

// TestRunRejectsDegenerateHVConfig: a config whose credit-burn quantum
// truncates to zero is refused by validation before the world is built
// (it used to divide by zero mid-run).
func TestRunRejectsDegenerateHVConfig(t *testing.T) {
	s := corunSetup("swaptions", core.DefaultConfig(), robustDur)
	cfg := hv.DefaultConfig()
	cfg.CreditDebitPerTick = 0
	s.HVConfig = &cfg
	_, err := Run(s)
	if err == nil {
		t.Fatal("degenerate hv config accepted")
	}
	var cerr *hv.ConfigError
	if !errors.As(err, &cerr) || cerr.Field != "CreditDebitPerTick" {
		t.Fatalf("expected a CreditDebitPerTick ConfigError, got: %v", err)
	}
}

// TestRunValidatesSetup covers the hardened entry checks.
func TestRunValidatesSetup(t *testing.T) {
	if _, err := Run(Setup{PCPUs: -1, VMs: []VMSpec{{Name: "x", App: "exim"}}}); err == nil {
		t.Fatal("negative PCPUs accepted")
	}
	if _, err := Run(Setup{Duration: -simtime.Second, VMs: []VMSpec{{Name: "x", App: "exim"}}}); err == nil {
		t.Fatal("negative Duration accepted")
	}
	if _, err := Run(Setup{VMs: []VMSpec{{Name: "x", App: "exim", VCPUs: -2}}}); err == nil {
		t.Fatal("negative VCPUs accepted")
	}
}

// TestRunAllSettledIsolatesPoisonedJob is the regression test: one bad job
// in a grid yields an error result while every sibling completes.
func TestRunAllSettledIsolatesPoisonedJob(t *testing.T) {
	good := Setup{
		VMs:      []VMSpec{{Name: "ok", App: "swaptions", VCPUs: 2, Seed: 1}},
		PCPUs:    2,
		Core:     offConfig(),
		Duration: 50 * simtime.Millisecond,
	}
	bad := good
	bad.VMs = []VMSpec{{Name: "poison", App: "no-such-app", VCPUs: 2, Seed: 1}}
	settled := RunAllSettled([]Setup{good, bad, good, bad, good})
	for i, want := range []bool{true, false, true, false, true} {
		jr := settled[i]
		if want && (jr.Err != nil || jr.Result == nil) {
			t.Fatalf("job %d failed alongside the poisoned job: %v", i, jr.Err)
		}
		if !want {
			if jr.Err == nil || jr.Result != nil {
				t.Fatalf("job %d: poisoned job did not settle as an error", i)
			}
			if !strings.Contains(jr.Err.Error(), "no-such-app") {
				t.Fatalf("job %d: unexpected error %v", i, jr.Err)
			}
		}
	}
}

package hv

import (
	"fmt"

	"github.com/microslicedcore/microsliced/internal/obs"
	"github.com/microslicedcore/microsliced/internal/simtime"
	"github.com/microslicedcore/microsliced/internal/trace"
)

// ---------------------------------------------------------------------------
// Scheduler invariant auditor
// ---------------------------------------------------------------------------
//
// The auditor walks the full hypervisor state on a periodic clock event and
// reports inconsistencies as structured InvariantErrors instead of letting
// them surface later as a confusing panic (or worse, a silently wrong
// result). It exists for fault-injection runs: perturbed IPI timing and
// pCPU hotplug exercise scheduler paths the happy-path tests never reach,
// and the auditor is the oracle that says the state machine survived.
//
// Invariants checked on every walk:
//
//   1. Placement: every vCPU is in exactly one place — Running on exactly
//      one pCPU (with back-pointers consistent), Runnable on exactly one
//      runqueue of its current pool, or Blocked on neither.
//   2. Pool membership: each online pCPU's pool contains it; offline pCPUs
//      belong to no pool and hold no work; runqueues are priority-sorted.
//   3. Credits: every vCPU's credits stay within [CreditFloor, CreditCap].
//   4. Progress: no Runnable vCPU has waited longer than StarveHorizon
//      without being dispatched.

// InvariantError is one detected inconsistency. It carries the tail of the
// trace ring at detection time so the events leading up to the violation
// can be inspected without re-running, and — when an observer is attached —
// the full per-vCPU residency table, so e.g. a starvation report shows
// exactly how long each vCPU sat runnable versus running or blocked.
type InvariantError struct {
	Time      simtime.Time
	Rule      string // short rule identifier, e.g. "placement", "starvation"
	Detail    string
	Trace     []trace.Record
	Residency []obs.VCPUResidency // nil when no observer was attached
}

func (e *InvariantError) Error() string {
	return fmt.Sprintf("invariant %q violated at %v: %s", e.Rule, e.Time, e.Detail)
}

// AuditConfig configures the auditor. Zero values select defaults.
type AuditConfig struct {
	Interval      simtime.Duration // walk period (default: scheduler tick)
	StarveHorizon simtime.Duration // max tolerated Runnable wait (default 1s)
	MaxViolations int              // recording cap (default 32)
	TraceDepth    int              // trace-ring tail attached per violation (default 32)

	// OnViolation, when non-nil, fires synchronously for each recorded
	// violation (not for ones dropped beyond MaxViolations). The experiment
	// harness uses it to trigger the flight recorder.
	OnViolation func(*InvariantError)
}

func (c AuditConfig) withDefaults(cfg Config) AuditConfig {
	if c.Interval <= 0 {
		c.Interval = cfg.Tick
	}
	if c.StarveHorizon <= 0 {
		c.StarveHorizon = simtime.Second
	}
	if c.MaxViolations <= 0 {
		c.MaxViolations = 32
	}
	if c.TraceDepth <= 0 {
		c.TraceDepth = 32
	}
	return c
}

// Auditor periodically verifies hypervisor scheduling invariants.
type Auditor struct {
	h          *Hypervisor
	cfg        AuditConfig
	violations []InvariantError
	dropped    int
	// starved dedups starvation reports: one per (vCPU, wait episode).
	starved map[*VCPU]simtime.Time
	// running/queued are the walk's scratch maps (pass-1 placement counts),
	// allocated once and cleared per walk so a hardened run's audit cadence
	// is allocation-free.
	running map[*VCPU]int
	queued  map[*VCPU]int
}

// EnableAudit arms a periodic invariant walk on the hypervisor's clock.
// Call before Start; the first walk runs one interval into the run. The
// walk itself never mutates scheduler state, so enabling the auditor does
// not change simulation results. Each walk re-arms itself through
// Clock.Reschedule, reusing its event and pre-bound callback.
func (h *Hypervisor) EnableAudit(cfg AuditConfig) *Auditor {
	a := &Auditor{
		h:       h,
		cfg:     cfg.withDefaults(h.Cfg),
		starved: make(map[*VCPU]simtime.Time),
	}
	walk := func() {
		a.audit()
		h.Clock.Reschedule(a.cfg.Interval)
	}
	h.Clock.AfterLabeled(a.cfg.Interval, "audit", walk)
	return a
}

// Violations returns the violations recorded so far (capped at
// MaxViolations; Dropped reports how many exceeded the cap).
func (a *Auditor) Violations() []InvariantError { return a.violations }

// Dropped returns how many violations were detected beyond MaxViolations.
func (a *Auditor) Dropped() int { return a.dropped }

func (a *Auditor) report(rule, format string, args ...any) {
	if len(a.violations) >= a.cfg.MaxViolations {
		a.dropped++
		return
	}
	recs := a.h.Trace.Records()
	if len(recs) > a.cfg.TraceDepth {
		recs = recs[len(recs)-a.cfg.TraceDepth:]
	}
	tail := make([]trace.Record, len(recs))
	copy(tail, recs)
	e := InvariantError{
		Time:   a.h.Clock.Now(),
		Rule:   rule,
		Detail: fmt.Sprintf(format, args...),
		Trace:  tail,
	}
	if a.h.Obs != nil {
		e.Residency = a.h.Obs.ResidencySnapshot(e.Time)
	}
	a.violations = append(a.violations, e)
	if a.cfg.OnViolation != nil {
		a.cfg.OnViolation(&a.violations[len(a.violations)-1])
	}
}

func (a *Auditor) audit() {
	h := a.h
	now := h.Clock.Now()

	// Pass 0: the derived occupancy index agrees with the ground truth.
	if err := h.VerifySchedIndex(); err != nil {
		a.report("index", "%v", err)
	}

	// Pass 0b: pool membership conserves capacity — every online pCPU is in
	// exactly one pool, so the pools' online counts sum to the machine's.
	if got, want := h.normal.OnlineCount()+h.micro.OnlineCount(), h.OnlinePCPUs(); got != want {
		a.report("capacity", "pools hold %d online pCPUs but the machine has %d", got, want)
	}

	// Pass 1: pCPU-side view. Count where each vCPU appears.
	if a.running == nil {
		a.running = make(map[*VCPU]int, len(h.vcpus))
		a.queued = make(map[*VCPU]int, len(h.vcpus))
	}
	running, queued := a.running, a.queued
	clear(running)
	clear(queued)
	for _, p := range h.pcpus {
		if p.offline {
			if p.pool != nil {
				a.report("pool", "offline p%d still in pool %s", p.ID, p.pool.Name)
			}
			if p.cur != nil {
				a.report("placement", "offline p%d runs %v", p.ID, p.cur)
			}
			if len(p.runq) != 0 {
				a.report("placement", "offline p%d holds %d queued vCPUs", p.ID, len(p.runq))
			}
			continue
		}
		if p.pool == nil {
			a.report("pool", "online p%d belongs to no pool", p.ID)
		} else {
			found := false
			for _, q := range p.pool.pcpus {
				if q == p {
					found = true
					break
				}
			}
			if !found {
				a.report("pool", "p%d points at pool %s but the pool does not list it", p.ID, p.pool.Name)
			}
		}
		if v := p.cur; v != nil {
			running[v]++
			if v.state != StateRunning {
				a.report("placement", "p%d runs %v in state %v", p.ID, v, v.state)
			}
			if v.pcpu != p {
				a.report("placement", "%v on p%d has stale pcpu back-pointer", v, p.ID)
			}
			if v.queuedOn != nil {
				a.report("placement", "running %v also queued on p%d", v, v.queuedOn.ID)
			}
		}
		for i, v := range p.runq {
			queued[v]++
			if v.queuedOn != p {
				a.report("placement", "%v in p%d runq but queuedOn mismatch", v, p.ID)
			}
			if v.state != StateRunnable {
				a.report("placement", "queued %v on p%d in state %v", v, p.ID, v.state)
			}
			if v.pool != p.pool {
				a.report("pool", "%v of pool %v queued on p%d of pool %s",
					v, poolName(v.pool), p.ID, p.pool.Name)
			}
			if i > 0 && p.runq[i-1].prio > v.prio {
				a.report("placement", "p%d runqueue not priority-sorted at index %d", p.ID, i)
			}
		}
	}

	// Pass 2: vCPU-side view against the counts from pass 1.
	for _, v := range h.vcpus {
		switch v.state {
		case StateRunning:
			if running[v] != 1 || queued[v] != 0 {
				a.report("placement", "running %v appears on %d pCPUs and %d runqueues",
					v, running[v], queued[v])
			}
		case StateRunnable:
			if running[v] != 0 || queued[v] != 1 {
				a.report("placement", "runnable %v appears on %d pCPUs and %d runqueues",
					v, running[v], queued[v])
			}
			if wait := now - v.runnableSince; wait > a.cfg.StarveHorizon {
				if since, seen := a.starved[v]; !seen || since != v.runnableSince {
					a.starved[v] = v.runnableSince
					if r, ok := a.residencyOf(v, now); ok {
						a.report("starvation", "%v runnable for %v (> horizon %v); lifetime: ran %v, waited %v (boosted %v), blocked %v",
							v, wait, a.cfg.StarveHorizon, r.Running, r.Wait(), r.Boosted, r.Blocked)
					} else {
						a.report("starvation", "%v runnable for %v (> horizon %v)",
							v, wait, a.cfg.StarveHorizon)
					}
				}
			}
		case StateBlocked:
			if running[v] != 0 || queued[v] != 0 {
				a.report("placement", "blocked %v appears on %d pCPUs and %d runqueues",
					v, running[v], queued[v])
			}
		default:
			a.report("placement", "%v in unknown state %d", v, int(v.state))
		}
		if v.state != StateRunnable {
			delete(a.starved, v)
		}
		if v.credits < h.Cfg.CreditFloor || v.credits > h.Cfg.CreditCap {
			a.report("credits", "%v credits %d outside [%d, %d]",
				v, v.credits, h.Cfg.CreditFloor, h.Cfg.CreditCap)
		}
		if v.pool != v.homePool && v.pool != h.micro && v.pool != nil {
			a.report("pool", "%v in pool %s that is neither home nor micro", v, v.pool.Name)
		}
	}
}

// residencyOf fetches one vCPU's accounting snapshot (ok=false when no
// observer is attached).
func (a *Auditor) residencyOf(v *VCPU, now simtime.Time) (obs.VCPUResidency, bool) {
	if a.h.Obs == nil {
		return obs.VCPUResidency{}, false
	}
	return a.h.Obs.VCPUResidencyOf(v.ID, now)
}

func poolName(pl *Pool) string {
	if pl == nil {
		return "<nil>"
	}
	return pl.Name
}

package microsliced

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"github.com/microslicedcore/microsliced/internal/rng"
)

// TestRandomScenariosSurviveAudit is the property test: any randomly drawn
// *valid* scenario simulates without error and with a clean invariant audit.
func TestRandomScenariosSurviveAudit(t *testing.T) {
	apps := Workloads()
	r := rng.New(0xbadc0de)
	for i := 0; i < 8; i++ {
		pcpus := 2 + int(r.Int63n(3)) // 2..4
		s := Scenario{
			PCPUs:   pcpus,
			Seconds: 0.05,
			Audit:   true,
		}
		nvm := 1 + int(r.Int63n(2))
		for v := 0; v < nvm; v++ {
			app := apps[r.Int63n(int64(len(apps)))]
			s.VMs = append(s.VMs, VM{
				Name:  fmt.Sprintf("vm%d", v),
				App:   app,
				VCPUs: 2 + int(r.Int63n(3)),
				Seed:  uint64(r.Int63n(1 << 30)),
				Disk:  true, // harmless for non-disk apps, required by fileserver
			})
		}
		switch r.Int63n(3) {
		case 0:
			s.Mode = Off
		case 1:
			s.Mode = Static
			s.StaticCores = 1 + int(r.Int63n(int64(pcpus)))
		case 2:
			s.Mode = Dynamic
		}
		if r.Bool(0.5) {
			s.Faults = &FaultPlan{
				Seed:          uint64(i + 1),
				OfflinePCPUs:  int(r.Int63n(int64(pcpus))), // < pcpus, keeps one online
				IPIDelayProb:  0.2,
				IPIDelayMaxUs: 100,
				IPIDropProb:   0.1,
				TickJitterUs:  500,
			}
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("scenario %d: generator produced an invalid scenario: %v", i, err)
		}
		res, err := Simulate(s)
		if err != nil {
			t.Fatalf("scenario %d (%+v): %v", i, s, err)
		}
		if len(res.InvariantViolations) != 0 {
			t.Fatalf("scenario %d: %d invariant violations, first: %s",
				i, len(res.InvariantViolations), res.InvariantViolations[0])
		}
	}
}

// TestValidateTypedErrors checks every rejection is a *ScenarioError naming
// the offending field.
func TestValidateTypedErrors(t *testing.T) {
	cases := []struct {
		name  string
		s     Scenario
		field string
	}{
		{"no-vms", Scenario{}, "VMs"},
		{"negative-pcpus", Scenario{PCPUs: -1, VMs: []VM{{App: "exim"}}}, "PCPUs"},
		{"negative-seconds", Scenario{Seconds: -1, VMs: []VM{{App: "exim"}}}, "Seconds"},
		{"negative-vcpus", Scenario{VMs: []VM{{App: "exim", VCPUs: -3}}}, "VMs[0].VCPUs"},
		{"unknown-app", Scenario{VMs: []VM{{App: "no-such-app"}}}, "VMs[0].App"},
		{"unknown-mode", Scenario{Mode: "turbo", VMs: []VM{{App: "exim"}}}, "Mode"},
		{"negative-static", Scenario{Mode: Static, StaticCores: -1, VMs: []VM{{App: "exim"}}}, "StaticCores"},
		{"static-over-host", Scenario{PCPUs: 4, Mode: Static, StaticCores: 5, VMs: []VM{{App: "exim"}}}, "StaticCores"},
		{"unknown-rival", Scenario{Rival: "zen5", VMs: []VM{{App: "exim"}}}, "Rival"},
		{"rival-with-mode", Scenario{Rival: "vturbo", Mode: Dynamic, VMs: []VM{{App: "exim"}}}, "Rival"},
		{"bad-fault-prob", Scenario{VMs: []VM{{App: "exim"}},
			Faults: &FaultPlan{IPIDropProb: 2}}, "Faults"},
		{"fault-unplugs-host", Scenario{PCPUs: 2, VMs: []VM{{App: "exim"}},
			Faults: &FaultPlan{OfflinePCPUs: 2}}, "Faults.OfflinePCPUs"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.s.Validate()
			if err == nil {
				t.Fatal("invalid scenario accepted")
			}
			var se *ScenarioError
			if !errors.As(err, &se) {
				t.Fatalf("error is %T, want *ScenarioError: %v", err, err)
			}
			if se.Field != c.field {
				t.Fatalf("blamed field %q, want %q (%v)", se.Field, c.field, err)
			}
			// Simulate must refuse the same scenario up front.
			if _, serr := Simulate(c.s); serr == nil {
				t.Fatal("Simulate ran an invalid scenario")
			}
		})
	}
	ok := Scenario{VMs: []VM{{App: "exim"}}, Mode: Static, StaticCores: 2}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
}

// FuzzScenarioValidate: Validate must never panic, and every rejection must
// be a typed *ScenarioError.
func FuzzScenarioValidate(f *testing.F) {
	f.Add(12, 12, "exim", "static", 2, "", 3.0, uint64(1), 0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
	f.Add(-1, -1, "", "off", -1, "vturbo", -1.0, uint64(0), -1, 2.0, -1.0, 0.5, 1e9, 0.5, 0.0)
	f.Add(2, 0, "dedup", "dynamic", 99, "zen5", 0.0, uint64(7), 5, 0.3, 200.0, 0.2, 500.0, 0.1, 8.0)
	f.Add(0, 3, "no-such-app", "", 0, "cosched", math.NaN(), uint64(3), 1, math.Inf(1), math.NaN(), -0.0, -500.0, 1.0, 0.5)
	f.Fuzz(func(t *testing.T, pcpus, vcpus int, app, mode string, static int,
		rival string, seconds float64, seed uint64, offline int,
		dropProb, delayUs, delayProb, jitterUs, stallProb, stallFactor float64) {
		s := Scenario{
			PCPUs:       pcpus,
			VMs:         []VM{{App: app, VCPUs: vcpus, Seed: seed}},
			Mode:        Mode(mode),
			StaticCores: static,
			Rival:       rival,
			Seconds:     seconds,
			Faults: &FaultPlan{
				Seed:            seed,
				OfflinePCPUs:    offline,
				IPIDropProb:     dropProb,
				IPIDelayProb:    delayProb,
				IPIDelayMaxUs:   delayUs,
				TickJitterUs:    jitterUs,
				LockStallProb:   stallProb,
				LockStallFactor: stallFactor,
			},
		}
		if err := s.Validate(); err != nil {
			var se *ScenarioError
			if !errors.As(err, &se) {
				t.Fatalf("Validate returned %T, want *ScenarioError: %v", err, err)
			}
			if se.Field == "" || se.Reason == "" {
				t.Fatalf("ScenarioError missing field/reason: %+v", se)
			}
		}
	})
}

// Package vdisk models a virtual block device: bounded in-flight
// parallelism (queue depth), a seek+transfer service-time model, and an
// NVMe-style completion interrupt raised towards the submitting vCPU.
//
// The device gives the simulator a second I/O path besides internal/vnet:
// guest threads block in OpDisk until the completion IRQ arrives, so a
// runnable-but-preempted vCPU turns microsecond storage latency into
// multi-millisecond latency exactly as the paper's network path does —
// and the micro-sliced mechanism's vIRQ-relay acceleration applies
// unchanged.
package vdisk

import (
	"github.com/microslicedcore/microsliced/internal/guest"
	"github.com/microslicedcore/microsliced/internal/metrics"
	"github.com/microslicedcore/microsliced/internal/obs"
	"github.com/microslicedcore/microsliced/internal/rng"
	"github.com/microslicedcore/microsliced/internal/simtime"
)

// Defaults model a fast SATA/entry-NVMe SSD.
const (
	DefaultDepth    = 8
	DefaultSeekMean = 60 * simtime.Microsecond
	DefaultRateBps  = 400 << 20 // 400 MiB/s
)

type request struct {
	bytes  int
	write  bool
	done   func()
	queued simtime.Time
	span   obs.SpanRef // open disk_io span (0: none)
}

// Disk is a virtual block device.
type Disk struct {
	clock *simtime.Clock
	r     *rng.Source

	// Depth bounds concurrent in-flight requests.
	Depth int
	// SeekMean is the mean per-request positioning/firmware latency.
	SeekMean simtime.Duration
	// RateBps is the sustained transfer rate in bytes per second.
	RateBps int64

	inflight int
	queue    []request

	Reads     uint64
	Writes    uint64
	Completed uint64
	// Latency records device-level request latency (queue + service), in
	// nanoseconds.
	Latency *metrics.Histogram

	// Obs, when non-nil, receives a disk_io span per request (submit to
	// device completion), attributed to domain ObsDom. Set both at wiring
	// time; the disk itself has no hypervisor reference.
	Obs    *obs.Observer
	ObsDom int16
}

// New creates a disk with the default performance model.
func New(clock *simtime.Clock, seed uint64) *Disk {
	return &Disk{
		clock:    clock,
		r:        rng.New(seed),
		Depth:    DefaultDepth,
		SeekMean: DefaultSeekMean,
		RateBps:  DefaultRateBps,
		Latency:  metrics.NewHistogram(8),
	}
}

var _ guest.BlockDevice = (*Disk)(nil)

// QueueLen returns the number of requests waiting for a device slot.
func (d *Disk) QueueLen() int { return len(d.queue) }

// Inflight returns the number of requests being serviced.
func (d *Disk) Inflight() int { return d.inflight }

// Submit implements guest.BlockDevice.
func (d *Disk) Submit(bytes int, write bool, done func()) {
	if bytes <= 0 {
		bytes = 512
	}
	if write {
		d.Writes++
	} else {
		d.Reads++
	}
	req := request{bytes: bytes, write: write, done: done, queued: d.clock.Now()}
	if d.Obs != nil {
		req.span = d.Obs.Begin(obs.SpanDiskIO, d.ObsDom, -1, uint64(bytes), req.queued)
	}
	d.queue = append(d.queue, req)
	d.pump()
}

// serviceTime draws one request's device time.
func (d *Disk) serviceTime(bytes int) simtime.Duration {
	seek := simtime.Duration(d.r.ExpDur(int64(d.SeekMean)))
	transfer := simtime.Duration(int64(bytes) * int64(simtime.Second) / d.RateBps)
	return seek + transfer
}

func (d *Disk) pump() {
	for d.inflight < d.Depth && len(d.queue) > 0 {
		req := d.queue[0]
		d.queue = d.queue[1:]
		d.inflight++
		if d.Obs != nil {
			// The request leaves the submission queue: everything since
			// Submit was queue wait, the rest is device service.
			d.Obs.Stage(req.span, obs.DiskStageQueue, d.clock.Now())
		}
		d.clock.After(d.serviceTime(req.bytes), func() {
			d.inflight--
			d.Completed++
			d.Latency.Observe(int64(d.clock.Now() - req.queued))
			if d.Obs != nil {
				d.Obs.End(req.span, d.clock.Now())
			}
			if req.done != nil {
				req.done()
			}
			d.pump()
		})
	}
}

package experiment

import (
	"fmt"
	"io"

	"github.com/microslicedcore/microsliced/internal/core"
	"github.com/microslicedcore/microsliced/internal/hv"
	"github.com/microslicedcore/microsliced/internal/report"
	"github.com/microslicedcore/microsliced/internal/rivals"
	"github.com/microslicedcore/microsliced/internal/simtime"
)

// Rival selects a prior-work system in place of the paper's mechanism.
type Rival string

// Rival systems (paper Table 1).
const (
	RivalNone    Rival = ""
	RivalFixed   Rival = "fixed-usliced"
	RivalVTurbo  Rival = "vturbo"
	RivalVTRS    Rival = "vtrs"
	RivalCoSched Rival = "cosched"
)

// attachRival installs a rival system on a freshly built hypervisor and
// returns its start function.
func attachRival(h *hv.Hypervisor, r Rival) (func(), error) {
	switch r {
	case RivalFixed:
		s := rivals.NewFixedMicroSliced(h, 100*simtime.Microsecond)
		return s.Start, nil
	case RivalVTurbo:
		s := rivals.NewVTurbo(h, 1)
		return s.Start, nil
	case RivalVTRS:
		s := rivals.NewVTRS(h)
		return s.Start, nil
	case RivalCoSched:
		s := rivals.NewCoSched(h, 0)
		return s.Start, nil
	default:
		return nil, fmt.Errorf("experiment: unknown rival %q", r)
	}
}

// Table1Row is one system's outcome across the three symptom scenarios.
type Table1Row struct {
	System string
	// LockGain: exim throughput vs baseline (lock-holder preemption).
	LockGain float64
	// TLBGain: dedup throughput vs baseline (one-to-many IPIs).
	TLBGain float64
	// MixedIOGain: mixed-vCPU iPerf TCP bandwidth vs baseline.
	MixedIOGain float64
	// CoRunnerCost: swaptions normalized execution time in the lock
	// scenario (>1 is worse) — the price of the mitigation.
	CoRunnerCost float64
}

// Table1Result quantifies the paper's Table 1: every prior approach
// against the flexible micro-sliced cores on the three symptom classes.
type Table1Result struct {
	Rows []Table1Row
}

// runRivalCorun runs a co-run scenario under a rival system.
func runRivalCorun(app string, r Rival, dur simtime.Duration) (*Result, error) {
	s := corunSetup(app, offConfig(), dur)
	s.Rival = r
	if r == RivalFixed {
		cfg := rivals.ShortSliceConfig(100 * simtime.Microsecond)
		s.HVConfig = &cfg
	}
	return Run(s)
}

// Table1 measures baseline, the three implemented rivals, and the paper's
// mechanism (static best and dynamic) on the lock, TLB and mixed-I/O
// symptom scenarios.
func Table1(dur simtime.Duration) (*Table1Result, error) {
	type sysCfg struct {
		name  string
		rival Rival
		cc    *core.Config
	}
	static := core.StaticConfig(1)
	staticTLB := core.StaticConfig(3)
	dynamic := core.DefaultConfig()
	systems := []sysCfg{
		{"baseline", RivalNone, nil},
		{"cosched", RivalCoSched, nil},
		{"fixed-usliced", RivalFixed, nil},
		{"vturbo", RivalVTurbo, nil},
		{"vtrs", RivalVTRS, nil},
		{"usliced-static", RivalNone, &static},
		{"usliced-dynamic", RivalNone, &dynamic},
	}

	// Each system contributes three independent measurements (lock, TLB,
	// mixed I/O). Run the whole (system x scenario) grid on the worker pool
	// and assemble the baseline-normalized rows serially afterwards.
	runOne := func(sys sysCfg, app string, tlb bool) (*Result, error) {
		if sys.rival != RivalNone {
			return runRivalCorun(app, sys.rival, dur)
		}
		cc := offConfig()
		if sys.cc != nil {
			cc = *sys.cc
			if tlb && sys.name == "usliced-static" {
				cc = staticTLB
			}
		}
		return Run(corunSetup(app, cc, dur))
	}
	type t1cell struct {
		lock *Result
		tlb  *Result
		io   *IOMeasure
	}
	cells := make([]t1cell, len(systems))
	err := parallelDo(3*len(systems), func(idx int) error {
		sys := systems[idx/3]
		cell := &cells[idx/3]
		switch idx % 3 {
		case 0:
			r, err := runOne(sys, "exim", false)
			cell.lock = r
			return err
		case 1:
			r, err := runOne(sys, "dedup", true)
			cell.tlb = r
			return err
		default:
			var ioCC core.Config
			switch {
			case sys.rival != RivalNone:
				ioCC = offConfig() // rival installed by RunIORival itself
			case sys.cc != nil:
				ioCC = *sys.cc
			default:
				ioCC = offConfig()
			}
			m, err := RunIORival("tcp", true, ioCC, sys.rival, dur)
			cell.io = m
			return err
		}
	})
	if err != nil {
		return nil, err
	}

	out := &Table1Result{}
	var baseLock, baseTLB, baseCo, baseIO float64
	for i, sys := range systems {
		cell := cells[i]
		lockUnits := float64(cell.lock.VM("exim").Units)
		tlbUnits := float64(cell.tlb.VM("dedup").Units)
		coUnits := float64(cell.lock.VM("swaptions").Units)
		if sys.name == "baseline" {
			baseLock, baseTLB, baseCo, baseIO = lockUnits, tlbUnits, coUnits, cell.io.Mbps
		}
		out.Rows = append(out.Rows, Table1Row{
			System:       sys.name,
			LockGain:     lockUnits / baseLock,
			TLBGain:      tlbUnits / baseTLB,
			MixedIOGain:  cell.io.Mbps / baseIO,
			CoRunnerCost: baseCo / coUnits,
		})
	}
	return out, nil
}

// Render implements report.Renderer.
func (r *Table1Result) Render(w io.Writer) {
	t := report.Table{
		Title: "Table 1 (quantified): prior approaches vs flexible micro-sliced cores",
		Columns: []string{"system", "lock gain (exim)", "tlb gain (dedup)",
			"mixed-I/O gain (tcp)", "co-runner cost"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.System, row.LockGain, row.TLBGain, row.MixedIOGain, row.CoRunnerCost)
	}
	t.Notes = append(t.Notes,
		"gains are throughput vs baseline (>1 better); co-runner cost is swaptions normalized time in the lock scenario (>1 worse)")
	t.Notes = append(t.Notes,
		"expected shape per the paper: vturbo helps only I/O; vtrs helps broadly but coarsely; fixed-usliced helps all three but taxes the co-runner; usliced matches/beats all with the lowest tax")
	t.Render(w)
}

package check

import (
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"github.com/microslicedcore/microsliced/internal/experiment"
	"github.com/microslicedcore/microsliced/internal/obs"
	"github.com/microslicedcore/microsliced/internal/simtime"
)

// envInt reads an integer environment override (the CI long-run job scales
// the suite up without a code change).
func envInt(name string, def int) int {
	if s := os.Getenv(name); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return def
}

func envUint(name string, def uint64) uint64 {
	if s := os.Getenv(name); s != "" {
		if n, err := strconv.ParseUint(s, 10, 64); err == nil {
			return n
		}
	}
	return def
}

// TestConformanceSuite is the harness's main entry point: 200 generated
// scenarios (CHECK_COUNT/CHECK_SEED override; the scheduled CI job runs 10×
// with rotating seeds), each checked against every metamorphic relation and
// conservation law. Failures are shrunk and dumped under CHECK_FIXTURE_DIR
// when set.
func TestConformanceSuite(t *testing.T) {
	opt := Options{
		Seed:       envUint("CHECK_SEED", 1),
		Count:      envInt("CHECK_COUNT", 200),
		FixtureDir: os.Getenv("CHECK_FIXTURE_DIR"),
	}
	if testing.Verbose() {
		opt.Progress = os.Stderr
	}
	rep, err := RunSuite(opt)
	if err != nil {
		t.Fatalf("suite: %v", err)
	}
	if rep.Checked < opt.Count && len(rep.Failures) == 0 {
		t.Fatalf("suite stopped early: %d/%d scenarios", rep.Checked, opt.Count)
	}
	for i, f := range rep.Failures {
		where := ""
		if i < len(rep.FixturePaths) && rep.FixturePaths[i] != "" {
			where = " (fixture: " + rep.FixturePaths[i] + ")"
		}
		t.Errorf("seed %d: %s%s\nshrunk repro: %+v", f.Seed, f.Err, where, f.Shrunk)
	}
}

// TestInjectedBugCaughtAndShrunk proves the harness has teeth: a mutation
// that corrupts one hypervisor counter whenever a run has at least two VMs
// must be detected by the relation comparison and shrunk to a repro of at
// most two domains.
func TestInjectedBugCaughtAndShrunk(t *testing.T) {
	c := &Checker{mutate: func(r *experiment.Result) {
		if len(r.VMs) >= 2 {
			r.HV["yield.total"]++
		}
	}}
	var sc Scenario
	found := false
	for seed := uint64(1); seed < 64 && !found; seed++ {
		if s := Generate(seed); len(s.VMs) >= 2 {
			// Keep the hunt cheap: the shrinker, not the generator, is
			// under test, so any multi-VM scenario will do.
			sc, found = s, true
		}
	}
	if !found {
		t.Fatal("generator produced no multi-VM scenario in 64 seeds")
	}
	err := c.Check(sc)
	if err == nil {
		t.Fatal("injected accounting bug was not caught")
	}
	if !strings.Contains(err.Error(), "yield.total") {
		t.Fatalf("diff does not name the corrupted counter: %v", err)
	}
	fails := func(s Scenario) bool { return c.Check(s) != nil }
	shrunk := Shrink(sc, fails, 80)
	if len(shrunk.VMs) > 2 {
		t.Fatalf("shrunk repro still has %d domains, want <= 2", len(shrunk.VMs))
	}
	if !fails(shrunk) {
		t.Fatal("shrunk scenario no longer reproduces the failure")
	}
}

// TestInjectedStageSkewCaughtAndShrunk proves the stage conservation law has
// teeth: a PostCheck that deliberately mis-attributes one microsecond of
// wake_dispatch time to a stage — without touching the span ledger — must be
// caught by the Σ stages == span total law and shrunk like any other bug.
func TestInjectedStageSkewCaughtAndShrunk(t *testing.T) {
	c := &Checker{post: func(pr *experiment.PostRun) error {
		if pr.Obs != nil {
			pr.Obs.SkewStageLedger(obs.SpanWakeDispatch, obs.WakeStageRunq, simtime.Microsecond)
		}
		return Conservation(pr)
	}}
	sc := Generate(1)
	err := c.Check(sc)
	if err == nil {
		t.Fatal("injected stage mis-attribution was not caught")
	}
	if !strings.Contains(err.Error(), "stage ledger") || !strings.Contains(err.Error(), "wake_dispatch") {
		t.Fatalf("error does not name the skewed stage ledger: %v", err)
	}
	fails := func(s Scenario) bool { return c.Check(s) != nil }
	shrunk := Shrink(sc, fails, 80)
	if len(shrunk.VMs) > 2 {
		t.Fatalf("shrunk repro still has %d domains, want <= 2", len(shrunk.VMs))
	}
	if !fails(shrunk) {
		t.Fatal("shrunk scenario no longer reproduces the failure")
	}
}

// TestInjectedDecisionSkewCaughtAndShrunk proves the controller audit law
// has teeth: skewing one entry of the baseline decision log — without
// touching any counter — must be caught by the bit-identical decision-log
// comparison across the metamorphic relations and shrunk to a repro of at
// most two domains.
func TestInjectedDecisionSkewCaughtAndShrunk(t *testing.T) {
	c := &Checker{mutate: func(r *experiment.Result) {
		if len(r.Decisions) > 0 {
			r.Decisions[len(r.Decisions)-1].Chosen++
		}
	}}
	var sc Scenario
	found := false
	for seed := uint64(1); seed < 128 && !found; seed++ {
		if s := Generate(seed); s.Mode == "dynamic" {
			// Any dynamic scenario whose baseline run records at least one
			// decision will do — the mutation is a no-op otherwise.
			if c.Check(s) != nil {
				sc, found = s, true
			}
		}
	}
	if !found {
		t.Fatal("no dynamic scenario with a non-empty decision log in 128 seeds")
	}
	err := c.Check(sc)
	if err == nil {
		t.Fatal("injected decision skew was not caught")
	}
	if !strings.Contains(err.Error(), "decision") {
		t.Fatalf("error does not name the decision log: %v", err)
	}
	fails := func(s Scenario) bool { return c.Check(s) != nil }
	shrunk := Shrink(sc, fails, 80)
	if len(shrunk.VMs) > 2 {
		t.Fatalf("shrunk repro still has %d domains, want <= 2", len(shrunk.VMs))
	}
	if !fails(shrunk) {
		t.Fatal("shrunk scenario no longer reproduces the failure")
	}
}

// TestInjectedRequestLeakCaught proves the request conservation law has
// teeth: silently "losing" one request between the softirq and the socket
// (Delivered bumped without a matching consume) must break the pipeline
// ledger equalities.
func TestInjectedRequestLeakCaught(t *testing.T) {
	c := &Checker{post: func(pr *experiment.PostRun) error {
		for i := range pr.Result.VMs {
			if rq := pr.Result.VMs[i].Requests; rq != nil {
				rq.Delivered++
				break
			}
		}
		return Conservation(pr)
	}}
	var sc Scenario
	found := false
	for seed := uint64(1); seed < 128 && !found; seed++ {
		s := Generate(seed)
		for _, vm := range s.VMs {
			if vm.ServeRate > 0 {
				sc, found = s, true
				break
			}
		}
	}
	if !found {
		t.Fatal("generator produced no serving scenario in 128 seeds")
	}
	err := c.Check(sc)
	if err == nil {
		t.Fatal("injected request leak was not caught")
	}
	if !strings.Contains(err.Error(), "requests") {
		t.Fatalf("error does not name the request ledger: %v", err)
	}
}

// TestGenerateDeterministic: the same seed always yields the same scenario
// (fixtures would be worthless otherwise).
func TestGenerateDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 32; seed++ {
		a, b := Generate(seed), Generate(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: %+v != %+v", seed, a, b)
		}
	}
}

// TestGenerateProducesValidSetups: every generated scenario must pass the
// harness's own validation (no pin out of range, valid apps, sound config).
func TestGenerateProducesValidSetups(t *testing.T) {
	for seed := uint64(100); seed < 140; seed++ {
		sc := Generate(seed)
		s := sc.ToSetup()
		if len(s.VMs) == 0 {
			t.Fatalf("seed %d: no VMs", seed)
		}
		if err := s.HVConfig.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, vm := range s.VMs {
			for _, pin := range vm.Pins {
				if pin >= s.PCPUs {
					t.Fatalf("seed %d: pin %d on %d pCPUs", seed, pin, s.PCPUs)
				}
			}
		}
	}
}

// TestFixtureRoundTrip: a fixture survives the write/load cycle intact and
// its scenario replays.
func TestFixtureRoundTrip(t *testing.T) {
	dir := t.TempDir()
	f := &Fixture{
		Seed:     42,
		Err:      "relation \"domain-relabel\" violated: hv counters differ",
		Original: Generate(42),
		Shrunk:   Generate(7),
	}
	path, err := WriteFixture(dir, f)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Dir(path) != dir {
		t.Fatalf("fixture written to %s, want under %s", path, dir)
	}
	loaded, err := LoadFixture(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f, loaded) {
		t.Fatalf("round trip changed the fixture:\n%+v\n%+v", f, loaded)
	}
	if err := ReplayFixture(loaded); err != nil {
		t.Fatalf("healthy fixture scenario fails on replay: %v", err)
	}
}

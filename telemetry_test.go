package microsliced

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenScenario is the fixed-seed scenario pinned by the golden file: a
// 2:1 consolidation under the dynamic mechanism, short enough for CI.
func goldenScenario() Scenario {
	return Scenario{
		VMs: []VM{
			{App: "exim", Seed: 11},
			{App: "swaptions", Seed: 22},
		},
		Mode:      Dynamic,
		Seconds:   0.3,
		Telemetry: &TelemetryConfig{},
	}
}

// TestTelemetryGolden pins the wake→dispatch latency attribution of a
// fixed-seed scenario. The simulation is deterministic, so these quantiles
// must reproduce bit-for-bit; any drift means either scheduling or the
// observation layer changed behaviour. Refresh with: go test -run
// TestTelemetryGolden -update .
func TestTelemetryGolden(t *testing.T) {
	res, err := Simulate(goldenScenario())
	if err != nil {
		t.Fatal(err)
	}
	if res.Telemetry == nil {
		t.Fatal("Results.Telemetry is nil despite Scenario.Telemetry being set")
	}
	wd := res.Telemetry.Span("wake_dispatch")
	if wd.Count == 0 {
		t.Fatal("no wake_dispatch spans recorded")
	}
	type golden struct {
		WakeDispatch SpanStats            `json:"wake_dispatch"`
		Spans        map[string]SpanStats `json:"spans"`
	}
	got := golden{WakeDispatch: wd, Spans: res.Telemetry.Spans}

	path := filepath.Join("testdata", "telemetry_golden.json")
	if *update {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	var want golden
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}
	if got.WakeDispatch != want.WakeDispatch {
		t.Errorf("wake_dispatch drifted:\n got %+v\nwant %+v", got.WakeDispatch, want.WakeDispatch)
	}
	for kind, w := range want.Spans {
		if g := got.Spans[kind]; g != w {
			t.Errorf("span %s drifted:\n got %+v\nwant %+v", kind, g, w)
		}
	}
	for kind := range got.Spans {
		if _, ok := want.Spans[kind]; !ok {
			t.Errorf("span %s recorded but absent from golden file (run -update?)", kind)
		}
	}
}

// TestTelemetryTraceJSON checks the public TraceJSON hook produces a
// non-trivial, decodable Chrome trace-event document.
func TestTelemetryTraceJSON(t *testing.T) {
	s := goldenScenario()
	s.Seconds = 0.1
	var buf bytes.Buffer
	s.TraceJSON = &buf
	if _, err := Simulate(s); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("TraceJSON output is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ns" || len(doc.TraceEvents) == 0 {
		t.Fatalf("trace doc unit=%q events=%d", doc.DisplayTimeUnit, len(doc.TraceEvents))
	}
	var slices int
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "X" {
			slices++
		}
	}
	if slices == 0 {
		t.Error("trace has no complete (X) scheduling slices")
	}
}

// TestTelemetryFlightRecorder drives a fault-injected scenario and checks
// the flight recorder dumps to disk.
func TestTelemetryFlightRecorder(t *testing.T) {
	dir := t.TempDir()
	s := Scenario{
		VMs:       []VM{{App: "swaptions", Seed: 11}},
		Seconds:   0.5,
		Faults:    &FaultPlan{Seed: 7, OfflinePCPUs: 2},
		Telemetry: &TelemetryConfig{FlightDir: dir, Label: "golden"},
	}
	res, err := Simulate(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Telemetry == nil {
		t.Fatal("no telemetry")
	}
	if res.Telemetry.FlightDumps == 0 {
		t.Fatal("fault injection triggered no flight dumps")
	}
	files, _ := filepath.Glob(filepath.Join(dir, "flight-golden-*.json"))
	if len(files) != res.Telemetry.FlightDumps {
		t.Errorf("flight files on disk = %d, want %d", len(files), res.Telemetry.FlightDumps)
	}
}

// TestTelemetryDeterministic runs the golden scenario twice and requires an
// identical read-out, the property the golden file relies on.
func TestTelemetryDeterministic(t *testing.T) {
	a, err := Simulate(goldenScenario())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(goldenScenario())
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a.Telemetry)
	jb, _ := json.Marshal(b.Telemetry)
	if !bytes.Equal(ja, jb) {
		t.Errorf("telemetry not deterministic:\n%s\nvs\n%s", ja, jb)
	}
}

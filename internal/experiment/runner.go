package experiment

import (
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/microslicedcore/microsliced/internal/obs"
)

// Every scenario simulation is single-threaded and builds its entire world —
// clock, hypervisor, guests, RNGs — from scratch inside Run, so scenarios
// are embarrassingly parallel across a grid. RunAll exploits that with a
// bounded worker pool while keeping results order-preserving and therefore
// bit-for-bit identical to a serial loop.

// parallelism holds the configured worker count (0 = GOMAXPROCS), read and
// written atomically so tests and cmd flags can adjust it at any time.
var parallelism atomic.Int64

// SetParallelism sets the worker count used by RunAll and the grid
// generators. n <= 0 restores the default (GOMAXPROCS).
func SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	parallelism.Store(int64(n))
}

// Parallelism returns the effective worker count.
func Parallelism() int {
	if n := int(parallelism.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// defaultObs, when set, is applied to every Setup whose Obs field is nil, so
// a command-line flag can light up telemetry across entire scenario grids
// without touching each generator. Read/written atomically: grids run on the
// worker pool.
var defaultObs atomic.Pointer[obs.Config]

// SetDefaultObs installs (or, with nil, removes) the process-wide default
// observability config consulted by Run when Setup.Obs is nil.
func SetDefaultObs(cfg *obs.Config) { defaultObs.Store(cfg) }

// runHook, when set, fires after every successful Run with the settled
// Setup and Result. Callers needing mutual exclusion (e.g. printing)
// synchronize inside the hook; Run invokes it from whichever worker
// goroutine executed the scenario.
var runHook atomic.Pointer[func(Setup, *Result)]

// SetRunHook installs (or, with nil, removes) a callback observing every
// completed scenario. The experiment grids stay oblivious; paperbench uses
// this for its per-scenario telemetry read-out.
func SetRunHook(fn func(Setup, *Result)) {
	if fn == nil {
		runHook.Store(nil)
		return
	}
	runHook.Store(&fn)
}

// checkHook, when set, runs as a post-run check after every Run, in
// addition to any per-Setup PostCheck. A returned error fails the Run.
// paperbench -check installs the conservation checker here so every
// scenario of every grid is audited without touching the generators.
var checkHook atomic.Pointer[func(*PostRun) error]

// SetCheckHook installs (or, with nil, removes) the process-wide post-run
// check consulted by Run after every scenario.
func SetCheckHook(fn func(*PostRun) error) {
	if fn == nil {
		checkHook.Store(nil)
		return
	}
	checkHook.Store(&fn)
}

// parallelDo invokes f(0), ..., f(n-1) on a bounded worker pool and waits
// for all of them. With one effective worker it degenerates to an in-order
// serial loop with fail-fast. Otherwise indices are handed out through an
// atomic counter; on failure the error with the lowest index wins (every
// index below the current error still runs, so the returned error is
// deterministic regardless of goroutine interleaving) and higher indices
// are skipped.
func parallelDo(n int, f func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := Parallelism()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := f(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next     atomic.Int64
		mu       sync.Mutex
		firstErr error
		errIdx   = n
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				mu.Lock()
				skip := firstErr != nil && i > errIdx
				mu.Unlock()
				if skip {
					continue
				}
				if err := f(i); err != nil {
					mu.Lock()
					if i < errIdx {
						firstErr, errIdx = err, i
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// JobResult is one Setup's settled outcome: exactly one of Result and Err
// is non-nil.
type JobResult struct {
	Result *Result
	Err    error
}

// RunAllSettled executes every Setup on the worker pool with per-job
// isolation: a failing (or panicking — Run recovers panics into errors)
// job yields an error JobResult and never prevents its siblings from
// completing. Results are order-preserving.
func RunAllSettled(setups []Setup) []JobResult {
	out := make([]JobResult, len(setups))
	parallelDo(len(setups), func(i int) error {
		r, err := Run(setups[i])
		out[i] = JobResult{Result: r, Err: err}
		return nil // errors are settled per job, never propagated
	})
	return out
}

// RunAll executes every Setup on the worker pool and returns the results in
// input order. On error it returns nil results and the error of the
// lowest-index failing Setup (every job still runs to completion).
func RunAll(setups []Setup) ([]*Result, error) {
	settled := RunAllSettled(setups)
	results := make([]*Result, len(setups))
	for i, jr := range settled {
		if jr.Err != nil {
			return nil, jr.Err
		}
		results[i] = jr.Result
	}
	return results, nil
}

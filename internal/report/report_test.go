package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestRenderAlignsColumns(t *testing.T) {
	tab := Table{
		Title:   "T",
		Columns: []string{"a", "long-column"},
		Notes:   []string{"a note"},
	}
	tab.AddRow("x", 42)
	tab.AddRow("yyyyyyyy", 3.14159)
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "T\n") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "long-column") {
		t.Fatal("missing header")
	}
	if !strings.Contains(out, "3.14") {
		t.Fatal("float not formatted")
	}
	if !strings.Contains(out, "note: a note") {
		t.Fatal("missing note")
	}
	lines := strings.Split(out, "\n")
	// Header and data rows share the rule width.
	var rules []string
	for _, l := range lines {
		if strings.HasPrefix(l, "---") {
			rules = append(rules, l)
		}
	}
	if len(rules) != 3 {
		t.Fatalf("want 3 rules, got %d", len(rules))
	}
	if rules[0] != rules[1] || rules[1] != rules[2] {
		t.Fatal("rules differ in width")
	}
}

func TestAddRowStringifies(t *testing.T) {
	tab := Table{Columns: []string{"a", "b", "c"}}
	tab.AddRow("s", uint64(7), 1.5)
	if tab.Rows[0][0] != "s" || tab.Rows[0][1] != "7" || tab.Rows[0][2] != "1.50" {
		t.Fatalf("row: %v", tab.Rows[0])
	}
}

func TestRenderNoTitle(t *testing.T) {
	tab := Table{Columns: []string{"x"}}
	tab.AddRow(1)
	var buf bytes.Buffer
	tab.Render(&buf)
	if strings.HasPrefix(buf.String(), "\n---") {
		t.Log("leading rule without title is fine")
	}
	if !strings.Contains(buf.String(), "1") {
		t.Fatal("missing cell")
	}
}

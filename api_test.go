package microsliced

import (
	"bytes"
	"strings"
	"testing"
)

func TestWorkloadsListed(t *testing.T) {
	w := Workloads()
	if len(w) < 10 {
		t.Fatalf("workloads: %v", w)
	}
	found := map[string]bool{}
	for _, n := range w {
		found[n] = true
	}
	for _, need := range []string{"swaptions", "exim", "dedup", "gmake"} {
		if !found[need] {
			t.Fatalf("missing %s", need)
		}
	}
}

func TestSimulateBaselineCoRun(t *testing.T) {
	res, err := Simulate(Scenario{
		VMs:     []VM{{App: "exim"}, {App: "swaptions"}},
		Seconds: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	exim := res.VM("exim")
	if exim == nil || exim.WorkUnits == 0 {
		t.Fatal("exim made no progress")
	}
	if exim.TotalYields() == 0 {
		t.Fatal("no yields in a 2:1 consolidation")
	}
	if res.VM("swaptions").CPUSeconds == 0 {
		t.Fatal("no CPU accounting")
	}
	if res.MicroCoresAvg != 0 {
		t.Fatal("baseline should have no micro cores")
	}
}

func TestSimulateStaticAcceleratesExim(t *testing.T) {
	base, err := Simulate(Scenario{
		VMs:     []VM{{App: "exim"}, {App: "swaptions"}},
		Seconds: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	accel, err := Simulate(Scenario{
		VMs:         []VM{{App: "exim"}, {App: "swaptions"}},
		Mode:        Static,
		StaticCores: 1,
		Seconds:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	gain := float64(accel.VM("exim").WorkUnits) / float64(base.VM("exim").WorkUnits)
	if gain < 1.5 {
		t.Fatalf("exim gain %.2fx with one micro core, want >= 1.5x", gain)
	}
	if len(accel.CriticalSymbolHits) == 0 {
		t.Fatal("no critical symbols detected")
	}
	if accel.DetectorCounters["migrate.ok"] == 0 {
		t.Fatal("no migrations recorded")
	}
}

func TestSimulateDynamicMode(t *testing.T) {
	res, err := Simulate(Scenario{
		VMs:     []VM{{App: "gmake"}, {App: "swaptions"}},
		Mode:    Dynamic,
		Seconds: 1.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MicroCoresAvg <= 0 {
		t.Fatalf("adaptive controller never grew the pool (avg %.2f)", res.MicroCoresAvg)
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(Scenario{}); err == nil {
		t.Fatal("empty scenario accepted")
	}
	if _, err := Simulate(Scenario{VMs: []VM{{App: "nope"}}}); err == nil {
		t.Fatal("unknown app accepted")
	}
	if _, err := Simulate(Scenario{VMs: []VM{{App: "exim"}}, Mode: "weird"}); err == nil {
		t.Fatal("unknown mode accepted")
	}
	if _, err := Simulate(Scenario{
		PCPUs: 2,
		VMs:   []VM{{App: "exim", VCPUs: 1, Pins: []int{5}}},
	}); err == nil {
		t.Fatal("out-of-range pin accepted")
	}
}

func TestSimulateServing(t *testing.T) {
	res, err := Simulate(Scenario{
		PCPUs: 3,
		VMs: []VM{
			{App: "lookbusy", VCPUs: 1, Serve: &ServeConfig{RatePerSec: 4000}},
			{App: "swaptions", VCPUs: 1},
		},
		Mode:    Dynamic,
		Seconds: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	rq := res.VM("lookbusy").Requests
	if rq == nil {
		t.Fatal("no request stats on the serving VM")
	}
	if rq.Offered == 0 || rq.Completed == 0 {
		t.Fatalf("no serving traffic: %+v", rq)
	}
	if rq.Offered != rq.Dropped+rq.Completed+rq.InFlight {
		t.Fatalf("request ledger unbalanced: %+v", rq)
	}
	if rq.SLOMs != 5 {
		t.Fatalf("default SLO %v ms, want 5", rq.SLOMs)
	}
	if a := rq.SLOAttainment(); a < 0 || a > 1 {
		t.Fatalf("attainment %v outside [0,1]", a)
	}
	if other := res.VM("swaptions").Requests; other != nil {
		t.Fatal("non-serving VM has request stats")
	}

	if _, err := Simulate(Scenario{
		VMs: []VM{{App: "exim", Serve: &ServeConfig{RatePerSec: 0}}},
	}); err == nil {
		t.Fatal("zero serve rate accepted")
	}
	if _, err := Simulate(Scenario{
		VMs: []VM{{App: "exim", Serve: &ServeConfig{RatePerSec: 100, SLOMs: -1}}},
	}); err == nil {
		t.Fatal("negative SLO accepted")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	run := func() uint64 {
		res, err := Simulate(Scenario{
			VMs:     []VM{{App: "dedup"}, {App: "swaptions"}},
			Seconds: 0.5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.VM("dedup").WorkUnits
	}
	if run() != run() {
		t.Fatal("Simulate is not deterministic")
	}
}

func TestSimulateLockAndTLBStats(t *testing.T) {
	res, err := Simulate(Scenario{
		VMs:     []VM{{App: "dedup"}, {App: "swaptions"}},
		Seconds: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	d := res.VM("dedup")
	if d.TLBSyncAvgUs <= 0 || d.TLBSyncMaxUs < d.TLBSyncAvgUs {
		t.Fatalf("TLB stats: avg=%.1f max=%.1f", d.TLBSyncAvgUs, d.TLBSyncMaxUs)
	}
}

func TestExperimentsList(t *testing.T) {
	if len(Experiments()) != 12 {
		t.Fatalf("experiments: %v", Experiments())
	}
}

func TestReproduceTable2(t *testing.T) {
	var buf bytes.Buffer
	if err := Reproduce("table2", 0.5, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Table 2") || !strings.Contains(out, "exim") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestReproduceUnknown(t *testing.T) {
	var buf bytes.Buffer
	if err := Reproduce("table99", 0.5, &buf); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestVMDefaults(t *testing.T) {
	res, err := Simulate(Scenario{
		VMs:     []VM{{App: "lookbusy", Name: "", VCPUs: 2}},
		PCPUs:   2,
		Seconds: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.VM("lookbusy") == nil {
		t.Fatal("default name should be the app name")
	}
}

func TestSimulateIPerfSoloVsMixed(t *testing.T) {
	solo, err := SimulateIPerf("udp", false, Off, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	mixed, err := SimulateIPerf("udp", true, Off, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if mixed.Mbps >= solo.Mbps {
		t.Fatalf("mixed %.1f vs solo %.1f — no degradation", mixed.Mbps, solo.Mbps)
	}
	if mixed.JitterMs < 0.5 || solo.JitterMs > 0.1 {
		t.Fatalf("jitter solo=%.4f mixed=%.4f", solo.JitterMs, mixed.JitterMs)
	}
	fixed, err := SimulateIPerf("udp", true, Static, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fixed.Mbps < solo.Mbps*0.95 || fixed.Loss > 0.01 {
		t.Fatalf("u-slicing did not rescue the mixed vCPU: %+v", fixed)
	}
}

func TestSimulateIPerfValidation(t *testing.T) {
	if _, err := SimulateIPerf("sctp", false, Off, 0, 1); err == nil {
		t.Fatal("unknown proto accepted")
	}
	if _, err := SimulateIPerf("udp", false, "weird", 0, 1); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestSimulateIPerfTCPDynamic(t *testing.T) {
	r, err := SimulateIPerf("tcp", true, Dynamic, 0, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if r.Mbps <= 0 {
		t.Fatalf("no TCP progress: %+v", r)
	}
}

func TestSimulateFileserverNeedsDiskFlag(t *testing.T) {
	base, err := Simulate(Scenario{
		VMs:     []VM{{App: "fileserver", Disk: true}, {App: "swaptions"}},
		Seconds: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if base.VM("fileserver").WorkUnits == 0 {
		t.Fatal("fileserver made no progress")
	}
	accel, err := Simulate(Scenario{
		VMs:         []VM{{App: "fileserver", Disk: true}, {App: "swaptions"}},
		Mode:        Static,
		StaticCores: 1,
		Seconds:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	gain := float64(accel.VM("fileserver").WorkUnits) / float64(base.VM("fileserver").WorkUnits)
	// A purely blocking-I/O VM is already served well by BOOST (halted
	// vCPUs wake boosted on every completion) — the paper's observation
	// that only *mixed* vCPUs need the mechanism. The micro pool must at
	// least not hurt it. The mixed-vCPU disk rescue is covered by
	// internal/vdisk's TestMixedDiskVCPUSuffersAndIsRescued.
	if gain < 0.9 {
		t.Fatalf("fileserver regressed %.2fx under the mechanism", gain)
	}
}

func TestSimulateRival(t *testing.T) {
	res, err := Simulate(Scenario{
		VMs:     []VM{{App: "exim"}, {App: "swaptions"}},
		Rival:   "cosched",
		Seconds: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.HypervisorCounters["sched.force_preempt"] == 0 {
		t.Fatal("cosched rival never gang-dispatched")
	}
	if _, err := Simulate(Scenario{
		VMs: []VM{{App: "exim"}}, Rival: "nope", Seconds: 0.2,
	}); err == nil {
		t.Fatal("unknown rival accepted")
	}
	if _, err := Simulate(Scenario{
		VMs: []VM{{App: "exim"}}, Rival: "vtrs", Mode: Dynamic, Seconds: 0.2,
	}); err == nil {
		t.Fatal("rival with Mode != Off accepted")
	}
}

// Package core implements the paper's contribution: flexible micro-sliced
// cores.
//
// A Controller attaches to the hypervisor's yield and interrupt-relay
// hooks. On every yield it reads the yielding vCPU's instruction pointer
// (and, depending on the yield reason, the instruction pointers of the
// domain's preempted sibling vCPUs), resolves them against the guest's
// System.map, and classifies them with the Table-3 whitelist. vCPUs caught
// inside critical OS services are migrated to the micro-sliced cpupool
// (0.1 ms slice) so the suspended service completes within a
// sub-millisecond turnaround, after which the hypervisor moves them home.
//
// The controller also implements the paper's Algorithm 1: a profiling
// phase (10 ms) measures which urgent-event type dominates — pause-loop
// exits, IPI waits, or device IRQs — and sizes the micro pool accordingly
// (iterative search for IPI-dominant phases, a single core otherwise,
// zero cores when the system is uncontended), re-evaluated every epoch.
//
// The decision loop is hardened beyond the paper's pseudocode: the
// zero-core probe is skipped when the previous run phase was busy, the
// iterative search is skipped while its winner has been stable for
// Config.StabilityEpochs consecutive epochs, the search ceiling is clamped
// to the live online-pCPU count (hot-unplug can shrink capacity mid-run),
// and every sizing decision is recorded in a bounded audit ring
// (Decisions) that flows into telemetry, flight dumps and Chrome traces.
package core

import (
	"bytes"
	"fmt"
	"strings"

	"github.com/microslicedcore/microsliced/internal/hv"
	"github.com/microslicedcore/microsliced/internal/ksym"
	"github.com/microslicedcore/microsliced/internal/metrics"
	"github.com/microslicedcore/microsliced/internal/simtime"
)

// Mode selects how the micro pool is sized.
type Mode uint8

// Controller modes.
const (
	ModeOff     Mode = iota // vanilla Xen: no detection, no micro pool
	ModeStatic              // fixed micro pool size (paper's static sweeps)
	ModeDynamic             // Algorithm 1 adaptive sizing
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeOff:
		return "off"
	case ModeStatic:
		return "static"
	case ModeDynamic:
		return "dynamic"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// Config parameterises the controller.
type Config struct {
	Mode        Mode
	StaticCores int // micro pool size in ModeStatic

	MaxMicroCores   int              // NUM_LIMIT_µCORES for the adaptive search
	ProfileInterval simtime.Duration // Algorithm 1 profile phase (10 ms)
	EpochInterval   simtime.Duration // Algorithm 1 run phase (1000 ms)

	// StabilityEpochs is the search hysteresis: once this many consecutive
	// epochs settle on the same winning pool size, the iterative search is
	// skipped and the stable size reinstated directly until the streak
	// breaks (0 means the default of 3; negative disables the skip).
	StabilityEpochs int

	// DecisionDepth bounds the decision audit ring: the last DecisionDepth
	// sizing decisions are retained, with their profiling samples (0 means
	// the default of 256).
	DecisionDepth int

	// AccelerateIO migrates preempted recipients of relayed vIRQs and
	// reschedule vIPIs (paper §4.2, Figure 2) — the mixed-behaviour-vCPU
	// fix that BOOSTING cannot provide.
	AccelerateIO bool

	// PreciseSelection restricts sibling migration to vCPUs whose RIP
	// classifies as a critical service. Disabling it migrates any
	// preempted sibling (ablation D1).
	PreciseSelection bool

	// UserCS enables the paper's §4.4 extension: user-level critical
	// regions registered through RegisterUserRegions classify as critical
	// and are accelerated like kernel services.
	UserCS bool
}

// DefaultConfig returns the paper's dynamic configuration.
func DefaultConfig() Config {
	return Config{
		Mode:             ModeDynamic,
		MaxMicroCores:    3,
		ProfileInterval:  10 * simtime.Millisecond,
		EpochInterval:    1000 * simtime.Millisecond,
		StabilityEpochs:  defaultStabilityEpochs,
		AccelerateIO:     true,
		PreciseSelection: true,
	}
}

// Defaults applied by Attach when the corresponding Config field is zero.
const (
	defaultStabilityEpochs = 3
	defaultDecisionDepth   = 256
)

// StaticConfig returns a static configuration with n micro cores.
func StaticConfig(n int) Config {
	c := DefaultConfig()
	c.Mode = ModeStatic
	c.StaticCores = n
	return c
}

// eventStats is one profiling sample of urgent-event counts.
type eventStats struct {
	ipis uint64 // IPI-wait yields
	ples uint64 // pause-loop exits
	irqs uint64 // relayed device vIRQs
}

func (e eventStats) zero() bool { return e.ipis == 0 && e.ples == 0 && e.irqs == 0 }

func (e eventStats) total() uint64 { return e.ipis + e.ples + e.irqs }

// DecisionReason classifies why the controller chose a pool size.
type DecisionReason uint8

// Decision reasons (Algorithm 1 paths plus the v2 hardening paths).
const (
	// DecisionIdle: no urgent events in the classified sample — zero cores.
	DecisionIdle DecisionReason = iota
	// DecisionSingle: PLE- or IRQ-dominant phase — early-terminate at one.
	DecisionSingle
	// DecisionIPISearch: IPI-dominant phase — the iterative search begins.
	DecisionIPISearch
	// DecisionBestPick: the search finished and the profiled minimum won.
	DecisionBestPick
	// DecisionStabilitySkip: the search was skipped because its winner has
	// been stable for Config.StabilityEpochs consecutive epochs.
	DecisionStabilitySkip
	// DecisionCapacityClamp: the live online-pCPU ceiling, not the profile,
	// bounded the answer (capacity loss mid-run).
	DecisionCapacityClamp
)

// String names the reason (matches the flight-dump and trace encodings).
func (r DecisionReason) String() string {
	switch r {
	case DecisionIdle:
		return "idle"
	case DecisionSingle:
		return "single"
	case DecisionIPISearch:
		return "ipi-search"
	case DecisionBestPick:
		return "best-pick"
	case DecisionStabilitySkip:
		return "stability-skip"
	case DecisionCapacityClamp:
		return "capacity-clamp"
	default:
		return fmt.Sprintf("reason(%d)", uint8(r))
	}
}

// Sample is one profiling window's urgent-event counts.
type Sample struct {
	IPIs uint64
	PLEs uint64
	IRQs uint64
}

func sampleOf(e eventStats) Sample { return Sample{IPIs: e.ipis, PLEs: e.ples, IRQs: e.irqs} }

// DecisionEvent is one entry of the controller's audit trail: a sizing
// decision with the evidence it was based on. Events carry no domain
// identifiers, so the trail is bit-identical under domain relabelling —
// the conformance harness checks exactly that.
type DecisionEvent struct {
	Time    simtime.Time   // when the decision was taken
	Epoch   uint64         // decision round (1-based)
	Reason  DecisionReason // which Algorithm 1 path fired
	Chosen  int            // achieved micro pool size
	Ceiling int            // live search ceiling at decision time
	Run     Sample         // the classified sample (run phase or probe)
	Probes  []Sample       // per-size search samples [0..Ceiling], best-pick only
}

// Controller is the micro-sliced-core mechanism.
type Controller struct {
	h        *hv.Hypervisor
	cfg      Config
	Counters *metrics.Set

	// symtabs holds each domain's parsed System.map. The controller only
	// ever reads (RIP, symtab) — never guest state — preserving
	// transparency.
	symtabs map[int]*ksym.Table
	// userRegions is the per-domain table of registered user-level
	// critical regions (§4.4 extension; empty unless Config.UserCS).
	userRegions map[int][]ksym.UserRegion

	// SymbolHits histograms the critical symbols observed at detection
	// time (reproduces the paper's Table 3 methodology).
	SymbolHits map[string]uint64

	// MicroGauge integrates the micro pool size over time.
	MicroGauge metrics.Gauge

	// Adaptive state (Algorithm 1).
	profileMode bool
	numMicro    int
	urEvents    []eventStats
	runDelta    eventStats // urgent events observed during the last run phase
	lastSnap    map[string]uint64
	started     bool

	// Hysteresis and fault-awareness (controller v2).
	epoch      uint64         // decision rounds begun
	searchCeil int            // live search ceiling of the current round
	stableSize int            // winning size of the last settled search
	stableRun  int            // consecutive epochs settling on stableSize
	stepEv     *simtime.Event // pending adaptive timer (nil while none)

	// Decision audit trail: a bounded ring plus the exact total (the ring
	// drops the oldest entries past Config.DecisionDepth).
	decisions     []DecisionEvent
	decisionTotal uint64

	hot ctrlHot // interned counters for the per-yield/per-relay hooks
}

// ctrlHot holds the controller counters incremented on every detection
// event, resolved once in Attach (the adaptive-step counters stay on the
// string-keyed registry: they fire at most once per 10 ms profile phase).
type ctrlHot struct {
	triggerPLE  *metrics.Counter
	triggerIPI  *metrics.Counter
	triggerVIRQ *metrics.Counter
	triggerVIPI *metrics.Counter
	migrAttempt *metrics.Counter
	migrOK      *metrics.Counter
}

// Attach builds a controller for h and installs its hooks. Call after all
// domains have been created (their symbol tables are parsed here) and
// before Start.
func Attach(h *hv.Hypervisor, cfg Config) (*Controller, error) {
	if cfg.MaxMicroCores <= 0 {
		cfg.MaxMicroCores = 1
	}
	if cfg.StabilityEpochs == 0 {
		cfg.StabilityEpochs = defaultStabilityEpochs
	}
	if cfg.DecisionDepth <= 0 {
		cfg.DecisionDepth = defaultDecisionDepth
	}
	c := &Controller{
		h:           h,
		cfg:         cfg,
		Counters:    metrics.NewSet(),
		symtabs:     make(map[int]*ksym.Table),
		userRegions: make(map[int][]ksym.UserRegion),
		SymbolHits:  make(map[string]uint64),
		urEvents:    make([]eventStats, cfg.MaxMicroCores+1),
	}
	c.hot = ctrlHot{
		triggerPLE:  c.Counters.Handle("trigger.ple"),
		triggerIPI:  c.Counters.Handle("trigger.ipi"),
		triggerVIRQ: c.Counters.Handle("trigger.virq"),
		triggerVIPI: c.Counters.Handle("trigger.vipi"),
		migrAttempt: c.Counters.Handle("migrate.attempt"),
		migrOK:      c.Counters.Handle("migrate.ok"),
	}
	for _, d := range h.Domains() {
		if len(d.SymbolMap) == 0 {
			return nil, fmt.Errorf("core: domain %s provided no System.map", d.Name)
		}
		tab, err := ksym.Parse(bytes.NewReader(d.SymbolMap))
		if err != nil {
			return nil, fmt.Errorf("core: parsing System.map of %s: %v", d.Name, err)
		}
		c.symtabs[d.ID] = tab
	}
	if cfg.Mode == ModeOff {
		return c, nil
	}
	h.Hooks.OnYield = c.onYield
	if cfg.AccelerateIO {
		h.Hooks.OnVIRQRelay = c.onVIRQRelay
		h.Hooks.OnVIPIRelay = c.onVIPIRelay
	}
	// Hot-unplug can evict micro pCPUs behind the controller's back: the
	// gauge must re-sync in every active mode, and dynamic mode re-profiles.
	h.Hooks.OnCapacityChange = c.onCapacityChange
	return c, nil
}

// Start activates the controller: static mode sizes the pool once; dynamic
// mode launches the Algorithm 1 timer. Call after hv.Start.
func (c *Controller) Start() {
	if c.started {
		panic("core: Start called twice")
	}
	c.started = true
	// Seed the gauge with the live pool size in every mode, so MicroAvg
	// integrates from Start instead of from the first resize (a dynamic run
	// shorter than one profile interval used to report 0).
	c.numMicro = c.h.MicroCount()
	c.MicroGauge.Set(int64(c.h.Clock.Now()), float64(c.numMicro))
	switch c.cfg.Mode {
	case ModeStatic:
		n := c.h.SetMicroCount(c.cfg.StaticCores)
		c.numMicro = n
		c.MicroGauge.Set(int64(c.h.Clock.Now()), float64(n))
	case ModeDynamic:
		c.lastSnap = c.snapshot()
		c.stepEv = c.h.Clock.After(c.cfg.ProfileInterval, c.adaptiveStep)
	}
}

// MicroCount returns the current micro pool size.
func (c *Controller) MicroCount() int { return c.h.MicroCount() }

// Symtab returns the parsed symbol table of a domain (tests, tools).
func (c *Controller) Symtab(domID int) *ksym.Table { return c.symtabs[domID] }

// RegisterUserRegions installs a domain's user-level critical regions
// (the §4.4 interface). Ignored unless Config.UserCS is enabled.
func (c *Controller) RegisterUserRegions(domID int, regions []ksym.UserRegion) {
	if !c.cfg.UserCS {
		return
	}
	c.userRegions[domID] = append(c.userRegions[domID], regions...)
}

// classify resolves a vCPU's RIP against its domain's symbol table — or,
// for user-space addresses, against the domain's registered user-level
// critical regions.
func (c *Controller) classify(v *hv.VCPU) (string, ksym.Class) {
	rip := v.Guest.RIP()
	if !ksym.IsKernelAddr(rip) {
		if r, ok := ksym.LookupUserRegion(c.userRegions[v.DomID], rip); ok {
			return "user:" + r.Name, ksym.ClassUserCS
		}
		return "", ksym.ClassNone
	}
	tab := c.symtabs[v.DomID]
	if tab == nil {
		return "", ksym.ClassNone
	}
	sym, ok := tab.Lookup(rip)
	if !ok {
		return "", ksym.ClassNone
	}
	return sym.Name, ksym.Classify(sym.Name)
}

// ---------------------------------------------------------------------------
// Detection (paper §4.1, §4.2)
// ---------------------------------------------------------------------------

// onYield is the main detection entry point.
func (c *Controller) onYield(v *hv.VCPU, reason hv.YieldReason) {
	switch reason {
	case hv.YieldPLE:
		c.hot.triggerPLE.Inc()
		name, _ := c.classify(v)
		c.hit(name)
		// The yielder spins on a lock: accelerate preempted siblings
		// caught inside critical sections (the likely lock holder). The
		// spinner itself stays in the normal pool — running a waiter on a
		// micro core would only burn the pool's capacity.
		c.accelerateSiblings(v, false)
	case hv.YieldIPIWait:
		c.hot.triggerIPI.Inc()
		name, cls := c.classify(v)
		c.hit(name)
		if cls == ksym.ClassIPI || cls == ksym.ClassTLB {
			// One-to-many IPI (TLB shootdown): every preempted sibling
			// must run to acknowledge — accelerate them all (§4.2).
			c.accelerateSiblings(v, true)
		}
	default:
		// Halt and other voluntary yields carry no urgency.
	}
}

// migrate moves one vCPU to the micro pool, with bookkeeping.
func (c *Controller) migrate(v *hv.VCPU) {
	if v.State() != hv.StateRunnable || v.OnMicro() {
		return
	}
	c.hot.migrAttempt.Inc()
	if c.h.MigrateToMicro(v) {
		c.hot.migrOK.Inc()
	}
}

// accelerateSiblings migrates preempted siblings of v to the micro pool.
// With all set (TLB case) every preempted sibling goes; otherwise only
// those whose RIP classifies as a critical service (precise selection).
func (c *Controller) accelerateSiblings(v *hv.VCPU, all bool) {
	for _, w := range v.Dom.VCPUs {
		if w == v || w.State() != hv.StateRunnable || w.OnMicro() {
			continue
		}
		name, cls := c.classify(w)
		take := all
		if !take {
			if c.cfg.PreciseSelection {
				take = cls.Critical()
			} else {
				take = true // ablation: imprecise selection
			}
		}
		if !take {
			continue
		}
		c.hit(name)
		c.migrate(w)
	}
}

// onVIRQRelay accelerates the recipient of a device IRQ when BOOST cannot
// (the vCPU is runnable-but-preempted: the mixed-behaviour case).
func (c *Controller) onVIRQRelay(target *hv.VCPU) {
	if target.State() != hv.StateRunnable || target.OnMicro() {
		return
	}
	c.hot.triggerVIRQ.Inc()
	c.hot.migrAttempt.Inc()
	if c.h.MigrateToMicro(target) {
		c.hot.migrOK.Inc()
	}
}

// onVIPIRelay accelerates preempted recipients of reschedule IPIs (the
// I/O wakeup chain of Figure 2; call-function IPIs are handled by the
// yield path instead).
func (c *Controller) onVIPIRelay(src, target *hv.VCPU, vec hv.Vector) {
	if vec != hv.VecResched {
		return
	}
	if target.State() != hv.StateRunnable || target.OnMicro() {
		return
	}
	c.hot.triggerVIPI.Inc()
	c.hot.migrAttempt.Inc()
	if c.h.MigrateToMicro(target) {
		c.hot.migrOK.Inc()
	}
}

func (c *Controller) hit(name string) {
	if name == "" {
		return
	}
	if !strings.HasPrefix(name, "user:") && ksym.Classify(name) == ksym.ClassNone {
		return
	}
	c.SymbolHits[name]++
}

// ---------------------------------------------------------------------------
// Algorithm 1: adaptive micro pool sizing
// ---------------------------------------------------------------------------

func (c *Controller) snapshot() map[string]uint64 {
	return map[string]uint64{
		"ipi":  c.h.Counters.Value("yield.ipi"),
		"ple":  c.h.Counters.Value("yield.ple"),
		"virq": c.h.Counters.Value("virq.sent"),
	}
}

func (c *Controller) delta() eventStats {
	now := c.snapshot()
	d := eventStats{
		ipis: now["ipi"] - c.lastSnap["ipi"],
		ples: now["ple"] - c.lastSnap["ple"],
		irqs: now["virq"] - c.lastSnap["virq"],
	}
	c.lastSnap = now
	return d
}

func (c *Controller) setMicro(n int) {
	c.numMicro = c.h.SetMicroCount(n)
	c.MicroGauge.Set(int64(c.h.Clock.Now()), float64(c.numMicro))
}

// adaptiveStep is the paper's AdaptiveMicroSlicedCores procedure, hardened:
// each invocation inspects the urgent-event statistics gathered since the
// last one and decides the pool size and the next timer interval. The
// zero-core probe is skipped when the last run phase was busy (the paper's
// CheckUrgentEvents history consultation — stripping all acceleration for
// 10 ms under sustained load learns nothing), the search ceiling tracks
// the live online-pCPU count, and every decision enters the audit ring.
func (c *Controller) adaptiveStep() {
	c.stepEv = nil // the firing event's handle is dead (simtime recycles it)
	interval := c.cfg.ProfileInterval
	if !c.profileMode {
		// A run phase ended: begin a new decision round.
		c.epoch++
		c.runDelta = c.delta()
		c.beginRound()
		if !c.runDelta.zero() {
			// Busy epoch: classify straight from the run-phase history
			// instead of probing at zero cores.
			c.Counters.Counter("adaptive.probe_skip").Inc()
			interval = c.decide(c.runDelta)
		} else {
			c.setMicro(0)
			c.profileMode = true
		}
		c.stepEv = c.h.Clock.After(interval, c.adaptiveStep)
		return
	}
	// Gather the statistics of urgent events for numMicro cores.
	cur := c.delta()
	if c.numMicro < len(c.urEvents) {
		c.urEvents[c.numMicro] = cur
	}
	switch {
	case c.numMicro == 0:
		if cur.zero() {
			cur = c.runDelta // fall back to the run-phase history
		}
		interval = c.decide(cur)
	case c.numMicro < c.searchCeil:
		c.setMicro(c.numMicro + 1)
	default:
		best := c.findBestMicroCount()
		c.setMicro(best)
		reason := DecisionBestPick
		if c.searchCeil < c.cfg.MaxMicroCores && best == c.searchCeil {
			// The live-capacity clamp, not the profile, bounded the answer.
			reason = DecisionCapacityClamp
			c.Counters.Counter("adaptive.capacity_clamp").Inc()
		}
		c.Counters.Counter("adaptive.best_pick").Inc()
		c.record(reason, c.runDelta, c.probes())
		c.noteStable(c.numMicro)
		c.profileMode = false
		interval = c.cfg.EpochInterval
	}
	c.stepEv = c.h.Clock.After(interval, c.adaptiveStep)
}

// decide classifies one busy/idle sample and settles the epoch — or enters
// the iterative search. It installs the chosen pool size, records the
// decision, and returns the next timer interval.
func (c *Controller) decide(cur eventStats) simtime.Duration {
	switch {
	case cur.zero():
		// No urgent events occurred: stay at zero for an epoch.
		c.setMicro(0)
		c.Counters.Counter("adaptive.idle").Inc()
		c.record(DecisionIdle, cur, nil)
		c.stableRun = 0
	case c.searchCeil < 1:
		// Busy, but capacity loss left no pCPU to spare for the micro pool.
		c.setMicro(0)
		c.Counters.Counter("adaptive.capacity_clamp").Inc()
		c.record(DecisionCapacityClamp, cur, nil)
		c.stableRun = 0
	case cur.ipis >= cur.ples && cur.ipis >= cur.irqs:
		// IPI-dominant: pool size matters (TLB shootdowns fan out across
		// sibling vCPUs), so search — unless the winner has been stable.
		if c.cfg.StabilityEpochs > 0 && c.stableRun >= c.cfg.StabilityEpochs &&
			c.stableSize >= 1 && c.stableSize <= c.searchCeil {
			c.setMicro(c.stableSize)
			c.Counters.Counter("adaptive.stability_skip").Inc()
			c.record(DecisionStabilitySkip, cur, nil)
			c.noteStable(c.numMicro)
			break
		}
		c.setMicro(1)
		c.Counters.Counter("adaptive.ipi_search").Inc()
		c.record(DecisionIPISearch, cur, nil)
		c.profileMode = true
		return c.cfg.ProfileInterval
	default:
		// Early termination for IRQ- or PLE-dominant cases: one core.
		c.setMicro(1)
		c.Counters.Counter("adaptive.single").Inc()
		c.record(DecisionSingle, cur, nil)
		c.stableRun = 0
	}
	c.profileMode = false
	return c.cfg.EpochInterval
}

// beginRound starts a decision round: the profiling history is zeroed (a
// clamped round must never read samples for pool sizes that no longer
// exist) and the search ceiling is re-derived from the live online-pCPU
// count — GrowMicro always keeps one normal-pool pCPU, so at most
// online−1 cores can be micro-sliced.
func (c *Controller) beginRound() {
	for i := range c.urEvents {
		c.urEvents[i] = eventStats{}
	}
	ceil := c.cfg.MaxMicroCores
	if lim := c.h.OnlinePCPUs() - 1; lim < ceil {
		ceil = lim
	}
	if ceil < 0 {
		ceil = 0
	}
	c.searchCeil = ceil
}

// noteStable advances the stable-winner streak after a settled search.
func (c *Controller) noteStable(n int) {
	if n == c.stableSize {
		c.stableRun++
	} else {
		c.stableSize, c.stableRun = n, 1
	}
}

// onCapacityChange is the hv hotplug notification. In every active mode it
// re-syncs the gauge — offlining a micro pCPU shrinks the pool behind the
// controller's back — and in dynamic mode it abandons the current phase
// and re-profiles immediately: samples taken under the old capacity must
// not drive the next decision.
func (c *Controller) onCapacityChange(int) {
	if !c.started {
		return
	}
	c.numMicro = c.h.MicroCount()
	c.MicroGauge.Set(int64(c.h.Clock.Now()), float64(c.numMicro))
	if c.cfg.Mode != ModeDynamic || c.stepEv == nil {
		return
	}
	c.Counters.Counter("adaptive.reprofile").Inc()
	c.stableRun = 0
	c.profileMode = false
	if c.stepEv.Pending() {
		c.stepEv.Cancel()
	}
	c.stepEv = c.h.Clock.After(0, c.adaptiveStep)
}

// findBestMicroCount picks the profiled configuration (1..searchCeil) with
// the fewest urgent events, preferring the smaller pool on equal totals.
func (c *Controller) findBestMicroCount() int {
	best := 1
	bestTotal := c.urEvents[1].total()
	for n := 2; n <= c.searchCeil && n < len(c.urEvents); n++ {
		if tot := c.urEvents[n].total(); tot < bestTotal {
			best, bestTotal = n, tot
		}
	}
	return best
}

// probes snapshots the per-size samples [0..searchCeil] of the finished
// search for the decision record.
func (c *Controller) probes() []Sample {
	out := make([]Sample, c.searchCeil+1)
	for i := range out {
		out[i] = sampleOf(c.urEvents[i])
	}
	return out
}

// record appends one decision to the bounded audit ring.
func (c *Controller) record(reason DecisionReason, run eventStats, probes []Sample) {
	ev := DecisionEvent{
		Time:    c.h.Clock.Now(),
		Epoch:   c.epoch,
		Reason:  reason,
		Chosen:  c.numMicro,
		Ceiling: c.searchCeil,
		Run:     sampleOf(run),
		Probes:  probes,
	}
	if len(c.decisions) < c.cfg.DecisionDepth {
		c.decisions = append(c.decisions, ev)
	} else {
		c.decisions[int(c.decisionTotal)%c.cfg.DecisionDepth] = ev
	}
	c.decisionTotal++
}

// Decisions returns the retained audit trail, oldest first.
func (c *Controller) Decisions() []DecisionEvent {
	out := make([]DecisionEvent, len(c.decisions))
	if len(c.decisions) < c.cfg.DecisionDepth {
		copy(out, c.decisions)
		return out
	}
	start := int(c.decisionTotal) % c.cfg.DecisionDepth
	n := copy(out, c.decisions[start:])
	copy(out[n:], c.decisions[:start])
	return out
}

// DecisionTotal returns the exact number of decisions taken, including any
// that aged out of the retained ring.
func (c *Controller) DecisionTotal() uint64 { return c.decisionTotal }

// Command ksymdump emits or inspects the synthetic guest System.map used
// by the simulator.
//
//	ksymdump                      # print the System.map for seed 1
//	ksymdump -seed 7              # a different kernel build layout
//	ksymdump -classify ffffffff81012345
//	ksymdump -whitelist           # print the paper's Table 3 whitelist
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"github.com/microslicedcore/microsliced/internal/ksym"
)

func main() {
	var (
		seed      = flag.Uint64("seed", 1, "kernel build seed")
		classify  = flag.String("classify", "", "hex address to resolve and classify")
		whitelist = flag.Bool("whitelist", false, "print the critical-component whitelist (paper Table 3)")
	)
	flag.Parse()
	tab := ksym.Generate(*seed)
	switch {
	case *whitelist:
		fmt.Printf("%-10s %-22s %-40s %-9s %s\n", "MODULE", "FILE", "OPERATION", "CLASS", "SEMANTIC")
		for _, e := range ksym.Whitelist {
			fmt.Printf("%-10s %-22s %-40s %-9s %s\n", e.Module, e.File, e.Name+"()", e.Class, e.Semantic)
		}
	case *classify != "":
		addr, err := strconv.ParseUint(*classify, 16, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad address %q: %v\n", *classify, err)
			os.Exit(1)
		}
		sym, ok := tab.Lookup(addr)
		if !ok {
			fmt.Printf("%#x: not in kernel text (%s)\n", addr, tab.NameOf(addr))
			return
		}
		cls := ksym.Classify(sym.Name)
		fmt.Printf("%#x: %s+%#x [%s] critical=%v\n", addr, sym.Name, addr-sym.Addr, cls, cls.Critical())
	default:
		if err := tab.Format(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

package check

import (
	"fmt"
	"reflect"
	"sort"

	"github.com/microslicedcore/microsliced/internal/experiment"
	"github.com/microslicedcore/microsliced/internal/obs"
	"github.com/microslicedcore/microsliced/internal/recovery"
)

// Checker evaluates scenarios against the metamorphic relations and the
// post-run conservation laws. The zero value is ready to use.
type Checker struct {
	// mutate, when non-nil, corrupts the baseline Result before the variant
	// comparison — the fault-injection port tests use to prove a real
	// accounting bug cannot slip through the harness.
	mutate func(*experiment.Result)
	// post, when non-nil, replaces Conservation as every run's PostCheck.
	// The stage-skew injection test wraps Conservation with a deliberate
	// observer corruption to prove the stage conservation law has teeth.
	post func(*experiment.PostRun) error
}

// relation is one must-not-matter perturbation of a base scenario.
type relation struct {
	name    string
	perturb func(*experiment.Setup)
	// appliesTo, when non-nil, restricts the relation to scenarios it is
	// sound for (nil: every scenario).
	appliesTo func(Scenario) bool
}

// relations lists every perturbation applied to each scenario. Each one is
// an executable form of a promise the simulator makes: attaching the
// observer, enabling the trace ring or the auditor, running through the
// parallel runner instead of serially, and relabelling domain IDs must all
// leave the scheduling counters bit-identical.
var relations = []relation{
	{"serial-vs-batch", func(s *experiment.Setup) {}, nil},
	{"observer-off-vs-on", func(s *experiment.Setup) { s.Obs = &obs.Config{} }, nil},
	{"trace-off-vs-on", func(s *experiment.Setup) { s.HVConfig.TraceCapacity = 1 << 14 }, nil},
	{"audit-off-vs-on", func(s *experiment.Setup) { s.Audit = true }, nil},
	{"domain-relabel", func(s *experiment.Setup) {
		perm := make([]int, len(s.VMs))
		for i := range perm {
			perm[i] = len(perm) - 1 - i
		}
		s.DomRelabel = perm
	}, nil},
	// On a healthy run the supervisor detects nothing and repairs nothing,
	// so arming it must leave the schedule bit-identical — its periodic walk
	// only adds passive clock events, which shift event sequence numbers
	// uniformly without reordering anything. Restricted to fault-free
	// scenarios: under faults the supervisor is *supposed* to change the run.
	{"supervisor-off-vs-on", func(s *experiment.Setup) {
		s.Recovery = &recovery.Config{}
	}, func(sc Scenario) bool { return sc.Faults == nil }},
}

// Check runs sc serially as the baseline, then every metamorphic variant as
// one parallel batch (which makes the serial-vs-RunAll relation itself part
// of the experiment), and returns an error naming the first violated
// relation with a counter-level diff. Conservation runs inside every one of
// the runs via the PostCheck hook.
func (c *Checker) Check(sc Scenario) error {
	post := c.post
	if post == nil {
		post = Conservation
	}
	base := sc.ToSetup()
	base.PostCheck = post
	baseRes, err := experiment.Run(base)
	if err != nil {
		return fmt.Errorf("base run: %w", err)
	}
	if c.mutate != nil {
		c.mutate(baseRes)
	}

	var variants []experiment.Setup
	var applied []string
	for _, rel := range relations {
		if rel.appliesTo != nil && !rel.appliesTo(sc) {
			continue
		}
		s := sc.ToSetup()
		s.PostCheck = post
		rel.perturb(&s)
		variants = append(variants, s)
		applied = append(applied, rel.name)
	}
	results, err := experiment.RunAll(variants)
	if err != nil {
		return fmt.Errorf("variant run: %w", err)
	}
	for i, r := range results {
		if derr := diffResults(baseRes, r); derr != nil {
			return fmt.Errorf("relation %q violated: %w", applied[i], derr)
		}
	}
	return nil
}

// diffResults compares the deterministic portion of two Results — every
// scheduling counter, per-VM measurement and derived statistic, excluding
// the observability read-outs that only exist when the observer is on.
func diffResults(a, b *experiment.Result) error {
	if err := diffCounters("hv", a.HV, b.HV); err != nil {
		return err
	}
	if err := diffCounters("core", a.Core, b.Core); err != nil {
		return err
	}
	if err := diffCounters("symbols", a.SymbolHits, b.SymbolHits); err != nil {
		return err
	}
	if a.MicroAvg != b.MicroAvg {
		return fmt.Errorf("MicroAvg %v != %v", a.MicroAvg, b.MicroAvg)
	}
	if a.Duration != b.Duration {
		return fmt.Errorf("Duration %v != %v", a.Duration, b.Duration)
	}
	if !reflect.DeepEqual(a.FaultErrs, b.FaultErrs) {
		return fmt.Errorf("FaultErrs %v != %v", a.FaultErrs, b.FaultErrs)
	}
	if a.MTTR != b.MTTR {
		return fmt.Errorf("MTTR %v != %v", a.MTTR, b.MTTR)
	}
	if a.LostIPIs != b.LostIPIs {
		return fmt.Errorf("LostIPIs %d != %d", a.LostIPIs, b.LostIPIs)
	}
	if a.RepairCount != b.RepairCount {
		return fmt.Errorf("RepairCount %d != %d", a.RepairCount, b.RepairCount)
	}
	if !reflect.DeepEqual(a.Repairs, b.Repairs) {
		return fmt.Errorf("repair logs differ (%d vs %d events)", len(a.Repairs), len(b.Repairs))
	}
	if a.DecisionCount != b.DecisionCount {
		return fmt.Errorf("decision count %d != %d", a.DecisionCount, b.DecisionCount)
	}
	if !reflect.DeepEqual(a.Decisions, b.Decisions) {
		return fmt.Errorf("decision logs differ (%d vs %d entries)", len(a.Decisions), len(b.Decisions))
	}
	if len(a.VMs) != len(b.VMs) {
		return fmt.Errorf("VM count %d != %d", len(a.VMs), len(b.VMs))
	}
	for i := range a.VMs {
		av, bv := &a.VMs[i], &b.VMs[i]
		switch {
		case av.Units != bv.Units:
			return fmt.Errorf("VM %s Units %d != %d", av.Name, av.Units, bv.Units)
		case av.Yields != bv.Yields:
			return fmt.Errorf("VM %s Yields %+v != %+v", av.Name, av.Yields, bv.Yields)
		case av.RanTotal != bv.RanTotal:
			return fmt.Errorf("VM %s RanTotal %v != %v", av.Name, av.RanTotal, bv.RanTotal)
		case !reflect.DeepEqual(av.VCPURan, bv.VCPURan):
			return fmt.Errorf("VM %s VCPURan %v != %v", av.Name, av.VCPURan, bv.VCPURan)
		case !reflect.DeepEqual(av.TLB, bv.TLB):
			return fmt.Errorf("VM %s TLB histograms differ", av.Name)
		case !reflect.DeepEqual(av.LockStat, bv.LockStat):
			return fmt.Errorf("VM %s lock histograms differ", av.Name)
		case !reflect.DeepEqual(av.Requests, bv.Requests):
			return fmt.Errorf("VM %s request stats %+v != %+v", av.Name, av.Requests, bv.Requests)
		}
	}
	return nil
}

// diffCounters compares two counter maps over the union of their keys
// (absent == 0), reporting the first few mismatches by name.
func diffCounters(label string, a, b map[string]uint64) error {
	keys := make(map[string]struct{}, len(a)+len(b))
	for k := range a {
		keys[k] = struct{}{}
	}
	for k := range b {
		keys[k] = struct{}{}
	}
	names := make([]string, 0, len(keys))
	for k := range keys {
		names = append(names, k)
	}
	sort.Strings(names)
	var diffs []string
	for _, k := range names {
		if a[k] != b[k] {
			diffs = append(diffs, fmt.Sprintf("%s=%d vs %d", k, a[k], b[k]))
			if len(diffs) == 4 {
				break
			}
		}
	}
	if len(diffs) > 0 {
		return fmt.Errorf("%s counters differ: %v", label, diffs)
	}
	return nil
}

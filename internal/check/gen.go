package check

import (
	"github.com/microslicedcore/microsliced/internal/rng"
)

// genApps is the workload subset scenarios draw from: a mix of CPU-bound,
// IPI-heavy, lock-heavy, I/O-bound and disk-backed applications, all cheap
// enough that a few tens of simulated milliseconds exercise them.
var genApps = []string{
	"swaptions", "gmake", "exim", "psearchy",
	"dedup", "memclone", "lookbusy", "fileserver",
}

// Generate draws a random scenario from seed. The same seed always yields
// the same scenario, so a suite is fully described by (base seed, count).
func Generate(seed uint64) Scenario {
	r := rng.New(seed)
	sc := Scenario{Seed: seed}
	sc.PCPUs = 2 + r.Intn(5)      // 2..6
	sc.DurationMs = 10 + r.Intn(31) // 10..40 ms

	// Mode weights: 40% dynamic so the adaptive controller's decision paths
	// (probe skip, stability skip, capacity clamp) and the controller
	// conformance laws see real coverage in every suite run.
	switch r.Intn(10) {
	case 0, 1, 2:
		sc.Mode = "off"
	case 3, 4, 5:
		sc.Mode = "static"
		sc.StaticCores = 1 + r.Intn(2)
	default:
		sc.Mode = "dynamic"
	}
	sc.Stagger = r.Bool(0.5)
	sc.MicroRunqLimit = r.Intn(3) // 0 (unlimited), 1, 2
	sc.NoReturnHome = r.Bool(0.15)
	sc.BoostOff = r.Bool(0.15)

	nvms := 1 + r.Intn(3) // 1..3
	for i := 0; i < nvms; i++ {
		vm := VMSpec{
			App:   genApps[r.Intn(len(genApps))],
			VCPUs: 1 + r.Intn(4), // 1..4
			Seed:  r.Uint64(),
		}
		if r.Bool(0.3) {
			vm.Weight = 64 << r.Intn(5) // 64..1024
		}
		if r.Bool(0.25) {
			vm.Pins = make([]int, vm.VCPUs)
			for j := range vm.Pins {
				vm.Pins[j] = r.Intn(sc.PCPUs+1) - 1 // -1 (unpinned) .. PCPUs-1
			}
		}
		if r.Bool(0.3) {
			// Attach an open-loop serving workload: the request conservation
			// law then runs over this VM's pipeline. Small rings make tail
			// drops (the trickiest ledger path) common.
			vm.ServeRate = 2000 + r.Intn(8001) // 2000..10000 req/s
			vm.ServeSeed = r.Uint64()
			vm.ServeRing = 4 + r.Intn(29) // 4..32 slots
		}
		sc.VMs = append(sc.VMs, vm)
	}

	if r.Bool(0.3) {
		f := &FaultSpec{Seed: r.Uint64()}
		if r.Bool(0.4) && sc.PCPUs > 2 {
			f.OfflinePCPUs = 1 + r.Intn(sc.PCPUs-2)
		}
		if r.Bool(0.5) {
			f.IPIDelayProb = 0.05 + 0.3*r.Float64()
			f.IPIDelayMaxUs = 1 + r.Intn(50)
		}
		if r.Bool(0.4) {
			f.IPIDropProb = 0.02 + 0.2*r.Float64()
		}
		if r.Bool(0.4) {
			f.TickJitterUs = 1 + r.Intn(500)
		}
		if r.Bool(0.4) {
			f.LockStallProb = 0.02 + 0.2*r.Float64()
			f.LockStallFactor = 2 + 6*r.Float64()
		}
		sc.Faults = f
	}
	if sc.Mode == "dynamic" && r.Bool(0.4) {
		// Harsh capacity loss for dynamic scenarios: permanently offline
		// pCPUs (and optional hotplug storms) shrink the machine under the
		// controller, exercising the search-ceiling clamp and the
		// re-profile-on-capacity-change path. fault.New requires offline +
		// permanent ≤ PCPUs−1 (pCPU 0 is never unplugged).
		f := sc.Faults
		if f == nil {
			f = &FaultSpec{Seed: r.Uint64()}
			sc.Faults = f
		}
		if room := sc.PCPUs - 1 - f.OfflinePCPUs; room >= 1 {
			f.PermanentOffPCPUs = 1 + r.Intn(room)
		}
		if r.Bool(0.3) {
			f.Storms = 1 + r.Intn(3)
			f.StormLenMs = 1 + r.Intn(5)
		}
	}
	return sc
}

package hv

import (
	"strings"
	"testing"

	"github.com/microslicedcore/microsliced/internal/simtime"
)

func auditHost(t *testing.T, pcpus, guests int) (*simtime.Clock, *Hypervisor, []*spinGuest, *Auditor) {
	t.Helper()
	clock, h := setup(pcpus)
	d := h.NewDomain("d", nil)
	gs := make([]*spinGuest, guests)
	for i := range gs {
		gs[i] = newSpinGuest(h, d, 50*simtime.Microsecond)
	}
	a := h.EnableAudit(AuditConfig{})
	h.Start()
	for _, g := range gs {
		h.Wake(g.v, false)
	}
	return clock, h, gs, a
}

func TestAuditorCleanOnHealthyRun(t *testing.T) {
	clock, _, gs, a := auditHost(t, 2, 4)
	clock.RunUntil(200 * simtime.Millisecond)
	if vs := a.Violations(); len(vs) != 0 {
		t.Fatalf("healthy run produced %d violations, first: %v", len(vs), vs[0])
	}
	for i, g := range gs {
		if g.yields == 0 {
			t.Fatalf("guest %d made no progress", i)
		}
	}
}

func TestAuditorDetectsCreditEscape(t *testing.T) {
	clock, h, gs, _ := auditHost(t, 2, 2)
	clock.RunUntil(10 * simtime.Millisecond)
	gs[0].v.credits = h.Cfg.CreditCap + 1234
	fresh := &Auditor{h: h, cfg: AuditConfig{}.withDefaults(h.Cfg), starved: map[*VCPU]simtime.Time{}}
	fresh.audit()
	if !hasRule(fresh.Violations(), "credits") {
		t.Fatalf("credit escape undetected: %v", fresh.Violations())
	}
}

func TestAuditorDetectsPlacementCorruption(t *testing.T) {
	clock, h, _, _ := auditHost(t, 2, 4)
	clock.RunUntil(10 * simtime.Millisecond)
	// Claim a running vCPU is merely runnable: now it is in state
	// Runnable but on no runqueue, while its pCPU still runs it.
	var victim *VCPU
	for _, p := range h.pcpus {
		if p.cur != nil {
			victim = p.cur
			break
		}
	}
	if victim == nil {
		t.Fatal("no running vCPU to corrupt")
	}
	victim.state = StateRunnable
	fresh := &Auditor{h: h, cfg: AuditConfig{}.withDefaults(h.Cfg), starved: map[*VCPU]simtime.Time{}}
	fresh.audit()
	if !hasRule(fresh.Violations(), "placement") {
		t.Fatalf("placement corruption undetected: %v", fresh.Violations())
	}
	victim.state = StateRunning // restore so teardown stays sane
}

func TestAuditorDetectsStarvation(t *testing.T) {
	clock, h, _, _ := auditHost(t, 2, 6)
	clock.RunUntil(50 * simtime.Millisecond)
	var queued *VCPU
	for _, p := range h.pcpus {
		if len(p.runq) > 0 {
			queued = p.runq[0]
			break
		}
	}
	if queued == nil {
		t.Fatal("no queued vCPU (6 guests on 2 pCPUs should overcommit)")
	}
	queued.runnableSince = 0 // pretend it has waited since t=0
	fresh := &Auditor{
		h:       h,
		cfg:     AuditConfig{StarveHorizon: 10 * simtime.Millisecond}.withDefaults(h.Cfg),
		starved: map[*VCPU]simtime.Time{},
	}
	fresh.audit()
	if !hasRule(fresh.Violations(), "starvation") {
		t.Fatalf("starvation undetected: %v", fresh.Violations())
	}
	// Same wait episode: a second walk must not duplicate the report.
	before := len(fresh.Violations())
	fresh.audit()
	if n := len(fresh.Violations()); n != before {
		t.Fatalf("starvation re-reported: %d -> %d", before, n)
	}
}

func TestInvariantErrorCarriesTrace(t *testing.T) {
	clock := simtime.NewClock()
	cfg := testConfig(2)
	cfg.TraceCapacity = 256 // violations attach the trace-ring tail
	h := New(clock, cfg)
	d := h.NewDomain("d", nil)
	gs := []*spinGuest{
		newSpinGuest(h, d, 50*simtime.Microsecond),
		newSpinGuest(h, d, 50*simtime.Microsecond),
	}
	h.Start()
	for _, g := range gs {
		h.Wake(g.v, false)
	}
	clock.RunUntil(10 * simtime.Millisecond)
	gs[0].v.credits = h.Cfg.CreditFloor - 1
	fresh := &Auditor{h: h, cfg: AuditConfig{}.withDefaults(h.Cfg), starved: map[*VCPU]simtime.Time{}}
	fresh.audit()
	vs := fresh.Violations()
	if len(vs) == 0 {
		t.Fatal("no violation recorded")
	}
	v := vs[0]
	if v.Time != h.Clock.Now() {
		t.Fatalf("violation stamped %v, clock at %v", v.Time, h.Clock.Now())
	}
	if len(v.Trace) == 0 {
		t.Fatal("violation carries no trace tail")
	}
	if !strings.Contains(v.Error(), "credits") {
		t.Fatalf("Error() lacks the rule: %q", v.Error())
	}
}

func TestAuditorCapsRecording(t *testing.T) {
	clock, h, gs, _ := auditHost(t, 2, 2)
	clock.RunUntil(10 * simtime.Millisecond)
	for _, g := range gs {
		g.v.credits = h.Cfg.CreditCap + 999
	}
	fresh := &Auditor{h: h, cfg: AuditConfig{MaxViolations: 1}.withDefaults(h.Cfg), starved: map[*VCPU]simtime.Time{}}
	fresh.audit()
	if len(fresh.Violations()) != 1 {
		t.Fatalf("cap 1 recorded %d", len(fresh.Violations()))
	}
	if fresh.Dropped() == 0 {
		t.Fatal("over-cap violations not counted as dropped")
	}
}

func hasRule(vs []InvariantError, rule string) bool {
	for _, v := range vs {
		if v.Rule == rule {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// pCPU hotplug
// ---------------------------------------------------------------------------

func TestOfflineOnlinePCPU(t *testing.T) {
	clock, h, gs, a := auditHost(t, 4, 8)
	clock.RunUntil(50 * simtime.Millisecond)
	if err := h.OfflinePCPU(3); err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, h)
	if !h.PCPU(3).Offline() {
		t.Fatal("p3 not marked offline")
	}
	if len(h.normal.pcpus)+len(h.micro.pcpus) != 3 {
		t.Fatal("offline pCPU still pooled")
	}
	marks := make([]int, len(gs))
	for i, g := range gs {
		marks[i] = g.yields
	}
	clock.RunUntil(150 * simtime.Millisecond)
	checkInvariants(t, h)
	for i, g := range gs {
		if g.yields == marks[i] {
			t.Fatalf("guest %d stopped progressing after hot-unplug", i)
		}
	}
	if err := h.OnlinePCPU(3); err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, h)
	clock.RunUntil(250 * simtime.Millisecond)
	checkInvariants(t, h)
	if vs := a.Violations(); len(vs) != 0 {
		t.Fatalf("hotplug cycle produced %d violations, first: %v", len(vs), vs[0])
	}
}

func TestOfflinePCPUErrors(t *testing.T) {
	clock, h, _, _ := auditHost(t, 2, 2)
	clock.RunUntil(10 * simtime.Millisecond)
	if err := h.OfflinePCPU(99); err == nil {
		t.Fatal("unknown pCPU accepted")
	}
	if err := h.OnlinePCPU(1); err == nil {
		t.Fatal("online of an online pCPU accepted")
	}
	if err := h.OfflinePCPU(1); err != nil {
		t.Fatal(err)
	}
	if err := h.OfflinePCPU(1); err == nil {
		t.Fatal("double offline accepted")
	}
	if err := h.OfflinePCPU(0); err == nil {
		t.Fatal("unplugging the last normal-pool pCPU accepted")
	}
}

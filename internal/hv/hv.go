// Package hv implements the hypervisor model: physical CPUs, domains,
// virtual CPUs, the Xen credit1 scheduler (30 ms slice, 10 ms tick,
// BOOST/UNDER/OVER priorities, work-conserving stealing), cpupools with
// per-pool time slices, pause-loop-exit and voluntary yield handling, and
// virtual IPI/IRQ relay with pending-interrupt queues.
//
// The virtual-time-discontinuity problem the paper studies arises here
// naturally: a vCPU that is Runnable-but-not-Running cannot process its
// pending interrupts or finish its critical section until the scheduler
// dispatches it again.
//
// The micro-sliced-core mechanism (internal/core) attaches through Hooks
// and the pool-migration API; hv itself is a faithful "vanilla Xen"
// baseline when no hooks are installed.
package hv

import (
	"fmt"

	"github.com/microslicedcore/microsliced/internal/metrics"
	"github.com/microslicedcore/microsliced/internal/obs"
	"github.com/microslicedcore/microsliced/internal/simtime"
	"github.com/microslicedcore/microsliced/internal/trace"
)

// Config holds the machine and scheduler parameters.
type Config struct {
	PCPUs int // number of physical CPUs

	NormalSlice  simtime.Duration // scheduling quantum of the normal pool (Xen default 30ms)
	MicroSlice   simtime.Duration // quantum of the micro-sliced pool (paper: 0.1ms)
	Tick         simtime.Duration // credit debit tick (Xen: 10ms)
	TicksPerAcct int              // accounting every N ticks (Xen: 3)

	CreditDebitPerTick int // credits debited from a running vCPU per tick (Xen: 100)
	CreditCap          int // upper clamp on a vCPU's credits (Xen: credits per timeslice, 300)
	CreditFloor        int // lower clamp

	CtxSwitchCost simtime.Duration // direct context-switch overhead
	ColdCacheCost simtime.Duration // cache-refill penalty when a pCPU switches vCPUs
	IPILatency    simtime.Duration // hypervisor vIPI/vIRQ injection latency
	PIRQCost      simtime.Duration // hypervisor physical-IRQ handling cost

	// IPIRetryDelay / IPIRetryLimit bound the resend loop used when an
	// injected fault drops a vIPI (Hooks.IPIFault): each dropped send is
	// retried after IPIRetryDelay, at most IPIRetryLimit times, after which
	// the IPI is delivered unconditionally — hardware eventually gets the
	// interrupt through, so a fault plan can delay but never lose one.
	IPIRetryDelay simtime.Duration
	IPIRetryLimit int

	BoostEnabled    bool // Xen's BOOST-on-wake optimization
	MicroRunqLimit  int  // max queued vCPUs per micro pCPU (paper: 1)
	MicroReturnHome bool // vCPUs go home after one micro slice (paper: true)

	TraceCapacity int // ring size of the trace buffer (0: counters only)
}

// DefaultConfig returns the paper's experimental configuration: a 12-thread
// host running the Xen 4.7 credit scheduler.
func DefaultConfig() Config {
	return Config{
		PCPUs:              12,
		NormalSlice:        30 * simtime.Millisecond,
		MicroSlice:         100 * simtime.Microsecond,
		Tick:               10 * simtime.Millisecond,
		TicksPerAcct:       3,
		CreditDebitPerTick: 100,
		CreditCap:          300,
		CreditFloor:        -1000,
		CtxSwitchCost:      1500 * simtime.Nanosecond,
		ColdCacheCost:      15 * simtime.Microsecond,
		IPILatency:         500 * simtime.Nanosecond,
		PIRQCost:           800 * simtime.Nanosecond,
		IPIRetryDelay:      5 * simtime.Microsecond,
		IPIRetryLimit:      4,
		BoostEnabled:       true,
		MicroRunqLimit:     1,
		MicroReturnHome:    true,
		TraceCapacity:      0,
	}
}

// MaxPCPUs is the largest supported machine size. The scheduler's pool
// occupancy index packs per-pCPU state into uint64 bitmasks (one bit per
// pool slot), so a pool can never hold more than 64 pCPUs.
const MaxPCPUs = 64

// ConfigError reports a Config field whose value cannot produce a sound
// simulation (division by zero in credit burning, empty machines, negative
// costs). New panics with its message; callers that build configs from
// external input should call Config.Validate first.
type ConfigError struct {
	Field  string
	Reason string
}

// Error formats the offending field and why it was rejected.
func (e *ConfigError) Error() string {
	return fmt.Sprintf("hv: invalid Config.%s: %s", e.Field, e.Reason)
}

// Validate checks the configuration for degenerate values. In particular it
// rejects Tick < CreditDebitPerTick nanoseconds, where the per-credit
// runtime quantum (Tick/CreditDebitPerTick) truncates to zero and credit
// burning would divide by zero.
func (c Config) Validate() error {
	switch {
	case c.PCPUs <= 0:
		return &ConfigError{"PCPUs", fmt.Sprintf("need at least one pCPU, got %d", c.PCPUs)}
	case c.PCPUs > MaxPCPUs:
		return &ConfigError{"PCPUs", fmt.Sprintf("at most %d pCPUs supported (pool occupancy masks are 64-bit), got %d", MaxPCPUs, c.PCPUs)}
	case c.NormalSlice <= 0:
		return &ConfigError{"NormalSlice", fmt.Sprintf("slice must be positive, got %v", c.NormalSlice)}
	case c.MicroSlice <= 0:
		return &ConfigError{"MicroSlice", fmt.Sprintf("slice must be positive, got %v", c.MicroSlice)}
	case c.Tick <= 0:
		return &ConfigError{"Tick", fmt.Sprintf("tick must be positive, got %v", c.Tick)}
	case c.TicksPerAcct < 1:
		return &ConfigError{"TicksPerAcct", fmt.Sprintf("need at least one tick per accounting period, got %d", c.TicksPerAcct)}
	case c.CreditDebitPerTick < 1:
		return &ConfigError{"CreditDebitPerTick", fmt.Sprintf("need at least one credit per tick, got %d", c.CreditDebitPerTick)}
	case c.Tick < simtime.Duration(c.CreditDebitPerTick):
		return &ConfigError{"CreditDebitPerTick", fmt.Sprintf(
			"%d credits per %v tick leaves no whole nanosecond per credit (burn quantum truncates to zero)",
			c.CreditDebitPerTick, c.Tick)}
	case c.CreditCap < 1:
		return &ConfigError{"CreditCap", fmt.Sprintf("cap must be positive, got %d", c.CreditCap)}
	case c.CreditFloor > c.CreditCap:
		return &ConfigError{"CreditFloor", fmt.Sprintf("floor %d above cap %d", c.CreditFloor, c.CreditCap)}
	case c.CtxSwitchCost < 0:
		return &ConfigError{"CtxSwitchCost", fmt.Sprintf("cost must be non-negative, got %v", c.CtxSwitchCost)}
	case c.ColdCacheCost < 0:
		return &ConfigError{"ColdCacheCost", fmt.Sprintf("cost must be non-negative, got %v", c.ColdCacheCost)}
	case c.IPILatency < 0:
		return &ConfigError{"IPILatency", fmt.Sprintf("latency must be non-negative, got %v", c.IPILatency)}
	case c.PIRQCost < 0:
		return &ConfigError{"PIRQCost", fmt.Sprintf("cost must be non-negative, got %v", c.PIRQCost)}
	case c.IPIRetryDelay < 0:
		return &ConfigError{"IPIRetryDelay", fmt.Sprintf("delay must be non-negative, got %v", c.IPIRetryDelay)}
	case c.IPIRetryLimit < 0:
		return &ConfigError{"IPIRetryLimit", fmt.Sprintf("limit must be non-negative, got %d", c.IPIRetryLimit)}
	case c.MicroRunqLimit < 0:
		return &ConfigError{"MicroRunqLimit", fmt.Sprintf("limit must be non-negative, got %d", c.MicroRunqLimit)}
	case c.TraceCapacity < 0:
		return &ConfigError{"TraceCapacity", fmt.Sprintf("capacity must be non-negative, got %d", c.TraceCapacity)}
	}
	return nil
}

// Priority is a credit1 scheduling priority; lower values run first.
type Priority int8

// Credit1 priorities.
const (
	PrioBoost Priority = iota // woken from blocked, runs next
	PrioUnder                 // positive credits
	PrioOver                  // exhausted credits
	PrioIdle                  // placeholder for "no candidate"
)

// String names the priority.
func (p Priority) String() string {
	switch p {
	case PrioBoost:
		return "BOOST"
	case PrioUnder:
		return "UNDER"
	case PrioOver:
		return "OVER"
	default:
		return "IDLE"
	}
}

// VCPUState is the scheduling state of a virtual CPU.
type VCPUState uint8

// vCPU states.
const (
	StateBlocked  VCPUState = iota // halted, waiting for an event
	StateRunnable                  // on a runqueue, waiting for a pCPU
	StateRunning                   // executing on a pCPU
)

// String names the state.
func (s VCPUState) String() string {
	switch s {
	case StateBlocked:
		return "blocked"
	case StateRunnable:
		return "runnable"
	case StateRunning:
		return "running"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// YieldReason explains why a running vCPU gave up its pCPU.
type YieldReason uint8

// Yield reasons, matching the decomposition of the paper's Figure 7.
const (
	YieldPLE     YieldReason = iota // pause-loop exit while spinning on a lock
	YieldIPIWait                    // voluntary yield while waiting for IPI acks
	YieldHalt                       // guest idled (SCHEDOP_block)
	YieldOther                      // any other voluntary yield
)

// String names the reason.
func (r YieldReason) String() string {
	switch r {
	case YieldPLE:
		return "ple"
	case YieldIPIWait:
		return "ipi"
	case YieldHalt:
		return "halt"
	default:
		return "other"
	}
}

// Vector identifies a virtual interrupt.
type Vector uint8

// Interrupt vectors used by the guest model.
const (
	VecResched  Vector = iota // scheduler wakeup IPI
	VecCallFunc               // smp_call_function (TLB shootdown) IPI
	VecNet                    // network device IRQ
	VecTimer                  // guest timer
	VecDisk                   // block-device completion IRQ
)

// String names the vector.
func (v Vector) String() string {
	switch v {
	case VecResched:
		return "resched"
	case VecCallFunc:
		return "callfunc"
	case VecNet:
		return "net"
	case VecTimer:
		return "timer"
	case VecDisk:
		return "disk"
	default:
		return fmt.Sprintf("vec(%d)", uint8(v))
	}
}

// GuestContext is the hypervisor's view of what runs inside a vCPU. The
// guest package implements it. The hypervisor may additionally read the
// vCPU's instruction pointer through RIP — and nothing else, preserving the
// paper's guest-transparency property.
type GuestContext interface {
	// OnScheduled is invoked when the vCPU starts executing on a pCPU
	// (after any context-switch cost has elapsed).
	OnScheduled(now simtime.Time)
	// OnDescheduled is invoked when the vCPU stops executing. The guest
	// must checkpoint all in-progress work.
	OnDescheduled(now simtime.Time)
	// OnInterrupt delivers a virtual interrupt while the vCPU is running.
	OnInterrupt(now simtime.Time, vec Vector, data uint64)
	// RIP returns the guest instruction pointer (valid at any time).
	RIP() uint64
}

// PendingIRQ is an interrupt waiting for its target vCPU to be dispatched.
type PendingIRQ struct {
	Vec  Vector
	Data uint64
	Span obs.SpanRef // open ipi_deliver span riding the interrupt (0: none)
}

// VCPU is a virtual CPU.
type VCPU struct {
	ID    int // global vCPU index
	DomID int // owning domain
	Idx   int // index within the domain
	Dom   *Domain
	Guest GuestContext

	state    VCPUState
	prio     Priority
	boosted  bool
	credits  int
	pool     *Pool
	homePool *Pool
	pcpu     *PCPU // non-nil while Running
	queuedOn *PCPU // non-nil while Runnable on a runqueue
	lastPCPU int   // affinity hint
	pin      int   // pinned pCPU id, -1 if unpinned

	pending []PendingIRQ

	warmupEv      *simtime.Event
	runningSince  simtime.Time
	runnableSince simtime.Time // when the vCPU last left a pCPU/blocked state
	ranTotal      simtime.Duration
	microVisits   uint64

	burnAt simtime.Time // start of the current credit-burn window
	debtNs int64        // sub-credit runtime carried to the next burn

	sliceOverride simtime.Duration // per-vCPU quantum (0: pool default)
	yieldsBy      [4]uint64        // per-vCPU yield counts by reason
	virqRecv      uint64           // device IRQs routed to this vCPU
}

// State returns the scheduling state.
func (v *VCPU) State() VCPUState { return v.state }

// Priority returns the current scheduling priority.
func (v *VCPU) Priority() Priority { return v.prio }

// Credits returns the current credit balance.
func (v *VCPU) Credits() int { return v.credits }

// OnMicro reports whether the vCPU currently belongs to the micro pool.
func (v *VCPU) OnMicro() bool { return v.pool != v.homePool }

// Pin restricts the vCPU to one pCPU of its home pool (-1 unpins). Pin is a
// setup-time call (before Start); changing the pinning of a live vCPU must
// go through Hypervisor.RePin, which also re-places a queued vCPU and
// notifies idle pCPUs whose suppressed tick the change may concern.
func (v *VCPU) Pin(pcpu int) { v.pin = pcpu }

// PinnedTo returns the pCPU the vCPU is pinned to (-1 if unpinned).
func (v *VCPU) PinnedTo() int { return v.pin }

// Pool returns the cpupool the vCPU currently belongs to.
func (v *VCPU) Pool() *Pool { return v.pool }

// RunnableSince returns the instant the vCPU last became Runnable (left a
// pCPU or woke from blocked). Meaningful only while the vCPU is Runnable;
// the auditor and the recovery supervisor key starvation episodes on it.
func (v *VCPU) RunnableSince() simtime.Time { return v.runnableSince }

// RanTotal returns the accumulated execution time (updated on deschedule).
func (v *VCPU) RanTotal() simtime.Duration { return v.ranTotal }

// MicroVisits returns how many times this vCPU was migrated to the micro pool.
func (v *VCPU) MicroVisits() uint64 { return v.microVisits }

// PendingCount returns the number of undelivered interrupts.
func (v *VCPU) PendingCount() int { return len(v.pending) }

// SetSliceOverride gives the vCPU its own scheduling quantum regardless of
// its pool (0 restores the pool default). Prior-work schedulers that pick
// per-vCPU time slices (vTRS, vSlicer) are modelled with this.
func (v *VCPU) SetSliceOverride(d simtime.Duration) { v.sliceOverride = d }

// SliceOverride returns the per-vCPU quantum (0 when the pool's applies).
func (v *VCPU) SliceOverride() simtime.Duration { return v.sliceOverride }

// YieldsBy returns this vCPU's yield count for one reason.
func (v *VCPU) YieldsBy(r YieldReason) uint64 {
	if int(r) < len(v.yieldsBy) {
		return v.yieldsBy[r]
	}
	return 0
}

// VIRQReceived returns how many device IRQs were routed to this vCPU.
func (v *VCPU) VIRQReceived() uint64 { return v.virqRecv }

func (v *VCPU) String() string {
	return fmt.Sprintf("d%dv%d(%s,%s)", v.DomID, v.Idx, v.state, v.prio)
}

// DefaultWeight is credit1's default domain weight.
const DefaultWeight = 256

// Domain is a virtual machine.
type Domain struct {
	ID       int
	Name     string
	VCPUs    []*VCPU
	IRQVCPU  int // designated vCPU for device IRQs
	Weight   int // credit1 proportional-share weight (DefaultWeight if unset)
	Counters *metrics.Set

	// SymbolMap is the System.map blob the guest "provides" to the
	// hypervisor (paper §4.4). The detector parses it; the hypervisor
	// proper never looks inside.
	SymbolMap []byte

	hot domHot // interned per-domain counters for the per-event paths
}

// domHot holds the per-domain counters incremented on every yield, IPI and
// IRQ, resolved once in NewDomain so the hot paths never hash a name.
type domHot struct {
	yieldBy     [4]*metrics.Counter // indexed by YieldReason
	yieldTotal  *metrics.Counter
	vipiSent    *metrics.Counter
	virqSent    *metrics.Counter
	irqDeferred *metrics.Counter
	migrMicro   *metrics.Counter
}

// PCPU is a physical CPU.
type PCPU struct {
	ID   int
	pool *Pool

	cur     *VCPU
	lastRan *VCPU
	runq    []*VCPU // priority-sorted, stable within a class

	sliceEv *simtime.Event
	busy    simtime.Duration

	// offline marks a hot-unplugged pCPU (fault injection): it belongs to
	// no pool, holds no work, and its tick idles until OnlinePCPU.
	offline bool

	// Occupancy-index state (see DESIGN.md "Scheduler occupancy index").
	// slot is this pCPU's position in pool.pcpus and its bit index in the
	// pool's occ/busyMask/parkedMask bitmasks; -1 while in no pool.
	// headPrio caches runq[0].prio (PrioIdle when the queue is empty) so
	// the steal scan can reject a whole queue without touching its slice.
	slot     int
	headPrio Priority

	// Reusable tick state: tickFn is the pre-bound tick callback (created
	// once in Start), tickEv the armed tick event (nil while parked or
	// inside the tick callback), tickPhase the pCPU's stagger phase in
	// [0, Tick) so a parked tick re-arms on its original grid, and parked
	// marks an idle pCPU whose tick is suppressed.
	tickFn    func()
	tickEv    *simtime.Event
	tickPhase simtime.Duration
	parked    bool

	// sliceFn/startFn are the pre-bound slice-expiry and warmup-complete
	// callbacks (created once in New); both act on p.cur, which is stable
	// while either event is armed because descheduleCurrent always cancels
	// them before clearing cur.
	sliceFn func()
	startFn func()
}

// Current returns the vCPU running on this pCPU (nil when idle).
func (p *PCPU) Current() *VCPU { return p.cur }

// Offline reports whether the pCPU is hot-unplugged.
func (p *PCPU) Offline() bool { return p.offline }

// QueueLen returns the runqueue length.
func (p *PCPU) QueueLen() int { return len(p.runq) }

// Busy returns accumulated non-idle time.
func (p *PCPU) Busy() simtime.Duration { return p.busy }

// Pool returns the cpupool this pCPU currently belongs to.
func (p *PCPU) Pool() *Pool { return p.pool }

// Pool is a cpupool: a set of pCPUs sharing a time slice and scheduling
// policy flags (Xen's cpupool mechanism, extended per the paper §5).
type Pool struct {
	Name       string
	Slice      simtime.Duration
	RunqLimit  int  // 0: unlimited
	ReturnHome bool // vCPUs migrate back to their home pool after one slice
	NoBoost    bool // wakeups in this pool never boost
	NoSteal    bool // pCPUs in this pool never steal work
	NoPreempt  bool // running vCPUs finish their slice (no tickle preemption)

	pcpus []*PCPU

	// Occupancy index: one bit per pool slot (pcpus index). occ marks
	// members with a non-empty runqueue, busyMask members with a current
	// vCPU, parkedMask members whose idle tick is suppressed. Maintained
	// by enqueue/dequeue/dispatch/deschedule and rebuilt by reindex on any
	// membership change; VerifySchedIndex cross-validates them.
	occ        uint64
	busyMask   uint64
	parkedMask uint64
}

// memberMask returns the bitmask covering every current pool slot.
func (pl *Pool) memberMask() uint64 {
	// A 64-member pool shifts by 64, which in Go yields 0, making the
	// mask ^uint64(0) — still correct.
	return uint64(1)<<uint(len(pl.pcpus)) - 1
}

// reindex rebuilds the pool's slots and occupancy masks from the ground
// truth after a membership change (grow/shrink/hotplug).
func (pl *Pool) reindex() {
	pl.occ, pl.busyMask, pl.parkedMask = 0, 0, 0
	for i, p := range pl.pcpus {
		p.slot = i
		bit := uint64(1) << uint(i)
		if len(p.runq) > 0 {
			pl.occ |= bit
			p.headPrio = p.runq[0].prio
		} else {
			p.headPrio = PrioIdle
		}
		if p.cur != nil {
			pl.busyMask |= bit
		}
		if p.parked {
			pl.parkedMask |= bit
		}
	}
}

// PCPUs returns the pool's current pCPUs.
func (pl *Pool) PCPUs() []*PCPU { return pl.pcpus }

// Size returns the number of pCPUs in the pool.
func (pl *Pool) Size() int { return len(pl.pcpus) }

// OnlineCount returns the number of online pCPUs currently in the pool.
// (Pools drop hot-unplugged pCPUs, so today this equals Size; the auditor
// cross-checks exactly that.)
func (pl *Pool) OnlineCount() int {
	n := 0
	for _, p := range pl.pcpus {
		if !p.offline {
			n++
		}
	}
	return n
}

// Hooks are the attachment points for the micro-sliced-core mechanism.
// All hooks may be nil (vanilla Xen behaviour).
type Hooks struct {
	// OnYield fires after a vCPU yields (and has been re-queued), before
	// the pCPU reschedules. The hook may migrate vCPUs between pools.
	OnYield func(v *VCPU, reason YieldReason)
	// OnVIRQRelay fires when the hypervisor relays a device IRQ to a vCPU.
	OnVIRQRelay func(target *VCPU)
	// OnVIPIRelay fires when the hypervisor relays a guest IPI.
	OnVIPIRelay func(src, target *VCPU, vec Vector)
	// IPIFault, when non-nil, is consulted on every vIPI send (fault
	// injection): it returns an extra delivery delay and whether this send
	// attempt is dropped. Dropped sends are retried after
	// Config.IPIRetryDelay, at most Config.IPIRetryLimit times, then
	// delivered unconditionally.
	IPIFault func(vec Vector) (delay simtime.Duration, drop bool)
	// IPILoss, when non-nil, is consulted when an IPI is still dropped at
	// the final retry attempt: returning true loses the interrupt outright
	// (it enters the LostIPI ledger for the recovery supervisor to
	// re-drive) instead of the deliver-anyway backstop.
	IPILoss func(vec Vector) bool
	// OnCapacityChange fires after a pCPU hot-unplug or replug changes the
	// machine-wide online count, with the new count. The adaptive
	// controller re-syncs its pool-size gauge and re-profiles on it:
	// capacity loss can shrink the micro pool under the controller's feet.
	OnCapacityChange func(online int)
}

// Hypervisor ties the machine together.
type Hypervisor struct {
	Clock    *simtime.Clock
	Cfg      Config
	Counters *metrics.Set
	Trace    *trace.Buffer
	Hooks    Hooks

	// Obs, when non-nil, receives scheduling-state transitions and latency
	// spans. Every hot-path hook site is guarded by a nil check, so a run
	// without an observer pays one predictable branch per event. The
	// observer is strictly passive: attaching one never changes the
	// scheduling decisions or the event sequence.
	Obs *obs.Observer

	normal  *Pool
	micro   *Pool
	pcpus   []*PCPU
	domains []*Domain
	vcpus   []*VCPU

	hot hvHot // interned hypervisor-wide counters for the per-event paths

	// lostIPIs is the ledger of interrupts lost past the retry limit
	// (Hooks.IPILoss); lostSeq numbers entries monotonically per run.
	lostIPIs []LostIPI
	lostSeq  uint64

	stoleNext bool // pickNext→dispatch handoff: the pick came from a steal

	// microSince/microArea integrate the micro pool's size over time
	// (core·ns), maintained at every pool-membership change. The ledger is
	// independent of the controller's MicroGauge so the conformance harness
	// can reconcile the two (the gauge-integral law).
	microSince simtime.Time
	microArea  int64

	started bool
}

// hvHot holds the hypervisor-wide counters incremented per scheduling event,
// resolved once in New. Cold paths (pool resizing, error cases) keep using
// the string-keyed Counters registry via count().
type hvHot struct {
	yieldBy     [4]*metrics.Counter // indexed by YieldReason
	yieldTotal  *metrics.Counter
	dispatch    *metrics.Counter
	steal       *metrics.Counter
	preempt     *metrics.Counter
	boost       *metrics.Counter
	vipiSent    *metrics.Counter
	virqSent    *metrics.Counter
	pirq        *metrics.Counter
	irqDeferred *metrics.Counter
	migrMicro   *metrics.Counter
	migrHome    *metrics.Counter
	vipiDropped *metrics.Counter
	vipiRetried *metrics.Counter
	vipiLost    *metrics.Counter
}

// yieldName maps a YieldReason to its counter name (matches YieldReason.String).
var yieldName = [4]string{"yield.ple", "yield.ipi", "yield.halt", "yield.other"}

// New constructs a hypervisor. All pCPUs start in the normal pool; the
// micro pool starts empty and is grown via GrowMicro (adaptive mode) or
// SetMicroCount (static mode).
func New(clock *simtime.Clock, cfg Config) *Hypervisor {
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	h := &Hypervisor{
		Clock:    clock,
		Cfg:      cfg,
		Counters: metrics.NewSet(),
		Trace:    trace.NewBuffer(cfg.TraceCapacity),
	}
	h.normal = &Pool{Name: "normal", Slice: cfg.NormalSlice}
	h.micro = &Pool{
		Name:       "micro",
		Slice:      cfg.MicroSlice,
		RunqLimit:  cfg.MicroRunqLimit,
		ReturnHome: cfg.MicroReturnHome,
		NoBoost:    true,
		NoSteal:    true,
		NoPreempt:  true, // urgent tasks complete without interruption (§5)
	}
	for i := 0; i < cfg.PCPUs; i++ {
		p := &PCPU{ID: i, pool: h.normal, slot: i, headPrio: PrioIdle}
		// Pre-bound per-pCPU callbacks: dispatch and slice expiry are the
		// hottest periodic paths, and binding here (once per machine, not
		// once per dispatch) keeps them allocation-free.
		p.sliceFn = func() { h.sliceExpired(p) }
		p.startFn = func() { h.startCurrent(p) }
		h.pcpus = append(h.pcpus, p)
		h.normal.pcpus = append(h.normal.pcpus, p)
	}
	for r := range yieldName {
		h.hot.yieldBy[r] = h.Counters.Handle(yieldName[r])
	}
	h.hot.yieldTotal = h.Counters.Handle("yield.total")
	h.hot.dispatch = h.Counters.Handle("sched.dispatch")
	h.hot.steal = h.Counters.Handle("sched.steal")
	h.hot.preempt = h.Counters.Handle("sched.preempt")
	h.hot.boost = h.Counters.Handle("boost")
	h.hot.vipiSent = h.Counters.Handle("vipi.sent")
	h.hot.virqSent = h.Counters.Handle("virq.sent")
	h.hot.pirq = h.Counters.Handle("pirq")
	h.hot.irqDeferred = h.Counters.Handle("irq.deferred")
	h.hot.migrMicro = h.Counters.Handle("migrate.micro")
	h.hot.migrHome = h.Counters.Handle("migrate.home")
	h.hot.vipiDropped = h.Counters.Handle("vipi.dropped")
	h.hot.vipiRetried = h.Counters.Handle("vipi.retried")
	h.hot.vipiLost = h.Counters.Handle("vipi.lost")
	return h
}

// NormalPool returns the normal cpupool.
func (h *Hypervisor) NormalPool() *Pool { return h.normal }

// MicroPool returns the micro-sliced cpupool.
func (h *Hypervisor) MicroPool() *Pool { return h.micro }

// MicroCount returns the number of pCPUs currently in the micro pool.
func (h *Hypervisor) MicroCount() int { return len(h.micro.pcpus) }

// accrueMicro folds the interval elapsed at the current micro-pool size
// into the size-over-time integral. Call immediately before any change to
// the micro pool's membership.
func (h *Hypervisor) accrueMicro() {
	now := h.Clock.Now()
	h.microArea += int64(len(h.micro.pcpus)) * int64(now-h.microSince)
	h.microSince = now
}

// MicroCoreNs returns the time integral of the micro pool's size over
// [0, now] in core·nanoseconds — the hypervisor-side residency ledger the
// conformance harness reconciles against the controller's MicroGauge.
func (h *Hypervisor) MicroCoreNs(now simtime.Time) int64 {
	return h.microArea + int64(len(h.micro.pcpus))*int64(now-h.microSince)
}

// Domains returns the created domains.
func (h *Hypervisor) Domains() []*Domain { return h.domains }

// VCPUs returns all vCPUs across domains.
func (h *Hypervisor) VCPUs() []*VCPU { return h.vcpus }

// PCPU returns pCPU i.
func (h *Hypervisor) PCPU(i int) *PCPU { return h.pcpus[i] }

// AllPCPUs returns every pCPU in ID order, online or not (conservation
// checks sum Busy across the whole machine).
func (h *Hypervisor) AllPCPUs() []*PCPU { return h.pcpus }

// OnlinePCPUs returns the number of pCPUs currently online machine-wide.
// The recovery supervisor compares it against its attach-time baseline to
// detect capacity loss.
func (h *Hypervisor) OnlinePCPUs() int {
	n := 0
	for _, p := range h.pcpus {
		if !p.offline {
			n++
		}
	}
	return n
}

// RelabelDomains reassigns domain IDs: the domain created i-th takes ID
// perm[i], and the table returned by Domains is re-sorted so that
// Domains()[id].ID == id keeps holding. Call after all domains and vCPUs
// exist and before Start.
//
// Domain IDs are pure labels — nothing in the scheduler keys behaviour on
// them — so a relabelled run must produce bit-identical scheduling
// counters. The conformance harness (internal/check) verifies exactly that;
// a component that accidentally indexes per-domain state by creation slot
// instead of ID shows up as a relation violation.
func (h *Hypervisor) RelabelDomains(perm []int) error {
	if h.started {
		return fmt.Errorf("hv: RelabelDomains after Start")
	}
	if len(perm) != len(h.domains) {
		return fmt.Errorf("hv: RelabelDomains: %d permutation entries for %d domains", len(perm), len(h.domains))
	}
	seen := make([]bool, len(perm))
	for _, id := range perm {
		if id < 0 || id >= len(perm) || seen[id] {
			return fmt.Errorf("hv: RelabelDomains: %v is not a permutation of 0..%d", perm, len(perm)-1)
		}
		seen[id] = true
	}
	relabeled := make([]*Domain, len(h.domains))
	for i, d := range h.domains {
		d.ID = perm[i]
		relabeled[d.ID] = d
		for _, v := range d.VCPUs {
			v.DomID = d.ID
		}
	}
	h.domains = relabeled
	if h.Obs != nil {
		for _, v := range h.vcpus {
			h.Obs.EnsureVCPU(v.ID, int16(v.DomID), int16(v.Idx))
		}
	}
	return nil
}

// NewDomain creates a domain.
func (h *Hypervisor) NewDomain(name string, symbolMap []byte) *Domain {
	d := &Domain{
		ID:        len(h.domains),
		Name:      name,
		Weight:    DefaultWeight,
		Counters:  metrics.NewSet(),
		SymbolMap: symbolMap,
	}
	for r := range yieldName {
		d.hot.yieldBy[r] = d.Counters.Handle(yieldName[r])
	}
	d.hot.yieldTotal = d.Counters.Handle("yield.total")
	d.hot.vipiSent = d.Counters.Handle("vipi.sent")
	d.hot.virqSent = d.Counters.Handle("virq.sent")
	d.hot.irqDeferred = d.Counters.Handle("irq.deferred")
	d.hot.migrMicro = d.Counters.Handle("migrate.micro")
	h.domains = append(h.domains, d)
	return d
}

// AddVCPU attaches a guest context as a new vCPU of domain d. The vCPU
// starts Blocked; wake it with Wake once the guest has work.
func (h *Hypervisor) AddVCPU(d *Domain, g GuestContext) *VCPU {
	v := &VCPU{
		ID:       len(h.vcpus),
		DomID:    d.ID,
		Idx:      len(d.VCPUs),
		Dom:      d,
		Guest:    g,
		state:    StateBlocked,
		prio:     PrioUnder,
		credits:  h.Cfg.CreditCap,
		pool:     h.normal,
		homePool: h.normal,
		lastPCPU: len(h.vcpus) % len(h.pcpus),
		pin:      -1,
	}
	d.VCPUs = append(d.VCPUs, v)
	h.vcpus = append(h.vcpus, v)
	if h.Obs != nil {
		h.Obs.EnsureVCPU(v.ID, int16(v.DomID), int16(v.Idx))
	}
	return v
}

// SetObserver attaches (or detaches, with nil) the observability layer,
// registering every existing pCPU and vCPU with it. Call before Start.
func (h *Hypervisor) SetObserver(o *obs.Observer) {
	h.Obs = o
	if o == nil {
		return
	}
	o.EnsurePCPUs(len(h.pcpus))
	for _, v := range h.vcpus {
		o.EnsureVCPU(v.ID, int16(v.DomID), int16(v.Idx))
	}
}

// Start launches the periodic scheduler tick. Call once, before running
// the clock.
func (h *Hypervisor) Start() {
	if h.started {
		panic("hv: Start called twice")
	}
	h.started = true
	n := simtime.Duration(len(h.pcpus))
	for i, p := range h.pcpus {
		p := p
		offset := h.Cfg.Tick * simtime.Duration(i+1) / n
		p.tickPhase = offset % h.Cfg.Tick
		p.tickFn = func() { h.pcpuTick(p) }
		p.tickEv = h.Clock.AfterLabeled(offset, "tick", p.tickFn)
	}
	h.Clock.AfterLabeled(h.Cfg.Tick*simtime.Duration(h.Cfg.TicksPerAcct), "acct", h.acctTick)
}

func (h *Hypervisor) count(name string) { h.Counters.Counter(name).Inc() }

func (h *Hypervisor) emit(k trace.Kind, v *VCPU, arg0, arg1 uint64) {
	r := trace.Record{Time: h.Clock.Now(), Kind: k, Arg0: arg0, Arg1: arg1}
	if v != nil {
		r.Dom = int16(v.DomID)
		r.VCPU = int16(v.Idx)
		if v.pcpu != nil {
			r.PCPU = int16(v.pcpu.ID)
		} else {
			r.PCPU = -1
		}
	}
	h.Trace.Emit(r)
}

package experiment

import (
	"fmt"
	"io"

	"github.com/microslicedcore/microsliced/internal/core"
	"github.com/microslicedcore/microsliced/internal/guest"
	"github.com/microslicedcore/microsliced/internal/hv"
	"github.com/microslicedcore/microsliced/internal/ksym"
	"github.com/microslicedcore/microsliced/internal/report"
	"github.com/microslicedcore/microsliced/internal/simtime"
	"github.com/microslicedcore/microsliced/internal/vnet"
	"github.com/microslicedcore/microsliced/internal/workload"
)

// I/O experiment parameters (paper §3.3, §6.2: 1 Gbit link, iPerf).
const (
	ioLinkBps   = 1_000_000_000
	ioUDPBytes  = 8192 // iPerf's default UDP datagram size
	ioTCPBytes  = 8192
	ioTCPWindow = 32
	ioWireDelay = 100 * simtime.Microsecond
	// ioRingCap reflects the effective buffering between netback and the
	// iPerf socket (~400 KB), which bounds how much of a scheduling gap
	// can be absorbed without UDP loss.
	ioRingCap = 48
)

// IOMeasure is one iPerf measurement.
type IOMeasure struct {
	Proto    string
	Mbps     float64
	JitterMs float64
	Loss     float64
}

// RunIO builds the paper's I/O scenario: VM-1 hosts the iPerf server
// (optionally mixed with a lookbusy thread on the same vCPU), VM-2 hosts
// lookbusy, and in the mixed configuration both vCPUs are pinned to the
// same pCPU (Figure 9b).
func RunIO(proto string, mixed bool, cc core.Config, dur simtime.Duration) (*IOMeasure, error) {
	return RunIORival(proto, mixed, cc, RivalNone, dur)
}

// RunIORival is RunIO with a prior-work system installed instead of (or in
// addition to) the paper's mechanism.
func RunIORival(proto string, mixed bool, cc core.Config, rival Rival, dur simtime.Duration) (*IOMeasure, error) {
	clock := simtime.NewClock()
	cfg := hv.DefaultConfig()
	cfg.PCPUs = 2
	h := hv.New(clock, cfg)

	k := guest.NewKernel(h, "vm1", 1, ksym.Generate(5), guest.DefaultParams())
	nic := vnet.NewNIC(h, k.Dom, ioRingCap)
	k.AttachNIC(nic)
	sock := k.NewSocket(0)
	app := workload.Empty("iperf", k)
	workload.IperfServer(app, 0, sock)

	var hog *guest.Kernel
	if mixed {
		workload.LookbusyThread(app, 0)
		hog = guest.NewKernel(h, "vm2", 1, ksym.Generate(6), guest.DefaultParams())
		if _, err := workload.New("lookbusy", hog, 9); err != nil {
			return nil, err
		}
		k.VCPUs[0].HV().Pin(0)
		hog.VCPUs[0].HV().Pin(0)
	}

	ctrl, err := core.Attach(h, cc)
	if err != nil {
		return nil, err
	}
	var rivalStart func()
	if rival != RivalNone {
		rivalStart, err = attachRival(h, rival)
		if err != nil {
			return nil, err
		}
	}
	h.Start()
	ctrl.Start()
	if rivalStart != nil {
		rivalStart()
	}
	k.StartAll()
	if hog != nil {
		hog.StartAll()
	}

	out := &IOMeasure{Proto: proto}
	switch proto {
	case "udp":
		flow, err := vnet.NewUDPFlow(clock, nic, 0, ioUDPBytes, ioLinkBps)
		if err != nil {
			return nil, err
		}
		flow.Attach(sock)
		flow.Start()
		clock.RunUntil(dur)
		flow.Stop()
		out.Mbps = flow.GoodputBps() / 1e6
		out.JitterMs = flow.Jitter.PeakMillis()
		out.Loss = flow.LossRate()
	case "tcp":
		flow, err := vnet.NewTCPFlow(clock, nic, 0, ioTCPBytes, ioTCPWindow, ioLinkBps, ioWireDelay)
		if err != nil {
			return nil, err
		}
		flow.Attach(sock)
		flow.Start()
		clock.RunUntil(dur)
		flow.Stop()
		out.Mbps = flow.GoodputBps() / 1e6
		out.JitterMs = flow.Jitter.PeakMillis()
	default:
		return nil, fmt.Errorf("experiment: unknown protocol %q", proto)
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Table 4c — iPerf latency and throughput, solo vs mixed co-run
// ---------------------------------------------------------------------------

// Table4cResult reproduces paper Table 4c.
type Table4cResult struct {
	Solo  IOMeasure
	Mixed IOMeasure
}

// Table4c measures iPerf (UDP) jitter and throughput solo vs mixed co-run
// on the vanilla hypervisor.
func Table4c(dur simtime.Duration) (*Table4cResult, error) {
	out := &Table4cResult{}
	err := parallelDo(2, func(i int) error {
		m, err := RunIO("udp", i == 1, offConfig(), dur)
		if err != nil {
			return err
		}
		if i == 0 {
			out.Solo = *m
		} else {
			out.Mixed = *m
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Render implements report.Renderer.
func (r *Table4cResult) Render(w io.Writer) {
	t := report.Table{
		Title:   "Table 4c: iPerf latency and throughput, solo vs mixed co-run",
		Columns: []string{"config", "jitter (ms)", "throughput (Mbit/s)", "loss"},
	}
	t.AddRow("solo", fmt.Sprintf("%.4f", r.Solo.JitterMs), fmt.Sprintf("%.1f", r.Solo.Mbps), fmt.Sprintf("%.3f", r.Solo.Loss))
	t.AddRow("mixed co-run", fmt.Sprintf("%.4f", r.Mixed.JitterMs), fmt.Sprintf("%.1f", r.Mixed.Mbps), fmt.Sprintf("%.3f", r.Mixed.Loss))
	t.Notes = append(t.Notes, "paper: solo 0.0043ms / 936.3 Mbit/s; mixed co-run 9.2507ms / 435.6 Mbit/s")
	t.Render(w)
}

// ---------------------------------------------------------------------------
// Figure 9 — mixed co-run I/O with micro-sliced cores
// ---------------------------------------------------------------------------

// Figure9Result reproduces paper Figure 9: TCP/UDP bandwidth and jitter of
// the mixed co-run under the baseline and the micro-sliced scheme.
type Figure9Result struct {
	BaselineTCP IOMeasure
	BaselineUDP IOMeasure
	MicroTCP    IOMeasure
	MicroUDP    IOMeasure
}

// Figure9 runs the mixed-VM I/O comparison. The micro-sliced configuration
// dedicates one micro core (machine has 2 pCPUs; both vCPUs are pinned to
// the other one) with I/O acceleration enabled.
func Figure9(dur simtime.Duration) (*Figure9Result, error) {
	micro := core.StaticConfig(1)
	out := &Figure9Result{}
	grid := []struct {
		dst   *IOMeasure
		proto string
		cc    core.Config
	}{
		{&out.BaselineTCP, "tcp", offConfig()},
		{&out.BaselineUDP, "udp", offConfig()},
		{&out.MicroTCP, "tcp", micro},
		{&out.MicroUDP, "udp", micro},
	}
	err := parallelDo(len(grid), func(i int) error {
		m, err := RunIO(grid[i].proto, true, grid[i].cc, dur)
		if err != nil {
			return err
		}
		*grid[i].dst = *m
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Render implements report.Renderer.
func (r *Figure9Result) Render(w io.Writer) {
	t := report.Table{
		Title:   "Figure 9: mixed co-run I/O performance (iperf+lookbusy vs lookbusy, shared pCPU)",
		Columns: []string{"config", "TCP Mbit/s", "UDP Mbit/s", "UDP jitter (ms)", "UDP loss"},
	}
	t.AddRow("baseline",
		fmt.Sprintf("%.1f", r.BaselineTCP.Mbps),
		fmt.Sprintf("%.1f", r.BaselineUDP.Mbps),
		fmt.Sprintf("%.4f", r.BaselineUDP.JitterMs),
		fmt.Sprintf("%.3f", r.BaselineUDP.Loss))
	t.AddRow("u-sliced",
		fmt.Sprintf("%.1f", r.MicroTCP.Mbps),
		fmt.Sprintf("%.1f", r.MicroUDP.Mbps),
		fmt.Sprintf("%.4f", r.MicroUDP.JitterMs),
		fmt.Sprintf("%.3f", r.MicroUDP.Loss))
	t.Notes = append(t.Notes, "paper: TCP bandwidth improves and jitter drops from >8ms to near 0 under u-slicing")
	t.Render(w)
}

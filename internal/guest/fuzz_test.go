package guest

import (
	"testing"

	"github.com/microslicedcore/microsliced/internal/hv"
	"github.com/microslicedcore/microsliced/internal/ksym"
	"github.com/microslicedcore/microsliced/internal/rng"
	"github.com/microslicedcore/microsliced/internal/simtime"
)

// randProg emits a random but valid op stream: the adversarial input for
// the execution engine.
type randProg struct {
	r     *rng.Source
	k     *Kernel
	locks []*SpinLock
	socks []*Socket
	self  int
}

func (p *randProg) Next(now simtime.Time) Op {
	switch p.r.Intn(10) {
	case 0, 1, 2:
		return Op{Kind: OpCompute, Dur: simtime.Duration(p.r.ExpDur(int64(50 * simtime.Microsecond)))}
	case 3:
		return Op{Kind: OpKernel, Fn: "vfs_read", Dur: simtime.Duration(p.r.ExpDur(int64(3 * simtime.Microsecond)))}
	case 4, 5:
		return Op{
			Kind: OpLock,
			Lock: p.locks[p.r.Intn(len(p.locks))],
			Dur:  simtime.Duration(p.r.ExpDur(int64(2 * simtime.Microsecond))),
		}
	case 6:
		op := Op{Kind: OpTLBFlush}
		if p.r.Bool(0.3) {
			op.Lock = p.locks[len(p.locks)-1] // the sleeping one
		}
		return op
	case 7:
		return Op{Kind: OpSleep, Dur: simtime.Duration(p.r.ExpDur(int64(30 * simtime.Microsecond)))}
	case 8:
		// Wake a random sibling thread.
		ths := p.k.Threads()
		return Op{Kind: OpWake, Dur: 700, Target: ths[p.r.Intn(len(ths))]}
	default:
		return Op{Kind: OpCompute, Dur: simtime.Duration(1 + p.r.Intn(1000))}
	}
}

// TestFuzzRandomPrograms drives two VMs of random-op threads through heavy
// consolidation plus pool churn and verifies global invariants: no panics,
// conserved thread counts, consistent lock ownership, and a drained
// machine at the end.
func TestFuzzRandomPrograms(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		seed := seed
		clock := simtime.NewClock()
		cfg := hv.DefaultConfig()
		cfg.PCPUs = 3
		h := hv.New(clock, cfg)
		r := rng.New(seed)

		var kernels []*Kernel
		var allLocks []*SpinLock
		for d := 0; d < 2; d++ {
			k := NewKernel(h, "vm", 4, ksym.Generate(seed+uint64(d)), DefaultParams())
			locks := []*SpinLock{
				k.Lock("a", "Page allocator", "get_page_from_freelist"),
				k.Lock("b", "Dentry", "__d_lookup"),
				k.RWSem("sem", "Runqueue", "rwsem_wake"),
			}
			allLocks = append(allLocks, locks...)
			for i := 0; i < 4; i++ {
				k.NewThread(i, "fz", &randProg{r: r.Fork(uint64(d*100 + i)), k: k, locks: locks})
			}
			kernels = append(kernels, k)
		}
		h.Start()
		for _, k := range kernels {
			k.StartAll()
		}
		// Interleave execution with micro-pool churn.
		for step := 0; step < 30; step++ {
			clock.RunUntil(clock.Now() + 5*simtime.Millisecond)
			switch step % 5 {
			case 0:
				h.GrowMicro()
			case 2:
				for _, v := range h.VCPUs() {
					if v.State() == hv.StateRunnable && !v.OnMicro() {
						h.MigrateToMicro(v)
						break
					}
				}
			case 4:
				h.ShrinkMicro()
			}
			// Lock invariants: a holder is a live thread; waiter lists
			// never contain the holder.
			for _, l := range allLocks {
				if hd := l.Holder(); hd != nil {
					if hd.State() == ThreadDone {
						t.Fatalf("seed %d: finished thread holds %s", seed, l.Name())
					}
					for _, w := range l.waiters {
						if w == hd {
							t.Fatalf("seed %d: holder queued as waiter on %s", seed, l.Name())
						}
					}
				}
			}
			// Engine invariants per vCPU.
			for _, k := range kernels {
				for _, vc := range k.VCPUs {
					if vc.cur != nil && vc.cur.state != ThreadRunning {
						t.Fatalf("seed %d: cur thread in state %v", seed, vc.cur.state)
					}
					for _, th := range vc.runq {
						if th.state != ThreadReady && th.state != ThreadDone {
							// Done threads are lazily skipped by pickNext;
							// anything else on the queue is a bug.
							t.Fatalf("seed %d: queued thread in state %v", seed, th.state)
						}
					}
				}
			}
		}
		// All threads must have made progress.
		for _, k := range kernels {
			for _, th := range k.Threads() {
				if th.OpsDone == 0 {
					t.Fatalf("seed %d: thread %s starved", seed, th)
				}
			}
		}
	}
}

// TestFuzzDeterminism re-runs one fuzz seed and requires identical totals.
func TestFuzzDeterminism(t *testing.T) {
	run := func() uint64 {
		clock := simtime.NewClock()
		cfg := hv.DefaultConfig()
		cfg.PCPUs = 2
		h := hv.New(clock, cfg)
		k := NewKernel(h, "vm", 3, ksym.Generate(5), DefaultParams())
		locks := []*SpinLock{
			k.Lock("a", "Page allocator", "get_page_from_freelist"),
			k.RWSem("sem", "Runqueue", "rwsem_wake"),
		}
		r := rng.New(77)
		for i := 0; i < 3; i++ {
			k.NewThread(i, "fz", &randProg{r: r.Fork(uint64(i)), k: k, locks: locks})
		}
		h.Start()
		k.StartAll()
		clock.RunUntil(200 * simtime.Millisecond)
		var total uint64
		for _, th := range k.Threads() {
			total += th.OpsDone
		}
		return total
	}
	if run() != run() {
		t.Fatal("fuzz scenario is nondeterministic")
	}
}

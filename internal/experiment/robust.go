package experiment

import (
	"fmt"
	"io"
	"reflect"
	"sort"

	"github.com/microslicedcore/microsliced/internal/core"
	"github.com/microslicedcore/microsliced/internal/fault"
	"github.com/microslicedcore/microsliced/internal/recovery"
	"github.com/microslicedcore/microsliced/internal/report"
	"github.com/microslicedcore/microsliced/internal/simtime"
)

// ---------------------------------------------------------------------------
// Fault sweep — robustness under injected adversity
// ---------------------------------------------------------------------------

// faultSweepCases are the sweep rows: each fault in isolation, then all of
// them combined. Probabilities are deliberately aggressive — the sweep is
// a stress harness, not a realism study.
func faultSweepCases() []struct {
	Name string
	Cfg  fault.Config
} {
	return []struct {
		Name string
		Cfg  fault.Config
	}{
		{"none", fault.Config{}},
		{"pcpu-offline", fault.Config{Seed: 1, OfflinePCPUs: 2}},
		{"ipi-delay", fault.Config{Seed: 1, IPIDelayProb: 0.3, IPIDelayMax: 200 * simtime.Microsecond}},
		{"ipi-drop", fault.Config{Seed: 1, IPIDropProb: 0.2}},
		{"tick-jitter", fault.Config{Seed: 1, TickJitter: 2 * simtime.Millisecond}},
		{"lock-stall", fault.Config{Seed: 1, LockStallProb: 0.1, LockStallFactor: 8}},
		{"combined", fault.Config{
			Seed: 1, OfflinePCPUs: 1,
			IPIDelayProb: 0.2, IPIDelayMax: 200 * simtime.Microsecond,
			IPIDropProb: 0.1, TickJitter: 1 * simtime.Millisecond,
			LockStallProb: 0.05, LockStallFactor: 4,
		}},
	}
}

// FaultSweepRow is one fault configuration's outcome.
type FaultSweepRow struct {
	Name string
	Res  *Result
	Err  error
	// Deterministic reports whether a second run of the identical fault
	// plan reproduced reflect.DeepEqual Results.
	Deterministic bool
}

// FaultSweepResult is the full sweep.
type FaultSweepResult struct {
	Rows []FaultSweepRow
}

// FaultSweep runs the paper's dedup+swaptions co-run (dynamic mode, auditor
// armed) under each fault configuration, twice each: the duplicate run
// checks that a fixed fault-plan seed reproduces bit-for-bit identical
// Results. Per-job isolation comes from RunAllSettled — a failing fault
// row surfaces as an error row, not a dead sweep.
func FaultSweep(dur simtime.Duration) (*FaultSweepResult, error) {
	cases := faultSweepCases()
	setups := make([]Setup, 0, 2*len(cases))
	for _, c := range cases {
		c := c
		s := corunSetup("dedup", core.DefaultConfig(), dur)
		s.Faults = &c.Cfg
		s.Audit = true
		setups = append(setups, s, s)
	}
	settled := RunAllSettled(setups)
	out := &FaultSweepResult{}
	for i, c := range cases {
		a, b := settled[2*i], settled[2*i+1]
		row := FaultSweepRow{Name: c.Name, Res: a.Result, Err: a.Err}
		if a.Err == nil && b.Err == nil {
			row.Deterministic = reflect.DeepEqual(a.Result, b.Result)
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Recovery sweep — convergence (MTTR) under harsh faults
// ---------------------------------------------------------------------------

// recoverySweepSeeds is the per-case seed fan-out: each harsh-fault class
// runs this many seeded plans (twice each for reproducibility), and the
// MTTR percentiles are taken across the seeds.
const recoverySweepSeeds = 5

// recoverySweepCases are the harsh-fault classes: permanent capacity loss,
// correlated IPI storms with outright loss, and both combined. QuiesceAt is
// filled per-duration by RecoverySweep.
func recoverySweepCases() []struct {
	Name string
	Cfg  fault.Config
} {
	return []struct {
		Name string
		Cfg  fault.Config
	}{
		{"permanent-loss", fault.Config{OfflinePCPUs: 1, PermanentOfflinePCPUs: 2}},
		{"ipi-storm", fault.Config{
			Storms: 2, IPIDropProb: 0.2, LoseIPIs: true,
			TickJitter: 500 * simtime.Microsecond,
		}},
		{"loss+storm", fault.Config{
			PermanentOfflinePCPUs: 2, Storms: 2,
			IPIDropProb: 0.15, LoseIPIs: true,
			LockStallProb: 0.05, LockStallFactor: 4,
		}},
	}
}

// RecoverySweepRow is one harsh-fault class's outcome across seeds.
type RecoverySweepRow struct {
	Name string
	// Converged counts seeds whose run reconverged: lost-IPI ledger empty,
	// no auditor violation after quiesce+deadline, MTTR within deadline.
	Converged int
	Seeds     int
	// Repairs is the mean supervisor detection+repair count per seed.
	Repairs float64
	// MTTRs holds one quiesce→last-repair time per converged-or-not seed,
	// sorted ascending (percentiles read straight out of it).
	MTTRs []simtime.Duration
	// Deterministic reports whether every seed's duplicate run reproduced
	// reflect.DeepEqual Results (repairs included).
	Deterministic bool
	Errs          []string
}

// MTTRPercentile returns the p-th percentile (0..100) of the row's MTTRs.
func (r *RecoverySweepRow) MTTRPercentile(p float64) simtime.Duration {
	if len(r.MTTRs) == 0 {
		return 0
	}
	idx := int(p / 100 * float64(len(r.MTTRs)))
	if idx >= len(r.MTTRs) {
		idx = len(r.MTTRs) - 1
	}
	return r.MTTRs[idx]
}

// RecoverySweepResult is the full sweep.
type RecoverySweepResult struct {
	Rows     []RecoverySweepRow
	Quiesce  simtime.Duration
	Deadline simtime.Duration
}

// RecoverySweep runs a dedup+swaptions co-run (4 vCPUs each, static-2 mode,
// auditor and recovery supervisor armed) under each harsh-fault class:
// chaos until QuiesceAt (20% of the run), then a convergence window. Every
// seed runs twice — bit-identical repairs are part of the contract — and
// the sweep reports per-class MTTR percentiles and convergence counts.
//
// Three sizing decisions make the MTTR column meaningful rather than
// vacuously zero:
//
//   - the consolidation is small (8 vCPUs over at least 8 surviving normal
//     cores), so the worst legitimate queueing delay stays near one 30ms
//     slice and starvation detection separates wedges from contention;
//   - the starve bound exceeds the quiesce point, so a wedge planted during
//     chaos is necessarily detected and repaired after it — the repair
//     lands on the MTTR clock by construction;
//   - every permanent-loss case pins one swaptions vCPU to the pCPU the
//     fault plan kills (the schedule is deterministic, so the victim is
//     known up front), planting exactly that wedge. The victim must be the
//     CPU-bound co-runner: an IPI-heavy vCPU keeps escaping through
//     micro-pool boosts (pins only bind within the home pool) and never
//     trips the starvation detector.
func RecoverySweep(dur simtime.Duration) (*RecoverySweepResult, error) {
	quiesce := dur / 5
	starveBound := quiesce + 10*simtime.Millisecond
	deadline := quiesce + 25*simtime.Millisecond
	if quiesce < 20*simtime.Millisecond {
		return nil, fmt.Errorf("experiment: recovery sweep needs at least 100ms of simulated time, got %v", dur)
	}
	cases := recoverySweepCases()
	rcfg := &recovery.Config{
		Interval:    2 * simtime.Millisecond,
		StarveBound: starveBound,
	}
	setups := make([]Setup, 0, 2*recoverySweepSeeds*len(cases))
	for _, c := range cases {
		for seed := uint64(1); seed <= recoverySweepSeeds; seed++ {
			cfg := c.Cfg
			cfg.Seed = seed
			cfg.QuiesceAt = quiesce
			s := corunSetup("dedup", core.StaticConfig(2), dur)
			for i := range s.VMs {
				s.VMs[i].VCPUs = 4
			}
			if cfg.PermanentOfflinePCPUs > 0 {
				plan, err := fault.New(cfg, DefaultPCPUs, dur)
				if err != nil {
					return nil, err
				}
				for _, ev := range plan.Hotplug {
					if ev.Permanent {
						s.VMs[1].Pins = []int{ev.PCPU}
						break
					}
				}
			}
			s.Faults = &cfg
			s.Recovery = rcfg
			s.Audit = true
			setups = append(setups, s, s)
		}
	}
	settled := RunAllSettled(setups)
	out := &RecoverySweepResult{Quiesce: quiesce, Deadline: deadline}
	idx := 0
	for _, c := range cases {
		row := RecoverySweepRow{Name: c.Name, Seeds: recoverySweepSeeds, Deterministic: true}
		var repairs uint64
		for seed := 0; seed < recoverySweepSeeds; seed++ {
			a, b := settled[idx], settled[idx+1]
			idx += 2
			if a.Err != nil || b.Err != nil {
				err := a.Err
				if err == nil {
					err = b.Err
				}
				row.Errs = append(row.Errs, err.Error())
				row.Deterministic = false
				continue
			}
			if !reflect.DeepEqual(a.Result, b.Result) {
				row.Deterministic = false
			}
			res := a.Result
			repairs += res.RepairCount
			row.MTTRs = append(row.MTTRs, res.MTTR)
			late := 0
			for _, v := range res.Violations {
				if v.Time >= simtime.Time(quiesce+deadline) {
					late++
				}
			}
			if res.LostIPIs == 0 && late == 0 && res.MTTR <= deadline {
				row.Converged++
			}
		}
		if n := len(row.MTTRs); n > 0 {
			row.Repairs = float64(repairs) / float64(n)
		}
		sort.Slice(row.MTTRs, func(i, j int) bool { return row.MTTRs[i] < row.MTTRs[j] })
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render implements report.Renderer.
func (r *RecoverySweepResult) Render(w io.Writer) {
	t := report.Table{
		Title: fmt.Sprintf(
			"Recovery sweep: dedup+swaptions (static-2, supervisor on), chaos quiesces at %v, convergence deadline +%v",
			r.Quiesce, r.Deadline),
		Columns: []string{"fault class", "converged", "repairs/run",
			"MTTR p50", "MTTR p99", "reproducible"},
	}
	for i := range r.Rows {
		row := &r.Rows[i]
		if len(row.Errs) > 0 {
			t.AddRow(row.Name, fmt.Sprintf("%d/%d", row.Converged, row.Seeds),
				"error", row.Errs[0], "-", "-")
			continue
		}
		t.AddRow(row.Name,
			fmt.Sprintf("%d/%d", row.Converged, row.Seeds),
			fmt.Sprintf("%.1f", row.Repairs),
			fmt.Sprintf("%v", row.MTTRPercentile(50)),
			fmt.Sprintf("%v", row.MTTRPercentile(99)),
			fmt.Sprintf("%v", row.Deterministic))
	}
	t.Notes = append(t.Notes,
		"MTTR = quiesce→last-repair; converged = lost-IPI ledger drained, no post-deadline violations, MTTR within deadline",
		"each seed runs twice; reproducible=true means reflect.DeepEqual results including the repair log")
	t.Render(w)
}

// Render implements report.Renderer.
func (r *FaultSweepResult) Render(w io.Writer) {
	t := report.Table{
		Title: "Fault sweep: dedup+swaptions co-run (dynamic) under injected faults",
		Columns: []string{"fault", "dedup units", "swaptions units",
			"violations", "fault errs", "reproducible"},
	}
	for _, row := range r.Rows {
		if row.Err != nil {
			t.AddRow(row.Name, "error", fmt.Sprintf("%v", row.Err), "-", "-", "-")
			continue
		}
		res := row.Res
		t.AddRow(row.Name,
			res.VM("dedup").Units,
			res.VM("swaptions").Units,
			len(res.Violations),
			len(res.FaultErrs),
			fmt.Sprintf("%v", row.Deterministic))
	}
	t.Notes = append(t.Notes,
		"each row runs twice with the same fault-plan seed; reproducible=true means reflect.DeepEqual results",
		"violations counts scheduler-invariant breaches found by the auditor (0 expected)")
	t.Render(w)
}

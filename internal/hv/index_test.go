package hv

import (
	"testing"

	"github.com/microslicedcore/microsliced/internal/simtime"
)

// verifyIndex fails the test on the first occupancy-index inconsistency.
func verifyIndex(t *testing.T, h *Hypervisor, when string) {
	t.Helper()
	if err := h.VerifySchedIndex(); err != nil {
		t.Fatalf("%s: %v", when, err)
	}
}

// TestIndexUnderHotplugChurn repeatedly hot-unplugs and replugs pCPUs while
// oversubscribed guests run, cross-validating the occupancy index against
// the real runqueues after every transition and at steady points in between.
func TestIndexUnderHotplugChurn(t *testing.T) {
	clock, h := setup(4)
	d := h.NewDomain("vm", nil)
	guests := make([]*computeGuest, 8)
	for i := range guests {
		guests[i] = newComputeGuest(h, d, 40*simtime.Millisecond)
	}
	h.Start()
	for _, g := range guests {
		h.Wake(g.v, false)
	}
	verifyIndex(t, h, "after start")

	step := 7 * simtime.Millisecond
	now := simtime.Time(0)
	for round := 0; round < 6; round++ {
		now += step
		clock.RunUntil(now)
		verifyIndex(t, h, "steady state")
		victim := 1 + round%3
		if err := h.OfflinePCPU(victim); err != nil {
			t.Fatalf("round %d: offline p%d: %v", round, victim, err)
		}
		verifyIndex(t, h, "after offline")
		now += step
		clock.RunUntil(now)
		verifyIndex(t, h, "offline steady state")
		if err := h.OnlinePCPU(victim); err != nil {
			t.Fatalf("round %d: online p%d: %v", round, victim, err)
		}
		verifyIndex(t, h, "after online")
	}
	clock.RunUntil(2 * simtime.Second)
	verifyIndex(t, h, "end of run")
	checkInvariants(t, h)
	for i, g := range guests {
		if !g.done {
			t.Fatalf("guest %d never completed under hotplug churn", i)
		}
	}
}

// TestIndexUnderPoolResizeChurn resizes the micro pool while vCPUs sit on
// its runqueues (RunqLimit stacking), so reindex() runs against populated
// queues on both the shrinking and the growing side.
func TestIndexUnderPoolResizeChurn(t *testing.T) {
	clock := simtime.NewClock()
	cfg := testConfig(4)
	cfg.MicroRunqLimit = 3
	h := New(clock, cfg)
	d := h.NewDomain("vm", nil)
	guests := make([]*computeGuest, 6)
	for i := range guests {
		guests[i] = newComputeGuest(h, d, 30*simtime.Millisecond)
	}
	h.Start()
	for _, g := range guests {
		h.Wake(g.v, false)
	}
	clock.RunUntil(simtime.Millisecond)
	verifyIndex(t, h, "warmed up")

	if got := h.SetMicroCount(2); got != 2 {
		t.Fatalf("SetMicroCount(2) achieved %d", got)
	}
	verifyIndex(t, h, "after grow to 2")

	// Stack the micro pool: preempted vCPUs migrate in until the runqueue
	// limit bites, so shrink has queued vCPUs to drain.
	migrated := 0
	for _, g := range guests {
		if g.v.State() == StateRunnable && h.MigrateToMicro(g.v) {
			migrated++
		}
	}
	verifyIndex(t, h, "after micro migrations")

	if got := h.SetMicroCount(1); got != 1 {
		t.Fatalf("SetMicroCount(1) achieved %d", got)
	}
	verifyIndex(t, h, "after shrink to 1")
	if !h.ShrinkMicro() {
		t.Fatal("final ShrinkMicro refused")
	}
	verifyIndex(t, h, "after shrink to 0")
	checkInvariants(t, h)

	clock.RunUntil(simtime.Second)
	verifyIndex(t, h, "end of run")
	for i, g := range guests {
		if !g.done {
			t.Fatalf("guest %d never completed under pool-resize churn", i)
		}
	}
}

// TestIdleTickParksAndResumesOnPhase: a pCPU whose work drains parks its
// tick (no events while idle), and the next enqueue re-arms it exactly on
// the original staggered grid — (fire - phase) is a whole number of ticks.
func TestIdleTickParksAndResumesOnPhase(t *testing.T) {
	clock, h := setup(2)
	d := h.NewDomain("vm", nil)
	g := newComputeGuest(h, d, 3*simtime.Millisecond)
	h.Start()
	h.Wake(g.v, false)
	// Run past the work plus a full tick period so every tick has had a
	// chance to find its pCPU idle and park.
	clock.RunUntil(3*simtime.Millisecond + 2*h.Cfg.Tick)
	if !g.done {
		t.Fatal("guest never finished")
	}
	verifyIndex(t, h, "drained")
	for _, p := range h.pcpus {
		if !p.parked {
			t.Fatalf("idle p%d did not park its tick", p.ID)
		}
		if p.tickEv != nil {
			t.Fatalf("parked p%d still holds an armed tick", p.ID)
		}
	}
	// A fully idle machine burns no per-pCPU tick events: over a long idle
	// stretch only the global acct tick (every Tick*TicksPerAcct) fires.
	idleSpan := simtime.Duration(100) * h.Cfg.Tick
	fired := clock.RunUntil(clock.Now() + idleSpan)
	acctBudget := uint64(idleSpan/(h.Cfg.Tick*simtime.Duration(h.Cfg.TicksPerAcct))) + 1
	if fired > acctBudget {
		t.Fatalf("idle machine processed %d events over %v, want at most %d acct ticks",
			fired, idleSpan, acctBudget)
	}
	verifyIndex(t, h, "after idle stretch")

	// Wake new work off any tick boundary and check phase alignment.
	g2 := newComputeGuest(h, d, simtime.Millisecond)
	h.Wake(g2.v, false)
	for _, p := range h.pcpus {
		if p.parked || p.tickEv == nil {
			t.Fatalf("p%d still parked after wake", p.ID)
		}
		at := p.tickEv.When()
		if at <= clock.Now() {
			t.Fatalf("p%d tick re-armed at %v, not in the future of %v", p.ID, at, clock.Now())
		}
		if off := (at - p.tickPhase) % h.Cfg.Tick; off != 0 {
			t.Fatalf("p%d tick re-armed off-grid: fire %v, phase %v, residue %v",
				p.ID, at, p.tickPhase, off)
		}
	}
	verifyIndex(t, h, "after wake")
	clock.RunUntil(clock.Now() + simtime.Millisecond + 2*h.Cfg.Tick)
	if !g2.done {
		t.Fatal("second guest never finished")
	}
	verifyIndex(t, h, "end of run")
}

// TestIndexSurvivesOfflineWhileParked covers the interaction of the two new
// pCPU states: parking an idle tick and then hot-unplugging the pCPU (and
// bringing it back) must keep index, parked mask, and tick arming coherent.
func TestIndexSurvivesOfflineWhileParked(t *testing.T) {
	clock, h := setup(3)
	d := h.NewDomain("vm", nil)
	g := newComputeGuest(h, d, 2*simtime.Millisecond)
	h.Start()
	h.Wake(g.v, false)
	clock.RunUntil(2*simtime.Millisecond + 2*h.Cfg.Tick) // drain: every pCPU parks
	if !g.done {
		t.Fatal("guest never finished")
	}
	verifyIndex(t, h, "drained")

	if err := h.OfflinePCPU(2); err != nil {
		t.Fatalf("offline parked p2: %v", err)
	}
	verifyIndex(t, h, "offline while parked")
	if err := h.OnlinePCPU(2); err != nil {
		t.Fatalf("online p2: %v", err)
	}
	verifyIndex(t, h, "back online")

	g2 := newComputeGuest(h, d, 2*simtime.Millisecond)
	h.Wake(g2.v, false)
	clock.RunUntil(clock.Now() + 2*simtime.Millisecond + 2*h.Cfg.Tick)
	if !g2.done {
		t.Fatal("guest never finished after offline/online of a parked pCPU")
	}
	verifyIndex(t, h, "end of run")
	checkInvariants(t, h)
}

// Quickstart: consolidate a mail server with a CPU hog at 2:1, then watch
// what one micro-sliced core does to it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	microsliced "github.com/microslicedcore/microsliced"
)

func main() {
	// Two 12-vCPU VMs share 12 pCPUs: exim (kernel-intensive mail server)
	// against swaptions (pure computation).
	pair := []microsliced.VM{{App: "exim"}, {App: "swaptions"}}

	baseline, err := microsliced.Simulate(microsliced.Scenario{
		VMs: pair, Mode: microsliced.Off, Seconds: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	accelerated, err := microsliced.Simulate(microsliced.Scenario{
		VMs: pair, Mode: microsliced.Static, StaticCores: 1, Seconds: 2,
	})
	if err != nil {
		log.Fatal(err)
	}

	b, a := baseline.VM("exim"), accelerated.VM("exim")
	sb, sa := baseline.VM("swaptions"), accelerated.VM("swaptions")

	fmt.Println("exim + swaptions, 12 pCPUs, 2:1 consolidation, 2s simulated")
	fmt.Printf("%-28s %12s %12s\n", "", "baseline", "1 ucore")
	fmt.Printf("%-28s %12d %12d\n", "exim messages", b.WorkUnits, a.WorkUnits)
	fmt.Printf("%-28s %12d %12d\n", "exim spinlock yields", b.YieldsSpinlock, a.YieldsSpinlock)
	fmt.Printf("%-28s %12d %12d\n", "swaptions bursts", sb.WorkUnits, sa.WorkUnits)
	fmt.Println()
	fmt.Printf("exim throughput gain:    %.2fx\n", float64(a.WorkUnits)/float64(b.WorkUnits))
	fmt.Printf("swaptions slowdown:      %.1f%%\n",
		(float64(sb.WorkUnits)/float64(sa.WorkUnits)-1)*100)
	fmt.Printf("detector migrations:     %d\n", accelerated.DetectorCounters["migrate.ok"])

	fmt.Println("\ntop critical symbols the hypervisor saw at preempted vCPUs:")
	n := 0
	for sym, hits := range accelerated.CriticalSymbolHits {
		fmt.Printf("   %-36s %d\n", sym, hits)
		if n++; n >= 5 {
			break
		}
	}
}

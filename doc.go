// Package microsliced is a simulation-based reproduction of "Accelerating
// Critical OS Services in Virtualized Systems with Flexible Micro-sliced
// Cores" (Ahn, Park, Heo, Huh — EuroSys 2018).
//
// The library contains a deterministic discrete-event model of a
// consolidated virtualized host — a Xen-credit1-style hypervisor with
// cpupools, PLE, boosting and pending-interrupt relay; a guest Linux kernel
// model with qspinlocks, TLB-shootdown IPIs, softIRQ networking and a
// synthetic System.map; a virtual NIC with iPerf-style traffic generators;
// and the paper's suite of workloads — plus the paper's contribution: a
// hypervisor-side detector that classifies preempted vCPUs from their
// instruction pointer against the guest's symbol table and migrates vCPUs
// caught in critical OS services onto a dynamically-sized pool of
// 0.1 ms-sliced cores.
//
// The root package is the stable facade: build a Scenario, Simulate it, and
// inspect the Results; or call Reproduce to regenerate any table or figure
// of the paper's evaluation. Power users can reach the building blocks
// through the commands in cmd/ and the runnable programs in examples/.
package microsliced

// Package vnet models the virtualized network path of the paper's I/O
// experiments: a virtual NIC with a bounded receive ring that raises
// physical IRQs into the hypervisor, plus iPerf-like traffic generators —
// a paced UDP stream (RFC 1889 jitter, goodput, loss) and a windowed
// TCP-like stream whose sender is clocked by application-level
// consumption. The delivery chain is exactly the paper's Figure 2:
// packet → pIRQ → hypervisor → vIRQ → guest hardirq → softIRQ → socket →
// user-thread wakeup.
package vnet

import (
	"fmt"

	"github.com/microslicedcore/microsliced/internal/guest"
	"github.com/microslicedcore/microsliced/internal/hv"
	"github.com/microslicedcore/microsliced/internal/metrics"
	"github.com/microslicedcore/microsliced/internal/obs"
	"github.com/microslicedcore/microsliced/internal/simtime"
)

// DefaultRingSize is the RX descriptor ring size (e1000 default 256).
const DefaultRingSize = 256

// NIC is a virtual network interface attached to one domain. It implements
// guest.NetDevice.
type NIC struct {
	h    *hv.Hypervisor
	dom  *hv.Domain
	ring []guest.Packet
	cap  int

	irqRaised bool // NAPI-style coalescing: one IRQ until the ring drains

	RxPackets uint64
	RxDrops   uint64
	TxBytes   uint64
	IRQs      uint64
}

// NewNIC creates a NIC for dom with the given RX ring capacity
// (DefaultRingSize if 0).
func NewNIC(h *hv.Hypervisor, dom *hv.Domain, ringCap int) *NIC {
	if ringCap <= 0 {
		ringCap = DefaultRingSize
	}
	return &NIC{h: h, dom: dom, cap: ringCap}
}

// RingLen returns the current RX ring occupancy.
func (n *NIC) RingLen() int { return len(n.ring) }

// Rx delivers one packet from the wire into the RX ring, raising a
// physical IRQ unless one is already outstanding. A full ring drops the
// packet (tail drop), which is how sustained guest scheduling delays turn
// into UDP loss.
func (n *NIC) Rx(p guest.Packet) {
	if len(n.ring) >= n.cap {
		n.RxDrops++
		return
	}
	if o := n.h.Obs; o != nil {
		// The net_rx span opens at ring admission and rides the packet to
		// application-level consume (Figure 2's full delivery chain); the
		// guest cancels it if the packet is dropped for want of a listener.
		p.Span = o.Begin(obs.SpanNetRx, int16(n.dom.ID), int16(n.dom.IRQVCPU), p.Seq, n.h.Clock.Now())
	}
	n.ring = append(n.ring, p)
	n.RxPackets++
	if !n.irqRaised {
		n.irqRaised = true
		n.IRQs++
		n.h.InjectPIRQ(n.dom, hv.VecNet, 0)
	}
}

// Fetch implements guest.NetDevice: the softIRQ handler drains up to max
// packets. If packets remain, the IRQ is immediately re-raised (NAPI
// re-poll); otherwise the coalescing latch clears.
func (n *NIC) Fetch(max int) []guest.Packet {
	var out []guest.Packet
	if len(n.ring) <= max {
		out = n.ring
		n.ring = nil
	} else {
		out = append(out, n.ring[:max]...)
		n.ring = append([]guest.Packet(nil), n.ring[max:]...)
	}
	if o := n.h.Obs; o != nil {
		// The fetched packets leave the ring: their wait so far was ring
		// time; softirq processing starts now.
		now := n.h.Clock.Now()
		for _, p := range out {
			o.Stage(p.Span, obs.NetStageRing, now)
		}
	}
	if len(n.ring) > 0 {
		n.IRQs++
		n.h.InjectPIRQ(n.dom, hv.VecNet, 0)
	} else {
		n.irqRaised = false
	}
	return out
}

// Transmit implements guest.NetDevice (guest->world traffic; accounted,
// otherwise sunk).
func (n *NIC) Transmit(bytes int, now simtime.Time) {
	n.TxBytes += uint64(bytes)
}

var _ guest.NetDevice = (*NIC)(nil)

// ---------------------------------------------------------------------------
// UDP stream
// ---------------------------------------------------------------------------

// UDPFlow is an iPerf-style paced UDP sender plus the receiver-side
// accounting (goodput, loss, RFC 1889 jitter at application consume time).
type UDPFlow struct {
	nic   *NIC
	clock *simtime.Clock
	ID    int

	PktBytes int
	RateBps  int64 // offered load in bits per second

	seq       uint64
	sendEvent *simtime.Event
	stopped   bool
	Jitter    metrics.Jitter
	SentBytes uint64
	RxBytes   uint64
	RxPackets uint64
	firstRx   simtime.Time
	lastRx    simtime.Time
	haveRx    bool
}

// NewUDPFlow creates a UDP flow towards dom's NIC. Attach must be called
// with the receiving socket before Start.
func NewUDPFlow(clock *simtime.Clock, nic *NIC, id, pktBytes int, rateBps int64) (*UDPFlow, error) {
	if pktBytes <= 0 {
		return nil, fmt.Errorf("vnet: UDP flow %d: packet size %d must be positive", id, pktBytes)
	}
	if rateBps <= 0 {
		return nil, fmt.Errorf("vnet: UDP flow %d: rate %d bps must be positive", id, rateBps)
	}
	return &UDPFlow{nic: nic, clock: clock, ID: id, PktBytes: pktBytes, RateBps: rateBps}, nil
}

// Attach wires the flow's receiver accounting into the guest socket.
func (f *UDPFlow) Attach(sock *guest.Socket) {
	sock.OnAppConsume = func(p guest.Packet, now simtime.Time) {
		f.RxBytes += uint64(p.Bytes)
		f.RxPackets++
		f.Jitter.ObserveTransit(int64(now - p.SentAt))
		if !f.haveRx {
			f.haveRx = true
			f.firstRx = now
		}
		f.lastRx = now
	}
}

// interval returns the pacing gap between packets.
func (f *UDPFlow) interval() simtime.Duration {
	return simtime.Duration(int64(f.PktBytes) * 8 * int64(simtime.Second) / f.RateBps)
}

// Start begins paced transmission until Stop (or forever).
func (f *UDPFlow) Start() {
	f.sendOne()
}

func (f *UDPFlow) sendOne() {
	if f.stopped {
		return
	}
	f.seq++
	f.SentBytes += uint64(f.PktBytes)
	f.nic.Rx(guest.Packet{Seq: f.seq, Flow: f.ID, Bytes: f.PktBytes, SentAt: f.clock.Now()})
	f.sendEvent = f.clock.After(f.interval(), f.sendOne)
}

// Stop halts the sender.
func (f *UDPFlow) Stop() {
	f.stopped = true
	if f.sendEvent != nil {
		f.sendEvent.Cancel()
		f.sendEvent = nil
	}
}

// GoodputBps returns the application-level receive rate over the window
// observed between the first and last consumed packet.
func (f *UDPFlow) GoodputBps() float64 {
	if !f.haveRx || f.lastRx <= f.firstRx {
		return 0
	}
	return float64(f.RxBytes*8) / (f.lastRx - f.firstRx).Seconds()
}

// LossRate returns the fraction of offered packets not consumed.
func (f *UDPFlow) LossRate() float64 {
	if f.seq == 0 {
		return 0
	}
	return 1 - float64(f.RxPackets)/float64(f.seq)
}

// ---------------------------------------------------------------------------
// TCP-like stream
// ---------------------------------------------------------------------------

// TCPFlow is a windowed stream: at most Window segments are in flight, and
// a new segment is released only when the application consumes one
// (ack-clocked). Sends are additionally paced to the link rate. Guest
// scheduling delays therefore throttle the achieved bandwidth exactly as
// they throttle a real TCP connection's ack clock.
type TCPFlow struct {
	nic   *NIC
	clock *simtime.Clock
	ID    int

	PktBytes  int
	Window    int
	LinkBps   int64
	WireDelay simtime.Duration

	seq      uint64
	inflight int
	nextTx   simtime.Time
	stopped  bool
	txQueued bool

	RxBytes   uint64
	RxPackets uint64
	firstRx   simtime.Time
	lastRx    simtime.Time
	haveRx    bool
	Jitter    metrics.Jitter
}

// NewTCPFlow creates a TCP-like flow towards dom's NIC.
func NewTCPFlow(clock *simtime.Clock, nic *NIC, id, pktBytes, window int, linkBps int64, wireDelay simtime.Duration) (*TCPFlow, error) {
	if pktBytes <= 0 {
		return nil, fmt.Errorf("vnet: TCP flow %d: packet size %d must be positive", id, pktBytes)
	}
	if window <= 0 {
		return nil, fmt.Errorf("vnet: TCP flow %d: window %d must be positive", id, window)
	}
	if linkBps <= 0 {
		return nil, fmt.Errorf("vnet: TCP flow %d: link rate %d bps must be positive", id, linkBps)
	}
	return &TCPFlow{
		nic: nic, clock: clock, ID: id,
		PktBytes: pktBytes, Window: window, LinkBps: linkBps, WireDelay: wireDelay,
	}, nil
}

// Attach wires receiver accounting and the ack clock into the guest socket.
func (f *TCPFlow) Attach(sock *guest.Socket) {
	sock.OnAppConsume = func(p guest.Packet, now simtime.Time) {
		f.RxBytes += uint64(p.Bytes)
		f.RxPackets++
		f.Jitter.ObserveTransit(int64(now - p.SentAt))
		if !f.haveRx {
			f.haveRx = true
			f.firstRx = now
		}
		f.lastRx = now
		if f.inflight > 0 {
			f.inflight--
		}
		f.pump()
	}
}

// Start opens the window.
func (f *TCPFlow) Start() { f.pump() }

// Stop halts the sender.
func (f *TCPFlow) Stop() { f.stopped = true }

// pump sends as long as the window and link pacing allow.
func (f *TCPFlow) pump() {
	if f.stopped || f.txQueued {
		return
	}
	if f.inflight >= f.Window {
		return
	}
	now := f.clock.Now()
	if f.nextTx > now {
		f.txQueued = true
		f.clock.At(f.nextTx, func() {
			f.txQueued = false
			f.pump()
		})
		return
	}
	f.inflight++
	f.seq++
	gap := simtime.Duration(int64(f.PktBytes) * 8 * int64(simtime.Second) / f.LinkBps)
	f.nextTx = now + gap
	sentAt := now
	seq := f.seq
	f.clock.After(f.WireDelay, func() {
		f.nic.Rx(guest.Packet{Seq: seq, Flow: f.ID, Bytes: f.PktBytes, SentAt: sentAt})
	})
	f.pump()
}

// GoodputBps returns the application-level receive rate.
func (f *TCPFlow) GoodputBps() float64 {
	if !f.haveRx || f.lastRx <= f.firstRx {
		return 0
	}
	return float64(f.RxBytes*8) / (f.lastRx - f.firstRx).Seconds()
}

func (f *TCPFlow) String() string {
	return fmt.Sprintf("tcp flow %d: %d segs, %.1f Mbps", f.ID, f.RxPackets, f.GoodputBps()/1e6)
}

package recovery_test

import (
	"reflect"
	"testing"

	"github.com/microslicedcore/microsliced/internal/core"
	"github.com/microslicedcore/microsliced/internal/experiment"
	"github.com/microslicedcore/microsliced/internal/fault"
	"github.com/microslicedcore/microsliced/internal/recovery"
	"github.com/microslicedcore/microsliced/internal/simtime"
)

// offCore is the vanilla scheduler (no micro pool) — starvation repair is
// scheduler-level, the mechanism is irrelevant here.
func offCore() core.Config {
	c := core.DefaultConfig()
	c.Mode = core.ModeOff
	return c
}

// TestInjectedStarvationDetectRepairConverge wedges a vCPU on purpose — a
// CPU-bound vCPU pinned to a pCPU the fault plan permanently unplugs is
// runnable forever but never selectable — and verifies the supervisor's
// detect→repair→converge contract: the starvation is detected, the pin is
// broken (RepairUnpin), the vCPU makes progress afterwards, and the MTTR is
// finite and inside the convergence window.
func TestInjectedStarvationDetectRepairConverge(t *testing.T) {
	// The quiesce point is deliberately early: the unplug lands inside
	// [20%, 50%] of the pre-quiesce window and the starve bound exceeds the
	// rest of it, so detection and repair necessarily happen after quiesce
	// and the MTTR clock registers them.
	const (
		pcpus   = 4
		dur     = 120 * simtime.Millisecond
		quiesce = 10 * simtime.Millisecond
	)
	fcfg := fault.Config{Seed: 3, PermanentOfflinePCPUs: 1, QuiesceAt: quiesce}
	// The plan is deterministic, so building it once up front tells us which
	// pCPU dies — the run inside the harness redraws the identical schedule.
	plan, err := fault.New(fcfg, pcpus, dur)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Hotplug) != 1 || !plan.Hotplug[0].Permanent {
		t.Fatalf("want one permanent hotplug event, got %+v", plan.Hotplug)
	}
	dead := plan.Hotplug[0].PCPU

	mk := func() experiment.Setup {
		return experiment.Setup{
			PCPUs: pcpus,
			VMs: []experiment.VMSpec{{
				Name: "hog", App: "lookbusy", VCPUs: 2, Seed: 7,
				Pins: []int{dead, -1},
			}},
			Core:     offCore(),
			Duration: dur,
			Faults:   &fcfg,
			Audit:    true,
			Recovery: &recovery.Config{
				Interval:    2 * simtime.Millisecond,
				StarveBound: 10 * simtime.Millisecond,
			},
		}
	}
	res, err := experiment.Run(mk())
	if err != nil {
		t.Fatal(err)
	}

	var detected, unpinned bool
	var lastRepair simtime.Time
	for _, e := range res.Repairs {
		switch e.Kind {
		case recovery.DetectStarve:
			detected = true
		case recovery.RepairUnpin:
			unpinned = true
		}
		if e.Kind.IsRepair() && e.Time > lastRepair {
			lastRepair = e.Time
		}
	}
	if !detected {
		t.Errorf("supervisor never detected the wedged vCPU (events: %v)", res.Repairs)
	}
	if !unpinned {
		t.Errorf("supervisor never broke the fatal pin (events: %v)", res.Repairs)
	}
	if res.RepairCount == 0 {
		t.Error("RepairCount is zero on a run that needed repairs")
	}
	// The wedged vCPU must have run after the repair: its total execution
	// time has to exceed what it could have accrued before the unplug.
	if got := res.VMs[0].VCPURan[0]; got <= simtime.Duration(plan.Hotplug[0].Off) {
		t.Errorf("wedged vCPU ran %v, want more than the pre-unplug window %v", got, plan.Hotplug[0].Off)
	}
	if res.MTTR <= 0 || res.MTTR > dur-quiesce {
		t.Errorf("MTTR %v outside (0, %v]", res.MTTR, dur-quiesce)
	}
	// Post-repair steady state: no auditor violations after convergence.
	for _, v := range res.Violations {
		if v.Time >= simtime.Time(quiesce)+simtime.Time(res.MTTR) {
			t.Errorf("invariant violation after convergence: %v", v)
		}
	}

	// Repairs are part of the determinism contract: an identical rerun must
	// reproduce the identical repair log, bit for bit.
	res2, err := experiment.Run(mk())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, res2) {
		t.Error("identical recovery runs produced different results")
	}
}

// TestLostIPIRedrive drives IPI loss hard — high drop probability with the
// LoseIPIs escalation — and verifies the supervisor re-drives every ledger
// entry: at end of run the lost-IPI ledger is drained.
func TestLostIPIRedrive(t *testing.T) {
	fcfg := fault.Config{
		Seed: 11, IPIDropProb: 0.6, LoseIPIs: true,
		QuiesceAt: 40 * simtime.Millisecond,
	}
	s := experiment.Setup{
		PCPUs: 4,
		VMs: []experiment.VMSpec{
			{Name: "a", App: "exim", VCPUs: 2, Seed: 5},
			{Name: "b", App: "dedup", VCPUs: 2, Seed: 6},
		},
		Core:     offCore(),
		Duration: 80 * simtime.Millisecond,
		Faults:   &fcfg,
		Audit:    true,
		Recovery: &recovery.Config{Interval: 2 * simtime.Millisecond},
	}
	res, err := experiment.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.LostIPIs != 0 {
		t.Errorf("lost-IPI ledger not drained: %d entries left", res.LostIPIs)
	}
	var redrives int
	for _, e := range res.Repairs {
		if e.Kind == recovery.RepairIPIRedrive {
			redrives++
		}
	}
	if hvLost := res.HV["vipi.lost"]; hvLost > 0 && redrives == 0 {
		t.Errorf("%d IPIs were lost but the supervisor never re-drove any", hvLost)
	}
}

// TestPassiveSupervisorKeepsHealthyRunsIdentical is the metamorphic
// supervisor-off-vs-on relation in its directly-testable form: on a
// fault-free run, arming the supervisor must not change a single counter —
// its walk only adds passive clock events.
func TestPassiveSupervisorKeepsHealthyRunsIdentical(t *testing.T) {
	mk := func(sup bool) experiment.Setup {
		s := experiment.Setup{
			PCPUs: 4,
			VMs: []experiment.VMSpec{
				{Name: "a", App: "dedup", VCPUs: 2, Seed: 5},
				{Name: "b", App: "swaptions", VCPUs: 2, Seed: 6},
			},
			Core:     core.DefaultConfig(),
			Duration: 40 * simtime.Millisecond,
		}
		if sup {
			s.Recovery = &recovery.Config{}
		}
		return s
	}
	off, err := experiment.Run(mk(false))
	if err != nil {
		t.Fatal(err)
	}
	on, err := experiment.Run(mk(true))
	if err != nil {
		t.Fatal(err)
	}
	if on.RepairCount != 0 {
		t.Fatalf("supervisor repaired %d things on a healthy run: %v", on.RepairCount, on.Repairs)
	}
	// Strip the supervisor-only fields before the comparison; everything
	// the scheduler did must match exactly.
	onCmp := *on
	onCmp.Repairs = nil
	for k := range onCmp.HV {
		if len(k) > 9 && k[:9] == "recovery." {
			delete(onCmp.HV, k)
		}
	}
	if !reflect.DeepEqual(off, &onCmp) {
		t.Error("passive supervisor changed a healthy run's results")
	}
}

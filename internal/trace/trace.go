// Package trace is the simulator's xentrace analogue: a bounded in-memory
// ring of typed records emitted by the hypervisor and guest models. The
// experiment harness consumes it to decompose yield events by source
// (Figure 7 of the paper) and to debug scheduling decisions.
package trace

import (
	"fmt"

	"github.com/microslicedcore/microsliced/internal/simtime"
)

// Kind identifies the event class of a record.
type Kind uint8

// Record kinds, roughly mirroring the xentrace classes the paper uses.
const (
	KindNone       Kind = iota
	KindSchedule        // vCPU dispatched on a pCPU
	KindPreempt         // vCPU descheduled by slice expiry
	KindYield           // vCPU yielded (PLE or voluntary)
	KindBlock           // vCPU halted (idle)
	KindWake            // vCPU woken (event/IRQ)
	KindBoost           // vCPU boosted by the wake path
	KindVIPI            // virtual IPI relayed
	KindVIRQ            // virtual IRQ relayed
	KindPIRQ            // physical IRQ received by the hypervisor
	KindMigrate         // vCPU migrated between pools
	KindPoolResize      // micro-sliced pool grew or shrank
	KindDetect          // detector classified a critical service
	KindLock            // guest lock event (acquire/contend/release)
	KindTLB             // guest TLB shootdown event
	KindHotplug         // pCPU taken offline (arg0=0) or brought online (arg0=1)
	KindIPILost         // vIPI dropped past the retry limit and lost outright
	KindRepair          // recovery supervisor detection or repair action
	kindCount
)

var kindNames = [...]string{
	KindNone:       "none",
	KindSchedule:   "sched",
	KindPreempt:    "preempt",
	KindYield:      "yield",
	KindBlock:      "block",
	KindWake:       "wake",
	KindBoost:      "boost",
	KindVIPI:       "vipi",
	KindVIRQ:       "virq",
	KindPIRQ:       "pirq",
	KindMigrate:    "migrate",
	KindPoolResize: "poolresize",
	KindDetect:     "detect",
	KindLock:       "lock",
	KindTLB:        "tlb",
	KindHotplug:    "hotplug",
	KindIPILost:    "ipilost",
	KindRepair:     "repair",
}

// String returns the short name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Record is one trace entry. Arg0/Arg1 carry kind-specific payloads (e.g.
// the yield reason, the RIP, the target vCPU).
type Record struct {
	Time simtime.Time
	Kind Kind
	Dom  int16
	VCPU int16
	PCPU int16
	Arg0 uint64
	Arg1 uint64
}

// String renders the record for debugging.
func (r Record) String() string {
	return fmt.Sprintf("%v %-9s d%dv%d p%d a0=%#x a1=%#x",
		r.Time, r.Kind, r.Dom, r.VCPU, r.PCPU, r.Arg0, r.Arg1)
}

// Buffer is a fixed-capacity ring of records. When full, the oldest records
// are overwritten (like a real trace ring). Per-kind counters are exact over
// the whole run regardless of ring wrap.
type Buffer struct {
	recs    []Record
	next    int
	wrapped bool
	enabled bool
	counts  [kindCount]uint64
}

// NewBuffer returns an enabled ring holding up to capacity records.
// Capacity 0 disables record storage but keeps counters.
func NewBuffer(capacity int) *Buffer {
	b := &Buffer{enabled: true}
	if capacity > 0 {
		b.recs = make([]Record, capacity)
	}
	return b
}

// SetEnabled toggles recording (counters keep counting regardless; disabling
// only stops ring writes, which is what xentrace's enable bit does for its
// consumers in our usage).
func (b *Buffer) SetEnabled(on bool) { b.enabled = on }

// Emit appends one record.
func (b *Buffer) Emit(r Record) {
	if int(r.Kind) < len(b.counts) {
		b.counts[r.Kind]++
	}
	if !b.enabled || len(b.recs) == 0 {
		return
	}
	b.recs[b.next] = r
	b.next++
	if b.next == len(b.recs) {
		b.next = 0
		b.wrapped = true
	}
}

// Count returns the exact number of records emitted with the given kind.
func (b *Buffer) Count(k Kind) uint64 {
	if int(k) >= len(b.counts) {
		return 0
	}
	return b.counts[k]
}

// Len returns the number of records currently held in the ring.
func (b *Buffer) Len() int {
	if b.wrapped {
		return len(b.recs)
	}
	return b.next
}

// Records returns the held records oldest-first.
func (b *Buffer) Records() []Record {
	if !b.wrapped {
		out := make([]Record, b.next)
		copy(out, b.recs[:b.next])
		return out
	}
	out := make([]Record, 0, len(b.recs))
	out = append(out, b.recs[b.next:]...)
	out = append(out, b.recs[:b.next]...)
	return out
}

// Filter returns held records matching pred, oldest-first.
func (b *Buffer) Filter(pred func(Record) bool) []Record {
	var out []Record
	for _, r := range b.Records() {
		if pred(r) {
			out = append(out, r)
		}
	}
	return out
}

// ResetCounts zeroes the per-kind counters (ring contents are kept).
func (b *Buffer) ResetCounts() {
	for i := range b.counts {
		b.counts[i] = 0
	}
}

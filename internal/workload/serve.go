package workload

import (
	"fmt"

	"github.com/microslicedcore/microsliced/internal/guest"
	"github.com/microslicedcore/microsliced/internal/rng"
	"github.com/microslicedcore/microsliced/internal/simtime"
)

// RequestSink receives request lifecycle callbacks from the server pool;
// implemented by vnet.RequestFlow. MarkService stamps the service→reply
// boundary when the reply op is dispatched; Complete records the reply's
// transmission.
type RequestSink interface {
	MarkService(p guest.Packet, now simtime.Time)
	Complete(p guest.Packet, now simtime.Time)
}

// ServeProfile is the per-request work a server thread performs between
// consuming a request and transmitting its reply — the knobs of the
// RPC-style serving workload.
type ServeProfile struct {
	ServiceMean simtime.Duration // mean user-level service time (exponential)
	LockProb    float64          // probability the request takes the shared dcache lock
	LockHold    simtime.Duration // mean critical-section hold
	SyscallProb float64          // probability of an extra kernel read leg
	SyscallCost simtime.Duration // mean syscall cost
	ReplyBytes  int              // reply payload handed to Transmit
	ReplyCost   simtime.Duration // kernel transmit-path cost
}

// DefaultServeProfile is a short-request RPC profile: tens of microseconds
// of work per request, occasionally contending a kernel lock — small
// enough that micro-slices cover whole requests.
func DefaultServeProfile() ServeProfile {
	return ServeProfile{
		ServiceMean: 20 * us,
		LockProb:    0.2,
		LockHold:    2 * us,
		SyscallProb: 0.3,
		SyscallCost: 2 * us,
		ReplyBytes:  512,
		ReplyCost:   2 * us,
	}
}

func (p ServeProfile) validate() error {
	if p.ServiceMean <= 0 {
		return fmt.Errorf("workload: serve profile: service mean %v must be positive", p.ServiceMean)
	}
	if p.LockProb < 0 || p.LockProb > 1 || p.SyscallProb < 0 || p.SyscallProb > 1 {
		return fmt.Errorf("workload: serve profile: probabilities must be in [0,1]")
	}
	if p.ReplyBytes <= 0 {
		return fmt.Errorf("workload: serve profile: reply size %d must be positive", p.ReplyBytes)
	}
	return nil
}

// ServerPool is a deployed request-serving pool: one server thread per
// vCPU, each receiving from its own socket (flow ID == vCPU index,
// RSS-style steering — the engine's sockets are single-waiter).
type ServerPool struct {
	Sockets []*guest.Socket
	progs   []*serveProg
}

// InService counts servers currently holding a consumed-but-unreplied
// request — the last residency term of the request conservation law.
func (sp *ServerPool) InService() int {
	n := 0
	for _, p := range sp.progs {
		if p.busy {
			n++
		}
	}
	return n
}

// RequestServer deploys the serving pool into a's kernel: a socket and a
// server thread per vCPU. Each request runs the profile's service ops and
// replies with an OpSend whose completion reports to sink at the exact
// transmit instant. Each completed request counts one work unit.
func RequestServer(a *App, sink RequestSink, prof ServeProfile, seed uint64) (*ServerPool, error) {
	if err := prof.validate(); err != nil {
		return nil, err
	}
	k := a.Kernel
	r := rng.New(seed)
	var lock *guest.SpinLock
	if prof.LockProb > 0 {
		lock = k.Lock("svc-dcache", "Dentry", "__d_lookup")
	}
	sp := &ServerPool{
		Sockets: make([]*guest.Socket, len(k.VCPUs)),
		progs:   make([]*serveProg, len(k.VCPUs)),
	}
	for i := range k.VCPUs {
		sock := k.NewSocket(i)
		p := &serveProg{
			app:  a,
			sink: sink,
			sock: sock,
			r:    r.Fork(uint64(i)),
			prof: prof,
			lock: lock,
		}
		p.doneFn = p.replyDone
		sock.OnAppConsume = p.consume
		k.NewThread(i, fmt.Sprintf("server-%d", i), p)
		sp.Sockets[i] = sock
		sp.progs[i] = p
	}
	return sp, nil
}

// serveProg is one server thread's program: recv → service ops → reply.
type serveProg struct {
	app  *App
	sink RequestSink
	sock *guest.Socket
	r    *rng.Source
	prof ServeProfile
	lock *guest.SpinLock

	cur    guest.Packet
	busy   bool
	q      []guest.Op // service ops of the current request (reused)
	qi     int
	doneFn func(now simtime.Time) // pre-bound replyDone
}

// consume is the socket's OnAppConsume: the engine hands over the request
// the just-completed OpRecv consumed.
func (p *serveProg) consume(pkt guest.Packet, now simtime.Time) {
	p.busy = true
	p.cur = pkt
	p.buildService()
}

// buildService draws the current request's service ops from the profile.
func (p *serveProg) buildService() {
	q := p.q[:0]
	q = append(q, guest.Op{Kind: guest.OpCompute, Dur: exp(p.r, p.prof.ServiceMean)})
	if p.lock != nil && p.r.Bool(p.prof.LockProb) {
		q = append(q, guest.Op{Kind: guest.OpLock, Lock: p.lock, Dur: exp(p.r, p.prof.LockHold)})
	}
	if p.prof.SyscallProb > 0 && p.r.Bool(p.prof.SyscallProb) {
		q = append(q, guest.Op{Kind: guest.OpKernel, Fn: "vfs_read", Dur: exp(p.r, p.prof.SyscallCost)})
	}
	p.q, p.qi = q, 0
}

// Next implements guest.Program. Because the engine resolves guest-slice
// rotation before calling Next, now is the exact dispatch instant of the
// returned op — so staging the service→reply boundary here is exact.
func (p *serveProg) Next(now simtime.Time) guest.Op {
	if !p.busy {
		return guest.Op{Kind: guest.OpRecv, Sock: p.sock}
	}
	if p.qi < len(p.q) {
		op := p.q[p.qi]
		p.qi++
		return op
	}
	p.sink.MarkService(p.cur, now)
	return guest.Op{Kind: guest.OpSend, Bytes: p.prof.ReplyBytes, Dur: p.prof.ReplyCost, Done: p.doneFn}
}

// replyDone fires at the reply OpSend's completion — the transmit instant.
func (p *serveProg) replyDone(now simtime.Time) {
	p.sink.Complete(p.cur, now)
	p.app.units++
	p.busy = false
}

package core

import (
	"fmt"
	"testing"

	"github.com/microslicedcore/microsliced/internal/guest"
	"github.com/microslicedcore/microsliced/internal/hv"
	"github.com/microslicedcore/microsliced/internal/ksym"
	"github.com/microslicedcore/microsliced/internal/simtime"
)

type loopProg struct{ op guest.Op }

func (p *loopProg) Next(now simtime.Time) guest.Op { return p.op }

// lockProg alternates a user-compute burst with a short critical section —
// the gmake/exim kernel-interaction shape. The lock is shared between two
// threads so contention is real but the lock is not the saturation point;
// throughput losses then come from holder/waiter preemption, not queueing.
type lockProg struct {
	l     *guest.SpinLock
	burst simtime.Duration
	i     int
}

func (p *lockProg) Next(now simtime.Time) guest.Op {
	p.i++
	if p.i%2 == 1 {
		return guest.Op{Kind: guest.OpCompute, Dur: p.burst}
	}
	return guest.Op{Kind: guest.OpLock, Lock: p.l, Dur: 2 * simtime.Microsecond}
}

// lockScenario builds the paper's LHP shape: a lock-intensive VM co-running
// with a CPU-hog VM at 2:1 overcommit. Hogs start staggered so scheduling
// phases drift.
func lockScenario(pcpus, vcpus int) (*simtime.Clock, *hv.Hypervisor, *guest.Kernel, *guest.SpinLock) {
	clock := simtime.NewClock()
	cfg := hv.DefaultConfig()
	cfg.PCPUs = pcpus
	h := hv.New(clock, cfg)
	k := guest.NewKernel(h, "locky", vcpus, ksym.Generate(1), guest.DefaultParams())
	hog := guest.NewKernel(h, "hog", vcpus, ksym.Generate(2), guest.DefaultParams())
	var locks []*guest.SpinLock
	nlocks := (vcpus + 3) / 4
	for i := 0; i < nlocks; i++ {
		locks = append(locks, k.Lock(fmt.Sprintf("zone%d", i), "Page allocator", "get_page_from_freelist"))
	}
	for i := 0; i < vcpus; i++ {
		k.NewThread(i, "locker", &lockProg{
			l:     locks[i%nlocks],
			burst: simtime.Duration(10+i) * simtime.Microsecond,
		})
		hog.NewThread(i, "hog", &hogProg{burst: simtime.Duration(4+i) * simtime.Millisecond})
	}
	for i, vc := range hog.VCPUs {
		hvv := vc.HV()
		clock.At(simtime.Time(1+7*i)*simtime.Millisecond, func() { h.Wake(hvv, false) })
	}
	return clock, h, k, locks[0]
}

func startAllKernels(h *hv.Hypervisor, ks ...*guest.Kernel) {
	h.Start()
	for _, k := range ks {
		k.StartAll()
	}
}

func runLockScenario(t *testing.T, cfg Config, dur simtime.Duration) (uint64, *Controller, *hv.Hypervisor) {
	t.Helper()
	clock, h, k, _ := lockScenario(12, 12)
	c, err := Attach(h, cfg)
	if err != nil {
		t.Fatal(err)
	}
	h.Start()
	c.Start()
	k.StartAll() // hog vCPUs wake on their staggered timers
	clock.RunUntil(dur)
	var ops uint64
	for _, th := range k.Threads() {
		ops += th.OpsDone
	}
	return ops, c, h
}

func TestAttachRequiresSymbolMap(t *testing.T) {
	clock := simtime.NewClock()
	h := hv.New(clock, hv.DefaultConfig())
	h.NewDomain("bare", nil)
	if _, err := Attach(h, DefaultConfig()); err == nil {
		t.Fatal("Attach accepted a domain without System.map")
	}
}

func TestAttachParsesGarbageSymbolMap(t *testing.T) {
	clock := simtime.NewClock()
	h := hv.New(clock, hv.DefaultConfig())
	h.NewDomain("bad", []byte("not a symbol table"))
	if _, err := Attach(h, DefaultConfig()); err == nil {
		t.Fatal("Attach accepted a garbage System.map")
	}
}

func TestModeOffInstallsNoHooks(t *testing.T) {
	clock := simtime.NewClock()
	h := hv.New(clock, hv.DefaultConfig())
	cfg := DefaultConfig()
	cfg.Mode = ModeOff
	if _, err := Attach(h, cfg); err != nil {
		t.Fatal(err)
	}
	if h.Hooks.OnYield != nil || h.Hooks.OnVIRQRelay != nil || h.Hooks.OnVIPIRelay != nil {
		t.Fatal("ModeOff installed hooks")
	}
}

func TestStaticModeSizesPool(t *testing.T) {
	clock := simtime.NewClock()
	cfg := hv.DefaultConfig()
	cfg.PCPUs = 4
	h := hv.New(clock, cfg)
	c, err := Attach(h, StaticConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	h.Start()
	c.Start()
	if c.MicroCount() != 2 {
		t.Fatalf("micro count %d, want 2", c.MicroCount())
	}
}

func TestLockHolderAcceleration(t *testing.T) {
	// Baseline (no mechanism) vs one static micro core on the LHP-heavy
	// scenario: throughput (lock acquisitions) must improve markedly.
	off := StaticConfig(0)
	off.Mode = ModeOff
	base, _, hBase := runLockScenario(t, off, 2*simtime.Second)
	accel, c, hAccel := runLockScenario(t, StaticConfig(1), 2*simtime.Second)
	if c.Counters.Value("migrate.ok") == 0 {
		t.Fatal("no successful migrations")
	}
	if accel <= base {
		t.Fatalf("acceleration did not help: baseline %d vs accelerated %d locker ops", base, accel)
	}
	if hAccel.Counters.Value("yield.ple")*3 >= hBase.Counters.Value("yield.ple") {
		t.Fatalf("PLE yields did not drop: %d -> %d",
			hBase.Counters.Value("yield.ple"), hAccel.Counters.Value("yield.ple"))
	}
}

func TestSymbolHitsRecorded(t *testing.T) {
	_, c, _ := runLockScenario(t, StaticConfig(1), simtime.Second)
	if len(c.SymbolHits) == 0 {
		t.Fatal("no symbol hits recorded")
	}
	found := false
	for name := range c.SymbolHits {
		if name == "get_page_from_freelist" {
			found = true
		}
		if ksym.Classify(name) == ksym.ClassNone {
			t.Fatalf("non-critical symbol %q recorded", name)
		}
	}
	if !found {
		t.Fatalf("critical-section symbol missing from hits: %v", c.SymbolHits)
	}
}

// tlbScenario: a dedup-like VM whose threads flush TLBs constantly,
// co-running with a hog VM. Hog threads compute in long bursts with short
// sleeps and start staggered, so the two VMs' scheduling phases drift the
// way real co-runners do instead of ticking in lockstep.
func tlbScenario(pcpus, vcpus int) (*simtime.Clock, *hv.Hypervisor, *guest.Kernel) {
	clock := simtime.NewClock()
	cfg := hv.DefaultConfig()
	cfg.PCPUs = pcpus
	h := hv.New(clock, cfg)
	k := guest.NewKernel(h, "dedup", vcpus, ksym.Generate(1), guest.DefaultParams())
	hog := guest.NewKernel(h, "hog", vcpus, ksym.Generate(2), guest.DefaultParams())
	for i := 0; i < vcpus; i++ {
		k.NewThread(i, "flusher", &tlbProg{burst: simtime.Duration(150+13*i) * simtime.Microsecond})
		hog.NewThread(i, "hog", &hogProg{burst: simtime.Duration(4+i) * simtime.Millisecond})
	}
	for i, vc := range hog.VCPUs {
		hvv := vc.HV()
		clock.At(simtime.Time(1+7*i)*simtime.Millisecond, func() { h.Wake(hvv, false) })
	}
	return clock, h, k
}

// tlbProg alternates compute and TLB flushes (mmap/munmap shape).
type tlbProg struct {
	i     int
	burst simtime.Duration
}

func (p *tlbProg) Next(now simtime.Time) guest.Op {
	p.i++
	if p.i%2 == 1 {
		return guest.Op{Kind: guest.OpCompute, Dur: p.burst}
	}
	return guest.Op{Kind: guest.OpTLBFlush}
}

// hogProg computes in long bursts with a short sleep in between, keeping
// co-runner scheduling phases drifting.
type hogProg struct {
	i     int
	burst simtime.Duration
}

func (p *hogProg) Next(now simtime.Time) guest.Op {
	p.i++
	if p.i%8 == 0 {
		return guest.Op{Kind: guest.OpSleep, Dur: 200 * simtime.Microsecond}
	}
	return guest.Op{Kind: guest.OpCompute, Dur: p.burst}
}

func runTLB(t *testing.T, cfg Config, dur simtime.Duration) (float64, uint64, *Controller) {
	t.Helper()
	clock, h, k := tlbScenario(12, 12)
	c, err := Attach(h, cfg)
	if err != nil {
		t.Fatal(err)
	}
	h.Start()
	c.Start()
	k.StartAll() // hog vCPUs wake on their staggered timers
	clock.RunUntil(dur)
	return k.TLBStat.Mean(), k.TLBStat.Count(), c
}

func TestTLBShootdownAcceleration(t *testing.T) {
	off := DefaultConfig()
	off.Mode = ModeOff
	baseMean, baseCount, _ := runTLB(t, off, 2*simtime.Second)
	accMean, accCount, c := runTLB(t, StaticConfig(3), 2*simtime.Second)
	if c.Counters.Value("migrate.ok") == 0 {
		t.Fatal("no migrations for TLB case")
	}
	if accMean >= baseMean {
		t.Fatalf("TLB latency did not improve: %.0fns -> %.0fns", baseMean, accMean)
	}
	if accCount <= baseCount {
		t.Fatalf("shootdown throughput did not improve: %d -> %d", baseCount, accCount)
	}
}

func TestAdaptiveSettlesOnSingleCoreForPLE(t *testing.T) {
	clock, h, _, l := lockScenario(12, 12)
	cfg := DefaultConfig()
	c, err := Attach(h, cfg)
	if err != nil {
		t.Fatal(err)
	}
	h.Start()
	c.Start()
	for _, vc := range h.VCPUs() {
		h.Wake(vc, false)
	}
	clock.RunUntil(2 * simtime.Second)
	if c.Counters.Value("adaptive.single") == 0 {
		t.Fatalf("PLE-dominant load never took the single-core fast path: %s", c.Counters)
	}
	if l.Acquisitions == 0 {
		t.Fatal("no lock progress")
	}
	// Time-averaged pool size should be around 1; profiling phases and
	// epochs that genuinely saw no urgent events dip to 0.
	avg := c.MicroGauge.TimeAverage(int64(clock.Now()))
	if avg < 0.3 || avg > 1.7 {
		t.Fatalf("average micro cores %.2f, want ~1", avg)
	}
}

func TestAdaptiveStaysAtZeroWhenIdle(t *testing.T) {
	clock := simtime.NewClock()
	cfg := hv.DefaultConfig()
	cfg.PCPUs = 4
	h := hv.New(clock, cfg)
	k := guest.NewKernel(h, "calm", 2, ksym.Generate(1), guest.DefaultParams())
	for i := 0; i < 2; i++ {
		k.NewThread(i, "user", &loopProg{op: guest.Op{
			Kind: guest.OpCompute, Dur: simtime.Millisecond,
		}})
	}
	c, err := Attach(h, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	startAllKernels(h, k)
	c.Start()
	clock.RunUntil(3 * simtime.Second)
	if c.MicroCount() != 0 {
		t.Fatalf("idle system has %d micro cores", c.MicroCount())
	}
	if c.Counters.Value("adaptive.idle") == 0 {
		t.Fatal("idle path never taken")
	}
}

func TestAdaptiveIPISearchPicksBest(t *testing.T) {
	clock, h, k := tlbScenario(6, 6)
	cfg := DefaultConfig()
	cfg.MaxMicroCores = 3
	c, err := Attach(h, cfg)
	if err != nil {
		t.Fatal(err)
	}
	h.Start()
	c.Start()
	k.StartAll()
	clock.RunUntil(3 * simtime.Second)
	if c.Counters.Value("adaptive.best_pick") == 0 {
		t.Fatalf("IPI-dominant load never completed the search: %s", c.Counters)
	}
	if c.MicroCount() < 1 || c.MicroCount() > 3 {
		t.Fatalf("settled at %d micro cores", c.MicroCount())
	}
}

func TestPreciseSelectionReducesMigrations(t *testing.T) {
	run := func(precise bool) uint64 {
		clock, h, _, _ := lockScenario(12, 12)
		cfg := StaticConfig(1)
		cfg.PreciseSelection = precise
		c, err := Attach(h, cfg)
		if err != nil {
			t.Fatal(err)
		}
		h.Start()
		c.Start()
		for _, vc := range h.VCPUs() {
			h.Wake(vc, false)
		}
		clock.RunUntil(simtime.Second)
		return c.Counters.Value("migrate.attempt")
	}
	precise := run(true)
	imprecise := run(false)
	if precise == 0 {
		t.Fatal("precise mode made no attempts")
	}
	if imprecise <= precise {
		t.Fatalf("imprecise selection should attempt more migrations: %d vs %d", precise, imprecise)
	}
}

func TestStartTwicePanics(t *testing.T) {
	clock := simtime.NewClock()
	h := hv.New(clock, hv.DefaultConfig())
	c, err := Attach(h, StaticConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	h.Start()
	c.Start()
	defer func() {
		if recover() == nil {
			t.Fatal("second Start did not panic")
		}
	}()
	c.Start()
}

func TestModeString(t *testing.T) {
	for _, m := range []Mode{ModeOff, ModeStatic, ModeDynamic, Mode(9)} {
		if m.String() == "" {
			t.Fatal("empty mode string")
		}
	}
}

package trace

import (
	"fmt"
	"io"
	"sort"

	"github.com/microslicedcore/microsliced/internal/metrics"
	"github.com/microslicedcore/microsliced/internal/simtime"
)

// VCPUKey identifies a vCPU across the trace.
type VCPUKey struct {
	Dom  int16
	VCPU int16
}

func (k VCPUKey) String() string { return fmt.Sprintf("d%dv%d", k.Dom, k.VCPU) }

// VCPUSched is one vCPU's scheduling behaviour reconstructed from the
// trace (xentrace's sched-analysis view).
type VCPUSched struct {
	Dispatches uint64
	Preempts   uint64
	Yields     uint64
	Blocks     uint64
	Wakes      uint64
	Migrations uint64

	// RunTime accumulated while dispatched (within the trace window).
	RunTime simtime.Duration
	// WaitHist is the runnable-to-dispatch latency distribution — the
	// per-vCPU face of the virtual-time-discontinuity problem.
	WaitHist *metrics.Histogram
}

// Analysis is the reconstructed scheduling picture of a trace window.
type Analysis struct {
	PerVCPU map[VCPUKey]*VCPUSched
	From    simtime.Time
	To      simtime.Time
}

// Analyze reconstructs per-vCPU scheduling statistics from records
// (oldest-first, as returned by Buffer.Records). Records outside the
// scheduling classes are ignored.
func Analyze(recs []Record) *Analysis {
	a := &Analysis{PerVCPU: make(map[VCPUKey]*VCPUSched)}
	if len(recs) == 0 {
		return a
	}
	a.From = recs[0].Time
	a.To = recs[len(recs)-1].Time

	runningSince := make(map[VCPUKey]simtime.Time)
	runnableSince := make(map[VCPUKey]simtime.Time)
	get := func(k VCPUKey) *VCPUSched {
		s := a.PerVCPU[k]
		if s == nil {
			s = &VCPUSched{WaitHist: metrics.NewHistogram(8)}
			a.PerVCPU[k] = s
		}
		return s
	}
	endRun := func(k VCPUKey, at simtime.Time) {
		if start, ok := runningSince[k]; ok {
			get(k).RunTime += at - start
			delete(runningSince, k)
		}
	}
	for _, r := range recs {
		k := VCPUKey{r.Dom, r.VCPU}
		switch r.Kind {
		case KindSchedule:
			s := get(k)
			s.Dispatches++
			if since, ok := runnableSince[k]; ok {
				s.WaitHist.Observe(int64(r.Time - since))
				delete(runnableSince, k)
			}
			runningSince[k] = r.Time
		case KindPreempt:
			get(k).Preempts++
			endRun(k, r.Time)
			runnableSince[k] = r.Time
		case KindYield:
			get(k).Yields++
			endRun(k, r.Time)
			runnableSince[k] = r.Time
		case KindBlock:
			get(k).Blocks++
			endRun(k, r.Time)
			delete(runnableSince, k)
		case KindWake:
			get(k).Wakes++
			runnableSince[k] = r.Time
		case KindMigrate:
			get(k).Migrations++
		}
	}
	// Close still-running intervals at the window end.
	for k, start := range runningSince {
		get(k).RunTime += a.To - start
	}
	return a
}

// Keys returns the vCPUs seen, sorted by (dom, vcpu).
func (a *Analysis) Keys() []VCPUKey {
	keys := make([]VCPUKey, 0, len(a.PerVCPU))
	for k := range a.PerVCPU {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Dom != keys[j].Dom {
			return keys[i].Dom < keys[j].Dom
		}
		return keys[i].VCPU < keys[j].VCPU
	})
	return keys
}

// Window returns the trace window length.
func (a *Analysis) Window() simtime.Duration { return a.To - a.From }

// Render prints the per-vCPU table.
func (a *Analysis) Render(w io.Writer) {
	fmt.Fprintf(w, "scheduling analysis over %v (%d vCPUs)\n", a.Window(), len(a.PerVCPU))
	fmt.Fprintf(w, "%-8s %10s %9s %9s %8s %8s %8s %12s %12s %12s\n",
		"vcpu", "dispatches", "preempts", "yields", "blocks", "wakes", "migr",
		"run", "wait-p50", "wait-max")
	for _, k := range a.Keys() {
		s := a.PerVCPU[k]
		fmt.Fprintf(w, "%-8s %10d %9d %9d %8d %8d %8d %12v %12v %12v\n",
			k, s.Dispatches, s.Preempts, s.Yields, s.Blocks, s.Wakes, s.Migrations,
			s.RunTime, simtime.Time(s.WaitHist.Quantile(0.5)), simtime.Time(s.WaitHist.Max()))
	}
}

// YieldRIPs histograms the instruction pointers recorded at yield events,
// resolved through the supplied per-domain resolver (typically
// ksym.Table.NameOf) — the paper's Table-3 methodology applied to a raw
// trace.
func YieldRIPs(recs []Record, resolve func(dom int16, rip uint64) string) map[string]uint64 {
	out := make(map[string]uint64)
	for _, r := range recs {
		if r.Kind != KindYield {
			continue
		}
		out[resolve(r.Dom, r.Arg1)]++
	}
	return out
}

// Consolidation: a deep look at the lock-holder-preemption pathology the
// paper targets, using gmake against swaptions.
//
// The program compares the baseline credit scheduler, static micro pools
// of 1..3 cores, and the adaptive controller, printing per-configuration
// kernel-lock wait times (the paper's Table 4a view) and the yield
// decomposition (the Figure 7 view).
//
//	go run ./examples/consolidation
package main

import (
	"fmt"
	"log"
	"sort"

	microsliced "github.com/microslicedcore/microsliced"
)

func run(mode microsliced.Mode, cores int) *microsliced.Results {
	res, err := microsliced.Simulate(microsliced.Scenario{
		VMs:         []microsliced.VM{{App: "gmake"}, {App: "swaptions"}},
		Mode:        mode,
		StaticCores: cores,
		Seconds:     2,
	})
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	type cfg struct {
		label string
		mode  microsliced.Mode
		cores int
	}
	configs := []cfg{
		{"baseline", microsliced.Off, 0},
		{"static-1", microsliced.Static, 1},
		{"static-2", microsliced.Static, 2},
		{"static-3", microsliced.Static, 3},
		{"dynamic", microsliced.Dynamic, 0},
	}

	var base uint64
	fmt.Println("gmake + swaptions at 2:1 on 12 pCPUs, 2s simulated")
	fmt.Printf("%-10s %10s %8s %12s %12s %10s\n",
		"config", "gmake", "gain", "spin yields", "halt yields", "ucores")
	results := make(map[string]*microsliced.Results)
	for _, c := range configs {
		res := run(c.mode, c.cores)
		results[c.label] = res
		g := res.VM("gmake")
		if c.label == "baseline" {
			base = g.WorkUnits
		}
		fmt.Printf("%-10s %10d %7.2fx %12d %12d %10.2f\n",
			c.label, g.WorkUnits, float64(g.WorkUnits)/float64(base),
			g.YieldsSpinlock, g.YieldsHalt, res.MicroCoresAvg)
	}

	fmt.Println("\ncontended kernel-lock wait times (us, mean):")
	classes := []string{}
	for c := range results["baseline"].VM("gmake").LockWaitAvgUs {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	fmt.Printf("%-18s", "class")
	for _, c := range configs {
		fmt.Printf("%12s", c.label)
	}
	fmt.Println()
	for _, class := range classes {
		fmt.Printf("%-18s", class)
		for _, c := range configs {
			fmt.Printf("%12.2f", results[c.label].VM("gmake").LockWaitAvgUs[class])
		}
		fmt.Println()
	}
	fmt.Println("\nthe micro-sliced pool rescues preempted lock holders, collapsing")
	fmt.Println("the co-run wait times back toward their solo microsecond scale.")
}

package experiment

import (
	"fmt"
	"io"

	"github.com/microslicedcore/microsliced/internal/core"
	"github.com/microslicedcore/microsliced/internal/guest"
	"github.com/microslicedcore/microsliced/internal/hv"
	"github.com/microslicedcore/microsliced/internal/ksym"
	"github.com/microslicedcore/microsliced/internal/report"
	"github.com/microslicedcore/microsliced/internal/rng"
	"github.com/microslicedcore/microsliced/internal/simtime"
)

// ExtensionResult measures the paper's §4.4 future-work extension:
// accelerating *user-level* critical sections registered with the
// hypervisor through a per-process region table.
type ExtensionResult struct {
	BaselineOps    uint64 // vanilla scheduler
	KernelOnlyOps  uint64 // micro-sliced cores, kernel whitelist only
	WithUserCSOps  uint64 // micro-sliced cores + registered user regions
	UserDetections uint64
	KernelOnlyGain float64
	WithUserCSGain float64
}

// runUserCSApp builds an application whose contention is entirely in
// user-space spinlocks (a latency-critical game-server shape), co-run with
// a hog VM, under the given controller configuration.
func runUserCSApp(cc core.Config, register bool, dur simtime.Duration) (uint64, *core.Controller, error) {
	clock := simtime.NewClock()
	cfg := hv.DefaultConfig()
	h := hv.New(clock, cfg)
	k := guest.NewKernel(h, "app", DefaultVCPUs, ksym.Generate(1), guest.DefaultParams())
	hog := guest.NewKernel(h, "hog", DefaultVCPUs, ksym.Generate(2), guest.DefaultParams())
	r := rng.New(99)

	var locks []*guest.SpinLock
	for i := 0; i < 3; i++ {
		locks = append(locks, k.UserLock(fmt.Sprintf("world-shard-%d", i), "User"))
	}
	for i := 0; i < DefaultVCPUs; i++ {
		i := i
		tr := r.Fork(uint64(i))
		k.NewThread(i, fmt.Sprintf("game-%d", i), guest.ProgramFunc(func(now simtime.Time) guest.Op {
			if tr.Bool(0.5) {
				return guest.Op{Kind: guest.OpCompute, Dur: simtime.Duration(tr.ExpDur(int64(12 * simtime.Microsecond)))}
			}
			return guest.Op{Kind: guest.OpLock, Lock: locks[i%len(locks)], Dur: simtime.Duration(tr.ExpDur(int64(2 * simtime.Microsecond)))}
		}))
		hr := r.Fork(1000 + uint64(i))
		hog.NewThread(i, "hog", guest.ProgramFunc(func(now simtime.Time) guest.Op {
			if hr.Bool(0.12) {
				return guest.Op{Kind: guest.OpSleep, Dur: 200 * simtime.Microsecond}
			}
			return guest.Op{Kind: guest.OpCompute, Dur: simtime.Duration(4+i%8) * simtime.Millisecond}
		}))
	}
	ctrl, err := core.Attach(h, cc)
	if err != nil {
		return 0, nil, err
	}
	if register {
		ctrl.RegisterUserRegions(k.Dom.ID, k.UserRegions())
	}
	h.Start()
	ctrl.Start()
	k.StartAll()
	for i, vc := range hog.VCPUs {
		hvv := vc.HV()
		clock.At(simtime.Time(1+7*i)*simtime.Millisecond, func() { h.Wake(hvv, false) })
	}
	clock.RunUntil(dur)
	var ops uint64
	for _, th := range k.Threads() {
		ops += th.OpsDone
	}
	return ops, ctrl, nil
}

// ExtensionUserCS compares the baseline, the kernel-only mechanism, and
// the mechanism with the user-region table enabled, on a user-lock-bound
// application.
func ExtensionUserCS(dur simtime.Duration) (*ExtensionResult, error) {
	offCfg := core.DefaultConfig()
	offCfg.Mode = core.ModeOff
	uCfg := core.StaticConfig(1)
	uCfg.UserCS = true
	var base, kern, user uint64
	var ctrl *core.Controller
	err := parallelDo(3, func(i int) error {
		switch i {
		case 0:
			ops, _, err := runUserCSApp(offCfg, false, dur)
			base = ops
			return err
		case 1:
			ops, _, err := runUserCSApp(core.StaticConfig(1), false, dur)
			kern = ops
			return err
		default:
			ops, c, err := runUserCSApp(uCfg, true, dur)
			user, ctrl = ops, c
			return err
		}
	})
	if err != nil {
		return nil, err
	}
	var userHits uint64
	for name, n := range ctrl.SymbolHits {
		if len(name) > 5 && name[:5] == "user:" {
			userHits += n
		}
	}
	return &ExtensionResult{
		BaselineOps:    base,
		KernelOnlyOps:  kern,
		WithUserCSOps:  user,
		UserDetections: userHits,
		KernelOnlyGain: float64(kern) / float64(base),
		WithUserCSGain: float64(user) / float64(base),
	}, nil
}

// Render implements report.Renderer.
func (r *ExtensionResult) Render(w io.Writer) {
	t := report.Table{
		Title:   "Extension (paper 4.4): accelerating registered user-level critical sections",
		Columns: []string{"configuration", "app ops", "gain"},
	}
	t.AddRow("baseline", r.BaselineOps, 1.0)
	t.AddRow("usliced, kernel whitelist only", r.KernelOnlyOps, r.KernelOnlyGain)
	t.AddRow("usliced + registered user regions", r.WithUserCSOps, r.WithUserCSGain)
	t.Notes = append(t.Notes,
		fmt.Sprintf("user-region detections: %d", r.UserDetections))
	t.Notes = append(t.Notes,
		"the kernel whitelist cannot see user-space lock holders; registering the app's critical regions (the paper's proposed interface) recovers them")
	t.Render(w)
}

// Package obs is the simulator's observability layer: per-vCPU scheduling
// state accounting, span-based latency attribution, a Chrome-trace-event
// (Perfetto-loadable) timeline exporter, and a fault-triggered flight
// recorder.
//
// The layer is strictly passive — it never mutates scheduler state, so an
// instrumented run schedules the exact same event sequence as an
// uninstrumented one — and it is engineered for the same hot-path budget as
// internal/simtime: after a short warm-up every Transition/Begin/End call is
// allocation-free (fixed state matrices, a free-listed open-span table and
// pre-constructed metrics.Histograms), and a disabled observer costs one nil
// pointer check per hook site in internal/hv.
//
// Dependency direction: obs sits below hv (hv imports obs, never the
// reverse), importing only trace, metrics and simtime, so every layer of the
// simulator — hypervisor, guest, vnet, vdisk — can feed it.
package obs

import (
	"github.com/microslicedcore/microsliced/internal/metrics"
	"github.com/microslicedcore/microsliced/internal/simtime"
)

// Config selects what the observer records. The zero value is a fully
// functional in-memory configuration.
type Config struct {
	// SpanSubBuckets is the per-octave resolution of the span latency
	// histograms (default 8, the resolution used everywhere else).
	SpanSubBuckets int
	// FlightDepth bounds the trace-ring tail captured per flight dump
	// (default 64 records).
	FlightDepth int
	// MaxFlights caps the number of flight dumps retained (and written)
	// per run, so a violation storm cannot fill the disk (default 4).
	MaxFlights int
	// FlightDir, when non-empty, writes each flight dump as a
	// self-contained JSON file flight-<label>-<seq>.json under this
	// directory (created if missing). Empty keeps dumps in memory only.
	FlightDir string
	// Label tags flight-dump filenames and summaries (default "run").
	Label string
}

func (c Config) withDefaults() Config {
	if c.SpanSubBuckets <= 0 {
		c.SpanSubBuckets = 8
	}
	if c.FlightDepth <= 0 {
		c.FlightDepth = 64
	}
	if c.MaxFlights <= 0 {
		c.MaxFlights = 4
	}
	if c.Label == "" {
		c.Label = "run"
	}
	return c
}

// State is a vCPU scheduling state as the accountant sees it. It refines the
// hypervisor's three-state machine with the boosted sub-state of Runnable,
// because "waiting with BOOST" and "waiting at normal priority" are the two
// ends of the virtual-time-discontinuity spectrum the paper measures.
type State uint8

// Accounting states.
const (
	StateBlocked  State = iota // halted, waiting for an event
	StateRunnable              // on a runqueue at UNDER/OVER priority
	StateBoosted               // on a runqueue at BOOST priority
	StateRunning               // executing on a pCPU
	numStates
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateBlocked:
		return "blocked"
	case StateRunnable:
		return "runnable"
	case StateBoosted:
		return "boosted"
	case StateRunning:
		return "running"
	default:
		return "state(?)"
	}
}

// pool indices of the residency matrix.
const (
	poolNormal = 0
	poolMicro  = 1
)

// vcpuAcct is one vCPU's accounting record: a [pool][state] residency matrix
// plus the current (state, pool, since) triple and the open wake-span ref.
type vcpuAcct struct {
	dom, idx   int16
	registered bool
	state      State
	micro      bool
	since      simtime.Time
	res        [2][numStates]simtime.Duration
	wake       SpanRef
}

// pcpuAcct accumulates one pCPU's execution time and dispatch mix.
type pcpuAcct struct {
	busy       simtime.Duration
	dispatches uint64
	steals     uint64
}

// Observer is the per-run observability state. Create one with New, attach
// it with hv.Hypervisor.SetObserver, and read it out with Summary after the
// clock stops. All methods are single-goroutine, like the simulation itself.
type Observer struct {
	cfg Config

	vcpus []vcpuAcct
	pcpus []pcpuAcct

	spans spanTable
	hists [numSpanKinds]*metrics.Histogram

	// Causal attribution state: per-(kind,stage) latency histograms plus
	// exact int64 ledgers backing the stage conservation law
	// Σ stageTotal[k] == spanTotal[k] (see stage.go).
	stageHists [numSpanKinds][]*metrics.Histogram
	spanTotal  [numSpanKinds]int64
	stageTotal [numSpanKinds][maxStages]int64

	flights   []FlightDump
	flightSeq int
	flightErr error

	// repairTail, when set (SetRepairTail), supplies the recovery
	// supervisor's recent RepairEvents for flight dumps.
	repairTail func() []RepairRecord

	// decisionTail, when set (SetDecisionTail), supplies the adaptive
	// controller's retained decision trail for flight dumps.
	decisionTail func() []DecisionRecord
}

// New constructs an observer.
func New(cfg Config) *Observer {
	o := &Observer{cfg: cfg.withDefaults()}
	for k := range o.hists {
		o.hists[k] = metrics.NewHistogram(o.cfg.SpanSubBuckets)
		o.stageHists[k] = make([]*metrics.Histogram, len(spanStageNames[k]))
		for i := range o.stageHists[k] {
			o.stageHists[k][i] = metrics.NewHistogram(o.cfg.SpanSubBuckets)
		}
	}
	return o
}

// Config returns the effective (defaulted) configuration.
func (o *Observer) Config() Config { return o.cfg }

// EnsurePCPUs sizes the pCPU table (cold path, called at attach time).
func (o *Observer) EnsurePCPUs(n int) {
	for len(o.pcpus) < n {
		o.pcpus = append(o.pcpus, pcpuAcct{})
	}
}

// EnsureVCPU registers vCPU id (cold path, called once per vCPU at attach
// or creation time). Newly registered vCPUs start Blocked at time 0, which
// is exactly how hv.AddVCPU creates them.
func (o *Observer) EnsureVCPU(id int, dom, idx int16) {
	for len(o.vcpus) <= id {
		o.vcpus = append(o.vcpus, vcpuAcct{})
	}
	a := &o.vcpus[id]
	a.dom, a.idx, a.registered = dom, idx, true
}

// Transition moves vCPU id into st at virtual time now, crediting the time
// since the previous transition to the previous (pool, state) cell. While a
// wake→dispatch span is open, the same segment is credited to the wake
// stage the old (pool, state) maps to, so the dispatch that closes the span
// finds the whole wait already attributed. Allocation-free.
func (o *Observer) Transition(id int, st State, now simtime.Time) {
	if id >= len(o.vcpus) {
		return
	}
	a := &o.vcpus[id]
	pool := poolNormal
	if a.micro {
		pool = poolMicro
	}
	a.res[pool][a.state] += now - a.since
	if a.wake != 0 {
		o.Stage(a.wake, wakeStageFor(a.micro, a.state), now)
	}
	a.state = st
	a.since = now
}

// SetMicro records a pool-membership change at time now. Idempotent: calling
// with the current membership only flushes the running residency cell.
// Allocation-free.
func (o *Observer) SetMicro(id int, micro bool, now simtime.Time) {
	if id >= len(o.vcpus) {
		return
	}
	a := &o.vcpus[id]
	pool := poolNormal
	if a.micro {
		pool = poolMicro
	}
	a.res[pool][a.state] += now - a.since
	if a.wake != 0 {
		// Attribute the wait so far to the pool the vCPU is leaving; the
		// remainder of the wait accrues to the new pool's wake stage.
		o.Stage(a.wake, wakeStageFor(a.micro, a.state), now)
	}
	a.since = now
	a.micro = micro
}

// PCPURan credits d of execution time to pCPU p (called on deschedule, with
// the same delta hv adds to PCPU.busy). Allocation-free.
func (o *Observer) PCPURan(p int, d simtime.Duration) {
	if p < len(o.pcpus) {
		o.pcpus[p].busy += d
	}
}

// PCPUDispatched counts one dispatch on pCPU p; stolen marks work taken
// from a pool sibling's runqueue. Allocation-free.
func (o *Observer) PCPUDispatched(p int, stolen bool) {
	if p >= len(o.pcpus) {
		return
	}
	o.pcpus[p].dispatches++
	if stolen {
		o.pcpus[p].steals++
	}
}

// WakeBegin opens the wake→dispatch span of vCPU id (called from hv.Wake
// when a Blocked vCPU becomes Runnable). Allocation-free at steady state.
func (o *Observer) WakeBegin(id int, now simtime.Time) {
	if id >= len(o.vcpus) {
		return
	}
	a := &o.vcpus[id]
	if a.wake != 0 {
		// A wake raced an un-dispatched previous wake; keep the older span
		// (the wait started then) and drop the new edge.
		return
	}
	a.wake = o.Begin(SpanWakeDispatch, a.dom, a.idx, 0, now)
}

// WakeEnd closes vCPU id's wake→dispatch span, if one is open (called from
// hv dispatch). Dispatches of vCPUs that were preempted rather than woken
// are a no-op. Allocation-free.
func (o *Observer) WakeEnd(id int, now simtime.Time) {
	if id >= len(o.vcpus) {
		return
	}
	a := &o.vcpus[id]
	if a.wake != 0 {
		o.End(a.wake, now)
		a.wake = 0
	}
}

// VCPUResidency is one vCPU's virtual-time budget decomposition. Durations
// sum over both pools; the Micro* fields isolate the micro-pool share.
type VCPUResidency struct {
	Dom  int16 `json:"dom"`
	VCPU int16 `json:"vcpu"`

	Running  simtime.Duration `json:"running_ns"`
	Runnable simtime.Duration `json:"runnable_ns"` // waiting at UNDER/OVER
	Boosted  simtime.Duration `json:"boosted_ns"`  // waiting at BOOST
	Blocked  simtime.Duration `json:"blocked_ns"`

	MicroRunning simtime.Duration `json:"micro_running_ns"`
	MicroTotal   simtime.Duration `json:"micro_total_ns"` // all states while in the micro pool
}

// Wait returns the total runnable-but-not-running time (the paper's
// virtual-time discontinuity), boosted or not.
func (r VCPUResidency) Wait() simtime.Duration { return r.Runnable + r.Boosted }

// PCPUResidency is one pCPU's utilisation record.
type PCPUResidency struct {
	ID         int              `json:"id"`
	Busy       simtime.Duration `json:"busy_ns"`
	Dispatches uint64           `json:"dispatches"`
	Steals     uint64           `json:"steals"`
}

// residencyOf flattens one vCPU's matrix as of now (flushing the open state
// without mutating the accountant).
func (o *Observer) residencyOf(id int, now simtime.Time) VCPUResidency {
	a := &o.vcpus[id]
	var res [2][numStates]simtime.Duration
	res = a.res
	pool := poolNormal
	if a.micro {
		pool = poolMicro
	}
	res[pool][a.state] += now - a.since

	out := VCPUResidency{Dom: a.dom, VCPU: a.idx}
	for p := 0; p < 2; p++ {
		out.Running += res[p][StateRunning]
		out.Runnable += res[p][StateRunnable]
		out.Boosted += res[p][StateBoosted]
		out.Blocked += res[p][StateBlocked]
	}
	out.MicroRunning = res[poolMicro][StateRunning]
	for st := State(0); st < numStates; st++ {
		out.MicroTotal += res[poolMicro][st]
	}
	return out
}

// ResidencySnapshot returns the full per-vCPU residency table as of now.
// Cold path (allocates); used by the flight recorder and the auditor.
func (o *Observer) ResidencySnapshot(now simtime.Time) []VCPUResidency {
	out := make([]VCPUResidency, 0, len(o.vcpus))
	for id := range o.vcpus {
		if !o.vcpus[id].registered {
			continue
		}
		out = append(out, o.residencyOf(id, now))
	}
	return out
}

// VCPUResidencyOf returns one vCPU's residency as of now (false when the id
// was never registered).
func (o *Observer) VCPUResidencyOf(id int, now simtime.Time) (VCPUResidency, bool) {
	if id >= len(o.vcpus) || !o.vcpus[id].registered {
		return VCPUResidency{}, false
	}
	return o.residencyOf(id, now), true
}

// PCPUSnapshot returns the per-pCPU utilisation table.
func (o *Observer) PCPUSnapshot() []PCPUResidency {
	out := make([]PCPUResidency, len(o.pcpus))
	for i := range o.pcpus {
		out[i] = PCPUResidency{
			ID:         i,
			Busy:       o.pcpus[i].busy,
			Dispatches: o.pcpus[i].dispatches,
			Steals:     o.pcpus[i].steals,
		}
	}
	return out
}

// StageStat summarises one stage of a span kind: the exact share of the
// kind's total closed-span time it consumed, plus the distribution of its
// per-span accumulation over spans where it was nonzero.
type StageStat struct {
	Name  string           `json:"name"`
	Count uint64           `json:"count"`    // spans with nonzero time in this stage
	Total simtime.Duration `json:"total_ns"` // exact Σ over all closed spans
	// Share is Total as a percentage of the span kind's Total, rounded by
	// largest remainder to 0.1% so a kind's shares sum to exactly 100.0.
	Share float64          `json:"share_pct"`
	P50   simtime.Duration `json:"p50_ns"`
	P99   simtime.Duration `json:"p99_ns"`
	P999  simtime.Duration `json:"p999_ns"`
	Max   simtime.Duration `json:"max_ns"`
}

// SpanStat summarises one span kind's closed-span latency distribution and
// its causal decomposition into stages.
type SpanStat struct {
	Kind  string           `json:"kind"`
	Count uint64           `json:"count"`
	P50   simtime.Duration `json:"p50_ns"`
	P99   simtime.Duration `json:"p99_ns"`
	P999  simtime.Duration `json:"p999_ns"`
	Max   simtime.Duration `json:"max_ns"`
	// Total is the exact summed duration of every closed span (the ledger
	// the stage conservation law is checked against).
	Total simtime.Duration `json:"total_ns,omitempty"`
	// Open counts this kind's spans still open at summary time, so a leak
	// is attributable to its kind.
	Open int `json:"open,omitempty"`
	// Stages decomposes Total in attribution order; Σ Stages[i].Total ==
	// Total exactly. Empty when the kind recorded nothing.
	Stages []StageStat `json:"stages,omitempty"`
	// Blame names the dominant stage (largest Total; ties to the earliest)
	// and BlamePct its share — the kind's one-line causal verdict.
	Blame    string  `json:"blame,omitempty"`
	BlamePct float64 `json:"blame_pct,omitempty"`
}

// Summary is the end-of-run telemetry read-out.
type Summary struct {
	Duration  simtime.Duration `json:"duration_ns"`
	Spans     []SpanStat       `json:"spans"` // one per kind, declaration order
	VCPUs     []VCPUResidency  `json:"vcpus"`
	PCPUs     []PCPUResidency  `json:"pcpus"`
	OpenSpans int              `json:"open_spans"` // spans never closed by run end
	Flights   []FlightDump     `json:"flights,omitempty"`

	// MTTR is the quiesce→last-repair convergence time of a recovery run
	// (0 when the run had no quiesce point or needed no post-quiesce
	// repairs); Repairs counts supervisor detections+repairs. Both are
	// stamped by the experiment harness after the run.
	MTTR    simtime.Duration `json:"mttr_ns,omitempty"`
	Repairs int              `json:"repairs,omitempty"`

	// Decisions is the adaptive controller's retained decision audit trail
	// (oldest first; bounded ring) and DecisionCount its exact total
	// including aged-out entries. Both are stamped by the experiment
	// harness after the run; empty when the controller was off.
	Decisions     []DecisionRecord `json:"decisions,omitempty"`
	DecisionCount uint64           `json:"decision_count,omitempty"`
}

// BusiestPCPU returns the pCPU with the most accumulated execution time
// (-1, 0 when the summary has no pCPUs).
func (s *Summary) BusiestPCPU() (id int, busy simtime.Duration) {
	id = -1
	for _, p := range s.PCPUs {
		if p.Busy > busy || id < 0 {
			id, busy = p.ID, p.Busy
		}
	}
	return id, busy
}

// Span returns the stat of the named span kind (nil if unknown).
func (s *Summary) Span(kind string) *SpanStat {
	for i := range s.Spans {
		if s.Spans[i].Kind == kind {
			return &s.Spans[i]
		}
	}
	return nil
}

// Summary flattens the observer's state as of now. Cold path.
func (o *Observer) Summary(now simtime.Time) *Summary {
	s := &Summary{
		Duration:  simtime.Duration(now),
		VCPUs:     o.ResidencySnapshot(now),
		PCPUs:     o.PCPUSnapshot(),
		OpenSpans: o.spans.open(),
		Flights:   o.flights,
	}
	for k := SpanKind(0); k < numSpanKinds; k++ {
		h := o.hists[k]
		st := SpanStat{
			Kind:  k.String(),
			Count: h.Count(),
			P50:   simtime.Duration(h.Quantile(0.5)),
			P99:   simtime.Duration(h.Quantile(0.99)),
			P999:  simtime.Duration(h.Quantile(0.999)),
			Max:   simtime.Duration(h.Max()),
			Total: simtime.Duration(o.spanTotal[k]),
			Open:  o.spans.openByKind[k],
		}
		if st.Count > 0 {
			total, stages := o.SpanLedger(k)
			shares := sharesPct(stages)
			for i, name := range spanStageNames[k] {
				sh := o.stageHists[k][i]
				st.Stages = append(st.Stages, StageStat{
					Name:  name,
					Count: sh.Count(),
					Total: simtime.Duration(stages[i]),
					Share: shares[i],
					P50:   simtime.Duration(sh.Quantile(0.5)),
					P99:   simtime.Duration(sh.Quantile(0.99)),
					P999:  simtime.Duration(sh.Quantile(0.999)),
					Max:   simtime.Duration(sh.Max()),
				})
			}
			blame := 0
			for i := range stages {
				if stages[i] > stages[blame] {
					blame = i
				}
			}
			if total > 0 {
				st.Blame = spanStageNames[k][blame]
				st.BlamePct = shares[blame]
			}
		}
		s.Spans = append(s.Spans, st)
	}
	return s
}

// Hist exposes the latency histogram of one span kind (nil for an unknown
// kind), for tests and custom reporting.
func (o *Observer) Hist(k SpanKind) *metrics.Histogram {
	if k >= numSpanKinds {
		return nil
	}
	return o.hists[k]
}

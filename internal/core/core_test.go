package core

import (
	"fmt"
	"testing"

	"github.com/microslicedcore/microsliced/internal/guest"
	"github.com/microslicedcore/microsliced/internal/hv"
	"github.com/microslicedcore/microsliced/internal/ksym"
	"github.com/microslicedcore/microsliced/internal/simtime"
)

type loopProg struct{ op guest.Op }

func (p *loopProg) Next(now simtime.Time) guest.Op { return p.op }

// lockProg alternates a user-compute burst with a short critical section —
// the gmake/exim kernel-interaction shape. The lock is shared between two
// threads so contention is real but the lock is not the saturation point;
// throughput losses then come from holder/waiter preemption, not queueing.
type lockProg struct {
	l     *guest.SpinLock
	burst simtime.Duration
	i     int
}

func (p *lockProg) Next(now simtime.Time) guest.Op {
	p.i++
	if p.i%2 == 1 {
		return guest.Op{Kind: guest.OpCompute, Dur: p.burst}
	}
	return guest.Op{Kind: guest.OpLock, Lock: p.l, Dur: 2 * simtime.Microsecond}
}

// lockScenario builds the paper's LHP shape: a lock-intensive VM co-running
// with a CPU-hog VM at 2:1 overcommit. Hogs start staggered so scheduling
// phases drift.
func lockScenario(pcpus, vcpus int) (*simtime.Clock, *hv.Hypervisor, *guest.Kernel, *guest.SpinLock) {
	clock := simtime.NewClock()
	cfg := hv.DefaultConfig()
	cfg.PCPUs = pcpus
	h := hv.New(clock, cfg)
	k := guest.NewKernel(h, "locky", vcpus, ksym.Generate(1), guest.DefaultParams())
	hog := guest.NewKernel(h, "hog", vcpus, ksym.Generate(2), guest.DefaultParams())
	var locks []*guest.SpinLock
	nlocks := (vcpus + 3) / 4
	for i := 0; i < nlocks; i++ {
		locks = append(locks, k.Lock(fmt.Sprintf("zone%d", i), "Page allocator", "get_page_from_freelist"))
	}
	for i := 0; i < vcpus; i++ {
		k.NewThread(i, "locker", &lockProg{
			l:     locks[i%nlocks],
			burst: simtime.Duration(10+i) * simtime.Microsecond,
		})
		hog.NewThread(i, "hog", &hogProg{burst: simtime.Duration(4+i) * simtime.Millisecond})
	}
	for i, vc := range hog.VCPUs {
		hvv := vc.HV()
		clock.At(simtime.Time(1+7*i)*simtime.Millisecond, func() { h.Wake(hvv, false) })
	}
	return clock, h, k, locks[0]
}

func startAllKernels(h *hv.Hypervisor, ks ...*guest.Kernel) {
	h.Start()
	for _, k := range ks {
		k.StartAll()
	}
}

func runLockScenario(t *testing.T, cfg Config, dur simtime.Duration) (uint64, *Controller, *hv.Hypervisor) {
	t.Helper()
	clock, h, k, _ := lockScenario(12, 12)
	c, err := Attach(h, cfg)
	if err != nil {
		t.Fatal(err)
	}
	h.Start()
	c.Start()
	k.StartAll() // hog vCPUs wake on their staggered timers
	clock.RunUntil(dur)
	var ops uint64
	for _, th := range k.Threads() {
		ops += th.OpsDone
	}
	return ops, c, h
}

func TestAttachRequiresSymbolMap(t *testing.T) {
	clock := simtime.NewClock()
	h := hv.New(clock, hv.DefaultConfig())
	h.NewDomain("bare", nil)
	if _, err := Attach(h, DefaultConfig()); err == nil {
		t.Fatal("Attach accepted a domain without System.map")
	}
}

func TestAttachParsesGarbageSymbolMap(t *testing.T) {
	clock := simtime.NewClock()
	h := hv.New(clock, hv.DefaultConfig())
	h.NewDomain("bad", []byte("not a symbol table"))
	if _, err := Attach(h, DefaultConfig()); err == nil {
		t.Fatal("Attach accepted a garbage System.map")
	}
}

func TestModeOffInstallsNoHooks(t *testing.T) {
	clock := simtime.NewClock()
	h := hv.New(clock, hv.DefaultConfig())
	cfg := DefaultConfig()
	cfg.Mode = ModeOff
	if _, err := Attach(h, cfg); err != nil {
		t.Fatal(err)
	}
	if h.Hooks.OnYield != nil || h.Hooks.OnVIRQRelay != nil || h.Hooks.OnVIPIRelay != nil {
		t.Fatal("ModeOff installed hooks")
	}
}

func TestStaticModeSizesPool(t *testing.T) {
	clock := simtime.NewClock()
	cfg := hv.DefaultConfig()
	cfg.PCPUs = 4
	h := hv.New(clock, cfg)
	c, err := Attach(h, StaticConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	h.Start()
	c.Start()
	if c.MicroCount() != 2 {
		t.Fatalf("micro count %d, want 2", c.MicroCount())
	}
}

func TestLockHolderAcceleration(t *testing.T) {
	// Baseline (no mechanism) vs one static micro core on the LHP-heavy
	// scenario: throughput (lock acquisitions) must improve markedly.
	off := StaticConfig(0)
	off.Mode = ModeOff
	base, _, hBase := runLockScenario(t, off, 2*simtime.Second)
	accel, c, hAccel := runLockScenario(t, StaticConfig(1), 2*simtime.Second)
	if c.Counters.Value("migrate.ok") == 0 {
		t.Fatal("no successful migrations")
	}
	if accel <= base {
		t.Fatalf("acceleration did not help: baseline %d vs accelerated %d locker ops", base, accel)
	}
	if hAccel.Counters.Value("yield.ple")*3 >= hBase.Counters.Value("yield.ple") {
		t.Fatalf("PLE yields did not drop: %d -> %d",
			hBase.Counters.Value("yield.ple"), hAccel.Counters.Value("yield.ple"))
	}
}

func TestSymbolHitsRecorded(t *testing.T) {
	_, c, _ := runLockScenario(t, StaticConfig(1), simtime.Second)
	if len(c.SymbolHits) == 0 {
		t.Fatal("no symbol hits recorded")
	}
	found := false
	for name := range c.SymbolHits {
		if name == "get_page_from_freelist" {
			found = true
		}
		if ksym.Classify(name) == ksym.ClassNone {
			t.Fatalf("non-critical symbol %q recorded", name)
		}
	}
	if !found {
		t.Fatalf("critical-section symbol missing from hits: %v", c.SymbolHits)
	}
}

// tlbScenario: a dedup-like VM whose threads flush TLBs constantly,
// co-running with a hog VM. Hog threads compute in long bursts with short
// sleeps and start staggered, so the two VMs' scheduling phases drift the
// way real co-runners do instead of ticking in lockstep.
func tlbScenario(pcpus, vcpus int) (*simtime.Clock, *hv.Hypervisor, *guest.Kernel) {
	clock := simtime.NewClock()
	cfg := hv.DefaultConfig()
	cfg.PCPUs = pcpus
	h := hv.New(clock, cfg)
	k := guest.NewKernel(h, "dedup", vcpus, ksym.Generate(1), guest.DefaultParams())
	hog := guest.NewKernel(h, "hog", vcpus, ksym.Generate(2), guest.DefaultParams())
	for i := 0; i < vcpus; i++ {
		k.NewThread(i, "flusher", &tlbProg{burst: simtime.Duration(150+13*i) * simtime.Microsecond})
		hog.NewThread(i, "hog", &hogProg{burst: simtime.Duration(4+i) * simtime.Millisecond})
	}
	for i, vc := range hog.VCPUs {
		hvv := vc.HV()
		clock.At(simtime.Time(1+7*i)*simtime.Millisecond, func() { h.Wake(hvv, false) })
	}
	return clock, h, k
}

// tlbProg alternates compute and TLB flushes (mmap/munmap shape).
type tlbProg struct {
	i     int
	burst simtime.Duration
}

func (p *tlbProg) Next(now simtime.Time) guest.Op {
	p.i++
	if p.i%2 == 1 {
		return guest.Op{Kind: guest.OpCompute, Dur: p.burst}
	}
	return guest.Op{Kind: guest.OpTLBFlush}
}

// hogProg computes in long bursts with a short sleep in between, keeping
// co-runner scheduling phases drifting.
type hogProg struct {
	i     int
	burst simtime.Duration
}

func (p *hogProg) Next(now simtime.Time) guest.Op {
	p.i++
	if p.i%8 == 0 {
		return guest.Op{Kind: guest.OpSleep, Dur: 200 * simtime.Microsecond}
	}
	return guest.Op{Kind: guest.OpCompute, Dur: p.burst}
}

func runTLB(t *testing.T, cfg Config, dur simtime.Duration) (float64, uint64, *Controller) {
	t.Helper()
	clock, h, k := tlbScenario(12, 12)
	c, err := Attach(h, cfg)
	if err != nil {
		t.Fatal(err)
	}
	h.Start()
	c.Start()
	k.StartAll() // hog vCPUs wake on their staggered timers
	clock.RunUntil(dur)
	return k.TLBStat.Mean(), k.TLBStat.Count(), c
}

func TestTLBShootdownAcceleration(t *testing.T) {
	off := DefaultConfig()
	off.Mode = ModeOff
	baseMean, baseCount, _ := runTLB(t, off, 2*simtime.Second)
	accMean, accCount, c := runTLB(t, StaticConfig(3), 2*simtime.Second)
	if c.Counters.Value("migrate.ok") == 0 {
		t.Fatal("no migrations for TLB case")
	}
	if accMean >= baseMean {
		t.Fatalf("TLB latency did not improve: %.0fns -> %.0fns", baseMean, accMean)
	}
	if accCount <= baseCount {
		t.Fatalf("shootdown throughput did not improve: %d -> %d", baseCount, accCount)
	}
}

func TestAdaptiveSettlesOnSingleCoreForPLE(t *testing.T) {
	clock, h, _, l := lockScenario(12, 12)
	cfg := DefaultConfig()
	c, err := Attach(h, cfg)
	if err != nil {
		t.Fatal(err)
	}
	h.Start()
	c.Start()
	for _, vc := range h.VCPUs() {
		h.Wake(vc, false)
	}
	clock.RunUntil(2 * simtime.Second)
	if c.Counters.Value("adaptive.single") == 0 {
		t.Fatalf("PLE-dominant load never took the single-core fast path: %s", c.Counters)
	}
	if l.Acquisitions == 0 {
		t.Fatal("no lock progress")
	}
	// Time-averaged pool size should be around 1; profiling phases and
	// epochs that genuinely saw no urgent events dip to 0.
	avg := c.MicroGauge.TimeAverage(int64(clock.Now()))
	if avg < 0.3 || avg > 1.7 {
		t.Fatalf("average micro cores %.2f, want ~1", avg)
	}
}

func TestAdaptiveStaysAtZeroWhenIdle(t *testing.T) {
	clock := simtime.NewClock()
	cfg := hv.DefaultConfig()
	cfg.PCPUs = 4
	h := hv.New(clock, cfg)
	k := guest.NewKernel(h, "calm", 2, ksym.Generate(1), guest.DefaultParams())
	for i := 0; i < 2; i++ {
		k.NewThread(i, "user", &loopProg{op: guest.Op{
			Kind: guest.OpCompute, Dur: simtime.Millisecond,
		}})
	}
	c, err := Attach(h, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	startAllKernels(h, k)
	c.Start()
	clock.RunUntil(3 * simtime.Second)
	if c.MicroCount() != 0 {
		t.Fatalf("idle system has %d micro cores", c.MicroCount())
	}
	if c.Counters.Value("adaptive.idle") == 0 {
		t.Fatal("idle path never taken")
	}
}

func TestAdaptiveIPISearchPicksBest(t *testing.T) {
	clock, h, k := tlbScenario(6, 6)
	cfg := DefaultConfig()
	cfg.MaxMicroCores = 3
	c, err := Attach(h, cfg)
	if err != nil {
		t.Fatal(err)
	}
	h.Start()
	c.Start()
	k.StartAll()
	clock.RunUntil(3 * simtime.Second)
	if c.Counters.Value("adaptive.best_pick") == 0 {
		t.Fatalf("IPI-dominant load never completed the search: %s", c.Counters)
	}
	if c.MicroCount() < 1 || c.MicroCount() > 3 {
		t.Fatalf("settled at %d micro cores", c.MicroCount())
	}
}

func TestPreciseSelectionReducesMigrations(t *testing.T) {
	run := func(precise bool) uint64 {
		clock, h, _, _ := lockScenario(12, 12)
		cfg := StaticConfig(1)
		cfg.PreciseSelection = precise
		c, err := Attach(h, cfg)
		if err != nil {
			t.Fatal(err)
		}
		h.Start()
		c.Start()
		for _, vc := range h.VCPUs() {
			h.Wake(vc, false)
		}
		clock.RunUntil(simtime.Second)
		return c.Counters.Value("migrate.attempt")
	}
	precise := run(true)
	imprecise := run(false)
	if precise == 0 {
		t.Fatal("precise mode made no attempts")
	}
	if imprecise <= precise {
		t.Fatalf("imprecise selection should attempt more migrations: %d vs %d", precise, imprecise)
	}
}

func TestStartTwicePanics(t *testing.T) {
	clock := simtime.NewClock()
	h := hv.New(clock, hv.DefaultConfig())
	c, err := Attach(h, StaticConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	h.Start()
	c.Start()
	defer func() {
		if recover() == nil {
			t.Fatal("second Start did not panic")
		}
	}()
	c.Start()
}

func TestModeString(t *testing.T) {
	for _, m := range []Mode{ModeOff, ModeStatic, ModeDynamic, Mode(9)} {
		if m.String() == "" {
			t.Fatal("empty mode string")
		}
	}
}

// counterWorld builds a guest-free world whose urgent-event counters are
// driven by hand: tests script one profiling sample per timer window by
// bumping the hypervisor counters the controller snapshots, making every
// Algorithm 1 branch reachable deterministically.
func counterWorld(t *testing.T, pcpus int, cfg Config) (*simtime.Clock, *hv.Hypervisor, *Controller) {
	t.Helper()
	clock := simtime.NewClock()
	hcfg := hv.DefaultConfig()
	hcfg.PCPUs = pcpus
	h := hv.New(clock, hcfg)
	c, err := Attach(h, cfg)
	if err != nil {
		t.Fatal(err)
	}
	h.Start()
	c.Start()
	return clock, h, c
}

func bump(h *hv.Hypervisor, name string, n uint64) {
	h.Counters.Counter(name).Add(n)
}

func lastDecision(t *testing.T, c *Controller) DecisionEvent {
	t.Helper()
	decs := c.Decisions()
	if len(decs) == 0 {
		t.Fatal("no decisions recorded")
	}
	return decs[len(decs)-1]
}

// TestPLEDominantEarlyTerminates is the regression for the dominance
// misclassification: with ples=100, ipis=40, irqs=0 the phase is
// PLE-dominant, but the old `ipis > ples || ipis > irqs` test saw
// 40 > 0 and entered the multi-epoch iterative search. It must
// early-terminate at one core via the single-core fast path.
func TestPLEDominantEarlyTerminates(t *testing.T) {
	clock, h, c := counterWorld(t, 6, DefaultConfig())
	bump(h, "yield.ple", 100)
	bump(h, "yield.ipi", 40)
	clock.RunUntil(11 * simtime.Millisecond)
	if got := c.Counters.Value("adaptive.ipi_search"); got != 0 {
		t.Fatalf("PLE-dominant phase entered the IPI search %d times", got)
	}
	if got := c.Counters.Value("adaptive.single"); got != 1 {
		t.Fatalf("adaptive.single = %d, want 1", got)
	}
	if h.MicroCount() != 1 {
		t.Fatalf("micro count %d, want 1", h.MicroCount())
	}
	if d := lastDecision(t, c); d.Reason != DecisionSingle || d.Chosen != 1 {
		t.Fatalf("decision %s→%d, want single→1", d.Reason, d.Chosen)
	}
}

// TestMicroGaugeSeededAtStart is the regression for the MicroAvg
// accounting gap: a dynamic run shorter than one profile interval used to
// report 0 because Start never seeded the gauge with the live pool size.
func TestMicroGaugeSeededAtStart(t *testing.T) {
	clock := simtime.NewClock()
	hcfg := hv.DefaultConfig()
	hcfg.PCPUs = 4
	h := hv.New(clock, hcfg)
	c, err := Attach(h, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	h.Start()
	h.SetMicroCount(1) // the pool exists before the controller starts
	c.Start()
	clock.RunUntil(5 * simtime.Millisecond) // shorter than ProfileInterval
	if avg := c.MicroGauge.TimeAverage(int64(clock.Now())); avg != 1.0 {
		t.Fatalf("MicroAvg %v over a 5 ms run with a 1-core pool, want 1.0", avg)
	}
}

// TestFindBestMicroCountTable drives the search arithmetic directly: the
// minimum-urgent-event size must win, ties must prefer the smaller pool,
// and the live ceiling must exclude sizes beyond it.
func TestFindBestMicroCountTable(t *testing.T) {
	cases := []struct {
		name   string
		totals []uint64 // urgent events per size 1..len
		ceil   int
		want   int
	}{
		{"min in the middle", []uint64{50, 10, 30}, 3, 2},
		{"min at the top", []uint64{50, 30, 10}, 3, 3},
		{"tie prefers smaller", []uint64{20, 20, 40}, 3, 1},
		{"all equal prefers one", []uint64{15, 15, 15}, 3, 1},
		{"ceiling excludes stale min", []uint64{50, 30, 10}, 2, 2},
	}
	for _, tc := range cases {
		c := &Controller{
			cfg:        Config{MaxMicroCores: len(tc.totals)},
			urEvents:   make([]eventStats, len(tc.totals)+1),
			searchCeil: tc.ceil,
		}
		for i, tot := range tc.totals {
			c.urEvents[i+1] = eventStats{ipis: tot}
		}
		if got := c.findBestMicroCount(); got != tc.want {
			t.Errorf("%s: picked %d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestAdaptiveSearchWalksAllSizes scripts a full iterative search end to
// end: the controller must profile sizes 1..max in successive windows and
// settle on the size whose window saw the fewest urgent events.
func TestAdaptiveSearchWalksAllSizes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxMicroCores = 3
	clock, h, c := counterWorld(t, 6, cfg)
	bump(h, "yield.ipi", 100) // busy, IPI-dominant run phase → search
	clock.RunUntil(10 * simtime.Millisecond)
	// One scripted sample per search window: sizes 1, 2, 3 see 50, 10, 30.
	for _, n := range []uint64{50, 10, 30} {
		bump(h, "yield.ipi", n)
		clock.RunUntil(clock.Now() + 10*simtime.Millisecond)
	}
	if got := c.Counters.Value("adaptive.best_pick"); got != 1 {
		t.Fatalf("adaptive.best_pick = %d, want 1 (counters: %s)", got, c.Counters)
	}
	if h.MicroCount() != 2 {
		t.Fatalf("settled on %d micro cores, want 2 (the minimum-event size)", h.MicroCount())
	}
	d := lastDecision(t, c)
	if d.Reason != DecisionBestPick || d.Chosen != 2 || d.Ceiling != 3 {
		t.Fatalf("decision %s→%d (ceiling %d), want best-pick→2 (ceiling 3)", d.Reason, d.Chosen, d.Ceiling)
	}
	if len(d.Probes) != 4 || d.Probes[2].IPIs != 10 {
		t.Fatalf("decision probes %+v, want 4 samples with Probes[2].IPIs=10", d.Probes)
	}
}

// TestCapacityClampAfterHotplug: hot-unplugging pCPUs mid-run must
// immediately re-profile under a clamped ceiling, discard the stale sample
// history (the old winner no longer exists), and record the clamp.
func TestCapacityClampAfterHotplug(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxMicroCores = 3
	clock, h, c := counterWorld(t, 5, cfg)
	// First search: size 3 wins (samples 50, 30, 10 for sizes 1, 2, 3).
	bump(h, "yield.ipi", 100)
	clock.RunUntil(10 * simtime.Millisecond)
	for _, n := range []uint64{50, 30, 10} {
		bump(h, "yield.ipi", n)
		clock.RunUntil(clock.Now() + 10*simtime.Millisecond)
	}
	if h.MicroCount() != 3 {
		t.Fatalf("first search settled on %d micro cores, want 3", h.MicroCount())
	}
	// Capacity loss: two pCPUs die. Online drops to 3, so at most 2 cores
	// can be micro-sliced; the stale size-3 sample (the old minimum) must
	// not drive the next pick.
	if err := h.OfflinePCPU(4); err != nil {
		t.Fatal(err)
	}
	if err := h.OfflinePCPU(3); err != nil {
		t.Fatal(err)
	}
	if got := c.Counters.Value("adaptive.reprofile"); got != 2 {
		t.Fatalf("adaptive.reprofile = %d, want 2 (one per hotplug)", got)
	}
	// The immediate re-profile round: busy run delta → clamped search.
	bump(h, "yield.ipi", 100)
	clock.RunUntil(clock.Now() + simtime.Millisecond)
	for _, n := range []uint64{40, 20} {
		bump(h, "yield.ipi", n)
		clock.RunUntil(clock.Now() + 10*simtime.Millisecond)
	}
	if h.MicroCount() != 2 {
		t.Fatalf("clamped search settled on %d micro cores, want 2", h.MicroCount())
	}
	d := lastDecision(t, c)
	if d.Reason != DecisionCapacityClamp || d.Chosen != 2 || d.Ceiling != 2 {
		t.Fatalf("decision %s→%d (ceiling %d), want capacity-clamp→2 (ceiling 2)", d.Reason, d.Chosen, d.Ceiling)
	}
	if c.Counters.Value("adaptive.capacity_clamp") == 0 {
		t.Fatal("capacity clamp never counted")
	}
}

// TestZeroProbeSkippedWhenBusy: under sustained load the controller must
// not strip all acceleration for a 10 ms probe at every epoch boundary.
func TestZeroProbeSkippedWhenBusy(t *testing.T) {
	clock, h, c := counterWorld(t, 4, DefaultConfig())
	bump(h, "yield.ple", 50)
	clock.RunUntil(11 * simtime.Millisecond)
	if h.MicroCount() != 1 {
		t.Fatalf("busy epoch settled on %d micro cores, want 1", h.MicroCount())
	}
	bump(h, "yield.ple", 50)
	// Just past the second epoch boundary (10 ms + 1000 ms): the old
	// controller would be mid-probe at zero cores here.
	clock.RunUntil(1012 * simtime.Millisecond)
	if h.MicroCount() != 1 {
		t.Fatalf("pool stripped to %d cores at the epoch boundary, want 1 (probe skipped)", h.MicroCount())
	}
	if got := c.Counters.Value("adaptive.probe_skip"); got != 2 {
		t.Fatalf("adaptive.probe_skip = %d, want 2", got)
	}
}

// TestStabilitySkipAfterStableEpochs: once the search winner repeats for
// StabilityEpochs consecutive epochs, the next busy IPI-dominant epoch
// must reinstate it directly instead of re-running the search.
func TestStabilitySkipAfterStableEpochs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxMicroCores = 2
	cfg.StabilityEpochs = 2
	clock, h, c := counterWorld(t, 6, cfg)
	// Two full searches, both won by size 1 (equal samples tie-break down).
	for epoch := 0; epoch < 2; epoch++ {
		bump(h, "yield.ipi", 100)
		clock.RunUntil(clock.Now() + 10*simtime.Millisecond)
		for _, n := range []uint64{50, 50} {
			bump(h, "yield.ipi", n)
			clock.RunUntil(clock.Now() + 10*simtime.Millisecond)
		}
		// Skip ahead to just before the next epoch boundary.
		clock.RunUntil(clock.Now() + 999*simtime.Millisecond)
	}
	if got := c.Counters.Value("adaptive.ipi_search"); got != 2 {
		t.Fatalf("adaptive.ipi_search = %d, want 2", got)
	}
	// Third busy epoch: the streak (2) has reached StabilityEpochs.
	bump(h, "yield.ipi", 100)
	clock.RunUntil(clock.Now() + 11*simtime.Millisecond)
	if got := c.Counters.Value("adaptive.stability_skip"); got != 1 {
		t.Fatalf("adaptive.stability_skip = %d, want 1 (counters: %s)", got, c.Counters)
	}
	if got := c.Counters.Value("adaptive.ipi_search"); got != 2 {
		t.Fatalf("search re-ran despite a stable winner: adaptive.ipi_search = %d", got)
	}
	if h.MicroCount() != 1 {
		t.Fatalf("stability skip installed %d micro cores, want 1", h.MicroCount())
	}
	if d := lastDecision(t, c); d.Reason != DecisionStabilitySkip {
		t.Fatalf("decision reason %s, want stability-skip", d.Reason)
	}
}

// TestDecisionRingBounded: the audit ring retains the newest DecisionDepth
// entries oldest-first while the exact total keeps counting.
func TestDecisionRingBounded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ProfileInterval = simtime.Millisecond
	cfg.EpochInterval = 2 * simtime.Millisecond
	cfg.DecisionDepth = 4
	clock, _, c := counterWorld(t, 4, cfg)
	clock.RunUntil(50 * simtime.Millisecond) // idle: one decision per 3 ms round
	total := c.DecisionTotal()
	if total <= 4 {
		t.Fatalf("only %d decisions in 50 ms, want > 4", total)
	}
	decs := c.Decisions()
	if len(decs) != 4 {
		t.Fatalf("ring holds %d entries, want 4", len(decs))
	}
	for i := 1; i < len(decs); i++ {
		if decs[i].Time <= decs[i-1].Time || decs[i].Epoch <= decs[i-1].Epoch {
			t.Fatalf("ring not oldest-first: %+v", decs)
		}
	}
	if decs[len(decs)-1].Epoch != total {
		t.Fatalf("newest entry epoch %d, want %d (one idle decision per round)",
			decs[len(decs)-1].Epoch, total)
	}
}

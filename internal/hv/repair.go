package hv

import (
	"github.com/microslicedcore/microsliced/internal/obs"
	"github.com/microslicedcore/microsliced/internal/trace"
)

// RegrantCredits is a recovery primitive: it refills a vCPU's credit
// balance to the cap, clears carried debt, and (when boost is set and the
// pool allows boosting) raises the vCPU to PrioBoost exactly as the wake
// path would — re-sorting its runqueue and tickling the pCPU so a
// credit-starved vCPU stuck behind UNDER work gets a dispatch chance now
// rather than at the next accounting epoch. It never changes scheduling
// state; callers repair Runnable vCPUs.
func (h *Hypervisor) RegrantCredits(v *VCPU, boost bool) {
	v.credits = h.Cfg.CreditCap
	v.debtNs = 0
	prio := v.basePrio()
	if boost && h.Cfg.BoostEnabled && v.pool != nil && !v.pool.NoBoost && v.state == StateRunnable {
		prio = PrioBoost
		v.boosted = true
		h.hot.boost.Inc()
		h.emit(trace.KindBoost, v, 0, 0)
		if h.Obs != nil {
			h.Obs.Transition(v.ID, obs.StateBoosted, h.Clock.Now())
		}
	}
	v.prio = prio
	if v.queuedOn != nil {
		resortRunq(v.queuedOn)
		h.tickle(v.queuedOn)
	}
}

// Package rivals implements the prior-work systems the paper compares
// against in its Table 1, so the comparison can be *measured* instead of
// merely tabulated:
//
//   - FixedMicroSliced — Ahn et al. (MICRO'14): one short time slice on
//     every core. Addresses every symptom but taxes all user-level
//     execution with context-switch and cache-refill costs (the paper's
//     motivation for precise selection).
//   - VTurbo — Xu et al. (ATC'13): a statically dedicated, micro-sliced
//     "turbo" core that all device-IRQ processing is steered to. Helps
//     I/O latency and throughput, but knows nothing about locks or TLB
//     shootdowns, and its core is reserved whether or not I/O happens.
//   - VTRS — Teabe et al. (EuroSys'16): runtime profiling classifies each
//     *whole vCPU* by its time-slice preference and applies a per-vCPU
//     quantum. Coarse granularity: a vCPU mixing I/O and cache-sensitive
//     compute has no right time slice, and classification lags behaviour
//     changes.
//
// Each rival attaches to the hypervisor exactly the way internal/core
// does (hooks plus pool/slice manipulation), so all systems are compared
// on identical scenarios by internal/experiment's Table-1 benchmark.
package rivals

import (
	"github.com/microslicedcore/microsliced/internal/hv"
	"github.com/microslicedcore/microsliced/internal/metrics"
	"github.com/microslicedcore/microsliced/internal/simtime"
)

// System is a pluggable vCPU-scheduling mitigation.
type System interface {
	// Name identifies the system in reports.
	Name() string
	// Start activates the system (after hv.Start).
	Start()
}

// ---------------------------------------------------------------------------
// Fixed micro-slicing (global short quantum)
// ---------------------------------------------------------------------------

// FixedMicroSliced applies one sub-millisecond quantum to every pCPU.
type FixedMicroSliced struct {
	h     *hv.Hypervisor
	Slice simtime.Duration
}

// NewFixedMicroSliced prepares the global short-slice configuration.
// Because the slice is a pool property, callers construct the hypervisor
// with hv.Config.NormalSlice set via ShortSliceConfig; this wrapper exists
// so the comparison harness treats all systems uniformly.
func NewFixedMicroSliced(h *hv.Hypervisor, slice simtime.Duration) *FixedMicroSliced {
	if slice <= 0 {
		slice = 100 * simtime.Microsecond
	}
	return &FixedMicroSliced{h: h, Slice: slice}
}

// ShortSliceConfig returns the hypervisor configuration for the global
// short quantum.
func ShortSliceConfig(slice simtime.Duration) hv.Config {
	cfg := hv.DefaultConfig()
	if slice <= 0 {
		slice = 100 * simtime.Microsecond
	}
	cfg.NormalSlice = slice
	return cfg
}

// Name implements System.
func (f *FixedMicroSliced) Name() string { return "fixed-usliced" }

// Start implements System: every vCPU gets the short quantum (covers
// hypervisors constructed without ShortSliceConfig).
func (f *FixedMicroSliced) Start() {
	for _, v := range f.h.VCPUs() {
		v.SetSliceOverride(f.Slice)
	}
}

// ---------------------------------------------------------------------------
// vTurbo
// ---------------------------------------------------------------------------

// VTurbo dedicates a static micro-sliced core pool and steers device-IRQ
// recipients onto it. (The original also modifies the guest to pin I/O
// handling threads there; routing the IRQ-recipient vCPU is the
// hypervisor-side equivalent available without guest changes.)
type VTurbo struct {
	h        *hv.Hypervisor
	Cores    int
	Counters *metrics.Set
}

// NewVTurbo attaches the vTurbo policy with the given number of turbo
// cores (1 in the original).
func NewVTurbo(h *hv.Hypervisor, cores int) *VTurbo {
	if cores <= 0 {
		cores = 1
	}
	v := &VTurbo{h: h, Cores: cores, Counters: metrics.NewSet()}
	h.Hooks.OnVIRQRelay = v.onVIRQ
	return v
}

// Name implements System.
func (v *VTurbo) Name() string { return "vturbo" }

// Start implements System: the turbo pool is static.
func (v *VTurbo) Start() {
	v.h.SetMicroCount(v.Cores)
}

// onVIRQ steers every preempted IRQ recipient to the turbo pool —
// unconditionally, since vTurbo has no notion of which kernel service is
// pending; that is its whole policy.
func (v *VTurbo) onVIRQ(target *hv.VCPU) {
	if target.State() != hv.StateRunnable || target.OnMicro() {
		return
	}
	v.Counters.Counter("steer.attempt").Inc()
	if v.h.MigrateToMicro(target) {
		v.Counters.Counter("steer.ok").Inc()
	}
}

// ---------------------------------------------------------------------------
// Co-scheduling
// ---------------------------------------------------------------------------

// CoSched is relaxed gang scheduling (VMware-style, paper §2.2): every
// period, the next domain's runnable vCPUs are force-dispatched 1:1 onto
// the pCPUs, so sibling vCPUs execute together and spinlock holders / TLB
// shootdown recipients are never preempted relative to each other. Idle
// slots are backfilled work-conservingly ("relaxed"); the cost is the
// synchronized preemption of whatever else was running, and scalability
// limits as vCPU counts grow.
type CoSched struct {
	h      *hv.Hypervisor
	Period simtime.Duration
	active int
}

// NewCoSched attaches gang scheduling with the given rotation period
// (default 30 ms, one slice).
func NewCoSched(h *hv.Hypervisor, period simtime.Duration) *CoSched {
	if period <= 0 {
		period = 30 * simtime.Millisecond
	}
	return &CoSched{h: h, Period: period}
}

// Name implements System.
func (c *CoSched) Name() string { return "cosched" }

// Start implements System.
func (c *CoSched) Start() {
	c.h.Clock.After(simtime.Millisecond, c.step)
}

func (c *CoSched) step() {
	doms := c.h.Domains()
	if len(doms) > 0 {
		c.active = (c.active + 1) % len(doms)
		dom := doms[c.active]
		pcpus := c.h.NormalPool().PCPUs()
		for i, v := range dom.VCPUs {
			if i >= len(pcpus) {
				break
			}
			c.h.ForceDispatch(pcpus[i], v)
		}
	}
	c.h.Clock.After(c.Period, c.step)
}

// ---------------------------------------------------------------------------
// vTRS
// ---------------------------------------------------------------------------

// VTRSClass is a vCPU time-slice class.
type VTRSClass uint8

// vTRS classes (Teabe et al. §3).
const (
	VTRSDefault       VTRSClass = iota // 30 ms
	VTRSLockIntensive                  // shorter slice: spreads lock-holder exposure
	VTRSIOIntensive                    // short slice: frequent scheduling turns
)

// String names the class.
func (c VTRSClass) String() string {
	switch c {
	case VTRSLockIntensive:
		return "lock"
	case VTRSIOIntensive:
		return "io"
	default:
		return "default"
	}
}

// VTRS profiles each vCPU periodically, groups vCPUs by their inferred
// time-slice preference, partitions the pCPUs among the groups
// (proportionally to group size, at least one pCPU per non-empty group),
// pins each group to its partition, and applies the class quantum — the
// CPU-pool scheduling of the original system.
type VTRS struct {
	h        *hv.Hypervisor
	Counters *metrics.Set

	// Epoch between re-classifications.
	Epoch simtime.Duration
	// LockSlice / IOSlice are the class quanta.
	LockSlice simtime.Duration
	IOSlice   simtime.Duration
	// Thresholds are events per epoch that trigger a class.
	LockThreshold uint64
	IOThreshold   uint64

	lastYields map[*hv.VCPU]uint64
	lastVIRQ   map[*hv.VCPU]uint64
	classes    map[*hv.VCPU]VTRSClass
}

// NewVTRS attaches the vTRS profiler-classifier.
func NewVTRS(h *hv.Hypervisor) *VTRS {
	return &VTRS{
		h:             h,
		Counters:      metrics.NewSet(),
		Epoch:         100 * simtime.Millisecond,
		LockSlice:     simtime.Millisecond,
		IOSlice:       simtime.Millisecond,
		LockThreshold: 50,
		IOThreshold:   20,
		lastYields:    make(map[*hv.VCPU]uint64),
		lastVIRQ:      make(map[*hv.VCPU]uint64),
		classes:       make(map[*hv.VCPU]VTRSClass),
	}
}

// Name implements System.
func (t *VTRS) Name() string { return "vtrs" }

// Start implements System.
func (t *VTRS) Start() {
	t.h.Clock.After(t.Epoch, t.step)
}

// Class returns the current classification of a vCPU.
func (t *VTRS) Class(v *hv.VCPU) VTRSClass { return t.classes[v] }

// classify updates every vCPU's class from its event deltas.
func (t *VTRS) classify() {
	for _, v := range t.h.VCPUs() {
		yields := v.YieldsBy(hv.YieldPLE) + v.YieldsBy(hv.YieldIPIWait)
		virqs := v.VIRQReceived()
		dy := yields - t.lastYields[v]
		dq := virqs - t.lastVIRQ[v]
		t.lastYields[v] = yields
		t.lastVIRQ[v] = virqs

		cls := VTRSDefault
		switch {
		case dq >= t.IOThreshold:
			cls = VTRSIOIntensive
		case dy >= t.LockThreshold:
			cls = VTRSLockIntensive
		}
		if t.classes[v] != cls {
			t.classes[v] = cls
			t.Counters.Counter("reclassify").Inc()
		}
	}
}

func (t *VTRS) sliceFor(c VTRSClass) simtime.Duration {
	switch c {
	case VTRSIOIntensive:
		return t.IOSlice
	case VTRSLockIntensive:
		return t.LockSlice
	default:
		return 0 // pool default (30 ms)
	}
}

// step reclassifies, repartitions the pCPUs among the classes present and
// repins every vCPU into its class partition with the class quantum.
func (t *VTRS) step() {
	t.classify()
	vcpus := t.h.VCPUs()
	pcpus := t.h.NormalPool().Size()

	// Stable class order; count members.
	order := []VTRSClass{VTRSDefault, VTRSLockIntensive, VTRSIOIntensive}
	count := map[VTRSClass]int{}
	for _, v := range vcpus {
		count[t.classes[v]]++
	}
	groups := 0
	for _, c := range order {
		if count[c] > 0 {
			groups++
		}
	}
	if groups <= 1 || pcpus < 2 {
		// One class (or nothing to partition): unpin, apply the quantum.
		for _, v := range vcpus {
			t.h.RePin(v, -1)
			v.SetSliceOverride(t.sliceFor(t.classes[v]))
		}
		t.h.Clock.After(t.Epoch, t.step)
		return
	}

	// Proportional partition with at least one pCPU per non-empty group.
	share := map[VTRSClass]int{}
	assigned := 0
	for _, c := range order {
		if count[c] == 0 {
			continue
		}
		n := count[c] * pcpus / len(vcpus)
		if n < 1 {
			n = 1
		}
		share[c] = n
		assigned += n
	}
	// Trim or pad to exactly the available pCPUs (largest group absorbs).
	largest := order[0]
	for _, c := range order {
		if count[c] > count[largest] {
			largest = c
		}
	}
	share[largest] += pcpus - assigned
	if share[largest] < 1 {
		share[largest] = 1
	}

	// Pin group members round-robin into contiguous pCPU ranges.
	normal := t.h.NormalPool().PCPUs()
	start := 0
	for _, c := range order {
		n := share[c]
		if count[c] == 0 || n <= 0 {
			continue
		}
		i := 0
		for _, v := range vcpus {
			if t.classes[v] != c {
				continue
			}
			p := normal[start+(i%n)]
			t.h.RePin(v, p.ID)
			v.SetSliceOverride(t.sliceFor(c))
			i++
		}
		start += n
		if start > len(normal)-1 {
			start = len(normal) - 1
		}
	}
	t.h.Clock.After(t.Epoch, t.step)
}

package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/microslicedcore/microsliced/internal/simtime"
	"github.com/microslicedcore/microsliced/internal/trace"
)

// sampleRecords builds a minimal but representative scheduling timeline:
// two run intervals (one closed by preemption, one left open), a wake
// instant and a host-row pool resize.
func sampleRecords() []trace.Record {
	const u = simtime.Microsecond
	return []trace.Record{
		{Time: 0, Kind: trace.KindWake, Dom: 0, VCPU: 0, PCPU: -1},
		{Time: 1 * u, Kind: trace.KindSchedule, Dom: 0, VCPU: 0, PCPU: 2, Arg0: 1},
		{Time: 30 * u, Kind: trace.KindPreempt, Dom: 0, VCPU: 0, PCPU: 2},
		{Time: 31 * u, Kind: trace.KindSchedule, Dom: 1, VCPU: 3, PCPU: 2},
		{Time: 40 * u, Kind: trace.KindPoolResize, Dom: -1, VCPU: -1, PCPU: -1, Arg0: 2},
		{Time: 45 * u, Kind: trace.KindVIPI, Dom: 1, VCPU: 3, PCPU: 2, Arg0: 9},
		// dom1/vcpu3's run is still open at the end of the ring.
	}
}

func TestWriteChromeTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	meta := ExportMeta{DomainNames: map[int16]string{0: "gmake", 1: "swaptions"}}
	if err := WriteChromeTrace(&buf, sampleRecords(), meta); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("exported trace does not validate: %v\n%s", err, buf.String())
	}
	if n == 0 {
		t.Fatal("exported trace has no events")
	}

	// The export must also be plain-JSON decodable (what Perfetto does).
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Ph   string          `json:"ph"`
			Pid  int             `json:"pid"`
			Tid  int             `json:"tid"`
			Ts   float64         `json:"ts"`
			Dur  float64         `json:"dur"`
			Name string          `json:"name"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q, want ns", doc.DisplayTimeUnit)
	}
	var complete, meta2, named int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			complete++
			if ev.Dur < 0 {
				t.Errorf("complete event %q has negative dur %v", ev.Name, ev.Dur)
			}
		case "M":
			meta2++
			if strings.Contains(string(ev.Args), "gmake") || strings.Contains(string(ev.Args), "swaptions") {
				named++
			}
		}
	}
	// Two schedule records -> two run slices (the open one closed at ring end).
	if complete != 2 {
		t.Errorf("complete (X) events = %d, want 2", complete)
	}
	if named == 0 {
		t.Error("no metadata event carries the domain names")
	}
}

func TestWriteChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil, ExportMeta{}); err != nil {
		t.Fatal(err)
	}
	// An empty ring still yields a syntactically valid document...
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty export is not valid JSON: %v", err)
	}
	// ...but fails validation, which demands at least one slice.
	if _, err := ValidateChromeTrace(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("ValidateChromeTrace accepted an empty trace")
	}
}

func TestValidateChromeTraceRejects(t *testing.T) {
	cases := map[string]string{
		"not json":        "][",
		"no unit":         `{"traceEvents":[{"ph":"X","pid":0,"tid":0,"ts":1,"dur":1}]}`,
		"no events":       `{"displayTimeUnit":"ns","traceEvents":[]}`,
		"event sans ph":   `{"displayTimeUnit":"ns","traceEvents":[{"pid":0,"tid":0,"ts":1}]}`,
		"X sans dur":      `{"displayTimeUnit":"ns","traceEvents":[{"ph":"X","pid":0,"tid":0,"ts":1}]}`,
		"no X at all":     `{"displayTimeUnit":"ns","traceEvents":[{"ph":"i","pid":0,"tid":0,"ts":1}]}`,
		"M sans pid":      `{"displayTimeUnit":"ns","traceEvents":[{"ph":"M","name":"process_name"}]}`,
		"i sans ts":       `{"displayTimeUnit":"ns","traceEvents":[{"ph":"i","pid":0,"tid":0}]}`,
	}
	for name, doc := range cases {
		if _, err := ValidateChromeTrace(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: validation accepted %s", name, doc)
		}
	}
}

// TestWriteChromeTraceBlameEvents: span aggregates embed as one cat="blame"
// complete event per recorded kind on the synthetic pid=-2 process, carrying
// the full stage decomposition, and the result still validates.
func TestWriteChromeTraceBlameEvents(t *testing.T) {
	var buf bytes.Buffer
	meta := ExportMeta{
		DomainNames: map[int16]string{0: "gmake"},
		Spans: []SpanStat{
			{Kind: "wake_dispatch", Count: 10, Total: 100 * simtime.Microsecond,
				P50: 5 * simtime.Microsecond, P99: 20 * simtime.Microsecond,
				Blame: "runq_wait", BlamePct: 80,
				Stages: []StageStat{
					{Name: "boost_wait", Share: 20, Total: 20 * simtime.Microsecond},
					{Name: "runq_wait", Share: 80, Total: 80 * simtime.Microsecond},
				}},
			{Kind: "disk_io"}, // zero count: must be skipped
		},
	}
	if err := WriteChromeTrace(&buf, sampleRecords(), meta); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateChromeTrace(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("trace with blame events does not validate: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Cat  string `json:"cat"`
			Pid  int    `json:"pid"`
			Name string `json:"name"`
			Args struct {
				Count  uint64 `json:"count"`
				Blame  string `json:"blame"`
				Stages []struct {
					Name  string  `json:"name"`
					Share float64 `json:"share_pct"`
				} `json:"stages"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	var blames int
	for _, ev := range doc.TraceEvents {
		if ev.Cat != "blame" {
			continue
		}
		blames++
		if ev.Ph != "X" || ev.Pid != blamePID {
			t.Errorf("blame event ph=%s pid=%d, want X on pid=%d", ev.Ph, ev.Pid, blamePID)
		}
		if ev.Name != "wake_dispatch" || ev.Args.Blame != "runq_wait" || ev.Args.Count != 10 {
			t.Errorf("blame event payload = %+v", ev.Args)
		}
		if len(ev.Args.Stages) != 2 || ev.Args.Stages[1].Share != 80 {
			t.Errorf("blame event stages = %+v, want the 2-stage breakdown", ev.Args.Stages)
		}
	}
	if blames != 1 {
		t.Errorf("blame events = %d, want 1 (zero-count kinds skipped)", blames)
	}
}

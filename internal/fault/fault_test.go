package fault

import (
	"reflect"
	"testing"

	"github.com/microslicedcore/microsliced/internal/simtime"
)

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"zero", Config{}, true},
		{"full", Config{Seed: 1, OfflinePCPUs: 2, IPIDelayProb: 0.5,
			IPIDelayMax: simtime.Millisecond, IPIDropProb: 0.1,
			TickJitter: simtime.Millisecond, LockStallProb: 0.2, LockStallFactor: 4}, true},
		{"prob>1", Config{IPIDropProb: 1.5}, false},
		{"prob<0", Config{IPIDelayProb: -0.1}, false},
		{"negative-offline", Config{OfflinePCPUs: -1}, false},
		{"delay-without-max", Config{IPIDelayProb: 0.5}, false},
		{"negative-jitter", Config{TickJitter: -1}, false},
		{"stall-factor<1", Config{LockStallProb: 0.5, LockStallFactor: 0.5}, false},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: invalid config accepted", c.name)
		}
	}
}

func TestEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Fatal("zero config reports enabled")
	}
	if !(Config{OfflinePCPUs: 1}).Enabled() {
		t.Fatal("hotplug config reports disabled")
	}
	if !(Config{TickJitter: simtime.Millisecond}).Enabled() {
		t.Fatal("jitter config reports disabled")
	}
}

func TestPlanDeterministicSchedule(t *testing.T) {
	cfg := Config{Seed: 42, OfflinePCPUs: 3}
	a, err := New(cfg, 12, 3*simtime.Second)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg, 12, 3*simtime.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Hotplug, b.Hotplug) {
		t.Fatalf("same config, different hotplug schedules:\n%v\n%v", a.Hotplug, b.Hotplug)
	}
	if len(a.Hotplug) != 3 {
		t.Fatalf("want 3 hotplug events, got %d", len(a.Hotplug))
	}
	seen := map[int]bool{}
	for _, ev := range a.Hotplug {
		if ev.PCPU == 0 {
			t.Fatal("plan unplugs pCPU 0")
		}
		if seen[ev.PCPU] {
			t.Fatalf("pCPU %d unplugged twice", ev.PCPU)
		}
		seen[ev.PCPU] = true
		if ev.On <= ev.Off {
			t.Fatalf("replug %v not after unplug %v", ev.On, ev.Off)
		}
		if ev.Off <= 0 || ev.On >= simtime.Time(3*simtime.Second) {
			t.Fatalf("hotplug window [%v, %v] outside the run", ev.Off, ev.On)
		}
	}
}

func TestPlanRejectsTotalCapacityLoss(t *testing.T) {
	if _, err := New(Config{OfflinePCPUs: 2}, 2, simtime.Second); err == nil {
		t.Fatal("plan accepted unplugging all-but-zero cores of a 2-core host")
	}
}

func TestSeedChangesSchedule(t *testing.T) {
	a, _ := New(Config{Seed: 1, OfflinePCPUs: 2}, 12, 3*simtime.Second)
	b, _ := New(Config{Seed: 2, OfflinePCPUs: 2}, 12, 3*simtime.Second)
	if reflect.DeepEqual(a.Hotplug, b.Hotplug) {
		t.Fatal("different seeds produced identical hotplug schedules")
	}
}

package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// BlameStage is one stage's share of a span kind's total closed-span time.
type BlameStage struct {
	Name string `json:"name"`
	// Pct is the stage's share of the kind's total closed-span time; a
	// row's stage percentages sum to exactly 100.0 (largest-remainder
	// rounding at 0.1%).
	Pct     float64 `json:"pct"`
	TotalMs float64 `json:"total_ms"`
	P99us   float64 `json:"p99_us"`
}

// BlameRow is one span kind's causal verdict for a scenario: where its
// latency budget went and which stage dominates the total.
type BlameRow struct {
	Scenario    string       `json:"scenario"`
	Kind        string       `json:"kind"`
	Count       uint64       `json:"count"`
	Open        int          `json:"open,omitempty"`
	TotalMs     float64      `json:"total_ms"`
	P50us       float64      `json:"p50_us"`
	P99us       float64      `json:"p99_us"`
	P999us      float64      `json:"p999_us"`
	Dominant    string       `json:"dominant"`
	DominantPct float64      `json:"dominant_pct"`
	Stages      []BlameStage `json:"stages"`
}

// Blame is the causal latency attribution table: per scenario and span kind,
// the stage latency budget, the dominant cause, and the share of the total
// attributable to it. paperbench -blame-out writes it as JSON; microtrace
// blame recomputes it offline from an exported trace.
type Blame struct {
	Title string     `json:"title"`
	Rows  []BlameRow `json:"rows"`
	Notes []string   `json:"notes,omitempty"`
}

// Breakdown formats a row's full stage decomposition, e.g.
// "runq_wait 62.4% + boost_wait 30.1% + dispatch 7.5%".
func (r *BlameRow) Breakdown() string {
	parts := make([]string, 0, len(r.Stages))
	for _, s := range r.Stages {
		parts = append(parts, fmt.Sprintf("%s %.1f%%", s.Name, s.Pct))
	}
	return strings.Join(parts, " + ")
}

// Validate checks the structural contract consumers (the CI schema check,
// the regression gate) rely on: non-empty rows with named kinds, a dominant
// stage present in the breakdown, and stage percentages summing to 100.
func (b *Blame) Validate() error {
	if len(b.Rows) == 0 {
		return fmt.Errorf("blame: no rows")
	}
	for i := range b.Rows {
		r := &b.Rows[i]
		if r.Kind == "" {
			return fmt.Errorf("blame row %d: empty kind", i)
		}
		if len(r.Stages) == 0 {
			return fmt.Errorf("blame row %d (%s): no stages", i, r.Kind)
		}
		var sum float64
		dominantSeen := false
		for _, s := range r.Stages {
			if s.Name == "" {
				return fmt.Errorf("blame row %d (%s): unnamed stage", i, r.Kind)
			}
			if s.Pct < 0 || s.Pct > 100 {
				return fmt.Errorf("blame row %d (%s): stage %s share %.1f%% out of range", i, r.Kind, s.Name, s.Pct)
			}
			sum += s.Pct
			if s.Name == r.Dominant {
				dominantSeen = true
			}
		}
		if math.Abs(sum-100) > 0.05 {
			return fmt.Errorf("blame row %d (%s): stage shares sum to %.1f%%, want 100%%", i, r.Kind, sum)
		}
		if r.Dominant == "" || !dominantSeen {
			return fmt.Errorf("blame row %d (%s): dominant stage %q not in breakdown", i, r.Kind, r.Dominant)
		}
	}
	return nil
}

// Render writes the blame table as text.
func (b *Blame) Render(w io.Writer) {
	t := &Table{
		Title:   b.Title,
		Columns: []string{"scenario", "span", "n", "p99 (us)", "dominant stage", "share", "breakdown"},
		Notes:   b.Notes,
	}
	for i := range b.Rows {
		r := &b.Rows[i]
		t.AddRow(r.Scenario, r.Kind, r.Count, r.P99us,
			r.Dominant, fmt.Sprintf("%.1f%%", r.DominantPct), r.Breakdown())
	}
	t.Render(w)
}

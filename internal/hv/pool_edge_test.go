package hv

import (
	"testing"

	"github.com/microslicedcore/microsliced/internal/simtime"
)

// TestSetMicroCountAllPinned: when every normal pCPU carries pinned load,
// GrowMicro has no donor and SetMicroCount must settle at zero without
// disturbing the pinned vCPUs.
func TestSetMicroCountAllPinned(t *testing.T) {
	clock, h := setup(3)
	d := h.NewDomain("vm", nil)
	guests := make([]*computeGuest, 3)
	for i := range guests {
		guests[i] = newComputeGuest(h, d, 100*simtime.Millisecond)
		guests[i].v.Pin(i)
	}
	h.Start()
	for _, g := range guests {
		h.Wake(g.v, false)
	}
	clock.RunUntil(simtime.Millisecond)
	for i, g := range guests {
		if g.v.pcpu == nil || g.v.pcpu.ID != i {
			t.Fatalf("guest %d not running on its pin", i)
		}
	}

	if got := h.SetMicroCount(2); got != 0 {
		t.Fatalf("SetMicroCount(2) with all pCPUs pinned-loaded achieved %d, want 0", got)
	}
	if n := len(h.micro.pcpus); n != 0 {
		t.Fatalf("micro pool has %d pCPUs, want 0", n)
	}
	if n := len(h.normal.pcpus); n != 3 {
		t.Fatalf("normal pool has %d pCPUs, want 3", n)
	}
	if v := h.Counters.Value("pin.violated"); v != 0 {
		t.Fatalf("pin violated %d times", v)
	}
	// Every pinned vCPU stayed where it was.
	for i, g := range guests {
		if g.v.pcpu == nil || g.v.pcpu.ID != i {
			t.Fatalf("guest %d displaced from its pin by the failed grow", i)
		}
	}
	checkInvariants(t, h)
}

// TestShrinkMicroDrainsStackedRunqueue: with a non-zero RunqLimit the micro
// pool can stack runnable vCPUs behind a running one; ShrinkMicro must send
// every resident home (keeping the migrate ledgers balanced), not strand or
// drop the queued ones.
func TestShrinkMicroDrainsStackedRunqueue(t *testing.T) {
	clock := simtime.NewClock()
	cfg := testConfig(4)
	cfg.MicroRunqLimit = 2
	h := New(clock, cfg)
	d := h.NewDomain("vm", nil)
	guests := make([]*computeGuest, 3)
	for i := range guests {
		guests[i] = newComputeGuest(h, d, 100*simtime.Millisecond)
	}
	h.Start()
	if got := h.SetMicroCount(1); got != 1 {
		t.Fatalf("SetMicroCount(1) achieved %d", got)
	}
	// Stack the single micro pCPU: one dispatched, two queued at the limit.
	for i, g := range guests {
		if !h.MigrateToMicro(g.v) {
			t.Fatalf("MigrateToMicro of guest %d refused", i)
		}
	}
	mp := h.micro.pcpus[0]
	if mp.cur == nil || len(mp.runq) != 2 {
		t.Fatalf("micro pCPU not stacked: cur=%v runq=%d", mp.cur, len(mp.runq))
	}
	extra := newComputeGuest(h, d, 100*simtime.Millisecond)
	h.Wake(extra.v, false)
	if h.MigrateToMicro(extra.v) {
		t.Fatal("MigrateToMicro succeeded past the runqueue limit")
	}

	if !h.ShrinkMicro() {
		t.Fatal("ShrinkMicro refused")
	}
	if n := len(h.micro.pcpus); n != 0 {
		t.Fatalf("micro pool has %d pCPUs after shrink, want 0", n)
	}
	for i, g := range guests {
		if g.v.pool != h.normal {
			t.Fatalf("guest %d still in micro pool after shrink", i)
		}
	}
	if micro, home := h.Counters.Value("migrate.micro"), h.Counters.Value("migrate.home"); micro != 3 || home != 3 {
		t.Fatalf("migrate ledger unbalanced after shrink: micro=%d home=%d, want 3/3", micro, home)
	}
	checkInvariants(t, h)
	// The system still makes progress afterwards.
	clock.RunUntil(simtime.Second)
	for i, g := range guests {
		if !g.done {
			t.Fatalf("guest %d never completed after shrink", i)
		}
	}
}

// TestPoolResizeMidWarmup: growing and shrinking the micro pool while a
// dispatch warmup (context-switch + cold-cache charge) is still in flight
// must cancel the warmup cleanly — no stranded vCPU, no double dispatch —
// and the preempted guests must still run to completion.
func TestPoolResizeMidWarmup(t *testing.T) {
	clock, h := setup(3)
	d := h.NewDomain("vm", nil)
	guests := make([]*computeGuest, 3)
	for i := range guests {
		guests[i] = newComputeGuest(h, d, 5*simtime.Millisecond)
	}
	h.Start()
	for _, g := range guests {
		h.Wake(g.v, false)
	}
	// Cold dispatch warmup lasts CtxSwitchCost+ColdCacheCost (16.5us by
	// default); 8us in is mid-warmup on every pCPU.
	clock.RunUntil(8 * simtime.Microsecond)
	warming := 0
	for _, g := range guests {
		if g.v.warmupEv != nil {
			warming++
		}
	}
	if warming == 0 {
		t.Fatal("no dispatch warmup in flight at 8us; test premise broken")
	}

	if got := h.SetMicroCount(2); got != 2 {
		t.Fatalf("SetMicroCount(2) achieved %d", got)
	}
	checkInvariants(t, h)
	if got := h.SetMicroCount(0); got != 0 {
		t.Fatalf("SetMicroCount(0) achieved %d", got)
	}
	checkInvariants(t, h)

	clock.RunUntil(simtime.Second)
	for i, g := range guests {
		if !g.done {
			t.Fatalf("guest %d never completed after mid-warmup resizes", i)
		}
	}
	checkInvariants(t, h)
}

package guest

import (
	"testing"

	"github.com/microslicedcore/microsliced/internal/hv"
	"github.com/microslicedcore/microsliced/internal/ksym"
	"github.com/microslicedcore/microsliced/internal/simtime"
)

func boot(t *testing.T, pcpus, vcpus int) (*simtime.Clock, *hv.Hypervisor, *Kernel) {
	t.Helper()
	clock := simtime.NewClock()
	cfg := hv.DefaultConfig()
	cfg.PCPUs = pcpus
	h := hv.New(clock, cfg)
	k := NewKernel(h, "vm", vcpus, ksym.Generate(1), DefaultParams())
	return clock, h, k
}

// seqProg replays a fixed op list, then exits.
type seqProg struct {
	ops []Op
	i   int
}

func (p *seqProg) Next(now simtime.Time) Op {
	if p.i >= len(p.ops) {
		return Op{Kind: OpExit}
	}
	op := p.ops[p.i]
	p.i++
	return op
}

// loopProg repeats one op forever.
type loopProg struct{ op Op }

func (p *loopProg) Next(now simtime.Time) Op { return p.op }

func TestComputeThreadRunsAndExits(t *testing.T) {
	clock, h, k := boot(t, 1, 1)
	var exited *Thread
	k.OnThreadExit = func(th *Thread) { exited = th }
	th := k.NewThread(0, "worker", &seqProg{ops: []Op{
		{Kind: OpCompute, Dur: 2 * simtime.Millisecond},
		{Kind: OpCompute, Dur: 3 * simtime.Millisecond},
	}})
	h.Start()
	k.StartAll()
	clock.RunUntil(simtime.Second)
	if th.State() != ThreadDone {
		t.Fatalf("thread state %v", th.State())
	}
	if exited != th {
		t.Fatal("exit hook not fired")
	}
	// 5ms of work + one context switch; vCPU then halts.
	if got := th.vc.hvv.RanTotal(); got != 5*simtime.Millisecond {
		t.Fatalf("ranTotal=%v, want 5ms", got)
	}
	if th.vc.hvv.State() != hv.StateBlocked {
		t.Fatal("vCPU should halt after all threads exit")
	}
}

func TestUncontendedLockIsFastPath(t *testing.T) {
	clock, h, k := boot(t, 1, 1)
	l := k.Lock("zone", "Page allocator", "get_page_from_freelist")
	th := k.NewThread(0, "alloc", &seqProg{ops: []Op{
		{Kind: OpLock, Lock: l, Dur: 2 * simtime.Microsecond},
	}})
	h.Start()
	k.StartAll()
	clock.RunUntil(simtime.Second)
	if th.State() != ThreadDone {
		t.Fatalf("state %v", th.State())
	}
	if l.Acquisitions != 1 || l.Contended != 0 {
		t.Fatalf("acq=%d contended=%d", l.Acquisitions, l.Contended)
	}
	hist := k.LockStat["Page allocator"]
	if hist.Count() != 0 {
		t.Fatalf("fast path must not record a wait: %s", hist)
	}
	if l.Holder() != nil {
		t.Fatal("lock not released")
	}
}

func TestContendedLockFIFOGrant(t *testing.T) {
	clock, h, k := boot(t, 3, 3)
	l := k.Lock("rq", "Runqueue", "enqueue_task_fair")
	mk := func(vc int, name string) *Thread {
		return k.NewThread(vc, name, &seqProg{ops: []Op{
			{Kind: OpLock, Lock: l, Dur: 100 * simtime.Microsecond},
		}})
	}
	a, b, c := mk(0, "a"), mk(1, "b"), mk(2, "c")
	h.Start()
	k.StartAll()
	clock.RunUntil(simtime.Second)
	for _, th := range []*Thread{a, b, c} {
		if th.State() != ThreadDone {
			t.Fatalf("%s state %v", th.Name, th.State())
		}
	}
	if l.Acquisitions != 3 {
		t.Fatalf("acquisitions=%d", l.Acquisitions)
	}
	hist := k.LockStat["Runqueue"]
	if hist.Count() != 2 {
		t.Fatalf("lockstat count=%d, want 2 contended waits", hist.Count())
	}
	// Third acquirer waited for ~two 100us critical sections.
	if max := hist.Max(); max < 150000 || max > 300000 {
		t.Fatalf("max wait %dns, want ~200us", max)
	}
}

func TestLockHolderPreemptionCausesPLEYields(t *testing.T) {
	// One pCPU, two vCPUs in one VM plus a hog VM: the holder gets
	// preempted mid-CS and the waiter PLE-yields until the holder runs.
	clock := simtime.NewClock()
	cfg := hv.DefaultConfig()
	cfg.PCPUs = 1
	h := hv.New(clock, cfg)
	k := NewKernel(h, "vm", 2, ksym.Generate(1), DefaultParams())
	l := k.Lock("d", "Dentry", "__d_lookup")
	// Holder: long CS (5ms) so its 30ms slice can expire mid-CS when
	// contended... make CS long relative to PLE window but ensure holder
	// is descheduled while holding: we arrange that by the second VM
	// hogging and slice interleave. Simpler: holder acquires then the
	// waiter spins while holder is queued behind the hog.
	holder := k.NewThread(0, "holder", &loopProg{op: Op{Kind: OpLock, Lock: l, Dur: 3 * simtime.Millisecond}})
	waiter := k.NewThread(1, "waiter", &loopProg{op: Op{Kind: OpLock, Lock: l, Dur: 3 * simtime.Millisecond}})
	_ = holder
	_ = waiter
	h.Start()
	k.StartAll()
	clock.RunUntil(2 * simtime.Second)
	if h.Counters.Value("yield.ple") == 0 {
		t.Fatal("no PLE yields under lock-holder preemption")
	}
	if l.Acquisitions < 10 {
		t.Fatalf("lock made little progress: %d acquisitions", l.Acquisitions)
	}
	// Wait-time tail must reflect multi-millisecond holder absence.
	if k.LockStat["Dentry"].Max() < int64(simtime.Millisecond) {
		t.Fatalf("max dentry wait %dns — LHP not observed", k.LockStat["Dentry"].Max())
	}
}

func TestTLBShootdownSoloIsFast(t *testing.T) {
	// 4 vCPUs on 4 pCPUs: all recipients run, acks come back in ~us.
	clock, h, k := boot(t, 4, 4)
	init := k.NewThread(0, "init", &seqProg{ops: []Op{
		{Kind: OpTLBFlush},
	}})
	// Keep the sibling vCPUs alive with compute so they are shootdown
	// targets.
	for i := 1; i < 4; i++ {
		k.NewThread(i, "spinny", &loopProg{op: Op{Kind: OpCompute, Dur: simtime.Millisecond}})
	}
	h.Start()
	k.StartAll()
	clock.RunUntil(simtime.Second)
	if init.State() != ThreadDone {
		t.Fatalf("initiator state %v", init.State())
	}
	if k.TLBStat.Count() != 1 {
		t.Fatalf("tlb stat count=%d", k.TLBStat.Count())
	}
	lat := k.TLBStat.Max()
	if lat <= 0 || lat > int64(100*simtime.Microsecond) {
		t.Fatalf("solo shootdown latency %dns, want < 100us", lat)
	}
	if h.Counters.Value("vipi.sent") != 3 {
		t.Fatalf("vipi.sent=%d, want 3", h.Counters.Value("vipi.sent"))
	}
}

func TestTLBShootdownNoSiblingsIsInstant(t *testing.T) {
	clock, h, k := boot(t, 1, 1)
	init := k.NewThread(0, "init", &seqProg{ops: []Op{{Kind: OpTLBFlush}}})
	h.Start()
	k.StartAll()
	clock.RunUntil(simtime.Second)
	if init.State() != ThreadDone {
		t.Fatal("initiator stuck")
	}
	if k.TLBStat.Count() != 1 || k.TLBStat.Max() != 0 {
		t.Fatalf("stat %s", k.TLBStat)
	}
}

func TestTLBShootdownYieldRescuesSiblingOnSamePCPU(t *testing.T) {
	// 1 pCPU, VM with 2 vCPUs: the recipient is runnable-but-preempted on
	// the *initiator's* pCPU, so the initiator's voluntary yield hands the
	// pCPU over and the shootdown completes after one spin window.
	clock := simtime.NewClock()
	cfg := hv.DefaultConfig()
	cfg.PCPUs = 1
	h := hv.New(clock, cfg)
	k := NewKernel(h, "vm", 2, ksym.Generate(1), DefaultParams())
	init := k.NewThread(0, "init", &seqProg{ops: []Op{
		{Kind: OpCompute, Dur: simtime.Millisecond},
		{Kind: OpTLBFlush},
	}})
	k.NewThread(1, "sib", &loopProg{op: Op{Kind: OpCompute, Dur: simtime.Millisecond}})
	h.Start()
	k.StartAll()
	clock.RunUntil(simtime.Second)
	if init.State() != ThreadDone {
		t.Fatalf("initiator state %v", init.State())
	}
	if h.Counters.Value("yield.ipi") == 0 {
		t.Fatal("no IPI-wait yields despite preempted recipient")
	}
	if k.TLBStat.Count() != 1 {
		t.Fatalf("tlb count=%d", k.TLBStat.Count())
	}
	lat := k.TLBStat.Max()
	if lat < int64(10*simtime.Microsecond) || lat > int64(simtime.Millisecond) {
		t.Fatalf("latency %dns — want one spin-window-scale rescue", lat)
	}
}

func TestTLBShootdownDelayedByCoRunnerVM(t *testing.T) {
	// The paper's co-run shape: the recipient sibling is preempted on
	// *another* pCPU behind a co-runner VM's vCPU, so the initiator's own
	// yield cannot help and completion waits for a scheduling turn.
	clock := simtime.NewClock()
	cfg := hv.DefaultConfig()
	cfg.PCPUs = 2
	h := hv.New(clock, cfg)
	k := NewKernel(h, "vm", 2, ksym.Generate(1), DefaultParams())
	hog := NewKernel(h, "hog", 3, ksym.Generate(2), DefaultParams())
	init := k.NewThread(0, "init", &flushLoopProg{compute: 5 * simtime.Millisecond})
	k.NewThread(1, "sib", &loopProg{op: Op{Kind: OpCompute, Dur: simtime.Millisecond}})
	for i := 0; i < 3; i++ {
		hog.NewThread(i, "hog", &loopProg{op: Op{Kind: OpCompute, Dur: simtime.Millisecond}})
	}
	h.Start()
	k.StartAll()
	hog.StartAll()
	clock.RunUntil(4 * simtime.Second)
	if init.OpsDone < 10 {
		t.Fatalf("initiator made no progress: %d ops", init.OpsDone)
	}
	if h.Counters.Value("yield.ipi") == 0 {
		t.Fatal("no IPI-wait yields despite co-runner contention")
	}
	if lat := k.TLBStat.Max(); lat < int64(2*simtime.Millisecond) {
		t.Fatalf("max latency %dns — expected multi-ms VTD delay behind the co-runner", lat)
	}
}

// flushLoopProg alternates a compute burst with a TLB flush, forever.
type flushLoopProg struct {
	compute simtime.Duration
	i       int
}

func (p *flushLoopProg) Next(now simtime.Time) Op {
	p.i++
	if p.i%2 == 1 {
		return Op{Kind: OpCompute, Dur: p.compute}
	}
	return Op{Kind: OpTLBFlush}
}

func TestSleepAndTimerWake(t *testing.T) {
	clock, h, k := boot(t, 1, 1)
	th := k.NewThread(0, "sleeper", &seqProg{ops: []Op{
		{Kind: OpSleep, Dur: 5 * simtime.Millisecond},
		{Kind: OpCompute, Dur: simtime.Millisecond},
	}})
	h.Start()
	k.StartAll()
	clock.RunUntil(3 * simtime.Millisecond)
	if th.State() != ThreadSleeping {
		t.Fatalf("state %v at 3ms", th.State())
	}
	if th.vc.hvv.State() != hv.StateBlocked {
		t.Fatal("vCPU should halt while its only thread sleeps")
	}
	clock.RunUntil(simtime.Second)
	if th.State() != ThreadDone {
		t.Fatalf("state %v", th.State())
	}
}

func TestCrossVCPUWakeUsesReschedIPI(t *testing.T) {
	clock, h, k := boot(t, 2, 2)
	sleeper := k.NewThread(1, "sleeper", &seqProg{ops: []Op{
		{Kind: OpSleep, Dur: simtime.Second * 100}, // effectively forever
		{Kind: OpCompute, Dur: simtime.Microsecond},
	}})
	k.NewThread(0, "waker", &seqProg{ops: []Op{
		{Kind: OpCompute, Dur: simtime.Millisecond},
		{Kind: OpWake, Dur: 700 * simtime.Nanosecond, Target: sleeper},
		{Kind: OpCompute, Dur: simtime.Millisecond},
	}})
	h.Start()
	k.StartAll()
	clock.RunUntil(50 * simtime.Millisecond)
	if sleeper.State() != ThreadSleeping && sleeper.State() != ThreadDone {
		// The wake must have moved it out of sleeping.
		t.Logf("sleeper state %v", sleeper.State())
	}
	if h.Counters.Value("vipi.sent") == 0 {
		t.Fatal("cross-vCPU wake did not send a resched IPI")
	}
	clock.RunUntil(simtime.Second)
	// The "forever" sleep was cut short by the wake: compute op ran.
	if sleeper.OpsDone == 0 {
		t.Fatal("woken thread never progressed")
	}
}

func TestGuestRoundRobinSharesVCPU(t *testing.T) {
	clock, h, k := boot(t, 1, 1)
	a := k.NewThread(0, "a", &loopProg{op: Op{Kind: OpCompute, Dur: simtime.Millisecond}})
	b := k.NewThread(0, "b", &loopProg{op: Op{Kind: OpCompute, Dur: simtime.Millisecond}})
	h.Start()
	k.StartAll()
	clock.RunUntil(200 * simtime.Millisecond)
	if a.OpsDone == 0 || b.OpsDone == 0 {
		t.Fatalf("ops a=%d b=%d — guest scheduler starved a thread", a.OpsDone, b.OpsDone)
	}
	ratio := float64(a.OpsDone) / float64(b.OpsDone)
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("unfair guest sharing: a=%d b=%d", a.OpsDone, b.OpsDone)
	}
}

// fakeNIC queues packets and counts transmissions.
type fakeNIC struct {
	ring []Packet
	tx   int
}

func (n *fakeNIC) Fetch(max int) []Packet {
	if len(n.ring) <= max {
		out := n.ring
		n.ring = nil
		return out
	}
	out := n.ring[:max]
	n.ring = n.ring[max:]
	return out
}

func (n *fakeNIC) Transmit(bytes int, now simtime.Time) { n.tx++ }

func TestNetIRQDeliversToSocketAndWakesReceiver(t *testing.T) {
	clock, h, k := boot(t, 1, 1)
	nic := &fakeNIC{}
	k.AttachNIC(nic)
	sock := k.NewSocket(0)
	var consumed []Packet
	var consumedAt []simtime.Time
	sock.OnAppConsume = func(p Packet, now simtime.Time) {
		consumed = append(consumed, p)
		consumedAt = append(consumedAt, now)
	}
	k.NewThread(0, "server", &loopProg{op: Op{Kind: OpRecv, Sock: sock}})
	h.Start()
	k.StartAll()
	clock.RunUntil(simtime.Millisecond) // server blocks on empty socket
	// Inject 3 packets and raise the IRQ.
	for i := 0; i < 3; i++ {
		nic.ring = append(nic.ring, Packet{Seq: uint64(i), Flow: 0, Bytes: 1500, SentAt: clock.Now()})
	}
	h.InjectPIRQ(k.Dom, hv.VecNet, 0)
	clock.RunUntil(2 * simtime.Millisecond)
	if len(consumed) != 3 {
		t.Fatalf("consumed %d packets, want 3", len(consumed))
	}
	for i, p := range consumed {
		if p.Seq != uint64(i) {
			t.Fatalf("out-of-order consume: %v", consumed)
		}
	}
	if sock.Delivered != 3 || sock.Consumed != 3 {
		t.Fatalf("delivered=%d consumed=%d", sock.Delivered, sock.Consumed)
	}
	// Latency from IRQ to first consume: pirq cost + irq + softirq + consume,
	// all well under 100us on an idle machine.
	if consumedAt[0] > simtime.Millisecond+100*simtime.Microsecond {
		t.Fatalf("first consume at %v — I/O path too slow on idle vCPU", consumedAt[0])
	}
}

func TestSendTransmitsOnNIC(t *testing.T) {
	clock, h, k := boot(t, 1, 1)
	nic := &fakeNIC{}
	k.AttachNIC(nic)
	k.NewThread(0, "tx", &seqProg{ops: []Op{
		{Kind: OpSend, Dur: simtime.Microsecond, Bytes: 1500},
		{Kind: OpSend, Dur: simtime.Microsecond, Bytes: 1500},
	}})
	h.Start()
	k.StartAll()
	clock.RunUntil(simtime.Second)
	if nic.tx != 2 {
		t.Fatalf("tx=%d", nic.tx)
	}
}

func TestMixedVCPUWakeupPreemption(t *testing.T) {
	// lookbusy-style hog and an I/O thread share one vCPU: a packet must
	// preempt the hog promptly once the vCPU itself is running.
	clock, h, k := boot(t, 1, 1)
	nic := &fakeNIC{}
	k.AttachNIC(nic)
	sock := k.NewSocket(0)
	var consumedAt simtime.Time
	sock.OnAppConsume = func(p Packet, now simtime.Time) { consumedAt = now }
	k.NewThread(0, "iperf", &loopProg{op: Op{Kind: OpRecv, Sock: sock}})
	k.NewThread(0, "lookbusy", &loopProg{op: Op{Kind: OpCompute, Dur: simtime.Millisecond}})
	h.Start()
	k.StartAll()
	clock.RunUntil(10 * simtime.Millisecond)
	nic.ring = append(nic.ring, Packet{Seq: 1, Flow: 0, Bytes: 1500, SentAt: clock.Now()})
	injectAt := clock.Now()
	h.InjectPIRQ(k.Dom, hv.VecNet, 0)
	clock.RunUntil(injectAt + 5*simtime.Millisecond)
	if consumedAt == 0 {
		t.Fatal("packet never consumed")
	}
	// The vCPU is running (hog), so the IRQ lands immediately and wakeup
	// preemption runs the iperf thread within ~the hog's current 1ms op.
	if consumedAt-injectAt > 1500*simtime.Microsecond {
		t.Fatalf("consume latency %v — wakeup preemption failed", consumedAt-injectAt)
	}
}

func TestRIPTracksActivities(t *testing.T) {
	clock, h, k := boot(t, 1, 1)
	l := k.Lock("z", "Page allocator", "get_page_from_freelist")
	k.NewThread(0, "w", &loopProg{op: Op{Kind: OpLock, Lock: l, Dur: simtime.Millisecond}})
	h.Start()
	k.StartAll()
	clock.RunUntil(5 * simtime.Millisecond)
	vc := k.VCPUs[0]
	// Mid-CS: RIP must resolve to the CS body.
	if name := k.Sym.NameOf(vc.RIP()); name != "get_page_from_freelist" {
		t.Fatalf("RIP resolves to %q mid-CS", name)
	}
	if cls := k.Sym.ClassifyAddr(vc.RIP()); cls != ksym.ClassSpinlock {
		t.Fatalf("class %v", cls)
	}
}

func TestIdleVCPURIPIsHalt(t *testing.T) {
	clock, h, k := boot(t, 1, 1)
	k.NewThread(0, "w", &seqProg{ops: []Op{{Kind: OpCompute, Dur: simtime.Millisecond}}})
	h.Start()
	k.StartAll()
	clock.RunUntil(simtime.Second)
	if name := k.Sym.NameOf(k.VCPUs[0].RIP()); name != "native_safe_halt" {
		t.Fatalf("idle RIP resolves to %q", name)
	}
}

func TestLiveVCPUs(t *testing.T) {
	clock, h, k := boot(t, 2, 2)
	k.NewThread(0, "w", &seqProg{ops: []Op{{Kind: OpCompute, Dur: simtime.Millisecond}}})
	if n := len(k.LiveVCPUs()); n != 1 {
		t.Fatalf("live=%d, want 1 (only vCPU0 has threads)", n)
	}
	h.Start()
	k.StartAll()
	clock.RunUntil(simtime.Second)
	if n := len(k.LiveVCPUs()); n != 0 {
		t.Fatalf("live=%d after exit", n)
	}
}

func TestDoneThreadsCount(t *testing.T) {
	clock, h, k := boot(t, 1, 1)
	k.NewThread(0, "a", &seqProg{ops: []Op{{Kind: OpCompute, Dur: simtime.Millisecond}}})
	k.NewThread(0, "b", &loopProg{op: Op{Kind: OpCompute, Dur: simtime.Millisecond}})
	h.Start()
	k.StartAll()
	clock.RunUntil(simtime.Second)
	if k.DoneThreads() != 1 {
		t.Fatalf("done=%d", k.DoneThreads())
	}
}

func TestSymbolMapAttachedToDomain(t *testing.T) {
	_, _, k := boot(t, 1, 1)
	if len(k.Dom.SymbolMap) == 0 {
		t.Fatal("domain has no System.map blob")
	}
}

func TestStringers(t *testing.T) {
	states := []ThreadState{ThreadReady, ThreadRunning, ThreadSleeping,
		ThreadBlockedIO, ThreadWaking, ThreadDone, ThreadState(42)}
	for _, s := range states {
		if s.String() == "" {
			t.Fatal("empty state string")
		}
	}
	kinds := []OpKind{OpCompute, OpKernel, OpLock, OpTLBFlush, OpSleep,
		OpRecv, OpSend, OpWake, OpExit, OpKind(42)}
	for _, kk := range kinds {
		if kk.String() == "" {
			t.Fatal("empty op kind string")
		}
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (uint64, uint64, simtime.Time) {
		clock := simtime.NewClock()
		cfg := hv.DefaultConfig()
		cfg.PCPUs = 2
		h := hv.New(clock, cfg)
		k := NewKernel(h, "vm", 4, ksym.Generate(3), DefaultParams())
		l := k.Lock("z", "Page allocator", "get_page_from_freelist")
		for i := 0; i < 4; i++ {
			k.NewThread(i, "w", &loopProg{op: Op{Kind: OpLock, Lock: l, Dur: 50 * simtime.Microsecond}})
		}
		h.Start()
		k.StartAll()
		clock.RunUntil(500 * simtime.Millisecond)
		return h.Counters.Value("yield.total"), l.Acquisitions, clock.Now()
	}
	y1, a1, _ := run()
	y2, a2, _ := run()
	if y1 != y2 || a1 != a2 {
		t.Fatalf("nondeterministic: yields %d/%d acquisitions %d/%d", y1, y2, a1, a2)
	}
}

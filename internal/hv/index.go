package hv

import "fmt"

// VerifySchedIndex cross-validates the scheduler's derived occupancy index —
// pool slot numbering, the occ/busy/parked bitmasks, each pCPU's cached head
// priority, and the parked-tick bookkeeping — against the ground truth
// (runqueue slices and current vCPUs). It returns the first inconsistency
// found, or nil.
//
// The index is maintained incrementally on every enqueue/dequeue/dispatch/
// deschedule and rebuilt on pool membership changes; there is no fallback
// path, so a drifted index silently changes scheduling decisions. The
// conformance harness runs this after every scenario and the invariant
// auditor on every walk.
func (h *Hypervisor) VerifySchedIndex() error {
	for _, pl := range []*Pool{h.normal, h.micro} {
		if len(pl.pcpus) > MaxPCPUs {
			return fmt.Errorf("hv: pool %s holds %d pCPUs, above the %d-slot index limit", pl.Name, len(pl.pcpus), MaxPCPUs)
		}
		member := pl.memberMask()
		if bad := pl.occ &^ member; bad != 0 {
			return fmt.Errorf("hv: pool %s occ mask %#x has bits outside members %#x", pl.Name, pl.occ, member)
		}
		if bad := pl.busyMask &^ member; bad != 0 {
			return fmt.Errorf("hv: pool %s busy mask %#x has bits outside members %#x", pl.Name, pl.busyMask, member)
		}
		if bad := pl.parkedMask &^ member; bad != 0 {
			return fmt.Errorf("hv: pool %s parked mask %#x has bits outside members %#x", pl.Name, pl.parkedMask, member)
		}
		for i, p := range pl.pcpus {
			if p.slot != i {
				return fmt.Errorf("hv: p%d at pool %s index %d has slot %d", p.ID, pl.Name, i, p.slot)
			}
			if p.pool != pl {
				return fmt.Errorf("hv: p%d in pool %s points at pool %s", p.ID, pl.Name, poolName(p.pool))
			}
			bit := uint64(1) << uint(i)
			if got, want := pl.occ&bit != 0, len(p.runq) > 0; got != want {
				return fmt.Errorf("hv: pool %s occ bit for p%d is %v, runqueue length %d", pl.Name, p.ID, got, len(p.runq))
			}
			if got, want := pl.busyMask&bit != 0, p.cur != nil; got != want {
				return fmt.Errorf("hv: pool %s busy bit for p%d is %v, current %v", pl.Name, p.ID, got, p.cur)
			}
			if got, want := pl.parkedMask&bit != 0, p.parked; got != want {
				return fmt.Errorf("hv: pool %s parked bit for p%d is %v, parked flag %v", pl.Name, p.ID, got, want)
			}
			wantHead := PrioIdle
			if len(p.runq) > 0 {
				wantHead = p.runq[0].prio
			}
			if p.headPrio != wantHead {
				return fmt.Errorf("hv: p%d cached head priority %v, runqueue head %v", p.ID, p.headPrio, wantHead)
			}
		}
	}
	for _, p := range h.pcpus {
		if p.offline {
			if p.slot != -1 {
				return fmt.Errorf("hv: offline p%d keeps pool slot %d", p.ID, p.slot)
			}
			continue
		}
		if p.pool == nil {
			return fmt.Errorf("hv: online p%d belongs to no pool", p.ID)
		}
		// Tick liveness: once Start armed the ticks, an online pCPU either
		// has its tick armed or is parked — never both, never neither.
		// (VerifySchedIndex runs from its own clock events, so no tick
		// callback is mid-flight with its event transiently nil.)
		if h.started {
			if p.parked && p.tickEv != nil {
				return fmt.Errorf("hv: p%d parked with an armed tick", p.ID)
			}
			if !p.parked && p.tickEv == nil {
				return fmt.Errorf("hv: p%d neither parked nor tick-armed", p.ID)
			}
		}
	}
	return nil
}

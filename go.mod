module github.com/microslicedcore/microsliced

go 1.22

package experiment

import (
	"bytes"
	"strings"
	"testing"

	"github.com/microslicedcore/microsliced/internal/core"
	"github.com/microslicedcore/microsliced/internal/simtime"
)

// Short simulated durations keep the suite fast while preserving shapes.
const (
	quick = 500 * simtime.Millisecond
	med   = simtime.Second
)

func TestRunBasicScenario(t *testing.T) {
	res, err := Run(corunSetup("gmake", offConfig(), quick))
	if err != nil {
		t.Fatal(err)
	}
	if res.VM("gmake") == nil || res.VM("swaptions") == nil {
		t.Fatal("missing VM results")
	}
	if res.VM("gmake").Units == 0 || res.VM("swaptions").Units == 0 {
		t.Fatal("no progress recorded")
	}
	if res.VM("nope") != nil {
		t.Fatal("unknown VM should be nil")
	}
	if res.VM("gmake").RanTotal == 0 {
		t.Fatal("no CPU accounting")
	}
}

func TestRunUnknownAppFails(t *testing.T) {
	s := soloSetup("gmake", quick)
	s.VMs[0].App = "nope"
	if _, err := Run(s); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	run := func() uint64 {
		res, err := Run(corunSetup("exim", offConfig(), quick))
		if err != nil {
			t.Fatal(err)
		}
		return res.VM("exim").Units
	}
	if run() != run() {
		t.Fatal("scenario is not deterministic")
	}
}

func TestTable2ShapeCoRunExplodesYields(t *testing.T) {
	r, err := Table2(med)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows=%d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.CoRun < 3*row.Solo {
			t.Errorf("%s: co-run yields %d not >> solo %d", row.Workload, row.CoRun, row.Solo)
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Table 2") {
		t.Fatal("render missing title")
	}
}

func TestTable3ListsWhitelistWithHits(t *testing.T) {
	r, err := Table3(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 30 {
		t.Fatalf("whitelist rows=%d", len(r.Rows))
	}
	var hits uint64
	for _, row := range r.Rows {
		hits += row.Hits
	}
	if hits == 0 {
		t.Fatal("no critical symbols observed at runtime")
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "native_flush_tlb_others()") {
		t.Fatal("render missing whitelist entries")
	}
}

func TestTable4aShapeLockWaitsBlowUp(t *testing.T) {
	r, err := Table4a(med)
	if err != nil {
		t.Fatal(err)
	}
	blown := 0
	for _, row := range r.Rows {
		if row.SoloUs <= 0 {
			t.Errorf("%s: no solo contention measured", row.Component)
		}
		if row.CoRunUs > 20*row.SoloUs {
			blown++
		}
	}
	// The paper shows orders-of-magnitude blowups on all four classes;
	// require at least three at this short duration.
	if blown < 3 {
		t.Fatalf("only %d lock classes blew up in co-run: %+v", blown, r.Rows)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Dentry") {
		t.Fatal("render missing classes")
	}
}

func TestTable4bShapeTLBLatencyBlowsUp(t *testing.T) {
	r, err := Table4b(med)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows=%d", len(r.Rows))
	}
	get := func(app, cfg string) Table4bRow {
		for _, row := range r.Rows {
			if row.Workload == app && row.Config == cfg {
				return row
			}
		}
		t.Fatalf("row %s/%s missing", app, cfg)
		return Table4bRow{}
	}
	for _, app := range []string{"dedup", "vips"} {
		solo, co := get(app, "solo"), get(app, "co-run")
		if solo.AvgUs > 100 {
			t.Errorf("%s solo avg %.1fus too high", app, solo.AvgUs)
		}
		if co.AvgUs < 50*solo.AvgUs {
			t.Errorf("%s co-run avg %.1fus did not blow up vs solo %.1fus", app, co.AvgUs, solo.AvgUs)
		}
		if co.MaxUs < 1000 {
			t.Errorf("%s co-run max %.1fus lacks the multi-ms tail", app, co.MaxUs)
		}
	}
}

func TestTable4cShapeMixedIOSuffers(t *testing.T) {
	r, err := Table4c(med)
	if err != nil {
		t.Fatal(err)
	}
	if r.Solo.JitterMs > 0.1 || r.Solo.Loss > 0.01 {
		t.Fatalf("solo iperf unhealthy: %+v", r.Solo)
	}
	if r.Mixed.JitterMs < 0.5 {
		t.Fatalf("mixed jitter %.4fms, want ms-scale", r.Mixed.JitterMs)
	}
	if r.Mixed.Mbps > 0.85*r.Solo.Mbps {
		t.Fatalf("mixed throughput %.1f vs solo %.1f — no degradation", r.Mixed.Mbps, r.Solo.Mbps)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "mixed co-run") {
		t.Fatal("render incomplete")
	}
}

func TestSweepShapeGmake(t *testing.T) {
	s, err := Sweep("gmake", 2, med)
	if err != nil {
		t.Fatal(err)
	}
	if s.NormExecTime(1) >= 0.9 {
		t.Fatalf("one micro core did not accelerate gmake: %.2f", s.NormExecTime(1))
	}
	if s.CoNormExecTime(1) > 1.3 {
		t.Fatalf("swaptions cost too high: %.2f", s.CoNormExecTime(1))
	}
	if s.BestStatic() < 1 || s.BestStatic() > 2 {
		t.Fatalf("best static %d", s.BestStatic())
	}
	if s.ThroughputGain(1) <= 1 {
		t.Fatal("gain inconsistent with exec time")
	}
}

func TestFigure9ShapeMicroSlicedRescuesIO(t *testing.T) {
	r, err := Figure9(med)
	if err != nil {
		t.Fatal(err)
	}
	if r.MicroUDP.JitterMs > r.BaselineUDP.JitterMs/2 {
		t.Fatalf("jitter not fixed: %.4f -> %.4f", r.BaselineUDP.JitterMs, r.MicroUDP.JitterMs)
	}
	if r.MicroTCP.Mbps < r.BaselineTCP.Mbps*1.2 {
		t.Fatalf("TCP bandwidth not improved: %.1f -> %.1f", r.BaselineTCP.Mbps, r.MicroTCP.Mbps)
	}
	if r.MicroUDP.Loss > r.BaselineUDP.Loss/2 {
		t.Fatalf("UDP loss not fixed: %.3f -> %.3f", r.BaselineUDP.Loss, r.MicroUDP.Loss)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "u-sliced") {
		t.Fatal("render incomplete")
	}
}

func TestFigure8ShapeNoOverhead(t *testing.T) {
	base, err := Run(corunSetup("blackscholes", offConfig(), med))
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := Run(corunSetup("blackscholes", core.DefaultConfig(), med))
	if err != nil {
		t.Fatal(err)
	}
	norm := float64(base.VM("blackscholes").Units) / float64(dyn.VM("blackscholes").Units)
	if norm > 1.06 {
		t.Fatalf("dynamic mechanism costs %.1f%% on a user-level workload", (norm-1)*100)
	}
}

func TestRunIORejectsUnknownProto(t *testing.T) {
	if _, err := RunIO("sctp", false, offConfig(), quick); err == nil {
		t.Fatal("unknown proto accepted")
	}
}

func TestRendersProduceOutput(t *testing.T) {
	// Smoke-render every result type with tiny runs.
	var buf bytes.Buffer
	if r, err := Table2(quick); err != nil {
		t.Fatal(err)
	} else {
		r.Render(&buf)
	}
	f6 := &Figure6Result{Rows: []Figure6Row{{Workload: "x", StaticCores: 1, StaticGain: 2, DynamicGain: 1.9}}}
	f6.Render(&buf)
	f7 := &Figure7Result{Rows: []Figure7Row{{Workload: "x", Config: "B", Yields: YieldBreakdown{IPI: 1}}}}
	f7.Render(&buf)
	f8 := &Figure8Result{Rows: []Figure8Row{{Workload: "x", NormExecTime: 1.0}}}
	f8.Render(&buf)
	f4 := &Figure4Result{Sweeps: []*SweepResult{{Workload: "x", Points: []SweepPoint{{0, 100, 100}, {1, 120, 98}}}}}
	f4.Render(&buf)
	f5 := &Figure5Result{Sweeps: f4.Sweeps}
	f5.Render(&buf)
	if buf.Len() == 0 {
		t.Fatal("no output")
	}
}

func TestYieldBreakdownTotal(t *testing.T) {
	y := YieldBreakdown{IPI: 1, PLE: 2, Halt: 3, Other: 4}
	if y.Total() != 10 {
		t.Fatalf("total=%d", y.Total())
	}
}

func TestTable1ShapeRivals(t *testing.T) {
	r, err := Table1(med)
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string) Table1Row {
		for _, row := range r.Rows {
			if row.System == name {
				return row
			}
		}
		t.Fatalf("system %s missing", name)
		return Table1Row{}
	}
	vturbo, static := get("vturbo"), get("usliced-static")
	fixed, vtrs := get("fixed-usliced"), get("vtrs")
	// vTurbo helps I/O but not locks (paper Table 1 row semantics).
	if vturbo.MixedIOGain < 1.2 {
		t.Errorf("vturbo I/O gain %.2f", vturbo.MixedIOGain)
	}
	if vturbo.LockGain > 1.6 {
		// (Some run-to-run variation: reserving the turbo core perturbs
		// scheduling; the mechanism itself never touches locks.)
		t.Errorf("vturbo lock gain %.2f — it should not address locks", vturbo.LockGain)
	}
	// The paper's mechanism beats vturbo on locks and at least matches on I/O.
	if static.LockGain < vturbo.LockGain+0.5 {
		t.Errorf("usliced lock gain %.2f vs vturbo %.2f", static.LockGain, vturbo.LockGain)
	}
	if static.MixedIOGain < 1.2 {
		t.Errorf("usliced I/O gain %.2f", static.MixedIOGain)
	}
	// Global short slicing taxes the co-runner more than precise selection.
	if fixed.CoRunnerCost < static.CoRunnerCost {
		t.Errorf("fixed-usliced co-runner cost %.2f below usliced %.2f",
			fixed.CoRunnerCost, static.CoRunnerCost)
	}
	// All rivals help at least one symptom (they were published, after all).
	for _, row := range []Table1Row{fixed, vtrs} {
		if row.LockGain < 1.1 && row.TLBGain < 1.1 && row.MixedIOGain < 1.1 {
			t.Errorf("%s helped nothing: %+v", row.System, row)
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "vturbo") {
		t.Fatal("render incomplete")
	}
}

func TestExtensionUserCSShape(t *testing.T) {
	r, err := ExtensionUserCS(med)
	if err != nil {
		t.Fatal(err)
	}
	if r.UserDetections == 0 {
		t.Fatal("no user-region detections")
	}
	if r.WithUserCSGain <= r.KernelOnlyGain {
		t.Fatalf("user-region registration did not add gain: kernel-only %.2f, with user CS %.2f",
			r.KernelOnlyGain, r.WithUserCSGain)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "user regions") {
		t.Fatal("render incomplete")
	}
}

package obs

import (
	"math"
	"testing"

	"github.com/microslicedcore/microsliced/internal/simtime"
)

// TestStageAttributionAndConservation drives one ipi_deliver span through
// explicit stage marks and checks both the per-stage attribution and the
// conservation law: Σ stage durations == span duration, exactly.
func TestStageAttributionAndConservation(t *testing.T) {
	o := New(Config{})
	s := o.Begin(SpanIPIDeliver, 0, 1, 42, 100*us)
	o.Stage(s, IPIStageSend, 103*us)   // 3us on the wire
	o.Stage(s, IPIStageInject, 110*us) // 7us injecting
	o.End(s, 150*us)                   // 40us remainder -> pending (final stage)

	total, stages := o.SpanLedger(SpanIPIDeliver)
	if total != int64(50*us) {
		t.Fatalf("span total = %d, want 50us", total)
	}
	want := []int64{int64(3 * us), 0, int64(7 * us), int64(40 * us)}
	var sum int64
	for i, w := range want {
		if stages[i] != w {
			t.Errorf("stage %s = %d, want %d", StageNames(SpanIPIDeliver)[i], stages[i], w)
		}
		sum += stages[i]
	}
	if sum != total {
		t.Errorf("Σ stages = %d != span total %d", sum, total)
	}
	if h := o.StageHist(SpanIPIDeliver, IPIStageSend); h.Count() != 1 || h.Max() != int64(3*us) {
		t.Errorf("send stage hist count=%d max=%d, want 1 and 3us", h.Count(), h.Max())
	}
	if h := o.StageHist(SpanIPIDeliver, IPIStageRetry); h.Count() != 0 {
		t.Errorf("retry stage hist count=%d, want 0 (stage never hit)", h.Count())
	}

	sum2 := o.Summary(simtime.Second)
	sp := sum2.Span("ipi_deliver")
	if sp == nil || len(sp.Stages) != 4 {
		t.Fatalf("ipi_deliver stat = %+v, want 4 stages", sp)
	}
	var pct float64
	for _, st := range sp.Stages {
		pct += st.Share
	}
	if math.Abs(pct-100.0) > 1e-9 {
		t.Errorf("stage shares sum to %v, want 100.0", pct)
	}
	if sp.Blame != "pending" || sp.BlamePct != 80.0 {
		t.Errorf("blame = %s %.1f%%, want pending 80.0%%", sp.Blame, sp.BlamePct)
	}
}

// TestStageNoOps: the stage recorder must ignore the zero ref, closed refs
// and out-of-range stage indices rather than corrupting the ledger.
func TestStageNoOps(t *testing.T) {
	o := New(Config{})
	o.Stage(0, DiskStageQueue, 10*us) // zero ref

	s := o.Begin(SpanDiskIO, 0, -1, 512, 0)
	o.Stage(s, 99, 5*us) // out of range for disk_io
	o.Stage(s, -1, 5*us)
	o.End(s, 8*us)
	o.Stage(s, DiskStageQueue, 20*us) // closed ref

	total, stages := o.SpanLedger(SpanDiskIO)
	if total != int64(8*us) || stages[DiskStageQueue] != 0 || stages[DiskStageService] != int64(8*us) {
		t.Errorf("ledger total=%d stages=%v, want 8us all in service", total, stages)
	}
}

// TestSummaryOpenSpanAttribution is the regression test for the open-span
// read-out: a deliberately unclosed disk_io span must be attributed to its
// kind, not just counted in the aggregate.
func TestSummaryOpenSpanAttribution(t *testing.T) {
	o := New(Config{})
	s := o.Begin(SpanDiskIO, 0, -1, 512, 0)
	o.End(s, 2*us)
	leak := o.Begin(SpanDiskIO, 0, -1, 4096, 5*us) // never closed

	sum := o.Summary(100 * us)
	if sum.OpenSpans != 1 {
		t.Fatalf("OpenSpans = %d, want 1", sum.OpenSpans)
	}
	for _, sp := range sum.Spans {
		want := 0
		if sp.Kind == "disk_io" {
			want = 1
		}
		if sp.Open != want {
			t.Errorf("%s Open = %d, want %d", sp.Kind, sp.Open, want)
		}
	}
	byKind := o.OpenSpansByKind()
	open := 0
	for _, n := range byKind {
		open += n
	}
	if open != o.OpenSpanCount() || byKind[SpanDiskIO] != 1 {
		t.Errorf("OpenSpansByKind = %v (Σ=%d), want disk_io=1 matching OpenSpanCount=%d",
			byKind, open, o.OpenSpanCount())
	}

	// Closing the leak drains the per-kind attribution too.
	o.End(leak, 50*us)
	if sp := o.Summary(100 * us).Span("disk_io"); sp.Open != 0 {
		t.Errorf("disk_io Open = %d after close, want 0", sp.Open)
	}
}

// stageCycle is the canonical Begin → Stage → Stage → End sequence used by
// both the allocation proof and BenchmarkStageRecord.
func stageCycle(o *Observer, now simtime.Time) {
	s := o.Begin(SpanIPIDeliver, 0, 0, 0, now)
	o.Stage(s, IPIStageSend, now+us)
	o.Stage(s, IPIStageInject, now+2*us)
	o.End(s, now+3*us)
}

// TestStageRecordAllocFree proves stage recording adds zero allocations at
// steady state (after the span free list and stage histograms exist).
func TestStageRecordAllocFree(t *testing.T) {
	o := New(Config{})
	stageCycle(o, 0) // warm the free list and histogram buckets
	now := simtime.Time(0)
	allocs := testing.AllocsPerRun(1000, func() {
		now += 3 * us
		stageCycle(o, now)
	})
	if allocs != 0 {
		t.Errorf("stage record cycle allocates %v per op, want 0", allocs)
	}
}

// BenchmarkStageRecord measures the full attribution cycle: one span opened,
// two explicit stage marks, one close (which credits the final stage and
// feeds three histograms). Must report 0 allocs/op.
func BenchmarkStageRecord(b *testing.B) {
	o := New(Config{})
	stageCycle(o, 0)
	b.ReportAllocs()
	b.ResetTimer()
	now := simtime.Time(0)
	for i := 0; i < b.N; i++ {
		now += 3 * us
		stageCycle(o, now)
	}
}

// TestSharesPct pins the largest-remainder contract: shares are tenths of a
// percent and always sum to exactly 100.0 for any nonzero budget.
func TestSharesPct(t *testing.T) {
	cases := [][]int64{
		{1, 1, 1},          // 33.3/33.3/33.3 + leftover tenth
		{997, 2, 1},        // tiny stages must not round to a 99.9 total
		{1, 0, 0, 0},       // single stage takes all
		{7, 11, 13, 100003},
	}
	for _, totals := range cases {
		shares := sharesPct(totals)
		// Sum in integer tenths so float representation error cannot hide a
		// lost or double-counted tenth.
		var tenths int64
		for _, s := range shares {
			tenths += int64(math.Round(s * 10))
		}
		if tenths != 1000 {
			t.Errorf("sharesPct(%v) = %v sums to %d tenths, want exactly 1000", totals, shares, tenths)
		}
	}
	for _, s := range sharesPct([]int64{0, 0}) {
		if s != 0 {
			t.Errorf("all-zero budget produced share %v, want 0", s)
		}
	}
}

package obs

import (
	"github.com/microslicedcore/microsliced/internal/simtime"
)

// SpanKind types a latency span. Each kind maps one of the paper's
// end-to-end service paths onto an open/close pair at existing hook points.
type SpanKind uint8

// Span kinds.
const (
	// SpanWakeDispatch measures hv.Wake (Blocked→Runnable) to the next
	// hv dispatch of the same vCPU — the scheduling turnaround of a woken
	// critical service, the quantity the micro-sliced pool exists to bound.
	SpanWakeDispatch SpanKind = iota
	// SpanIPIDeliver measures hv.SendVIPI to the guest's OnInterrupt —
	// including fault retries, injection latency and time spent pending on
	// a runnable-but-preempted target (the VTD case).
	SpanIPIDeliver
	// SpanLockAcquire measures a guest lock's contended acquisition: the
	// failed fast path to the grant (spinning or sleeping inclusive).
	SpanLockAcquire
	// SpanDiskIO measures vdisk Submit to device completion (queueing plus
	// service, before the completion IRQ is even injected).
	SpanDiskIO
	// SpanNetRx measures NIC ring admission to application-level consume —
	// the full Figure 2 delivery chain.
	SpanNetRx
	// SpanRecover measures a recovery-supervisor starvation episode:
	// detection of a starved runnable vCPU to the walk that observes it
	// running again — the per-episode time-to-reconverge.
	SpanRecover
	// SpanRequest measures one open-loop serving request end-to-end: the
	// *intended* (Poisson-scheduled) arrival instant to the reply's
	// transmission. Opening at the intended arrival rather than any send
	// completion makes the measurement coordinated-omission-free; a request
	// tail-dropped at the full NIC ring cancels the span and is counted
	// against the SLO by the flow instead.
	SpanRequest
	numSpanKinds
)

var spanNames = [numSpanKinds]string{
	SpanWakeDispatch: "wake_dispatch",
	SpanIPIDeliver:   "ipi_deliver",
	SpanLockAcquire:  "lock_acquire",
	SpanDiskIO:       "disk_io",
	SpanNetRx:        "net_rx",
	SpanRecover:      "recover",
	SpanRequest:      "request",
}

// String names the span kind.
func (k SpanKind) String() string {
	if k < numSpanKinds {
		return spanNames[k]
	}
	return "span(?)"
}

// SpanKinds lists every kind name in declaration order.
func SpanKinds() []string {
	out := make([]string, numSpanKinds)
	copy(out, spanNames[:])
	return out
}

// SpanRef is a handle to an open span. The zero value means "no span", so a
// ref can be embedded in hot structs (PendingIRQ, disk requests, packets)
// at no cost when observation is off. Refs are valid until End or Cancel.
type SpanRef int32

// openSpan is one slot of the open-span table. mark and stages carry the
// causal attribution state: Stage calls credit [mark, now) to a stage and
// advance mark, and End credits the remainder to the kind's final stage, so
// the per-span stage sum always equals the span total (see stage.go).
type openSpan struct {
	kind   SpanKind
	live   bool
	dom    int16
	vcpu   int16
	arg    uint64
	start  simtime.Time
	mark   simtime.Time
	stages [maxStages]simtime.Duration
}

// spanTable is a free-listed slot pool: Begin reuses a freed slot when one
// exists and grows the table otherwise, so steady-state span traffic
// allocates nothing (the table high-water-marks at the maximum number of
// concurrently open spans).
type spanTable struct {
	slots []openSpan
	free  []int32

	// Lifetime ledger: begun == closed + cancelled + open at all times (the
	// span conservation law internal/check verifies after every run).
	begun     uint64
	closed    uint64
	cancelled uint64

	// openByKind breaks the open count down per kind, so a leaked span is
	// attributable: Σ openByKind == open() at all times (also a check law).
	openByKind [numSpanKinds]int
}

func (t *spanTable) open() int {
	return len(t.slots) - len(t.free)
}

// Begin opens a span of kind k attributed to (dom, vcpu) with a
// kind-specific payload arg, returning its ref. Allocation-free at steady
// state.
func (o *Observer) Begin(k SpanKind, dom, vcpu int16, arg uint64, now simtime.Time) SpanRef {
	t := &o.spans
	var idx int32
	if n := len(t.free); n > 0 {
		idx = t.free[n-1]
		t.free = t.free[:n-1]
	} else {
		t.slots = append(t.slots, openSpan{})
		idx = int32(len(t.slots) - 1)
	}
	s := &t.slots[idx]
	s.kind, s.live = k, true
	s.dom, s.vcpu, s.arg = dom, vcpu, arg
	s.start = now
	s.mark = now
	s.stages = [maxStages]simtime.Duration{}
	t.begun++
	t.openByKind[k]++
	return SpanRef(idx + 1)
}

// End closes ref at now, recording its latency into the kind's histogram
// and its stage decomposition into the per-(kind,stage) histograms and exact
// ledgers. The time since the last Stage mark is credited to the kind's
// final stage, so Σ stages == total for every closed span. A zero or
// already-closed ref is a no-op. Allocation-free at steady state.
func (o *Observer) End(ref SpanRef, now simtime.Time) {
	idx := int32(ref) - 1
	if idx < 0 || int(idx) >= len(o.spans.slots) {
		return
	}
	s := &o.spans.slots[idx]
	if !s.live {
		return
	}
	k := s.kind
	o.hists[k].Observe(int64(now - s.start))
	s.stages[spanFinalStage[k]] += now - s.mark
	o.spanTotal[k] += int64(now - s.start)
	for i := 0; i < len(spanStageNames[k]); i++ {
		if d := s.stages[i]; d != 0 {
			o.stageTotal[k][i] += int64(d)
			o.stageHists[k][i].Observe(int64(d))
		}
	}
	s.live = false
	o.spans.closed++
	o.spans.openByKind[k]--
	o.spans.free = append(o.spans.free, idx)
}

// Cancel discards ref without recording (e.g. a tail-dropped packet whose
// delivery span will never close). A zero or closed ref is a no-op.
func (o *Observer) Cancel(ref SpanRef) {
	idx := int32(ref) - 1
	if idx < 0 || int(idx) >= len(o.spans.slots) {
		return
	}
	s := &o.spans.slots[idx]
	if !s.live {
		return
	}
	s.live = false
	o.spans.cancelled++
	o.spans.openByKind[s.kind]--
	o.spans.free = append(o.spans.free, idx)
}

// SpanCounts reports the span lifetime ledger: how many spans were ever
// begun, ended into a histogram, and cancelled. begun always equals
// closed + cancelled + OpenSpanCount().
func (o *Observer) SpanCounts() (begun, closed, cancelled uint64) {
	return o.spans.begun, o.spans.closed, o.spans.cancelled
}

// OpenSpanCount returns the number of currently open spans.
func (o *Observer) OpenSpanCount() int { return o.spans.open() }

// OpenSpan describes one still-open span (flight-recorder snapshot).
type OpenSpan struct {
	Kind  string       `json:"kind"`
	Dom   int16        `json:"dom"`
	VCPU  int16        `json:"vcpu"`
	Arg   uint64       `json:"arg"`
	Start simtime.Time `json:"start_ns"`
}

// OpenSpans snapshots the open-span table (cold path).
func (o *Observer) OpenSpans() []OpenSpan {
	var out []OpenSpan
	for i := range o.spans.slots {
		s := &o.spans.slots[i]
		if !s.live {
			continue
		}
		out = append(out, OpenSpan{
			Kind: s.kind.String(), Dom: s.dom, VCPU: s.vcpu,
			Arg: s.arg, Start: s.start,
		})
	}
	return out
}

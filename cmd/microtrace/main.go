// Command microtrace runs a consolidation scenario with the trace ring
// enabled (the simulator's xentrace) and prints a per-vCPU scheduling
// analysis, a yield-RIP histogram resolved through each guest's
// System.map, and optionally the raw record tail.
//
//	microtrace -vms gmake,swaptions -mode off -seconds 1
//	microtrace -vms dedup,swaptions -mode static -cores 3 -raw 40
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"github.com/microslicedcore/microsliced/internal/core"
	"github.com/microslicedcore/microsliced/internal/guest"
	"github.com/microslicedcore/microsliced/internal/hv"
	"github.com/microslicedcore/microsliced/internal/ksym"
	"github.com/microslicedcore/microsliced/internal/simtime"
	"github.com/microslicedcore/microsliced/internal/trace"
	"github.com/microslicedcore/microsliced/internal/workload"
)

func main() {
	var (
		vms     = flag.String("vms", "gmake,swaptions", "comma-separated workloads, one VM each")
		mode    = flag.String("mode", "off", "off, static, dynamic")
		cores   = flag.Int("cores", 1, "micro cores for -mode static")
		seconds = flag.Float64("seconds", 1, "simulated seconds")
		pcpus   = flag.Int("pcpus", 12, "physical CPUs")
		vcpus   = flag.Int("vcpus", 12, "vCPUs per VM")
		ring    = flag.Int("ring", 1<<20, "trace ring capacity (records)")
		raw     = flag.Int("raw", 0, "also dump the last N raw records")
	)
	flag.Parse()

	clock := simtime.NewClock()
	cfg := hv.DefaultConfig()
	cfg.PCPUs = *pcpus
	cfg.TraceCapacity = *ring
	h := hv.New(clock, cfg)

	tabs := map[int16]*ksym.Table{}
	var kernels []*guest.Kernel
	for i, app := range strings.Split(*vms, ",") {
		app = strings.TrimSpace(app)
		sym := ksym.Generate(1000 + uint64(i))
		k := guest.NewKernel(h, fmt.Sprintf("%s-%d", app, i), *vcpus, sym, guest.DefaultParams())
		tabs[int16(k.Dom.ID)] = sym
		if _, err := workload.New(app, k, uint64(11*(i+1))); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		kernels = append(kernels, k)
	}

	cc := core.DefaultConfig()
	switch *mode {
	case "off":
		cc.Mode = core.ModeOff
	case "static":
		cc = core.StaticConfig(*cores)
	case "dynamic":
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(1)
	}
	ctrl, err := core.Attach(h, cc)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	h.Start()
	ctrl.Start()
	for i, k := range kernels {
		if i == 0 {
			k.StartAll()
		} else {
			k := k
			clock.At(simtime.Time(i)*7*simtime.Millisecond, k.StartAll)
		}
	}
	clock.RunUntil(simtime.Duration(*seconds * float64(simtime.Second)))

	recs := h.Trace.Records()
	trace.Analyze(recs).Render(os.Stdout)

	fmt.Println("\nyield RIPs (by symbol):")
	rips := trace.YieldRIPs(recs, func(dom int16, rip uint64) string {
		if tab := tabs[dom]; tab != nil {
			return fmt.Sprintf("dom%d:%s", dom, tab.NameOf(rip))
		}
		return "?"
	})
	names := make([]string, 0, len(rips))
	for n := range rips {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return rips[names[i]] > rips[names[j]] })
	for _, n := range names {
		fmt.Printf("   %-48s %d\n", n, rips[n])
	}

	if *raw > 0 {
		fmt.Printf("\nlast %d records:\n", *raw)
		start := len(recs) - *raw
		if start < 0 {
			start = 0
		}
		for _, r := range recs[start:] {
			fmt.Println(r)
		}
	}
}

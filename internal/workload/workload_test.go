package workload

import (
	"testing"

	"github.com/microslicedcore/microsliced/internal/guest"
	"github.com/microslicedcore/microsliced/internal/hv"
	"github.com/microslicedcore/microsliced/internal/ksym"
	"github.com/microslicedcore/microsliced/internal/simtime"
	"github.com/microslicedcore/microsliced/internal/vdisk"
)

func newVM(t *testing.T, pcpus, vcpus int) (*simtime.Clock, *hv.Hypervisor, *guest.Kernel) {
	t.Helper()
	clock := simtime.NewClock()
	cfg := hv.DefaultConfig()
	cfg.PCPUs = pcpus
	h := hv.New(clock, cfg)
	k := guest.NewKernel(h, "vm", vcpus, ksym.Generate(1), guest.DefaultParams())
	k.AttachDisk(vdisk.New(clock, 99))
	return clock, h, k
}

func TestCatalogComplete(t *testing.T) {
	want := []string{
		"blackscholes", "bodytrack", "bzip2", "dedup", "exim", "fileserver",
		"gmake", "lookbusy", "memclone", "perlbench", "psearchy", "raytrace",
		"sjeng", "streamcluster", "swaptions", "vips",
	}
	got := Catalog()
	if len(got) != len(want) {
		t.Fatalf("catalog %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("catalog %v, want %v", got, want)
		}
	}
}

func TestUnknownAppErrors(t *testing.T) {
	_, _, k := newVM(t, 2, 2)
	if _, err := New("notathing", k, 1); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestKnown(t *testing.T) {
	if Known("nope") {
		t.Fatal("Known accepted an unregistered app")
	}
	if !Known("exim") {
		t.Fatal("Known rejected a registered app")
	}
}

// mustNew is the test-local helper replacing the removed panicking
// constructor: constructor failures are now returned errors.
func mustNew(t *testing.T, name string, k *guest.Kernel, seed uint64) *App {
	t.Helper()
	a, err := New(name, k, seed)
	if err != nil {
		t.Fatalf("New(%q): %v", name, err)
	}
	return a
}

func TestEveryAppMakesProgressSolo(t *testing.T) {
	for _, name := range Catalog() {
		name := name
		t.Run(name, func(t *testing.T) {
			clock, h, k := newVM(t, 4, 4)
			app := mustNew(t, name, k, 42)
			h.Start()
			k.StartAll()
			clock.RunUntil(500 * simtime.Millisecond)
			if app.Units() == 0 {
				t.Fatalf("%s completed no work units", name)
			}
		})
	}
}

func TestDeterministicUnits(t *testing.T) {
	run := func() uint64 {
		clock, h, k := newVM(t, 4, 4)
		app := mustNew(t, "exim", k, 7)
		h.Start()
		k.StartAll()
		clock.RunUntil(500 * simtime.Millisecond)
		return app.Units()
	}
	a, b := run(), run()
	if a != b || a == 0 {
		t.Fatalf("nondeterministic units: %d vs %d", a, b)
	}
}

func TestSeedChangesSchedule(t *testing.T) {
	run := func(seed uint64) uint64 {
		clock, h, k := newVM(t, 2, 2)
		app := mustNew(t, "gmake", k, seed)
		h.Start()
		k.StartAll()
		clock.RunUntil(200 * simtime.Millisecond)
		return app.Units()
	}
	if run(1) == run(2) {
		t.Log("different seeds produced identical unit counts (possible but unlikely)")
	}
}

func TestSingleThreadedSpecUsesOneVCPU(t *testing.T) {
	clock, h, k := newVM(t, 4, 4)
	mustNew(t, "sjeng", k, 1)
	h.Start()
	k.StartAll()
	clock.RunUntil(200 * simtime.Millisecond)
	busy := 0
	for _, vc := range k.VCPUs {
		if vc.HV().RanTotal() > 0 {
			busy++
		}
	}
	if busy != 1 {
		t.Fatalf("sjeng used %d vCPUs, want 1", busy)
	}
}

func TestDedupGeneratesShootdowns(t *testing.T) {
	clock, h, k := newVM(t, 4, 4)
	mustNew(t, "dedup", k, 1)
	h.Start()
	k.StartAll()
	clock.RunUntil(300 * simtime.Millisecond)
	if k.TLBStat.Count() == 0 {
		t.Fatal("dedup issued no TLB shootdowns")
	}
}

func TestEximExercisesLocks(t *testing.T) {
	clock, h, k := newVM(t, 4, 4)
	mustNew(t, "exim", k, 1)
	h.Start()
	k.StartAll()
	clock.RunUntil(300 * simtime.Millisecond)
	for _, class := range []string{"Dentry", "Page allocator", "Runqueue"} {
		if k.LockStat[class] == nil || k.LockStat[class].Count() == 0 {
			t.Fatalf("exim never touched the %s locks", class)
		}
	}
}

func TestSwaptionsStaysInUserMode(t *testing.T) {
	clock, h, k := newVM(t, 2, 2)
	mustNew(t, "swaptions", k, 1)
	h.Start()
	k.StartAll()
	clock.RunUntil(300 * simtime.Millisecond)
	if h.Counters.Value("vipi.sent") != 0 {
		t.Fatal("swaptions sent IPIs")
	}
	if len(k.LockStat) != 0 {
		t.Fatalf("swaptions took kernel locks: %v", k.LockStat)
	}
}

func TestIperfServerCountsUnits(t *testing.T) {
	clock, h, k := newVM(t, 2, 1)
	app := Empty("iperf", k)
	sock := k.NewSocket(0)
	IperfServer(app, 0, sock)
	LookbusyThread(app, 0)
	h.Start()
	k.StartAll()
	clock.RunUntil(simtime.Millisecond)
	// Hand-deliver packets through a fake device path: directly into the
	// socket via the NIC-less deliver helper is internal, so use a tiny
	// in-test NetDevice instead.
	nic := &testNIC{}
	k.AttachNIC(nic)
	nic.ring = append(nic.ring, guest.Packet{Seq: 1, Flow: 0, Bytes: 1500, SentAt: clock.Now()})
	h.InjectPIRQ(k.Dom, hv.VecNet, 0)
	clock.RunUntil(clock.Now() + 10*simtime.Millisecond)
	if app.Units() != 1 {
		t.Fatalf("units=%d", app.Units())
	}
}

type testNIC struct{ ring []guest.Packet }

func (n *testNIC) Fetch(max int) []guest.Packet {
	out := n.ring
	n.ring = nil
	return out
}
func (n *testNIC) Transmit(bytes int, now simtime.Time) {}

func TestCoRunDegradesKernelBoundApps(t *testing.T) {
	// The paper's Table 2 premise: co-running swaptions slows the
	// kernel-bound app far more than a fair 2x.
	solo := func(name string) uint64 {
		clock, h, k := newVM(t, 12, 12)
		app := mustNew(t, name, k, 3)
		h.Start()
		k.StartAll()
		clock.RunUntil(simtime.Second)
		return app.Units()
	}
	corun := func(name string) uint64 {
		clock := simtime.NewClock()
		cfg := hv.DefaultConfig()
		h := hv.New(clock, cfg)
		k1 := guest.NewKernel(h, name, 12, ksym.Generate(1), guest.DefaultParams())
		k2 := guest.NewKernel(h, "swaptions", 12, ksym.Generate(2), guest.DefaultParams())
		app := mustNew(t, name, k1, 3)
		mustNew(t, "swaptions", k2, 4)
		h.Start()
		k1.StartAll()
		k2.StartAll()
		clock.RunUntil(simtime.Second)
		return app.Units()
	}
	// exim collapses well below its fair share; dedup loses at least its
	// fair share (its additional cost shows up as latency, Table 4b).
	limits := map[string]float64{"exim": 0.5, "dedup": 0.55}
	for name, limit := range limits {
		s, c := solo(name), corun(name)
		if c == 0 {
			t.Fatalf("%s made no progress in co-run", name)
		}
		if float64(c) > limit*float64(s) {
			t.Errorf("%s co-run %d vs solo %d — want <= %.2fx", name, c, s, limit)
		}
	}
}

func TestNeedsDisk(t *testing.T) {
	if !NeedsDisk("fileserver") {
		t.Fatal("fileserver must need a disk")
	}
	if NeedsDisk("exim") || NeedsDisk("nope") {
		t.Fatal("spurious disk requirement")
	}
}

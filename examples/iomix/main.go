// I/O mix: the paper's Figure 9 scenario. An iPerf server shares its only
// vCPU with a lookbusy hog, and that vCPU shares a pCPU with a second
// hog VM. The mixed vCPU is always runnable, so Xen's BOOST never fires
// and incoming packets wait out entire 30ms slices — until the
// micro-sliced mechanism migrates the vCPU at vIRQ-relay time.
//
//	go run ./examples/iomix
package main

import (
	"fmt"
	"log"

	microsliced "github.com/microslicedcore/microsliced"
)

func measure(proto string, mixed bool, mode microsliced.Mode) *microsliced.IPerfResult {
	r, err := microsliced.SimulateIPerf(proto, mixed, mode, 1, 2)
	if err != nil {
		log.Fatal(err)
	}
	return r
}

func main() {
	fmt.Println("iPerf over a 1 Gbit link, 2s simulated")
	fmt.Printf("%-26s %12s %12s %10s\n", "configuration", "Mbit/s", "jitter(ms)", "loss")

	solo := measure("udp", false, microsliced.Off)
	fmt.Printf("%-26s %12.1f %12.4f %9.1f%%\n", "udp solo", solo.Mbps, solo.JitterMs, solo.Loss*100)

	mixed := measure("udp", true, microsliced.Off)
	fmt.Printf("%-26s %12.1f %12.4f %9.1f%%\n", "udp mixed (baseline)", mixed.Mbps, mixed.JitterMs, mixed.Loss*100)

	fixed := measure("udp", true, microsliced.Static)
	fmt.Printf("%-26s %12.1f %12.4f %9.1f%%\n", "udp mixed (u-sliced)", fixed.Mbps, fixed.JitterMs, fixed.Loss*100)

	tcpBase := measure("tcp", true, microsliced.Off)
	tcpFix := measure("tcp", true, microsliced.Static)
	fmt.Printf("%-26s %12.1f %12s %10s\n", "tcp mixed (baseline)", tcpBase.Mbps, "-", "-")
	fmt.Printf("%-26s %12.1f %12s %10s\n", "tcp mixed (u-sliced)", tcpFix.Mbps, "-", "-")

	fmt.Println("\nBOOST cannot help a runnable vCPU; relaying the vIRQ to the")
	fmt.Println("micro pool restores line rate and collapses jitter, exactly as")
	fmt.Println("in the paper's Figure 9.")
}

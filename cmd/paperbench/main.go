// Command paperbench regenerates every table and figure of the paper's
// evaluation on the simulated testbed and prints them as text tables.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/microslicedcore/microsliced/internal/check"
	"github.com/microslicedcore/microsliced/internal/core"
	"github.com/microslicedcore/microsliced/internal/experiment"
	"github.com/microslicedcore/microsliced/internal/obs"
	"github.com/microslicedcore/microsliced/internal/report"
	"github.com/microslicedcore/microsliced/internal/simtime"
)

func main() {
	var (
		runs     = flag.String("run", "all", "comma-separated experiments: table1,table2,table3,table4a,table4b,table4c,fig4,fig5,fig6,fig7,fig8,fig9,ext-usercs,faultsweep,recoverysweep,serve or 'all'")
		secs     = flag.Float64("seconds", 3, "simulated seconds per run")
		par      = flag.Int("parallel", 0, "scenario workers (0 = GOMAXPROCS, 1 = serial)")
		prof     = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprof  = flag.String("memprofile", "", "write an allocation profile to this file at exit")
		faults   = flag.Bool("faults", false, "also run the fault-injection sweep (shorthand for adding faultsweep to -run)")
		recov    = flag.Bool("recovery", false, "also run the recovery sweep: harsh faults, supervisor on, MTTR percentiles (shorthand for adding recoverysweep to -run)")
		serve    = flag.Bool("serve", false, "also run the serving sweep: open-loop RPC under co-run, goodput-under-SLO and tail latency per mechanism (shorthand for adding serve to -run)")
		serveOut = flag.String("serve-out", "", "write the serving sweep result as JSON to this file (implies -serve)")
		verbose  = flag.Bool("v", false, "attach the observability layer and print one telemetry line per scenario, plus a per-kind dominant-stage blame line")
		checked  = flag.Bool("check", false, "run the conformance conservation checks after every scenario (fails fast on a scheduler accounting violation)")
		traceOut = flag.String("trace-out", "", "run one demo consolidation scenario, write its Chrome trace-event JSON (Perfetto-loadable) to this file, and exit")
		blameOut = flag.String("blame-out", "", "run one demo consolidation scenario, write its causal blame table as JSON to this file, and exit")
		baseFile = flag.String("baseline", "", "run the demo consolidation scenario and diff its span/stage percentiles against this stored baseline JSON (e.g. results/BENCH_pr8.json); exits non-zero past -baseline-threshold")
		baseTol  = flag.Float64("baseline-threshold", 0.25, "max tolerated relative regression for -baseline (0.25 = 25%)")
	)
	flag.Parse()
	experiment.SetParallelism(*par)
	if *checked {
		experiment.SetCheckHook(check.Conservation)
	}
	if *verbose {
		experiment.SetDefaultObs(&obs.Config{})
		var mu sync.Mutex
		var lastMem runtime.MemStats
		runtime.ReadMemStats(&lastMem)
		experiment.SetRunHook(func(s experiment.Setup, r *experiment.Result) {
			mu.Lock()
			defer mu.Unlock()
			// Process-wide allocation delta since the previous line. With
			// -parallel > 1 scenarios overlap, so the per-scenario
			// attribution is approximate; the totals are exact.
			var m runtime.MemStats
			runtime.ReadMemStats(&m)
			allocs := m.Mallocs - lastMem.Mallocs
			mb := float64(m.TotalAlloc-lastMem.TotalAlloc) / (1 << 20)
			lastMem = m
			fmt.Fprintf(os.Stderr, "%s | %d allocs/op %.1f MB/op\n", telemetryLine(s, r), allocs, mb)
			for _, line := range blameLines(s, r) {
				fmt.Fprintln(os.Stderr, line)
			}
			for _, line := range decisionLines(s, r) {
				fmt.Fprintln(os.Stderr, line)
			}
		})
	}
	if *traceOut != "" {
		if err := exportTrace(*traceOut, simtime.Duration(*secs*float64(simtime.Second))); err != nil {
			fmt.Fprintf(os.Stderr, "trace-out: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *blameOut != "" {
		if err := writeBlame(*blameOut, simtime.Duration(*secs*float64(simtime.Second))); err != nil {
			fmt.Fprintf(os.Stderr, "blame-out: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *baseFile != "" {
		regressed, err := runBaseline(*baseFile, *baseTol)
		if err != nil {
			fmt.Fprintf(os.Stderr, "baseline: %v\n", err)
			os.Exit(1)
		}
		if regressed {
			os.Exit(1)
		}
		return
	}
	if *prof != "" {
		f, err := os.Create(*prof)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprof != "" {
		defer func() {
			f, err := os.Create(*memprof)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush dead objects so inuse numbers are meaningful
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}
	dur := simtime.Duration(*secs * float64(simtime.Second))
	want := map[string]bool{}
	for _, r := range strings.Split(*runs, ",") {
		want[strings.TrimSpace(r)] = true
	}
	all := want["all"]
	if *faults {
		want["faultsweep"] = true
	}
	if *recov {
		want["recoverysweep"] = true
	}
	if *serve || *serveOut != "" {
		want["serve"] = true
	}
	// The fault, recovery and serving sweeps are opt-in: "all" means the
	// paper's artefacts.
	sel := func(name string) bool {
		if name == "faultsweep" || name == "recoverysweep" || name == "serve" {
			return want[name]
		}
		return all || want[name]
	}

	type job struct {
		name string
		run  func() (report.Renderer, error)
	}
	var bests map[string]int
	record := func(sweeps []*experiment.SweepResult) {
		if bests == nil {
			bests = map[string]int{}
		}
		for _, s := range sweeps {
			bests[s.Workload] = s.BestStatic()
		}
	}
	// Jobs run serially — fig6/fig7 consume the static-best pool sizes
	// recorded by the fig4/fig5 sweeps — but each generator submits its own
	// scenario grid through experiment.RunAll, so the -parallel worker pool
	// is busy within every job.
	jobs := []job{
		{"table1", func() (report.Renderer, error) { return experiment.Table1(dur) }},
		{"table2", func() (report.Renderer, error) { return experiment.Table2(dur) }},
		{"table3", func() (report.Renderer, error) { return experiment.Table3(dur) }},
		{"table4a", func() (report.Renderer, error) { return experiment.Table4a(dur) }},
		{"table4b", func() (report.Renderer, error) { return experiment.Table4b(dur) }},
		{"table4c", func() (report.Renderer, error) { return experiment.Table4c(dur) }},
		{"fig4", func() (report.Renderer, error) {
			r, err := experiment.Figure4(dur)
			if err == nil {
				record(r.Sweeps)
			}
			return r, err
		}},
		{"fig5", func() (report.Renderer, error) {
			r, err := experiment.Figure5(dur)
			if err == nil {
				record(r.Sweeps)
			}
			return r, err
		}},
		{"fig6", func() (report.Renderer, error) { return experiment.Figure6(dur, bests) }},
		{"fig7", func() (report.Renderer, error) { return experiment.Figure7(dur, bests) }},
		{"fig8", func() (report.Renderer, error) { return experiment.Figure8(dur) }},
		{"fig9", func() (report.Renderer, error) { return experiment.Figure9(dur) }},
		{"ext-usercs", func() (report.Renderer, error) { return experiment.ExtensionUserCS(dur) }},
		{"faultsweep", func() (report.Renderer, error) { return experiment.FaultSweep(dur) }},
		{"recoverysweep", func() (report.Renderer, error) { return experiment.RecoverySweep(dur) }},
		{"serve", func() (report.Renderer, error) {
			r, err := experiment.ServeSweep(dur)
			if err == nil && *serveOut != "" {
				if werr := writeJSON(*serveOut, r); werr != nil {
					return nil, fmt.Errorf("serve-out: %w", werr)
				}
			}
			return r, err
		}},
	}
	start := time.Now()
	for _, j := range jobs {
		if !sel(j.name) {
			continue
		}
		fmt.Fprintf(os.Stderr, "running %s (%v simulated per scenario, %d workers)...\n",
			j.name, dur, experiment.Parallelism())
		t0 := time.Now()
		r, err := j.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", j.name, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "%s done in %v\n", j.name, time.Since(t0).Round(time.Millisecond))
		r.Render(os.Stdout)
	}
	fmt.Fprintf(os.Stderr, "total wall-clock: %v\n", time.Since(start).Round(time.Millisecond))
}

// telemetryLine condenses one scenario's observability read-out: the
// scenario's VMs, the three slowest span kinds by p99, and the busiest pCPU.
func telemetryLine(s experiment.Setup, r *experiment.Result) string {
	var b strings.Builder
	names := make([]string, len(s.VMs))
	for i, vm := range s.VMs {
		names[i] = vm.Name
	}
	fmt.Fprintf(&b, "telemetry [%s]:", strings.Join(names, "+"))
	if r.Telemetry == nil {
		b.WriteString(" (no observer)")
		return b.String()
	}
	spans := make([]obs.SpanStat, 0, len(r.Telemetry.Spans))
	for _, sp := range r.Telemetry.Spans {
		if sp.Count > 0 {
			spans = append(spans, sp)
		}
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].P99 > spans[j].P99 })
	if len(spans) > 3 {
		spans = spans[:3]
	}
	for _, sp := range spans {
		fmt.Fprintf(&b, " %s p99=%v (n=%d)", sp.Kind, sp.P99, sp.Count)
	}
	if id, busy := r.Telemetry.BusiestPCPU(); id >= 0 {
		fmt.Fprintf(&b, " | busiest p%d %.0f%%", id, 100*float64(busy)/float64(r.Duration))
	}
	return b.String()
}

// decisionLines renders the tail of the adaptive controller's decision
// trail — when, which Algorithm 1 path fired, the size chosen and the
// sample it was judged on. Empty for runs without a dynamic controller.
func decisionLines(s experiment.Setup, r *experiment.Result) []string {
	if r.DecisionCount == 0 {
		return nil
	}
	names := make([]string, len(s.VMs))
	for i, vm := range s.VMs {
		names[i] = vm.Name
	}
	decs := r.Decisions
	if len(decs) > 4 {
		decs = decs[len(decs)-4:]
	}
	parts := make([]string, 0, len(decs))
	for _, d := range decs {
		parts = append(parts, fmt.Sprintf("t=%v %s→%d (ipi %d/ple %d/irq %d)",
			simtime.Duration(d.Time), d.Reason, d.Chosen, d.Run.IPIs, d.Run.PLEs, d.Run.IRQs))
	}
	return []string{fmt.Sprintf("  decisions [%s] %d total: %s",
		strings.Join(names, "+"), r.DecisionCount, strings.Join(parts, "; "))}
}

// demoScenario labels the fixed consolidation demo shared by -trace-out,
// -blame-out and -baseline.
const demoScenario = "gmake+swaptions"

// demoSetup is that demo: gmake and swaptions under the dynamic mechanism
// with the observer attached. All three export modes read out the same run
// so a trace, a blame table and a baseline diff describe the same timeline.
func demoSetup(dur simtime.Duration) experiment.Setup {
	return experiment.Setup{
		VMs: []experiment.VMSpec{
			{Name: "gmake", App: "gmake", Seed: 11},
			{Name: "swaptions", App: "swaptions", Seed: 22},
		},
		Core:         core.DefaultConfig(),
		Duration:     dur,
		StaggerStart: true,
		Obs:          &obs.Config{},
	}
}

// exportTrace runs the consolidation demo with the full-run trace ring
// enabled and writes the timeline as Chrome trace-event JSON.
func exportTrace(path string, dur simtime.Duration) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	s := demoSetup(dur)
	s.TraceExport = f
	res, err := experiment.Run(s)
	if err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%v simulated; load at https://ui.perfetto.dev)\n", path, res.Duration)
	return nil
}

// blameLines renders one causal-attribution line per span kind that recorded
// anything: the dominant stage, then the full breakdown (the shares sum to
// exactly 100% by construction).
func blameLines(s experiment.Setup, r *experiment.Result) []string {
	if r.Telemetry == nil {
		return nil
	}
	names := make([]string, len(s.VMs))
	for i, vm := range s.VMs {
		names[i] = vm.Name
	}
	label := strings.Join(names, "+")
	var out []string
	for i := range r.Telemetry.Spans {
		sp := &r.Telemetry.Spans[i]
		if sp.Count == 0 || sp.Blame == "" {
			continue
		}
		parts := make([]string, 0, len(sp.Stages))
		for _, st := range sp.Stages {
			parts = append(parts, fmt.Sprintf("%s %.1f%%", st.Name, st.Share))
		}
		out = append(out, fmt.Sprintf("  blame [%s] %s: %s %.1f%% dominant (%s; p99=%v n=%d)",
			label, sp.Kind, sp.Blame, sp.BlamePct, strings.Join(parts, " + "), sp.P99, sp.Count))
	}
	return out
}

// writeJSON marshals v with indentation and writes it to path.
func writeJSON(path string, v any) error {
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}

// writeBlame runs the consolidation demo, validates the resulting causal
// attribution table against the schema contract, writes it as JSON and
// renders it as text.
func writeBlame(path string, dur simtime.Duration) error {
	res, err := experiment.Run(demoSetup(dur))
	if err != nil {
		return err
	}
	b := experiment.BlameFromSummary(demoScenario, res.Telemetry)
	b.Notes = append(b.Notes, fmt.Sprintf("demo consolidation scenario, %v simulated", res.Duration))
	if err := b.Validate(); err != nil {
		return err
	}
	buf, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	b.Render(os.Stdout)
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}

// baselineStage is one stage's pinned numbers in a stored baseline.
type baselineStage struct {
	SharePct float64 `json:"share_pct"`
	P99us    float64 `json:"p99_us"`
}

// baselineSpan is one span kind's pinned numbers in a stored baseline.
type baselineSpan struct {
	Count    uint64                   `json:"count"`
	P50us    float64                  `json:"p50_us"`
	P99us    float64                  `json:"p99_us"`
	P999us   float64                  `json:"p999_us"`
	Dominant string                   `json:"dominant,omitempty"`
	Stages   map[string]baselineStage `json:"stages,omitempty"`
}

// baselineDoc is the slice of a results/BENCH_*.json file the -baseline gate
// reads: the demo scenario's pinned duration and per-kind span/stage
// percentiles. Runs are deterministic in simulated time, so the stored
// numbers are machine-independent and an unchanged tree diffs to exactly 0%.
type baselineDoc struct {
	PR        int `json:"pr"`
	DemoSpans struct {
		Scenario string                  `json:"scenario"`
		Seconds  float64                 `json:"seconds"`
		Spans    map[string]baselineSpan `json:"spans"`
	} `json:"demo_spans"`
}

// runBaseline re-runs the consolidation demo at the baseline's pinned
// duration and diffs every span percentile and stage share against the
// stored numbers. It reports regressed=true when any latency grew by more
// than tol (relative) or any stage share drifted by more than tol×100
// percentage points; improvements never gate.
func runBaseline(path string, tol float64) (regressed bool, err error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return false, err
	}
	var doc baselineDoc
	if err := json.Unmarshal(buf, &doc); err != nil {
		return false, fmt.Errorf("%s: %w", path, err)
	}
	if len(doc.DemoSpans.Spans) == 0 {
		return false, fmt.Errorf("%s: no demo_spans section (not a span baseline?)", path)
	}
	secs := doc.DemoSpans.Seconds
	if secs <= 0 {
		return false, fmt.Errorf("%s: demo_spans.seconds missing", path)
	}
	res, err := experiment.Run(demoSetup(simtime.Duration(secs * float64(simtime.Second))))
	if err != nil {
		return false, err
	}
	if res.Telemetry == nil {
		return false, fmt.Errorf("demo run produced no telemetry")
	}
	cur := map[string]*obs.SpanStat{}
	for i := range res.Telemetry.Spans {
		sp := &res.Telemetry.Spans[i]
		if sp.Count > 0 {
			cur[sp.Kind] = sp
		}
	}

	var fails []string
	fmt.Printf("baseline gate: %s (pr %d, %.3gs demo) vs current, threshold %.0f%%\n",
		path, doc.PR, secs, tol*100)
	gate := func(name string, base, now float64) {
		grew := relIncrease(base, now)
		mark := ""
		if grew > tol {
			mark = "  <-- REGRESSION"
			fails = append(fails, fmt.Sprintf("%s grew %.1f%% (%.3f -> %.3f us)", name, grew*100, base, now))
		}
		fmt.Printf("  %-44s %10.3f -> %10.3f us (%+.1f%%)%s\n", name, base, now, grew*100, mark)
	}
	kinds := make([]string, 0, len(doc.DemoSpans.Spans))
	for k := range doc.DemoSpans.Spans {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, kind := range kinds {
		base := doc.DemoSpans.Spans[kind]
		sp := cur[kind]
		if sp == nil {
			fails = append(fails, fmt.Sprintf("%s: recorded in baseline (n=%d) but absent now", kind, base.Count))
			fmt.Printf("  %-44s ABSENT (baseline n=%d)  <-- REGRESSION\n", kind, base.Count)
			continue
		}
		gate(kind+" p50", base.P50us, float64(sp.P50)/1e3)
		gate(kind+" p99", base.P99us, float64(sp.P99)/1e3)
		gate(kind+" p999", base.P999us, float64(sp.P999)/1e3)
		if base.Dominant != "" && sp.Blame != base.Dominant {
			fmt.Printf("  %-44s dominant stage %s -> %s (informational)\n", kind, base.Dominant, sp.Blame)
		}
		curStage := map[string]obs.StageStat{}
		for _, st := range sp.Stages {
			curStage[st.Name] = st
		}
		stages := make([]string, 0, len(base.Stages))
		for s := range base.Stages {
			stages = append(stages, s)
		}
		sort.Strings(stages)
		for _, name := range stages {
			bs := base.Stages[name]
			cs := curStage[name]
			gate(kind+"/"+name+" p99", bs.P99us, float64(cs.P99)/1e3)
			drift := math.Abs(cs.Share - bs.SharePct)
			mark := ""
			if drift > tol*100 {
				mark = "  <-- REGRESSION"
				fails = append(fails, fmt.Sprintf("%s/%s share drifted %.1f points (%.1f%% -> %.1f%%)",
					kind, name, drift, bs.SharePct, cs.Share))
			}
			fmt.Printf("  %-44s %9.1f%% -> %9.1f%% share%s\n", kind+"/"+name, bs.SharePct, cs.Share, mark)
		}
	}
	if len(fails) > 0 {
		fmt.Printf("baseline gate: FAIL (%d regressions past %.0f%%)\n", len(fails), tol*100)
		for _, f := range fails {
			fmt.Printf("  - %s\n", f)
		}
		return true, nil
	}
	fmt.Println("baseline gate: OK")
	return false, nil
}

// relIncrease is (now-base)/base, treating a growth from zero as infinite
// and anything shrinking to or below zero as no increase.
func relIncrease(base, now float64) float64 {
	if now <= base {
		return 0
	}
	if base <= 0 {
		return math.Inf(1)
	}
	return (now - base) / base
}

// Package rng provides the deterministic pseudo-random source used by all
// workload generators and simulators.
//
// The simulator cannot use math/rand's global source (seeding discipline is
// too loose for reproducible fleet runs) and must not use crypto/rand.
// xoshiro256** seeded via splitmix64 gives high-quality 64-bit streams with
// a tiny state that can be forked per-component so that adding one workload
// never perturbs the random stream of another.
package rng

import "math"

// Source is a deterministic xoshiro256** generator.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from seed via splitmix64, so nearby seeds
// still produce decorrelated streams.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		src.s[i] = z ^ (z >> 31)
	}
	// xoshiro requires a non-zero state; splitmix64 of any seed gives one,
	// but guard anyway.
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 1
	}
	return &src
}

// Fork derives an independent child stream. The label decorrelates children
// forked from the same parent state.
func (r *Source) Fork(label uint64) *Source {
	return New(r.Uint64() ^ (label * 0x9e3779b97f4a7c15))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *Source) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Uniform returns a uniform float64 in [lo, hi).
func (r *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// UniformDur returns a uniform int64 in [lo, hi]. Used for jittered service
// times; lo and hi may be equal.
func (r *Source) UniformDur(lo, hi int64) int64 {
	if hi < lo {
		lo, hi = hi, lo
	}
	if hi == lo {
		return lo
	}
	return lo + r.Int63n(hi-lo+1)
}

// Exp returns an exponentially distributed float64 with the given mean.
func (r *Source) Exp(mean float64) float64 {
	u := r.Float64()
	// Avoid log(0).
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -mean * math.Log(1-u)
}

// ExpDur returns an exponentially distributed duration (ns) with mean mean.
// The result is at least 1 so callers can use it directly as a service time.
func (r *Source) ExpDur(mean int64) int64 {
	d := int64(r.Exp(float64(mean)))
	if d < 1 {
		d = 1
	}
	return d
}

// Pareto returns a bounded Pareto sample with shape alpha and scale xm,
// capped at cap (heavy-tailed service times without unbounded outliers).
func (r *Source) Pareto(xm, alpha, cap float64) float64 {
	u := r.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	v := xm / math.Pow(1-u, 1/alpha)
	if v > cap {
		v = cap
	}
	return v
}

// Bool returns true with probability p.
func (r *Source) Bool(p float64) bool {
	return r.Float64() < p
}

// Perm returns a random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

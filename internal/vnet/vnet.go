// Package vnet models the virtualized network path of the paper's I/O
// experiments: a virtual NIC with a bounded receive ring that raises
// physical IRQs into the hypervisor, plus iPerf-like traffic generators —
// a paced UDP stream (RFC 1889 jitter, goodput, loss) and a windowed
// TCP-like stream whose sender is clocked by application-level
// consumption. The delivery chain is exactly the paper's Figure 2:
// packet → pIRQ → hypervisor → vIRQ → guest hardirq → softIRQ → socket →
// user-thread wakeup.
package vnet

import (
	"fmt"

	"github.com/microslicedcore/microsliced/internal/guest"
	"github.com/microslicedcore/microsliced/internal/hv"
	"github.com/microslicedcore/microsliced/internal/metrics"
	"github.com/microslicedcore/microsliced/internal/obs"
	"github.com/microslicedcore/microsliced/internal/simtime"
)

// DefaultRingSize is the RX descriptor ring size (e1000 default 256).
const DefaultRingSize = 256

// DefaultIRQReassert is the interrupt-moderation re-assert interval: while
// admitted packets sit unfetched, the NIC re-raises its physical IRQ at
// this period (the hardware rx-usecs moderation timer). Without it the
// coalescing latch is purely edge-triggered, and a guest preempted between
// the IRQ's delivery and its softirq Fetch leaves every later arrival
// silently coalesced behind a latch nobody will clear — the hypervisor
// never sees another pIRQ for the backlog, so IRQ-triggered acceleration
// (core.Controller) has no edge to act on until the guest's next credit
// slice, tens of milliseconds away.
const DefaultIRQReassert = 100 * simtime.Microsecond

// NIC is a virtual network interface attached to one domain. It implements
// guest.NetDevice. The RX ring is a circular buffer (growing amortized up
// to its fixed capacity) drained into a reusable scratch slice, so the
// softirq-path Fetch is allocation-free at steady state.
type NIC struct {
	h   *hv.Hypervisor
	dom *hv.Domain

	// RX ring: a circular window over buf. head indexes the oldest packet,
	// n is the occupancy; buf doubles under admission pressure until it
	// reaches ringCap, so a huge configured capacity costs nothing unless
	// the ring actually backs up that far.
	buf     []guest.Packet
	head    int
	n       int
	ringCap int

	// out is Fetch's reusable scratch. The returned batch is only valid
	// until the next Fetch, which is safe because one NIC's softirq
	// handlers are serialized: every net pIRQ routes to the domain's single
	// IRQVCPU, so a batch is fully delivered before the next fetch starts.
	out []guest.Packet

	irqRaised  bool // NAPI-style coalescing: one IRQ until the ring drains
	reassert   simtime.Duration
	reassertEv *simtime.Event

	RxPackets uint64
	RxDrops   uint64
	TxBytes   uint64
	IRQs      uint64
	Reasserts uint64 // IRQs re-raised by the moderation timer
}

// NewNIC creates a NIC for dom with the given RX ring capacity
// (DefaultRingSize if 0).
func NewNIC(h *hv.Hypervisor, dom *hv.Domain, ringCap int) *NIC {
	if ringCap <= 0 {
		ringCap = DefaultRingSize
	}
	return &NIC{h: h, dom: dom, ringCap: ringCap, reassert: DefaultIRQReassert}
}

// SetIRQReassert overrides the interrupt-moderation re-assert interval.
// d <= 0 disables re-assertion (pure edge-triggered coalescing).
func (n *NIC) SetIRQReassert(d simtime.Duration) { n.reassert = d }

// RingLen returns the current RX ring occupancy.
func (n *NIC) RingLen() int { return n.n }

// Rx delivers one packet from the wire into the RX ring, raising a
// physical IRQ unless one is already outstanding. A full ring drops the
// packet (tail drop), which is how sustained guest scheduling delays turn
// into UDP loss; Rx reports false so the sender can account the drop.
func (n *NIC) Rx(p guest.Packet) bool {
	if n.n >= n.ringCap {
		n.RxDrops++
		return false
	}
	if o := n.h.Obs; o != nil {
		// The net_rx span opens at ring admission and rides the packet to
		// application-level consume (Figure 2's full delivery chain); the
		// guest cancels it if the packet is dropped for want of a listener.
		p.Span = o.Begin(obs.SpanNetRx, int16(n.dom.ID), int16(n.dom.IRQVCPU), p.Seq, n.h.Clock.Now())
	}
	if n.n == len(n.buf) {
		n.grow()
	}
	n.buf[(n.head+n.n)%len(n.buf)] = p
	n.n++
	n.RxPackets++
	if !n.irqRaised {
		n.irqRaised = true
		n.IRQs++
		n.h.InjectPIRQ(n.dom, hv.VecNet, 0)
	} else {
		// IRQ already signaled for this backlog: coalesce, but keep the
		// moderation timer armed so an unserviced ring re-asserts.
		n.armReassert()
	}
	return true
}

// armReassert schedules the moderation re-assert if not already pending.
func (n *NIC) armReassert() {
	if n.reassert <= 0 || n.reassertEv != nil {
		return
	}
	n.reassertEv = n.h.Clock.After(n.reassert, n.fireReassert)
}

// fireReassert re-raises the physical IRQ if the backlog is still
// unserviced, and re-arms so a long guest stall keeps producing edges.
func (n *NIC) fireReassert() {
	n.reassertEv = nil
	if n.n == 0 || !n.irqRaised {
		return // ring drained since arming; nothing to re-assert
	}
	n.IRQs++
	n.Reasserts++
	n.h.InjectPIRQ(n.dom, hv.VecNet, 0)
	n.armReassert()
}

// grow doubles the circular buffer (bounded by the ring capacity),
// unwrapping the occupied window to the front.
func (n *NIC) grow() {
	size := 2 * len(n.buf)
	if size == 0 {
		size = 64
	}
	if size > n.ringCap {
		size = n.ringCap
	}
	nb := make([]guest.Packet, size)
	for i := 0; i < n.n; i++ {
		nb[i] = n.buf[(n.head+i)%len(n.buf)]
	}
	n.buf = nb
	n.head = 0
}

// Fetch implements guest.NetDevice: the softIRQ handler drains up to max
// packets. If packets remain, the IRQ is immediately re-raised (NAPI
// re-poll); otherwise the coalescing latch clears. The returned slice is
// reused by the next Fetch (see NIC.out) and performs no allocation at
// steady state.
func (n *NIC) Fetch(max int) []guest.Packet {
	k := n.n
	if k > max {
		k = max
	}
	if cap(n.out) < k {
		n.out = make([]guest.Packet, 0, len(n.buf))
	}
	out := n.out[:k]
	if k > 0 {
		first := len(n.buf) - n.head
		if first > k {
			first = k
		}
		copy(out[:first], n.buf[n.head:n.head+first])
		copy(out[first:], n.buf[:k-first])
		n.head = (n.head + k) % len(n.buf)
		n.n -= k
	}
	if o := n.h.Obs; o != nil {
		// The fetched packets leave the ring: their wait so far was ring
		// time; softirq processing starts now.
		now := n.h.Clock.Now()
		for _, p := range out {
			o.Stage(p.Span, obs.NetStageRing, now)
			o.Stage(p.ReqSpan, obs.ReqStageRing, now)
		}
	}
	if n.n > 0 {
		n.IRQs++
		n.h.InjectPIRQ(n.dom, hv.VecNet, 0)
	} else {
		n.irqRaised = false
	}
	return out
}

// Transmit implements guest.NetDevice (guest->world traffic; accounted,
// otherwise sunk).
func (n *NIC) Transmit(bytes int, now simtime.Time) {
	n.TxBytes += uint64(bytes)
}

var _ guest.NetDevice = (*NIC)(nil)

// ---------------------------------------------------------------------------
// UDP stream
// ---------------------------------------------------------------------------

// UDPFlow is an iPerf-style paced UDP sender plus the receiver-side
// accounting (goodput, loss, RFC 1889 jitter at application consume time).
type UDPFlow struct {
	nic   *NIC
	clock *simtime.Clock
	ID    int

	PktBytes int
	RateBps  int64 // offered load in bits per second

	seq       uint64
	sendEvent *simtime.Event
	startedAt simtime.Time
	stopped   bool
	Jitter    metrics.Jitter
	SentBytes uint64
	Dropped   uint64 // tail-dropped at the full NIC ring
	RxBytes   uint64
	RxPackets uint64
	firstRx   simtime.Time
	lastRx    simtime.Time
	haveRx    bool
}

// NewUDPFlow creates a UDP flow towards dom's NIC. Attach must be called
// with the receiving socket before Start.
func NewUDPFlow(clock *simtime.Clock, nic *NIC, id, pktBytes int, rateBps int64) (*UDPFlow, error) {
	if pktBytes <= 0 {
		return nil, fmt.Errorf("vnet: UDP flow %d: packet size %d must be positive", id, pktBytes)
	}
	if rateBps <= 0 {
		return nil, fmt.Errorf("vnet: UDP flow %d: rate %d bps must be positive", id, rateBps)
	}
	return &UDPFlow{nic: nic, clock: clock, ID: id, PktBytes: pktBytes, RateBps: rateBps}, nil
}

// Attach wires the flow's receiver accounting into the guest socket.
func (f *UDPFlow) Attach(sock *guest.Socket) {
	sock.OnAppConsume = func(p guest.Packet, now simtime.Time) {
		f.RxBytes += uint64(p.Bytes)
		f.RxPackets++
		f.Jitter.ObserveTransit(int64(now - p.SentAt))
		if !f.haveRx {
			f.haveRx = true
			f.firstRx = now
		}
		f.lastRx = now
	}
}

// interval returns the pacing gap between packets.
func (f *UDPFlow) interval() simtime.Duration {
	return simtime.Duration(int64(f.PktBytes) * 8 * int64(simtime.Second) / f.RateBps)
}

// Start begins paced transmission until Stop (or forever).
func (f *UDPFlow) Start() {
	f.startedAt = f.clock.Now()
	f.sendOne()
}

func (f *UDPFlow) sendOne() {
	if f.stopped {
		return
	}
	f.seq++
	f.SentBytes += uint64(f.PktBytes)
	if !f.nic.Rx(guest.Packet{Seq: f.seq, Flow: f.ID, Bytes: f.PktBytes, SentAt: f.clock.Now()}) {
		f.Dropped++
	}
	f.sendEvent = f.clock.After(f.interval(), f.sendOne)
}

// Stop halts the sender.
func (f *UDPFlow) Stop() {
	f.stopped = true
	if f.sendEvent != nil {
		f.sendEvent.Cancel()
		f.sendEvent = nil
	}
}

// GoodputBps returns the application-level receive rate over the window
// observed between the first and last consumed packet. A single consumed
// packet leaves a zero-width window; that degenerate case falls back to
// the elapsed run time (Start to the consume), so a short run reports a
// defined rate instead of 0.
func (f *UDPFlow) GoodputBps() float64 {
	if !f.haveRx {
		return 0
	}
	win := f.lastRx - f.firstRx
	if win <= 0 {
		win = f.lastRx - f.startedAt
	}
	if win <= 0 {
		return 0
	}
	return float64(f.RxBytes*8) / win.Seconds()
}

// LossRate returns the fraction of offered packets actually lost — dropped
// at the full NIC ring. Packets still in flight (ring-resident, mid-softirq
// or queued in the socket, not yet consumed) are not loss, so a mid-run
// sample agrees with the end-of-run read instead of over-counting by the
// pipeline occupancy.
func (f *UDPFlow) LossRate() float64 {
	if f.seq == 0 {
		return 0
	}
	return float64(f.Dropped) / float64(f.seq)
}

// ---------------------------------------------------------------------------
// TCP-like stream
// ---------------------------------------------------------------------------

// TCPFlow is a windowed stream: at most Window segments are in flight, and
// a new segment is released only when the application consumes one
// (ack-clocked). Sends are additionally paced to the link rate. Guest
// scheduling delays therefore throttle the achieved bandwidth exactly as
// they throttle a real TCP connection's ack clock.
type TCPFlow struct {
	nic   *NIC
	clock *simtime.Clock
	ID    int

	PktBytes  int
	Window    int
	LinkBps   int64
	WireDelay simtime.Duration

	seq       uint64
	inflight  int
	nextTx    simtime.Time
	startedAt simtime.Time
	stopped   bool
	txQueued  bool

	RxBytes   uint64
	RxPackets uint64
	firstRx   simtime.Time
	lastRx    simtime.Time
	haveRx    bool
	Jitter    metrics.Jitter
}

// NewTCPFlow creates a TCP-like flow towards dom's NIC.
func NewTCPFlow(clock *simtime.Clock, nic *NIC, id, pktBytes, window int, linkBps int64, wireDelay simtime.Duration) (*TCPFlow, error) {
	if pktBytes <= 0 {
		return nil, fmt.Errorf("vnet: TCP flow %d: packet size %d must be positive", id, pktBytes)
	}
	if window <= 0 {
		return nil, fmt.Errorf("vnet: TCP flow %d: window %d must be positive", id, window)
	}
	if linkBps <= 0 {
		return nil, fmt.Errorf("vnet: TCP flow %d: link rate %d bps must be positive", id, linkBps)
	}
	return &TCPFlow{
		nic: nic, clock: clock, ID: id,
		PktBytes: pktBytes, Window: window, LinkBps: linkBps, WireDelay: wireDelay,
	}, nil
}

// Attach wires receiver accounting and the ack clock into the guest socket.
func (f *TCPFlow) Attach(sock *guest.Socket) {
	sock.OnAppConsume = func(p guest.Packet, now simtime.Time) {
		f.RxBytes += uint64(p.Bytes)
		f.RxPackets++
		f.Jitter.ObserveTransit(int64(now - p.SentAt))
		if !f.haveRx {
			f.haveRx = true
			f.firstRx = now
		}
		f.lastRx = now
		if f.inflight > 0 {
			f.inflight--
		}
		f.pump()
	}
}

// Start opens the window.
func (f *TCPFlow) Start() {
	f.startedAt = f.clock.Now()
	f.pump()
}

// Stop halts the sender.
func (f *TCPFlow) Stop() { f.stopped = true }

// pump sends as long as the window and link pacing allow.
func (f *TCPFlow) pump() {
	if f.stopped || f.txQueued {
		return
	}
	if f.inflight >= f.Window {
		return
	}
	now := f.clock.Now()
	if f.nextTx > now {
		f.txQueued = true
		f.clock.At(f.nextTx, func() {
			f.txQueued = false
			f.pump()
		})
		return
	}
	f.inflight++
	f.seq++
	gap := simtime.Duration(int64(f.PktBytes) * 8 * int64(simtime.Second) / f.LinkBps)
	f.nextTx = now + gap
	sentAt := now
	seq := f.seq
	f.clock.After(f.WireDelay, func() {
		f.nic.Rx(guest.Packet{Seq: seq, Flow: f.ID, Bytes: f.PktBytes, SentAt: sentAt})
	})
	f.pump()
}

// GoodputBps returns the application-level receive rate. A single consumed
// segment falls back to the elapsed run time, as in UDPFlow.GoodputBps.
func (f *TCPFlow) GoodputBps() float64 {
	if !f.haveRx {
		return 0
	}
	win := f.lastRx - f.firstRx
	if win <= 0 {
		win = f.lastRx - f.startedAt
	}
	if win <= 0 {
		return 0
	}
	return float64(f.RxBytes*8) / win.Seconds()
}

func (f *TCPFlow) String() string {
	return fmt.Sprintf("tcp flow %d: %d segs, %.1f Mbps", f.ID, f.RxPackets, f.GoodputBps()/1e6)
}

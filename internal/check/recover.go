package check

import (
	"fmt"

	"github.com/microslicedcore/microsliced/internal/experiment"
	"github.com/microslicedcore/microsliced/internal/hv"
	"github.com/microslicedcore/microsliced/internal/rng"
	"github.com/microslicedcore/microsliced/internal/simtime"
)

// recoverySeedSalt decorrelates the recovery generator's stream from the
// plain Generate stream, so suite seed i draws unrelated scenarios in the
// two suites.
const recoverySeedSalt = 0x7ec04e87

// GenerateRecovery draws a random recovery-conformance scenario from seed:
// harsh faults (permanent capacity loss, IPI storms with outright loss, or
// both) that quiesce mid-run, a supervisor armed over them, and a
// convergence deadline sized so the detect→repair→converge contract is
// achievable. The same seed always yields the same scenario.
//
// The draw is deliberately conservative about oversubscription: the
// no-starvation law distinguishes wedged vCPUs from ordinary queueing
// delay, so the starve bound must exceed the worst legitimate wait
// (runqueue depth × NormalSlice) on the post-loss capacity.
func GenerateRecovery(seed uint64) Scenario {
	r := rng.New(seed ^ recoverySeedSalt)
	sc := Scenario{Seed: seed}
	sc.PCPUs = 4 + r.Intn(3) // 4..6

	if r.Bool(0.5) {
		sc.Mode = "off"
	} else {
		// Dynamic mode is excluded: its pool controller resizes the micro
		// pool on its own schedule, which is exactly what the supervisor's
		// capacity repairs do — the metamorphic laws would then blame the
		// supervisor for the controller's (legitimate) churn.
		sc.Mode = "static"
		sc.StaticCores = 1
	}
	sc.Stagger = r.Bool(0.5)
	sc.MicroRunqLimit = r.Intn(3)

	nvms := 1 + r.Intn(2) // 1..2
	for i := 0; i < nvms; i++ {
		// Weights stay symmetric on purpose: a low-weight domain's vCPUs
		// legitimately wait far longer than the runqueue-depth × slice
		// estimate below, which would make the starve bound fire on healthy
		// weighted fairness and keep the MTTR clock running forever.
		vm := VMSpec{
			App:   genApps[r.Intn(len(genApps))],
			VCPUs: 1 + r.Intn(3), // 1..3
			Seed:  r.Uint64(),
		}
		// Pins are likely: a vCPU pinned to a pCPU that dies permanently is
		// the starvation wedge the supervisor exists to break.
		if r.Bool(0.6) {
			vm.Pins = make([]int, vm.VCPUs)
			for j := range vm.Pins {
				vm.Pins[j] = r.Intn(sc.PCPUs+1) - 1
			}
		}
		sc.VMs = append(sc.VMs, vm)
	}

	f := &FaultSpec{Seed: r.Uint64()}
	permOff := 0
	switch r.Intn(3) {
	case 0: // permanent capacity loss only
		permOff = 1 + r.Intn(sc.PCPUs-3) // keep >= 3 pCPUs online
	case 1: // IPI storm with outright loss
		f.Storms = 1 + r.Intn(2)
		f.IPIDropProb = 0.1 + 0.2*r.Float64()
		f.LoseIPIs = true
		f.TickJitterUs = 1 + r.Intn(500)
	default: // both
		permOff = 1 + r.Intn(sc.PCPUs-3)
		f.Storms = 1
		f.IPIDropProb = 0.1 + 0.15*r.Float64()
		f.LoseIPIs = true
	}
	f.PermanentOffPCPUs = permOff
	if r.Bool(0.3) {
		f.LockStallProb = 0.02 + 0.1*r.Float64()
		f.LockStallFactor = 2 + 4*r.Float64()
	}

	// Size the time axis so convergence is achievable: the starve bound
	// clears the worst legitimate queueing delay on post-loss capacity, the
	// deadline leaves room for detection (one starve bound) plus the repair
	// escalation ladder, and the run extends past quiesce+deadline so the
	// end state is actually checked.
	// Normal-pool capacity after the loss: micro cores only host transient
	// critical-section work, so the surviving normal cores carry the
	// runqueues (worst case the dead cores all come out of the normal pool).
	normal := sc.PCPUs - permOff - sc.StaticCores
	if normal < 1 {
		normal = 1
	}
	total := 0
	for _, vm := range sc.VMs {
		total += vm.VCPUs
	}
	perQ := (total + normal - 1) / normal
	legitMs := perQ * 30 // NormalSlice is 30ms
	starve := legitMs + 15 + r.Intn(16)
	deadline := starve + 20 + r.Intn(11)
	quiesce := 20 + r.Intn(21)
	f.QuiesceAtMs = quiesce
	sc.DurationMs = quiesce + deadline + 10 + r.Intn(11)
	sc.Faults = f
	sc.Recovery = &RecoverySpec{
		IntervalMs:    2,
		StarveBoundMs: starve,
		DeadlineMs:    deadline,
	}
	return sc
}

// recoveryShaped reports whether sc carries everything a recovery
// conformance run needs: a supervisor, a fault plan with a quiesce point,
// and a convergence deadline that ends inside the run.
func recoveryShaped(sc Scenario) bool {
	return sc.Recovery != nil && sc.Faults != nil &&
		sc.Faults.QuiesceAtMs > 0 && sc.Recovery.DeadlineMs > 0 &&
		sc.Faults.QuiesceAtMs+sc.Recovery.DeadlineMs <= sc.DurationMs
}

// CheckRecovery runs a recovery-shaped scenario twice and verifies the
// post-fault convergence laws on both runs plus bit-identical repairs
// across them:
//
//   - all conservation laws hold at end of run, with auditor violations
//     tolerated only before quiesce+deadline (faults are allowed to break
//     invariants; the repaired steady state is not)
//   - no vCPU is starved at end of run: anything runnable has waited less
//     than the starve bound plus detection/repair slack, or the worst
//     legitimate queueing delay on the surviving capacity, whichever is
//     larger
//   - the lost-IPI ledger is drained
//   - repairs are bounded: the last one lands within the deadline (finite
//     MTTR), so the supervisor converged instead of ping-ponging
//   - a rerun of the identical scenario reproduces bit-identical results,
//     repair log included
func (c *Checker) CheckRecovery(sc Scenario) error {
	if !recoveryShaped(sc) {
		return fmt.Errorf("scenario is not recovery-shaped (need Recovery, Faults.QuiesceAtMs, DeadlineMs with quiesce+deadline <= duration)")
	}
	mk := func() experiment.Setup {
		s := sc.ToSetup()
		s.Audit = true
		s.PostCheck = recoveryPostCheck(sc)
		return s
	}
	results, err := experiment.RunAll([]experiment.Setup{mk(), mk()})
	if err != nil {
		return fmt.Errorf("recovery run: %w", err)
	}
	if c.mutate != nil {
		c.mutate(results[0])
	}
	if derr := diffResults(results[0], results[1]); derr != nil {
		return fmt.Errorf("recovery rerun not bit-identical: %w", derr)
	}
	return nil
}

// CheckRecovery is the function form of (*Checker).CheckRecovery.
func CheckRecovery(sc Scenario) error {
	var c Checker
	return c.CheckRecovery(sc)
}

// recoveryPostCheck builds the convergence-law PostCheck for sc.
func recoveryPostCheck(sc Scenario) func(*experiment.PostRun) error {
	quiesce := simtime.Duration(sc.Faults.QuiesceAtMs) * simtime.Millisecond
	deadline := simtime.Duration(sc.Recovery.DeadlineMs) * simtime.Millisecond
	starve := simtime.Duration(sc.Recovery.StarveBoundMs) * simtime.Millisecond
	if starve <= 0 {
		starve = 50 * simtime.Millisecond // recovery.Config default
	}
	interval := simtime.Duration(sc.Recovery.IntervalMs) * simtime.Millisecond
	return func(pr *experiment.PostRun) error {
		if err := conservation(pr, simtime.Time(quiesce+deadline)); err != nil {
			return err
		}
		h := pr.HV
		iv := interval
		if iv <= 0 {
			iv = h.Cfg.Tick // supervisor default walk period
		}
		// Starvation bound at end of run: the configured bound plus slack
		// for one detection walk and the repair ladder, or the worst
		// legitimate round-robin wait on the surviving capacity — whichever
		// is larger.
		bound := starve + 4*iv
		if normal := h.NormalPool().OnlineCount(); normal > 0 {
			perQ := (len(h.VCPUs()) + normal - 1) / normal
			if legit := simtime.Duration(perQ)*h.Cfg.NormalSlice + 4*iv; legit > bound {
				bound = legit
			}
		}
		for _, v := range h.VCPUs() {
			if v.State() != hv.StateRunnable {
				continue
			}
			if wait := simtime.Duration(pr.Now - v.RunnableSince()); wait > bound {
				return fmt.Errorf("recovery: d%dv%d still starved at end of run (runnable for %v, bound %v)",
					v.DomID, v.Idx, wait, bound)
			}
		}
		if n := h.LostIPICount(); n > 0 {
			return fmt.Errorf("recovery: lost-IPI ledger not drained: %d interrupts still lost", n)
		}
		if pr.Result.MTTR > deadline {
			return fmt.Errorf("recovery: MTTR %v exceeds convergence deadline %v (repairs did not settle after quiesce)",
				pr.Result.MTTR, deadline)
		}
		return nil
	}
}

// RunRecoverySuite generates Count recovery scenarios (GenerateRecovery)
// and checks the convergence laws on each, shrinking and dumping failures
// exactly like RunSuite. Fixtures written here replay through CheckRecovery
// automatically — ReplayFixture dispatches on the Recovery field.
func RunRecoverySuite(opt Options) (*Report, error) {
	var c Checker
	return c.RunRecoverySuite(opt)
}

// RunRecoverySuite is the method form, letting tests inject a result
// mutation.
func (c *Checker) RunRecoverySuite(opt Options) (*Report, error) {
	return c.runSuite(opt, GenerateRecovery, c.CheckRecovery, func(s Scenario) bool {
		// Shrunk candidates that lose the recovery shape (e.g. the fault
		// plan dropped) are meaningless here, not passing: fail-closed.
		return recoveryShaped(s) && c.CheckRecovery(s) != nil
	})
}

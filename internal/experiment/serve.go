package experiment

import (
	"fmt"
	"io"

	"github.com/microslicedcore/microsliced/internal/core"
	"github.com/microslicedcore/microsliced/internal/report"
	"github.com/microslicedcore/microsliced/internal/simtime"
)

// ---------------------------------------------------------------------------
// Serving sweep — Figure-9-style grid for the open-loop request workload
// ---------------------------------------------------------------------------

// Serving grid parameters. The host mirrors the Figure 9 mixed shape: the
// serving VM's single vCPU also runs a lookbusy thread (so it never halts
// and earns no wake boost — the paper's mixed-vCPU problem) and shares its
// pinned pCPU with a CPU-hog co-runner VM. Three pCPUs leave room for both
// static micro-pool sizes.
const (
	servePCPUs   = 3
	serveRingCap = 48 // the iPerf scenarios' netback/socket buffering bound
)

// ServeRates is the offered-load axis of the serving sweep (requests/s).
// The top rate sits past the accelerated serve vCPU's capacity, so every
// config's SLO crossover is visible inside the sweep.
var ServeRates = []int{1000, 3000, 9000, 18000}

// ServeCoruns is the co-runner axis (paper §6.2's antagonists).
var ServeCoruns = []string{"lookbusy", "swaptions"}

// serveConfigs is the mechanism axis: baseline credit, the paper's static
// micro pools and Dynamic (Algorithm 1), plus the strongest rival.
var serveConfigs = []struct {
	name  string
	cc    core.Config
	rival Rival
}{
	{"baseline", offConfig(), RivalNone},
	{"static-1", core.StaticConfig(1), RivalNone},
	{"static-2", core.StaticConfig(2), RivalNone},
	{"dynamic", core.DefaultConfig(), RivalNone},
	{"vturbo", offConfig(), RivalVTurbo},
}

// serveSLOAttainTarget is the SLO attainment a cell must reach to count as
// "meeting the SLO" for the crossover report: at most 1% of offered
// requests violated (dropped or late).
const serveSLOAttainTarget = 0.99

// ServeMeasure is one cell of the serving grid.
type ServeMeasure struct {
	Config string        `json:"config"`
	Corun  string        `json:"corun"`
	Rate   int           `json:"rate_rps"`
	Stats  *RequestStats `json:"stats"`
}

// ViolPct is the fraction of offered requests that violated the SLO
// (dropped or completed late), in percent.
func (m *ServeMeasure) ViolPct() float64 {
	if m.Stats == nil || m.Stats.Offered == 0 {
		return 0
	}
	return 100 * float64(m.Stats.Dropped+m.Stats.Late) / float64(m.Stats.Offered)
}

// MetSLO reports whether the cell reached the attainment target.
func (m *ServeMeasure) MetSLO() bool {
	return m.ViolPct() <= 100*(1-serveSLOAttainTarget)
}

// ServeSweepResult is the full serving grid plus the per-config crossover:
// the highest swept rate at which the config still met the SLO (0 = none).
type ServeSweepResult struct {
	SLOMs     float64                   `json:"slo_ms"`
	Rows      []ServeMeasure            `json:"rows"`
	Crossover map[string]map[string]int `json:"crossover"` // corun → config → rate
}

// serveSetup builds one cell's scenario: serving VM (mixed with lookbusy)
// and a co-runner VM, both pinned to pCPU 0.
func serveSetup(cfgIdx, rate int, corun string, dur simtime.Duration) Setup {
	c := serveConfigs[cfgIdx]
	return Setup{
		PCPUs: servePCPUs,
		VMs: []VMSpec{
			{
				Name: "serve", App: "lookbusy", VCPUs: 1, Seed: 11,
				Pins: []int{0},
				Serve: &ServeSpec{
					RatePerSec: rate,
					RingCap:    serveRingCap,
					Seed:       77,
				},
			},
			{Name: corun, App: corun, VCPUs: 1, Seed: 22, Pins: []int{0}},
		},
		Core:     c.cc,
		Rival:    c.rival,
		Duration: dur,
	}
}

// ServeSweep runs the serving grid: every mechanism config × offered rate ×
// co-runner, reporting goodput-under-SLO, tail latency and the SLO
// crossover per config.
func ServeSweep(dur simtime.Duration) (*ServeSweepResult, error) {
	out := &ServeSweepResult{
		SLOMs:     float64(DefaultServeSLO) / 1e6,
		Crossover: map[string]map[string]int{},
	}
	type cell struct {
		cfg, rate int
		corun     string
	}
	var cells []cell
	for _, corun := range ServeCoruns {
		for ci := range serveConfigs {
			for _, r := range ServeRates {
				cells = append(cells, cell{cfg: ci, rate: r, corun: corun})
			}
		}
	}
	out.Rows = make([]ServeMeasure, len(cells))
	err := parallelDo(len(cells), func(i int) error {
		c := cells[i]
		res, err := Run(serveSetup(c.cfg, c.rate, c.corun, dur))
		if err != nil {
			return err
		}
		st := res.VM("serve").Requests
		if st == nil {
			return fmt.Errorf("experiment: serve cell %s/%s/%d: no request stats", serveConfigs[c.cfg].name, c.corun, c.rate)
		}
		out.Rows[i] = ServeMeasure{
			Config: serveConfigs[c.cfg].name,
			Corun:  c.corun,
			Rate:   c.rate,
			Stats:  st,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i := range out.Rows {
		m := &out.Rows[i]
		byCfg := out.Crossover[m.Corun]
		if byCfg == nil {
			byCfg = map[string]int{}
			out.Crossover[m.Corun] = byCfg
		}
		if m.MetSLO() && m.Rate > byCfg[m.Config] {
			byCfg[m.Config] = m.Rate
		}
	}
	return out, nil
}

// Render implements report.Renderer.
func (r *ServeSweepResult) Render(w io.Writer) {
	t := report.Table{
		Title: fmt.Sprintf("Serving sweep: open-loop RPC under co-run, %.0fms SLO (Figure 9 shape)", r.SLOMs),
		Columns: []string{
			"config", "corun", "rate (req/s)", "goodput<SLO (req/s)",
			"p99 (ms)", "p999 (ms)", "viol %", "drop", "SLO",
		},
	}
	for i := range r.Rows {
		m := &r.Rows[i]
		st := m.Stats
		met := "miss"
		if m.MetSLO() {
			met = "met"
		}
		t.AddRow(m.Config, m.Corun, m.Rate,
			fmt.Sprintf("%.0f", st.GoodputRPS),
			fmt.Sprintf("%.3f", float64(st.P99)/1e6),
			fmt.Sprintf("%.3f", float64(st.P999)/1e6),
			fmt.Sprintf("%.2f", m.ViolPct()),
			st.Dropped, met)
	}
	for _, corun := range ServeCoruns {
		byCfg := r.Crossover[corun]
		line := fmt.Sprintf("crossover vs %s (highest rate meeting the SLO):", corun)
		for _, c := range serveConfigs {
			rate := byCfg[c.name]
			if rate == 0 {
				line += fmt.Sprintf(" %s=never", c.name)
			} else {
				line += fmt.Sprintf(" %s=%d", c.name, rate)
			}
		}
		t.Notes = append(t.Notes, line)
	}
	t.Notes = append(t.Notes,
		"paper Figure 9: micro-slicing recovers I/O latency under the mixed co-run while baseline credit degrades it ~100x")
	t.Render(w)
}

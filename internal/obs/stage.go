package obs

import (
	"github.com/microslicedcore/microsliced/internal/metrics"
	"github.com/microslicedcore/microsliced/internal/simtime"
)

// Causal attribution: every span kind decomposes into an ordered set of
// *stages* — the distinct waits a request passes through between Begin and
// End. Stage boundaries are recorded on the open-span slot itself (a mark
// cursor plus a fixed-size duration array), so attribution rides the same
// free-listed table as the spans and stays allocation-free on hot paths.
//
// The contract is a conservation law: at End the time since the last mark is
// credited to the kind's *final* stage, so for every closed span
//
//	Σ stage durations == span duration   (exact, simulated time)
//
// holds by construction. internal/check enforces the aggregated form of this
// law (per-kind exact int64 ledgers) after every conformance run, which
// catches mis-attribution bugs such as staging against a recycled ref or a
// stale timestamp.

// maxStages bounds the stage count of any span kind; the per-span stage
// array is this long so slots stay fixed-size.
const maxStages = 5

// wake_dispatch stages: where a woken vCPU's scheduling turnaround went.
const (
	// WakeStageBoost: waiting on a runqueue at BOOST priority.
	WakeStageBoost = iota
	// WakeStageRunq: waiting on a normal-pool runqueue at UNDER/OVER.
	WakeStageRunq
	// WakeStageMicro: waiting on a micro-pool runqueue.
	WakeStageMicro
	// WakeStageDispatch: the final Begin/End remainder. hv credits every
	// wait segment from its state transitions, so a healthy run leaves this
	// at zero; nonzero means a dispatch closed the span without a matching
	// Running transition.
	WakeStageDispatch
)

// ipi_deliver stages: where a virtual IPI spent its delivery time.
const (
	// IPIStageSend: sender-side latency — emulation cost and wire delay up
	// to the delivery decision at the target.
	IPIStageSend = iota
	// IPIStageRetry: drop/retry backoff and time parked in the lost-IPI
	// ledger before a redrive.
	IPIStageRetry
	// IPIStageInject: injection latency into a running target.
	IPIStageInject
	// IPIStagePending: queued on a blocked or preempted target until
	// drainPending (the VTD case) — the End remainder.
	IPIStagePending
)

// lock_acquire stages: where a contended guest lock acquisition stalled.
const (
	// LockStageSpin: burning PLE windows on a pCPU (the final segment of a
	// live spinner's grant included).
	LockStageSpin = iota
	// LockStagePreempt: the spinner's vCPU was descheduled mid-spin — the
	// lock-holder-preemption wait the paper's micro-sliced pool attacks.
	LockStagePreempt
	// LockStageSleep: parked on a sleeping lock until the holder's release
	// wakes the waiter.
	LockStageSleep
)

// disk_io stages.
const (
	// DiskStageQueue: waiting in the virtual disk's submission queue for a
	// free device slot.
	DiskStageQueue = iota
	// DiskStageService: device service time — the End remainder.
	DiskStageService
)

// net_rx stages: the Figure 2 delivery chain, decomposed.
const (
	// NetStageRing: sitting in the NIC ring until the guest's IRQ handler
	// fetches the packet.
	NetStageRing = iota
	// NetStageSoftirq: hardirq + softirq processing up to socket delivery.
	NetStageSoftirq
	// NetStageSock: in the socket buffer until the application consumes it
	// — the End remainder.
	NetStageSock
)

// recover stages.
const (
	// RecoverStageRepair: the whole detect→reconverge episode (single
	// stage).
	RecoverStageRepair = iota
)

// request stages: where an open-loop serving request's end-to-end latency
// went. The first three mirror the net_rx delivery chain; the last two are
// the guest-side serving half.
const (
	// ReqStageRing: intended arrival to the guest IRQ handler's fetch —
	// NIC ring residency plus any pIRQ/vIRQ delivery delay.
	ReqStageRing = iota
	// ReqStageSoftirq: hardirq + softirq processing up to socket delivery.
	ReqStageSoftirq
	// ReqStageSock: in the socket buffer until a server thread consumes it
	// (includes the server's own queueing delay while busy).
	ReqStageSock
	// ReqStageService: consume to the dispatch of the reply op — the
	// request's compute/lock/syscall service profile.
	ReqStageService
	// ReqStageReply: the reply's transmit-path cost — the End remainder.
	ReqStageReply
)

// spanStageNames orders each kind's stages; index == the stage constants
// above.
var spanStageNames = [numSpanKinds][]string{
	SpanWakeDispatch: {"boost_wait", "runq_wait", "micro_wait", "dispatch"},
	SpanIPIDeliver:   {"send", "retry", "inject", "pending"},
	SpanLockAcquire:  {"spin", "preempt_wait", "sleep_wait"},
	SpanDiskIO:       {"queue_wait", "service"},
	SpanNetRx:        {"ring_wait", "softirq", "sock_wait"},
	SpanRecover:      {"repair"},
	SpanRequest:      {"ring_wait", "softirq", "sock_wait", "service", "reply"},
}

// spanFinalStage is the stage that absorbs the End remainder (time since the
// last explicit Stage mark), making the conservation law hold by
// construction.
var spanFinalStage = [numSpanKinds]uint8{
	SpanWakeDispatch: WakeStageDispatch,
	SpanIPIDeliver:   IPIStagePending,
	SpanLockAcquire:  LockStageSpin,
	SpanDiskIO:       DiskStageService,
	SpanNetRx:        NetStageSock,
	SpanRecover:      RecoverStageRepair,
	SpanRequest:      ReqStageReply,
}

// StageNames lists kind k's stage names in attribution order (nil for an
// unknown kind). The returned slice is a copy.
func StageNames(k SpanKind) []string {
	if k >= numSpanKinds {
		return nil
	}
	out := make([]string, len(spanStageNames[k]))
	copy(out, spanStageNames[k])
	return out
}

// Stage credits the time since ref's last stage mark (or its Begin) to the
// given stage and advances the mark to now. A zero or closed ref, or a stage
// out of range for the span's kind, is a no-op. Allocation-free.
func (o *Observer) Stage(ref SpanRef, stage int, now simtime.Time) {
	idx := int32(ref) - 1
	if idx < 0 || int(idx) >= len(o.spans.slots) {
		return
	}
	s := &o.spans.slots[idx]
	if !s.live || stage < 0 || stage >= len(spanStageNames[s.kind]) {
		return
	}
	s.stages[stage] += now - s.mark
	s.mark = now
}

// SpanLedger reports kind k's exact closed-span time budget: the summed
// duration of every closed span and its per-stage decomposition (indexed
// like StageNames). internal/check asserts total == Σ stages after every
// conformance run. Cold path.
func (o *Observer) SpanLedger(k SpanKind) (total int64, stages []int64) {
	if k >= numSpanKinds {
		return 0, nil
	}
	stages = make([]int64, len(spanStageNames[k]))
	copy(stages, o.stageTotal[k][:len(stages)])
	return o.spanTotal[k], stages
}

// OpenSpansByKind counts the currently open spans of every kind, indexed
// like SpanKinds(). Σ over kinds always equals OpenSpanCount().
func (o *Observer) OpenSpansByKind() []int {
	out := make([]int, numSpanKinds)
	copy(out, o.spans.openByKind[:])
	return out
}

// StageHist exposes the latency histogram of one (kind, stage) cell: the
// distribution of per-span accumulated stage time over spans where the stage
// was nonzero. Nil for an unknown kind or stage.
func (o *Observer) StageHist(k SpanKind, stage int) *metrics.Histogram {
	if k >= numSpanKinds || stage < 0 || stage >= len(spanStageNames[k]) {
		return nil
	}
	return o.stageHists[k][stage]
}

// SkewStageLedger deliberately corrupts the stage ledger of (k, stage) by d
// without touching the span ledger, violating the stage conservation law.
// Test-only: internal/check uses it to prove the law has teeth.
func (o *Observer) SkewStageLedger(k SpanKind, stage int, d simtime.Duration) {
	if k >= numSpanKinds || stage < 0 || stage >= len(spanStageNames[k]) {
		return
	}
	o.stageTotal[k][stage] += int64(d)
}

// wakeStageFor maps the (pool, state) a woken vCPU waited in to the
// wake_dispatch stage that wait belongs to.
func wakeStageFor(micro bool, st State) int {
	switch {
	case micro:
		return WakeStageMicro
	case st == StateBoosted:
		return WakeStageBoost
	default:
		return WakeStageRunq
	}
}

// sharesPct converts exact per-stage totals into percentages of their sum at
// 0.1% granularity, using largest-remainder rounding so the rounded shares
// always sum to exactly 100.0 (the blame-line contract). All-zero totals
// yield all-zero shares.
func sharesPct(totals []int64) []float64 {
	out := make([]float64, len(totals))
	var sum int64
	for _, t := range totals {
		sum += t
	}
	if sum <= 0 {
		return out
	}
	// Work in tenths of a percent: 1000 units to distribute.
	tenths := make([]int64, len(totals))
	rems := make([]int64, len(totals))
	var given int64
	for i, t := range totals {
		// t/sum * 1000, with the remainder kept for the second pass.
		tenths[i] = t * 1000 / sum
		rems[i] = t*1000 - tenths[i]*sum
		given += tenths[i]
	}
	for given < 1000 {
		// Hand the leftover tenths to the largest remainders (ties to the
		// earliest stage, keeping the result deterministic).
		best := -1
		for i := range rems {
			if rems[i] > 0 && (best < 0 || rems[i] > rems[best]) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		tenths[best]++
		rems[best] = 0
		given++
	}
	for i := range out {
		out[i] = float64(tenths[i]) / 10
	}
	return out
}

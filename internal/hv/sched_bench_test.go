package hv

import (
	"testing"

	"github.com/microslicedcore/microsliced/internal/simtime"
)

// BenchmarkStealScan measures pickNext's cross-queue steal on a wide pool:
// 16 pCPUs all busy, one runqueue stacked with runnable vCPUs, everyone
// else's empty. The occupancy bitmask reduces the scan to a single
// trailing-zeros probe of the one occupied queue; each iteration steals the
// head (dequeue) and puts it back (enqueue), exercising the full index
// maintenance of both hot paths.
func BenchmarkStealScan(b *testing.B) {
	clock, h := setup(16)
	d := h.NewDomain("vm", nil)
	runners := make([]*computeGuest, 16)
	for i := range runners {
		runners[i] = newComputeGuest(h, d, simtime.Second)
	}
	h.Start()
	for _, g := range runners {
		h.Wake(g.v, false)
	}
	clock.RunUntil(simtime.Millisecond) // every pCPU now runs a guest
	victim := h.pcpus[0]
	for i := 0; i < 8; i++ {
		e := newComputeGuest(h, d, simtime.Second)
		h.setRunnable(e.v)
		h.enqueue(victim, e.v)
	}
	stealer := h.pcpus[8]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := h.pickNext(stealer)
		if v == nil {
			b.Fatal("steal scan found nothing")
		}
		h.enqueue(victim, v)
	}
}

// BenchmarkWakeToDispatch measures the full wake → placement → dispatch →
// block cycle on a 16-pCPU host: homePCPU's idle-slot probe is one mask
// operation instead of a least-loaded walk over all members.
func BenchmarkWakeToDispatch(b *testing.B) {
	clock, h := setup(16)
	d := h.NewDomain("vm", nil)
	g := &haltGuest{h: h}
	g.v = h.AddVCPU(d, g)
	h.Start()
	for i := 0; i < 64; i++ {
		h.Wake(g.v, true)
		clock.RunUntil(clock.Now() + 100*simtime.Microsecond)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Wake(g.v, true)
		clock.RunUntil(clock.Now() + 100*simtime.Microsecond)
	}
}

// BenchmarkIdleTicks measures one simulated second of a fully idle 16-pCPU
// host per iteration. With idle-tick suppression the only periodic events
// left are the global accounting ticks — parked pCPUs cost nothing.
func BenchmarkIdleTicks(b *testing.B) {
	clock, h := setup(16)
	d := h.NewDomain("vm", nil)
	g := newComputeGuest(h, d, simtime.Millisecond)
	h.Start()
	h.Wake(g.v, false)
	clock.RunUntil(simtime.Millisecond + 2*h.Cfg.Tick) // drain; all ticks park
	if !g.done {
		b.Fatal("warmup guest never finished")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clock.RunUntil(clock.Now() + simtime.Second)
	}
}

package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"github.com/microslicedcore/microsliced/internal/simtime"
	"github.com/microslicedcore/microsliced/internal/trace"
)

// FlightRecord is one trace record rendered self-contained (kind by name)
// for a flight dump.
type FlightRecord struct {
	Time simtime.Time `json:"t_ns"`
	Kind string       `json:"kind"`
	Dom  int16        `json:"dom"`
	VCPU int16        `json:"vcpu"`
	PCPU int16        `json:"pcpu"`
	Arg0 uint64       `json:"arg0"`
	Arg1 uint64       `json:"arg1"`
}

// FlightDump is one flight-recorder snapshot: why it fired, the trace-ring
// tail leading up to the trigger, and the full accounting state at that
// instant. It is self-contained — everything needed to diagnose the trigger
// without re-running the scenario.
type FlightDump struct {
	Seq    int          `json:"seq"`
	Time   simtime.Time `json:"t_ns"`
	Label  string       `json:"label"`
	Reason string       `json:"reason"` // "invariant:<rule>" or "fault"
	Detail string       `json:"detail"`

	VCPUs     []VCPUResidency `json:"vcpus"`
	PCPUs     []PCPUResidency `json:"pcpus"`
	OpenSpans []OpenSpan      `json:"open_spans,omitempty"`
	// OpenByKind attributes the open spans to their kinds (kinds with none
	// open are omitted), so a dump names what leaked at a glance.
	OpenByKind map[string]int   `json:"open_by_kind,omitempty"`
	Trace      []FlightRecord   `json:"trace,omitempty"`
	Repairs    []RepairRecord   `json:"repairs,omitempty"`
	Decisions  []DecisionRecord `json:"decisions,omitempty"`

	// File is where the dump was written (empty for in-memory dumps).
	File string `json:"-"`
}

// Flight takes a snapshot: the last Config.FlightDepth records of tail, the
// residency tables and the open-span table, all as of now. Dumps beyond
// Config.MaxFlights are dropped (the first triggers are the interesting
// ones; a violation storm repeats itself). When Config.FlightDir is set the
// dump is also written as flight-<label>-<seq>.json there. Cold path.
func (o *Observer) Flight(now simtime.Time, reason, detail string, tail []trace.Record) {
	o.flightSeq++
	if len(o.flights) >= o.cfg.MaxFlights {
		return
	}
	if len(tail) > o.cfg.FlightDepth {
		tail = tail[len(tail)-o.cfg.FlightDepth:]
	}
	d := FlightDump{
		Seq:       o.flightSeq,
		Time:      now,
		Label:     o.cfg.Label,
		Reason:    reason,
		Detail:    detail,
		VCPUs:     o.ResidencySnapshot(now),
		PCPUs:     o.PCPUSnapshot(),
		OpenSpans: o.OpenSpans(),
	}
	for i, n := range o.OpenSpansByKind() {
		if n > 0 {
			if d.OpenByKind == nil {
				d.OpenByKind = make(map[string]int)
			}
			d.OpenByKind[SpanKind(i).String()] = n
		}
	}
	if o.repairTail != nil {
		d.Repairs = o.repairTail()
	}
	if o.decisionTail != nil {
		d.Decisions = o.decisionTail()
	}
	for _, r := range tail {
		d.Trace = append(d.Trace, FlightRecord{
			Time: r.Time, Kind: r.Kind.String(),
			Dom: r.Dom, VCPU: r.VCPU, PCPU: r.PCPU,
			Arg0: r.Arg0, Arg1: r.Arg1,
		})
	}
	if o.cfg.FlightDir != "" {
		if err := o.writeFlight(&d); err != nil && o.flightErr == nil {
			o.flightErr = err
		}
	}
	o.flights = append(o.flights, d)
}

func (o *Observer) writeFlight(d *FlightDump) error {
	if err := os.MkdirAll(o.cfg.FlightDir, 0o755); err != nil {
		return fmt.Errorf("obs: flight dir: %w", err)
	}
	name := filepath.Join(o.cfg.FlightDir,
		fmt.Sprintf("flight-%s-%03d.json", o.cfg.Label, d.Seq))
	buf, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: flight marshal: %w", err)
	}
	if err := os.WriteFile(name, append(buf, '\n'), 0o644); err != nil {
		return fmt.Errorf("obs: flight write: %w", err)
	}
	d.File = name
	return nil
}

// RepairRecord is one recovery-supervisor detection or repair rendered
// self-contained for a flight dump (the supervisor keeps the typed events;
// obs only carries them into dumps so it need not import the recovery
// package).
type RepairRecord struct {
	Time   simtime.Time `json:"t_ns"`
	Kind   string       `json:"kind"`
	Dom    int          `json:"dom"`
	VCPU   int          `json:"vcpu"`
	Detail string       `json:"detail,omitempty"`
}

// SetRepairTail registers a provider for the recovery supervisor's recent
// RepairEvents; every subsequent flight dump includes its result.
func (o *Observer) SetRepairTail(fn func() []RepairRecord) { o.repairTail = fn }

// DecisionRecord is one adaptive-controller sizing decision rendered
// self-contained for flight dumps, run summaries and trace export (the
// controller keeps the typed events; obs only carries them so it need not
// import the core package).
type DecisionRecord struct {
	Time    simtime.Time `json:"t_ns"`
	Epoch   uint64       `json:"epoch"`
	Reason  string       `json:"reason"`
	Chosen  int          `json:"micro_cores"`
	Ceiling int          `json:"ceiling"`
	IPIs    uint64       `json:"ipis"`
	PLEs    uint64       `json:"ples"`
	IRQs    uint64       `json:"irqs"`
}

// SetDecisionTail registers a provider for the adaptive controller's
// retained decision trail; every subsequent flight dump includes its
// result, so a dump shows what the controller was thinking when the
// trigger fired.
func (o *Observer) SetDecisionTail(fn func() []DecisionRecord) { o.decisionTail = fn }

// Flights returns the retained dumps.
func (o *Observer) Flights() []FlightDump { return o.flights }

// FlightsTriggered returns how many triggers fired, including ones dropped
// beyond MaxFlights.
func (o *Observer) FlightsTriggered() int { return o.flightSeq }

// FlightErr returns the first error hit writing dumps to FlightDir (nil
// when everything was written, or when dumps are in-memory only).
func (o *Observer) FlightErr() error { return o.flightErr }

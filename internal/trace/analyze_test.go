package trace

import (
	"bytes"
	"strings"
	"testing"

	"github.com/microslicedcore/microsliced/internal/simtime"
)

func rec(t simtime.Time, k Kind, dom, vcpu int16) Record {
	return Record{Time: t, Kind: k, Dom: dom, VCPU: vcpu}
}

func TestAnalyzeEmpty(t *testing.T) {
	a := Analyze(nil)
	if len(a.PerVCPU) != 0 || a.Window() != 0 {
		t.Fatal("empty analysis not empty")
	}
}

func TestAnalyzeRunAndWaitTimes(t *testing.T) {
	recs := []Record{
		rec(0, KindSchedule, 0, 0),  // runs 0..100
		rec(100, KindPreempt, 0, 0), // waits 100..150
		rec(100, KindSchedule, 0, 1),
		rec(150, KindPreempt, 0, 1),
		rec(150, KindSchedule, 0, 0), // runs 150..200
		rec(200, KindBlock, 0, 0),
		rec(200, KindSchedule, 0, 1), // still running at window end (250)
		rec(250, KindWake, 1, 0),
	}
	a := Analyze(recs)
	v0 := a.PerVCPU[VCPUKey{0, 0}]
	if v0.Dispatches != 2 || v0.Preempts != 1 || v0.Blocks != 1 {
		t.Fatalf("v0 %+v", v0)
	}
	if v0.RunTime != 150 {
		t.Fatalf("v0 run %v", v0.RunTime)
	}
	if v0.WaitHist.Count() != 1 || v0.WaitHist.Max() != 50 {
		t.Fatalf("v0 wait %s", v0.WaitHist)
	}
	v1 := a.PerVCPU[VCPUKey{0, 1}]
	// Second run interval closes at window end: 100..150 plus 200..250.
	if v1.RunTime != 100 {
		t.Fatalf("v1 run %v", v1.RunTime)
	}
	w := a.PerVCPU[VCPUKey{1, 0}]
	if w.Wakes != 1 {
		t.Fatalf("wake missing: %+v", w)
	}
	if a.Window() != 250 {
		t.Fatalf("window %v", a.Window())
	}
}

func TestAnalyzeYieldEndsRun(t *testing.T) {
	recs := []Record{
		rec(0, KindSchedule, 0, 0),
		rec(40, KindYield, 0, 0),
		rec(90, KindSchedule, 0, 0),
		rec(100, KindPreempt, 0, 0),
	}
	a := Analyze(recs)
	s := a.PerVCPU[VCPUKey{0, 0}]
	if s.Yields != 1 || s.RunTime != 50 {
		t.Fatalf("%+v", s)
	}
	if s.WaitHist.Max() != 50 {
		t.Fatalf("wait after yield %d", s.WaitHist.Max())
	}
}

func TestKeysSorted(t *testing.T) {
	recs := []Record{
		rec(0, KindSchedule, 1, 1),
		rec(1, KindSchedule, 0, 2),
		rec(2, KindSchedule, 0, 1),
	}
	a := Analyze(recs)
	keys := a.Keys()
	want := []VCPUKey{{0, 1}, {0, 2}, {1, 1}}
	for i, k := range keys {
		if k != want[i] {
			t.Fatalf("keys %v", keys)
		}
	}
}

func TestAnalysisRender(t *testing.T) {
	recs := []Record{
		rec(0, KindSchedule, 0, 0),
		rec(100, KindPreempt, 0, 0),
	}
	var buf bytes.Buffer
	Analyze(recs).Render(&buf)
	if !strings.Contains(buf.String(), "d0v0") {
		t.Fatalf("render: %s", buf.String())
	}
}

func TestYieldRIPs(t *testing.T) {
	recs := []Record{
		{Time: 1, Kind: KindYield, Dom: 0, Arg1: 0x10},
		{Time: 2, Kind: KindYield, Dom: 0, Arg1: 0x10},
		{Time: 3, Kind: KindYield, Dom: 1, Arg1: 0x20},
		{Time: 4, Kind: KindSchedule, Dom: 1, Arg1: 0x30}, // ignored
	}
	got := YieldRIPs(recs, func(dom int16, rip uint64) string {
		if rip == 0x10 {
			return "spin"
		}
		return "other"
	})
	if got["spin"] != 2 || got["other"] != 1 {
		t.Fatalf("%v", got)
	}
}

func TestVCPUKeyString(t *testing.T) {
	if (VCPUKey{2, 5}).String() != "d2v5" {
		t.Fatal("key string")
	}
}

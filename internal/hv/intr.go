package hv

import (
	"fmt"

	"github.com/microslicedcore/microsliced/internal/obs"
	"github.com/microslicedcore/microsliced/internal/simtime"
	"github.com/microslicedcore/microsliced/internal/trace"
)

// SendVIPI relays a virtual inter-processor interrupt from one vCPU of a
// domain to a sibling. Delivery semantics are the crux of the
// virtual-time-discontinuity problem:
//
//   - target Running:  injected after the IPI latency;
//   - target Blocked:  queued and the vCPU is woken (BOOST-eligible);
//   - target Runnable: queued — and *not* boosted, because Xen only boosts
//     wakeups of blocked vCPUs. The IPI waits for the target's next
//     scheduling turn, which under a 30 ms slice can be tens of ms away.
func (h *Hypervisor) SendVIPI(src, dst *VCPU, vec Vector, data uint64) {
	if src.Dom != dst.Dom {
		panic(fmt.Sprintf("hv: cross-domain IPI %v -> %v", src, dst))
	}
	h.hot.vipiSent.Inc()
	src.Dom.hot.vipiSent.Inc()
	h.emit(trace.KindVIPI, src, uint64(vec), uint64(dst.Idx))
	if h.Hooks.OnVIPIRelay != nil {
		h.Hooks.OnVIPIRelay(src, dst, vec)
	}
	// The ipi_deliver span opens at the send and rides the interrupt through
	// retries and pending queues to the target's OnInterrupt, so its latency
	// includes the full virtual-time discontinuity, not just injection cost.
	var span obs.SpanRef
	if h.Obs != nil {
		span = h.Obs.Begin(obs.SpanIPIDeliver, int16(dst.DomID), int16(dst.Idx), uint64(vec), h.Clock.Now())
	}
	if h.Hooks.IPIFault != nil {
		h.sendVIPIFaulty(dst, vec, data, 0, 0, span)
		return
	}
	h.deliver(dst, vec, data, span)
}

// LostIPI is one virtual IPI dropped past the retry limit under a fault
// plan that opted into outright loss (Hooks.IPILoss). The entry keeps
// everything needed to re-drive the interrupt later — including its open
// ipi_deliver span, so the eventual delivery closes the span with the full
// loss-to-redelivery latency.
type LostIPI struct {
	// Seq uniquely identifies the ledger entry (monotonic per run).
	Seq uint64
	// Time is the instant the interrupt was declared lost (this round).
	Time simtime.Time
	Dst  *VCPU
	Vec  Vector
	Data uint64
	// Redrives counts completed re-drives of this interrupt: a redriven
	// IPI that is lost again re-enters the ledger with Redrives+1, which
	// the recovery supervisor uses for exponential backoff.
	Redrives int

	span obs.SpanRef
}

// sendVIPIFaulty consults the fault hook for each delivery attempt. A
// dropped IPI is retried after IPIRetryDelay (the guest's IPI-wait path
// resending, as Linux's csd-lock watchdog eventually does); after
// IPIRetryLimit drops the interrupt is delivered unconditionally — unless
// Hooks.IPILoss opts into real loss, in which case the interrupt lands in
// the LostIPI ledger for the recovery supervisor to re-drive instead of
// silently wedging the guest.
func (h *Hypervisor) sendVIPIFaulty(dst *VCPU, vec Vector, data uint64, attempt, redrives int, span obs.SpanRef) {
	delay, drop := h.Hooks.IPIFault(vec)
	if drop && attempt < h.Cfg.IPIRetryLimit {
		h.hot.vipiDropped.Inc()
		h.Clock.AfterLabeled(h.Cfg.IPIRetryDelay, "ipi-retry", func() {
			// The backoff the dropped attempt cost is retry time, not send
			// time: attribute it before the next attempt begins.
			if h.Obs != nil {
				h.Obs.Stage(span, obs.IPIStageRetry, h.Clock.Now())
			}
			h.sendVIPIFaulty(dst, vec, data, attempt+1, redrives, span)
		})
		return
	}
	if drop && h.Hooks.IPILoss != nil && h.Hooks.IPILoss(vec) {
		h.lostSeq++
		h.lostIPIs = append(h.lostIPIs, LostIPI{
			Seq: h.lostSeq, Time: h.Clock.Now(),
			Dst: dst, Vec: vec, Data: data, Redrives: redrives,
			span: span,
		})
		h.hot.vipiLost.Inc()
		h.emit(trace.KindIPILost, dst, uint64(vec), uint64(redrives))
		return
	}
	if attempt > 0 {
		h.hot.vipiRetried.Inc()
	}
	if delay > 0 {
		h.Clock.AfterLabeled(delay, "ipi-delay", func() {
			h.deliver(dst, vec, data, span)
		})
		return
	}
	h.deliver(dst, vec, data, span)
}

// LostIPIs returns the current lost-interrupt ledger (live slice; do not
// mutate). Entries leave the ledger only via RedriveLostIPI.
func (h *Hypervisor) LostIPIs() []LostIPI { return h.lostIPIs }

// LostIPICount returns the number of interrupts currently lost.
func (h *Hypervisor) LostIPICount() int { return len(h.lostIPIs) }

// RedriveLostIPI removes ledger entry seq and re-sends the interrupt from
// retry attempt zero with its Redrives count incremented. If the fault hook
// drops it past the limit again it re-enters the ledger (new Seq, new loss
// time); after quiesce the hook stops dropping and the redrive delivers.
// Returns false if seq is not in the ledger.
func (h *Hypervisor) RedriveLostIPI(seq uint64) bool {
	for i := range h.lostIPIs {
		if h.lostIPIs[i].Seq != seq {
			continue
		}
		e := h.lostIPIs[i]
		n := copy(h.lostIPIs[i:], h.lostIPIs[i+1:])
		h.lostIPIs = h.lostIPIs[:i+n]
		// Ledger dwell time (loss to redrive) is retry/backoff time.
		if h.Obs != nil {
			h.Obs.Stage(e.span, obs.IPIStageRetry, h.Clock.Now())
		}
		if h.Hooks.IPIFault != nil {
			h.sendVIPIFaulty(e.Dst, e.Vec, e.Data, 0, e.Redrives+1, e.span)
		} else {
			h.deliver(e.Dst, e.Vec, e.Data, e.span)
		}
		return true
	}
	return false
}

// InjectPIRQ is called by device models (internal/vnet) when a physical
// interrupt arrives. The hypervisor spends PIRQCost handling the VMEXIT and
// then forwards a virtual IRQ to the domain's designated IRQ vCPU.
func (h *Hypervisor) InjectPIRQ(d *Domain, vec Vector, data uint64) {
	h.hot.pirq.Inc()
	h.emit(trace.KindPIRQ, nil, uint64(vec), uint64(d.ID))
	h.Clock.AfterLabeled(h.Cfg.PIRQCost, "pirq", func() {
		if d.IRQVCPU < 0 || d.IRQVCPU >= len(d.VCPUs) {
			panic(fmt.Sprintf("hv: domain %s has bad IRQ vCPU %d", d.Name, d.IRQVCPU))
		}
		target := d.VCPUs[d.IRQVCPU]
		target.virqRecv++
		h.hot.virqSent.Inc()
		d.hot.virqSent.Inc()
		h.emit(trace.KindVIRQ, target, uint64(vec), 0)
		if h.Hooks.OnVIRQRelay != nil {
			h.Hooks.OnVIRQRelay(target)
		}
		h.deliver(target, vec, data, 0)
	})
}

// InjectPIRQTo routes a device interrupt to a specific vCPU — per-queue
// MSI-X semantics (e.g. an NVMe completion queue bound to the submitting
// CPU) — applying the same hypervisor handling cost and relay hook as
// InjectPIRQ.
func (h *Hypervisor) InjectPIRQTo(target *VCPU, vec Vector, data uint64) {
	h.hot.pirq.Inc()
	h.emit(trace.KindPIRQ, target, uint64(vec), uint64(target.DomID))
	h.Clock.AfterLabeled(h.Cfg.PIRQCost, "pirq", func() {
		target.virqRecv++
		h.hot.virqSent.Inc()
		target.Dom.hot.virqSent.Inc()
		h.emit(trace.KindVIRQ, target, uint64(vec), 0)
		if h.Hooks.OnVIRQRelay != nil {
			h.Hooks.OnVIRQRelay(target)
		}
		h.deliver(target, vec, data, 0)
	})
}

// deliver routes an interrupt to dst according to its scheduling state.
func (h *Hypervisor) deliver(dst *VCPU, vec Vector, data uint64, span obs.SpanRef) {
	// Everything between the send (or the last retry) and the delivery
	// decision — emulation cost, wire delay — is sender-side time.
	if h.Obs != nil {
		h.Obs.Stage(span, obs.IPIStageSend, h.Clock.Now())
	}
	switch dst.state {
	case StateRunning:
		h.Clock.AfterLabeled(h.Cfg.IPILatency, "inject", func() {
			h.injectOrQueue(dst, vec, data, span)
		})
	case StateBlocked:
		dst.pending = append(dst.pending, PendingIRQ{Vec: vec, Data: data, Span: span})
		h.Wake(dst, true)
	case StateRunnable:
		// The VTD case: the interrupt sits until the next scheduling turn.
		dst.pending = append(dst.pending, PendingIRQ{Vec: vec, Data: data, Span: span})
		h.hot.irqDeferred.Inc()
		dst.Dom.hot.irqDeferred.Inc()
	}
}

// injectOrQueue fires OnInterrupt if dst is still running with the guest
// active, otherwise queues (the state may have changed during the
// injection latency).
func (h *Hypervisor) injectOrQueue(dst *VCPU, vec Vector, data uint64, span obs.SpanRef) {
	// The injection latency just elapsed, whether or not the target is
	// still running; the End remainder would otherwise misattribute it as
	// pending-queue time.
	if h.Obs != nil {
		h.Obs.Stage(span, obs.IPIStageInject, h.Clock.Now())
	}
	if dst.state == StateRunning && dst.warmupEv == nil {
		if h.Obs != nil {
			h.Obs.End(span, h.Clock.Now())
		}
		dst.Guest.OnInterrupt(h.Clock.Now(), vec, data)
		return
	}
	dst.pending = append(dst.pending, PendingIRQ{Vec: vec, Data: data, Span: span})
	if dst.state == StateBlocked {
		h.Wake(dst, true)
	}
}

// drainPending delivers queued interrupts to a vCPU that just started
// running. Each OnInterrupt may change guest state; delivery stops if the
// guest yields or blocks mid-drain.
func (h *Hypervisor) drainPending(v *VCPU) {
	for len(v.pending) > 0 && v.state == StateRunning {
		irq := v.pending[0]
		// Pop by copy-down, not re-slicing: v.pending = v.pending[1:] would
		// strand the backing array's head and make every later append
		// reallocate; shifting keeps the array reusable forever.
		n := copy(v.pending, v.pending[1:])
		v.pending = v.pending[:n]
		if h.Obs != nil {
			h.Obs.End(irq.Span, h.Clock.Now())
		}
		v.Guest.OnInterrupt(h.Clock.Now(), irq.Vec, irq.Data)
	}
}

// DeliverLocal queues an interrupt directly to a vCPU, bypassing domain
// routing. The guest model uses it for per-vCPU timer interrupts.
func (h *Hypervisor) DeliverLocal(dst *VCPU, vec Vector, data uint64) {
	h.deliver(dst, vec, data, 0)
}

package check

import (
	"fmt"
	"strings"

	"github.com/microslicedcore/microsliced/internal/experiment"
	"github.com/microslicedcore/microsliced/internal/hv"
	"github.com/microslicedcore/microsliced/internal/obs"
	"github.com/microslicedcore/microsliced/internal/simtime"
)

// sumCounters are the per-event counters kept in triplicate — per-vCPU or
// per-domain and hypervisor-wide — whose ledgers must agree exactly.
var sumCounters = []string{
	"yield.ple", "yield.ipi", "yield.halt", "yield.other", "yield.total",
	"vipi.sent", "virq.sent", "irq.deferred", "migrate.micro",
}

// yieldReasons pairs each counter name with its YieldReason for the
// per-vCPU ledger walk.
var yieldReasons = []struct {
	name   string
	reason hv.YieldReason
}{
	{"yield.ple", hv.YieldPLE},
	{"yield.ipi", hv.YieldIPIWait},
	{"yield.halt", hv.YieldHalt},
	{"yield.other", hv.YieldOther},
}

// Conservation verifies the post-run accounting laws on a finished
// simulation world. It is shaped as an experiment.Setup.PostCheck (and as
// the process-wide hook paperbench -check installs):
//
//   - Σ per-vCPU RanTotal == Σ per-pCPU Busy (runtime is double-entry)
//   - every credit balance within [CreditFloor, CreditCap]
//   - per-vCPU yield counts sum to per-domain counters, per-domain
//     counters sum to the hypervisor-wide hot counters, and yield.total
//     equals the sum over reasons, at every level
//   - Σ per-vCPU MicroVisits == migrate.micro, and migrate.home never
//     exceeds migrate.micro (nothing leaves the micro pool it never entered)
//   - observer residency totals equal wall virtual time per vCPU, and the
//     observer's per-pCPU busy mirror equals the hypervisor's
//   - every opened span is closed, cancelled or still reported open
//   - the invariant auditor (when armed) found nothing
//   - the scheduler's derived occupancy index (pool bitmasks, slot
//     numbering, cached head priorities, parked-tick bookkeeping) matches
//     the ground-truth runqueues at end of run
func Conservation(pr *experiment.PostRun) error {
	return conservation(pr, 0)
}

// conservation is the shared implementation. violationsAfter lets recovery
// runs tolerate auditor violations raised while faults were still firing:
// only violations stamped at or after that time fail the run (zero keeps
// the strict every-violation-fails behaviour).
func conservation(pr *experiment.PostRun, violationsAfter simtime.Time) error {
	var errs []string
	fail := func(format string, args ...any) {
		errs = append(errs, fmt.Sprintf(format, args...))
	}
	h := pr.HV
	cfg := h.Cfg

	if err := h.VerifySchedIndex(); err != nil {
		fail("scheduler index: %v", err)
	}

	var ran, busy simtime.Duration
	for _, v := range h.VCPUs() {
		ran += v.RanTotal()
	}
	for _, p := range h.AllPCPUs() {
		busy += p.Busy()
		if p.Busy() < 0 || p.Busy() > simtime.Duration(pr.Now) {
			fail("pCPU %d busy %v outside [0, %v]", p.ID, p.Busy(), pr.Now)
		}
	}
	if ran != busy {
		fail("Σ vCPU RanTotal %v != Σ pCPU Busy %v", ran, busy)
	}

	for _, v := range h.VCPUs() {
		if c := v.Credits(); c < cfg.CreditFloor || c > cfg.CreditCap {
			fail("d%dv%d credits %d outside [%d, %d]", v.DomID, v.Idx, c, cfg.CreditFloor, cfg.CreditCap)
		}
	}

	hvSnap := h.Counters.Snapshot()
	var microVisits uint64
	for _, v := range h.VCPUs() {
		microVisits += v.MicroVisits()
	}
	if got := hvSnap["migrate.micro"]; microVisits != got {
		fail("Σ vCPU MicroVisits %d != migrate.micro %d", microVisits, got)
	}
	if hvSnap["migrate.home"] > hvSnap["migrate.micro"] {
		fail("migrate.home %d exceeds migrate.micro %d", hvSnap["migrate.home"], hvSnap["migrate.micro"])
	}

	for _, d := range h.Domains() {
		var domYields uint64
		for _, yr := range yieldReasons {
			var sum uint64
			for _, v := range d.VCPUs {
				sum += v.YieldsBy(yr.reason)
			}
			if got := d.Counters.Value(yr.name); sum != got {
				fail("domain %d: Σ vCPU %s %d != domain counter %d", d.ID, yr.name, sum, got)
			}
			domYields += sum
		}
		if got := d.Counters.Value("yield.total"); domYields != got {
			fail("domain %d: Σ yield reasons %d != yield.total %d", d.ID, domYields, got)
		}
	}
	for _, name := range sumCounters {
		var sum uint64
		for _, d := range h.Domains() {
			sum += d.Counters.Value(name)
		}
		if got := hvSnap[name]; sum != got {
			fail("Σ domain %s %d != hypervisor %s %d", name, sum, name, got)
		}
	}
	var yieldByReason uint64
	for _, yr := range yieldReasons {
		yieldByReason += hvSnap[yr.name]
	}
	if got := hvSnap["yield.total"]; yieldByReason != got {
		fail("Σ hypervisor yield reasons %d != yield.total %d", yieldByReason, got)
	}
	var virqRecv uint64
	for _, v := range h.VCPUs() {
		virqRecv += v.VIRQReceived()
	}
	if sent := hvSnap["virq.sent"]; virqRecv > sent {
		fail("Σ vCPU VIRQReceived %d exceeds virq.sent %d", virqRecv, sent)
	}

	// Request conservation: a serving VM's pipeline ledger must balance at
	// every hand-off — offered splits into dropped and admitted, admitted
	// into ring-resident, mid-softirq and delivered, delivered into
	// socket-resident and consumed, consumed into in-service and completed.
	// A request lost between stages (or counted twice) breaks one of these
	// exact equalities.
	var reqInFlight, reqCompleted uint64
	haveServe := false
	for i := range pr.Result.VMs {
		rq := pr.Result.VMs[i].Requests
		if rq == nil {
			continue
		}
		haveServe = true
		name := pr.Result.VMs[i].Name
		if rq.Offered != rq.Dropped+rq.Admitted {
			fail("requests %s: offered %d != dropped %d + admitted %d", name, rq.Offered, rq.Dropped, rq.Admitted)
		}
		if rq.Admitted != uint64(rq.RingResident)+uint64(rq.SoftirqResident)+rq.Delivered {
			fail("requests %s: admitted %d != ring %d + softirq %d + delivered %d",
				name, rq.Admitted, rq.RingResident, rq.SoftirqResident, rq.Delivered)
		}
		if rq.Delivered != uint64(rq.SockResident)+rq.Consumed {
			fail("requests %s: delivered %d != sock %d + consumed %d", name, rq.Delivered, rq.SockResident, rq.Consumed)
		}
		if rq.Consumed != uint64(rq.InService)+rq.Completed {
			fail("requests %s: consumed %d != in-service %d + completed %d", name, rq.Consumed, rq.InService, rq.Completed)
		}
		if rq.InFlight != rq.Offered-rq.Dropped-rq.Completed {
			fail("requests %s: in-flight %d != offered %d - dropped %d - completed %d",
				name, rq.InFlight, rq.Offered, rq.Dropped, rq.Completed)
		}
		if rq.Late > rq.Completed {
			fail("requests %s: late %d exceeds completed %d", name, rq.Late, rq.Completed)
		}
		reqInFlight += rq.InFlight
		reqCompleted += rq.Completed
	}

	if o := pr.Obs; o != nil {
		if haveServe {
			// The observer's request-span ledger must mirror the flow
			// ledgers: one span open per in-flight request, one closed
			// (latency-recorded) span per completed request.
			if open := o.OpenSpansByKind()[obs.SpanRequest]; uint64(open) != reqInFlight {
				fail("requests: %d open request spans != Σ in-flight %d", open, reqInFlight)
			}
			if got := uint64(o.Hist(obs.SpanRequest).Count()); got != reqCompleted {
				fail("requests: %d closed request spans != Σ completed %d", got, reqCompleted)
			}
		}
		for _, r := range o.ResidencySnapshot(pr.Now) {
			total := r.Running + r.Runnable + r.Boosted + r.Blocked
			if total != simtime.Duration(pr.Now) {
				fail("d%dv%d residency total %v != wall time %v", r.Dom, r.VCPU, total, pr.Now)
			}
			if r.MicroTotal > simtime.Duration(pr.Now) || r.MicroRunning > r.Running {
				fail("d%dv%d micro residency (%v run / %v total) out of bounds", r.Dom, r.VCPU, r.MicroRunning, r.MicroTotal)
			}
		}
		for _, p := range o.PCPUSnapshot() {
			if hvBusy := h.PCPU(p.ID).Busy(); p.Busy != hvBusy {
				fail("pCPU %d: observer busy %v != hypervisor busy %v", p.ID, p.Busy, hvBusy)
			}
		}
		begun, closed, cancelled := o.SpanCounts()
		open := uint64(o.OpenSpanCount())
		if begun != closed+cancelled+open {
			fail("span ledger: begun %d != closed %d + cancelled %d + open %d", begun, closed, cancelled, open)
		}
		// Stage conservation: every closed span's stage decomposition sums
		// exactly to its duration, so the per-kind exact ledgers must agree
		// — a mis-attributed stage (stale timestamp, recycled ref, skipped
		// hook) shows up as a kind whose stages don't add up.
		openByKind := o.OpenSpansByKind()
		openSum := 0
		for i, kind := range obs.SpanKinds() {
			k := obs.SpanKind(i)
			total, stages := o.SpanLedger(k)
			var stageSum int64
			for si, s := range stages {
				if s < 0 {
					fail("stage ledger: %s/%s total %d negative", kind, obs.StageNames(k)[si], s)
				}
				stageSum += s
			}
			if stageSum != total {
				fail("stage ledger: %s Σ stages %d != span total %d", kind, stageSum, total)
			}
			if openByKind[i] < 0 {
				fail("open spans: %s count %d negative", kind, openByKind[i])
			}
			openSum += openByKind[i]
		}
		if openSum != int(open) {
			fail("open spans: Σ per-kind %d != open count %d", openSum, open)
		}
	}

	// Controller decision-trail structural laws: the retained ring never
	// exceeds the exact total, timestamps and epochs are monotone (oldest
	// first), and every decision's chosen size lies within the live
	// capacity ceiling it recorded.
	if uint64(len(pr.Result.Decisions)) > pr.Result.DecisionCount {
		fail("decision log: %d retained entries exceed total %d",
			len(pr.Result.Decisions), pr.Result.DecisionCount)
	}
	var lastDecT simtime.Time
	var lastEpoch uint64
	for i, d := range pr.Result.Decisions {
		if d.Time < lastDecT || d.Epoch < lastEpoch {
			fail("decision log: entry %d (t=%v epoch %d) precedes entry %d (t=%v epoch %d)",
				i, d.Time, d.Epoch, i-1, lastDecT, lastEpoch)
		}
		lastDecT, lastEpoch = d.Time, d.Epoch
		if d.Chosen < 0 || d.Chosen > d.Ceiling {
			fail("decision log: entry %d (t=%v %s) chose %d micro cores outside [0, %d]",
				i, d.Time, d.Reason, d.Chosen, d.Ceiling)
		}
	}

	// Gauge-integral law: the controller's MicroGauge, stepped only at its
	// own resizes (plus the capacity-change re-sync), must integrate to the
	// hypervisor's independent micro-pool residency ledger, which accrues
	// at every pool-membership mutation. Rivals and the recovery supervisor
	// resize the pool directly through hv — bypassing the gauge by design —
	// so the law only binds when neither is attached.
	if ctrl := pr.Ctrl; ctrl != nil && pr.Setup.Rival == experiment.RivalNone && pr.Setup.Recovery == nil {
		want := pr.HV.MicroCoreNs(pr.Now)
		if got := int64(ctrl.MicroGauge.Integral(int64(pr.Now))); got != want {
			fail("micro gauge integral %d core·ns != hv micro-pool residency %d core·ns", got, want)
		}
	}

	late := 0
	for i := range pr.Result.Violations {
		if pr.Result.Violations[i].Time >= violationsAfter {
			if late == 0 {
				v := &pr.Result.Violations[i]
				fail("invariant violation %s at t=%v: %s", v.Rule, v.Time, v.Detail)
			}
			late++
		}
	}
	if late > 1 {
		errs[len(errs)-1] += fmt.Sprintf(" (+%d more)", late-1)
	}

	if len(errs) > 0 {
		return fmt.Errorf("conservation: %s", strings.Join(errs, "; "))
	}
	return nil
}

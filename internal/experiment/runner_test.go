package experiment

import (
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/microslicedcore/microsliced/internal/core"
)

// twoVMSetup is the determinism-regression scenario: two VMs, detection on,
// fixed seeds.
func twoVMSetup() Setup {
	return corunSetup("exim", core.StaticConfig(1), quick)
}

// TestRunFullyDeterministic runs the identical two-VM Setup twice with the
// same seed and requires the *entire* Result — units, yield breakdowns,
// counter snapshots, lock/TLB histograms, symbol hits — to be identical.
func TestRunFullyDeterministic(t *testing.T) {
	a, err := Run(twoVMSetup())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(twoVMSetup())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("identical seeded runs diverged:\nrun1: HV=%v Core=%v\nrun2: HV=%v Core=%v",
			a.HV, a.Core, b.HV, b.Core)
	}
}

// TestRunAllMatchesSerial is the tentpole's equivalence check: the same grid
// run serially and under the parallel worker pool must produce bit-for-bit
// identical Results in the same order.
func TestRunAllMatchesSerial(t *testing.T) {
	grid := []Setup{
		twoVMSetup(),
		soloSetup("gmake", quick),
		corunSetup("dedup", offConfig(), quick),
		corunSetup("exim", core.DefaultConfig(), quick),
	}
	serial := make([]*Result, len(grid))
	for i, s := range grid {
		r, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = r
	}
	old := Parallelism()
	SetParallelism(4)
	defer SetParallelism(old)
	par, err := RunAll(grid)
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != len(serial) {
		t.Fatalf("RunAll returned %d results, want %d", len(par), len(serial))
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i], par[i]) {
			t.Fatalf("setup %d: serial and RunAll results differ", i)
		}
	}
}

func TestRunAllPropagatesLowestIndexError(t *testing.T) {
	grid := []Setup{
		soloSetup("gmake", quick),
		soloSetup("gmake", quick),
		soloSetup("gmake", quick),
	}
	grid[1].VMs[0].App = "bogus-b"
	grid[2].VMs[0].App = "bogus-c"
	SetParallelism(3)
	defer SetParallelism(0)
	res, err := RunAll(grid)
	if err == nil {
		t.Fatal("RunAll swallowed the setup error")
	}
	if res != nil {
		t.Fatal("RunAll returned results alongside an error")
	}
	// The lowest failing index (1, app bogus-b) must win deterministically.
	if want := "bogus-b"; !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not name the lowest-index failure %q", err, want)
	}
}

func TestParallelDoCoversAllIndicesOnce(t *testing.T) {
	const n = 100
	var hits [n]atomic.Int64
	SetParallelism(8)
	defer SetParallelism(0)
	if err := parallelDo(n, func(i int) error {
		hits[i].Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range hits {
		if got := hits[i].Load(); got != 1 {
			t.Fatalf("index %d ran %d times", i, got)
		}
	}
}

func TestParallelDoSerialFailFast(t *testing.T) {
	SetParallelism(1)
	defer SetParallelism(0)
	ran := 0
	err := parallelDo(10, func(i int) error {
		ran++
		if i == 3 {
			return fmt.Errorf("boom at %d", i)
		}
		return nil
	})
	if err == nil || err.Error() != "boom at 3" {
		t.Fatalf("err=%v", err)
	}
	if ran != 4 {
		t.Fatalf("serial mode ran %d tasks after failure, want 4", ran)
	}
}

func TestSetParallelismClampsNegative(t *testing.T) {
	SetParallelism(-5)
	defer SetParallelism(0)
	if Parallelism() < 1 {
		t.Fatalf("Parallelism()=%d after negative set", Parallelism())
	}
}

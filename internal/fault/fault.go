// Package fault implements deterministic, seeded fault injection for
// simulation runs. A Config describes which perturbations to apply; a Plan
// pre-draws every random decision's stream from internal/rng so two runs
// with the same Config produce bit-for-bit identical fault schedules —
// fault runs are as reproducible as fault-free ones.
//
// The injectors model the adverse timing the paper's mechanism exists to
// survive: pCPU capacity loss mid-run (hot-unplug/replug — the micro-pool
// controller and credit scheduler must rebalance), delayed or dropped IPIs
// with bounded retry, scheduler-tick jitter, and lock-holder stall
// amplification inside guest critical sections.
//
// Beyond the polite faults above, a plan can schedule harsh classes that
// damage the machine rather than merely perturbing it: permanent pCPU loss
// (no replug), correlated fault storms (windows where IPI drop, tick jitter,
// and lock stalls all intensify at once), and outright IPI loss past the
// retry limit (surfaced to the hypervisor as a typed LostIPI ledger entry
// instead of the usual deliver-anyway backstop). A QuiesceAt instant gates
// every injector: at and after it no new fault fires, which gives the
// recovery supervisor a defined point to converge from.
package fault

import (
	"fmt"
	"sort"

	"github.com/microslicedcore/microsliced/internal/guest"
	"github.com/microslicedcore/microsliced/internal/hv"
	"github.com/microslicedcore/microsliced/internal/rng"
	"github.com/microslicedcore/microsliced/internal/simtime"
)

// Storm intensity floors: inside a storm window each polite-fault parameter
// is raised to at least these values (a configured harsher value wins).
const (
	stormIPIDropProb     = 0.5
	stormIPIDelayProb    = 0.5
	stormIPIDelayMax     = 200 * simtime.Microsecond
	stormTickJitter      = simtime.Millisecond
	stormLockStallProb   = 0.3
	stormLockStallFactor = 4.0
)

// Config selects the faults to inject. The zero value injects nothing.
type Config struct {
	// Seed seeds the fault plan's own RNG streams (decorrelated from the
	// workload streams, so enabling a fault never reshuffles workload
	// randomness).
	Seed uint64

	// OfflinePCPUs hot-unplugs this many pCPUs mid-run, each at a
	// deterministic pseudo-random point in [20%, 50%] of the run, and
	// brings each back online 20–40% of the run later. pCPU 0 is never
	// unplugged, so at least one normal-pool core always remains.
	OfflinePCPUs int

	// PermanentOfflinePCPUs hot-unplugs this many additional pCPUs that
	// never come back: permanent capacity loss the scheduler (and the
	// recovery supervisor's micro-pool auto-shrink) must absorb. Drawn from
	// the same no-repeat permutation as OfflinePCPUs; pCPU 0 stays online.
	PermanentOfflinePCPUs int

	// IPIDelayProb delays each virtual IPI with this probability by a
	// uniform duration in (0, IPIDelayMax].
	IPIDelayProb float64
	IPIDelayMax  simtime.Duration

	// IPIDropProb drops each IPI delivery attempt with this probability.
	// Dropped IPIs are retried (hv.Config.IPIRetryDelay apart, up to
	// IPIRetryLimit attempts) and then delivered unconditionally: the
	// fault perturbs timing, it never loses an interrupt outright —
	// unless LoseIPIs opts into real loss.
	IPIDropProb float64

	// LoseIPIs makes an IPI that is still being dropped at the final retry
	// attempt lost outright instead of delivered unconditionally. The
	// hypervisor records each loss in its LostIPI ledger (typed event,
	// trace record, vipi.lost counter) for the recovery supervisor to
	// re-drive. Requires a drop source (IPIDropProb or Storms).
	LoseIPIs bool

	// TickJitter perturbs every scheduler tick by a uniform offset in
	// [-TickJitter, +TickJitter] (clamped so delays stay non-negative).
	TickJitter simtime.Duration

	// LockStallProb amplifies each guest critical section with this
	// probability, scaling its duration by LockStallFactor — a lock
	// holder stalling mid-section, the raw material of LHP.
	LockStallProb   float64
	LockStallFactor float64

	// Storms schedules this many correlated fault bursts: windows of
	// StormLen in which IPI drop/delay, tick jitter, and lock stalls are
	// all raised to at least the storm floors simultaneously. Windows are
	// drawn deterministically in [10%, 70%] of the pre-quiesce run.
	Storms int

	// StormLen is the length of each storm window (0: 5% of the run).
	StormLen simtime.Duration

	// QuiesceAt, when > 0, stops all fault injection at that instant: no
	// IPI is dropped, delayed, or lost, no tick is jittered, no lock
	// stalls, and no unplug initiates at or after it (replugs still fire —
	// they are repairs, not faults). This gives recovery conformance runs
	// a defined chaos→convergence boundary.
	QuiesceAt simtime.Duration
}

// ConfigError describes one rejected Config field (or a field/run-shape
// combination rejected at New time).
type ConfigError struct {
	Field  string
	Reason string
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("fault: invalid %s: %s", e.Field, e.Reason)
}

// Enabled reports whether the config injects any fault at all.
func (c Config) Enabled() bool {
	return c.OfflinePCPUs > 0 || c.PermanentOfflinePCPUs > 0 ||
		c.IPIDelayProb > 0 || c.IPIDropProb > 0 ||
		c.TickJitter > 0 ||
		c.LockStallProb > 0 ||
		c.Storms > 0
}

// Validate rejects out-of-range parameters with a typed *ConfigError.
func (c Config) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"IPIDelayProb", c.IPIDelayProb},
		{"IPIDropProb", c.IPIDropProb},
		{"LockStallProb", c.LockStallProb},
	} {
		if p.v < 0 || p.v > 1 {
			return &ConfigError{p.name, fmt.Sprintf("%v outside [0, 1]", p.v)}
		}
	}
	if c.OfflinePCPUs < 0 {
		return &ConfigError{"OfflinePCPUs", fmt.Sprintf("%d negative", c.OfflinePCPUs)}
	}
	if c.PermanentOfflinePCPUs < 0 {
		return &ConfigError{"PermanentOfflinePCPUs", fmt.Sprintf("%d negative", c.PermanentOfflinePCPUs)}
	}
	if c.IPIDelayProb > 0 && c.IPIDelayMax <= 0 {
		return &ConfigError{"IPIDelayMax", fmt.Sprintf("IPIDelayProb %v needs IPIDelayMax > 0", c.IPIDelayProb)}
	}
	if c.IPIDelayMax < 0 {
		return &ConfigError{"IPIDelayMax", fmt.Sprintf("%v negative", c.IPIDelayMax)}
	}
	if c.TickJitter < 0 {
		return &ConfigError{"TickJitter", fmt.Sprintf("%v negative", c.TickJitter)}
	}
	if c.LockStallProb > 0 && c.LockStallFactor < 1 {
		return &ConfigError{"LockStallFactor", fmt.Sprintf("%v must be >= 1", c.LockStallFactor)}
	}
	if c.Storms < 0 {
		return &ConfigError{"Storms", fmt.Sprintf("%d negative", c.Storms)}
	}
	if c.StormLen < 0 {
		return &ConfigError{"StormLen", fmt.Sprintf("%v negative", c.StormLen)}
	}
	if c.LoseIPIs && c.IPIDropProb <= 0 && c.Storms <= 0 {
		return &ConfigError{"LoseIPIs", "needs a drop source (IPIDropProb > 0 or Storms > 0)"}
	}
	if c.QuiesceAt < 0 {
		return &ConfigError{"QuiesceAt", fmt.Sprintf("%v negative", c.QuiesceAt)}
	}
	return nil
}

// HotplugEvent is one scheduled pCPU unplug (and, unless Permanent, replug).
type HotplugEvent struct {
	PCPU int
	Off  simtime.Time
	// On is the replug instant; meaningless when Permanent.
	On simtime.Time
	// Permanent marks capacity loss with no replug.
	Permanent bool
}

// StormWindow is one scheduled correlated-burst interval [Start, End).
type StormWindow struct {
	Start simtime.Time
	End   simtime.Time
}

// Plan is an instantiated fault schedule for one run. Construct with New,
// then Attach to the hypervisor (and AttachGuest to each kernel) before
// the clock runs.
type Plan struct {
	Cfg Config

	// Hotplug is the deterministic unplug/replug schedule, fixed at New.
	Hotplug []HotplugEvent

	// Storms is the deterministic correlated-burst schedule, fixed at New.
	Storms []StormWindow

	ipi  *rng.Source
	tick *rng.Source
	lock *rng.Source

	// clock is captured at Attach so guest-side injectors can consult the
	// quiesce gate and storm windows; nil until then.
	clock *simtime.Clock

	// HotplugErrs collects OfflinePCPU/OnlinePCPU refusals (e.g. the
	// scheduled core became the last normal-pool pCPU); the run continues.
	HotplugErrs []error

	// OnFault, when non-nil, fires when a scheduled fault actually lands
	// (hotplug events; not per-IPI draws, which would fire constantly). It is
	// consulted at event time, so it may be set after Attach. The experiment
	// harness uses it to trigger the flight recorder.
	OnFault func(event string)
}

func (p *Plan) noteFault(event string) {
	if p.OnFault != nil {
		p.OnFault(event)
	}
}

// quiesced reports whether the quiesce gate has closed: at and after
// Cfg.QuiesceAt no new fault fires. Always false before Attach.
func (p *Plan) quiesced() bool {
	return p.Cfg.QuiesceAt > 0 && p.clock != nil &&
		p.clock.Now() >= simtime.Time(p.Cfg.QuiesceAt)
}

// inStorm reports whether now falls inside a scheduled storm window.
func (p *Plan) inStorm(now simtime.Time) bool {
	for _, w := range p.Storms {
		if now >= w.Start && now < w.End {
			return true
		}
	}
	return false
}

// New validates cfg and pre-draws the hotplug and storm schedules for a run
// of the given duration on pcpus cores. The same (cfg, pcpus, duration)
// triple always yields the same plan. Schedule-shape problems that only
// appear once the run length is known — a replug that cannot land inside
// the run, a quiesce point at or past run end — are rejected here with a
// typed *ConfigError.
func New(cfg Config, pcpus int, duration simtime.Duration) (*Plan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	totalOff := cfg.OfflinePCPUs + cfg.PermanentOfflinePCPUs
	if totalOff > pcpus-1 {
		return nil, &ConfigError{"OfflinePCPUs", fmt.Sprintf(
			"%d temporary + %d permanent unplugs leave no core online (have %d)",
			cfg.OfflinePCPUs, cfg.PermanentOfflinePCPUs, pcpus)}
	}
	if duration <= 0 && cfg.Enabled() {
		return nil, &ConfigError{"Duration", fmt.Sprintf(
			"run duration %v leaves no room for scheduled faults", duration)}
	}
	if cfg.QuiesceAt >= duration && cfg.QuiesceAt > 0 {
		return nil, &ConfigError{"QuiesceAt", fmt.Sprintf(
			"%v at or past run end %v", cfg.QuiesceAt, duration)}
	}
	root := rng.New(cfg.Seed ^ 0xfa17_5eed_0000_0001)
	p := &Plan{
		Cfg:  cfg,
		ipi:  root.Fork(1),
		tick: root.Fork(2),
		lock: root.Fork(3),
	}
	hot := root.Fork(4)
	// Faults initiate inside [0, window): with a quiesce point, no unplug
	// or storm may begin at or after it.
	window := duration
	if cfg.QuiesceAt > 0 {
		window = cfg.QuiesceAt
	}
	if totalOff > 0 {
		// Unplug distinct cores, never pCPU 0 (ID order for readability).
		perm := hot.Perm(pcpus - 1)
		for i := 0; i < cfg.OfflinePCPUs; i++ {
			off := simtime.Time(hot.Uniform(0.2, 0.5) * float64(window))
			on := off + simtime.Time(hot.Uniform(0.2, 0.4)*float64(duration))
			if on >= simtime.Time(duration) {
				on = simtime.Time(duration) * 9 / 10
			}
			if on <= off {
				return nil, &ConfigError{"OfflinePCPUs", fmt.Sprintf(
					"replug for pCPU %d cannot land inside the run (unplug at %v, run ends at %v)",
					perm[i]+1, off, duration)}
			}
			p.Hotplug = append(p.Hotplug, HotplugEvent{PCPU: perm[i] + 1, Off: off, On: on})
		}
		for i := 0; i < cfg.PermanentOfflinePCPUs; i++ {
			off := simtime.Time(hot.Uniform(0.2, 0.5) * float64(window))
			p.Hotplug = append(p.Hotplug, HotplugEvent{
				PCPU: perm[cfg.OfflinePCPUs+i] + 1, Off: off, Permanent: true,
			})
		}
	}
	if cfg.Storms > 0 {
		storm := root.Fork(5)
		length := cfg.StormLen
		if length == 0 {
			length = duration / 20
		}
		for i := 0; i < cfg.Storms; i++ {
			start := simtime.Time(storm.Uniform(0.1, 0.7) * float64(window))
			end := start + simtime.Time(length)
			if end > simtime.Time(window) {
				end = simtime.Time(window)
			}
			p.Storms = append(p.Storms, StormWindow{Start: start, End: end})
		}
		sort.Slice(p.Storms, func(i, j int) bool { return p.Storms[i].Start < p.Storms[j].Start })
	}
	return p, nil
}

// Attach installs the plan's hypervisor-side injectors: the IPI fault hook,
// the tick-jitter hook on the clock, and the hotplug schedule as clock
// events. Call once, before hv.Start / clock.Run.
func (p *Plan) Attach(h *hv.Hypervisor) {
	cfg := p.Cfg
	p.clock = h.Clock
	if cfg.IPIDelayProb > 0 || cfg.IPIDropProb > 0 || cfg.Storms > 0 {
		h.Hooks.IPIFault = func(vec hv.Vector) (simtime.Duration, bool) {
			if p.quiesced() {
				return 0, false
			}
			dropProb, delayProb, delayMax := cfg.IPIDropProb, cfg.IPIDelayProb, cfg.IPIDelayMax
			if p.inStorm(h.Clock.Now()) {
				dropProb = max(dropProb, stormIPIDropProb)
				delayProb = max(delayProb, stormIPIDelayProb)
				delayMax = max(delayMax, stormIPIDelayMax)
			}
			// Draw both decisions unconditionally so the stream consumed
			// per IPI is fixed regardless of outcomes (and regardless of
			// storm-raised probabilities: Bool always costs one draw).
			drop := p.ipi.Bool(dropProb)
			delayed := p.ipi.Bool(delayProb)
			var delay simtime.Duration
			if delayed && delayMax > 0 {
				delay = simtime.Duration(p.ipi.Int63n(int64(delayMax))) + 1
			}
			return delay, drop
		}
	}
	if cfg.LoseIPIs {
		// Consulted only when the final retry attempt is still dropped —
		// which IPIFault already gates on the quiesce point, so any IPI
		// reaching this hook was dropped pre-quiesce.
		h.Hooks.IPILoss = func(vec hv.Vector) bool { return true }
	}
	if cfg.TickJitter > 0 || cfg.Storms > 0 {
		h.Clock.SetDelayJitter(func(label string, d simtime.Duration) simtime.Duration {
			if label != "tick" && label != "acct" {
				return d
			}
			if p.quiesced() {
				return d
			}
			j := int64(cfg.TickJitter)
			if p.inStorm(h.Clock.Now()) {
				j = max(j, int64(stormTickJitter))
			}
			if j == 0 {
				return d
			}
			return d + simtime.Duration(p.tick.UniformDur(-j, j))
		})
	}
	if len(p.Hotplug) > 0 {
		// One chained timer walks the whole time-sorted action list instead
		// of pre-registering two closures per hotplug event: each fire
		// applies its action and re-arms the same event (Clock.Reschedule)
		// for the next one. The stable sort keeps the original creation
		// order (off before on, schedule order) for same-instant actions.
		actions := make([]hotplugAction, 0, 2*len(p.Hotplug))
		for _, ev := range p.Hotplug {
			actions = append(actions, hotplugAction{at: ev.Off, pcpu: ev.PCPU, online: false})
			if !ev.Permanent {
				actions = append(actions, hotplugAction{at: ev.On, pcpu: ev.PCPU, online: true})
			}
		}
		sort.SliceStable(actions, func(i, j int) bool { return actions[i].at < actions[j].at })
		next := 0
		h.Clock.AtLabeled(actions[0].at, "hotplug", func() {
			a := actions[next]
			next++
			p.applyHotplug(h, a)
			if next < len(actions) {
				h.Clock.Reschedule(actions[next].at - h.Clock.Now())
			}
		})
	}
}

// hotplugAction is one entry of the flattened, time-sorted hotplug walk.
type hotplugAction struct {
	at     simtime.Time
	pcpu   int
	online bool
}

func (p *Plan) applyHotplug(h *hv.Hypervisor, a hotplugAction) {
	var err error
	verb := "hotplug-off"
	if a.online {
		verb = "hotplug-on"
		err = h.OnlinePCPU(a.pcpu)
	} else {
		err = h.OfflinePCPU(a.pcpu)
	}
	if err != nil {
		p.HotplugErrs = append(p.HotplugErrs, err)
		return
	}
	p.noteFault(fmt.Sprintf("%s p%d", verb, a.pcpu))
}

// AttachGuest installs the guest-side lock-stall injector on one kernel.
// Call after Attach so the quiesce gate and storm windows see the clock.
func (p *Plan) AttachGuest(k *guest.Kernel) {
	cfg := p.Cfg
	if cfg.LockStallProb <= 0 && cfg.Storms == 0 {
		return
	}
	k.LockStall = func(class string, d simtime.Duration) simtime.Duration {
		if p.quiesced() {
			return d
		}
		prob, factor := cfg.LockStallProb, cfg.LockStallFactor
		if p.clock != nil && p.inStorm(p.clock.Now()) {
			prob = max(prob, stormLockStallProb)
			factor = max(factor, stormLockStallFactor)
		}
		if !p.lock.Bool(prob) {
			return d
		}
		return simtime.Duration(float64(d) * factor)
	}
}

package ksym

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestGenerateContainsAllWhitelist(t *testing.T) {
	tab := Generate(1)
	for _, e := range Whitelist {
		if _, ok := tab.AddrOf(e.Name); !ok {
			t.Errorf("generated table missing whitelist symbol %s", e.Name)
		}
	}
	for _, n := range idleSymbols {
		if _, ok := tab.AddrOf(n); !ok {
			t.Errorf("missing idle symbol %s", n)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, b := Generate(7), Generate(7)
	if a.Len() != b.Len() {
		t.Fatal("lengths differ")
	}
	as, bs := a.Symbols(), b.Symbols()
	for i := range as {
		if as[i] != bs[i] {
			t.Fatalf("symbol %d differs: %v vs %v", i, as[i], bs[i])
		}
	}
}

func TestGenerateDifferentSeedsDifferentLayout(t *testing.T) {
	a, b := Generate(1), Generate(2)
	same := 0
	for _, s := range a.Symbols() {
		if addr, ok := b.AddrOf(s.Name); ok && addr == s.Addr {
			same++
		}
	}
	if same == a.Len() {
		t.Fatal("different seeds produced identical layout")
	}
}

func TestSymbolsNonOverlapping(t *testing.T) {
	tab := Generate(3)
	syms := tab.Symbols()
	for i := 1; i < len(syms); i++ {
		if syms[i-1].End() > syms[i].Addr {
			t.Fatalf("overlap: %v then %v", syms[i-1], syms[i])
		}
	}
}

func TestLookupRoundTrip(t *testing.T) {
	tab := Generate(5)
	for _, s := range tab.Symbols() {
		for _, addr := range []uint64{s.Addr, s.Addr + s.Size/2, s.End() - 1} {
			got, ok := tab.Lookup(addr)
			if !ok {
				t.Fatalf("lookup of %#x inside %s failed", addr, s.Name)
			}
			if got.Name != s.Name {
				t.Fatalf("lookup(%#x)=%s, want %s", addr, got.Name, s.Name)
			}
		}
	}
}

func TestLookupMisses(t *testing.T) {
	tab := Generate(5)
	if _, ok := tab.Lookup(KernelBase - 1); ok {
		t.Fatal("lookup below kernel base should fail")
	}
	last := tab.Symbols()[tab.Len()-1]
	if _, ok := tab.Lookup(last.End()); ok {
		t.Fatal("lookup past last symbol should fail")
	}
	if _, ok := tab.Lookup(UserRIP); ok {
		t.Fatal("user RIP should not resolve")
	}
}

func TestInnerAddrInsideFunction(t *testing.T) {
	tab := Generate(5)
	for _, e := range Whitelist {
		addr := tab.InnerAddr(e.Name)
		s, ok := tab.Lookup(addr)
		if !ok || s.Name != e.Name {
			t.Fatalf("InnerAddr(%s)=%#x resolves to %q", e.Name, addr, s.Name)
		}
		if addr == s.Addr {
			t.Fatalf("InnerAddr(%s) should be strictly inside", e.Name)
		}
	}
}

func TestMustAddrPanicsOnUnknown(t *testing.T) {
	tab := Generate(1)
	defer func() {
		if recover() == nil {
			t.Fatal("MustAddr of unknown symbol did not panic")
		}
	}()
	tab.MustAddr("no_such_function")
}

func TestClassify(t *testing.T) {
	cases := map[string]Class{
		"native_flush_tlb_others":          ClassTLB,
		"smp_call_function_many":           ClassIPI,
		"__raw_spin_unlock":                ClassSpinlock,
		"native_queued_spin_lock_slowpath": ClassSpinWait,
		"ttwu_do_activate":                 ClassSched,
		"rwsem_wake":                       ClassRWSem,
		"irq_enter":                        ClassIRQ,
		"default_idle":                     ClassIdle,
		"vfs_read":                         ClassNone,
		"totally_unknown":                  ClassNone,
	}
	for name, want := range cases {
		if got := Classify(name); got != want {
			t.Errorf("Classify(%s)=%v, want %v", name, got, want)
		}
	}
}

func TestClassCritical(t *testing.T) {
	if ClassNone.Critical() || ClassIdle.Critical() || ClassSpinWait.Critical() {
		t.Fatal("none/idle/spinwait must not be critical")
	}
	for _, c := range []Class{ClassSpinlock, ClassTLB, ClassIPI, ClassIRQ, ClassSched, ClassRWSem} {
		if !c.Critical() {
			t.Fatalf("%v should be critical", c)
		}
	}
}

func TestClassifyAddr(t *testing.T) {
	tab := Generate(9)
	if got := tab.ClassifyAddr(tab.InnerAddr("flush_tlb_all")); got != ClassTLB {
		t.Fatalf("got %v", got)
	}
	if got := tab.ClassifyAddr(UserRIP); got != ClassNone {
		t.Fatalf("user addr classified %v", got)
	}
}

func TestNameOf(t *testing.T) {
	tab := Generate(9)
	if tab.NameOf(UserRIP) != "[user]" {
		t.Fatal("user addr should name [user]")
	}
	addr := tab.MustAddr("schedule")
	if tab.NameOf(addr) != "schedule" {
		t.Fatal("NameOf entry address failed")
	}
	last := tab.Symbols()[tab.Len()-1]
	if tab.NameOf(last.End()+100) != "?" {
		t.Fatal("unknown kernel addr should name ?")
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	tab := Generate(11)
	var buf bytes.Buffer
	if err := tab.Format(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Len() != tab.Len() {
		t.Fatalf("parsed %d symbols, want %d", parsed.Len(), tab.Len())
	}
	// Entry addresses and names survive; sizes are re-derived from gaps so
	// they may only grow (gap absorption), never shrink below the original.
	for _, s := range tab.Symbols() {
		addr, ok := parsed.AddrOf(s.Name)
		if !ok || addr != s.Addr {
			t.Fatalf("symbol %s lost in round trip", s.Name)
		}
		ps, _ := parsed.Lookup(addr)
		if ps.Size < s.Size && ps.Name != tab.Symbols()[tab.Len()-1].Name {
			t.Fatalf("parsed size of %s shrank: %d < %d", s.Name, ps.Size, s.Size)
		}
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	cases := []string{
		"zzzz T foo\n",
		"ffffffff81000000 TT foo\n",
		"ffffffff81000000 T\n",
		"",
	}
	for _, in := range cases {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

func TestParseSkipsCommentsAndBlanks(t *testing.T) {
	in := "# comment\n\nffffffff81000000 T alpha\nffffffff81000100 T beta\n"
	tab, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 2 {
		t.Fatalf("parsed %d symbols", tab.Len())
	}
	s, ok := tab.Lookup(KernelBase + 0x50)
	if !ok || s.Name != "alpha" || s.Size != 0x100 {
		t.Fatalf("derived size wrong: %+v ok=%v", s, ok)
	}
}

// Property: every address inside any generated symbol resolves back to it.
func TestPropertyLookupContainment(t *testing.T) {
	tab := Generate(13)
	syms := tab.Symbols()
	f := func(symIdx uint16, off uint16) bool {
		s := syms[int(symIdx)%len(syms)]
		addr := s.Addr + uint64(off)%s.Size
		got, ok := tab.Lookup(addr)
		return ok && got.Name == s.Name
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestIsKernelAddr(t *testing.T) {
	if IsKernelAddr(UserRIP) {
		t.Fatal("user RIP flagged as kernel")
	}
	if !IsKernelAddr(KernelBase) {
		t.Fatal("kernel base not flagged")
	}
}

func TestClassString(t *testing.T) {
	if ClassTLB.String() != "tlb" || Class(99).String() != "class(99)" {
		t.Fatal("Class.String broken")
	}
}

package guest

import (
	"github.com/microslicedcore/microsliced/internal/metrics"
	"github.com/microslicedcore/microsliced/internal/obs"
	"github.com/microslicedcore/microsliced/internal/simtime"
)

// SpinLock models a Linux qspinlock: the fast path acquires an uncontended
// lock immediately; contended waiters queue FIFO and spin on their own
// node. The two virtualization pathologies the paper targets both arise
// here:
//
//   - lock-holder preemption (LHP): the holder's vCPU is descheduled mid
//     critical section, so every waiter spins until PLE yields it away;
//   - lock-waiter preemption (LWP): the FIFO grant lands on a waiter whose
//     vCPU is descheduled, so the lock sits idle until that vCPU runs.
type SpinLock struct {
	k     *Kernel
	name  string
	class string
	body  uint64 // RIP used while holding (the critical-section function)

	// user marks an application-level lock: its critical section runs at a
	// user-space RIP (a registered region under the §4.4 extension), and
	// its waiters spin at an unregistered user address.
	user bool

	// sleeping selects rwsem/mutex semantics: contended waiters block
	// (halting their vCPU when nothing else is runnable) and the release
	// path wakes the FIFO head through the scheduler — the mmap_sem
	// behaviour behind dedup's halt-yield signature in the paper's Fig. 7.
	sleeping bool

	holder  *Thread
	waiters []*Thread

	// stat is the interned LockStat[class] histogram, resolved at lock
	// construction so the contended-release path skips the map lookup.
	stat *metrics.Histogram

	Acquisitions uint64
	Contended    uint64
}

// Name returns the lock's name.
func (l *SpinLock) Name() string { return l.name }

// Class returns the Lockstat class.
func (l *SpinLock) Class() string { return l.class }

// Holder returns the current holder (nil when free).
func (l *SpinLock) Holder() *Thread { return l.holder }

// QueueLen returns the number of spinning waiters.
func (l *SpinLock) QueueLen() int { return len(l.waiters) }

// holdDuration returns the critical-section duration for a thread that just
// acquired l. A fault plan's LockStall hook may amplify it, modelling a
// holder that stalls inside the critical section (cache misses, host-level
// interference) — the raw material of lock-holder preemption.
func (l *SpinLock) holdDuration(d simtime.Duration) simtime.Duration {
	if l.k.LockStall != nil {
		if d = l.k.LockStall(l.class, d); d < 0 {
			d = 0
		}
	}
	return d
}

// tryAcquire implements the fast path. It returns true when t now holds
// the lock.
func (l *SpinLock) tryAcquire(t *Thread) bool {
	if l.holder == nil && len(l.waiters) == 0 {
		// Fast path: no wait recorded — Lockstat's wait-time statistics
		// cover contended acquisitions only.
		l.holder = t
		l.Acquisitions++
		return true
	}
	l.Contended++
	if o := l.k.HV.Obs; o != nil {
		// The lock_acquire span covers contended acquisitions only, matching
		// LockStat: it opens at the failed fast path and closes at the grant.
		t.lockSpan = o.Begin(obs.SpanLockAcquire, int16(l.k.Dom.ID), int16(t.vc.idx), 0, l.k.Clock.Now())
	}
	l.waiters = append(l.waiters, t)
	return false
}

// release hands the lock to a waiter, recording its wait time. Grant
// preference follows qspinlock-on-virt behaviour (pending-bit stealing and
// paravirt unfairness): the first *live* spinner — one whose vCPU is
// currently executing — wins; only when every waiter's vCPU is preempted
// does the grant fall back to the FIFO head, which then sits on the lock
// until its vCPU runs (the residual lock-waiter-preemption case).
func (l *SpinLock) release(t *Thread, now simtime.Time) {
	if l.holder != t {
		panic("guest: release of lock not held by " + t.Name)
	}
	l.holder = nil
	if len(l.waiters) == 0 {
		return
	}
	if l.sleeping {
		// rwsem_wake: hand to the FIFO head and wake it through the
		// scheduler (cross-vCPU: a reschedule IPI).
		w := l.waiters[0]
		l.waiters = l.waiters[1:]
		l.holder = w
		l.Acquisitions++
		l.stat.Observe(int64(now - w.spinStart))
		l.endAcquireSpan(w, now)
		w.ph = phaseGranted
		l.k.wakeThreadFrom(t.vc, w)
		return
	}
	idx := 0
	for i, w := range l.waiters {
		if w.vc.running && w.vc.irq == nil {
			idx = i
			break
		}
	}
	w := l.waiters[idx]
	l.waiters = append(l.waiters[:idx], l.waiters[idx+1:]...)
	l.holder = w
	l.Acquisitions++
	l.stat.Observe(int64(now - w.spinStart))
	l.endAcquireSpan(w, now)
	w.granted(now)
}

// endAcquireSpan closes w's lock_acquire span at the grant, attributing the
// final wait segment by how the waiter spent it: parked on a sleeping lock,
// spinning live on a pCPU, or descheduled (lock-waiter preemption).
func (l *SpinLock) endAcquireSpan(w *Thread, now simtime.Time) {
	if o := l.k.HV.Obs; o != nil {
		stage := obs.LockStagePreempt
		switch {
		case l.sleeping:
			stage = obs.LockStageSleep
		case w.vc.running && w.vc.irq == nil:
			stage = obs.LockStageSpin
		}
		o.Stage(w.lockSpan, stage, now)
		o.End(w.lockSpan, now)
		w.lockSpan = 0
	}
}

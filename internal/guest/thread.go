package guest

import (
	"fmt"

	"github.com/microslicedcore/microsliced/internal/obs"
	"github.com/microslicedcore/microsliced/internal/simtime"
)

// ThreadState is the guest-scheduler state of a thread.
type ThreadState uint8

// Thread states.
const (
	ThreadReady     ThreadState = iota // on its vCPU's run queue
	ThreadRunning                      // current thread of its vCPU
	ThreadSleeping                     // waiting for a timer
	ThreadBlockedIO                    // waiting on a socket
	ThreadWaking                       // wakeup in flight (resched IPI sent)
	ThreadDone                         // program finished
	ThreadLockWait                     // blocked on a sleeping lock (rwsem)
)

// String names the state.
func (s ThreadState) String() string {
	switch s {
	case ThreadReady:
		return "ready"
	case ThreadRunning:
		return "running"
	case ThreadSleeping:
		return "sleeping"
	case ThreadBlockedIO:
		return "blocked-io"
	case ThreadWaking:
		return "waking"
	case ThreadDone:
		return "done"
	case ThreadLockWait:
		return "lock-wait"
	default:
		return fmt.Sprintf("tstate(%d)", uint8(s))
	}
}

// OpKind identifies a thread operation.
type OpKind uint8

// Operation kinds a Program can emit.
const (
	OpCompute  OpKind = iota // user-level computation for Dur
	OpKernel                 // non-critical kernel work for Dur at RIP Fn
	OpLock                   // acquire Lock, hold Dur (critical section), release
	OpTLBFlush               // mmap/munmap-style TLB shootdown to all live sibling vCPUs
	OpSleep                  // sleep for Dur (timer wakeup)
	OpRecv                   // receive one packet from Sock (blocks when empty)
	OpSend                   // transmit Bytes on the domain NIC, costing Dur
	OpWake                   // wake Target thread (ttwu path), costing Dur
	OpDisk                   // block I/O of Bytes (Write selects direction); blocks until completion
	OpExit                   // terminate the thread
)

// String names the kind.
func (k OpKind) String() string {
	switch k {
	case OpCompute:
		return "compute"
	case OpKernel:
		return "kernel"
	case OpLock:
		return "lock"
	case OpTLBFlush:
		return "tlbflush"
	case OpSleep:
		return "sleep"
	case OpRecv:
		return "recv"
	case OpSend:
		return "send"
	case OpWake:
		return "wake"
	case OpDisk:
		return "disk"
	case OpExit:
		return "exit"
	default:
		return fmt.Sprintf("op(%d)", uint8(k))
	}
}

// Op is one operation of a thread program.
type Op struct {
	Kind   OpKind
	Dur    simtime.Duration // compute time / critical-section hold / sleep time / path cost
	Fn     string           // kernel function for OpKernel RIP (optional)
	Lock   *SpinLock        // OpLock target; for OpTLBFlush: held across the shootdown (mmap_sem)
	Sock   *Socket          // OpRecv source
	Bytes  int              // OpSend / OpDisk payload
	Write  bool             // OpDisk direction
	Target *Thread          // OpWake target
	// Done, if set, fires when the op completes through the engine's normal
	// completion path (opDone), after the op's effects, at the completion
	// instant — e.g. a serving reply's transmit timestamp. It does not fire
	// for ops that complete elsewhere (OpTLBFlush, OpExit).
	Done func(now simtime.Time)
}

// Program generates a thread's operation sequence. Next is called each time
// the previous operation completes; returning OpExit ends the thread.
type Program interface {
	Next(now simtime.Time) Op
}

// ProgramFunc adapts a function to the Program interface.
type ProgramFunc func(now simtime.Time) Op

// Next implements Program.
func (f ProgramFunc) Next(now simtime.Time) Op { return f(now) }

// phase is the execution sub-state of the current thread of a vCPU.
type phase uint8

const (
	phaseIdle     phase = iota // between operations
	phaseOp                    // executing the current op for remaining ns
	phaseSpin                  // spinning on lock
	phaseGranted               // lock granted while descheduled; enter CS on resume
	phaseAcks                  // waiting for TLB shootdown acks
	phaseAcksDone              // all acks arrived; finish the op on resume
	phaseRestart               // re-run the current op on resume (blocked recv)
)

// shootdown tracks an in-flight TLB shootdown initiated by a thread.
type shootdown struct {
	pendingAcks int
	start       simtime.Time
}

// Thread is a guest kernel/user thread.
type Thread struct {
	ID   int
	Name string

	vc    *VCPU
	state ThreadState
	prog  Program

	op        Op
	opStage   int
	ph        phase
	remaining simtime.Duration

	lock      *SpinLock // lock being waited for or held
	shoot     *shootdown
	spinStart simtime.Time
	lockSpan  obs.SpanRef // open lock_acquire span while contending

	switchedInAt simtime.Time
	OpsDone      uint64

	// Pre-bound blocking-op completion callbacks (set in NewThread).
	timerFn func() // sleep-timer expiry -> local VecTimer
	diskFn  func() // disk completion  -> per-queue VecDisk MSI
}

// State returns the thread's scheduler state.
func (t *Thread) State() ThreadState { return t.state }

// VCPUIndex returns the index of the thread's home vCPU.
func (t *Thread) VCPUIndex() int { return t.vc.idx }

func (t *Thread) String() string {
	return fmt.Sprintf("%s(t%d,%s)", t.Name, t.ID, t.state)
}

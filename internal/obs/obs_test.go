package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"github.com/microslicedcore/microsliced/internal/simtime"
	"github.com/microslicedcore/microsliced/internal/trace"
)

const us = simtime.Microsecond

// TestStateAccounting walks one vCPU through a blocked→runnable→running→
// blocked cycle and checks every residency cell.
func TestStateAccounting(t *testing.T) {
	o := New(Config{})
	o.EnsurePCPUs(2)
	o.EnsureVCPU(0, 1, 0)

	// Blocked [0, 100us), runnable [100us, 130us), running [130us, 200us),
	// blocked afterwards.
	o.Transition(0, StateRunnable, 100*us)
	o.Transition(0, StateRunning, 130*us)
	o.Transition(0, StateBlocked, 200*us)

	r, ok := o.VCPUResidencyOf(0, 250*us)
	if !ok {
		t.Fatal("vCPU 0 not registered")
	}
	if r.Dom != 1 || r.VCPU != 0 {
		t.Fatalf("identity = dom%d vcpu%d, want dom1 vcpu0", r.Dom, r.VCPU)
	}
	if r.Blocked != 150*us {
		t.Errorf("Blocked = %v, want 150us", r.Blocked)
	}
	if r.Runnable != 30*us {
		t.Errorf("Runnable = %v, want 30us", r.Runnable)
	}
	if r.Running != 70*us {
		t.Errorf("Running = %v, want 70us", r.Running)
	}
	if r.Wait() != 30*us {
		t.Errorf("Wait() = %v, want 30us", r.Wait())
	}
	if r.MicroTotal != 0 {
		t.Errorf("MicroTotal = %v, want 0 (never in the micro pool)", r.MicroTotal)
	}
	total := r.Running + r.Runnable + r.Boosted + r.Blocked
	if total != 250*us {
		t.Errorf("residency sums to %v, want the full 250us", total)
	}
}

// TestStateAccountingBoostAndMicro exercises the boosted sub-state and the
// micro-pool dimension of the residency matrix.
func TestStateAccountingBoostAndMicro(t *testing.T) {
	o := New(Config{})
	o.EnsureVCPU(3, 0, 3)

	o.Transition(3, StateBoosted, 10*us)  // blocked 10us
	o.SetMicro(3, true, 20*us)            // boosted 10us in the normal pool
	o.Transition(3, StateRunning, 25*us)  // boosted 5us in the micro pool
	o.Transition(3, StateBlocked, 65*us)  // running 40us in the micro pool
	o.SetMicro(3, false, 70*us)           // blocked 5us in the micro pool

	r, ok := o.VCPUResidencyOf(3, 100*us)
	if !ok {
		t.Fatal("vCPU 3 not registered")
	}
	if r.Boosted != 15*us {
		t.Errorf("Boosted = %v, want 15us", r.Boosted)
	}
	if r.MicroRunning != 40*us {
		t.Errorf("MicroRunning = %v, want 40us", r.MicroRunning)
	}
	if r.MicroTotal != 50*us {
		t.Errorf("MicroTotal = %v, want 50us", r.MicroTotal)
	}
	if r.Blocked != 10*us+5*us+30*us {
		t.Errorf("Blocked = %v, want 45us", r.Blocked)
	}
}

// TestResidencySnapshotIsReadOnly checks that snapshotting flushes the open
// state without mutating the accountant: two snapshots at different times
// must both be exact.
func TestResidencySnapshotIsReadOnly(t *testing.T) {
	o := New(Config{})
	o.EnsureVCPU(0, 0, 0)
	o.Transition(0, StateRunning, 0)

	r1, _ := o.VCPUResidencyOf(0, 30*us)
	r2, _ := o.VCPUResidencyOf(0, 50*us)
	if r1.Running != 30*us || r2.Running != 50*us {
		t.Errorf("snapshots = %v then %v, want 30us then 50us", r1.Running, r2.Running)
	}
}

func TestPCPUAccounting(t *testing.T) {
	o := New(Config{})
	o.EnsurePCPUs(2)
	o.PCPUDispatched(0, false)
	o.PCPUDispatched(0, true)
	o.PCPURan(0, 40*us)
	o.PCPURan(1, 10*us)
	// Out-of-range ids must be ignored, not panic.
	o.PCPURan(99, us)
	o.PCPUDispatched(99, true)

	ps := o.PCPUSnapshot()
	if len(ps) != 2 {
		t.Fatalf("PCPUSnapshot len = %d, want 2", len(ps))
	}
	if ps[0].Busy != 40*us || ps[0].Dispatches != 2 || ps[0].Steals != 1 {
		t.Errorf("p0 = %+v, want busy 40us, 2 dispatches, 1 steal", ps[0])
	}
	if ps[1].Busy != 10*us {
		t.Errorf("p1 busy = %v, want 10us", ps[1].Busy)
	}
}

// TestSpanLifecycle opens, closes and cancels spans and checks the histogram
// and the open-span table.
func TestSpanLifecycle(t *testing.T) {
	o := New(Config{})

	s1 := o.Begin(SpanIPIDeliver, 0, 1, 42, 100*us)
	s2 := o.Begin(SpanLockAcquire, 1, 2, 0, 110*us)
	if s1 == 0 || s2 == 0 || s1 == s2 {
		t.Fatalf("Begin refs = %d, %d: want distinct non-zero", s1, s2)
	}
	if open := o.OpenSpans(); len(open) != 2 {
		t.Fatalf("OpenSpans = %d, want 2", len(open))
	}

	o.End(s1, 150*us)
	if h := o.Hist(SpanIPIDeliver); h.Count() != 1 || h.Max() != int64(50*us) {
		t.Errorf("ipi_deliver hist count=%d max=%d, want 1 and 50us", h.Count(), h.Max())
	}
	o.Cancel(s2)
	if h := o.Hist(SpanLockAcquire); h.Count() != 0 {
		t.Errorf("cancelled span was observed (count=%d)", h.Count())
	}
	if open := o.OpenSpans(); len(open) != 0 {
		t.Fatalf("OpenSpans = %d after close/cancel, want 0", len(open))
	}

	// The zero ref is a universal no-op.
	o.End(0, 200*us)
	o.Cancel(0)

	// Slots must be recycled: a new span after two closes reuses the table.
	s3 := o.Begin(SpanNetRx, 0, 0, 7, 200*us)
	o.End(s3, 205*us)
	if h := o.Hist(SpanNetRx); h.Count() != 1 {
		t.Errorf("net_rx count = %d, want 1", h.Count())
	}
}

// TestWakeSpanCoalescing: a second wake before dispatch must keep the older
// span's start edge.
func TestWakeSpanCoalescing(t *testing.T) {
	o := New(Config{})
	o.EnsureVCPU(0, 0, 0)
	o.WakeBegin(0, 100*us)
	o.WakeBegin(0, 150*us) // racing wake: ignored
	o.WakeEnd(0, 300*us)
	h := o.Hist(SpanWakeDispatch)
	if h.Count() != 1 {
		t.Fatalf("wake_dispatch count = %d, want 1", h.Count())
	}
	if got := h.Max(); got != int64(200*us) {
		t.Errorf("wake_dispatch latency = %d, want 200us (older edge kept)", got)
	}
	// WakeEnd with no open span is a no-op, not a zero-length sample.
	o.WakeEnd(0, 400*us)
	if h.Count() != 1 {
		t.Errorf("spurious WakeEnd recorded a sample (count=%d)", h.Count())
	}
}

// TestHotPathAllocFree proves the per-event accounting surface — including
// stage attribution (explicit Stage marks plus the wake-stage crediting
// inside Transition/SetMicro) — is allocation-free at steady state (after
// the span table has grown once).
func TestHotPathAllocFree(t *testing.T) {
	o := New(Config{})
	o.EnsurePCPUs(4)
	for id := 0; id < 8; id++ {
		o.EnsureVCPU(id, 0, int16(id))
	}
	// Warm up the span free list.
	warm := make([]SpanRef, 8)
	for i := range warm {
		warm[i] = o.Begin(SpanIPIDeliver, 0, 0, 0, 0)
	}
	for _, r := range warm {
		o.End(r, us)
	}
	now := simtime.Time(0)
	allocs := testing.AllocsPerRun(1000, func() {
		now += us
		o.Transition(3, StateRunnable, now)
		o.WakeBegin(3, now)
		o.Transition(3, StateRunning, now+us)
		o.WakeEnd(3, now+us)
		o.PCPUDispatched(2, false)
		o.PCPURan(2, us)
		s := o.Begin(SpanLockAcquire, 0, 3, 0, now)
		o.Stage(s, LockStagePreempt, now+us)
		o.End(s, now+us)
		o.SetMicro(3, true, now+us)
		o.SetMicro(3, false, now+us)
		o.Transition(3, StateBlocked, now+2*us)
	})
	if allocs != 0 {
		t.Errorf("steady-state hot path allocates %v per cycle, want 0", allocs)
	}
}

func TestSummary(t *testing.T) {
	o := New(Config{})
	o.EnsurePCPUs(2)
	o.EnsureVCPU(0, 0, 0)
	o.Transition(0, StateRunning, 0)
	o.PCPURan(1, 90*us)
	o.PCPURan(0, 10*us)
	for i := 0; i < 10; i++ {
		s := o.Begin(SpanDiskIO, 0, -1, 512, simtime.Time(i)*us)
		o.End(s, simtime.Time(i+2)*us)
	}
	leak := o.Begin(SpanNetRx, 0, 0, 0, 0)
	_ = leak

	sum := o.Summary(100 * us)
	if sum.Duration != 100*us {
		t.Errorf("Duration = %v, want 100us", sum.Duration)
	}
	if len(sum.Spans) != int(numSpanKinds) {
		t.Fatalf("Spans = %d entries, want %d (one per kind)", len(sum.Spans), numSpanKinds)
	}
	d := sum.Span("disk_io")
	if d == nil || d.Count != 10 {
		t.Fatalf("disk_io stat = %+v, want count 10", d)
	}
	if d.Max != 2*us {
		t.Errorf("disk_io max=%v, want 2us", d.Max)
	}
	// Quantiles report bucket lower bounds: p50 of identical 2us samples
	// lands in the enclosing bucket, within one sub-bucket of the sample.
	if d.P50 <= 0 || d.P50 > 2*us || d.P999 < d.P50 {
		t.Errorf("disk_io p50=%v p999=%v outside (0, 2us]", d.P50, d.P999)
	}
	if sum.Span("nonsense") != nil {
		t.Error("Span(nonsense) != nil")
	}
	if sum.OpenSpans != 1 {
		t.Errorf("OpenSpans = %d, want 1 (the leaked net_rx)", sum.OpenSpans)
	}
	if id, busy := sum.BusiestPCPU(); id != 1 || busy != 90*us {
		t.Errorf("BusiestPCPU = p%d %v, want p1 90us", id, busy)
	}
}

func TestFlightRecorder(t *testing.T) {
	dir := t.TempDir()
	o := New(Config{FlightDepth: 2, MaxFlights: 2, FlightDir: dir, Label: "t"})
	o.EnsureVCPU(0, 0, 0)
	o.Transition(0, StateRunning, 0)
	ref := o.Begin(SpanIPIDeliver, 0, 0, 9, 5*us)
	_ = ref

	tail := []trace.Record{
		{Time: 1 * us, Kind: trace.KindWake, Dom: 0, VCPU: 0},
		{Time: 2 * us, Kind: trace.KindSchedule, Dom: 0, VCPU: 0, PCPU: 1},
		{Time: 3 * us, Kind: trace.KindBlock, Dom: 0, VCPU: 0, PCPU: 1},
	}
	o.Flight(10*us, "invariant:placement", "vCPU on offline pCPU", tail)
	o.Flight(20*us, "fault", "hotplug-off p3", nil)
	o.Flight(30*us, "fault", "dropped beyond MaxFlights", nil)

	if got := o.FlightsTriggered(); got != 3 {
		t.Errorf("FlightsTriggered = %d, want 3", got)
	}
	fl := o.Flights()
	if len(fl) != 2 {
		t.Fatalf("retained flights = %d, want 2 (MaxFlights)", len(fl))
	}
	d := fl[0]
	if d.Reason != "invariant:placement" || d.Time != 10*us || d.Seq != 1 {
		t.Errorf("dump 0 = %+v, want placement reason at 10us seq 1", d)
	}
	if len(d.Trace) != 2 || d.Trace[0].Kind != "sched" || d.Trace[1].Kind != "block" {
		t.Errorf("trace tail = %+v, want last 2 records (sched, block)", d.Trace)
	}
	if len(d.VCPUs) != 1 || d.VCPUs[0].Running != 10*us {
		t.Errorf("residency in dump = %+v, want vCPU0 running 10us", d.VCPUs)
	}
	if len(d.OpenSpans) != 1 || d.OpenSpans[0].Kind != "ipi_deliver" {
		t.Errorf("open spans in dump = %+v, want the one open ipi_deliver", d.OpenSpans)
	}
	if o.FlightErr() != nil {
		t.Fatalf("FlightErr = %v", o.FlightErr())
	}

	// Both retained dumps must exist on disk and decode back.
	for _, d := range fl {
		if d.File == "" {
			t.Fatalf("dump %d has no file", d.Seq)
		}
		buf, err := os.ReadFile(d.File)
		if err != nil {
			t.Fatal(err)
		}
		var back FlightDump
		if err := json.Unmarshal(buf, &back); err != nil {
			t.Fatalf("dump %s does not decode: %v", d.File, err)
		}
		if back.Reason != d.Reason || back.Seq != d.Seq {
			t.Errorf("decoded dump = seq %d %q, want seq %d %q", back.Seq, back.Reason, d.Seq, d.Reason)
		}
	}
	files, _ := filepath.Glob(filepath.Join(dir, "flight-t-*.json"))
	if len(files) != 2 {
		t.Errorf("files on disk = %v, want exactly 2", files)
	}
}

// TestFlightDumpIncludesRepairTail: once a repair-tail provider is
// registered (the recovery supervisor does this on Attach), every flight
// dump carries the recent RepairEvents, and they survive the JSON round
// trip — a post-mortem dump shows what the supervisor did leading up to
// the trigger.
func TestFlightDumpIncludesRepairTail(t *testing.T) {
	dir := t.TempDir()
	o := New(Config{FlightDepth: 2, MaxFlights: 2, FlightDir: dir, Label: "t"})
	o.SetRepairTail(func() []RepairRecord {
		return []RepairRecord{
			{Time: 5 * us, Kind: "detect.starve", Dom: 0, VCPU: 1, Detail: "runnable 60ms"},
			{Time: 7 * us, Kind: "repair.unpin", Dom: 0, VCPU: 1, Detail: "pin p3 broken"},
		}
	})
	o.Flight(10*us, "invariant:starvation", "d0v1 starved", nil)

	fl := o.Flights()
	if len(fl) != 1 {
		t.Fatalf("retained flights = %d, want 1", len(fl))
	}
	d := fl[0]
	if len(d.Repairs) != 2 || d.Repairs[0].Kind != "detect.starve" || d.Repairs[1].Kind != "repair.unpin" {
		t.Fatalf("dump repairs = %+v, want the 2 provided records", d.Repairs)
	}
	buf, err := os.ReadFile(d.File)
	if err != nil {
		t.Fatal(err)
	}
	var back FlightDump
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Repairs) != 2 || back.Repairs[1].Detail != "pin p3 broken" {
		t.Errorf("decoded repairs = %+v, want both records with details", back.Repairs)
	}
}

func TestConfigDefaults(t *testing.T) {
	o := New(Config{})
	c := o.Config()
	if c.SpanSubBuckets != 8 || c.FlightDepth != 64 || c.MaxFlights != 4 || c.Label != "run" {
		t.Errorf("defaulted config = %+v", c)
	}
}

func TestSpanKindStrings(t *testing.T) {
	names := SpanKinds()
	if len(names) != int(numSpanKinds) {
		t.Fatalf("SpanKinds = %d entries, want %d", len(names), numSpanKinds)
	}
	seen := map[string]bool{}
	for k, name := range names {
		if name == "" || seen[name] {
			t.Errorf("kind %d has empty or duplicate name %q", k, name)
		}
		if SpanKind(k).String() != name {
			t.Errorf("SpanKind(%d).String() = %q, want %q", k, SpanKind(k).String(), name)
		}
		seen[name] = true
	}
	if got := SpanKind(200).String(); got == "" {
		t.Error("out-of-range SpanKind has empty String()")
	}
}

func TestStateStrings(t *testing.T) {
	for st := State(0); st < numStates; st++ {
		if st.String() == "" || st.String() == "state(?)" {
			t.Errorf("State(%d).String() = %q", st, st.String())
		}
	}
	if State(99).String() != "state(?)" {
		t.Errorf("out-of-range state = %q", State(99).String())
	}
}

package check

// Shrink greedily minimizes a failing scenario: it repeatedly tries the
// candidate transformations in order (most aggressive first) and commits
// the first one that still fails, restarting from the smaller scenario,
// until no transformation reproduces the failure or budget evaluations of
// fails have been spent. fails must be deterministic — with a simulator
// that is bit-reproducible by construction, it is.
func Shrink(sc Scenario, fails func(Scenario) bool, budget int) Scenario {
	cur := sc
	for budget > 0 {
		improved := false
		for _, cand := range shrinkCandidates(cur) {
			if budget <= 0 {
				break
			}
			budget--
			if fails(cand) {
				cur = cand
				improved = true
				break
			}
		}
		if !improved {
			break
		}
	}
	return cur
}

// shrinkCandidates proposes strictly simpler variants of sc, ordered so the
// biggest reductions (dropping whole VMs, disabling faults) are tried
// before dimension halving and flag clearing.
func shrinkCandidates(sc Scenario) []Scenario {
	var out []Scenario
	add := func(f func(*Scenario)) {
		c := sc.clone()
		f(&c)
		out = append(out, c)
	}

	if len(sc.VMs) > 1 {
		for i := range sc.VMs {
			i := i
			add(func(c *Scenario) {
				c.VMs = append(c.VMs[:i], c.VMs[i+1:]...)
			})
		}
	}
	if sc.Faults != nil {
		add(func(c *Scenario) { c.Faults = nil; c.Recovery = nil })
		if sc.Faults.Storms > 0 {
			add(func(c *Scenario) {
				c.Faults.Storms = 0
				if c.Faults.IPIDropProb == 0 {
					// LoseIPIs without a drop source fails validation.
					c.Faults.LoseIPIs = false
				}
			})
		}
		if sc.Faults.PermanentOffPCPUs > 0 {
			add(func(c *Scenario) { c.Faults.PermanentOffPCPUs-- })
		}
		if sc.Faults.LoseIPIs {
			add(func(c *Scenario) { c.Faults.LoseIPIs = false })
		}
	}
	if sc.DurationMs > 5 {
		add(func(c *Scenario) { c.DurationMs /= 2 })
	}
	for i := range sc.VMs {
		i := i
		if sc.VMs[i].VCPUs > 1 {
			add(func(c *Scenario) {
				c.VMs[i].VCPUs /= 2
				if len(c.VMs[i].Pins) > c.VMs[i].VCPUs {
					c.VMs[i].Pins = c.VMs[i].Pins[:c.VMs[i].VCPUs]
				}
			})
		}
		if len(sc.VMs[i].Pins) > 0 {
			add(func(c *Scenario) { c.VMs[i].Pins = nil })
		}
		if sc.VMs[i].Weight != 0 {
			add(func(c *Scenario) { c.VMs[i].Weight = 0 })
		}
	}
	if sc.PCPUs > 2 {
		add(func(c *Scenario) {
			c.PCPUs--
			for i := range c.VMs {
				for j, pin := range c.VMs[i].Pins {
					if pin >= c.PCPUs {
						c.VMs[i].Pins[j] = -1
					}
				}
			}
		})
	}
	if sc.Mode != "off" {
		add(func(c *Scenario) { c.Mode = "off"; c.StaticCores = 0 })
	}
	if sc.Stagger {
		add(func(c *Scenario) { c.Stagger = false })
	}
	if sc.BoostOff {
		add(func(c *Scenario) { c.BoostOff = false })
	}
	if sc.NoReturnHome {
		add(func(c *Scenario) { c.NoReturnHome = false })
	}
	if sc.MicroRunqLimit != 1 {
		add(func(c *Scenario) { c.MicroRunqLimit = 1 })
	}
	return out
}

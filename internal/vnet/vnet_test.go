package vnet

import (
	"testing"

	"github.com/microslicedcore/microsliced/internal/guest"
	"github.com/microslicedcore/microsliced/internal/hv"
	"github.com/microslicedcore/microsliced/internal/ksym"
	"github.com/microslicedcore/microsliced/internal/simtime"
)

// recvLoop is an iPerf-server-like program: receive forever.
type recvLoop struct{ sock *guest.Socket }

func (p *recvLoop) Next(now simtime.Time) guest.Op {
	return guest.Op{Kind: guest.OpRecv, Sock: p.sock}
}

// bareDom creates a minimal 1-vCPU domain for NIC-only tests.
func bareDom(h *hv.Hypervisor) *hv.Domain {
	return guest.NewKernel(h, "vm0", 1, ksym.Generate(7), guest.DefaultParams()).Dom
}

// busyLoop burns CPU forever.
type busyLoop struct{}

func (p *busyLoop) Next(now simtime.Time) guest.Op {
	return guest.Op{Kind: guest.OpCompute, Dur: simtime.Millisecond}
}

func ioSetup(t *testing.T, pcpus int) (*simtime.Clock, *hv.Hypervisor, *guest.Kernel, *NIC, *guest.Socket) {
	t.Helper()
	clock := simtime.NewClock()
	cfg := hv.DefaultConfig()
	cfg.PCPUs = pcpus
	h := hv.New(clock, cfg)
	k := guest.NewKernel(h, "server", 1, ksym.Generate(1), guest.DefaultParams())
	nic := NewNIC(h, k.Dom, 0)
	k.AttachNIC(nic)
	sock := k.NewSocket(0)
	k.NewThread(0, "iperf", &recvLoop{sock: sock})
	return clock, h, k, nic, sock
}

func TestRingOverflowDrops(t *testing.T) {
	clock := simtime.NewClock()
	h := hv.New(clock, hv.DefaultConfig())
	nic := NewNIC(h, bareDom(h), 4)
	for i := 0; i < 10; i++ {
		nic.Rx(guest.Packet{Seq: uint64(i), Bytes: 1500})
	}
	if nic.RxPackets != 4 || nic.RxDrops != 6 {
		t.Fatalf("rx=%d drops=%d", nic.RxPackets, nic.RxDrops)
	}
	if nic.RingLen() != 4 {
		t.Fatalf("ring=%d", nic.RingLen())
	}
}

func TestIRQCoalescing(t *testing.T) {
	clock := simtime.NewClock()
	h := hv.New(clock, hv.DefaultConfig())
	nic := NewNIC(h, bareDom(h), 0)
	for i := 0; i < 5; i++ {
		nic.Rx(guest.Packet{Seq: uint64(i), Bytes: 100})
	}
	if nic.IRQs != 1 {
		t.Fatalf("IRQs=%d, want 1 (coalesced)", nic.IRQs)
	}
	got := nic.Fetch(64)
	if len(got) != 5 {
		t.Fatalf("fetched %d", len(got))
	}
	// Ring drained: the next packet raises a fresh IRQ.
	nic.Rx(guest.Packet{Seq: 99, Bytes: 100})
	if nic.IRQs != 2 {
		t.Fatalf("IRQs=%d, want 2", nic.IRQs)
	}
}

func TestFetchRepollWhenBacklogged(t *testing.T) {
	clock := simtime.NewClock()
	h := hv.New(clock, hv.DefaultConfig())
	nic := NewNIC(h, bareDom(h), 0)
	for i := 0; i < 100; i++ {
		nic.Rx(guest.Packet{Seq: uint64(i), Bytes: 100})
	}
	got := nic.Fetch(64)
	if len(got) != 64 || nic.RingLen() != 36 {
		t.Fatalf("fetch=%d ring=%d", len(got), nic.RingLen())
	}
	if nic.IRQs != 2 {
		t.Fatalf("IRQs=%d, want re-poll IRQ", nic.IRQs)
	}
	got = nic.Fetch(64)
	if len(got) != 36 || nic.RingLen() != 0 {
		t.Fatalf("second fetch=%d ring=%d", len(got), nic.RingLen())
	}
}

func TestUDPSoloNearOfferedLoad(t *testing.T) {
	clock, h, k, nic, sock := ioSetup(t, 2)
	flow, err := NewUDPFlow(clock, nic, 0, 1500, 300e6) // 300 Mbit to keep event count modest
	if err != nil {
		t.Fatal(err)
	}
	flow.Attach(sock)
	h.Start()
	k.StartAll()
	flow.Start()
	clock.RunUntil(simtime.Second)
	flow.Stop()
	clock.RunUntil(clock.Now() + 10*simtime.Millisecond)
	if flow.LossRate() > 0.01 {
		t.Fatalf("solo loss %.3f", flow.LossRate())
	}
	good := flow.GoodputBps()
	if good < 290e6 || good > 310e6 {
		t.Fatalf("solo goodput %.1f Mbps, want ~300", good/1e6)
	}
	// Idle receiver: jitter well under a millisecond, even at its peak.
	if flow.Jitter.PeakMillis() > 0.1 {
		t.Fatalf("solo peak jitter %.4f ms", flow.Jitter.PeakMillis())
	}
}

func TestUDPMixedCoRunSuffers(t *testing.T) {
	// The paper's Table 4c shape: iperf+lookbusy on one vCPU, a lookbusy
	// VM on the same pCPU: jitter and goodput collapse without boosting.
	clock := simtime.NewClock()
	cfg := hv.DefaultConfig()
	cfg.PCPUs = 1
	h := hv.New(clock, cfg)
	k := guest.NewKernel(h, "mixed", 1, ksym.Generate(1), guest.DefaultParams())
	nic := NewNIC(h, k.Dom, 0)
	k.AttachNIC(nic)
	sock := k.NewSocket(0)
	k.NewThread(0, "iperf", &recvLoop{sock: sock})
	k.NewThread(0, "lookbusy", &busyLoop{})
	hog := guest.NewKernel(h, "hogvm", 1, ksym.Generate(2), guest.DefaultParams())
	hog.NewThread(0, "lookbusy", &busyLoop{})

	flow, err := NewUDPFlow(clock, nic, 0, 1500, 300e6)
	if err != nil {
		t.Fatal(err)
	}
	flow.Attach(sock)
	h.Start()
	k.StartAll()
	hog.StartAll()
	flow.Start()
	clock.RunUntil(2 * simtime.Second)
	flow.Stop()
	if flow.Jitter.PeakMillis() < 1 {
		t.Fatalf("mixed co-run peak jitter %.4f ms, want >= 1ms (VTD delays)", flow.Jitter.PeakMillis())
	}
	if flow.LossRate() < 0.2 {
		t.Fatalf("mixed co-run loss %.3f, want heavy ring-overflow loss", flow.LossRate())
	}
}

func TestTCPWindowNeverExceeded(t *testing.T) {
	clock, h, k, nic, sock := ioSetup(t, 2)
	flow, err := NewTCPFlow(clock, nic, 0, 1500, 16, 1e9, 50*simtime.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	flow.Attach(sock)
	h.Start()
	k.StartAll()
	flow.Start()
	for i := 0; i < 200; i++ {
		clock.RunUntil(clock.Now() + simtime.Millisecond)
		if flow.inflight > flow.Window {
			t.Fatalf("inflight %d > window %d", flow.inflight, flow.Window)
		}
	}
	if flow.RxPackets == 0 {
		t.Fatal("no TCP progress")
	}
}

func TestTCPSoloNearLineRate(t *testing.T) {
	clock, h, k, nic, sock := ioSetup(t, 2)
	flow, err := NewTCPFlow(clock, nic, 0, 1500, 64, 1e9, 50*simtime.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	flow.Attach(sock)
	h.Start()
	k.StartAll()
	flow.Start()
	clock.RunUntil(simtime.Second)
	good := flow.GoodputBps()
	// The guest consume path costs ~3us per 1500B segment, capping the
	// app-level rate near 1 Gbit on an idle machine; accept >= 60% of line.
	if good < 600e6 {
		t.Fatalf("solo TCP goodput %.1f Mbps", good/1e6)
	}
	if flow.String() == "" {
		t.Fatal("empty String")
	}
}

func TestTCPAckClockStallsWhenGuestStarved(t *testing.T) {
	// Same mixed co-run: the TCP ack clock throttles hard.
	clock := simtime.NewClock()
	cfg := hv.DefaultConfig()
	cfg.PCPUs = 1
	h := hv.New(clock, cfg)
	k := guest.NewKernel(h, "mixed", 1, ksym.Generate(1), guest.DefaultParams())
	nic := NewNIC(h, k.Dom, 0)
	k.AttachNIC(nic)
	sock := k.NewSocket(0)
	k.NewThread(0, "iperf", &recvLoop{sock: sock})
	k.NewThread(0, "lookbusy", &busyLoop{})
	hog := guest.NewKernel(h, "hogvm", 1, ksym.Generate(2), guest.DefaultParams())
	hog.NewThread(0, "lookbusy", &busyLoop{})

	solo := func() float64 {
		c2, h2, k2, nic2, sock2 := ioSetup(t, 2)
		f2, err := NewTCPFlow(c2, nic2, 0, 1500, 64, 1e9, 50*simtime.Microsecond)
		if err != nil {
			t.Fatal(err)
		}
		f2.Attach(sock2)
		h2.Start()
		k2.StartAll()
		f2.Start()
		c2.RunUntil(simtime.Second)
		return f2.GoodputBps()
	}()

	flow, err := NewTCPFlow(clock, nic, 0, 1500, 64, 1e9, 50*simtime.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	flow.Attach(sock)
	h.Start()
	k.StartAll()
	hog.StartAll()
	flow.Start()
	clock.RunUntil(2 * simtime.Second)
	mixed := flow.GoodputBps()
	if mixed >= solo*0.7 {
		t.Fatalf("mixed TCP %.1f Mbps vs solo %.1f Mbps — expected heavy degradation",
			mixed/1e6, solo/1e6)
	}
}

func TestUDPPacingInterval(t *testing.T) {
	clock := simtime.NewClock()
	h := hv.New(clock, hv.DefaultConfig())
	nic := NewNIC(h, bareDom(h), 1<<20)
	flow, err := NewUDPFlow(clock, nic, 0, 1500, 12e6) // 1500B at 12 Mbit => 1ms gap
	if err != nil {
		t.Fatal(err)
	}
	if got := flow.interval(); got != simtime.Millisecond {
		t.Fatalf("interval %v, want 1ms", got)
	}
	flow.Start()
	clock.RunUntil(10 * simtime.Millisecond)
	flow.Stop()
	if nic.RxPackets < 10 || nic.RxPackets > 12 {
		t.Fatalf("sent %d packets in 10ms", nic.RxPackets)
	}
	clock.RunUntil(20 * simtime.Millisecond)
	if nic.RxPackets > 12 {
		t.Fatal("Stop did not halt the sender")
	}
}

func TestFlowConstructorsValidate(t *testing.T) {
	clock := simtime.NewClock()
	h := hv.New(clock, hv.DefaultConfig())
	nic := NewNIC(h, bareDom(h), 0)
	if _, err := NewUDPFlow(clock, nic, 0, 0, 1e9); err == nil {
		t.Fatal("UDP flow accepted zero packet size")
	}
	if _, err := NewUDPFlow(clock, nic, 0, 1500, 0); err == nil {
		t.Fatal("UDP flow accepted zero rate")
	}
	if _, err := NewTCPFlow(clock, nic, 0, 1500, 0, 1e9, 0); err == nil {
		t.Fatal("TCP flow accepted zero window")
	}
	if _, err := NewTCPFlow(clock, nic, 0, 0, 16, 1e9, 0); err == nil {
		t.Fatal("TCP flow accepted zero packet size")
	}
	if _, err := NewTCPFlow(clock, nic, 0, 1500, 16, 0, 0); err == nil {
		t.Fatal("TCP flow accepted zero link rate")
	}
}
